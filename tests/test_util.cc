#include "test_util.h"

#include "common/strings.h"

namespace fieldrep::testing {

std::unique_ptr<Database> OpenEmployeeDatabase(size_t pool_frames) {
  Database::Options options;
  options.buffer_pool_frames = pool_frames;
  auto db_or = Database::Open(options);
  EXPECT_TRUE(db_or.ok()) << db_or.status().ToString();
  std::unique_ptr<Database> db = std::move(db_or).value();

  EXPECT_TRUE(db->DefineType(TypeDescriptor("ORG", {CharAttr("name", 20),
                                                    Int32Attr("budget")}))
                  .ok());
  EXPECT_TRUE(db->DefineType(TypeDescriptor(
                                 "DEPT", {CharAttr("name", 20),
                                          Int32Attr("budget"),
                                          RefAttr("org", "ORG")}))
                  .ok());
  EXPECT_TRUE(db->DefineType(TypeDescriptor(
                                 "EMP", {CharAttr("name", 20),
                                         Int32Attr("age"),
                                         Int32Attr("salary"),
                                         RefAttr("dept", "DEPT")}))
                  .ok());
  EXPECT_TRUE(db->CreateSet("Org", "ORG").ok());
  EXPECT_TRUE(db->CreateSet("Dept", "DEPT").ok());
  EXPECT_TRUE(db->CreateSet("Emp1", "EMP").ok());
  EXPECT_TRUE(db->CreateSet("Emp2", "EMP").ok());
  return db;
}

EmployeeFixture PopulateEmployees(Database* db, int n_orgs, int n_depts,
                                  int n_emps) {
  EmployeeFixture fixture;
  for (int i = 0; i < n_orgs; ++i) {
    Object org(0, {Value(StringPrintf("org%d", i)), Value(int32_t{1000 * i})});
    Oid oid;
    EXPECT_TRUE(db->Insert("Org", org, &oid).ok());
    fixture.orgs.push_back(oid);
  }
  for (int j = 0; j < n_depts; ++j) {
    Object dept(0, {Value(StringPrintf("dept%d", j)), Value(int32_t{10 * j}),
                    n_orgs > 0 ? Value(fixture.orgs[j % n_orgs])
                               : Value::Null()});
    Oid oid;
    EXPECT_TRUE(db->Insert("Dept", dept, &oid).ok());
    fixture.depts.push_back(oid);
  }
  for (int k = 0; k < n_emps; ++k) {
    Object emp(0, {Value(StringPrintf("emp%d", k)),
                   Value(int32_t{20 + k % 50}), Value(int32_t{1000 * k}),
                   n_depts > 0 ? Value(fixture.depts[k % n_depts])
                               : Value::Null()});
    Oid oid;
    EXPECT_TRUE(db->Insert("Emp1", emp, &oid).ok());
    fixture.emps.push_back(oid);
  }
  return fixture;
}

Value TraversePath(Database* db, const std::string& set_name, const Oid& oid,
                   const std::vector<std::string>& attrs) {
  std::string current_set = set_name;
  Oid current = oid;
  for (size_t i = 0; i < attrs.size(); ++i) {
    auto set_or = db->GetSet(current_set);
    if (!set_or.ok()) return Value::Null();
    Object object;
    if (!set_or.value()->Read(current, &object).ok()) return Value::Null();
    int attr = set_or.value()->type().FindAttribute(attrs[i]);
    if (attr < 0) return Value::Null();
    const Value& value = object.field(attr);
    if (i + 1 == attrs.size()) return value;
    if (!value.is_ref()) return Value::Null();
    current = value.as_ref();
    auto info_or = db->catalog().GetSetForFile(current.file_id);
    if (!info_or.ok()) return Value::Null();
    current_set = info_or.value()->name;
  }
  return Value::Null();
}

void ExpectCleanIntegrity(Database* db) {
  CheckReport report;
  Status s = db->CheckIntegrity(&report);
  EXPECT_TRUE(s.ok()) << s.ToString();
  EXPECT_EQ(report.error_count(), 0u) << report.ToString();
}

}  // namespace fieldrep::testing
