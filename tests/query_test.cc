#include <limits>

#include "gtest/gtest.h"
#include "test_util.h"

namespace fieldrep {
namespace {

using ::fieldrep::testing::EmployeeFixture;
using ::fieldrep::testing::OpenEmployeeDatabase;
using ::fieldrep::testing::PopulateEmployees;

std::string Padded(const std::string& s, size_t n = 20) {
  std::string out = s;
  out.resize(n, '\0');
  return out;
}

class QueryTest : public ::testing::Test {
 protected:
  void SetUp() override {
    db_ = OpenEmployeeDatabase();
    fixture_ = PopulateEmployees(db_.get(), 2, 4, 40);
  }
  std::unique_ptr<Database> db_;
  EmployeeFixture fixture_;
};

TEST_F(QueryTest, ScanReadNoPredicate) {
  ReadQuery query;
  query.set_name = "Emp1";
  query.projections = {"name", "salary"};
  ReadResult result;
  FR_ASSERT_OK(db_->Retrieve(query, &result));
  EXPECT_EQ(result.rows.size(), 40u);
  EXPECT_FALSE(result.used_index);
  EXPECT_EQ(result.rows[3][0], Value(Padded("emp3")));
  EXPECT_EQ(result.rows[3][1], Value(int32_t{3000}));
}

TEST_F(QueryTest, PredicateWithoutIndexScans) {
  ReadQuery query;
  query.set_name = "Emp1";
  query.projections = {"name"};
  query.predicate =
      Predicate::Compare("salary", CompareOp::kGt, Value(int32_t{35000}));
  ReadResult result;
  FR_ASSERT_OK(db_->Retrieve(query, &result));
  EXPECT_EQ(result.rows.size(), 4u);  // 36000..39000
  EXPECT_FALSE(result.used_index);
}

TEST_F(QueryTest, PredicateWithIndexUsesIt) {
  FR_ASSERT_OK(db_->BuildIndex("emp_salary", "Emp1", "salary"));
  ReadQuery query;
  query.set_name = "Emp1";
  query.projections = {"name"};
  query.predicate = Predicate::Between("salary", Value(int32_t{10000}),
                                       Value(int32_t{12000}));
  ReadResult result;
  FR_ASSERT_OK(db_->Retrieve(query, &result));
  EXPECT_TRUE(result.used_index);
  EXPECT_EQ(result.rows.size(), 3u);  // 10000, 11000, 12000
}

TEST_F(QueryTest, AllCompareOpsAgreeWithScan) {
  FR_ASSERT_OK(db_->BuildIndex("emp_salary", "Emp1", "salary"));
  for (CompareOp op : {CompareOp::kEq, CompareOp::kLt, CompareOp::kLe,
                       CompareOp::kGt, CompareOp::kGe}) {
    ReadQuery indexed;
    indexed.set_name = "Emp1";
    indexed.projections = {"salary"};
    indexed.predicate =
        Predicate::Compare("salary", op, Value(int32_t{20000}));
    ReadResult via_index;
    FR_ASSERT_OK(db_->Retrieve(indexed, &via_index));
    EXPECT_TRUE(via_index.used_index);

    // Same query against the unindexed age... use Emp2-free approach:
    // evaluate by scanning with the same predicate on a projection-only
    // query through a fresh query with no index: filter rows manually.
    ReadQuery scan;
    scan.set_name = "Emp1";
    scan.projections = {"salary"};
    ReadResult all;
    FR_ASSERT_OK(db_->Retrieve(scan, &all));
    size_t expected = 0;
    for (const auto& row : all.rows) {
      int32_t v = row[0].as_int32();
      switch (op) {
        case CompareOp::kEq: expected += (v == 20000); break;
        case CompareOp::kLt: expected += (v < 20000); break;
        case CompareOp::kLe: expected += (v <= 20000); break;
        case CompareOp::kGt: expected += (v > 20000); break;
        case CompareOp::kGe: expected += (v >= 20000); break;
        default: break;
      }
    }
    EXPECT_EQ(via_index.rows.size(), expected)
        << "op " << CompareOpName(op);
  }
}

TEST_F(QueryTest, StringPredicateRecheckFiltersPrefixCollisions) {
  FR_ASSERT_OK(db_->BuildIndex("emp_name", "Emp1", "name"));
  ReadQuery query;
  query.set_name = "Emp1";
  query.projections = {"name"};
  // "emp1", "emp10".."emp19" share the 8-byte prefix region; equality must
  // return exactly one row.
  query.predicate =
      Predicate::Compare("name", CompareOp::kEq, Value(Padded("emp1")));
  ReadResult result;
  FR_ASSERT_OK(db_->Retrieve(query, &result));
  ASSERT_EQ(result.rows.size(), 1u);
  EXPECT_EQ(result.rows[0][0], Value(Padded("emp1")));
}

TEST_F(QueryTest, FunctionalJoinWithoutReplication) {
  ReadQuery query;
  query.set_name = "Emp1";
  query.projections = {"name", "dept.name", "dept.org.name"};
  ReadResult result;
  FR_ASSERT_OK(db_->Retrieve(query, &result));
  ASSERT_EQ(result.access.size(), 3u);
  EXPECT_EQ(result.access[1], ReadResult::Access::kJoin);
  EXPECT_EQ(result.access[2], ReadResult::Access::kJoin);
  EXPECT_EQ(result.rows[5][1], Value(Padded("dept1")));
  EXPECT_EQ(result.rows[5][2], Value(Padded("org1")));
}

TEST_F(QueryTest, InPlaceReplicaEliminatesJoin) {
  FR_ASSERT_OK(db_->Replicate("Emp1.dept.name", {}));
  ReadQuery query;
  query.set_name = "Emp1";
  query.projections = {"name", "dept.name"};
  ReadResult result;
  FR_ASSERT_OK(db_->Retrieve(query, &result));
  EXPECT_EQ(result.access[1], ReadResult::Access::kReplicaInPlace);
  EXPECT_EQ(result.rows[5][1], Value(Padded("dept1")));
}

TEST_F(QueryTest, ReplicaAndJoinAgree) {
  FR_ASSERT_OK(db_->Replicate("Emp1.dept.org.name", {}));
  ReadQuery with;
  with.set_name = "Emp1";
  with.projections = {"dept.org.name"};
  ReadResult via_replica;
  FR_ASSERT_OK(db_->Retrieve(with, &via_replica));
  EXPECT_EQ(via_replica.access[0], ReadResult::Access::kReplicaInPlace);

  ReadQuery without = with;
  without.use_replication = false;
  ReadResult via_join;
  FR_ASSERT_OK(db_->Retrieve(without, &via_join));
  EXPECT_EQ(via_join.access[0], ReadResult::Access::kJoin);
  EXPECT_EQ(via_replica.rows, via_join.rows);
}

TEST_F(QueryTest, SeparateReplicaAnswersFromSPrime) {
  ReplicateOptions options;
  options.strategy = ReplicationStrategy::kSeparate;
  FR_ASSERT_OK(db_->Replicate("Emp1.dept.name", options));
  ReadQuery query;
  query.set_name = "Emp1";
  query.projections = {"dept.name"};
  ReadResult result;
  FR_ASSERT_OK(db_->Retrieve(query, &result));
  EXPECT_EQ(result.access[0], ReadResult::Access::kReplicaSeparate);
  EXPECT_EQ(result.rows[5][0], Value(Padded("dept1")));
}

TEST_F(QueryTest, AllPathCoversMemberProjections) {
  FR_ASSERT_OK(db_->Replicate("Emp1.dept.all", {}));
  ReadQuery query;
  query.set_name = "Emp1";
  query.projections = {"dept.name", "dept.budget"};
  ReadResult result;
  FR_ASSERT_OK(db_->Retrieve(query, &result));
  EXPECT_EQ(result.access[0], ReadResult::Access::kReplicaInPlace);
  EXPECT_EQ(result.access[1], ReadResult::Access::kReplicaInPlace);
  EXPECT_EQ(result.rows[0][1], Value(int32_t{0}));
}

TEST_F(QueryTest, ReplicatedRefPrefixCollapsesJoin) {
  // Section 3.3.3: replicate Emp1.dept.org, then dept.org.name needs one
  // join instead of two.
  FR_ASSERT_OK(db_->Replicate("Emp1.dept.org", {}));
  ReadQuery query;
  query.set_name = "Emp1";
  query.projections = {"dept.org.name"};
  ReadResult result;
  FR_ASSERT_OK(db_->Retrieve(query, &result));
  EXPECT_EQ(result.access[0], ReadResult::Access::kJoin);
  EXPECT_EQ(result.rows[0][0], Value(Padded("org0")));
  // Same answer as the pure-join plan.
  ReadQuery pure = query;
  pure.use_replication = false;
  ReadResult pure_result;
  FR_ASSERT_OK(db_->Retrieve(pure, &pure_result));
  EXPECT_EQ(result.rows, pure_result.rows);
}

TEST_F(QueryTest, NullRefsYieldNullColumns) {
  Object emp(0, {Value("null-dept"), Value(int32_t{1}), Value(int32_t{-5}),
                 Value::Null()});
  Oid oid;
  FR_ASSERT_OK(db_->Insert("Emp1", emp, &oid));
  ReadQuery query;
  query.set_name = "Emp1";
  query.projections = {"name", "dept.name"};
  query.predicate =
      Predicate::Compare("salary", CompareOp::kLt, Value(int32_t{0}));
  ReadResult result;
  FR_ASSERT_OK(db_->Retrieve(query, &result));
  ASSERT_EQ(result.rows.size(), 1u);
  EXPECT_TRUE(result.rows[0][1].is_null());
}

TEST_F(QueryTest, OutputFileReceivesRows) {
  ReadQuery query;
  query.set_name = "Emp1";
  query.projections = {"name", "salary"};
  query.write_output = true;
  query.output_pad = 100;
  ReadResult result;
  FR_ASSERT_OK(db_->executor().TruncateOutput());
  FR_ASSERT_OK(db_->Retrieve(query, &result));
  EXPECT_EQ(result.rows_written, 40u);
  auto out = db_->executor().output_file();
  ASSERT_TRUE(out.ok());
  EXPECT_EQ((*out)->record_count(), 40u);
  // 100-byte rows + overhead: 4056/104 = 39 per page -> 2 pages.
  EXPECT_EQ((*out)->page_count(), 2u);
}

TEST_F(QueryTest, UpdateQueryWritesAndPropagates) {
  FR_ASSERT_OK(db_->Replicate("Emp1.dept.name", {}));
  FR_ASSERT_OK(db_->BuildIndex("dept_budget", "Dept", "budget"));
  UpdateQuery query;
  query.set_name = "Dept";
  query.predicate =
      Predicate::Compare("budget", CompareOp::kEq, Value(int32_t{10}));
  query.assignments = {{"name", Value("updated")}, {"budget",
                                                    Value(int32_t{11})}};
  UpdateResult result;
  FR_ASSERT_OK(db_->Replace(query, &result));
  EXPECT_TRUE(result.used_index);
  EXPECT_EQ(result.objects_updated, 1u);
  const auto* path = db_->catalog().FindPathBySpec("Emp1.dept.name");
  FR_ASSERT_OK(db_->replication().VerifyPathConsistency(path->id));
  ReadQuery read;
  read.set_name = "Emp1";
  read.projections = {"dept.name"};
  ReadResult rows;
  FR_ASSERT_OK(db_->Retrieve(read, &rows));
  int updated = 0;
  for (const auto& row : rows.rows) {
    if (row[0] == Value(Padded("updated"))) ++updated;
  }
  EXPECT_EQ(updated, 10);  // employees of dept1
}

TEST_F(QueryTest, UpdateQueryIndexMaintenance) {
  FR_ASSERT_OK(db_->BuildIndex("emp_salary", "Emp1", "salary"));
  UpdateQuery query;
  query.set_name = "Emp1";
  query.predicate =
      Predicate::Compare("salary", CompareOp::kEq, Value(int32_t{5000}));
  query.assignments = {{"salary", Value(int32_t{123456})}};
  UpdateResult result;
  FR_ASSERT_OK(db_->Replace(query, &result));
  EXPECT_EQ(result.objects_updated, 1u);
  // The index finds it under the new key, not the old.
  ReadQuery read;
  read.set_name = "Emp1";
  read.projections = {"name"};
  read.predicate =
      Predicate::Compare("salary", CompareOp::kEq, Value(int32_t{123456}));
  ReadResult rows;
  FR_ASSERT_OK(db_->Retrieve(read, &rows));
  EXPECT_TRUE(rows.used_index);
  ASSERT_EQ(rows.rows.size(), 1u);
  read.predicate =
      Predicate::Compare("salary", CompareOp::kEq, Value(int32_t{5000}));
  FR_ASSERT_OK(db_->Retrieve(read, &rows));
  EXPECT_TRUE(rows.rows.empty());
}

TEST_F(QueryTest, PathIndexSupportsAssociativeLookup) {
  // Section 3.3.4: an index on Emp1.dept.org.name maps organization names
  // directly to Emp1 objects.
  FR_ASSERT_OK(db_->Replicate("Emp1.dept.org.name", {}));
  FR_ASSERT_OK(db_->BuildIndex("emp_orgname", "Emp1", "dept.org.name"));
  ReadQuery query;
  query.set_name = "Emp1";
  query.projections = {"name", "dept.org.name"};
  query.predicate =
      Predicate::Compare("dept.org.name", CompareOp::kEq,
                         Value(Padded("org1")));
  ReadResult result;
  FR_ASSERT_OK(db_->Retrieve(query, &result));
  EXPECT_TRUE(result.used_index);
  EXPECT_EQ(result.rows.size(), 20u);  // half the employees
  for (const auto& row : result.rows) {
    EXPECT_EQ(row[1], Value(Padded("org1")));
  }
  // The index follows propagation: rename the org, look up the new name.
  FR_ASSERT_OK(db_->Update("Org", fixture_.orgs[1], "name", Value("zeta")));
  query.predicate = Predicate::Compare("dept.org.name", CompareOp::kEq,
                                       Value(Padded("zeta")));
  FR_ASSERT_OK(db_->Retrieve(query, &result));
  EXPECT_EQ(result.rows.size(), 20u);
}

TEST_F(QueryTest, PathIndexRequiresInPlaceReplication) {
  EXPECT_EQ(db_->BuildIndex("bad", "Emp1", "dept.org.name").code(),
            StatusCode::kFailedPrecondition);
  ReplicateOptions options;
  options.strategy = ReplicationStrategy::kSeparate;
  FR_ASSERT_OK(db_->Replicate("Emp1.dept.name", options));
  EXPECT_EQ(db_->BuildIndex("bad2", "Emp1", "dept.name").code(),
            StatusCode::kNotSupported);
}

TEST_F(QueryTest, BadProjectionsAndPredicatesRejected) {
  ReadQuery query;
  query.set_name = "Emp1";
  query.projections = {"nope"};
  ReadResult result;
  EXPECT_FALSE(db_->Retrieve(query, &result).ok());
  query.projections = {"salary.name"};  // scalar mid-path
  EXPECT_FALSE(db_->Retrieve(query, &result).ok());
  query.projections = {"name"};
  query.predicate =
      Predicate::Compare("ghost", CompareOp::kEq, Value(int32_t{1}));
  EXPECT_FALSE(db_->Retrieve(query, &result).ok());
  query.set_name = "NoSuchSet";
  EXPECT_FALSE(db_->Retrieve(query, &result).ok());
}

TEST_F(QueryTest, PathClauseWithoutIndexScans) {
  // A clause on a reference path with no index: evaluated per object
  // through the plan (replica when available, joins otherwise).
  ReadQuery query;
  query.set_name = "Emp1";
  query.projections = {"name"};
  query.predicate = Predicate::Compare("dept.org.name", CompareOp::kEq,
                                       Value(Padded("org0")));
  ReadResult via_join;
  FR_ASSERT_OK(db_->Retrieve(query, &via_join));
  EXPECT_FALSE(via_join.used_index);
  EXPECT_EQ(via_join.rows.size(), 20u);
  // Same with the path replicated: answered from replicas, same rows.
  FR_ASSERT_OK(db_->Replicate("Emp1.dept.org.name", {}));
  ReadResult via_replica;
  FR_ASSERT_OK(db_->Retrieve(query, &via_replica));
  EXPECT_EQ(via_replica.rows, via_join.rows);
}

TEST_F(QueryTest, StringBetweenPredicate) {
  FR_ASSERT_OK(db_->BuildIndex("emp_name", "Emp1", "name"));
  ReadQuery query;
  query.set_name = "Emp1";
  query.projections = {"name"};
  query.predicate = Predicate::Between("name", Value(Padded("emp10")),
                                       Value(Padded("emp19")));
  ReadResult result;
  FR_ASSERT_OK(db_->Retrieve(query, &result));
  EXPECT_TRUE(result.used_index);
  EXPECT_EQ(result.rows.size(), 10u);  // emp10..emp19 lexicographically
}

TEST_F(QueryTest, OutputNaturalSizeWithoutPad) {
  ReadQuery query;
  query.set_name = "Emp1";
  query.projections = {"salary"};
  query.write_output = true;  // output_pad defaults to 0 (natural size)
  FR_ASSERT_OK(db_->executor().TruncateOutput());
  ReadResult result;
  FR_ASSERT_OK(db_->Retrieve(query, &result));
  auto out = db_->executor().output_file();
  ASSERT_TRUE(out.ok());
  EXPECT_EQ((*out)->record_count(), 40u);
  EXPECT_EQ((*out)->page_count(), 1u);  // 9-byte rows all fit on one page
}

TEST_F(QueryTest, UpdateQueryOnRefAttributeRetargets) {
  FR_ASSERT_OK(db_->Replicate("Emp1.dept.name", {}));
  UpdateQuery query;
  query.set_name = "Emp1";
  query.predicate =
      Predicate::Compare("salary", CompareOp::kLt, Value(int32_t{4000}));
  query.assignments = {{"dept", Value(fixture_.depts[3])}};
  UpdateResult result;
  FR_ASSERT_OK(db_->Replace(query, &result));
  EXPECT_EQ(result.objects_updated, 4u);
  const auto* path = db_->catalog().FindPathBySpec("Emp1.dept.name");
  FR_ASSERT_OK(db_->replication().VerifyPathConsistency(path->id));
  ReadQuery read;
  read.set_name = "Emp1";
  read.projections = {"dept.name"};
  read.predicate =
      Predicate::Compare("salary", CompareOp::kLt, Value(int32_t{4000}));
  ReadResult rows;
  FR_ASSERT_OK(db_->Retrieve(read, &rows));
  for (const auto& row : rows.rows) {
    EXPECT_EQ(row[0], Value(Padded("dept3")));
  }
}

TEST_F(QueryTest, UseReplicationFalseIgnoresSeparateToo) {
  ReplicateOptions options;
  options.strategy = ReplicationStrategy::kSeparate;
  FR_ASSERT_OK(db_->Replicate("Emp1.dept.name", options));
  ReadQuery query;
  query.set_name = "Emp1";
  query.projections = {"dept.name"};
  query.use_replication = false;
  ReadResult result;
  FR_ASSERT_OK(db_->Retrieve(query, &result));
  EXPECT_EQ(result.access[0], ReadResult::Access::kJoin);
  EXPECT_EQ(result.rows[0][0], Value(Padded("dept0")));
}

TEST_F(QueryTest, UpdateWithoutPredicateTouchesWholeSet) {
  UpdateQuery query;
  query.set_name = "Dept";
  query.assignments = {{"budget", Value(int32_t{7})}};
  UpdateResult result;
  FR_ASSERT_OK(db_->Replace(query, &result));
  EXPECT_EQ(result.objects_updated, 4u);
  ReadQuery read;
  read.set_name = "Dept";
  read.projections = {"budget"};
  ReadResult rows;
  FR_ASSERT_OK(db_->Retrieve(read, &rows));
  for (const auto& row : rows.rows) EXPECT_EQ(row[0], Value(int32_t{7}));
}

TEST(PredicateTest, CompareValuesMatrix) {
  auto cmp = [](const Value& a, const Value& b) {
    auto r = CompareValues(a, b);
    EXPECT_TRUE(r.ok());
    return r.ok() ? *r : -99;
  };
  EXPECT_LT(cmp(Value(int32_t{1}), Value(int64_t{2})), 0);
  EXPECT_EQ(cmp(Value(int64_t{5}), Value(int32_t{5})), 0);
  EXPECT_GT(cmp(Value(2.5), Value(int32_t{2})), 0);
  EXPECT_LT(cmp(Value("abc"), Value("abd")), 0);
  EXPECT_LT(cmp(Value(Oid(1, 1, 1)), Value(Oid(1, 2, 0))), 0);
  EXPECT_FALSE(CompareValues(Value::Null(), Value(int32_t{1})).ok());
  EXPECT_FALSE(CompareValues(Value("x"), Value(int32_t{1})).ok());
}

TEST(PredicateTest, KeyRangeEdges) {
  TypeDescriptor type("T", {Int32Attr("v")});
  auto bound = BoundPredicate::Bind(
      Predicate::Compare("v", CompareOp::kLt, Value(int32_t{0})), type);
  ASSERT_TRUE(bound.ok());
  int64_t lo, hi;
  bool exact;
  FR_ASSERT_OK(bound->KeyRange(&lo, &hi, &exact));
  EXPECT_TRUE(exact);
  EXPECT_EQ(hi, -1);
  auto ge = BoundPredicate::Bind(
      Predicate::Compare("v", CompareOp::kGe, Value(int32_t{10})), type);
  ASSERT_TRUE(ge.ok());
  FR_ASSERT_OK(ge->KeyRange(&lo, &hi, &exact));
  EXPECT_EQ(lo, 10);
  EXPECT_EQ(hi, std::numeric_limits<int64_t>::max());
  // Matches agrees with the range semantics.
  auto m = ge->Matches(Value(int32_t{10}));
  ASSERT_TRUE(m.ok());
  EXPECT_TRUE(*m);
  m = ge->Matches(Value(int32_t{9}));
  EXPECT_FALSE(*m);
  m = ge->Matches(Value::Null());
  EXPECT_FALSE(*m);
}

// --- I/O accounting sanity (the paper's headline effect) -------------------------

TEST(QueryIoTest, InPlaceReadCostsLessThanJoin) {
  auto db = OpenEmployeeDatabase(8192);
  PopulateEmployees(db.get(), 4, 50, 2000);
  FR_ASSERT_OK(db->BuildIndex("emp_salary", "Emp1", "salary"));
  FR_ASSERT_OK(db->Replicate("Emp1.dept.name", {}));

  ReadQuery query;
  query.set_name = "Emp1";
  query.projections = {"name", "salary", "dept.name"};
  query.predicate = Predicate::Between("salary", Value(int32_t{0}),
                                       Value(int32_t{100000}));

  // Replica plan, cold.
  FR_ASSERT_OK(db->ColdStart());
  ReadResult result;
  FR_ASSERT_OK(db->Retrieve(query, &result));
  uint64_t replica_io = db->io_stats().disk_reads;

  // Join plan, cold.
  query.use_replication = false;
  FR_ASSERT_OK(db->ColdStart());
  ReadResult join_result;
  FR_ASSERT_OK(db->Retrieve(query, &join_result));
  uint64_t join_io = db->io_stats().disk_reads;

  EXPECT_EQ(result.rows, join_result.rows);
  EXPECT_LT(replica_io, join_io);
}

}  // namespace
}  // namespace fieldrep
