#include <cstdio>
#include <cstring>
#include <map>
#include <string>
#include <vector>

#include "common/random.h"
#include "common/strings.h"
#include "gtest/gtest.h"
#include "storage/buffer_pool.h"
#include "storage/file_device.h"
#include "storage/memory_device.h"
#include "storage/record_file.h"
#include "storage/slotted_page.h"
#include "test_util.h"

namespace fieldrep {
namespace {

using ::fieldrep::testing::EmployeeFixture;

// --- Oid --------------------------------------------------------------------

TEST(OidTest, PackedRoundTrip) {
  Oid oid(3, 123456, 42);
  EXPECT_EQ(Oid::FromPacked(oid.Packed()), oid);
  EXPECT_TRUE(oid.valid());
  EXPECT_FALSE(Oid::Invalid().valid());
}

TEST(OidTest, PackedOrderIsPhysicalOrder) {
  // file, then page, then slot — the clustered order Section 4.1 relies on.
  EXPECT_LT(Oid(1, 5, 9), Oid(2, 0, 0));
  EXPECT_LT(Oid(1, 5, 9), Oid(1, 6, 0));
  EXPECT_LT(Oid(1, 5, 9), Oid(1, 5, 10));
}

// --- Devices ----------------------------------------------------------------

TEST(MemoryDeviceTest, AllocateReadWrite) {
  MemoryDevice device;
  PageId id;
  FR_ASSERT_OK(device.AllocatePage(&id));
  EXPECT_EQ(id, 0u);
  EXPECT_EQ(device.page_count(), 1u);
  char out[kPageSize];
  char in[kPageSize];
  std::fill(in, in + kPageSize, 'x');
  FR_ASSERT_OK(device.WritePage(id, in));
  FR_ASSERT_OK(device.ReadPage(id, out));
  EXPECT_EQ(std::memcmp(in, out, kPageSize), 0);
}

TEST(MemoryDeviceTest, RejectsUnallocatedAccess) {
  MemoryDevice device;
  char buf[kPageSize];
  EXPECT_FALSE(device.ReadPage(5, buf).ok());
  EXPECT_FALSE(device.WritePage(5, buf).ok());
}

TEST(FileDeviceTest, PersistsAcrossReopen) {
  std::string path = ::testing::TempDir() + "/fieldrep_device_test.db";
  std::remove(path.c_str());
  {
    FileDevice device;
    FR_ASSERT_OK(device.Open(path));
    PageId id;
    FR_ASSERT_OK(device.AllocatePage(&id));
    char in[kPageSize];
    std::fill(in, in + kPageSize, 'q');
    FR_ASSERT_OK(device.WritePage(id, in));
    FR_ASSERT_OK(device.Close());
  }
  {
    FileDevice device;
    FR_ASSERT_OK(device.Open(path));
    EXPECT_EQ(device.page_count(), 1u);
    char out[kPageSize];
    FR_ASSERT_OK(device.ReadPage(0, out));
    EXPECT_EQ(out[100], 'q');
  }
  std::remove(path.c_str());
}

TEST(FileDeviceTest, ReopenRecoversPageCountFromFileSize) {
  std::string path = ::testing::TempDir() + "/fieldrep_device_count_test.db";
  std::remove(path.c_str());
  {
    FileDevice device;
    FR_ASSERT_OK(device.Open(path));
    char in[kPageSize];
    std::fill(in, in + kPageSize, 'a');
    for (int i = 0; i < 5; ++i) {
      PageId id;
      FR_ASSERT_OK(device.AllocatePage(&id));
      EXPECT_EQ(id, static_cast<PageId>(i));
      in[0] = static_cast<char>('a' + i);
      FR_ASSERT_OK(device.WritePage(id, in));
    }
    FR_ASSERT_OK(device.Close());
  }
  {
    FileDevice device;
    FR_ASSERT_OK(device.Open(path));
    EXPECT_EQ(device.page_count(), 5u);
    char out[kPageSize];
    for (int i = 0; i < 5; ++i) {
      FR_ASSERT_OK(device.ReadPage(i, out));
      EXPECT_EQ(out[0], static_cast<char>('a' + i));
    }
    // Allocation continues from the recovered count.
    PageId id;
    FR_ASSERT_OK(device.AllocatePage(&id));
    EXPECT_EQ(id, 5u);
  }
  std::remove(path.c_str());
}

TEST(FileDeviceTest, CloseIsIdempotent) {
  std::string path = ::testing::TempDir() + "/fieldrep_device_close_test.db";
  std::remove(path.c_str());
  FileDevice device;
  FR_ASSERT_OK(device.Open(path));
  PageId id;
  FR_ASSERT_OK(device.AllocatePage(&id));
  FR_ASSERT_OK(device.Close());
  FR_ASSERT_OK(device.Close());  // second close: clean no-op
  // Operations on a closed device fail cleanly rather than crash.
  char buf[kPageSize] = {0};
  EXPECT_FALSE(device.ReadPage(0, buf).ok());
  EXPECT_FALSE(device.WritePage(0, buf).ok());
  EXPECT_FALSE(device.AllocatePage(&id).ok());
  std::remove(path.c_str());
}

TEST(FileDeviceTest, ReadPastEofFailsCleanly) {
  std::string path = ::testing::TempDir() + "/fieldrep_device_eof_test.db";
  std::remove(path.c_str());
  FileDevice device;
  FR_ASSERT_OK(device.Open(path));
  PageId id;
  FR_ASSERT_OK(device.AllocatePage(&id));
  char buf[kPageSize] = {0};
  FR_ASSERT_OK(device.WritePage(0, buf));
  Status s = device.ReadPage(7, buf);
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOutOfRange) << s.ToString();
  // The failed read does not disturb the device.
  FR_ASSERT_OK(device.ReadPage(0, buf));
  EXPECT_EQ(device.page_count(), 1u);
  FR_ASSERT_OK(device.Close());
  std::remove(path.c_str());
}

// --- Slotted page -----------------------------------------------------------

class SlottedPageTest : public ::testing::Test {
 protected:
  SlottedPageTest() : page_(data_) { SlottedPage::Init(data_, PageType::kHeap); }
  uint8_t data_[kPageSize] = {};
  SlottedPage page_;
};

TEST_F(SlottedPageTest, InitState) {
  EXPECT_EQ(page_.page_type(), PageType::kHeap);
  EXPECT_EQ(page_.slot_count(), 0);
  EXPECT_EQ(page_.live_count(), 0);
  EXPECT_EQ(page_.next_page(), kInvalidPageId);
  EXPECT_EQ(page_.FreeSpace(), kUserBytesPerPage);
}

TEST_F(SlottedPageTest, InsertRead) {
  int slot = page_.Insert("hello world");
  ASSERT_GE(slot, 0);
  std::string out;
  ASSERT_TRUE(page_.ReadString(slot, &out));
  EXPECT_EQ(out, "hello world");
  EXPECT_EQ(page_.live_count(), 1);
}

TEST_F(SlottedPageTest, DeleteTombstonesAndReusesSlot) {
  int a = page_.Insert("aaa");
  int b = page_.Insert("bbb");
  ASSERT_TRUE(page_.Delete(a));
  EXPECT_FALSE(page_.IsLive(a));
  EXPECT_TRUE(page_.IsLive(b));
  int c = page_.Insert("ccc");
  EXPECT_EQ(c, a);  // tombstoned slot reused
  std::string out;
  ASSERT_TRUE(page_.ReadString(c, &out));
  EXPECT_EQ(out, "ccc");
}

TEST_F(SlottedPageTest, UpdateShrinkGrowInPlace) {
  int slot = page_.Insert(std::string(100, 'a'));
  ASSERT_TRUE(page_.Update(slot, std::string(50, 'b')));
  std::string out;
  ASSERT_TRUE(page_.ReadString(slot, &out));
  EXPECT_EQ(out, std::string(50, 'b'));
  ASSERT_TRUE(page_.Update(slot, std::string(200, 'c')));
  ASSERT_TRUE(page_.ReadString(slot, &out));
  EXPECT_EQ(out, std::string(200, 'c'));
}

TEST_F(SlottedPageTest, FillsToCapacityAndCompacts) {
  // Fill with 100-byte records until full.
  std::vector<int> slots;
  while (true) {
    int slot = page_.Insert(std::string(100, 'x'));
    if (slot < 0) break;
    slots.push_back(slot);
  }
  // 4056 / 104 = 39 records.
  EXPECT_EQ(slots.size(), kUserBytesPerPage / 104);
  // Delete every other record, then insert larger ones into the holes —
  // possible only via compaction.
  for (size_t i = 0; i < slots.size(); i += 2) {
    ASSERT_TRUE(page_.Delete(slots[i]));
  }
  int grown = page_.Insert(std::string(150, 'y'));
  EXPECT_GE(grown, 0);
  std::string out;
  ASSERT_TRUE(page_.ReadString(grown, &out));
  EXPECT_EQ(out, std::string(150, 'y'));
  // Survivors intact after compaction.
  for (size_t i = 1; i < slots.size(); i += 2) {
    ASSERT_TRUE(page_.ReadString(slots[i], &out));
    EXPECT_EQ(out, std::string(100, 'x'));
  }
}

TEST_F(SlottedPageTest, GrowBeyondSpaceFails) {
  int slot = page_.Insert(std::string(4000, 'x'));
  ASSERT_GE(slot, 0);
  EXPECT_FALSE(page_.Update(slot, std::string(4100, 'y')));
}

TEST(SlottedPagePropertyTest, RandomOpsMatchShadowModel) {
  uint8_t data[kPageSize];
  SlottedPage::Init(data, PageType::kHeap);
  SlottedPage page(data);
  std::map<int, std::string> shadow;
  Random rng(2024);
  for (int step = 0; step < 3000; ++step) {
    int action = static_cast<int>(rng.Uniform(10));
    if (action < 5) {  // insert
      std::string payload(10 + rng.Uniform(120), 'a' + step % 26);
      int slot = page.Insert(payload);
      if (slot >= 0) {
        ASSERT_EQ(shadow.count(slot), 0u) << "live slot reissued";
        shadow[slot] = payload;
      }
    } else if (action < 8 && !shadow.empty()) {  // update
      auto it = shadow.begin();
      std::advance(it, rng.Uniform(shadow.size()));
      std::string payload(10 + rng.Uniform(150), 'A' + step % 26);
      if (page.Update(it->first, payload)) it->second = payload;
    } else if (!shadow.empty()) {  // delete
      auto it = shadow.begin();
      std::advance(it, rng.Uniform(shadow.size()));
      ASSERT_TRUE(page.Delete(it->first));
      shadow.erase(it);
    }
    // Verify all shadow records every 100 steps (cheap enough).
    if (step % 100 == 0) {
      for (const auto& [slot, expected] : shadow) {
        std::string out;
        ASSERT_TRUE(page.ReadString(slot, &out));
        ASSERT_EQ(out, expected);
      }
      ASSERT_EQ(page.live_count(), shadow.size());
    }
  }
}

// --- Buffer pool -------------------------------------------------------------

TEST(BufferPoolTest, NewPageAndFetch) {
  MemoryDevice device;
  BufferPool pool(&device, 4);
  PageGuard guard;
  FR_ASSERT_OK(pool.NewPage(&guard));
  PageId id = guard.page_id();
  guard.data()[0] = 0x5A;
  guard.MarkDirty();
  guard.Release();
  PageGuard again;
  FR_ASSERT_OK(pool.FetchPage(id, &again));
  EXPECT_EQ(again.data()[0], 0x5A);
  EXPECT_EQ(pool.stats().hits, 1u);  // still cached
}

TEST(BufferPoolTest, EvictionWritesBackDirtyPages) {
  MemoryDevice device;
  BufferPool pool(&device, 2);
  std::vector<PageId> pages;
  for (int i = 0; i < 6; ++i) {
    PageGuard guard;
    FR_ASSERT_OK(pool.NewPage(&guard));
    guard.data()[0] = static_cast<uint8_t>(i);
    guard.MarkDirty();
    pages.push_back(guard.page_id());
  }
  // All six pages must read back correctly despite only 2 frames.
  for (int i = 0; i < 6; ++i) {
    PageGuard guard;
    FR_ASSERT_OK(pool.FetchPage(pages[i], &guard));
    EXPECT_EQ(guard.data()[0], static_cast<uint8_t>(i));
  }
  EXPECT_GT(pool.stats().disk_writes, 0u);
}

TEST(BufferPoolTest, PinnedPagesAreNotEvicted) {
  MemoryDevice device;
  BufferPool pool(&device, 2);
  PageGuard pinned1, pinned2;
  FR_ASSERT_OK(pool.NewPage(&pinned1));
  FR_ASSERT_OK(pool.NewPage(&pinned2));
  PageGuard third;
  Status s = pool.NewPage(&third);
  EXPECT_FALSE(s.ok());  // every frame pinned
  pinned1.Release();
  FR_ASSERT_OK(pool.NewPage(&third));
}

TEST(BufferPoolTest, EvictAllColdStart) {
  MemoryDevice device;
  BufferPool pool(&device, 8);
  PageGuard guard;
  FR_ASSERT_OK(pool.NewPage(&guard));
  PageId id = guard.page_id();
  guard.MarkDirty();
  guard.Release();
  FR_ASSERT_OK(pool.EvictAll());
  EXPECT_EQ(pool.pages_cached(), 0u);
  pool.ResetStats();
  PageGuard again;
  FR_ASSERT_OK(pool.FetchPage(id, &again));
  EXPECT_EQ(pool.stats().disk_reads, 1u);
  EXPECT_EQ(pool.stats().hits, 0u);
}

TEST(BufferPoolTest, EvictAllFailsWithPins) {
  MemoryDevice device;
  BufferPool pool(&device, 4);
  PageGuard guard;
  FR_ASSERT_OK(pool.NewPage(&guard));
  EXPECT_FALSE(pool.EvictAll().ok());
  guard.Release();
  FR_ASSERT_OK(pool.EvictAll());
}

TEST(BufferPoolTest, GuardMoveSemantics) {
  MemoryDevice device;
  BufferPool pool(&device, 4);
  PageGuard a;
  FR_ASSERT_OK(pool.NewPage(&a));
  PageGuard b = std::move(a);
  EXPECT_FALSE(a.valid());
  EXPECT_TRUE(b.valid());
  b.Release();
  EXPECT_EQ(pool.total_pins(), 0u);
}

TEST(BufferPoolPropertyTest, RandomWorkloadMatchesShadow) {
  MemoryDevice device;
  BufferPool pool(&device, 8);
  Random rng(77);
  std::map<PageId, uint8_t> shadow;
  for (int step = 0; step < 2000; ++step) {
    if (shadow.empty() || rng.Bernoulli(0.2)) {
      PageGuard guard;
      ASSERT_TRUE(pool.NewPage(&guard).ok());
      uint8_t stamp = static_cast<uint8_t>(rng.Uniform(256));
      guard.data()[17] = stamp;
      guard.MarkDirty();
      shadow[guard.page_id()] = stamp;
    } else {
      auto it = shadow.begin();
      std::advance(it, rng.Uniform(shadow.size()));
      PageGuard guard;
      ASSERT_TRUE(pool.FetchPage(it->first, &guard).ok());
      ASSERT_EQ(guard.data()[17], it->second);
      if (rng.Bernoulli(0.5)) {
        uint8_t stamp = static_cast<uint8_t>(rng.Uniform(256));
        guard.data()[17] = stamp;
        guard.MarkDirty();
        it->second = stamp;
      }
    }
  }
  ASSERT_TRUE(pool.FlushAll().ok());
  // Validate directly against the device.
  for (const auto& [page, stamp] : shadow) {
    uint8_t buf[kPageSize];
    ASSERT_TRUE(device.ReadPage(page, buf).ok());
    ASSERT_EQ(buf[17], stamp);
  }
}

// --- Record file --------------------------------------------------------------

class RecordFileTest : public ::testing::Test {
 protected:
  RecordFileTest() : pool_(&device_, 64), file_(&pool_, 7) {}
  MemoryDevice device_;
  BufferPool pool_;
  RecordFile file_;
};

TEST_F(RecordFileTest, InsertReadDelete) {
  Oid oid;
  FR_ASSERT_OK(file_.Insert("record one", &oid));
  EXPECT_EQ(oid.file_id, 7);
  std::string out;
  FR_ASSERT_OK(file_.Read(oid, &out));
  EXPECT_EQ(out, "record one");
  EXPECT_EQ(file_.record_count(), 1u);
  FR_ASSERT_OK(file_.Delete(oid));
  EXPECT_EQ(file_.record_count(), 0u);
  EXPECT_TRUE(file_.Read(oid, &out).IsNotFound());
}

TEST_F(RecordFileTest, InsertionOrderIsScanOrder) {
  std::vector<Oid> oids;
  for (int i = 0; i < 500; ++i) {
    Oid oid;
    FR_ASSERT_OK(file_.Insert(StringPrintf("rec%04d", i), &oid));
    oids.push_back(oid);
  }
  EXPECT_GT(file_.page_count(), 1u);
  std::vector<Oid> scanned;
  FR_ASSERT_OK(file_.ListOids(&scanned));
  EXPECT_EQ(scanned, oids);
  // Physical order: OIDs ascend.
  for (size_t i = 1; i < oids.size(); ++i) EXPECT_LT(oids[i - 1], oids[i]);
}

TEST_F(RecordFileTest, UpdateInPlace) {
  Oid oid;
  FR_ASSERT_OK(file_.Insert(std::string(50, 'a'), &oid));
  FR_ASSERT_OK(file_.Update(oid, std::string(60, 'b')));
  std::string out;
  FR_ASSERT_OK(file_.Read(oid, &out));
  EXPECT_EQ(out, std::string(60, 'b'));
}

TEST_F(RecordFileTest, UpdateRelocatesWithStableOid) {
  // Fill a page, then grow one record far beyond the page's free space.
  std::vector<Oid> oids;
  for (int i = 0; i < 39; ++i) {
    Oid oid;
    FR_ASSERT_OK(file_.Insert(std::string(100, 'x'), &oid));
    oids.push_back(oid);
  }
  Oid victim = oids[5];
  FR_ASSERT_OK(file_.Update(victim, std::string(2000, 'y')));
  std::string out;
  FR_ASSERT_OK(file_.Read(victim, &out));
  EXPECT_EQ(out, std::string(2000, 'y'));
  // Update the relocated record again (in place at its new home).
  FR_ASSERT_OK(file_.Update(victim, std::string(2100, 'z')));
  FR_ASSERT_OK(file_.Read(victim, &out));
  EXPECT_EQ(out, std::string(2100, 'z'));
  // Scan still shows exactly one record for the victim, with its logical
  // OID.
  std::vector<Oid> scanned;
  FR_ASSERT_OK(file_.ListOids(&scanned));
  EXPECT_EQ(scanned.size(), oids.size());
  EXPECT_EQ(std::count(scanned.begin(), scanned.end(), victim), 1);
  // Delete reclaims both stub and body.
  uint64_t before = file_.record_count();
  FR_ASSERT_OK(file_.Delete(victim));
  EXPECT_EQ(file_.record_count(), before - 1);
  EXPECT_TRUE(file_.Read(victim, &out).IsNotFound());
}

TEST_F(RecordFileTest, RejectsReservedPrefix) {
  std::string evil;
  evil.push_back('\xFF');
  evil.push_back('\xFF');
  evil += "payload";
  Oid oid;
  EXPECT_FALSE(file_.Insert(evil, &oid).ok());
}

TEST_F(RecordFileTest, TruncateEmptiesFile) {
  for (int i = 0; i < 100; ++i) {
    Oid oid;
    FR_ASSERT_OK(file_.Insert("data", &oid));
  }
  FR_ASSERT_OK(file_.Truncate());
  EXPECT_EQ(file_.record_count(), 0u);
  EXPECT_EQ(file_.page_count(), 0u);
  std::vector<Oid> oids;
  FR_ASSERT_OK(file_.ListOids(&oids));
  EXPECT_TRUE(oids.empty());
}

TEST_F(RecordFileTest, MetadataRoundTrip) {
  for (int i = 0; i < 50; ++i) {
    Oid oid;
    FR_ASSERT_OK(file_.Insert("payload", &oid));
  }
  std::string encoded = file_.EncodeMetadata();
  RecordFile reopened(&pool_, 7);
  FR_ASSERT_OK(reopened.DecodeMetadata(encoded));
  EXPECT_EQ(reopened.record_count(), 50u);
  EXPECT_EQ(reopened.page_count(), file_.page_count());
  std::vector<Oid> oids;
  FR_ASSERT_OK(reopened.ListOids(&oids));
  EXPECT_EQ(oids.size(), 50u);
}

TEST_F(RecordFileTest, RandomOpsMatchShadow) {
  Random rng(31337);
  std::map<uint64_t, std::string> shadow;
  std::vector<Oid> live;
  for (int step = 0; step < 4000; ++step) {
    int action = static_cast<int>(rng.Uniform(10));
    if (action < 5 || live.empty()) {
      std::string payload(1 + rng.Uniform(300), 'a' + step % 26);
      Oid oid;
      ASSERT_TRUE(file_.Insert(payload, &oid).ok());
      shadow[oid.Packed()] = payload;
      live.push_back(oid);
    } else if (action < 8) {
      size_t pick = rng.Uniform(live.size());
      std::string payload(1 + rng.Uniform(600), 'A' + step % 26);
      ASSERT_TRUE(file_.Update(live[pick], payload).ok());
      shadow[live[pick].Packed()] = payload;
    } else {
      size_t pick = rng.Uniform(live.size());
      ASSERT_TRUE(file_.Delete(live[pick]).ok());
      shadow.erase(live[pick].Packed());
      live.erase(live.begin() + pick);
    }
  }
  ASSERT_EQ(file_.record_count(), shadow.size());
  for (const auto& [packed, expected] : shadow) {
    std::string out;
    ASSERT_TRUE(file_.Read(Oid::FromPacked(packed), &out).ok());
    ASSERT_EQ(out, expected);
  }
  // Scan agrees with shadow.
  std::map<uint64_t, std::string> scanned;
  ASSERT_TRUE(file_
                  .Scan([&](const Oid& oid, const std::string& payload) {
                    scanned[oid.Packed()] = payload;
                    return true;
                  })
                  .ok());
  ASSERT_EQ(scanned, shadow);
}

TEST_F(RecordFileTest, FreeSpaceHintsRefillPages) {
  // Fill several pages, delete most records, and insert again: the file
  // should reuse the holes instead of growing.
  std::vector<Oid> oids;
  for (int i = 0; i < 300; ++i) {
    Oid oid;
    FR_ASSERT_OK(file_.Insert(std::string(100, 'x'), &oid));
    oids.push_back(oid);
  }
  uint32_t pages_before = file_.page_count();
  for (size_t i = 0; i < oids.size(); i += 2) {
    FR_ASSERT_OK(file_.Delete(oids[i]));
  }
  for (int i = 0; i < 100; ++i) {
    Oid oid;
    FR_ASSERT_OK(file_.Insert(std::string(100, 'y'), &oid));
  }
  EXPECT_EQ(file_.page_count(), pages_before);
}

TEST_F(RecordFileTest, GrowthReserveLeavesRoomForGrowth) {
  file_.set_growth_reserve(30);
  std::vector<Oid> oids;
  for (int i = 0; i < 200; ++i) {
    Oid oid;
    FR_ASSERT_OK(file_.Insert(std::string(100, 'x'), &oid));
    oids.push_back(oid);
  }
  // Every record can grow by the reserve without relocating: after the
  // growth each record still reads back and no forwarding stub was needed
  // (scan order stays identical to insert order).
  for (const Oid& oid : oids) {
    FR_ASSERT_OK(file_.Update(oid, std::string(130, 'y')));
  }
  std::vector<Oid> scanned;
  FR_ASSERT_OK(file_.ListOids(&scanned));
  EXPECT_EQ(scanned, oids);
  // Packing matches the model: floor(4056 / (100 + 4 + 30)) = 30 per page.
  EXPECT_EQ(file_.page_count(), (200 + 29) / 30);
}

TEST(IoStatsTest, DiffAndToString) {
  IoStats a;
  a.fetches = 10;
  a.hits = 4;
  a.disk_reads = 6;
  a.disk_writes = 2;
  IoStats b;
  b.fetches = 3;
  b.hits = 1;
  b.disk_reads = 2;
  b.disk_writes = 1;
  IoStats d = a - b;
  EXPECT_EQ(d.fetches, 7u);
  EXPECT_EQ(d.disk_reads, 4u);
  EXPECT_EQ(d.TotalIo(), 5u);
  EXPECT_NE(a.ToString().find("reads=6"), std::string::npos);
}

}  // namespace
}  // namespace fieldrep
