// Facade-level tests: Database error paths, I/O accounting surfaces, and
// the public API contracts the examples rely on.

#include "fieldrep/fieldrep.h"
#include "gtest/gtest.h"
#include "test_util.h"

namespace fieldrep {
namespace {

using ::fieldrep::testing::EmployeeFixture;
using ::fieldrep::testing::OpenEmployeeDatabase;
using ::fieldrep::testing::PopulateEmployees;

TEST(DatabaseTest, OpenBadPathFails) {
  Database::Options options;
  options.file_path = "/nonexistent-dir/nope/db.bin";
  EXPECT_FALSE(Database::Open(options).ok());
}

TEST(DatabaseTest, ZeroFrameOptionClampsToOne) {
  Database::Options options;
  options.buffer_pool_frames = 0;
  auto db = Database::Open(options);
  ASSERT_TRUE(db.ok());
  EXPECT_EQ((*db)->pool().capacity(), 1u);
}

TEST(DatabaseTest, SchemaErrorPaths) {
  auto db = OpenEmployeeDatabase();
  // Duplicate set.
  EXPECT_EQ(db->CreateSet("Emp1", "EMP").code(), StatusCode::kAlreadyExists);
  // Unknown type.
  EXPECT_TRUE(db->CreateSet("X", "GHOST").IsNotFound());
  // Replicating an unknown set / attribute.
  EXPECT_FALSE(db->Replicate("Ghost.dept.name", {}).ok());
  EXPECT_FALSE(db->Replicate("Emp1.ghost.name", {}).ok());
  // Index on unknown attribute.
  EXPECT_FALSE(db->BuildIndex("bad", "Emp1", "ghost").ok());
  // Duplicate index name.
  FR_ASSERT_OK(db->BuildIndex("idx", "Emp1", "salary"));
  EXPECT_EQ(db->BuildIndex("idx", "Emp1", "age").code(),
            StatusCode::kAlreadyExists);
  // Dropping a nonexistent replication path.
  EXPECT_TRUE(db->DropReplication("Emp1.dept.name").IsNotFound());
}

TEST(DatabaseTest, DataErrorPaths) {
  auto db = OpenEmployeeDatabase();
  EmployeeFixture fixture = PopulateEmployees(db.get(), 1, 2, 4);
  // Unknown set on every entry point.
  Object object;
  Oid oid;
  EXPECT_TRUE(db->Insert("Nope", object, &oid).IsNotFound());
  EXPECT_TRUE(db->Get("Nope", fixture.emps[0], &object).IsNotFound());
  EXPECT_TRUE(db->Delete("Nope", fixture.emps[0]).IsNotFound());
  // Unknown attribute on update.
  EXPECT_FALSE(
      db->Update("Emp1", fixture.emps[0], "ghost", Value(int32_t{1})).ok());
  // Type-mismatched value.
  EXPECT_FALSE(
      db->Update("Emp1", fixture.emps[0], "salary", Value("words")).ok());
  // OID from the wrong set.
  EXPECT_FALSE(db->Get("Emp1", fixture.depts[0], &object).ok());
  // Deleting twice.
  FR_ASSERT_OK(db->Delete("Emp1", fixture.emps[0]));
  EXPECT_FALSE(db->Delete("Emp1", fixture.emps[0]).ok());
}

TEST(DatabaseTest, ColdStartZeroesCounters) {
  auto db = OpenEmployeeDatabase();
  PopulateEmployees(db.get(), 1, 2, 30);
  FR_ASSERT_OK(db->ColdStart());
  EXPECT_EQ(db->io_stats().disk_reads, 0u);
  EXPECT_EQ(db->io_stats().disk_writes, 0u);
  ReadQuery query;
  query.set_name = "Emp1";
  query.projections = {"name"};
  ReadResult result;
  FR_ASSERT_OK(db->Retrieve(query, &result));
  // A scan of one data page (30 * ~70-byte objects) costs exactly that
  // page read.
  EXPECT_GE(db->io_stats().disk_reads, 1u);
  EXPECT_LE(db->io_stats().disk_reads, 2u);
  // Repeating the query warm costs nothing.
  uint64_t after_first = db->io_stats().disk_reads;
  FR_ASSERT_OK(db->Retrieve(query, &result));
  EXPECT_EQ(db->io_stats().disk_reads, after_first);
}

TEST(DatabaseTest, ReadQueryIoBreakdownMatchesPlan) {
  // With replication, the measured read touches only index + R pages +
  // output; the S file is never read.
  auto db = OpenEmployeeDatabase(8192);
  EmployeeFixture fixture = PopulateEmployees(db.get(), 2, 30, 600);
  FR_ASSERT_OK(db->BuildIndex("emp_salary", "Emp1", "salary"));
  FR_ASSERT_OK(db->Replicate("Emp1.dept.name", {}));
  auto emp_set = db->GetSet("Emp1");
  auto dept_set = db->GetSet("Dept");
  ASSERT_TRUE(emp_set.ok() && dept_set.ok());
  uint32_t emp_pages = (*emp_set)->file().page_count();

  ReadQuery query;
  query.set_name = "Emp1";
  query.projections = {"name", "dept.name"};
  query.predicate = Predicate::Between("salary", Value(int32_t{0}),
                                       Value(int32_t{599000}));
  FR_ASSERT_OK(db->ColdStart());
  ReadResult result;
  FR_ASSERT_OK(db->Retrieve(query, &result));
  EXPECT_EQ(result.rows.size(), 600u);
  // Full selection via the replica plan: all Emp1 pages plus the index
  // descent/leaves — and nothing from Dept.
  auto tree = db->indexes().GetIndex("emp_salary");
  ASSERT_TRUE(tree.ok());
  auto index_pages = (*tree)->PageCount();
  ASSERT_TRUE(index_pages.ok());
  uint64_t replica_reads = db->io_stats().disk_reads;
  EXPECT_GE(replica_reads, emp_pages);
  EXPECT_LE(replica_reads, emp_pages + *index_pages);
  // The join plan must additionally read Dept pages.
  query.use_replication = false;
  FR_ASSERT_OK(db->ColdStart());
  FR_ASSERT_OK(db->Retrieve(query, &result));
  EXPECT_GE(db->io_stats().disk_reads,
            replica_reads + (*dept_set)->file().page_count());
}

TEST(DatabaseTest, DescribeReflectsOptions) {
  auto db = OpenEmployeeDatabase();
  PopulateEmployees(db.get(), 2, 4, 8);
  ReplicateOptions deferred;
  deferred.deferred = true;
  FR_ASSERT_OK(db->Replicate("Emp1.dept.name", deferred));
  ReplicateOptions collapsed;
  collapsed.collapsed = true;
  FR_ASSERT_OK(db->Replicate("Emp1.dept.org.name", collapsed));
  std::string description = db->catalog().Describe();
  EXPECT_NE(description.find(", deferred"), std::string::npos);
  EXPECT_NE(description.find(", collapsed"), std::string::npos);
}

TEST(DatabaseTest, StorageReportNamesEveryFile) {
  auto db = OpenEmployeeDatabase();
  PopulateEmployees(db.get(), 2, 4, 20);
  FR_ASSERT_OK(db->Replicate("Emp1.dept.name", {}));
  ReplicateOptions separate;
  separate.strategy = ReplicationStrategy::kSeparate;
  FR_ASSERT_OK(db->Replicate("Emp1.dept.org.name", separate));
  FR_ASSERT_OK(db->BuildIndex("emp_salary", "Emp1", "salary"));
  std::string report = db->StorageReport();
  EXPECT_NE(report.find("set Emp1"), std::string::npos);
  EXPECT_NE(report.find("link set Emp1.dept"), std::string::npos);
  EXPECT_NE(report.find("replica set (S') for Emp1.dept.org.name"),
            std::string::npos);
  EXPECT_NE(report.find("index emp_salary"), std::string::npos);
  EXPECT_NE(report.find("device pages"), std::string::npos);
}

TEST(DatabaseTest, UmbrellaHeaderExposesEverything) {
  // Compile-time check mostly; exercise one symbol from each area.
  CostModelParams params;
  CostModel model(params);
  EXPECT_GT(model.ReadCost(ModelStrategy::kNoReplication,
                           IndexSetting::kUnclustered),
            0);
  EXPECT_GT(Yao(100, 10, 5), 0);
  auto db = Database::Open({});
  ASSERT_TRUE(db.ok());
  extra::Interpreter interpreter(db->get());
  auto out = interpreter.Execute("show catalog");
  EXPECT_TRUE(out.ok());
}

}  // namespace
}  // namespace fieldrep
