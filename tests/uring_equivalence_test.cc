// Device-equivalence suite (DESIGN.md §15): the storage backend is a
// physical-scheduling choice only. For the empirical_io workloads the
// logical I/O counts MeasureQueryCosts reports — the paper's cost unit —
// must be byte-identical between FileDevice and UringDevice, at any
// read-ahead window, and the query results themselves must be equal
// row for row.

#include <unistd.h>

#include <cstdio>
#include <string>
#include <vector>

#include "bench_util.h"
#include "common/strings.h"
#include "gtest/gtest.h"
#include "query/read_query.h"
#include "test_util.h"

namespace fieldrep {
namespace {

using ::fieldrep::bench::BuildModelWorkload;
using ::fieldrep::bench::MeasureQueryCosts;
using ::fieldrep::bench::MeasuredCosts;
using ::fieldrep::bench::ModelWorkload;
using ::fieldrep::bench::WorkloadOptions;

std::string BackendTempPath(Database::StorageBackend backend,
                            uint32_t window) {
  return StringPrintf("/tmp/fieldrep_uring_equiv_%d_%u_%d.db",
                      static_cast<int>(backend), window,
                      static_cast<int>(::getpid()));
}

/// Builds the workload file-backed on `backend` and measures the standard
/// query pair. The backing file is fresh per cell (same build seed), so
/// every cell sees an identical database image.
MeasuredCosts MeasureOnBackend(const WorkloadOptions& base_options,
                               Database::StorageBackend backend,
                               uint32_t window) {
  WorkloadOptions options = base_options;
  options.storage_backend = backend;
  options.read_ahead_window = window;
  options.file_path = BackendTempPath(backend, window);
  std::remove(options.file_path.c_str());
  auto workload_or = BuildModelWorkload(options);
  EXPECT_TRUE(workload_or.ok()) << workload_or.status().ToString();
  if (!workload_or.ok()) return {};
  ModelWorkload workload = std::move(workload_or).value();
  auto costs_or = MeasureQueryCosts(&workload, /*fr=*/0.1, /*fs=*/0.05,
                                    /*trials=*/2);
  EXPECT_TRUE(costs_or.ok()) << costs_or.status().ToString();
  workload.db.reset();
  std::remove(options.file_path.c_str());
  return costs_or.ok() ? costs_or.value() : MeasuredCosts{};
}

/// The full cell matrix: windows {0, 16} x backends {file, uring}. All
/// four cells must report the same logical I/O (the uring cells with an
/// inactive ring degrade to the synchronous path — still a valid cell).
void ExpectBackendIndependentLogicalIo(const WorkloadOptions& options) {
  const uint32_t kWindows[] = {0, 16};
  MeasuredCosts reference =
      MeasureOnBackend(options, Database::StorageBackend::kFile, 0);
  ASSERT_FALSE(::testing::Test::HasFailure());
  for (uint32_t window : kWindows) {
    for (Database::StorageBackend backend :
         {Database::StorageBackend::kFile,
          Database::StorageBackend::kUring}) {
      if (backend == Database::StorageBackend::kFile && window == 0) {
        continue;  // that's the reference cell
      }
      MeasuredCosts costs = MeasureOnBackend(options, backend, window);
      ASSERT_FALSE(::testing::Test::HasFailure());
      EXPECT_EQ(costs.read_io, reference.read_io)
          << "backend=" << static_cast<int>(backend) << " window=" << window;
      EXPECT_EQ(costs.update_io, reference.update_io)
          << "backend=" << static_cast<int>(backend) << " window=" << window;
    }
  }
}

TEST(UringEquivalenceTest, InPlaceLogicalIoMatchesAcrossBackends) {
  WorkloadOptions options;
  options.s_count = 300;
  options.f = 2;
  options.clustered = false;
  options.strategy = ModelStrategy::kInPlace;
  ExpectBackendIndependentLogicalIo(options);
}

TEST(UringEquivalenceTest, NoReplicationLogicalIoMatchesAcrossBackends) {
  WorkloadOptions options;
  options.s_count = 300;
  options.f = 1;
  options.clustered = true;
  options.strategy = ModelStrategy::kNoReplication;
  ExpectBackendIndependentLogicalIo(options);
}

TEST(UringEquivalenceTest, QueryRowsAreIdenticalAcrossBackends) {
  WorkloadOptions options;
  options.s_count = 300;
  options.f = 2;
  options.strategy = ModelStrategy::kInPlace;

  ReadResult results[2];
  int i = 0;
  for (Database::StorageBackend backend :
       {Database::StorageBackend::kFile, Database::StorageBackend::kUring}) {
    WorkloadOptions cell = options;
    cell.storage_backend = backend;
    cell.file_path = BackendTempPath(backend, /*window=*/16);
    std::remove(cell.file_path.c_str());
    auto workload_or = BuildModelWorkload(cell);
    ASSERT_TRUE(workload_or.ok()) << workload_or.status().ToString();
    ModelWorkload workload = std::move(workload_or).value();

    ReadQuery query;
    query.set_name = "R";
    query.projections = {"field_r", "sref.repfield"};
    FR_ASSERT_OK(workload.db->ColdStart());
    FR_ASSERT_OK(workload.db->Retrieve(query, &results[i]));
    workload.db.reset();
    std::remove(cell.file_path.c_str());
    ++i;
  }
  ASSERT_EQ(results[0].rows.size(), results[1].rows.size());
  EXPECT_GT(results[0].rows.size(), 0u);
  for (size_t row = 0; row < results[0].rows.size(); ++row) {
    EXPECT_EQ(results[0].rows[row], results[1].rows[row]) << "row " << row;
  }
  EXPECT_EQ(results[0].access, results[1].access);
}

}  // namespace
}  // namespace fieldrep
