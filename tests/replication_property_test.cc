#include "common/random.h"
#include "common/strings.h"
#include "gtest/gtest.h"
#include "test_util.h"

namespace fieldrep {
namespace {

using ::fieldrep::testing::EmployeeFixture;
using ::fieldrep::testing::OpenEmployeeDatabase;
using ::fieldrep::testing::PopulateEmployees;
using ::fieldrep::testing::TraversePath;

/// Parameter for the randomized maintenance soak: a strategy/shape
/// combination plus an RNG seed. After every burst of random mutations the
/// full path consistency invariant must hold: every stored replica equals
/// the forward-traversal ground truth, link membership is exact in both
/// directions, and separate-replication refcounts equal the true number of
/// referencing heads.
struct SoakCase {
  const char* name;
  const char* spec;
  ReplicationStrategy strategy;
  bool collapsed;
  uint32_t inline_threshold;
  uint64_t seed;
};

std::ostream& operator<<(std::ostream& os, const SoakCase& c) {
  return os << c.name;
}

class ReplicationSoakTest : public ::testing::TestWithParam<SoakCase> {};

TEST_P(ReplicationSoakTest, RandomMutationsPreserveConsistency) {
  const SoakCase& param = GetParam();
  auto db = OpenEmployeeDatabase();
  EmployeeFixture fixture = PopulateEmployees(db.get(), 3, 6, 30);

  ReplicateOptions options;
  options.strategy = param.strategy;
  options.collapsed = param.collapsed;
  options.inline_threshold = param.inline_threshold;
  FR_ASSERT_OK(db->Replicate(param.spec, options));
  const ReplicationPathInfo* path = db->catalog().FindPathBySpec(param.spec);
  ASSERT_NE(path, nullptr);

  Random rng(param.seed);
  std::vector<Oid> emps = fixture.emps;
  int emp_counter = 1000;

  for (int step = 0; step < 220; ++step) {
    int action = static_cast<int>(rng.Uniform(100));
    if (action < 20) {
      // Insert a head with a random (possibly null) dept.
      Value dept = rng.Bernoulli(0.85)
                       ? Value(fixture.depts[rng.Uniform(fixture.depts.size())])
                       : Value::Null();
      Object emp(0, {Value(StringPrintf("emp%d", emp_counter)),
                     Value(int32_t{25}), Value(int32_t{emp_counter}), dept});
      ++emp_counter;
      Oid oid;
      ASSERT_TRUE(db->Insert("Emp1", emp, &oid).ok());
      emps.push_back(oid);
    } else if (action < 35 && emps.size() > 3) {
      // Delete a head.
      size_t pick = rng.Uniform(emps.size());
      ASSERT_TRUE(db->Delete("Emp1", emps[pick]).ok());
      emps.erase(emps.begin() + pick);
    } else if (action < 60 && !emps.empty()) {
      // Retarget a head's dept ref (the update E.dept of Section 4.1.1).
      size_t pick = rng.Uniform(emps.size());
      Value dept = rng.Bernoulli(0.85)
                       ? Value(fixture.depts[rng.Uniform(fixture.depts.size())])
                       : Value::Null();
      ASSERT_TRUE(db->Update("Emp1", emps[pick], "dept", dept).ok());
    } else if (action < 75) {
      // Update a replicated terminal scalar.
      if (std::string(param.spec).find("org") != std::string::npos &&
          std::string(param.spec).find("org.name") != std::string::npos) {
        size_t pick = rng.Uniform(fixture.orgs.size());
        Status s = db->Update("Org", fixture.orgs[pick], "name",
                              Value(StringPrintf("org-v%d", step)));
        ASSERT_TRUE(s.ok()) << s.ToString();
      } else {
        size_t pick = rng.Uniform(fixture.depts.size());
        Status s = db->Update("Dept", fixture.depts[pick], "name",
                              Value(StringPrintf("dept-v%d", step)));
        ASSERT_TRUE(s.ok()) << s.ToString();
      }
    } else if (action < 90 &&
               (path->bound.level() == 2 ||
                std::string(param.spec) == "Emp1.dept.org")) {
      // Retarget D.org: for 2-level paths this is the interior ripple of
      // Section 4.1.2; for the ref-terminal path it is a replicated-value
      // update whose value is an OID.
      size_t pick = rng.Uniform(fixture.depts.size());
      Value org = rng.Bernoulli(0.85)
                      ? Value(fixture.orgs[rng.Uniform(fixture.orgs.size())])
                      : Value::Null();
      Status s = db->Update("Dept", fixture.depts[pick], "org", org);
      ASSERT_TRUE(s.ok()) << s.ToString();
    } else {
      // Update an unreplicated scalar (must be a no-op for the path).
      size_t pick = rng.Uniform(fixture.depts.size());
      ASSERT_TRUE(db->Update("Dept", fixture.depts[pick], "budget",
                             Value(static_cast<int32_t>(step)))
                      .ok());
    }

    if (step % 20 == 19) {
      Status s = db->replication().VerifyPathConsistency(path->id);
      ASSERT_TRUE(s.ok()) << "step " << step << ": " << s.ToString();
    }
  }
  FR_ASSERT_OK(db->replication().VerifyPathConsistency(path->id));

  // Final cross-check of every head against ground truth traversal.
  std::vector<std::string> attrs;
  {
    std::string spec = param.spec;
    auto parts = SplitString(spec, '.');
    attrs.assign(parts.begin() + 1, parts.end());
  }
  for (const Oid& emp : emps) {
    Object head;
    FR_ASSERT_OK(db->Get("Emp1", emp, &head));
    std::vector<Value> replica;
    FR_ASSERT_OK(
        db->replication().ReadReplicatedValues(*path, head, &replica));
    Value expected = TraversePath(db.get(), "Emp1", emp, attrs);
    ASSERT_EQ(replica.size(), 1u);
    EXPECT_EQ(replica[0], expected) << emp.ToString();
  }
}

INSTANTIATE_TEST_SUITE_P(
    Strategies, ReplicationSoakTest,
    ::testing::Values(
        SoakCase{"InPlace1Level", "Emp1.dept.name",
                 ReplicationStrategy::kInPlace, false, 1, 11},
        SoakCase{"InPlace1LevelNoInline", "Emp1.dept.name",
                 ReplicationStrategy::kInPlace, false, 0, 12},
        SoakCase{"InPlace1LevelInline3", "Emp1.dept.name",
                 ReplicationStrategy::kInPlace, false, 3, 13},
        SoakCase{"InPlace2Level", "Emp1.dept.org.name",
                 ReplicationStrategy::kInPlace, false, 1, 14},
        SoakCase{"InPlace2LevelNoInline", "Emp1.dept.org.name",
                 ReplicationStrategy::kInPlace, false, 0, 15},
        SoakCase{"Collapsed2Level", "Emp1.dept.org.name",
                 ReplicationStrategy::kInPlace, true, 1, 16},
        SoakCase{"Separate1Level", "Emp1.dept.name",
                 ReplicationStrategy::kSeparate, false, 1, 17},
        SoakCase{"Separate2Level", "Emp1.dept.org.name",
                 ReplicationStrategy::kSeparate, false, 1, 18},
        SoakCase{"RefTerminal", "Emp1.dept.org",
                 ReplicationStrategy::kInPlace, false, 1, 19},
        SoakCase{"InPlace2LevelSeedB", "Emp1.dept.org.name",
                 ReplicationStrategy::kInPlace, false, 1, 20},
        SoakCase{"Separate2LevelSeedB", "Emp1.dept.org.name",
                 ReplicationStrategy::kSeparate, false, 1, 21},
        SoakCase{"Collapsed2LevelSeedB", "Emp1.dept.org.name",
                 ReplicationStrategy::kInPlace, true, 1, 22}),
    [](const ::testing::TestParamInfo<SoakCase>& info) {
      return info.param.name;
    });

/// Multiple coexisting paths (shared prefixes + mixed strategies) must all
/// stay consistent under the same mutation stream.
TEST(ReplicationMultiPathSoakTest, AllPathsStayConsistent) {
  auto db = OpenEmployeeDatabase();
  EmployeeFixture fixture = PopulateEmployees(db.get(), 3, 6, 30);
  FR_ASSERT_OK(db->Replicate("Emp1.dept.name", {}));
  FR_ASSERT_OK(db->Replicate("Emp1.dept.budget", {}));
  FR_ASSERT_OK(db->Replicate("Emp1.dept.org.name", {}));
  ReplicateOptions separate;
  separate.strategy = ReplicationStrategy::kSeparate;
  FR_ASSERT_OK(db->Replicate("Emp1.dept.all", separate));

  Random rng(2718);
  std::vector<Oid> emps = fixture.emps;
  for (int step = 0; step < 150; ++step) {
    int action = static_cast<int>(rng.Uniform(100));
    if (action < 25 && !emps.empty()) {
      size_t pick = rng.Uniform(emps.size());
      Value dept = rng.Bernoulli(0.9)
                       ? Value(fixture.depts[rng.Uniform(fixture.depts.size())])
                       : Value::Null();
      ASSERT_TRUE(db->Update("Emp1", emps[pick], "dept", dept).ok());
    } else if (action < 45) {
      size_t pick = rng.Uniform(fixture.depts.size());
      ASSERT_TRUE(db->Update("Dept", fixture.depts[pick], "name",
                             Value(StringPrintf("d%d", step)))
                      .ok());
    } else if (action < 60) {
      size_t pick = rng.Uniform(fixture.depts.size());
      ASSERT_TRUE(db->Update("Dept", fixture.depts[pick], "budget",
                             Value(static_cast<int32_t>(step)))
                      .ok());
    } else if (action < 75) {
      size_t pick = rng.Uniform(fixture.depts.size());
      ASSERT_TRUE(db->Update("Dept", fixture.depts[pick], "org",
                             Value(fixture.orgs[rng.Uniform(3)]))
                      .ok());
    } else if (action < 85) {
      size_t pick = rng.Uniform(fixture.orgs.size());
      ASSERT_TRUE(db->Update("Org", fixture.orgs[pick], "name",
                             Value(StringPrintf("o%d", step)))
                      .ok());
    } else if (action < 93) {
      Object emp(0, {Value(StringPrintf("n%d", step)), Value(int32_t{20}),
                     Value(int32_t{step}),
                     Value(fixture.depts[rng.Uniform(fixture.depts.size())])});
      Oid oid;
      ASSERT_TRUE(db->Insert("Emp1", emp, &oid).ok());
      emps.push_back(oid);
    } else if (emps.size() > 5) {
      size_t pick = rng.Uniform(emps.size());
      ASSERT_TRUE(db->Delete("Emp1", emps[pick]).ok());
      emps.erase(emps.begin() + pick);
    }
    if (step % 30 == 29) {
      for (uint16_t path_id : db->catalog().AllPathIds()) {
        Status s = db->replication().VerifyPathConsistency(path_id);
        ASSERT_TRUE(s.ok()) << "step " << step << ": " << s.ToString();
      }
    }
  }
  for (uint16_t path_id : db->catalog().AllPathIds()) {
    FR_ASSERT_OK(db->replication().VerifyPathConsistency(path_id));
  }
}

/// UpdateFields batches (the update-query shape) behave like the
/// equivalent sequence of single-field updates.
TEST(ReplicationBatchUpdateTest, MultiFieldUpdatePropagates) {
  auto db = OpenEmployeeDatabase();
  EmployeeFixture fixture = PopulateEmployees(db.get(), 2, 4, 16);
  FR_ASSERT_OK(db->Replicate("Emp1.dept.all", {}));
  const ReplicationPathInfo* path =
      db->catalog().FindPathBySpec("Emp1.dept.all");
  auto dept_set = db->GetSet("Dept");
  ASSERT_TRUE(dept_set.ok());
  int name_attr = (*dept_set)->type().FindAttribute("name");
  int budget_attr = (*dept_set)->type().FindAttribute("budget");
  FR_ASSERT_OK(db->replication().UpdateFields(
      "Dept", fixture.depts[0],
      {{name_attr, Value("both")}, {budget_attr, Value(int32_t{1234})}}));
  FR_ASSERT_OK(db->replication().VerifyPathConsistency(path->id));
  Object head;
  FR_ASSERT_OK(db->Get("Emp1", fixture.emps[0], &head));
  const ReplicaValueSlot* slot = head.FindReplicaValues(path->id);
  ASSERT_NE(slot, nullptr);
  std::string padded = "both";
  padded.resize(20, '\0');
  EXPECT_EQ(slot->values[0], Value(padded));
  EXPECT_EQ(slot->values[1], Value(int32_t{1234}));
}

}  // namespace
}  // namespace fieldrep
