#include <cstring>
#include <string>
#include <vector>

#include "storage/fault_injecting_device.h"
#include "storage/memory_device.h"
#include "test_util.h"
#include "wal/log_reader.h"
#include "wal/log_record.h"
#include "wal/log_writer.h"
#include "wal/recovery_manager.h"
#include "wal/wal_manager.h"

namespace fieldrep {
namespace {

using ::fieldrep::testing::OpenEmployeeDatabase;
using ::fieldrep::testing::PopulateEmployees;

// ---------------------------------------------------------------------------
// Record wire format
// ---------------------------------------------------------------------------

TEST(Crc32Test, MatchesIeeeCheckValue) {
  // The standard CRC-32 check value.
  EXPECT_EQ(Crc32("123456789", 9), 0xCBF43926u);
  EXPECT_EQ(Crc32("", 0), 0u);
}

TEST(LogRecordTest, PageWriteRoundtrip) {
  LogRecord rec;
  rec.type = LogRecordType::kPageWrite;
  rec.epoch = 7;
  rec.txn_id = 42;
  rec.page_id = 9;
  rec.offset = 100;
  rec.bytes = std::string(33, 'x');

  std::string wire;
  rec.AppendTo(&wire);
  ASSERT_EQ(wire.size(), rec.WireSize());

  LogRecord parsed;
  ASSERT_TRUE(LogRecord::ParseBody(
      reinterpret_cast<const uint8_t*>(wire.data()) + 8, wire.size() - 8,
      &parsed));
  EXPECT_EQ(parsed.type, LogRecordType::kPageWrite);
  EXPECT_EQ(parsed.epoch, 7u);
  EXPECT_EQ(parsed.txn_id, 42u);
  EXPECT_EQ(parsed.page_id, 9u);
  EXPECT_EQ(parsed.offset, 100u);
  EXPECT_EQ(parsed.bytes, rec.bytes);
}

TEST(LogRecordTest, RejectsMalformedBodies) {
  LogRecord rec;
  rec.type = LogRecordType::kCommit;
  rec.txn_id = 1;
  std::string wire;
  rec.AppendTo(&wire);
  uint8_t* body = reinterpret_cast<uint8_t*>(wire.data()) + 8;
  size_t body_len = wire.size() - 8;

  LogRecord parsed;
  ASSERT_TRUE(LogRecord::ParseBody(body, body_len, &parsed));
  // Invalid type byte (after the u64 epoch).
  body[8] = 99;
  EXPECT_FALSE(LogRecord::ParseBody(body, body_len, &parsed));
  body[8] = 0;
  EXPECT_FALSE(LogRecord::ParseBody(body, body_len, &parsed));
  // Truncated body.
  body[8] = static_cast<uint8_t>(LogRecordType::kCommit);
  EXPECT_FALSE(LogRecord::ParseBody(body, body_len - 1, &parsed));
}

TEST(LogRecordTest, RejectsOutOfPageRanges) {
  LogRecord rec;
  rec.type = LogRecordType::kPageWrite;
  rec.txn_id = 1;
  rec.page_id = 1;
  rec.offset = kPageSize - 8;
  rec.bytes = std::string(16, 'y');  // offset + length > kPageSize
  std::string wire;
  rec.AppendTo(&wire);
  LogRecord parsed;
  EXPECT_FALSE(LogRecord::ParseBody(
      reinterpret_cast<const uint8_t*>(wire.data()) + 8, wire.size() - 8,
      &parsed));
}

// ---------------------------------------------------------------------------
// Writer / reader
// ---------------------------------------------------------------------------

LogRecord MakeWrite(uint64_t txn, PageId page, uint32_t offset,
                    const std::string& bytes) {
  LogRecord rec;
  rec.type = LogRecordType::kPageWrite;
  rec.txn_id = txn;
  rec.page_id = page;
  rec.offset = offset;
  rec.bytes = bytes;
  return rec;
}

TEST(LogWriterReaderTest, RoundtripAcrossPageBoundaries) {
  MemoryDevice device;
  LogWriter writer(&device);
  FR_ASSERT_OK(writer.Reset(1));

  // Payloads near page size force records to straddle page boundaries.
  const int n = 10;
  for (int i = 0; i < n; ++i) {
    FR_ASSERT_OK(writer.Append(
        MakeWrite(i, i, i * 3, std::string(3000 + i * 17, 'a' + i % 26))));
  }
  FR_ASSERT_OK(writer.Sync());
  EXPECT_EQ(writer.durable_lsn(), writer.next_lsn());
  EXPECT_EQ(writer.records_appended(), static_cast<uint64_t>(n));

  LogReader reader(&device);
  bool valid = false;
  FR_ASSERT_OK(reader.Open(&valid));
  ASSERT_TRUE(valid);
  EXPECT_EQ(reader.epoch(), 1u);
  for (int i = 0; i < n; ++i) {
    LogRecord rec;
    bool end = true;
    FR_ASSERT_OK(reader.ReadNext(&rec, &end));
    ASSERT_FALSE(end) << "record " << i;
    EXPECT_EQ(rec.txn_id, static_cast<uint64_t>(i));
    EXPECT_EQ(rec.page_id, static_cast<PageId>(i));
    EXPECT_EQ(rec.bytes.size(), 3000u + i * 17);
  }
  LogRecord rec;
  bool end = false;
  FR_ASSERT_OK(reader.ReadNext(&rec, &end));
  EXPECT_TRUE(end);
}

TEST(LogWriterReaderTest, ReaderStopsAtCorruption) {
  MemoryDevice device;
  LogWriter writer(&device);
  FR_ASSERT_OK(writer.Reset(3));
  for (int i = 0; i < 6; ++i) {
    FR_ASSERT_OK(writer.Append(MakeWrite(i, 1, 0, std::string(200, 'z'))));
  }
  FR_ASSERT_OK(writer.Sync());

  // Flip one byte in the middle of the stream (page 1 holds the first
  // few records).
  uint8_t page[kPageSize];
  FR_ASSERT_OK(device.ReadPage(1, page));
  page[700] ^= 0xFF;
  FR_ASSERT_OK(device.WritePage(1, page));

  LogReader reader(&device);
  bool valid = false;
  FR_ASSERT_OK(reader.Open(&valid));
  ASSERT_TRUE(valid);
  int read = 0;
  while (true) {
    LogRecord rec;
    bool end = true;
    FR_ASSERT_OK(reader.ReadNext(&rec, &end));
    if (end) break;
    ++read;
  }
  EXPECT_LT(read, 6);  // the scan stopped at the corrupt record, cleanly
}

TEST(LogWriterReaderTest, EpochResetLogicallyTruncates) {
  MemoryDevice device;
  LogWriter writer(&device);
  FR_ASSERT_OK(writer.Reset(1));
  for (int i = 0; i < 20; ++i) {
    FR_ASSERT_OK(writer.Append(MakeWrite(i, 1, 0, std::string(500, 'o'))));
  }
  FR_ASSERT_OK(writer.Sync());

  // New epoch: the stream restarts at LSN 0; the device is NOT truncated,
  // stale epoch-1 bytes remain beyond the new tail.
  FR_ASSERT_OK(writer.Reset(2));
  FR_ASSERT_OK(writer.Append(MakeWrite(100, 2, 8, "fresh")));
  FR_ASSERT_OK(writer.Sync());

  LogReader reader(&device);
  bool valid = false;
  FR_ASSERT_OK(reader.Open(&valid));
  ASSERT_TRUE(valid);
  EXPECT_EQ(reader.epoch(), 2u);
  LogRecord rec;
  bool end = true;
  FR_ASSERT_OK(reader.ReadNext(&rec, &end));
  ASSERT_FALSE(end);
  EXPECT_EQ(rec.txn_id, 100u);
  EXPECT_EQ(rec.bytes, "fresh");
  FR_ASSERT_OK(reader.ReadNext(&rec, &end));
  EXPECT_TRUE(end);  // stale epoch-1 records are invisible
}

TEST(LogReaderTest, EmptyOrForeignDeviceIsNotALog) {
  MemoryDevice empty;
  LogReader reader(&empty);
  bool valid = true;
  FR_ASSERT_OK(reader.Open(&valid));
  EXPECT_FALSE(valid);

  MemoryDevice garbage;
  PageId id;
  FR_ASSERT_OK(garbage.AllocatePage(&id));
  uint8_t page[kPageSize];
  std::memset(page, 0xAB, sizeof(page));
  FR_ASSERT_OK(garbage.WritePage(0, page));
  LogReader reader2(&garbage);
  valid = true;
  FR_ASSERT_OK(reader2.Open(&valid));
  EXPECT_FALSE(valid);
}

// ---------------------------------------------------------------------------
// Recovery
// ---------------------------------------------------------------------------

TEST(RecoveryTest, AppliesCommittedSkipsUncommitted) {
  MemoryDevice db;
  // Two pages of known content.
  for (int i = 0; i < 2; ++i) {
    PageId id;
    FR_ASSERT_OK(db.AllocatePage(&id));
  }
  uint8_t page[kPageSize];
  std::memset(page, 0x11, sizeof(page));
  FR_ASSERT_OK(db.WritePage(0, page));
  FR_ASSERT_OK(db.WritePage(1, page));

  MemoryDevice log;
  LogWriter writer(&log);
  FR_ASSERT_OK(writer.Reset(5));
  // Txn 1 commits: writes "AAAA" at offset 10 of page 0, and extends the
  // device with page 2.
  LogRecord begin;
  begin.type = LogRecordType::kBegin;
  begin.txn_id = 1;
  FR_ASSERT_OK(writer.Append(begin));
  FR_ASSERT_OK(writer.Append(MakeWrite(1, 0, 10, "AAAA")));
  FR_ASSERT_OK(writer.Append(MakeWrite(1, 2, 0, "NEWPAGE")));
  LogRecord commit;
  commit.type = LogRecordType::kCommit;
  commit.txn_id = 1;
  FR_ASSERT_OK(writer.Append(commit));
  // Txn 2 never commits: its write must not be applied.
  begin.txn_id = 2;
  FR_ASSERT_OK(writer.Append(begin));
  FR_ASSERT_OK(writer.Append(MakeWrite(2, 1, 0, "LOST")));
  FR_ASSERT_OK(writer.Sync());

  RecoveryStats stats;
  FR_ASSERT_OK(RecoveryManager::Recover(&db, &log, &stats));
  EXPECT_TRUE(stats.log_found);
  EXPECT_EQ(stats.epoch, 5u);
  EXPECT_EQ(stats.committed_txns, 1u);
  EXPECT_EQ(stats.skipped_txns, 1u);
  EXPECT_EQ(stats.pages_written, 2u);

  FR_ASSERT_OK(db.ReadPage(0, page));
  EXPECT_EQ(std::memcmp(page + 10, "AAAA", 4), 0);
  EXPECT_EQ(page[9], 0x11);
  EXPECT_EQ(page[14], 0x11);
  FR_ASSERT_OK(db.ReadPage(1, page));
  EXPECT_EQ(page[0], 0x11);  // uncommitted write discarded
  ASSERT_EQ(db.page_count(), 3u);
  FR_ASSERT_OK(db.ReadPage(2, page));
  EXPECT_EQ(std::memcmp(page, "NEWPAGE", 7), 0);

  // Replay is idempotent: recovering again changes nothing.
  RecoveryStats again;
  FR_ASSERT_OK(RecoveryManager::Recover(&db, &log, &again));
  EXPECT_EQ(again.committed_txns, 1u);
  FR_ASSERT_OK(db.ReadPage(0, page));
  EXPECT_EQ(std::memcmp(page + 10, "AAAA", 4), 0);
}

// ---------------------------------------------------------------------------
// Fault injection
// ---------------------------------------------------------------------------

TEST(FaultInjectingDeviceTest, CrashesAfterBudgetAndRevivesOnReset) {
  MemoryDevice base;
  FaultPlan plan;
  FaultInjectingDevice device(&base, &plan);

  PageId id;
  FR_ASSERT_OK(device.AllocatePage(&id));  // unarmed: passes
  uint8_t page[kPageSize];
  std::memset(page, 1, sizeof(page));
  FR_ASSERT_OK(device.WritePage(0, page));

  plan.Arm(2);
  FR_ASSERT_OK(device.WritePage(0, page));   // op 1
  EXPECT_FALSE(device.Sync().ok());          // op 2 trips the crash
  EXPECT_TRUE(plan.crashed);
  EXPECT_FALSE(device.WritePage(0, page).ok());  // machine is down
  EXPECT_FALSE(device.ReadPage(0, page).ok());
  EXPECT_FALSE(device.AllocatePage(&id).ok());

  plan.Reset();  // reboot: surviving data is intact
  FR_ASSERT_OK(device.ReadPage(0, page));
  EXPECT_EQ(page[0], 1);
  FR_ASSERT_OK(device.WritePage(0, page));
}

TEST(FaultInjectingDeviceTest, TornWritePersistsFirstHalfOnly) {
  MemoryDevice base;
  FaultPlan plan;
  FaultInjectingDevice device(&base, &plan);
  PageId id;
  FR_ASSERT_OK(device.AllocatePage(&id));
  uint8_t old_page[kPageSize];
  std::memset(old_page, 0xAA, sizeof(old_page));
  FR_ASSERT_OK(device.WritePage(0, old_page));

  plan.Arm(1, /*torn=*/true);
  uint8_t new_page[kPageSize];
  std::memset(new_page, 0xBB, sizeof(new_page));
  EXPECT_FALSE(device.WritePage(0, new_page).ok());
  EXPECT_TRUE(plan.crashed);

  plan.Reset();
  uint8_t got[kPageSize];
  FR_ASSERT_OK(device.ReadPage(0, got));
  EXPECT_EQ(got[0], 0xBB);                  // first half: new bytes
  EXPECT_EQ(got[kPageSize / 2 - 1], 0xBB);
  EXPECT_EQ(got[kPageSize / 2], 0xAA);      // second half: old bytes
  EXPECT_EQ(got[kPageSize - 1], 0xAA);
}

// ---------------------------------------------------------------------------
// WAL-enabled database
// ---------------------------------------------------------------------------

Database::Options WalMemoryOptions(StorageDevice* disk, StorageDevice* log,
                                   bool sync_on_commit = true) {
  Database::Options options;
  options.buffer_pool_frames = 512;
  options.device = disk;
  options.wal_device = log;
  options.enable_wal = true;
  options.wal_sync_on_commit = sync_on_commit;
  return options;
}

TEST(WalDatabaseTest, NormalOperationsWorkAndCommitTransactions) {
  MemoryDevice disk, log;
  auto db_or = Database::Open(WalMemoryOptions(&disk, &log));
  FR_ASSERT_OK(db_or.status());
  auto db = std::move(db_or).value();
  ASSERT_NE(db->wal(), nullptr);

  FR_ASSERT_OK(db->DefineType(TypeDescriptor(
      "DEPT", {CharAttr("name", 20), Int32Attr("budget")})));
  FR_ASSERT_OK(db->CreateSet("Dept", "DEPT"));
  Oid dept;
  FR_ASSERT_OK(db->Insert(
      "Dept", Object(0, {Value("sales"), Value(int32_t{100})}), &dept));
  FR_ASSERT_OK(db->Update("Dept", dept, "budget", Value(int32_t{250})));

  const WalStats& stats = db->wal()->stats();
  EXPECT_GE(stats.transactions, 2u);  // insert + update at minimum
  EXPECT_GT(stats.records, 0u);
  EXPECT_GT(stats.delta_bytes, 0u);
  EXPECT_FALSE(db->wal()->broken());

  Object got;
  FR_ASSERT_OK(db->Get("Dept", dept, &got));
  EXPECT_EQ(got.field(1).as_int32(), 250);
}

TEST(WalDatabaseTest, CommittedStateSurvivesCrashWithoutCheckpoint) {
  MemoryDevice disk, log;
  FaultPlan plan;
  FaultInjectingDevice db_dev(&disk, &plan);
  FaultInjectingDevice log_dev(&log, &plan);
  Oid dept;
  {
    auto db_or = Database::Open(WalMemoryOptions(&db_dev, &log_dev));
    FR_ASSERT_OK(db_or.status());
    auto db = std::move(db_or).value();
    FR_ASSERT_OK(db->DefineType(TypeDescriptor(
        "DEPT", {CharAttr("name", 20), Int32Attr("budget")})));
    FR_ASSERT_OK(db->CreateSet("Dept", "DEPT"));
    FR_ASSERT_OK(db->Insert(
        "Dept", Object(0, {Value("sales"), Value(int32_t{100})}), &dept));
    FR_ASSERT_OK(db->Update("Dept", dept, "budget", Value(int32_t{777})));
    // Crash NOW: no Checkpoint ran, no data page was ever flushed — the
    // committed state exists only in the log. Every write from here on
    // (including destructor writeback) is lost.
    plan.Arm(1);
  }
  plan.Reset();

  auto db_or = Database::Open(WalMemoryOptions(&db_dev, &log_dev));
  FR_ASSERT_OK(db_or.status());
  auto db = std::move(db_or).value();
  EXPECT_TRUE(db->recovery_stats().log_found);
  EXPECT_GE(db->recovery_stats().committed_txns, 2u);
  Object got;
  FR_ASSERT_OK(db->Get("Dept", dept, &got));
  EXPECT_EQ(got.field(1).as_int32(), 777);
}

TEST(WalDatabaseTest, CheckpointTruncatesLogAndSurvivesReopen) {
  MemoryDevice disk, log;
  Oid emp;
  std::string spec = "Emp1.dept.name";
  {
    auto db_or = Database::Open(WalMemoryOptions(&disk, &log));
    FR_ASSERT_OK(db_or.status());
    auto db = std::move(db_or).value();
    FR_ASSERT_OK(db->DefineType(
        TypeDescriptor("DEPT", {CharAttr("name", 20), Int32Attr("budget")})));
    FR_ASSERT_OK(db->DefineType(TypeDescriptor(
        "EMP", {CharAttr("name", 20), Int32Attr("salary"),
                RefAttr("dept", "DEPT")})));
    FR_ASSERT_OK(db->CreateSet("Dept", "DEPT"));
    FR_ASSERT_OK(db->CreateSet("Emp1", "EMP"));
    Oid dept;
    FR_ASSERT_OK(db->Insert(
        "Dept", Object(0, {Value("sales"), Value(int32_t{1})}), &dept));
    FR_ASSERT_OK(db->Insert(
        "Emp1", Object(0, {Value("alice"), Value(int32_t{10}), Value(dept)}),
        &emp));
    FR_ASSERT_OK(db->Replicate(spec, {}));
    uint64_t epoch_before = db->wal()->epoch();
    uint64_t log_before = db->wal()->log_bytes();
    EXPECT_GT(log_before, 0u);
    FR_ASSERT_OK(db->Checkpoint());
    EXPECT_GT(db->wal()->epoch(), epoch_before);  // new epoch = truncated
    EXPECT_EQ(db->wal()->log_bytes(), 0u);
    EXPECT_EQ(db->wal()->stats().checkpoints, 1u);
  }

  auto db_or = Database::Open(WalMemoryOptions(&disk, &log));
  FR_ASSERT_OK(db_or.status());
  auto db = std::move(db_or).value();
  const ReplicationPathInfo* path = db->replication().FindPath(spec);
  ASSERT_NE(path, nullptr);
  FR_ASSERT_OK(db->replication().VerifyPathConsistency(path->id));
  Object got;
  FR_ASSERT_OK(db->Get("Emp1", emp, &got));
}

TEST(WalDatabaseTest, GroupCommitSyncsLogBeforeAnyPageFlush) {
  MemoryDevice disk, log;
  auto db_or = Database::Open(
      WalMemoryOptions(&disk, &log, /*sync_on_commit=*/false));
  FR_ASSERT_OK(db_or.status());
  auto db = std::move(db_or).value();
  FR_ASSERT_OK(db->DefineType(TypeDescriptor(
      "DEPT", {CharAttr("name", 20), Int32Attr("budget")})));
  FR_ASSERT_OK(db->CreateSet("Dept", "DEPT"));
  Oid dept;
  FR_ASSERT_OK(db->Insert(
      "Dept", Object(0, {Value("sales"), Value(int32_t{5})}), &dept));

  // Group commit: the commit is flushed but not yet durable.
  EXPECT_LT(db->wal()->durable_lsn(), db->wal()->log_bytes());
  uint64_t syncs_before = db->wal()->stats().log_syncs;

  // Flushing a data page must first make the log durable through that
  // page's commit record — the write-ahead invariant.
  FR_ASSERT_OK(db->pool().FlushAll());
  EXPECT_EQ(db->wal()->durable_lsn(), db->wal()->log_bytes());
  EXPECT_GT(db->wal()->stats().log_syncs, syncs_before);
}

TEST(WalDatabaseTest, FileBackedEndToEnd) {
  std::string dir = ::testing::TempDir();
  std::string db_path = dir + "/wal_e2e.frdb";
  std::string wal_path = db_path + ".wal";
  ::remove(db_path.c_str());
  ::remove(wal_path.c_str());

  Database::Options options;
  options.buffer_pool_frames = 256;
  options.file_path = db_path;
  options.enable_wal = true;
  Oid dept;
  {
    auto db_or = Database::Open(options);
    FR_ASSERT_OK(db_or.status());
    auto db = std::move(db_or).value();
    FR_ASSERT_OK(db->DefineType(TypeDescriptor(
        "DEPT", {CharAttr("name", 20), Int32Attr("budget")})));
    FR_ASSERT_OK(db->CreateSet("Dept", "DEPT"));
    FR_ASSERT_OK(db->Insert(
        "Dept", Object(0, {Value("ops"), Value(int32_t{9})}), &dept));
    FR_ASSERT_OK(db->Checkpoint());
    FR_ASSERT_OK(db->Update("Dept", dept, "budget", Value(int32_t{11})));
    // No checkpoint after the update: reopen must recover it from the
    // .wal file.
  }
  {
    auto db_or = Database::Open(options);
    FR_ASSERT_OK(db_or.status());
    auto db = std::move(db_or).value();
    Object got;
    FR_ASSERT_OK(db->Get("Dept", dept, &got));
    EXPECT_EQ(got.field(1).as_int32(), 11);
  }
  ::remove(db_path.c_str());
  ::remove(wal_path.c_str());
}

TEST(WalDatabaseTest, WalOffBehavesAsBefore) {
  auto db = OpenEmployeeDatabase();
  EXPECT_EQ(db->wal(), nullptr);
  EXPECT_FALSE(db->recovery_stats().log_found);
  PopulateEmployees(db.get(), 2, 4, 16);
  FR_ASSERT_OK(db->Replicate("Emp1.dept.name", {}));
  const ReplicationPathInfo* path =
      db->replication().FindPath("Emp1.dept.name");
  ASSERT_NE(path, nullptr);
  FR_ASSERT_OK(db->replication().VerifyPathConsistency(path->id));
}

}  // namespace
}  // namespace fieldrep
