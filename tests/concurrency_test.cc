// Concurrency suite (the CI tsan lane runs exactly this file plus the
// parallel-equivalence suite): reader threads against a writer driving
// in-place replica propagation, single-flight cold fetches, shared-latch
// co-residency, and pin/guard hygiene. Assertions from worker threads are
// funneled through atomic counters; gtest macros run on the main thread.

#include <atomic>
#include <cstdint>
#include <string>
#include <thread>
#include <vector>

#include "gtest/gtest.h"
#include "storage/buffer_pool.h"
#include "storage/memory_device.h"
#include "test_util.h"

namespace fieldrep {
namespace {

using ::fieldrep::testing::EmployeeFixture;
using ::fieldrep::testing::ExpectCleanIntegrity;
using ::fieldrep::testing::OpenEmployeeDatabase;
using ::fieldrep::testing::PopulateEmployees;

// Eight threads cold-fetch the same page concurrently: the in-flight
// marker makes exactly one of them perform the device read, the other
// seven either wait on it or hit afterwards — the logical counters are
// deterministic under every interleaving.
TEST(ConcurrencyTest, SingleFlightColdFetchIsDeterministic) {
  MemoryDevice device;
  BufferPool pool(&device, 64);
  PageId page_id;
  {
    PageGuard guard;
    FR_ASSERT_OK(pool.NewPage(&guard));
    page_id = guard.page_id();
  }
  FR_ASSERT_OK(pool.FlushAll());
  FR_ASSERT_OK(pool.EvictAll());
  pool.ResetStats();

  constexpr int kThreads = 8;
  std::atomic<int> holding{0};
  std::atomic<int> errors{0};
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      PageGuard guard;
      Status s = pool.FetchPage(page_id, &guard, LatchMode::kShared);
      if (!s.ok()) {
        ++errors;
        return;
      }
      // Hold the shared latch until every thread holds it: proves shared
      // guards are concurrently holdable on one frame.
      ++holding;
      while (holding.load() < kThreads) std::this_thread::yield();
    });
  }
  for (auto& thread : threads) thread.join();

  EXPECT_EQ(errors.load(), 0);
  IoStats stats = pool.stats();
  EXPECT_EQ(stats.fetches, static_cast<uint64_t>(kThreads));
  EXPECT_EQ(stats.disk_reads, 1u);
  EXPECT_EQ(stats.hits, static_cast<uint64_t>(kThreads - 1));
  EXPECT_EQ(pool.total_pins(), 0u);
}

// Whole-pool walks (DirtyPageIds, pages_cached, FlushAll) read every
// frame's page_id while other threads fill and evict frames. Frame
// identity is published by the in_use release store and the walks'
// acquire loads; under TSan this test is the regression net for that
// protocol (a plain page_id field here is a reportable data race).
TEST(ConcurrencyTest, PoolWalksRaceFillsWithoutTearing) {
  MemoryDevice device;
  BufferPool pool(&device, 16);  // small pool: constant eviction churn
  constexpr int kPages = 64;
  std::vector<PageId> page_ids(kPages);
  for (int i = 0; i < kPages; ++i) {
    PageGuard guard;
    FR_ASSERT_OK(pool.NewPage(&guard));
    page_ids[static_cast<size_t>(i)] = guard.page_id();
    guard.MarkDirty();
  }
  FR_ASSERT_OK(pool.FlushAll());

  std::atomic<bool> stop{false};
  std::atomic<int> errors{0};
  std::thread walker([&] {
    while (!stop.load(std::memory_order_relaxed)) {
      // Every id a walk reports must be one of ours — a torn or stale
      // page_id read would surface as a stranger id (or trip TSan).
      for (PageId id : pool.DirtyPageIds()) {
        if (id >= static_cast<PageId>(kPages)) ++errors;
      }
      // pages_cached() locks the shards one at a time, so a concurrent
      // walk may double-count a frame whose page moved shards mid-scan;
      // it can read above capacity but never above the universe of pages.
      if (pool.pages_cached() > static_cast<size_t>(kPages)) ++errors;
      if (!pool.FlushAll().ok()) ++errors;
    }
  });
  std::vector<std::thread> fetchers;
  for (int t = 0; t < 4; ++t) {
    fetchers.emplace_back([&, t] {
      for (int i = 0; i < 400; ++i) {
        const size_t slot = static_cast<size_t>((i * 7 + t * 13) % kPages);
        PageGuard guard;
        Status s = pool.FetchPage(page_ids[slot], &guard,
                                  (i % 3 == 0) ? LatchMode::kExclusive
                                               : LatchMode::kShared);
        if (s.IsFailedPrecondition()) {
          // All frames transiently pinned/referenced: the bounded clock
          // sweep gave up. Legitimate backpressure, not a bug — retry.
          std::this_thread::yield();
          --i;
          continue;
        }
        if (!s.ok()) {
          ++errors;
          break;
        }
        if (i % 3 == 0) guard.MarkDirty();
      }
    });
  }
  for (auto& f : fetchers) f.join();
  stop.store(true);
  walker.join();
  EXPECT_EQ(errors.load(), 0);
  // Quiesced, the count is exact again: residency can't exceed capacity.
  EXPECT_LE(pool.pages_cached(), 16u);
  FR_ASSERT_OK(pool.FlushAll());
  EXPECT_EQ(pool.total_pins(), 0u);
}

// Guard moves transfer the pin; the source goes inert and releasing the
// destination drops the frame to zero pins.
TEST(ConcurrencyTest, PageGuardMovesLeaveSourceInert) {
  MemoryDevice device;
  BufferPool pool(&device, 8);
  PageGuard a;
  FR_ASSERT_OK(pool.NewPage(&a));
  EXPECT_TRUE(a.valid());
  EXPECT_EQ(pool.total_pins(), 1u);
  PageGuard b = std::move(a);
  EXPECT_FALSE(a.valid());
  EXPECT_TRUE(b.valid());
  EXPECT_EQ(pool.total_pins(), 1u);
  PageGuard c;
  c = std::move(b);
  EXPECT_FALSE(b.valid());
  ASSERT_TRUE(c.valid());
  c.Release();
  EXPECT_FALSE(c.valid());
  EXPECT_EQ(pool.total_pins(), 0u);
}

// The headline scenario: concurrent read queries (running on the parallel
// executor) against one writer driving in-place replica propagation
// through Emp1.dept.name. Readers must always see well-formed rows — a
// replica value is either the old or the new department name, never a
// torn page — and the database must close integrity-clean with no pins
// leaked.
TEST(ConcurrencyTest, ReadersWithConcurrentReplicaPropagation) {
  auto db = OpenEmployeeDatabase();
  constexpr int kDepts = 8;
  constexpr int kEmps = 400;
  EmployeeFixture fixture = PopulateEmployees(db.get(), 2, kDepts, kEmps);
  FR_ASSERT_OK(db->Replicate("Emp1.dept.name", {}));
  FR_ASSERT_OK(db->BuildIndex("emp_salary", "Emp1", "salary"));
  FR_ASSERT_OK(db->SetWorkerThreads(4));

  constexpr int kReaders = 4;
  constexpr int kWriterUpdates = 200;
  std::atomic<bool> stop{false};
  std::atomic<int> reader_errors{0};
  std::atomic<int> bad_rows{0};
  std::atomic<uint64_t> rows_read{0};

  auto reader = [&] {
    ReadQuery query;
    query.set_name = "Emp1";
    query.projections = {"name", "dept.name"};
    query.predicate =
        Predicate::Compare("salary", CompareOp::kGt, Value(int32_t{0}));
    do {
      ReadResult result;
      Status s = db->Retrieve(query, &result);
      if (!s.ok()) {
        ++reader_errors;
        return;
      }
      for (const auto& row : result.rows) {
        // Department names are "dept<j>" initially and "d-<i>" after an
        // update; anything else is a torn or misrouted replica read.
        if (row.size() != 2 || row[1].as_string().empty() ||
            row[1].as_string()[0] != 'd') {
          ++bad_rows;
        }
      }
      rows_read += result.rows.size();
    } while (!stop.load());
  };

  std::vector<std::thread> readers;
  readers.reserve(kReaders);
  for (int t = 0; t < kReaders; ++t) readers.emplace_back(reader);

  int writer_errors = 0;
  for (int i = 0; i < kWriterUpdates; ++i) {
    Status s = db->Update("Dept", fixture.depts[i % kDepts], "name",
                          Value("d-" + std::to_string(i)));
    if (!s.ok()) ++writer_errors;
  }
  stop.store(true);
  for (auto& thread : readers) thread.join();

  EXPECT_EQ(reader_errors.load(), 0);
  EXPECT_EQ(writer_errors, 0);
  EXPECT_EQ(bad_rows.load(), 0);
  // Every query sees every employee: salary = 1000*k > 0 for k >= 1, and
  // the full count for each completed query.
  EXPECT_GE(rows_read.load(), static_cast<uint64_t>(kReaders * (kEmps - 1)));
  EXPECT_EQ(db->pool().total_pins(), 0u);
  FR_ASSERT_OK(db->SetWorkerThreads(1));
  ExpectCleanIntegrity(db.get());
}

// Pure reader scale-out: after a serial warmup, many threads issue the
// same retrieval concurrently; all of them succeed, return the full
// result, and leave no pins behind.
TEST(ConcurrencyTest, ParallelReadersLeaveNoPins) {
  auto db = OpenEmployeeDatabase();
  constexpr int kEmps = 300;
  PopulateEmployees(db.get(), 2, 6, kEmps);
  FR_ASSERT_OK(db->Replicate("Emp1.dept.name", {}));

  ReadQuery query;
  query.set_name = "Emp1";
  query.projections = {"name", "salary", "dept.name"};
  ReadResult warm;
  FR_ASSERT_OK(db->Retrieve(query, &warm));
  const size_t expected_rows = warm.rows.size();
  ASSERT_EQ(expected_rows, static_cast<size_t>(kEmps));

  constexpr int kThreads = 8;
  std::atomic<int> errors{0};
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      for (int i = 0; i < 5; ++i) {
        ReadResult result;
        Status s = db->Retrieve(query, &result);
        if (!s.ok() || result.rows.size() != expected_rows) {
          ++errors;
          return;
        }
      }
    });
  }
  for (auto& thread : threads) thread.join();
  EXPECT_EQ(errors.load(), 0);
  EXPECT_EQ(db->pool().total_pins(), 0u);
}

// --- Concurrent embedded writers (per-set 2PL, DESIGN.md §14) -----------------

UpdateQuery WriteVal(const char* set_name, int32_t key, int32_t val) {
  UpdateQuery query;
  query.set_name = set_name;
  query.predicate = Predicate::Compare("key", CompareOp::kEq, Value(key));
  query.assignments.emplace_back("val", Value(val));
  return query;
}

/// Two embedded writer threads on sets of distinct types, fsck'd after
/// every round: the write-lock closures are disjoint singletons, so the
/// blocking acquire path must never record a conflict or a wait-or-die
/// abort, and no update may be lost across the interleavings.
TEST(ConcurrencyTest, WritersOnDisjointSetsRunConflictFree) {
  auto db_or = Database::Open({});
  FR_ASSERT_OK(db_or.status());
  auto db = std::move(db_or).value();
  constexpr int kRowsPerSet = 6;
  for (const char* set_name : {"A", "B"}) {
    const std::string type_name = std::string("ROW") + set_name;
    FR_ASSERT_OK(db->DefineType(
        TypeDescriptor(type_name, {Int32Attr("key"), Int32Attr("val")})));
    FR_ASSERT_OK(db->CreateSet(set_name, type_name));
    for (int i = 0; i < kRowsPerSet; ++i) {
      Oid oid;
      FR_ASSERT_OK(db->Insert(
          set_name, Object(0, {Value(int32_t{i}), Value(int32_t{0})}),
          &oid));
    }
  }

  constexpr int kRounds = 4;
  constexpr int kWritesPerRound = 20;
  std::atomic<int> errors{0};
  for (int round = 1; round <= kRounds; ++round) {
    auto writer = [&, round](const char* set_name) {
      for (int i = 0; i < kWritesPerRound; ++i) {
        UpdateResult ur;
        Status s = db->Replace(
            WriteVal(set_name, i % kRowsPerSet, round * 1000 + i), &ur);
        if (!s.ok() || ur.objects_updated != 1) ++errors;
      }
    };
    std::thread ta(writer, "A");
    std::thread tb(writer, "B");
    ta.join();
    tb.join();
    ExpectCleanIntegrity(db.get());
  }
  EXPECT_EQ(errors.load(), 0);
  EXPECT_EQ(db->lock_table().conflicts(), 0u);
  EXPECT_EQ(db->lock_table().aborts(), 0u);
  EXPECT_EQ(db->lock_table().held(), 0u);

  // Last writer round fully applied on both sets: no lost updates.
  for (const char* set_name : {"A", "B"}) {
    ReadQuery query;
    query.set_name = set_name;
    query.projections = {"key", "val"};
    ReadResult result;
    FR_ASSERT_OK(db->Retrieve(query, &result));
    ASSERT_EQ(result.rows.size(), static_cast<size_t>(kRowsPerSet));
    for (const auto& row : result.rows) {
      const int32_t key = row[0].as_int32();
      const int expected =
          kRounds * 1000 +
          (key < kWritesPerRound % kRowsPerSet
               ? (kWritesPerRound / kRowsPerSet) * kRowsPerSet + key
               : (kWritesPerRound / kRowsPerSet - 1) * kRowsPerSet + key);
      EXPECT_EQ(row[1].as_int32(), expected) << set_name << " key " << key;
    }
  }
}

/// Four embedded writers hammering one set: every transaction conflicts
/// on the set's X lock and the blocking acquire path serializes them.
/// Each thread owns one key, so after the dust settles each key holds its
/// writer's final value — a lost update would leave an earlier one.
TEST(ConcurrencyTest, WritersOnOneSetSerializeWithoutLostUpdates) {
  auto db_or = Database::Open({});
  FR_ASSERT_OK(db_or.status());
  auto db = std::move(db_or).value();
  FR_ASSERT_OK(db->DefineType(
      TypeDescriptor("ROW", {Int32Attr("key"), Int32Attr("val")})));
  FR_ASSERT_OK(db->CreateSet("T", "ROW"));
  constexpr int kThreads = 4;
  for (int i = 0; i < kThreads; ++i) {
    Oid oid;
    FR_ASSERT_OK(db->Insert(
        "T", Object(0, {Value(int32_t{i}), Value(int32_t{0})}), &oid));
  }

  constexpr int kRounds = 3;
  constexpr int kWritesPerRound = 15;
  std::atomic<int> errors{0};
  for (int round = 1; round <= kRounds; ++round) {
    std::vector<std::thread> writers;
    writers.reserve(kThreads);
    for (int t = 0; t < kThreads; ++t) {
      writers.emplace_back([&, round, t] {
        for (int i = 1; i <= kWritesPerRound; ++i) {
          UpdateResult ur;
          Status s =
              db->Replace(WriteVal("T", t, round * 100 + i), &ur);
          if (!s.ok() || ur.objects_updated != 1) ++errors;
        }
      });
    }
    for (auto& w : writers) w.join();
    ExpectCleanIntegrity(db.get());
  }
  EXPECT_EQ(errors.load(), 0);
  EXPECT_EQ(db->lock_table().held(), 0u);
  EXPECT_EQ(db->lock_table().waiters(), 0u);

  ReadQuery query;
  query.set_name = "T";
  query.projections = {"key", "val"};
  ReadResult result;
  FR_ASSERT_OK(db->Retrieve(query, &result));
  ASSERT_EQ(result.rows.size(), static_cast<size_t>(kThreads));
  for (const auto& row : result.rows) {
    EXPECT_EQ(row[1].as_int32(), kRounds * 100 + kWritesPerRound)
        << "lost update on key " << row[0].as_int32();
  }
}

}  // namespace
}  // namespace fieldrep
