#include <algorithm>

#include "common/random.h"
#include "costmodel/cost_model.h"
#include "gtest/gtest.h"
#include "test_util.h"

namespace fieldrep {
namespace {

using ::fieldrep::testing::EmployeeFixture;
using ::fieldrep::testing::ExpectCleanIntegrity;
using ::fieldrep::testing::OpenEmployeeDatabase;
using ::fieldrep::testing::PopulateEmployees;

/// End-to-end: build a mid-size database, add every kind of replication
/// path, run a mixed workload of queries and mutations, and require all
/// paths consistent and all query plans equivalent throughout.
TEST(IntegrationTest, MixedWorkloadStaysConsistent) {
  auto db = OpenEmployeeDatabase(8192);
  EmployeeFixture fixture = PopulateEmployees(db.get(), 3, 12, 300);
  FR_ASSERT_OK(db->BuildIndex("emp_salary", "Emp1", "salary"));
  FR_ASSERT_OK(db->BuildIndex("dept_budget", "Dept", "budget"));

  FR_ASSERT_OK(db->Replicate("Emp1.dept.name", {}));
  ReplicateOptions separate;
  separate.strategy = ReplicationStrategy::kSeparate;
  FR_ASSERT_OK(db->Replicate("Emp1.dept.org.name", separate));

  for (int round = 0; round < 5; ++round) {
    // Read queries via replicas and via joins must agree.
    ReadQuery read;
    read.set_name = "Emp1";
    read.projections = {"name", "dept.name", "dept.org.name"};
    read.predicate = Predicate::Between(
        "salary", Value(int32_t{round * 20000}),
        Value(int32_t{round * 20000 + 50000}));
    ReadResult via_replica;
    FR_ASSERT_OK(db->Retrieve(read, &via_replica));
    read.use_replication = false;
    ReadResult via_join;
    FR_ASSERT_OK(db->Retrieve(read, &via_join));
    ASSERT_EQ(via_replica.rows, via_join.rows) << "round " << round;

    // Update replicated fields through the query layer.
    UpdateQuery update;
    update.set_name = "Dept";
    update.predicate = Predicate::Between("budget", Value(int32_t{0}),
                                          Value(int32_t{40}));
    update.assignments = {
        {"name", Value("r" + std::to_string(round))},
        {"budget", Value(int32_t{round + 1})},
    };
    UpdateResult update_result;
    FR_ASSERT_OK(db->Replace(update, &update_result));
    EXPECT_GT(update_result.objects_updated, 0u);

    // Structural churn.
    FR_ASSERT_OK(db->Update("Emp1", fixture.emps[round], "dept",
                            Value(fixture.depts[(round * 5) % 12])));
    FR_ASSERT_OK(db->Update("Dept", fixture.depts[round], "org",
                            Value(fixture.orgs[(round + 1) % 3])));

    for (uint16_t path_id : db->catalog().AllPathIds()) {
      Status s = db->replication().VerifyPathConsistency(path_id);
      ASSERT_TRUE(s.ok()) << "round " << round << ": " << s.ToString();
    }
  }
  ExpectCleanIntegrity(db.get());
}

/// The headline quantitative effect at engine level: with a workload shaped
/// like the model's default (f = 10), measured read I/O with in-place
/// replication is far below no replication, and update I/O is higher —
/// matching the direction and rough magnitude of Figure 11.
TEST(IntegrationTest, MeasuredIoMatchesModelDirection) {
  const int kS = 2000;  // departments (the model's S)
  const int kF = 5;     // sharing level
  auto db = OpenEmployeeDatabase(16384);
  EmployeeFixture fixture = PopulateEmployees(db.get(), 3, kS, 0);
  // R and S must be *relatively unclustered* (the model's key assumption,
  // Section 6.2): employees reference a random department, not the
  // round-robin neighbour.
  Random rng(42);
  for (int k = 0; k < kS * kF; ++k) {
    Object emp(0, {Value("e" + std::to_string(k)),
                   Value(int32_t{20 + k % 50}), Value(int32_t{1000 * k}),
                   Value(fixture.depts[rng.Uniform(kS)])});
    Oid oid;
    FR_ASSERT_OK(db->Insert("Emp1", emp, &oid));
    fixture.emps.push_back(oid);
  }
  FR_ASSERT_OK(db->BuildIndex("emp_salary", "Emp1", "salary"));
  FR_ASSERT_OK(db->BuildIndex("dept_budget", "Dept", "budget"));
  FR_ASSERT_OK(db->Replicate("Emp1.dept.name", {}));

  // Read query selecting ~1% of Emp1 via the salary index.
  ReadQuery read;
  read.set_name = "Emp1";
  read.projections = {"name", "salary", "dept.name"};
  int32_t lo = 1000 * (kS * kF / 2);
  int32_t hi = lo + 1000 * (kS * kF / 100);
  read.predicate = Predicate::Between("salary", Value(lo), Value(hi));

  FR_ASSERT_OK(db->ColdStart());
  ReadResult replica_rows;
  FR_ASSERT_OK(db->Retrieve(read, &replica_rows));
  uint64_t replica_io = db->io_stats().disk_reads;

  read.use_replication = false;
  FR_ASSERT_OK(db->ColdStart());
  ReadResult join_rows;
  FR_ASSERT_OK(db->Retrieve(read, &join_rows));
  uint64_t join_io = db->io_stats().disk_reads;

  ASSERT_EQ(replica_rows.rows, join_rows.rows);
  ASSERT_GT(replica_rows.rows.size(), 10u);
  // The join touches up to one Dept page per selected object (random refs,
  // Yao-bounded by the Dept file size); the replica plan eliminates all of
  // it.
  EXPECT_LT(replica_io, join_io);
  auto dept_set = db->GetSet("Dept");
  ASSERT_TRUE(dept_set.ok());
  uint64_t dept_pages = (*dept_set)->file().page_count();
  uint64_t expected_extra =
      std::min<uint64_t>(replica_rows.rows.size(), dept_pages);
  EXPECT_GE(join_io - replica_io, expected_extra / 2);

  // Update query touching a few departments: propagation makes it more
  // expensive than the unpropagated baseline would be, but it must stay
  // bounded by ~2 * f * (objects updated) extra I/Os.
  UpdateQuery update;
  update.set_name = "Dept";
  update.predicate =
      Predicate::Between("budget", Value(int32_t{0}), Value(int32_t{40}));
  update.assignments = {{"name", Value("changed")}};
  FR_ASSERT_OK(db->ColdStart());
  UpdateResult update_result;
  FR_ASSERT_OK(db->Replace(update, &update_result));
  FR_ASSERT_OK(db->pool().FlushAll());
  uint64_t update_io = db->io_stats().TotalIo();
  EXPECT_GT(update_result.objects_updated, 0u);
  EXPECT_LE(update_io,
            4 + 2 * update_result.objects_updated * (kF + 3));
  const auto* path = db->catalog().FindPathBySpec("Emp1.dept.name");
  FR_ASSERT_OK(db->replication().VerifyPathConsistency(path->id));
  ExpectCleanIntegrity(db.get());
}

/// File-backed databases run the same workload through the same code path.
TEST(IntegrationTest, FileBackedDatabaseWorks) {
  std::string path = ::testing::TempDir() + "/fieldrep_integration.db";
  std::remove(path.c_str());
  Database::Options options;
  options.buffer_pool_frames = 512;
  options.file_path = path;
  auto db_or = Database::Open(options);
  ASSERT_TRUE(db_or.ok()) << db_or.status().ToString();
  auto db = std::move(db_or).value();
  FR_ASSERT_OK(db->DefineType(
      TypeDescriptor("DEPT", {CharAttr("name", 20), Int32Attr("budget")})));
  FR_ASSERT_OK(db->DefineType(TypeDescriptor(
      "EMP", {CharAttr("name", 20), Int32Attr("salary"),
              RefAttr("dept", "DEPT")})));
  FR_ASSERT_OK(db->CreateSet("Dept", "DEPT"));
  FR_ASSERT_OK(db->CreateSet("Emp1", "EMP"));
  Oid dept;
  FR_ASSERT_OK(db->Insert(
      "Dept", Object(0, {Value("toys"), Value(int32_t{1})}), &dept));
  for (int i = 0; i < 200; ++i) {
    Oid oid;
    FR_ASSERT_OK(db->Insert(
        "Emp1", Object(0, {Value("e"), Value(int32_t{i}), Value(dept)}),
        &oid));
  }
  FR_ASSERT_OK(db->Replicate("Emp1.dept.name", {}));
  FR_ASSERT_OK(db->Update("Dept", dept, "name", Value("games")));
  const auto* rep = db->catalog().FindPathBySpec("Emp1.dept.name");
  FR_ASSERT_OK(db->replication().VerifyPathConsistency(rep->id));
  ExpectCleanIntegrity(db.get());
  std::remove(path.c_str());
}

}  // namespace
}  // namespace fieldrep
