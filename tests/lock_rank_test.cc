// Tests for the runtime lock-rank checker (src/common/lock_rank.{h,cc})
// and the annotated mutex wrappers built on it. Inversion and
// double-acquire cases are death tests: the checker's contract is an
// abort that names both locks, so a deadlock found in CI reads as a
// diagnosis instead of a hang.

#include <thread>

#include <gtest/gtest.h>

#include "common/annotated_mutex.h"
#include "common/lock_rank.h"

namespace fieldrep {
namespace {

// The checker is compiled out of Release builds; death tests would then
// outlive the EXPECT_DEATH and fail. Gate every enforcement test on the
// build-time flag the wrappers themselves use.
#define SKIP_IF_CHECKS_DISABLED()                                   \
  do {                                                              \
    if (!kLockRankChecksEnabled) {                                  \
      GTEST_SKIP() << "lock-rank checks compiled out (Release)";    \
    }                                                               \
  } while (0)

TEST(LockRankTest, AscendingAcquisitionSucceeds) {
  Mutex low(LockRank::kServer, "test.low");
  Mutex high(LockRank::kWalLog, "test.high");
  MutexLock l1(low);
  MutexLock l2(high);
  EXPECT_EQ(lock_rank::HeldCount(), kLockRankChecksEnabled ? 2u : 0u);
}

TEST(LockRankTest, HeldStackDrainsOnRelease) {
  Mutex mu(LockRank::kLeaf, "test.leaf");
  { MutexLock lock(mu); }
  EXPECT_EQ(lock_rank::HeldCount(), 0u);
}

TEST(LockRankDeathTest, InvertedAcquisitionAbortsWithBothNames) {
  SKIP_IF_CHECKS_DISABLED();
  Mutex low(LockRank::kServer, "test.rank_low");
  Mutex high(LockRank::kWalLog, "test.rank_high");
  // Taking the low-ranked lock while holding the high-ranked one is the
  // inversion; the abort message must identify both ends of the cycle.
  EXPECT_DEATH(
      {
        MutexLock l1(high);
        MutexLock l2(low);
      },
      "lock-rank violation.*test\\.rank_low.*test\\.rank_high");
}

TEST(LockRankDeathTest, EqualRankDistinctLocksAbort) {
  SKIP_IF_CHECKS_DISABLED();
  // kWalLog is not a same-rank-ok class: two distinct locks at one rank
  // have no defined order between them, so holding both is an inversion
  // waiting for the opposite interleaving.
  Mutex a(LockRank::kWalLog, "test.peer_a");
  Mutex b(LockRank::kWalLog, "test.peer_b");
  EXPECT_DEATH(
      {
        MutexLock l1(a);
        MutexLock l2(b);
      },
      "lock-rank violation.*test\\.peer_b.*test\\.peer_a");
}

TEST(LockRankDeathTest, SelfDeadlockAborts) {
  SKIP_IF_CHECKS_DISABLED();
  Mutex mu(LockRank::kLeaf, "test.self");
  EXPECT_DEATH(
      {
        mu.lock();
        mu.lock();  // non-recursive re-acquire: guaranteed deadlock
      },
      "lock-rank violation.*test\\.self");
}

TEST(LockRankDeathTest, ReleasingUnheldLockAborts) {
  SKIP_IF_CHECKS_DISABLED();
  int not_a_lock = 0;
  EXPECT_DEATH(lock_rank::OnRelease(&not_a_lock, "test.unheld"),
               "test\\.unheld.*does not hold");
}

TEST(LockRankTest, SameRankClassPermitsMultipleFrameLatches) {
  // Per-frame latches are the one same-rank-ok class: elevator write-back
  // holds several at once.
  SharedMutex a(LockRank::kFrameLatch, "test.frame_a");
  SharedMutex b(LockRank::kFrameLatch, "test.frame_b");
  WriterMutexLock l1(a);
  WriterMutexLock l2(b);
  EXPECT_EQ(lock_rank::HeldCount(), kLockRankChecksEnabled ? 2u : 0u);
}

TEST(LockRankTest, RecursiveMutexReentersSameInstance) {
  RecursiveMutex mu(LockRank::kLockTable, "test.recursive");
  RecursiveMutexLock l1(mu);
  {
    RecursiveMutexLock l2(mu);  // the WAL precommit-hook pattern
    EXPECT_EQ(lock_rank::HeldCount(), kLockRankChecksEnabled ? 2u : 0u);
  }
  EXPECT_EQ(lock_rank::HeldCount(), kLockRankChecksEnabled ? 1u : 0u);
}

TEST(LockRankDeathTest, RecursiveMutexStillChecksRankAgainstOthers) {
  SKIP_IF_CHECKS_DISABLED();
  // Reentrancy only excuses the same instance, not the rank order.
  Mutex high(LockRank::kWalLog, "test.rec_high");
  RecursiveMutex low(LockRank::kLockTable, "test.rec_low");
  EXPECT_DEATH(
      {
        MutexLock l1(high);
        RecursiveMutexLock l2(low);
      },
      "lock-rank violation.*test\\.rec_low.*test\\.rec_high");
}

TEST(LockRankTest, TryLockIsRecordedButNotOrderChecked) {
  SKIP_IF_CHECKS_DISABLED();
  // try_lock cannot block, so it cannot complete a deadlock cycle: a
  // downward-rank try_lock is legal. But once held it participates in
  // the order checks for later blocking acquisitions.
  Mutex low(LockRank::kServer, "test.try_low");
  Mutex high(LockRank::kWalLog, "test.try_high");
  MutexLock l1(high);
  ASSERT_TRUE(low.try_lock());
  EXPECT_EQ(lock_rank::HeldCount(), 2u);
  low.unlock();
}

TEST(LockRankTest, SharedAcquisitionsTrackLikeExclusive) {
  SharedMutex mu(LockRank::kDatabaseMaps, "test.shared");
  {
    ReaderMutexLock lock(mu);
    EXPECT_EQ(lock_rank::HeldCount(), kLockRankChecksEnabled ? 1u : 0u);
  }
  EXPECT_EQ(lock_rank::HeldCount(), 0u);
}

TEST(LockRankTest, HeldStackIsPerThread) {
  SKIP_IF_CHECKS_DISABLED();
  Mutex mu(LockRank::kWalLog, "test.cross_thread");
  MutexLock lock(mu);
  // Another thread holds nothing and may take any rank, including one
  // below what this thread holds.
  std::thread t([] {
    Mutex low(LockRank::kServer, "test.other_thread_low");
    MutexLock l(low);
    EXPECT_EQ(lock_rank::HeldCount(), 1u);
  });
  t.join();
  EXPECT_EQ(lock_rank::HeldCount(), 1u);
}

TEST(LockRankTest, CondVarWaitKeepsStackBalanced) {
  SKIP_IF_CHECKS_DISABLED();
  // UniqueMutexLock's unlock/relock inside a CondVar wait must pop and
  // re-push the rank entry, or every wait would poison the held stack.
  Mutex mu(LockRank::kLeaf, "test.cv_mu");
  CondVar cv;
  bool ready = false;
  std::thread t([&] {
    MutexLock lock(mu);
    ready = true;
    cv.notify_one();
  });
  {
    UniqueMutexLock lock(mu);
    cv.wait(lock, [&]() REQUIRES(mu) { return ready; });
    EXPECT_EQ(lock_rank::HeldCount(), 1u);
  }
  t.join();
  EXPECT_EQ(lock_rank::HeldCount(), 0u);
}

TEST(LockRankTest, ChecksCompiledOutOfRelease) {
#if defined(NDEBUG) && !defined(FIELDREP_LOCK_RANK_CHECKS)
  // Release lane: the checker must cost nothing and track nothing.
  Mutex mu(LockRank::kLeaf, "test.release");
  MutexLock lock(mu);
  EXPECT_EQ(lock_rank::HeldCount(), 0u);
  EXPECT_FALSE(kLockRankChecksEnabled);
#else
  EXPECT_TRUE(kLockRankChecksEnabled);
#endif
}

}  // namespace
}  // namespace fieldrep
