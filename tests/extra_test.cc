#include "common/random.h"
#include "extra/interpreter.h"
#include "extra/lexer.h"
#include "extra/parser.h"
#include "gtest/gtest.h"
#include "test_util.h"

namespace fieldrep::extra {
namespace {

#define FR_ASSERT_RESULT(decl, expr)                    \
  auto decl##_or = (expr);                              \
  ASSERT_TRUE(decl##_or.ok()) << decl##_or.status().ToString(); \
  auto& decl = *decl##_or

// --- Lexer ----------------------------------------------------------------------

TEST(LexerTest, BasicTokens) {
  std::vector<Token> tokens;
  FR_ASSERT_OK(Tokenize("define type EMP ( salary: int )", &tokens));
  ASSERT_EQ(tokens.size(), 9u);  // incl. kEnd
  EXPECT_TRUE(tokens[0].IsKeyword("DEFINE"));
  EXPECT_TRUE(tokens[3].IsSymbol("("));
  EXPECT_TRUE(tokens[5].IsSymbol(":"));
}

TEST(LexerTest, NumbersStringsVariables) {
  std::vector<Token> tokens;
  FR_ASSERT_OK(Tokenize("42 -7 3.25 \"hi there\" 'x' $dept1", &tokens));
  EXPECT_EQ(tokens[0].int_value, 42);
  EXPECT_EQ(tokens[1].int_value, -7);
  EXPECT_DOUBLE_EQ(tokens[2].float_value, 3.25);
  EXPECT_EQ(tokens[3].text, "hi there");
  EXPECT_EQ(tokens[4].text, "x");
  EXPECT_EQ(tokens[5].kind, TokenKind::kVariable);
  EXPECT_EQ(tokens[5].text, "dept1");
}

TEST(LexerTest, DottedPathsKeepIntegerApart) {
  std::vector<Token> tokens;
  FR_ASSERT_OK(Tokenize("Emp1.dept.name", &tokens));
  ASSERT_EQ(tokens.size(), 6u);
  EXPECT_EQ(tokens[0].text, "Emp1");
  EXPECT_TRUE(tokens[1].IsSymbol("."));
  EXPECT_EQ(tokens[2].text, "dept");
}

TEST(LexerTest, CommentsAndErrors) {
  std::vector<Token> tokens;
  FR_ASSERT_OK(Tokenize("a -- comment to eol\n b", &tokens));
  ASSERT_EQ(tokens.size(), 3u);
  EXPECT_EQ(tokens[1].text, "b");
  EXPECT_FALSE(Tokenize("\"unterminated", &tokens).ok());
  EXPECT_FALSE(Tokenize("$ alone", &tokens).ok());
  EXPECT_FALSE(Tokenize("what?", &tokens).ok());
}

TEST(LexerTest, TwoCharSymbols) {
  std::vector<Token> tokens;
  FR_ASSERT_OK(Tokenize("a <= b >= c", &tokens));
  EXPECT_TRUE(tokens[1].IsSymbol("<="));
  EXPECT_TRUE(tokens[3].IsSymbol(">="));
}

// --- Parser ----------------------------------------------------------------------

TEST(ParserTest, DefineType) {
  FR_ASSERT_RESULT(stmts, Parser::Parse(
      "define type DEPT ( name: char[20], budget: int, org: ref ORG )"));
  ASSERT_EQ(stmts.size(), 1u);
  const auto& stmt = std::get<DefineTypeStmt>(stmts[0]);
  EXPECT_EQ(stmt.type.name(), "DEPT");
  ASSERT_EQ(stmt.type.attribute_count(), 3u);
  EXPECT_EQ(stmt.type.attribute(0).char_length, 20u);
  EXPECT_EQ(stmt.type.attribute(2).ref_type, "ORG");
}

TEST(ParserTest, CreateAndReplicateOptions) {
  FR_ASSERT_RESULT(stmts, Parser::Parse(
      "create Emp1: {own ref EMP};"
      "replicate Emp1.dept.name using separate inline 3;"
      "replicate Emp1.dept.org.name collapsed"));
  ASSERT_EQ(stmts.size(), 3u);
  const auto& create = std::get<CreateSetStmt>(stmts[0]);
  EXPECT_EQ(create.set_name, "Emp1");
  const auto& rep1 = std::get<ReplicateStmt>(stmts[1]);
  EXPECT_EQ(rep1.spec, "Emp1.dept.name");
  EXPECT_EQ(rep1.options.strategy, ReplicationStrategy::kSeparate);
  EXPECT_EQ(rep1.options.inline_threshold, 3u);
  const auto& rep2 = std::get<ReplicateStmt>(stmts[2]);
  EXPECT_TRUE(rep2.options.collapsed);
}

TEST(ParserTest, RetrieveAndWhere) {
  FR_ASSERT_RESULT(stmts, Parser::Parse(
      "retrieve (Emp1.name, Emp1.salary, Emp1.dept.name) "
      "where Emp1.salary > 100000"));
  const auto& stmt = std::get<RetrieveStmt>(stmts[0]);
  EXPECT_EQ(stmt.set_name, "Emp1");
  EXPECT_EQ(stmt.projections,
            (std::vector<std::string>{"name", "salary", "dept.name"}));
  ASSERT_TRUE(stmt.where.has_value());
  EXPECT_EQ(stmt.where->attr_name, "salary");
  EXPECT_EQ(stmt.where->op, CompareOp::kGt);
  EXPECT_EQ(stmt.where->operand.int_value, 100000);
}

TEST(ParserTest, RetrieveRejectsMixedSets) {
  EXPECT_FALSE(Parser::Parse("retrieve (Emp1.name, Emp2.name)").ok());
}

TEST(ParserTest, DeferredOption) {
  FR_ASSERT_RESULT(stmts, Parser::Parse("replicate Emp1.dept.name deferred"));
  const auto& stmt = std::get<ReplicateStmt>(stmts[0]);
  EXPECT_TRUE(stmt.options.deferred);
}

TEST(ParserTest, WhereOnReferencePath) {
  FR_ASSERT_RESULT(stmts, Parser::Parse(
      "retrieve (Emp1.name) where Emp1.dept.org.name = \"acme\""));
  const auto& stmt = std::get<RetrieveStmt>(stmts[0]);
  ASSERT_TRUE(stmt.where.has_value());
  EXPECT_EQ(stmt.where->attr_name, "dept.org.name");
}

TEST(ParserTest, InsertReplaceDelete) {
  FR_ASSERT_RESULT(stmts, Parser::Parse(
      "insert Dept (name = \"toys\", budget = 5) as $d;"
      "replace Dept (budget = 6) where name = \"toys\";"
      "delete from Dept where budget between 1 and 10"));
  const auto& insert = std::get<InsertStmt>(stmts[0]);
  EXPECT_EQ(insert.bind_variable, "d");
  ASSERT_EQ(insert.fields.size(), 2u);
  const auto& replace = std::get<ReplaceStmt>(stmts[1]);
  ASSERT_TRUE(replace.where.has_value());
  const auto& del = std::get<DeleteStmt>(stmts[2]);
  EXPECT_EQ(del.where->op, CompareOp::kBetween);
}

TEST(ParserTest, FuzzNeverCrashes) {
  // Random byte soup and random token soup must produce a Status, never a
  // crash or hang.
  Random rng(0xF422);
  const char* fragments[] = {"define", "type",  "(",     ")",    ":",
                             "int",    "char",  "[",     "]",    "20",
                             "ref",    "create", "{",    "}",    "own",
                             "replicate", ".",  "retrieve", "where", ">",
                             "insert", "=",     "\"x\"", "$v",   ";",
                             "between", "and",  "-5",    "3.5",  "all"};
  for (int trial = 0; trial < 500; ++trial) {
    std::string input;
    int pieces = 1 + static_cast<int>(rng.Uniform(25));
    for (int i = 0; i < pieces; ++i) {
      input += fragments[rng.Uniform(std::size(fragments))];
      input += rng.Bernoulli(0.8) ? " " : "";
    }
    auto result = Parser::Parse(input);  // outcome irrelevant; no crash
    (void)result;
  }
  for (int trial = 0; trial < 300; ++trial) {
    std::string input;
    int bytes = static_cast<int>(rng.Uniform(60));
    for (int i = 0; i < bytes; ++i) {
      input.push_back(static_cast<char>(32 + rng.Uniform(95)));
    }
    auto result = Parser::Parse(input);
    (void)result;
  }
}

TEST(ParserTest, ErrorsAreDescriptive) {
  auto r = Parser::Parse("retrieve Emp1.name");
  ASSERT_FALSE(r.ok());
  EXPECT_NE(r.status().message().find("expected"), std::string::npos);
  EXPECT_FALSE(Parser::Parse("frobnicate Emp1").ok());
  EXPECT_FALSE(Parser::Parse("define type T ( x: blob )").ok());
  EXPECT_FALSE(Parser::Parse("insert Dept (name = )").ok());
}

// --- Interpreter (end-to-end, the paper's running example) -------------------------

class InterpreterTest : public ::testing::Test {
 protected:
  void SetUp() override {
    auto db_or = Database::Open({});
    ASSERT_TRUE(db_or.ok());
    db_ = std::move(db_or).value();
    interp_ = std::make_unique<Interpreter>(db_.get());
  }

  std::string MustRun(const std::string& script) {
    auto out = interp_->Execute(script);
    EXPECT_TRUE(out.ok()) << out.status().ToString() << "\nscript: " << script;
    return out.ok() ? *out : "";
  }

  std::unique_ptr<Database> db_;
  std::unique_ptr<Interpreter> interp_;
};

TEST_F(InterpreterTest, PaperRunningExample) {
  MustRun(
      "define type ORG ( name: char[20], budget: int );"
      "define type DEPT ( name: char[20], budget: int, org: ref ORG );"
      "define type EMP ( name: char[20], age: int, salary: int, "
      "                  dept: ref DEPT );"
      "create Org: {own ref ORG};"
      "create Dept: {own ref DEPT};"
      "create Emp1: {own ref EMP};"
      "create Emp2: {own ref EMP};");
  MustRun(
      "insert Org (name = \"acme\", budget = 100) as $o1;"
      "insert Dept (name = \"toys\", budget = 10, org = $o1) as $d1;"
      "insert Dept (name = \"shoes\", budget = 20, org = $o1) as $d2;"
      "insert Emp1 (name = \"fred\", age = 40, salary = 120000, "
      "             dept = $d1) as $e1;"
      "insert Emp1 (name = \"sue\", age = 35, salary = 150000, dept = $d2);"
      "insert Emp1 (name = \"ann\", age = 25, salary = 90000, dept = $d1);");
  std::string out = MustRun("replicate Emp1.dept.name");
  EXPECT_NE(out.find("link sequence"), std::string::npos);
  // The paper's example query (Section 3.1).
  out = MustRun(
      "retrieve (Emp1.name, Emp1.salary, Emp1.dept.name) "
      "where Emp1.salary > 100000");
  EXPECT_NE(out.find("fred"), std::string::npos);
  EXPECT_NE(out.find("sue"), std::string::npos);
  EXPECT_EQ(out.find("ann"), std::string::npos);
  EXPECT_NE(out.find("toys"), std::string::npos);
  EXPECT_NE(out.find("(2 rows)"), std::string::npos);
  // Update propagates through the hidden replica.
  MustRun("replace Dept (name = \"games\") where name = \"toys\"");
  out = MustRun("verify Emp1.dept.name");
  EXPECT_NE(out.find("consistent"), std::string::npos);
  out = MustRun("retrieve (Emp1.dept.name) where Emp1.name = \"fred\"");
  EXPECT_NE(out.find("games"), std::string::npos);
}

TEST_F(InterpreterTest, TwoLevelPathAndIndex) {
  MustRun(
      "define type ORG ( name: char[20], budget: int );"
      "define type DEPT ( name: char[20], budget: int, org: ref ORG );"
      "define type EMP ( name: char[20], age: int, salary: int, "
      "                  dept: ref DEPT );"
      "create Org: {own ref ORG}; create Dept: {own ref DEPT};"
      "create Emp1: {own ref EMP};"
      "insert Org (name = \"acme\", budget = 1) as $o;"
      "insert Dept (name = \"d\", budget = 1, org = $o) as $d;"
      "insert Emp1 (name = \"e1\", age = 1, salary = 1, dept = $d);"
      "replicate Emp1.dept.org.name;"
      "build btree org_idx on Emp1.dept.org.name;");
  std::string out =
      MustRun("retrieve (Emp1.name) where Emp1.salary >= 0");
  EXPECT_NE(out.find("e1"), std::string::npos);
  out = MustRun("show catalog");
  EXPECT_NE(out.find("replicate Emp1.dept.org.name"), std::string::npos);
  EXPECT_NE(out.find("org_idx"), std::string::npos);
  MustRun("drop replicate Emp1.dept.org.name");
  out = MustRun("show catalog");
  EXPECT_EQ(out.find("replicate Emp1.dept.org.name"), std::string::npos);
}

TEST_F(InterpreterTest, DeleteStatement) {
  MustRun(
      "define type T ( v: int );"
      "create Things: {own ref T};"
      "insert Things (v = 1); insert Things (v = 2); insert Things (v = 3);");
  std::string out = MustRun("delete from Things where v >= 2");
  EXPECT_NE(out.find("deleted 2"), std::string::npos);
  out = MustRun("retrieve (Things.v)");
  EXPECT_NE(out.find("(1 row)"), std::string::npos);
}

TEST_F(InterpreterTest, CheckpointStatement) {
  MustRun(
      "define type T ( v: int );"
      "create Things: {own ref T};"
      "insert Things (v = 1);");
  std::string out = MustRun("checkpoint");
  EXPECT_NE(out.find("checkpoint written"), std::string::npos);
}

TEST_F(InterpreterTest, DeferredReplicationStatement) {
  MustRun(
      "define type DEPT ( name: char[20] );"
      "define type EMP ( name: char[20], dept: ref DEPT );"
      "create Dept: {own ref DEPT}; create Emp1: {own ref EMP};"
      "insert Dept (name = \"d\") as $d;"
      "insert Emp1 (name = \"e\", dept = $d);");
  std::string out = MustRun("replicate Emp1.dept.name deferred");
  EXPECT_NE(out.find("deferred"), std::string::npos);
  MustRun("replace Dept (name = \"x\") where name = \"d\"");
  EXPECT_EQ(db_->replication().pending_propagation_count(), 1u);
  out = MustRun("retrieve (Emp1.dept.name)");
  EXPECT_NE(out.find("\"x\""), std::string::npos);
  EXPECT_EQ(db_->replication().pending_propagation_count(), 0u);
}

TEST_F(InterpreterTest, UnknownVariableFails) {
  MustRun(
      "define type T ( v: int, r: ref T );"
      "create Things: {own ref T};");
  auto out = interp_->Execute("insert Things (v = 1, r = $ghost)");
  EXPECT_FALSE(out.ok());
}

}  // namespace
}  // namespace fieldrep::extra
