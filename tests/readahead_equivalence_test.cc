// Asserts the PR's central invariant at full-query granularity: the
// logical I/O counts MeasureQueryCosts reports (the paper's cost unit)
// are byte-identical with the read-ahead window on or off. Links the
// bench harness so the assertion covers exactly the workload the
// empirical benchmarks measure.

#include "bench_util.h"
#include "gtest/gtest.h"
#include "test_util.h"

namespace fieldrep {
namespace {

using ::fieldrep::bench::BuildModelWorkload;
using ::fieldrep::bench::MeasureQueryCosts;
using ::fieldrep::bench::MeasuredCosts;
using ::fieldrep::bench::ModelWorkload;
using ::fieldrep::bench::WorkloadOptions;

MeasuredCosts MeasureWithWindow(const WorkloadOptions& base_options,
                                uint32_t window) {
  WorkloadOptions options = base_options;
  options.read_ahead_window = window;
  auto workload_or = BuildModelWorkload(options);
  EXPECT_TRUE(workload_or.ok()) << workload_or.status().ToString();
  if (!workload_or.ok()) return {};
  ModelWorkload workload = std::move(workload_or).value();
  auto costs_or = MeasureQueryCosts(&workload, /*fr=*/0.1, /*fs=*/0.05,
                                    /*trials=*/2);
  EXPECT_TRUE(costs_or.ok()) << costs_or.status().ToString();
  return costs_or.ok() ? costs_or.value() : MeasuredCosts{};
}

void ExpectWindowIndependentLogicalIo(WorkloadOptions options) {
  MeasuredCosts with = MeasureWithWindow(options, 16);
  MeasuredCosts without = MeasureWithWindow(options, 0);
  ASSERT_FALSE(::testing::Test::HasFailure());
  // Identical workload build (same seed) + identical query ranges (same
  // measurement seed) must yield the exact same logical counts: the
  // read-ahead window changes physical scheduling only.
  EXPECT_EQ(with.read_io, without.read_io);
  EXPECT_EQ(with.update_io, without.update_io);
  // And the physical counters must show the batching actually happened.
  EXPECT_GT(with.batched_reads, 0.0);
  EXPECT_EQ(without.batched_reads, 0.0);
}

TEST(ReadAheadEquivalenceTest, UnclusteredInPlaceLogicalIoMatches) {
  WorkloadOptions options;
  options.s_count = 400;
  options.f = 2;
  options.clustered = false;
  options.strategy = ModelStrategy::kInPlace;
  ExpectWindowIndependentLogicalIo(options);
}

TEST(ReadAheadEquivalenceTest, ClusteredNoReplicationLogicalIoMatches) {
  WorkloadOptions options;
  options.s_count = 400;
  options.f = 1;
  options.clustered = true;
  options.strategy = ModelStrategy::kNoReplication;
  ExpectWindowIndependentLogicalIo(options);
}

TEST(ReadAheadEquivalenceTest, SeparateStrategyLogicalIoMatches) {
  WorkloadOptions options;
  options.s_count = 400;
  options.f = 2;
  options.clustered = false;
  options.strategy = ModelStrategy::kSeparate;
  ExpectWindowIndependentLogicalIo(options);
}

}  // namespace
}  // namespace fieldrep
