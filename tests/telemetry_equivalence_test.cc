// The acceptance criterion of the telemetry PR, asserted at full-query
// granularity: the logical I/O counts MeasureQueryCosts reports (the
// paper's cost unit) are byte-identical with telemetry fully armed —
// registry, profiler, and every query forced through the traced path via
// a 1 ns slow-query threshold — and with telemetry off. Telemetry
// observes the engine; it never changes what a query does. Covers every
// strategy crossed with read-ahead windows {0, 16} and worker-thread
// counts {1, 8}, the matrix from ISSUE.md.

#include "bench_util.h"
#include "gtest/gtest.h"
#include "test_util.h"

namespace fieldrep {
namespace {

using ::fieldrep::bench::BuildModelWorkload;
using ::fieldrep::bench::MeasureQueryCosts;
using ::fieldrep::bench::MeasuredCosts;
using ::fieldrep::bench::ModelWorkload;
using ::fieldrep::bench::WorkloadOptions;

MeasuredCosts MeasureWithTelemetry(const WorkloadOptions& base_options,
                                   bool telemetry) {
  WorkloadOptions options = base_options;
  options.enable_telemetry = telemetry;
  if (telemetry) {
    // Arm the whole observation surface: with a 1 ns threshold every
    // query runs the traced code path (StageTracer snapshots, slow-query
    // evaluation), and the no-op hook swallows the log output.
    options.slow_query_ns = 1;
    options.slow_query_hook = [](const QueryTrace&) {};
  }
  auto workload_or = BuildModelWorkload(options);
  EXPECT_TRUE(workload_or.ok()) << workload_or.status().ToString();
  if (!workload_or.ok()) return {};
  ModelWorkload workload = std::move(workload_or).value();
  auto costs_or = MeasureQueryCosts(&workload, /*fr=*/0.1, /*fs=*/0.05,
                                    /*trials=*/2);
  EXPECT_TRUE(costs_or.ok()) << costs_or.status().ToString();
  return costs_or.ok() ? costs_or.value() : MeasuredCosts{};
}

void ExpectTelemetryIndependentLogicalIo(WorkloadOptions options) {
  for (uint32_t window : {uint32_t{0}, uint32_t{16}}) {
    for (size_t threads : {size_t{1}, size_t{8}}) {
      options.read_ahead_window = window;
      options.worker_threads = threads;
      MeasuredCosts with = MeasureWithTelemetry(options, true);
      MeasuredCosts without = MeasureWithTelemetry(options, false);
      ASSERT_FALSE(::testing::Test::HasFailure())
          << "window=" << window << " threads=" << threads;
      // Identical workload build (same seed) + identical query ranges
      // (same measurement seed) must yield the exact same logical counts.
      EXPECT_EQ(with.read_io, without.read_io)
          << "window=" << window << " threads=" << threads;
      EXPECT_EQ(with.update_io, without.update_io)
          << "window=" << window << " threads=" << threads;
    }
  }
}

TEST(TelemetryEquivalenceTest, NoReplicationLogicalIoMatches) {
  WorkloadOptions options;
  options.s_count = 400;
  options.f = 1;
  options.clustered = false;
  options.strategy = ModelStrategy::kNoReplication;
  ExpectTelemetryIndependentLogicalIo(options);
}

TEST(TelemetryEquivalenceTest, InPlaceLogicalIoMatches) {
  WorkloadOptions options;
  options.s_count = 400;
  options.f = 2;
  options.clustered = false;
  options.strategy = ModelStrategy::kInPlace;
  ExpectTelemetryIndependentLogicalIo(options);
}

TEST(TelemetryEquivalenceTest, SeparateStrategyLogicalIoMatches) {
  WorkloadOptions options;
  options.s_count = 400;
  options.f = 2;
  options.clustered = false;
  options.strategy = ModelStrategy::kSeparate;
  ExpectTelemetryIndependentLogicalIo(options);
}

}  // namespace
}  // namespace fieldrep
