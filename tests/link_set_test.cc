#include <algorithm>
#include <set>

#include "common/random.h"
#include "gtest/gtest.h"
#include "replication/link_object.h"
#include "replication/link_set.h"
#include "storage/memory_device.h"
#include "test_util.h"

namespace fieldrep {
namespace {

Oid MakeOid(uint32_t i) {
  return Oid(3, i / 64, static_cast<uint16_t>(i % 64));
}

class LinkSetTest : public ::testing::Test {
 protected:
  LinkSetTest() : pool_(&device_, 256), file_(&pool_, 9), links_(&file_) {}

  LinkObjectData MakeData(uint32_t members, bool tagged = false) {
    LinkObjectData data(7, Oid(1, 0, 0), tagged);
    for (uint32_t i = 0; i < members; ++i) {
      data.AddMember(MakeOid(i), tagged ? MakeOid(1000 + i % 5)
                                        : Oid::Invalid());
    }
    return data;
  }

  MemoryDevice device_;
  BufferPool pool_;
  RecordFile file_;
  LinkSet links_;
};

TEST_F(LinkSetTest, SmallObjectSingleSegment) {
  LinkObjectData data = MakeData(10);
  Oid oid;
  FR_ASSERT_OK(links_.Create(data, &oid));
  EXPECT_EQ(file_.record_count(), 1u);
  LinkObjectData read;
  FR_ASSERT_OK(links_.Read(oid, &read));
  EXPECT_EQ(read.Members(), data.Members());
  EXPECT_EQ(read.link_id(), 7);
}

TEST_F(LinkSetTest, LargeObjectSpansSegments) {
  const uint32_t n = 1200;  // > 491 per untagged segment
  LinkObjectData data = MakeData(n);
  Oid oid;
  FR_ASSERT_OK(links_.Create(data, &oid));
  EXPECT_GE(file_.record_count(), 3u);  // head + >= 2 tail segments
  LinkObjectData read;
  FR_ASSERT_OK(links_.Read(oid, &read));
  ASSERT_EQ(read.size(), n);
  EXPECT_EQ(read.Members(), data.Members());
}

TEST_F(LinkSetTest, TaggedSegmentsSmallerCapacity) {
  EXPECT_LT(LinkSet::MaxEntriesPerSegment(true),
            LinkSet::MaxEntriesPerSegment(false));
  const uint32_t n = 600;  // > 245 per tagged segment
  LinkObjectData data = MakeData(n, /*tagged=*/true);
  Oid oid;
  FR_ASSERT_OK(links_.Create(data, &oid));
  LinkObjectData read;
  FR_ASSERT_OK(links_.Read(oid, &read));
  ASSERT_EQ(read.size(), n);
  // Tags survive reassembly.
  EXPECT_EQ(read.entries()[5].tag, data.entries()[5].tag);
}

TEST_F(LinkSetTest, WriteGrowsAndShrinksChain) {
  LinkObjectData data = MakeData(10);
  Oid oid;
  FR_ASSERT_OK(links_.Create(data, &oid));
  // Grow far past one segment; head OID must stay stable.
  LinkObjectData grown = MakeData(1500);
  FR_ASSERT_OK(links_.Write(oid, grown));
  LinkObjectData read;
  FR_ASSERT_OK(links_.Read(oid, &read));
  EXPECT_EQ(read.size(), 1500u);
  uint64_t grown_records = file_.record_count();
  EXPECT_GE(grown_records, 4u);
  // Shrink back to a single segment; surplus segments are reclaimed.
  LinkObjectData shrunk = MakeData(3);
  FR_ASSERT_OK(links_.Write(oid, shrunk));
  FR_ASSERT_OK(links_.Read(oid, &read));
  EXPECT_EQ(read.size(), 3u);
  EXPECT_EQ(file_.record_count(), 1u);
}

TEST_F(LinkSetTest, DeleteReclaimsWholeChain) {
  LinkObjectData data = MakeData(1100);
  Oid oid;
  FR_ASSERT_OK(links_.Create(data, &oid));
  EXPECT_GT(file_.record_count(), 1u);
  FR_ASSERT_OK(links_.Delete(oid));
  EXPECT_EQ(file_.record_count(), 0u);
}

TEST_F(LinkSetTest, RandomSizesRoundTrip) {
  Random rng(808);
  for (int trial = 0; trial < 30; ++trial) {
    uint32_t n = static_cast<uint32_t>(rng.Uniform(1400));
    bool tagged = rng.Bernoulli(0.4);
    LinkObjectData data = MakeData(n, tagged);
    Oid oid;
    ASSERT_TRUE(links_.Create(data, &oid).ok());
    LinkObjectData read;
    ASSERT_TRUE(links_.Read(oid, &read).ok());
    ASSERT_EQ(read.entries(), data.entries()) << "n=" << n;
    // Random rewrite.
    uint32_t m = static_cast<uint32_t>(rng.Uniform(1400));
    LinkObjectData next = MakeData(m, tagged);
    ASSERT_TRUE(links_.Write(oid, next).ok());
    ASSERT_TRUE(links_.Read(oid, &read).ok());
    ASSERT_EQ(read.entries(), next.entries()) << "m=" << m;
    ASSERT_TRUE(links_.Delete(oid).ok());
    ASSERT_EQ(file_.record_count(), 0u);
  }
}

// --- LinkObjectData unit behaviour ----------------------------------------------

TEST(LinkObjectDataTest, SortedInsertAndBinarySearch) {
  LinkObjectData data(1, Oid(1, 0, 0), false);
  EXPECT_TRUE(data.AddMember(MakeOid(5)));
  EXPECT_TRUE(data.AddMember(MakeOid(1)));
  EXPECT_TRUE(data.AddMember(MakeOid(9)));
  EXPECT_FALSE(data.AddMember(MakeOid(5)));  // duplicate
  std::vector<Oid> members = data.Members();
  EXPECT_TRUE(std::is_sorted(members.begin(), members.end()));
  EXPECT_TRUE(data.HasMember(MakeOid(1)));
  EXPECT_FALSE(data.HasMember(MakeOid(2)));
  EXPECT_TRUE(data.RemoveMember(MakeOid(5)));
  EXPECT_FALSE(data.RemoveMember(MakeOid(5)));
  EXPECT_EQ(data.size(), 2u);
}

TEST(LinkObjectDataTest, RemoveByTagMovesAllMatching) {
  LinkObjectData data(1, Oid(1, 0, 0), true);
  data.AddMember(MakeOid(1), MakeOid(100));
  data.AddMember(MakeOid(2), MakeOid(200));
  data.AddMember(MakeOid(3), MakeOid(100));
  std::vector<Oid> moved = data.RemoveByTag(MakeOid(100));
  EXPECT_EQ(moved, (std::vector<Oid>{MakeOid(1), MakeOid(3)}));
  EXPECT_EQ(data.size(), 1u);
  EXPECT_TRUE(data.RemoveByTag(MakeOid(999)).empty());
}

TEST(LinkObjectDataTest, SerializedSizeMatchesPaperFormulaShape) {
  // l = fixed + f * sizeof(OID): entries cost exactly 8 (16 tagged) bytes.
  LinkObjectData data(1, Oid(1, 0, 0), false);
  size_t base = data.SerializedSize();
  data.AddMember(MakeOid(1));
  EXPECT_EQ(data.SerializedSize(), base + 8);
  LinkObjectData tagged(1, Oid(1, 0, 0), true);
  size_t tagged_base = tagged.SerializedSize();
  tagged.AddMember(MakeOid(1), MakeOid(2));
  EXPECT_EQ(tagged.SerializedSize(), tagged_base + 16);
}

TEST(ReplicaRecordTest, RoundTrip) {
  ReplicaRecord record;
  record.path_id = 12;
  record.owner = Oid(4, 5, 6);
  record.values = {Value("copy"), Value(int32_t{3}), Value::Null()};
  std::string payload = record.Serialize();
  ReplicaRecord decoded;
  FR_ASSERT_OK(decoded.Deserialize(payload));
  EXPECT_EQ(decoded.path_id, 12);
  EXPECT_EQ(decoded.owner, record.owner);
  EXPECT_EQ(decoded.values, record.values);
  EXPECT_TRUE(decoded.Deserialize("junk").IsCorruption());
}

}  // namespace
}  // namespace fieldrep
