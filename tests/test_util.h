#ifndef FIELDREP_TESTS_TEST_UTIL_H_
#define FIELDREP_TESTS_TEST_UTIL_H_

#include <memory>
#include <string>
#include <vector>

#include "db/database.h"
#include "gtest/gtest.h"

namespace fieldrep::testing {

/// gtest helper: asserts a Status is OK with its message on failure.
#define FR_ASSERT_OK(expr)                                 \
  do {                                                     \
    ::fieldrep::Status _s = (expr);                        \
    ASSERT_TRUE(_s.ok()) << _s.ToString();                 \
  } while (0)

#define FR_EXPECT_OK(expr)                                 \
  do {                                                     \
    ::fieldrep::Status _s = (expr);                        \
    EXPECT_TRUE(_s.ok()) << _s.ToString();                 \
  } while (0)

/// Builds the paper's Figure 1 employee database schema (ORG, DEPT, EMP
/// types; Org, Dept, Emp1, Emp2 sets) in a fresh in-memory database.
std::unique_ptr<Database> OpenEmployeeDatabase(size_t pool_frames = 4096);

/// Inserted fixture data handles.
struct EmployeeFixture {
  std::vector<Oid> orgs;   ///< n_orgs organizations
  std::vector<Oid> depts;  ///< n_depts departments, org = round-robin
  std::vector<Oid> emps;   ///< n_emps in Emp1, dept = round-robin
};

/// Populates the sets: org i is ("org<i>", budget 1000*i); dept j is
/// ("dept<j>", budget 10*j, org j%n_orgs); employee k is ("emp<k>",
/// age 20+k%50, salary 1000*k, dept k%n_depts), inserted into Emp1.
EmployeeFixture PopulateEmployees(Database* db, int n_orgs, int n_depts,
                                  int n_emps);

/// Reads the value found by forward traversal of `oid.<attrs...>` —
/// ground truth for replica checks.
Value TraversePath(Database* db, const std::string& set_name, const Oid& oid,
                   const std::vector<std::string>& attrs);

/// Runs the full integrity checker and EXPECTs zero error findings —
/// closing assertion for integration/scenario tests.
void ExpectCleanIntegrity(Database* db);

}  // namespace fieldrep::testing

#endif  // FIELDREP_TESTS_TEST_UTIL_H_
