#include <algorithm>
#include <map>
#include <set>
#include <vector>

#include "common/random.h"
#include "gtest/gtest.h"
#include "index/btree.h"
#include "storage/memory_device.h"
#include "test_util.h"

namespace fieldrep {
namespace {

class BTreeTest : public ::testing::Test {
 protected:
  BTreeTest() : pool_(&device_, 256), tree_(&pool_) {
    EXPECT_TRUE(tree_.Init().ok());
  }
  Oid MakeOid(uint32_t i) { return Oid(1, i / 16, i % 16); }

  MemoryDevice device_;
  BufferPool pool_;
  BTree tree_;
};

TEST_F(BTreeTest, EmptyTree) {
  EXPECT_TRUE(tree_.empty());
  std::vector<Oid> out;
  FR_ASSERT_OK(tree_.Lookup(5, &out));
  EXPECT_TRUE(out.empty());
  auto height = tree_.Height();
  ASSERT_TRUE(height.ok());
  EXPECT_EQ(*height, 1u);
}

TEST_F(BTreeTest, InsertLookup) {
  FR_ASSERT_OK(tree_.Insert(42, MakeOid(1)));
  std::vector<Oid> out;
  FR_ASSERT_OK(tree_.Lookup(42, &out));
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0], MakeOid(1));
  FR_ASSERT_OK(tree_.Lookup(41, &out));  // appends nothing
  EXPECT_EQ(out.size(), 1u);
}

TEST_F(BTreeTest, DuplicateKeysDistinctValues) {
  for (uint32_t i = 0; i < 10; ++i) {
    FR_ASSERT_OK(tree_.Insert(7, MakeOid(i)));
  }
  std::vector<Oid> out;
  FR_ASSERT_OK(tree_.Lookup(7, &out));
  EXPECT_EQ(out.size(), 10u);
  // Values come back sorted (clustered order).
  EXPECT_TRUE(std::is_sorted(out.begin(), out.end()));
}

TEST_F(BTreeTest, ExactDuplicateEntryRejected) {
  FR_ASSERT_OK(tree_.Insert(7, MakeOid(3)));
  EXPECT_EQ(tree_.Insert(7, MakeOid(3)).code(), StatusCode::kAlreadyExists);
}

TEST_F(BTreeTest, DeleteSpecificEntry) {
  FR_ASSERT_OK(tree_.Insert(7, MakeOid(1)));
  FR_ASSERT_OK(tree_.Insert(7, MakeOid(2)));
  FR_ASSERT_OK(tree_.Delete(7, MakeOid(1)));
  std::vector<Oid> out;
  FR_ASSERT_OK(tree_.Lookup(7, &out));
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0], MakeOid(2));
  EXPECT_TRUE(tree_.Delete(7, MakeOid(1)).IsNotFound());
}

TEST_F(BTreeTest, RangeScanInclusive) {
  for (int64_t key = 0; key < 100; ++key) {
    FR_ASSERT_OK(tree_.Insert(key, MakeOid(static_cast<uint32_t>(key))));
  }
  std::vector<int64_t> keys;
  FR_ASSERT_OK(tree_.ScanRange(10, 20, [&](int64_t key, Oid) {
    keys.push_back(key);
    return true;
  }));
  ASSERT_EQ(keys.size(), 11u);
  EXPECT_EQ(keys.front(), 10);
  EXPECT_EQ(keys.back(), 20);
}

TEST_F(BTreeTest, ScanEarlyStop) {
  for (int64_t key = 0; key < 50; ++key) {
    FR_ASSERT_OK(tree_.Insert(key, MakeOid(static_cast<uint32_t>(key))));
  }
  int count = 0;
  FR_ASSERT_OK(tree_.ScanRange(0, 49, [&](int64_t, Oid) {
    return ++count < 5;
  }));
  EXPECT_EQ(count, 5);
}

TEST_F(BTreeTest, NegativeKeys) {
  for (int64_t key = -50; key <= 50; key += 10) {
    FR_ASSERT_OK(tree_.Insert(key, MakeOid(static_cast<uint32_t>(key + 50))));
  }
  std::vector<int64_t> keys;
  FR_ASSERT_OK(tree_.ScanRange(-30, 10, [&](int64_t key, Oid) {
    keys.push_back(key);
    return true;
  }));
  EXPECT_EQ(keys, (std::vector<int64_t>{-30, -20, -10, 0, 10}));
}

TEST_F(BTreeTest, GrowsToMultipleLevelsAndStaysValid) {
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    FR_ASSERT_OK(tree_.Insert(i, MakeOid(i)));
  }
  EXPECT_EQ(tree_.size(), static_cast<uint64_t>(n));
  auto height = tree_.Height();
  ASSERT_TRUE(height.ok());
  EXPECT_GE(*height, 2u);
  FR_ASSERT_OK(tree_.CheckInvariants());
  // Full scan visits every key in order.
  int64_t expected = 0;
  FR_ASSERT_OK(tree_.ScanRange(INT64_MIN, INT64_MAX, [&](int64_t key, Oid) {
    EXPECT_EQ(key, expected++);
    return true;
  }));
  EXPECT_EQ(expected, n);
}

TEST_F(BTreeTest, ReverseInsertionOrder) {
  for (int i = 5000; i > 0; --i) {
    FR_ASSERT_OK(tree_.Insert(i, MakeOid(i)));
  }
  FR_ASSERT_OK(tree_.CheckInvariants());
  std::vector<Oid> out;
  FR_ASSERT_OK(tree_.Lookup(1, &out));
  EXPECT_EQ(out.size(), 1u);
}

TEST_F(BTreeTest, ScanTraversesEmptiedLeaves) {
  // Lazy deletion can leave empty leaves in the chain; scans must skip
  // them without losing later entries.
  for (int i = 0; i < 2000; ++i) FR_ASSERT_OK(tree_.Insert(i, MakeOid(i)));
  // Empty out the middle third.
  for (int i = 600; i < 1400; ++i) {
    FR_ASSERT_OK(tree_.Delete(i, MakeOid(i)));
  }
  std::vector<int64_t> keys;
  FR_ASSERT_OK(tree_.ScanRange(0, 1999, [&](int64_t key, Oid) {
    keys.push_back(key);
    return true;
  }));
  ASSERT_EQ(keys.size(), 1200u);
  EXPECT_EQ(keys[599], 599);
  EXPECT_EQ(keys[600], 1400);
  FR_ASSERT_OK(tree_.CheckInvariants());
}

TEST_F(BTreeTest, HeightAndPageCountGrow) {
  auto h0 = tree_.Height();
  ASSERT_TRUE(h0.ok());
  EXPECT_EQ(*h0, 1u);
  for (int i = 0; i < 300; ++i) FR_ASSERT_OK(tree_.Insert(i, MakeOid(i)));
  auto h1 = tree_.Height();
  ASSERT_TRUE(h1.ok());
  EXPECT_EQ(*h1, 2u);  // 300 > 252 leaf capacity
  auto pages = tree_.PageCount();
  ASSERT_TRUE(pages.ok());
  EXPECT_GE(*pages, 3u);  // root + 2 leaves
}

TEST_F(BTreeTest, MetadataRoundTrip) {
  for (int i = 0; i < 1000; ++i) FR_ASSERT_OK(tree_.Insert(i, MakeOid(i)));
  std::string meta = tree_.EncodeMetadata();
  BTree reopened(&pool_);
  FR_ASSERT_OK(reopened.DecodeMetadata(meta));
  EXPECT_EQ(reopened.size(), 1000u);
  std::vector<Oid> out;
  FR_ASSERT_OK(reopened.Lookup(500, &out));
  EXPECT_EQ(out.size(), 1u);
}

struct BTreePropertyCase {
  uint64_t seed;
  int operations;
  int64_t key_space;
};

class BTreePropertyTest : public ::testing::TestWithParam<BTreePropertyCase> {};

TEST_P(BTreePropertyTest, MatchesMultimap) {
  const BTreePropertyCase& param = GetParam();
  MemoryDevice device;
  BufferPool pool(&device, 512);
  BTree tree(&pool);
  FR_ASSERT_OK(tree.Init());

  Random rng(param.seed);
  std::multimap<int64_t, uint64_t> shadow;
  std::set<std::pair<int64_t, uint64_t>> entries;
  for (int step = 0; step < param.operations; ++step) {
    int64_t key = static_cast<int64_t>(rng.Uniform(param.key_space)) -
                  param.key_space / 2;
    uint64_t value = rng.Uniform(1u << 20);
    Oid oid = Oid::FromPacked((static_cast<uint64_t>(1) << 48) | value);
    if (rng.Bernoulli(0.7)) {
      bool fresh = entries.insert({key, oid.Packed()}).second;
      Status s = tree.Insert(key, oid);
      if (fresh) {
        ASSERT_TRUE(s.ok()) << s.ToString();
        shadow.emplace(key, oid.Packed());
      } else {
        ASSERT_EQ(s.code(), StatusCode::kAlreadyExists);
      }
    } else if (!entries.empty()) {
      auto it = entries.begin();
      std::advance(it, rng.Uniform(entries.size()));
      Status s = tree.Delete(it->first, Oid::FromPacked(it->second));
      ASSERT_TRUE(s.ok()) << s.ToString();
      auto range = shadow.equal_range(it->first);
      for (auto sit = range.first; sit != range.second; ++sit) {
        if (sit->second == it->second) {
          shadow.erase(sit);
          break;
        }
      }
      entries.erase(it);
    }
  }
  ASSERT_EQ(tree.size(), shadow.size());
  FR_ASSERT_OK(tree.CheckInvariants());
  // Full scan equals the shadow in (key, value) order.
  std::vector<std::pair<int64_t, uint64_t>> from_tree;
  FR_ASSERT_OK(tree.ScanRange(INT64_MIN, INT64_MAX, [&](int64_t key, Oid oid) {
    from_tree.emplace_back(key, oid.Packed());
    return true;
  }));
  std::vector<std::pair<int64_t, uint64_t>> from_shadow(shadow.begin(),
                                                        shadow.end());
  std::sort(from_shadow.begin(), from_shadow.end());
  ASSERT_EQ(from_tree, from_shadow);
  // Random range probes.
  for (int probe = 0; probe < 20; ++probe) {
    int64_t lo = static_cast<int64_t>(rng.Uniform(param.key_space)) -
                 param.key_space / 2;
    int64_t hi = lo + static_cast<int64_t>(rng.Uniform(param.key_space / 4));
    size_t expected = 0;
    for (const auto& [key, value] : shadow) {
      if (key >= lo && key <= hi) ++expected;
    }
    size_t got = 0;
    FR_ASSERT_OK(tree.ScanRange(lo, hi, [&](int64_t, Oid) {
      ++got;
      return true;
    }));
    ASSERT_EQ(got, expected);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, BTreePropertyTest,
    ::testing::Values(BTreePropertyCase{1, 2000, 50},      // heavy duplicates
                      BTreePropertyCase{2, 5000, 100000},  // sparse keys
                      BTreePropertyCase{3, 8000, 1000},    // mixed
                      BTreePropertyCase{4, 3000, 10}));    // pathological dup

TEST(BTreeKeyTest, IntegersMapDirectly) {
  auto key = BTreeKeyForValue(Value(int32_t{-5}));
  ASSERT_TRUE(key.ok());
  EXPECT_EQ(*key, -5);
  key = BTreeKeyForValue(Value(int64_t{1} << 40));
  ASSERT_TRUE(key.ok());
  EXPECT_EQ(*key, int64_t{1} << 40);
}

TEST(BTreeKeyTest, DoubleTransformPreservesOrder) {
  double values[] = {-1e30, -2.5, -0.0, 0.0, 1e-10, 3.7, 1e30};
  int64_t prev = 0;
  bool first = true;
  for (double d : values) {
    auto key = BTreeKeyForValue(Value(d));
    ASSERT_TRUE(key.ok());
    if (!first) {
      EXPECT_LE(prev, *key) << d;
    }
    prev = *key;
    first = false;
  }
}

TEST(BTreeKeyTest, StringPrefixPreservesOrder) {
  auto a = BTreeKeyForValue(Value("apple"));
  auto b = BTreeKeyForValue(Value("banana"));
  auto c = BTreeKeyForValue(Value("cherry"));
  ASSERT_TRUE(a.ok() && b.ok() && c.ok());
  EXPECT_LT(*a, *b);
  EXPECT_LT(*b, *c);
  // Long shared prefixes collide (the documented post-filter case).
  auto x = BTreeKeyForValue(Value("averylongprefix_1"));
  auto y = BTreeKeyForValue(Value("averylongprefix_2"));
  EXPECT_EQ(*x, *y);
}

TEST(BTreeKeyTest, NullRejected) {
  EXPECT_FALSE(BTreeKeyForValue(Value::Null()).ok());
}

}  // namespace
}  // namespace fieldrep
