// Client/server suite (DESIGN.md §12): wire-protocol codecs, round-trip
// equivalence against the embedded engine, protocol edge cases over raw
// sockets, session lifecycle (disconnect aborts transactions), group
// commit under concurrency, crash recovery mid-batch, prepared
// statements, admission control, and the metrics opcode.
//
// Servers listen on unix sockets in the test temp dir; the concurrency
// suite is named NetConcurrencyTest so the tsan CI lane picks it up.

#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "client/client.h"
#include "common/strings.h"
#include "costmodel/params.h"
#include "gtest/gtest.h"
#include "net/protocol.h"
#include "net/server.h"
#include "storage/fault_injecting_device.h"
#include "storage/memory_device.h"
#include "telemetry/metrics.h"
#include "test_util.h"

namespace fieldrep {
namespace {

using ::fieldrep::testing::EmployeeFixture;
using ::fieldrep::testing::ExpectCleanIntegrity;
using ::fieldrep::testing::OpenEmployeeDatabase;
using ::fieldrep::testing::PopulateEmployees;
using client::Client;

std::string TestSocketPath(const char* tag) {
  return StringPrintf("/tmp/fieldrep_net_test_%s_%d.sock", tag,
                      static_cast<int>(::getpid()));
}

/// Polls `pred` for up to `timeout_ms`; disconnect cleanup runs on the
/// server's event thread, so tests that observe its effects must wait.
bool WaitFor(const std::function<bool()>& pred, int timeout_ms = 5000) {
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::milliseconds(timeout_ms);
  while (std::chrono::steady_clock::now() < deadline) {
    if (pred()) return true;
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  return pred();
}

// --- Wire protocol codecs -----------------------------------------------------

TEST(NetProtocolTest, FrameRoundTripAndPartialReassembly) {
  net::Frame frame;
  frame.opcode = static_cast<uint16_t>(net::Opcode::kExecute);
  frame.session_id = 0x1122334455667788ull;
  frame.payload = "hello payload";
  std::string wire;
  net::EncodeFrame(frame, &wire);

  // Feed the encoding one byte at a time: exactly one complete frame,
  // only once the last byte arrives.
  std::string buffer;
  net::Frame decoded;
  bool complete = false;
  for (size_t i = 0; i + 1 < wire.size(); ++i) {
    buffer.push_back(wire[i]);
    FR_ASSERT_OK(net::TryParseFrame(&buffer, &decoded, &complete));
    ASSERT_FALSE(complete) << "frame complete after " << i + 1 << " bytes";
  }
  buffer.push_back(wire.back());
  FR_ASSERT_OK(net::TryParseFrame(&buffer, &decoded, &complete));
  ASSERT_TRUE(complete);
  EXPECT_EQ(decoded.opcode, frame.opcode);
  EXPECT_EQ(decoded.session_id, frame.session_id);
  EXPECT_EQ(decoded.payload, frame.payload);
  EXPECT_TRUE(buffer.empty());
}

TEST(NetProtocolTest, RejectsBadMagicVersionAndOversizeLength) {
  net::Frame frame;
  frame.opcode = static_cast<uint16_t>(net::Opcode::kHandshake);
  std::string good;
  net::EncodeFrame(frame, &good);

  net::Frame decoded;
  bool complete = false;

  std::string bad_magic = good;
  bad_magic[4] ^= 0xFF;
  EXPECT_FALSE(net::TryParseFrame(&bad_magic, &decoded, &complete).ok());

  std::string bad_version = good;
  bad_version[8] = 0x7F;
  EXPECT_FALSE(net::TryParseFrame(&bad_version, &decoded, &complete).ok());

  std::string oversize;
  PutU32(&oversize, net::kMaxFrameLength + 1);
  oversize.append(good.substr(4));
  EXPECT_FALSE(net::TryParseFrame(&oversize, &decoded, &complete).ok());

  std::string undersize;
  PutU32(&undersize, net::kFrameHeaderSize - 1);
  EXPECT_FALSE(net::TryParseFrame(&undersize, &decoded, &complete).ok());
}

TEST(NetProtocolTest, StatementRoundTripPreservesQuery) {
  ReadQuery query;
  query.set_name = "Emp1";
  query.projections = {"name", "salary", "dept.name"};
  query.predicate = Predicate::Compare("salary", CompareOp::kGt,
                                       Value(int32_t{41000}));
  query.write_output = true;
  query.output_pad = 100;

  std::string wire;
  net::EncodeReadStatement(net::ReadStatement::From(query), &wire);
  ByteReader reader(wire);
  net::ReadStatement decoded;
  FR_ASSERT_OK(net::DecodeReadStatement(&reader, &decoded));
  EXPECT_EQ(decoded.ParamCount(), 0);
  auto bound = decoded.Bind({});
  FR_ASSERT_OK(bound.status());
  EXPECT_EQ(bound.value().set_name, query.set_name);
  EXPECT_EQ(bound.value().projections, query.projections);
  EXPECT_TRUE(bound.value().write_output);
  EXPECT_EQ(bound.value().output_pad, 100u);
  ASSERT_TRUE(bound.value().predicate.has_value());
}

TEST(NetProtocolTest, ParameterizedStatementBindsInOrder) {
  net::UpdateStatement stmt;
  stmt.set_name = "T";
  net::StatementPredicate pred;
  pred.attr_name = "key";
  pred.op = CompareOp::kEq;
  pred.operand = net::WireOperand::Param(0);
  stmt.predicate = pred;
  stmt.assignments.emplace_back("val", net::WireOperand::Param(1));

  std::string wire;
  net::EncodeUpdateStatement(stmt, &wire);
  ByteReader reader(wire);
  net::UpdateStatement decoded;
  FR_ASSERT_OK(net::DecodeUpdateStatement(&reader, &decoded));
  EXPECT_EQ(decoded.ParamCount(), 2);

  auto bound = decoded.Bind({Value(int32_t{7}), Value(int32_t{99})});
  FR_ASSERT_OK(bound.status());
  ASSERT_EQ(bound.value().assignments.size(), 1u);
  EXPECT_EQ(bound.value().assignments[0].second, Value(int32_t{99}));

  // Too few parameters must fail, not crash.
  EXPECT_FALSE(decoded.Bind({Value(int32_t{7})}).ok());
}

TEST(NetProtocolTest, ErrorPayloadRoundTripsStatus) {
  std::string wire;
  net::EncodeErrorPayload(Status::Unavailable("server at capacity"), &wire);
  ByteReader reader(wire);
  Status decoded;
  FR_ASSERT_OK(net::DecodeErrorPayload(&reader, &decoded));
  EXPECT_TRUE(decoded.IsUnavailable());
  EXPECT_NE(decoded.ToString().find("server at capacity"), std::string::npos);
}

// --- Server fixtures ----------------------------------------------------------

struct ServedEmployees {
  std::unique_ptr<Database> db;
  std::unique_ptr<net::Server> server;
  EmployeeFixture fixture;

  static ServedEmployees Start(const char* tag,
                               net::ServerOptions options = {}) {
    ServedEmployees s;
    s.db = OpenEmployeeDatabase();
    s.fixture = PopulateEmployees(s.db.get(), 4, 16, 200);
    options.address = "unix:" + TestSocketPath(tag);
    auto server_or = net::Server::Start(s.db.get(), options);
    EXPECT_TRUE(server_or.ok()) << server_or.status().ToString();
    if (server_or.ok()) s.server = std::move(server_or).value();
    return s;
  }
};

ReadQuery SalaryQuery(int32_t threshold) {
  ReadQuery query;
  query.set_name = "Emp1";
  query.projections = {"name", "salary", "dept.name"};
  query.predicate = Predicate::Compare("salary", CompareOp::kGt,
                                       Value(threshold));
  return query;
}

// --- Round-trip equivalence ---------------------------------------------------

/// The acceptance bar for the protocol: a query round-tripped through
/// the server returns byte-identical rows and costs the same logical
/// I/O as the embedded engine, for every replication strategy.
class NetEquivalenceTest
    : public ::testing::TestWithParam<ModelStrategy> {};

TEST_P(NetEquivalenceTest, ServedQueryMatchesEmbedded) {
  // Two identically-built databases: one served, one embedded.
  auto embedded = OpenEmployeeDatabase();
  PopulateEmployees(embedded.get(), 4, 16, 200);
  ServedEmployees served = ServedEmployees::Start("equiv");
  ASSERT_NE(served.server, nullptr);

  const ModelStrategy strategy = GetParam();
  if (strategy != ModelStrategy::kNoReplication) {
    ReplicateOptions options;
    options.strategy = strategy == ModelStrategy::kInPlace
                           ? ReplicationStrategy::kInPlace
                           : ReplicationStrategy::kSeparate;
    FR_ASSERT_OK(embedded->Replicate("Emp1.dept.name", options));
    FR_ASSERT_OK(served.db->Replicate("Emp1.dept.name", options));
  }

  auto client_or = Client::Connect(served.server->address());
  FR_ASSERT_OK(client_or.status());
  auto& client = *client_or.value();

  for (const int32_t threshold : {0, 41000, 199000, 1000000}) {
    const ReadQuery query = SalaryQuery(threshold);

    FR_ASSERT_OK(embedded->ColdStart());
    ReadResult embedded_result;
    FR_ASSERT_OK(embedded->Retrieve(query, &embedded_result));
    const IoStats embedded_io = embedded->io_stats();

    FR_ASSERT_OK(served.db->ColdStart());
    ReadResult served_result;
    FR_ASSERT_OK(client.Retrieve(query, &served_result));
    const IoStats served_io = served.db->io_stats();

    // Byte-identical rows (Value equality is exact, padding included).
    ASSERT_EQ(served_result.rows.size(), embedded_result.rows.size())
        << "threshold " << threshold;
    for (size_t i = 0; i < served_result.rows.size(); ++i) {
      EXPECT_EQ(served_result.rows[i], embedded_result.rows[i]);
    }
    EXPECT_EQ(served_result.heads_scanned, embedded_result.heads_scanned);
    EXPECT_EQ(served_result.used_index, embedded_result.used_index);
    ASSERT_EQ(served_result.access.size(), embedded_result.access.size());
    for (size_t i = 0; i < served_result.access.size(); ++i) {
      EXPECT_EQ(served_result.access[i], embedded_result.access[i]);
    }

    // Equal logical I/O: the transport adds zero page traffic.
    EXPECT_EQ(served_io.fetches, embedded_io.fetches);
    EXPECT_EQ(served_io.hits, embedded_io.hits);
    EXPECT_EQ(served_io.disk_reads, embedded_io.disk_reads);
    EXPECT_EQ(served_io.disk_writes, embedded_io.disk_writes);
  }

  // Updates too: same replace through both engines, then re-read.
  UpdateQuery update;
  update.set_name = "Emp1";
  update.predicate = Predicate::Compare("salary", CompareOp::kGt,
                                        Value(int32_t{150000}));
  update.assignments.emplace_back("salary", Value(int32_t{150001}));
  UpdateResult embedded_update, served_update;
  FR_ASSERT_OK(embedded->Replace(update, &embedded_update));
  FR_ASSERT_OK(client.Replace(update, &served_update));
  EXPECT_EQ(served_update.objects_updated, embedded_update.objects_updated);

  ReadResult after_embedded, after_served;
  FR_ASSERT_OK(embedded->Retrieve(SalaryQuery(0), &after_embedded));
  FR_ASSERT_OK(client.Retrieve(SalaryQuery(0), &after_served));
  ASSERT_EQ(after_served.rows.size(), after_embedded.rows.size());
  for (size_t i = 0; i < after_served.rows.size(); ++i) {
    EXPECT_EQ(after_served.rows[i], after_embedded.rows[i]);
  }

  ExpectCleanIntegrity(served.db.get());
}

INSTANTIATE_TEST_SUITE_P(AllStrategies, NetEquivalenceTest,
                         ::testing::Values(ModelStrategy::kNoReplication,
                                           ModelStrategy::kInPlace,
                                           ModelStrategy::kSeparate),
                         [](const auto& info) {
                           switch (info.param) {
                             case ModelStrategy::kInPlace:
                               return std::string("InPlace");
                             case ModelStrategy::kSeparate:
                               return std::string("Separate");
                             default:
                               return std::string("NoReplication");
                           }
                         });

// --- Protocol edge cases over raw sockets -------------------------------------

class NetEdgeCaseTest : public ::testing::Test {
 protected:
  void SetUp() override {
    served_ = ServedEmployees::Start("edge");
    ASSERT_NE(served_.server, nullptr);
  }

  /// The server must still serve a full round trip — the bar after every
  /// edge case below.
  void ExpectServerUsable() {
    auto client_or = Client::Connect(served_.server->address());
    FR_ASSERT_OK(client_or.status());
    ReadResult result;
    FR_ASSERT_OK(client_or.value()->Retrieve(SalaryQuery(-1), &result));
    EXPECT_EQ(result.rows.size(), 200u);
  }

  Result<int> RawConnect() {
    return net::ConnectTo(served_.server->address());
  }

  ServedEmployees served_;
};

TEST_F(NetEdgeCaseTest, BadMagicGetsStructuredErrorThenDrop) {
  auto fd_or = RawConnect();
  FR_ASSERT_OK(fd_or.status());
  const int fd = fd_or.value();

  net::Frame frame;
  frame.opcode = static_cast<uint16_t>(net::Opcode::kHandshake);
  std::string wire;
  net::EncodeFrame(frame, &wire);
  wire[4] ^= 0xFF;  // corrupt the magic
  FR_ASSERT_OK(net::WriteFully(fd, wire.data(), wire.size()));

  std::string buffer;
  net::Frame reply;
  FR_ASSERT_OK(net::ReadFrameBlocking(fd, &buffer, &reply));
  EXPECT_EQ(reply.opcode, static_cast<uint16_t>(net::Opcode::kError));
  // The session is dropped after the error: next read sees EOF.
  net::Frame next;
  EXPECT_FALSE(net::ReadFrameBlocking(fd, &buffer, &next).ok());
  ::close(fd);
  ExpectServerUsable();
}

TEST_F(NetEdgeCaseTest, VersionMismatchIsRejected) {
  auto fd_or = RawConnect();
  FR_ASSERT_OK(fd_or.status());
  const int fd = fd_or.value();

  net::Frame frame;
  frame.opcode = static_cast<uint16_t>(net::Opcode::kHandshake);
  std::string wire;
  net::EncodeFrame(frame, &wire);
  wire[8] = 0x7E;  // bogus protocol version
  FR_ASSERT_OK(net::WriteFully(fd, wire.data(), wire.size()));

  std::string buffer;
  net::Frame reply;
  FR_ASSERT_OK(net::ReadFrameBlocking(fd, &buffer, &reply));
  EXPECT_EQ(reply.opcode, static_cast<uint16_t>(net::Opcode::kError));
  ::close(fd);
  ExpectServerUsable();
}

TEST_F(NetEdgeCaseTest, OversizeLengthIsRejected) {
  auto fd_or = RawConnect();
  FR_ASSERT_OK(fd_or.status());
  const int fd = fd_or.value();

  std::string wire;
  PutU32(&wire, net::kMaxFrameLength + 1);
  PutU32(&wire, net::kMagic);
  PutU16(&wire, net::kProtocolVersion);
  PutU16(&wire, static_cast<uint16_t>(net::Opcode::kHandshake));
  PutU64(&wire, 0);
  FR_ASSERT_OK(net::WriteFully(fd, wire.data(), wire.size()));

  std::string buffer;
  net::Frame reply;
  FR_ASSERT_OK(net::ReadFrameBlocking(fd, &buffer, &reply));
  EXPECT_EQ(reply.opcode, static_cast<uint16_t>(net::Opcode::kError));
  ::close(fd);
  ExpectServerUsable();
}

TEST_F(NetEdgeCaseTest, MidFrameDisconnectIsACleanSessionDrop) {
  auto fd_or = RawConnect();
  FR_ASSERT_OK(fd_or.status());
  const int fd = fd_or.value();

  net::Frame frame;
  frame.opcode = static_cast<uint16_t>(net::Opcode::kHandshake);
  frame.payload = std::string(64, 'x');
  std::string wire;
  net::EncodeFrame(frame, &wire);
  // Half a frame, then vanish.
  FR_ASSERT_OK(net::WriteFully(fd, wire.data(), wire.size() / 2));
  ::close(fd);

  ASSERT_TRUE(WaitFor([&] {
    return served_.server->metrics().sessions_active.load() == 0;
  }));
  ExpectServerUsable();
  ExpectCleanIntegrity(served_.db.get());
}

TEST_F(NetEdgeCaseTest, UnknownOpcodeAndBadStatementKeepSessionAlive) {
  auto client_or = Client::Connect(served_.server->address());
  FR_ASSERT_OK(client_or.status());
  auto& client = *client_or.value();

  // Executing a never-prepared statement is a structured error...
  ReadResult ignored;
  Status s = client.ExecuteRead(777, {}, &ignored);
  EXPECT_FALSE(s.ok());
  // ...and a commit without a begin likewise...
  EXPECT_FALSE(client.Commit().ok());
  // ...but the session survives both.
  ReadResult result;
  FR_ASSERT_OK(client.Retrieve(SalaryQuery(-1), &result));
  EXPECT_EQ(result.rows.size(), 200u);
}

TEST_F(NetEdgeCaseTest, GarbageFloodNeverCorruptsTheDatabase) {
  for (int round = 0; round < 8; ++round) {
    auto fd_or = RawConnect();
    FR_ASSERT_OK(fd_or.status());
    const int fd = fd_or.value();
    std::string garbage;
    for (int i = 0; i < 64; ++i) {
      garbage.push_back(static_cast<char>((round * 31 + i * 7) & 0xFF));
    }
    (void)net::WriteFully(fd, garbage.data(), garbage.size());
    ::close(fd);
  }
  // The event thread accepts and parses asynchronously: wait until all
  // eight floods were seen and torn down before asserting.
  ASSERT_TRUE(WaitFor([&] {
    return served_.server->metrics().sessions_accepted.load() >= 8 &&
           served_.server->metrics().sessions_active.load() == 0;
  }));
  EXPECT_GT(served_.server->metrics().protocol_errors.load(), 0u);
  ExpectServerUsable();
  ExpectCleanIntegrity(served_.db.get());
}

// --- Session lifecycle --------------------------------------------------------

struct ServedWalDb {
  std::unique_ptr<Database> db;
  std::unique_ptr<net::Server> server;
  std::vector<Oid> oids;

  /// In-memory database with WAL (required for session transactions),
  /// one set "T" of `rows` (key, val) rows, served on a unix socket.
  static ServedWalDb Start(const char* tag, int rows,
                           bool group_commit = false,
                           net::ServerOptions options = {}) {
    ServedWalDb s;
    Database::Options db_options;
    db_options.enable_wal = true;
    db_options.wal_group_commit = group_commit;
    auto db_or = Database::Open(db_options);
    EXPECT_TRUE(db_or.ok()) << db_or.status().ToString();
    if (!db_or.ok()) return s;
    s.db = std::move(db_or).value();
    EXPECT_TRUE(s.db->DefineType(TypeDescriptor("ROW", {Int32Attr("key"),
                                                        Int32Attr("val")}))
                    .ok());
    EXPECT_TRUE(s.db->CreateSet("T", "ROW").ok());
    s.oids.resize(static_cast<size_t>(rows));
    for (int i = 0; i < rows; ++i) {
      EXPECT_TRUE(s.db->Insert("T",
                               Object(0, {Value(int32_t{i}),
                                          Value(int32_t{0})}),
                               &s.oids[static_cast<size_t>(i)])
                      .ok());
    }
    options.address = "unix:" + TestSocketPath(tag);
    auto server_or = net::Server::Start(s.db.get(), options);
    EXPECT_TRUE(server_or.ok()) << server_or.status().ToString();
    if (server_or.ok()) s.server = std::move(server_or).value();
    return s;
  }
};

UpdateQuery SetVal(int32_t key, int32_t val) {
  UpdateQuery query;
  query.set_name = "T";
  query.predicate = Predicate::Compare("key", CompareOp::kEq, Value(key));
  query.assignments.emplace_back("val", Value(val));
  return query;
}

int32_t ReadVal(Client* client, int32_t key) {
  ReadQuery query;
  query.set_name = "T";
  query.projections = {"val"};
  query.predicate = Predicate::Compare("key", CompareOp::kEq, Value(key));
  ReadResult result;
  Status s = client->Retrieve(query, &result);
  EXPECT_TRUE(s.ok()) << s.ToString();
  if (result.rows.size() != 1 || result.rows[0].size() != 1) return -1;
  return result.rows[0][0].as_int32();
}

TEST(NetSessionLifecycleTest, DisconnectAbortsOpenTransaction) {
  ServedWalDb served = ServedWalDb::Start("lifecycle", 4);
  ASSERT_NE(served.server, nullptr);

  // Session A: explicit transaction with an uncommitted update, then the
  // connection dies without a Goodbye (client crash).
  auto a_or = Client::Connect(served.server->address());
  FR_ASSERT_OK(a_or.status());
  FR_ASSERT_OK(a_or.value()->Begin());
  UpdateResult ur;
  FR_ASSERT_OK(a_or.value()->Replace(SetVal(0, 111), &ur));
  EXPECT_EQ(ur.objects_updated, 1u);
  a_or.value()->Abandon();

  // The server must abort the transaction and release the writer gate.
  ASSERT_TRUE(WaitFor([&] { return !served.db->InSessionTransaction(); }));

  // Session B can now take the gate — B's Begin would park forever if the
  // dead session leaked it. (The engine's abort is redo-only: A's
  // volatile effects may remain visible, but nothing of A's transaction
  // was logged, so durable state is the last committed one — NetCrashTest
  // covers that side.)
  auto b_or = Client::Connect(served.server->address());
  FR_ASSERT_OK(b_or.status());
  auto& b = *b_or.value();
  FR_ASSERT_OK(b.Begin());
  FR_ASSERT_OK(b.Replace(SetVal(0, 222), &ur));
  FR_ASSERT_OK(b.Commit());
  EXPECT_EQ(ReadVal(&b, 0), 222);

  ExpectCleanIntegrity(served.db.get());
}

TEST(NetSessionLifecycleTest, ExplicitAbortClosesTheBracket) {
  ServedWalDb served = ServedWalDb::Start("abort", 2);
  ASSERT_NE(served.server, nullptr);
  auto client_or = Client::Connect(served.server->address());
  FR_ASSERT_OK(client_or.status());
  auto& client = *client_or.value();

  UpdateResult ur;
  FR_ASSERT_OK(client.Begin());
  FR_ASSERT_OK(client.Replace(SetVal(1, 333), &ur));
  FR_ASSERT_OK(client.Abort());
  EXPECT_FALSE(served.db->InSessionTransaction());

  // The bracket is fully closed: a fresh transaction works.
  FR_ASSERT_OK(client.Begin());
  FR_ASSERT_OK(client.Replace(SetVal(1, 444), &ur));
  FR_ASSERT_OK(client.Commit());
  EXPECT_EQ(ReadVal(&client, 1), 444);
  ExpectCleanIntegrity(served.db.get());
}

TEST(NetSessionLifecycleTest, ServerStopAbortsOpenTransactions) {
  ServedWalDb served = ServedWalDb::Start("stop", 2);
  ASSERT_NE(served.server, nullptr);
  auto client_or = Client::Connect(served.server->address());
  FR_ASSERT_OK(client_or.status());
  FR_ASSERT_OK(client_or.value()->Begin());
  UpdateResult ur;
  FR_ASSERT_OK(client_or.value()->Replace(SetVal(0, 555), &ur));

  served.server->Stop();
  EXPECT_FALSE(served.db->InSessionTransaction());

  // The aborted transaction logged nothing, and the embedded engine is
  // fully usable again (no leaked gate, no open WAL bracket).
  UpdateResult embedded_ur;
  FR_ASSERT_OK(served.db->Replace(SetVal(1, 666), &embedded_ur));
  EXPECT_EQ(embedded_ur.objects_updated, 1u);
  ExpectCleanIntegrity(served.db.get());
}

// --- Prepared statements ------------------------------------------------------

TEST(NetPreparedStatementTest, BindExecuteReuseAndClose) {
  ServedEmployees served = ServedEmployees::Start("prepared");
  ASSERT_NE(served.server, nullptr);
  auto client_or = Client::Connect(served.server->address());
  FR_ASSERT_OK(client_or.status());
  auto& client = *client_or.value();

  net::ReadStatement stmt;
  stmt.set_name = "Emp1";
  stmt.projections = {"name", "salary"};
  net::StatementPredicate pred;
  pred.attr_name = "salary";
  pred.op = CompareOp::kGt;
  pred.operand = net::WireOperand::Param(0);
  stmt.predicate = pred;

  auto id_or = client.PrepareRead(stmt);
  FR_ASSERT_OK(id_or.status());
  const uint32_t id = id_or.value();
  auto params_or = client.StatementParamCount(id);
  FR_ASSERT_OK(params_or.status());
  EXPECT_EQ(params_or.value(), 1);

  // The same statement, different bindings — matching the embedded plan.
  for (const int32_t threshold : {0, 100000, 1000000}) {
    ReadResult via_stmt, via_query;
    FR_ASSERT_OK(client.ExecuteRead(id, {Value(threshold)}, &via_stmt));
    ReadQuery query;
    query.set_name = "Emp1";
    query.projections = {"name", "salary"};
    query.predicate = Predicate::Compare("salary", CompareOp::kGt,
                                         Value(threshold));
    FR_ASSERT_OK(served.db->Retrieve(query, &via_query));
    ASSERT_EQ(via_stmt.rows.size(), via_query.rows.size());
    for (size_t i = 0; i < via_stmt.rows.size(); ++i) {
      EXPECT_EQ(via_stmt.rows[i], via_query.rows[i]);
    }
  }

  // Wrong arity is a structured error, not a crash.
  ReadResult ignored;
  EXPECT_FALSE(client.ExecuteRead(id, {}, &ignored).ok());

  FR_ASSERT_OK(client.CloseStatement(id));
  EXPECT_FALSE(client.ExecuteRead(id, {Value(int32_t{0})}, &ignored).ok());
}

TEST(NetPreparedStatementTest, ParameterizedUpdateAndAsyncPipeline) {
  ServedWalDb served = ServedWalDb::Start("async", 8);
  ASSERT_NE(served.server, nullptr);
  auto client_or = Client::Connect(served.server->address());
  FR_ASSERT_OK(client_or.status());
  auto& client = *client_or.value();

  net::UpdateStatement update;
  update.set_name = "T";
  net::StatementPredicate pred;
  pred.attr_name = "key";
  pred.op = CompareOp::kEq;
  pred.operand = net::WireOperand::Param(0);
  update.predicate = pred;
  update.assignments.emplace_back("val", net::WireOperand::Param(1));
  auto update_id_or = client.PrepareUpdate(update);
  FR_ASSERT_OK(update_id_or.status());
  const uint32_t update_id = update_id_or.value();

  // Pipeline eight updates without waiting, then await out of order.
  std::vector<uint64_t> tokens;
  for (int32_t key = 0; key < 8; ++key) {
    auto token_or = client.ExecuteUpdateAsync(
        update_id, {Value(key), Value(int32_t{1000 + key})});
    FR_ASSERT_OK(token_or.status());
    tokens.push_back(token_or.value());
  }
  for (int i = 7; i >= 0; --i) {
    UpdateResult result;
    FR_ASSERT_OK(client.AwaitUpdate(tokens[static_cast<size_t>(i)],
                                    &result));
    EXPECT_EQ(result.objects_updated, 1u);
  }
  for (int32_t key = 0; key < 8; ++key) {
    EXPECT_EQ(ReadVal(&client, key), 1000 + key);
  }
  ExpectCleanIntegrity(served.db.get());
}

// --- Admission control and backpressure ---------------------------------------

TEST(NetAdmissionTest, SessionsBeyondCapAreRefusedWithUnavailable) {
  net::ServerOptions options;
  options.max_sessions = 2;
  ServedEmployees served = ServedEmployees::Start("admission", options);
  ASSERT_NE(served.server, nullptr);

  auto a = Client::Connect(served.server->address());
  auto b = Client::Connect(served.server->address());
  FR_ASSERT_OK(a.status());
  FR_ASSERT_OK(b.status());

  auto c = Client::Connect(served.server->address());
  ASSERT_FALSE(c.ok());
  EXPECT_TRUE(c.status().IsUnavailable()) << c.status().ToString();
  EXPECT_GE(served.server->metrics().sessions_refused.load(), 1u);

  // Capacity frees as sessions leave.
  a.value().reset();
  ASSERT_TRUE(WaitFor([&] {
    return served.server->metrics().sessions_active.load() < 2;
  }));
  auto d = Client::Connect(served.server->address());
  FR_ASSERT_OK(d.status());
  ReadResult result;
  FR_ASSERT_OK(d.value()->Retrieve(SalaryQuery(0), &result));
}

TEST(NetAdmissionTest, PipelineOverflowAnswersUnavailableInOrder) {
  net::ServerOptions options;
  options.max_pipeline = 2;
  ServedWalDb served = ServedWalDb::Start("pipeline", 8, false, options);
  ASSERT_NE(served.server, nullptr);

  // Session A holds the writer gate so B's updates park and pile up.
  auto a_or = Client::Connect(served.server->address());
  auto b_or = Client::Connect(served.server->address());
  FR_ASSERT_OK(a_or.status());
  FR_ASSERT_OK(b_or.status());
  auto& a = *a_or.value();
  auto& b = *b_or.value();
  FR_ASSERT_OK(a.Begin());

  net::UpdateStatement update;
  update.set_name = "T";
  net::StatementPredicate pred;
  pred.attr_name = "key";
  pred.op = CompareOp::kEq;
  pred.operand = net::WireOperand::Param(0);
  update.predicate = pred;
  update.assignments.emplace_back("val", net::WireOperand::Param(1));
  auto id_or = b.PrepareUpdate(update);
  FR_ASSERT_OK(id_or.status());

  constexpr int kFlood = 6;
  std::vector<uint64_t> tokens;
  for (int32_t i = 0; i < kFlood; ++i) {
    auto token_or = b.ExecuteUpdateAsync(
        id_or.value(), {Value(int32_t{0}), Value(int32_t{100 + i})});
    FR_ASSERT_OK(token_or.status());
    tokens.push_back(token_or.value());
  }
  // Give the flood time to reach the server before the gate frees, so
  // the overflow path (not timing luck) answers the excess.
  ASSERT_TRUE(WaitFor([&] {
    return served.server->metrics().rejected.load() > 0;
  }));
  FR_ASSERT_OK(a.Commit());

  int ok = 0, unavailable = 0;
  for (uint64_t token : tokens) {
    UpdateResult result;
    Status s = b.AwaitUpdate(token, &result);
    if (s.ok()) {
      ++ok;
    } else {
      EXPECT_TRUE(s.IsUnavailable()) << s.ToString();
      ++unavailable;
    }
  }
  EXPECT_GT(ok, 0);
  EXPECT_GT(unavailable, 0);
  EXPECT_EQ(ok + unavailable, kFlood);

  // The session survives the overflow.
  UpdateResult result;
  FR_ASSERT_OK(b.ExecuteUpdate(id_or.value(),
                               {Value(int32_t{1}), Value(int32_t{7})},
                               &result));
  EXPECT_EQ(result.objects_updated, 1u);
  ExpectCleanIntegrity(served.db.get());
}

// --- Metrics over the wire ----------------------------------------------------

TEST(NetMetricsTest, WireScrapeParsesAndCountsNetActivity) {
  ServedEmployees served = ServedEmployees::Start("metrics");
  ASSERT_NE(served.server, nullptr);
  auto client_or = Client::Connect(served.server->address());
  FR_ASSERT_OK(client_or.status());
  auto& client = *client_or.value();

  ReadResult ignored;
  FR_ASSERT_OK(client.Retrieve(SalaryQuery(0), &ignored));

  std::string json;
  FR_ASSERT_OK(client.Metrics("json", &json));
  std::vector<MetricSample> samples;
  FR_ASSERT_OK(MetricsRegistry::ParseSamplesJson(json, &samples));
  bool saw_sessions = false, saw_requests = false, saw_latency = false;
  double requests = 0;
  for (const MetricSample& sample : samples) {
    if (sample.name == "fieldrep_net_sessions") saw_sessions = true;
    if (sample.name == "fieldrep_net_requests_total") {
      saw_requests = true;
      requests = sample.value;
    }
    if (sample.name == "fieldrep_net_request_ns") saw_latency = true;
  }
  EXPECT_TRUE(saw_sessions);
  EXPECT_TRUE(saw_requests);
  EXPECT_TRUE(saw_latency);
  EXPECT_GE(requests, 2.0);  // handshake + retrieve at minimum

  // Prometheus exposition works over the wire too.
  std::string prom;
  FR_ASSERT_OK(client.Metrics("prometheus", &prom));
  EXPECT_NE(prom.find("# TYPE fieldrep_net_requests_total counter"),
            std::string::npos);

  // Unknown formats are a structured error, not a dropped session.
  std::string bad;
  EXPECT_FALSE(client.Metrics("xml", &bad).ok());
  FR_ASSERT_OK(client.Metrics("json", &json));
}

// --- Group commit under concurrency (tsan lane: *Concurrency*) ----------------

// Delegates to another device but makes Sync() take real time, like a
// disk fsync. Concurrent committers then reliably pile up behind the
// leader's sync, so batch formation is deterministic even when a
// sanitizer serializes the threads onto one core.
class SlowSyncDevice : public StorageDevice {
 public:
  explicit SlowSyncDevice(StorageDevice* base) : base_(base) {}
  Status ReadPage(PageId page_id, void* buf) override {
    return base_->ReadPage(page_id, buf);
  }
  Status WritePage(PageId page_id, const void* buf) override {
    return base_->WritePage(page_id, buf);
  }
  Status AllocatePage(PageId* page_id) override {
    return base_->AllocatePage(page_id);
  }
  Status Sync() override {
    // Wide enough that under tsan's serialization (which stretches one
    // commit's apply path to several ms) another session still manages
    // to append its commit record while the leader is "on the disk".
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
    return base_->Sync();
  }
  uint32_t page_count() const override { return base_->page_count(); }

 private:
  StorageDevice* base_;
};

TEST(NetConcurrencyTest, GroupCommitBatchesConcurrentSessions) {
  MemoryDevice disk;
  MemoryDevice log_disk;
  SlowSyncDevice slow_log(&log_disk);

  Database::Options db_options;
  db_options.device = &disk;
  db_options.enable_wal = true;
  db_options.wal_device = &slow_log;  // ~1 ms fsyncs, so batching is observable
  db_options.wal_group_commit = true;
  auto db_or = Database::Open(db_options);
  FR_ASSERT_OK(db_or.status());
  auto db = std::move(db_or).value();
  FR_ASSERT_OK(db->DefineType(
      TypeDescriptor("ROW", {Int32Attr("key"), Int32Attr("val")})));
  FR_ASSERT_OK(db->CreateSet("T", "ROW"));
  constexpr int kClients = 32;
  constexpr int kCommitsEach = 8;
  for (int i = 0; i < kClients; ++i) {
    Oid oid;
    FR_ASSERT_OK(db->Insert(
        "T", Object(0, {Value(int32_t{i}), Value(int32_t{0})}), &oid));
  }
  FR_ASSERT_OK(db->Checkpoint());

  net::ServerOptions options;
  options.address = "unix:" + TestSocketPath("group");
  options.max_sessions = kClients + 4;
  options.worker_threads = 8;
  auto server_or = net::Server::Start(db.get(), options);
  FR_ASSERT_OK(server_or.status());
  auto server = std::move(server_or).value();

  const WalStats before = db->wal()->stats();
  std::atomic<int> failures{0};
  std::vector<std::thread> threads;
  threads.reserve(kClients);
  for (int c = 0; c < kClients; ++c) {
    threads.emplace_back([&, c] {
      auto client_or = Client::Connect(server->address());
      if (!client_or.ok()) {
        ++failures;
        return;
      }
      for (int i = 1; i <= kCommitsEach; ++i) {
        UpdateResult result;
        if (!client_or.value()->Replace(SetVal(c, i), &result).ok()) {
          ++failures;
          return;
        }
      }
    });
  }
  for (auto& t : threads) t.join();
  const WalStats after = db->wal()->stats();
  EXPECT_EQ(failures.load(), 0);

  // The headline: N concurrent auto-committed mutations, each
  // individually durable, with sub-linear fsyncs. At least one batch
  // must have carried more than one commit.
  const uint64_t commits = kClients * kCommitsEach;
  const uint64_t syncs = after.log_syncs - before.log_syncs;
  const uint64_t batches = after.group_batches - before.group_batches;
  const uint64_t batched = after.group_commits - before.group_commits;
  EXPECT_LT(syncs, commits) << "group commit never batched";
  EXPECT_GT(batched, batches) << "every batch held a single commit";

  // Every client's last write is durable and visible.
  auto check_or = Client::Connect(server->address());
  FR_ASSERT_OK(check_or.status());
  for (int c = 0; c < kClients; ++c) {
    EXPECT_EQ(ReadVal(check_or.value().get(), c), kCommitsEach);
  }
  check_or.value().reset();

  server->Stop();
  ExpectCleanIntegrity(db.get());
}

TEST(NetConcurrencyTest, ConnectDisconnectChurnUnderLoad) {
  ServedWalDb served = ServedWalDb::Start("churn", 8, true);
  ASSERT_NE(served.server, nullptr);

  std::atomic<int> failures{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < 8; ++t) {
    threads.emplace_back([&, t] {
      for (int round = 0; round < 12; ++round) {
        auto client_or = Client::Connect(served.server->address());
        if (!client_or.ok()) {
          ++failures;
          return;
        }
        UpdateResult result;
        if (!client_or.value()
                 ->Replace(SetVal(t, round), &result)
                 .ok()) {
          ++failures;
          return;
        }
        if (round % 3 == 0) {
          client_or.value()->Abandon();  // no Goodbye: exercise cleanup
        }
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(failures.load(), 0);

  ASSERT_TRUE(WaitFor([&] {
    return served.server->metrics().sessions_active.load() == 0;
  }));
  EXPECT_GE(served.server->metrics().sessions_accepted.load(), 96u);
  ExpectCleanIntegrity(served.db.get());
}

// --- Crash mid-batch ----------------------------------------------------------

TEST(NetCrashTest, CrashMidBatchRecoversPrefixConsistent) {
  MemoryDevice disk, log_disk;
  FaultPlan plan;
  FaultInjectingDevice db_dev(&disk, &plan);
  FaultInjectingDevice log_dev(&log_disk, &plan);

  constexpr int kClients = 8;
  constexpr int kCommitsEach = 12;
  {
    Database::Options options;
    options.device = &db_dev;
    options.wal_device = &log_dev;
    options.enable_wal = true;
    options.wal_group_commit = true;
    auto db_or = Database::Open(options);
    FR_ASSERT_OK(db_or.status());
    auto db = std::move(db_or).value();
    FR_ASSERT_OK(db->DefineType(
        TypeDescriptor("ROW", {Int32Attr("key"), Int32Attr("val")})));
    FR_ASSERT_OK(db->CreateSet("T", "ROW"));
    for (int i = 0; i < kClients; ++i) {
      Oid oid;
      FR_ASSERT_OK(db->Insert(
          "T", Object(0, {Value(int32_t{i}), Value(int32_t{0})}), &oid));
    }
    FR_ASSERT_OK(db->Checkpoint());

    net::ServerOptions server_options;
    server_options.address = "unix:" + TestSocketPath("crash");
    server_options.max_sessions = kClients + 2;
    auto server_or = net::Server::Start(db.get(), server_options);
    FR_ASSERT_OK(server_or.status());
    auto server = std::move(server_or).value();

    // Power fails somewhere inside the commit storm.
    plan.Arm(40);

    std::vector<int> acked(kClients, 0);
    std::vector<std::thread> threads;
    threads.reserve(kClients);
    for (int c = 0; c < kClients; ++c) {
      threads.emplace_back([&, c] {
        auto client_or = Client::Connect(server->address());
        if (!client_or.ok()) return;
        for (int i = 1; i <= kCommitsEach; ++i) {
          UpdateResult result;
          if (!client_or.value()->Replace(SetVal(c, i), &result).ok()) {
            return;  // the "machine" died; stop like a real client
          }
          acked[c] = i;  // durable-acknowledged prefix
        }
      });
    }
    for (auto& t : threads) t.join();
    server->Stop();

    // "Reboot": recover over the surviving media.
    plan.Reset();
    db.reset();
    auto recovered_or = Database::Open(options);
    FR_ASSERT_OK(recovered_or.status());
    auto recovered = std::move(recovered_or).value();

    // Prefix consistency per session: each client wrote 1,2,...,k
    // sequentially and got acks through acked[c]; the recovered value
    // must be at least the acked prefix and no later than the last
    // attempt.
    for (int c = 0; c < kClients; ++c) {
      ReadQuery query;
      query.set_name = "T";
      query.projections = {"val"};
      query.predicate = Predicate::Compare("key", CompareOp::kEq,
                                           Value(int32_t{c}));
      ReadResult result;
      FR_ASSERT_OK(recovered->Retrieve(query, &result));
      ASSERT_EQ(result.rows.size(), 1u);
      const int32_t val = result.rows[0][0].as_int32();
      EXPECT_GE(val, acked[c]) << "acknowledged commit lost for client "
                               << c;
      EXPECT_LE(val, kCommitsEach);
    }
    ExpectCleanIntegrity(recovered.get());
  }
}

// --- Concurrent writers -------------------------------------------------------

/// Two sessions mutating *disjoint* sets through the server's writer
/// gate: the engine still serializes them (single-writer), but every
/// gate acquisition, park/redispatch, and group-commit batch crosses
/// threads. Run under TSan this is the regression net for the
/// server-side locking (Server::mu_, session write_mu, gate handoff) and
/// the WAL group-commit leader/follower protocol.
TEST(NetConcurrencyTest, WritersOnDisjointSetsThroughGate) {
  Database::Options db_options;
  db_options.enable_wal = true;
  db_options.wal_group_commit = true;
  auto db_or = Database::Open(db_options);
  FR_ASSERT_OK(db_or.status());
  auto db = std::move(db_or).value();
  FR_ASSERT_OK(db->DefineType(
      TypeDescriptor("ROW", {Int32Attr("key"), Int32Attr("val")})));
  constexpr int kRowsPerSet = 8;
  for (const char* set_name : {"A", "B"}) {
    FR_ASSERT_OK(db->CreateSet(set_name, "ROW"));
    for (int i = 0; i < kRowsPerSet; ++i) {
      Oid oid;
      FR_ASSERT_OK(db->Insert(
          set_name, Object(0, {Value(int32_t{i}), Value(int32_t{0})}), &oid));
    }
  }
  net::ServerOptions options;
  options.address = "unix:" + TestSocketPath("writers");
  auto server_or = net::Server::Start(db.get(), options);
  FR_ASSERT_OK(server_or.status());
  auto server = std::move(server_or).value();

  constexpr int kRounds = 25;
  std::atomic<int> failures{0};
  auto writer = [&](const char* set_name) {
    auto client_or = Client::Connect(server->address());
    ASSERT_TRUE(client_or.ok()) << client_or.status().ToString();
    auto& client = *client_or.value();
    for (int round = 1; round <= kRounds; ++round) {
      // Alternate auto-committed updates with explicit brackets so both
      // gate lifetimes (per-request and Begin..Commit) interleave.
      const bool bracketed = (round % 2) == 0;
      if (bracketed && !client.Begin().ok()) ++failures;
      for (int key = 0; key < kRowsPerSet; ++key) {
        UpdateQuery update;
        update.set_name = set_name;
        update.predicate =
            Predicate::Compare("key", CompareOp::kEq, Value(int32_t{key}));
        update.assignments.emplace_back("val", Value(int32_t{round}));
        UpdateResult ur;
        if (!client.Replace(update, &ur).ok() || ur.objects_updated != 1) {
          ++failures;
        }
      }
      if (bracketed && !client.Commit().ok()) ++failures;
    }
  };
  std::thread ta(writer, "A");
  std::thread tb(writer, "B");
  ta.join();
  tb.join();
  EXPECT_EQ(failures.load(), 0);

  // Each set holds exactly its own writer's final round: no lost or
  // cross-applied update despite the interleaved gate traffic.
  auto reader_or = Client::Connect(server->address());
  FR_ASSERT_OK(reader_or.status());
  auto& reader = *reader_or.value();
  for (const char* set_name : {"A", "B"}) {
    ReadQuery query;
    query.set_name = set_name;
    query.projections = {"val"};
    ReadResult result;
    FR_ASSERT_OK(reader.Retrieve(query, &result));
    ASSERT_EQ(result.rows.size(), static_cast<size_t>(kRowsPerSet));
    for (const auto& row : result.rows) {
      EXPECT_EQ(row[0].as_int32(), kRounds) << "set " << set_name;
    }
  }
  server->Stop();
  ExpectCleanIntegrity(db.get());
}

/// Serves two sets of *distinct* types, so their write-lock closures are
/// disjoint singletons (DESIGN.md §14) — writer transactions on them
/// must interleave without ever touching each other's locks.
struct ServedTwoSetDb {
  std::unique_ptr<Database> db;
  std::unique_ptr<net::Server> server;

  static ServedTwoSetDb Start(const char* tag, int rows_per_set) {
    ServedTwoSetDb s;
    Database::Options db_options;
    db_options.enable_wal = true;
    db_options.wal_group_commit = true;
    auto db_or = Database::Open(db_options);
    EXPECT_TRUE(db_or.ok()) << db_or.status().ToString();
    if (!db_or.ok()) return s;
    s.db = std::move(db_or).value();
    for (const char* set_name : {"A", "B"}) {
      const std::string type_name = std::string("ROW") + set_name;
      EXPECT_TRUE(s.db->DefineType(TypeDescriptor(
                                       type_name, {Int32Attr("key"),
                                                   Int32Attr("val")}))
                      .ok());
      EXPECT_TRUE(s.db->CreateSet(set_name, type_name).ok());
      for (int i = 0; i < rows_per_set; ++i) {
        Oid oid;
        EXPECT_TRUE(s.db->Insert(set_name,
                                 Object(0, {Value(int32_t{i}),
                                            Value(int32_t{0})}),
                                 &oid)
                        .ok());
      }
    }
    net::ServerOptions options;
    options.address = "unix:" + TestSocketPath(tag);
    auto server_or = net::Server::Start(s.db.get(), options);
    EXPECT_TRUE(server_or.ok()) << server_or.status().ToString();
    if (server_or.ok()) s.server = std::move(server_or).value();
    return s;
  }
};

UpdateQuery SetValIn(const char* set_name, int32_t key, int32_t val) {
  UpdateQuery query;
  query.set_name = set_name;
  query.predicate = Predicate::Compare("key", CompareOp::kEq, Value(key));
  query.assignments.emplace_back("val", Value(val));
  return query;
}

/// Two sessions writing sets of distinct types, alternating auto-commit
/// and explicit brackets: with per-set locks the transactions must never
/// conflict — the lock table's conflict and abort counters stay at zero,
/// and every update lands (no lost updates across the interleaving).
TEST(NetConcurrencyTest, DisjointTypedWritersNeverConflict) {
  ServedTwoSetDb served = ServedTwoSetDb::Start("disjoint_typed", 8);
  ASSERT_NE(served.server, nullptr);
  constexpr int kRowsPerSet = 8;
  constexpr int kRounds = 25;
  std::atomic<int> failures{0};
  auto writer = [&](const char* set_name) {
    auto client_or = Client::Connect(served.server->address());
    ASSERT_TRUE(client_or.ok()) << client_or.status().ToString();
    auto& client = *client_or.value();
    for (int round = 1; round <= kRounds; ++round) {
      const bool bracketed = (round % 2) == 0;
      if (bracketed && !client.Begin().ok()) ++failures;
      for (int key = 0; key < kRowsPerSet; ++key) {
        UpdateResult ur;
        if (!client.Replace(SetValIn(set_name, key, round), &ur).ok() ||
            ur.objects_updated != 1) {
          ++failures;
        }
      }
      if (bracketed && !client.Commit().ok()) ++failures;
    }
  };
  std::thread ta(writer, "A");
  std::thread tb(writer, "B");
  ta.join();
  tb.join();
  EXPECT_EQ(failures.load(), 0);

  // The whole point of the striped locks: disjoint closures, zero
  // conflicts, zero wait-or-die aborts, nothing parked.
  EXPECT_EQ(served.db->lock_table().conflicts(), 0u);
  EXPECT_EQ(served.db->lock_table().aborts(), 0u);
  EXPECT_EQ(served.server->metrics().parks.load(), 0u);

  auto reader_or = Client::Connect(served.server->address());
  FR_ASSERT_OK(reader_or.status());
  for (const char* set_name : {"A", "B"}) {
    ReadQuery query;
    query.set_name = set_name;
    query.projections = {"val"};
    ReadResult result;
    FR_ASSERT_OK(reader_or.value()->Retrieve(query, &result));
    ASSERT_EQ(result.rows.size(), static_cast<size_t>(kRowsPerSet));
    for (const auto& row : result.rows) {
      EXPECT_EQ(row[0].as_int32(), kRounds) << "set " << set_name;
    }
  }
  served.server->Stop();
  ExpectCleanIntegrity(served.db.get());
}

/// A conflicting single-statement write against a set X-locked by an open
/// explicit transaction parks (is not refused, not aborted, not executed)
/// until the holder commits — then runs, so the parked write is the one
/// that survives.
TEST(NetConcurrencyTest, ConflictingWriterParksUntilCommit) {
  ServedWalDb served = ServedWalDb::Start("park", 2);
  ASSERT_NE(served.server, nullptr);

  auto a_or = Client::Connect(served.server->address());
  FR_ASSERT_OK(a_or.status());
  auto& a = *a_or.value();
  UpdateResult ur;
  FR_ASSERT_OK(a.Begin());
  FR_ASSERT_OK(a.Replace(SetVal(0, 111), &ur));  // A now holds X on "T"

  std::atomic<bool> b_done{false};
  std::thread tb([&] {
    auto b_or = Client::Connect(served.server->address());
    ASSERT_TRUE(b_or.ok()) << b_or.status().ToString();
    UpdateResult b_ur;
    Status s = b_or.value()->Replace(SetVal(0, 222), &b_ur);
    EXPECT_TRUE(s.ok()) << s.ToString();
    EXPECT_EQ(b_ur.objects_updated, 1u);
    b_done.store(true);
  });

  // B must reach the parked state, not complete and not get an error.
  ASSERT_TRUE(WaitFor(
      [&] { return served.server->metrics().parks.load() >= 1; }));
  EXPECT_FALSE(b_done.load());

  FR_ASSERT_OK(a.Commit());
  tb.join();
  EXPECT_TRUE(b_done.load());

  // B ran strictly after A's commit: its value is the final one.
  EXPECT_EQ(ReadVal(&a, 0), 222);
  served.server->Stop();
  ExpectCleanIntegrity(served.db.get());
}

/// Disconnect cleanup releases exactly the dead session's locks: an
/// unrelated transaction on another set races the cleanup, keeps its own
/// locks, and commits its update intact; the abandoned set is writable
/// again immediately afterwards.
TEST(NetSessionLifecycleTest, DisconnectReleasesOnlyOwnLocks) {
  ServedTwoSetDb served = ServedTwoSetDb::Start("own_locks", 2);
  ASSERT_NE(served.server, nullptr);

  auto a_or = Client::Connect(served.server->address());
  auto b_or = Client::Connect(served.server->address());
  FR_ASSERT_OK(a_or.status());
  FR_ASSERT_OK(b_or.status());
  auto& b = *b_or.value();

  UpdateResult ur;
  FR_ASSERT_OK(a_or.value()->Begin());
  FR_ASSERT_OK(a_or.value()->Replace(SetValIn("A", 0, 111), &ur));
  FR_ASSERT_OK(b.Begin());
  FR_ASSERT_OK(b.Replace(SetValIn("B", 0, 222), &ur));

  // A's connection dies while B's transaction is mid-flight; B's commit
  // races the cleanup.
  a_or.value()->Abandon();
  FR_ASSERT_OK(b.Commit());

  ASSERT_TRUE(WaitFor([&] {
    return served.server->metrics().sessions_active.load() == 1;
  }));

  // B's update survived A's abort (the cleanup did not release or roll
  // back B's locks), and A's set is immediately writable by a newcomer.
  ReadQuery query;
  query.set_name = "B";
  query.projections = {"val"};
  ReadResult result;
  FR_ASSERT_OK(b.Retrieve(query, &result));
  ASSERT_EQ(result.rows.size(), 2u);
  int32_t max_val = 0;
  for (const auto& row : result.rows) {
    max_val = std::max(max_val, row[0].as_int32());
  }
  EXPECT_EQ(max_val, 222);

  FR_ASSERT_OK(b.Replace(SetValIn("A", 0, 333), &ur));
  EXPECT_EQ(ur.objects_updated, 1u);
  served.server->Stop();
  ExpectCleanIntegrity(served.db.get());
}

}  // namespace
}  // namespace fieldrep
