// Telemetry suite: the IoStats X-macro round-trip, MetricsRegistry
// instruments and expositions, query tracing (stage deltas telescoping to
// the query total), the workload profiler, the slow-query log, and a
// concurrency hammer (picked up by the CI tsan lane via the "Concurrency"
// test-name filter) asserting counters stay monotone under concurrent
// readers and a propagating writer.

#include <atomic>
#include <map>
#include <string>
#include <thread>
#include <vector>

#include "common/json.h"
#include "common/strings.h"
#include "gtest/gtest.h"
#include "storage/io_stats.h"
#include "telemetry/metrics.h"
#include "telemetry/query_trace.h"
#include "telemetry/workload_profiler.h"
#include "test_util.h"

namespace fieldrep {
namespace {

using ::fieldrep::testing::EmployeeFixture;
using ::fieldrep::testing::OpenEmployeeDatabase;
using ::fieldrep::testing::PopulateEmployees;

// ---------------------------------------------------------------------------
// IoStats X-macro
// ---------------------------------------------------------------------------

// Mutates EVERY field (via the X-macro, so a newly added field cannot be
// missed) and round-trips through the generated operations.
TEST(IoStatsTest, XMacroMutateEveryFieldRoundTrip) {
  IoStats a;
  uint64_t next = 1;
#define FIELDREP_TEST_SET(field) a.field = next++;
  FIELDREP_IO_STATS_FIELDS(FIELDREP_TEST_SET)
#undef FIELDREP_TEST_SET

  // Every field got a distinct non-zero value.
#define FIELDREP_TEST_NONZERO(field) EXPECT_GT(a.field, 0u);
  FIELDREP_IO_STATS_FIELDS(FIELDREP_TEST_NONZERO)
#undef FIELDREP_TEST_NONZERO

  // operator+= then operator- must round-trip exactly, field by field.
  IoStats b = a;
  b += a;
  IoStats diff = b - a;
  EXPECT_TRUE(diff == a);
#define FIELDREP_TEST_DOUBLED(field) EXPECT_EQ(b.field, 2 * a.field);
  FIELDREP_IO_STATS_FIELDS(FIELDREP_TEST_DOUBLED)
#undef FIELDREP_TEST_DOUBLED

  // ToString must mention every field by name.
  const std::string text = a.ToString();
#define FIELDREP_TEST_NAMED(field) \
  EXPECT_NE(text.find(#field), std::string::npos) << text;
  FIELDREP_IO_STATS_FIELDS(FIELDREP_TEST_NAMED)
#undef FIELDREP_TEST_NAMED

  // Atomic counterpart: accumulate, snapshot, reset.
  AtomicIoStats atomics;
#define FIELDREP_TEST_ADD(field) \
  atomics.field.fetch_add(a.field, std::memory_order_relaxed);
  FIELDREP_IO_STATS_FIELDS(FIELDREP_TEST_ADD)
#undef FIELDREP_TEST_ADD
  EXPECT_TRUE(atomics.Snapshot() == a);
  atomics.Reset();
  EXPECT_TRUE(atomics.Snapshot() == IoStats());

  EXPECT_EQ(a.TotalIo(), a.disk_reads + a.disk_writes);
  a.Reset();
  EXPECT_TRUE(a == IoStats());
}

// ---------------------------------------------------------------------------
// MetricsRegistry
// ---------------------------------------------------------------------------

TEST(MetricsRegistryTest, InstrumentsRenderInPrometheusFormat) {
  MetricsRegistry registry;
  Counter* requests = registry.AddCounter("test_requests_total", "Requests.");
  Gauge* depth = registry.AddGauge("test_queue_depth", "Queue depth.");
  Histogram* latency = registry.AddHistogram("test_latency_ns", "Latency.",
                                             {100, 1000});
  requests->Increment(3);
  depth->Set(7);
  latency->Observe(50);    // bucket le=100
  latency->Observe(500);   // bucket le=1000
  latency->Observe(5000);  // +Inf

  const std::string prom = registry.RenderPrometheus();
  EXPECT_NE(prom.find("# HELP test_requests_total Requests."),
            std::string::npos);
  EXPECT_NE(prom.find("# TYPE test_requests_total counter"),
            std::string::npos);
  EXPECT_NE(prom.find("test_requests_total 3"), std::string::npos);
  EXPECT_NE(prom.find("# TYPE test_queue_depth gauge"), std::string::npos);
  EXPECT_NE(prom.find("test_queue_depth 7"), std::string::npos);
  // Histogram buckets are cumulative in the exposition.
  EXPECT_NE(prom.find("test_latency_ns_bucket{le=\"100\"} 1"),
            std::string::npos);
  EXPECT_NE(prom.find("test_latency_ns_bucket{le=\"1000\"} 2"),
            std::string::npos);
  EXPECT_NE(prom.find("test_latency_ns_bucket{le=\"+Inf\"} 3"),
            std::string::npos);
  EXPECT_NE(prom.find("test_latency_ns_sum 5550"), std::string::npos);
  EXPECT_NE(prom.find("test_latency_ns_count 3"), std::string::npos);
}

TEST(MetricsRegistryTest, CallbacksAndCollectorsSampleAtRenderTime) {
  MetricsRegistry registry;
  std::atomic<uint64_t> live{10};
  registry.AddCallback("test_live_value", "Live.", MetricKind::kCounter, "",
                       [&live] { return static_cast<double>(live.load()); });
  registry.AddCollector([](std::vector<MetricSample>* out) {
    MetricSample s;
    s.name = "test_labeled_total";
    s.labels = "shard=\"3\"";
    s.kind = MetricKind::kCounter;
    s.value = 42;
    out->push_back(s);
  });

  std::string prom = registry.RenderPrometheus();
  EXPECT_NE(prom.find("test_live_value 10"), std::string::npos);
  EXPECT_NE(prom.find("test_labeled_total{shard=\"3\"} 42"),
            std::string::npos);
  live.store(11);
  prom = registry.RenderPrometheus();
  EXPECT_NE(prom.find("test_live_value 11"), std::string::npos);
}

TEST(MetricsRegistryTest, JsonRoundTripsThroughParseSamplesJson) {
  MetricsRegistry registry;
  registry.AddCounter("test_a_total", "A.")->Increment(5);
  registry.AddGauge("test_b", "B.", "kind=\"x\"")->Set(-3);
  registry.AddHistogram("test_h_ns", "H.", {10, 100})->Observe(42);

  const std::string json = registry.RenderJson();
  std::vector<MetricSample> parsed;
  FR_ASSERT_OK(MetricsRegistry::ParseSamplesJson(json, &parsed));
  ASSERT_EQ(parsed.size(), 3u);
  // Re-rendering the parsed samples must reproduce the document exactly —
  // the property `fieldrep_stats --snapshot` relies on.
  EXPECT_EQ(MetricsRegistry::SamplesToJson(parsed), json);
  // And the Prometheus rendering of parsed samples matches the live one.
  EXPECT_EQ(MetricsRegistry::SamplesToPrometheus(parsed),
            registry.RenderPrometheus());
}

// ---------------------------------------------------------------------------
// Query tracing
// ---------------------------------------------------------------------------

TEST(QueryTraceTest, ReadStageDeltasSumToQueryTotal) {
  auto db = OpenEmployeeDatabase();
  PopulateEmployees(db.get(), 2, 4, 200);
  FR_ASSERT_OK(db->Replicate("Emp1.dept.name", {}));
  FR_ASSERT_OK(db->ColdStart());

  ReadQuery query;
  query.set_name = "Emp1";
  query.projections = {"name", "salary", "dept.name"};
  ReadResult result;
  QueryTrace trace;
  const IoStats before = db->io_stats();
  FR_ASSERT_OK(db->Retrieve(query, &result, &trace));
  const IoStats pool_delta = db->io_stats() - before;

  EXPECT_EQ(trace.kind, QueryTrace::Kind::kRead);
  EXPECT_EQ(trace.set_name, "Emp1");
  EXPECT_EQ(trace.rows, result.rows.size());
  EXPECT_GT(trace.wall_ns, 0u);
  ASSERT_EQ(trace.strategies.size(), query.projections.size());
  EXPECT_EQ(trace.strategies[0], "attr");
  EXPECT_EQ(trace.strategies[2], "replica-inplace");
  ASSERT_FALSE(trace.stages.empty());

  // Acceptance criterion: the telescoping per-stage IoStats deltas sum
  // exactly to the query's own pool-level delta.
  IoStats stage_sum;
  uint64_t stage_wall = 0;
  for (const QueryStageTrace& stage : trace.stages) {
    stage_sum += stage.io;
    stage_wall += stage.wall_ns;
  }
  EXPECT_TRUE(stage_sum == trace.io) << "stages: " << stage_sum.ToString()
                                     << "\nquery:  " << trace.io.ToString();
  EXPECT_TRUE(trace.io == pool_delta) << "trace: " << trace.io.ToString()
                                      << "\npool:  " << pool_delta.ToString();
  EXPECT_LE(stage_wall, trace.wall_ns);
  // A cold-started query on a replicated projection does real I/O.
  EXPECT_GT(trace.io.fetches, 0u);
  EXPECT_GT(trace.io.disk_reads, 0u);

  // Renderings exist and carry the stage names.
  const std::string text = trace.ToString();
  for (const QueryStageTrace& stage : trace.stages) {
    EXPECT_NE(text.find(stage.name), std::string::npos) << text;
  }
  EXPECT_FALSE(trace.Summary().empty());
}

TEST(QueryTraceTest, UpdateTraceBracketsPlanCollectUpdate) {
  auto db = OpenEmployeeDatabase();
  PopulateEmployees(db.get(), 2, 4, 50);
  FR_ASSERT_OK(db->Replicate("Emp1.dept.name", {}));

  UpdateQuery update;
  update.set_name = "Dept";
  update.assignments = {{"name", Value(std::string("renamed"))}};
  UpdateResult result;
  QueryTrace trace;
  FR_ASSERT_OK(db->Replace(update, &result, &trace));

  EXPECT_EQ(trace.kind, QueryTrace::Kind::kUpdate);
  EXPECT_EQ(trace.rows, result.objects_updated);
  EXPECT_EQ(result.objects_updated, 4u);
  ASSERT_EQ(trace.stages.size(), 3u);
  EXPECT_EQ(trace.stages[0].name, "plan");
  EXPECT_EQ(trace.stages[1].name, "collect");
  EXPECT_EQ(trace.stages[2].name, "update");
  IoStats stage_sum;
  for (const QueryStageTrace& stage : trace.stages) stage_sum += stage.io;
  EXPECT_TRUE(stage_sum == trace.io);
}

TEST(QueryTraceTest, ParallelReadTraceMatchesPoolDelta) {
  Database::Options options;
  options.worker_threads = 4;
  auto db_or = Database::Open(options);
  FR_ASSERT_OK(db_or.status());
  // Rebuild the employee schema in the parallel database.
  auto db = std::move(db_or).value();
  FR_ASSERT_OK(db->DefineType(TypeDescriptor(
      "DEPT", {CharAttr("name", 20), Int32Attr("budget")})));
  FR_ASSERT_OK(db->DefineType(TypeDescriptor(
      "EMP", {CharAttr("name", 20), Int32Attr("salary"),
              RefAttr("dept", "DEPT")})));
  FR_ASSERT_OK(db->CreateSet("Dept", "DEPT"));
  FR_ASSERT_OK(db->CreateSet("Emp1", "EMP"));
  std::vector<Oid> depts;
  for (int i = 0; i < 8; ++i) {
    Object dept(0, {Value(StringPrintf("dept%d", i)), Value(int32_t{i})});
    Oid oid;
    FR_ASSERT_OK(db->Insert("Dept", dept, &oid));
    depts.push_back(oid);
  }
  for (int i = 0; i < 400; ++i) {
    Object emp(0, {Value(StringPrintf("emp%d", i)), Value(int32_t{i}),
                   Value(depts[i % depts.size()])});
    Oid oid;
    FR_ASSERT_OK(db->Insert("Emp1", emp, &oid));
  }
  FR_ASSERT_OK(db->ColdStart());

  ReadQuery query;
  query.set_name = "Emp1";
  query.projections = {"name", "dept.name"};
  ReadResult result;
  QueryTrace trace;
  const IoStats before = db->io_stats();
  FR_ASSERT_OK(db->Retrieve(query, &result, &trace));
  const IoStats pool_delta = db->io_stats() - before;

  EXPECT_GT(trace.parallel_ranges, 1u);
  IoStats stage_sum;
  for (const QueryStageTrace& stage : trace.stages) stage_sum += stage.io;
  EXPECT_TRUE(stage_sum == trace.io);
  EXPECT_TRUE(trace.io == pool_delta);
  EXPECT_EQ(result.rows.size(), 400u);
}

// ---------------------------------------------------------------------------
// Slow-query log
// ---------------------------------------------------------------------------

TEST(SlowQueryLogTest, HookReceivesTracesPastTheThreshold) {
  Database::Options options;
  options.slow_query_ns = 1;  // every query is "slow"
  std::vector<QueryTrace> slow;
  options.slow_query_hook = [&slow](const QueryTrace& t) {
    slow.push_back(t);
  };
  auto db_or = Database::Open(options);
  FR_ASSERT_OK(db_or.status());
  auto db = std::move(db_or).value();
  FR_ASSERT_OK(db->DefineType(TypeDescriptor("T", {Int32Attr("x")})));
  FR_ASSERT_OK(db->CreateSet("Set", "T"));
  Oid oid;
  FR_ASSERT_OK(db->Insert("Set", Object(0, {Value(int32_t{1})}), &oid));

  ReadQuery query;
  query.set_name = "Set";
  query.projections = {"x"};
  ReadResult result;
  FR_ASSERT_OK(db->Retrieve(query, &result));
  ASSERT_EQ(slow.size(), 1u);
  EXPECT_GT(slow[0].wall_ns, 0u);
  EXPECT_EQ(slow[0].set_name, "Set");
  EXPECT_EQ(slow[0].rows, 1u);
  EXPECT_FALSE(slow[0].Summary().empty());

  // Threshold respected: a database with a huge threshold never logs.
  Database::Options quiet_options;
  quiet_options.slow_query_ns = UINT64_MAX;
  std::vector<QueryTrace> never;
  quiet_options.slow_query_hook = [&never](const QueryTrace& t) {
    never.push_back(t);
  };
  auto quiet_or = Database::Open(quiet_options);
  FR_ASSERT_OK(quiet_or.status());
  auto quiet = std::move(quiet_or).value();
  FR_ASSERT_OK(quiet->DefineType(TypeDescriptor("T", {Int32Attr("x")})));
  FR_ASSERT_OK(quiet->CreateSet("Set", "T"));
  FR_ASSERT_OK(quiet->Insert("Set", Object(0, {Value(int32_t{1})}), &oid));
  FR_ASSERT_OK(quiet->Retrieve(query, &result));
  EXPECT_TRUE(never.empty());
}

// ---------------------------------------------------------------------------
// Workload profiler + Database::Stats()
// ---------------------------------------------------------------------------

TEST(WorkloadProfilerTest, RecordsPathReadsUpdatesAndPropagations) {
  auto db = OpenEmployeeDatabase();
  EmployeeFixture fixture = PopulateEmployees(db.get(), 2, 4, 100);
  FR_ASSERT_OK(db->Replicate("Emp1.dept.name", {}));

  ReadQuery query;
  query.set_name = "Emp1";
  query.projections = {"name", "dept.name"};
  ReadResult result;
  FR_ASSERT_OK(db->Retrieve(query, &result));

  WorkloadProfile profile = db->Stats();
  ASSERT_EQ(profile.paths.count("Emp1.dept.name"), 1u);
  const PathActivity& path = profile.paths.at("Emp1.dept.name");
  EXPECT_EQ(path.read_queries, 1u);
  EXPECT_EQ(path.derefs, 100u);
  EXPECT_EQ(path.replica_rows, 100u);
  EXPECT_EQ(path.join_rows, 0u);

  // A terminal update propagates: field and path activity both move.
  FR_ASSERT_OK(db->Update("Dept", fixture.depts[0], "name",
                          Value(std::string("renamed"))));
  profile = db->Stats();
  ASSERT_EQ(profile.fields.count("Dept.name"), 1u);
  EXPECT_EQ(profile.fields.at("Dept.name").updates, 1u);
  EXPECT_EQ(profile.fields.at("Dept.name").propagations, 1u);
  EXPECT_EQ(profile.paths.at("Emp1.dept.name").propagations, 1u);
  // 100 employees over 4 departments: 25 head replicas rewritten.
  EXPECT_EQ(profile.paths.at("Emp1.dept.name").heads_touched, 25u);

  // An update to an unreplicated field does not propagate.
  FR_ASSERT_OK(db->Update("Dept", fixture.depts[1], "budget",
                          Value(int32_t{777})));
  profile = db->Stats();
  EXPECT_EQ(profile.fields.at("Dept.budget").updates, 1u);
  EXPECT_EQ(profile.fields.at("Dept.budget").propagations, 0u);

  // The profile serializes and shows up in the registry's exposition.
  const std::string json = profile.ToJson().Serialize(2);
  EXPECT_NE(json.find("Emp1.dept.name"), std::string::npos);
  const std::string prom = db->MetricsPrometheus();
  EXPECT_NE(prom.find("fieldrep_path_derefs_total{path=\"Emp1.dept.name\"}"),
            std::string::npos);
  EXPECT_NE(prom.find("fieldrep_field_updates_total{field=\"Dept.name\"}"),
            std::string::npos);
}

TEST(WorkloadProfilerTest, DisabledTelemetryYieldsEmptyStats) {
  Database::Options options;
  options.enable_telemetry = false;
  auto db_or = Database::Open(options);
  FR_ASSERT_OK(db_or.status());
  auto db = std::move(db_or).value();
  EXPECT_EQ(db->metrics(), nullptr);
  EXPECT_EQ(db->profiler(), nullptr);
  EXPECT_TRUE(db->Stats().paths.empty());
  EXPECT_TRUE(db->MetricsPrometheus().empty());
  EXPECT_TRUE(db->MetricsJson().empty());
}

// ---------------------------------------------------------------------------
// Concurrency (tsan lane: name matches the "Concurrency" ctest filter)
// ---------------------------------------------------------------------------

TEST(TelemetryConcurrencyTest, CountersMonotoneUnderReadersAndWriter) {
  auto db = OpenEmployeeDatabase();
  EmployeeFixture fixture = PopulateEmployees(db.get(), 2, 8, 200);
  FR_ASSERT_OK(db->Replicate("Emp1.dept.name", {}));

  constexpr int kReaders = 4;
  constexpr int kQueriesPerReader = 30;
  constexpr int kWriterUpdates = 60;
  std::atomic<bool> failed{false};

  // Readers hammer traced queries. Stage deltas telescope to the pool
  // delta at the *last stage boundary*; the query total is stamped at
  // Finish(), so a concurrent writer's I/O landing in the tail gap can
  // only make the total larger — per-field containment, not equality
  // (the serial tests assert the exact equality on quiesced queries).
  std::vector<std::thread> readers;
  readers.reserve(kReaders);
  for (int r = 0; r < kReaders; ++r) {
    readers.emplace_back([&db, &failed] {
      for (int q = 0; q < kQueriesPerReader; ++q) {
        ReadQuery query;
        query.set_name = "Emp1";
        query.projections = {"name", "dept.name"};
        ReadResult result;
        QueryTrace trace;
        if (!db->Retrieve(query, &result, &trace).ok() ||
            result.rows.size() != 200) {
          failed.store(true);
          return;
        }
        IoStats stage_sum;
        for (const QueryStageTrace& stage : trace.stages) {
          stage_sum += stage.io;
        }
#define FIELDREP_TEST_CONTAINED(field) \
  if (stage_sum.field > trace.io.field) failed.store(true);
        FIELDREP_IO_STATS_FIELDS(FIELDREP_TEST_CONTAINED)
#undef FIELDREP_TEST_CONTAINED
      }
    });
  }
  // One propagating writer: renames departments, fanning updates out to
  // the in-place replicas on Emp1.
  std::thread writer([&db, &fixture, &failed] {
    for (int u = 0; u < kWriterUpdates; ++u) {
      const Oid& dept = fixture.depts[u % fixture.depts.size()];
      if (!db->Update("Dept", dept, "name",
                      Value(StringPrintf("dept-%d", u)))
               .ok()) {
        failed.store(true);
        return;
      }
    }
  });

  // Main thread samples the registry while the hammer runs: every counter
  // must be monotone between consecutive snapshots.
  std::map<std::string, double> last;
  for (int sample = 0; sample < 50; ++sample) {
    std::vector<MetricSample> samples = db->metrics()->Collect();
    for (const MetricSample& s : samples) {
      if (s.kind != MetricKind::kCounter) continue;
      const std::string key = s.name + "{" + s.labels + "}";
      auto it = last.find(key);
      if (it != last.end()) {
        EXPECT_GE(s.value, it->second) << key;
        it->second = s.value;
      } else {
        last.emplace(key, s.value);
      }
    }
    std::this_thread::yield();
  }

  for (std::thread& t : readers) t.join();
  writer.join();
  ASSERT_FALSE(failed.load());

  // Quiesced: the profiler saw all the work.
  WorkloadProfile profile = db->Stats();
  EXPECT_EQ(profile.paths.at("Emp1.dept.name").read_queries,
            static_cast<uint64_t>(kReaders) * kQueriesPerReader);
  EXPECT_EQ(profile.fields.at("Dept.name").updates,
            static_cast<uint64_t>(kWriterUpdates));
  // And the final exposition renders cleanly.
  EXPECT_FALSE(db->MetricsPrometheus().empty());
  std::vector<MetricSample> parsed;
  FR_ASSERT_OK(MetricsRegistry::ParseSamplesJson(db->MetricsJson(), &parsed));
  EXPECT_FALSE(parsed.empty());
}

}  // namespace
}  // namespace fieldrep
