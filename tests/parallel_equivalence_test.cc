// The parallel read executor must be observationally identical to the
// serial engine: same result rows in the same order, same access kinds,
// and byte-identical logical I/O counters (fetches / hits / disk_reads)
// for every worker count, with read-ahead on or off. Covers all three
// replication strategies so every stage of the fan-out is exercised:
// in-place answers from the head pages (stage 0), separate fetches
// replica records from S' (stage 1), and no-replication falls back to
// level-by-level functional joins (stage 2).

#include <cstdint>
#include <vector>

#include "bench_util.h"
#include "gtest/gtest.h"
#include "test_util.h"

namespace fieldrep {
namespace {

using ::fieldrep::bench::BuildModelWorkload;
using ::fieldrep::bench::ModelWorkload;
using ::fieldrep::bench::WorkloadOptions;

struct RunOutcome {
  ReadResult result;
  IoStats stats;
};

RunOutcome RunConfig(Database* db, const ReadQuery& query, size_t threads,
                     uint32_t window) {
  RunOutcome out;
  FR_EXPECT_OK(db->SetWorkerThreads(threads));
  db->pool().set_read_ahead_window(window);
  FR_EXPECT_OK(db->ColdStart());
  FR_EXPECT_OK(db->Retrieve(query, &out.result));
  out.stats = db->io_stats();
  return out;
}

void ExpectSameOutcome(const RunOutcome& base, const RunOutcome& run,
                       size_t threads, uint32_t window) {
  SCOPED_TRACE(::testing::Message()
               << "threads=" << threads << " window=" << window);
  ASSERT_EQ(base.result.rows.size(), run.result.rows.size());
  for (size_t i = 0; i < base.result.rows.size(); ++i) {
    ASSERT_EQ(base.result.rows[i].size(), run.result.rows[i].size());
    for (size_t c = 0; c < base.result.rows[i].size(); ++c) {
      EXPECT_EQ(base.result.rows[i][c], run.result.rows[i][c])
          << "row " << i << " column " << c;
    }
  }
  EXPECT_EQ(base.result.access, run.result.access);
  EXPECT_EQ(base.result.used_index, run.result.used_index);
  EXPECT_EQ(base.result.heads_scanned, run.result.heads_scanned);
  // The paper's cost unit: the parallel plan may reorder page touches but
  // must never change how many there are or how they classify.
  EXPECT_EQ(base.stats.fetches, run.stats.fetches);
  EXPECT_EQ(base.stats.hits, run.stats.hits);
  EXPECT_EQ(base.stats.disk_reads, run.stats.disk_reads);
  EXPECT_EQ(base.stats.disk_writes, run.stats.disk_writes);
}

void ExpectParallelEquivalence(const WorkloadOptions& options,
                               const ReadQuery& query) {
  auto workload_or = BuildModelWorkload(options);
  ASSERT_TRUE(workload_or.ok()) << workload_or.status().ToString();
  ModelWorkload workload = std::move(workload_or).value();
  Database* db = workload.db.get();

  RunOutcome base = RunConfig(db, query, /*threads=*/1, /*window=*/16);
  ASSERT_FALSE(::testing::Test::HasFailure());
  ASSERT_GT(base.result.rows.size(), 0u);
  for (size_t threads : {size_t{1}, size_t{2}, size_t{8}}) {
    for (uint32_t window : {uint32_t{16}, uint32_t{0}}) {
      RunOutcome run = RunConfig(db, query, threads, window);
      ExpectSameOutcome(base, run, threads, window);
    }
  }
  FR_EXPECT_OK(db->SetWorkerThreads(1));
  EXPECT_EQ(db->pool().total_pins(), 0u);
}

ReadQuery RangeQuery(uint32_t r_count) {
  // An indexed range over half of R, projecting the replicated path.
  // (std::string{} move-assignments sidestep gcc 12's -Wrestrict false
  // positive on const char* assigns in this inline context, PR 105651.)
  ReadQuery query;
  query.set_name = std::string{"R"};
  query.projections = {"field_r", "sref.repfield"};
  query.predicate =
      Predicate::Between("field_r", Value(int32_t{0}),
                         Value(static_cast<int32_t>(r_count / 2)));
  return query;
}

TEST(ParallelEquivalenceTest, InPlaceIndexedRange) {
  WorkloadOptions options;
  options.s_count = 300;
  options.f = 2;
  options.strategy = ModelStrategy::kInPlace;
  ExpectParallelEquivalence(options, RangeQuery(options.s_count * options.f));
}

TEST(ParallelEquivalenceTest, SeparateIndexedRange) {
  WorkloadOptions options;
  options.s_count = 300;
  options.f = 2;
  options.strategy = ModelStrategy::kSeparate;
  ExpectParallelEquivalence(options, RangeQuery(options.s_count * options.f));
}

TEST(ParallelEquivalenceTest, NoReplicationFunctionalJoin) {
  WorkloadOptions options;
  options.s_count = 300;
  options.f = 2;
  options.strategy = ModelStrategy::kNoReplication;
  ExpectParallelEquivalence(options, RangeQuery(options.s_count * options.f));
}

TEST(ParallelEquivalenceTest, FullScanWithoutPredicate) {
  WorkloadOptions options;
  options.s_count = 300;
  options.f = 2;
  options.strategy = ModelStrategy::kInPlace;
  ReadQuery query;
  query.set_name = std::string{"R"};
  query.projections = {"field_r", "sref.repfield"};
  ExpectParallelEquivalence(options, query);
}

TEST(ParallelEquivalenceTest, ClusteredJoinQuery) {
  WorkloadOptions options;
  options.s_count = 300;
  options.f = 2;
  options.clustered = true;
  options.strategy = ModelStrategy::kNoReplication;
  ExpectParallelEquivalence(options, RangeQuery(options.s_count * options.f));
}

}  // namespace
}  // namespace fieldrep
