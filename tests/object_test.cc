#include "common/bytes.h"
#include "common/random.h"
#include "gtest/gtest.h"
#include "objects/object.h"
#include "objects/object_set.h"
#include "objects/value.h"
#include "storage/memory_device.h"
#include "test_util.h"

namespace fieldrep {
namespace {

TypeDescriptor SampleType() {
  return TypeDescriptor("SAMPLE",
                        {Int32Attr("i"), Int64Attr("l"), DoubleAttr("d"),
                         CharAttr("c", 12), StringAttr("s"),
                         RefAttr("r", "SAMPLE")});
}

// --- Value -------------------------------------------------------------------

TEST(ValueTest, KindPredicates) {
  EXPECT_TRUE(Value::Null().is_null());
  EXPECT_TRUE(Value(int32_t{1}).is_int32());
  EXPECT_TRUE(Value(int64_t{1}).is_int64());
  EXPECT_TRUE(Value(2.5).is_double());
  EXPECT_TRUE(Value("x").is_string());
  EXPECT_TRUE(Value(Oid(1, 2, 3)).is_ref());
}

TEST(ValueTest, AsIntegerWidens) {
  auto v = Value(int32_t{-7}).AsInteger();
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(*v, -7);
  EXPECT_FALSE(Value("x").AsInteger().ok());
}

TEST(ValueTest, MatchesType) {
  EXPECT_TRUE(Value(int32_t{5}).MatchesType(FieldType::kInt64));
  EXPECT_TRUE(Value(int64_t{5}).MatchesType(FieldType::kInt32));
  EXPECT_TRUE(Value(int32_t{5}).MatchesType(FieldType::kDouble));
  EXPECT_FALSE(Value(2.5).MatchesType(FieldType::kInt32));
  EXPECT_TRUE(Value("x").MatchesType(FieldType::kChar));
  EXPECT_FALSE(Value("x").MatchesType(FieldType::kRef));
  EXPECT_TRUE(Value::Null().MatchesType(FieldType::kRef));
}

TEST(ValueTest, CoerceCharPadsAndTruncates) {
  AttributeDescriptor attr = CharAttr("c", 4);
  auto padded = Value("ab").CoerceTo(attr);
  ASSERT_TRUE(padded.ok());
  EXPECT_EQ(padded->as_string(), std::string("ab\0\0", 4));
  auto truncated = Value("abcdef").CoerceTo(attr);
  ASSERT_TRUE(truncated.ok());
  EXPECT_EQ(truncated->as_string(), "abcd");
}

TEST(ValueTest, CoerceIntOverflowFails) {
  AttributeDescriptor attr = Int32Attr("i");
  EXPECT_FALSE(Value(int64_t{1} << 40).CoerceTo(attr).ok());
  auto ok = Value(int64_t{77}).CoerceTo(attr);
  ASSERT_TRUE(ok.ok());
  EXPECT_EQ(ok->as_int32(), 77);
}

TEST(ValueTest, ToStringStripsCharPadding) {
  EXPECT_EQ(Value(std::string("hi\0\0", 4)).ToString(), "\"hi\"");
  EXPECT_EQ(Value::Null().ToString(), "null");
}

TEST(ValueTest, TaggedRoundTrip) {
  std::vector<Value> values = {Value::Null(),  Value(int32_t{-9}),
                               Value(int64_t{1} << 50), Value(1.25),
                               Value("text"),  Value(Oid(2, 9, 1))};
  std::string buf;
  for (const Value& v : values) EncodeTaggedValue(v, &buf);
  ByteReader reader(buf);
  for (const Value& expected : values) {
    Value v;
    FR_ASSERT_OK(DecodeTaggedValue(&reader, &v));
    EXPECT_EQ(v, expected);
  }
  EXPECT_EQ(reader.remaining(), 0u);
}

// --- Object serialization -------------------------------------------------------

class ObjectTest : public ::testing::Test {
 protected:
  ObjectTest() : type_(SampleType()) { type_.set_type_tag(9); }
  TypeDescriptor type_;
};

TEST_F(ObjectTest, SerializeRoundTripPlain) {
  Object object(9, {Value(int32_t{1}), Value(int64_t{2}), Value(3.5),
                    Value("abc"), Value("variable"), Value(Oid(1, 2, 3))});
  std::string payload;
  FR_ASSERT_OK(object.Serialize(type_, &payload));
  Object decoded;
  FR_ASSERT_OK(decoded.Deserialize(type_, payload));
  EXPECT_EQ(decoded.field(0), Value(int32_t{1}));
  EXPECT_EQ(decoded.field(1), Value(int64_t{2}));
  EXPECT_EQ(decoded.field(2), Value(3.5));
  // char[12] comes back padded.
  EXPECT_EQ(decoded.field(3).as_string().size(), 12u);
  EXPECT_EQ(decoded.field(4), Value("variable"));
  EXPECT_EQ(decoded.field(5), Value(Oid(1, 2, 3)));
}

TEST_F(ObjectTest, FixedSizeMatchesComputed) {
  // Header 16 + i(4) + l(8) + d(8) + c(12) + s(4 prefix) + r(8) = 60.
  EXPECT_EQ(Object::FixedSerializedSize(type_), 60u);
  Object object(9, {Value(int32_t{1}), Value(int64_t{2}), Value(3.5),
                    Value("abc"), Value(""), Value::Null()});
  std::string payload;
  FR_ASSERT_OK(object.Serialize(type_, &payload));
  EXPECT_EQ(payload.size(), 60u);
}

TEST_F(ObjectTest, HiddenSectionRoundTrip) {
  Object object(9, {Value(int32_t{1}), Value(int64_t{2}), Value(3.5),
                    Value("abc"), Value("s"), Value::Null()});
  LinkRef link;
  link.link_id = 3;
  link.link_oid = Oid(5, 6, 7);
  object.SetLinkRef(link);
  LinkRef inlined;
  inlined.link_id = 4;
  inlined.inlined = true;
  inlined.inline_oids = {Oid(1, 1, 1), Oid(1, 1, 2)};
  object.SetLinkRef(inlined);
  object.SetReplicaValues(11, {Value("copy"), Value(int32_t{5})});
  ReplicaRefSlot slot;
  slot.path_id = 12;
  slot.replica_oid = Oid(8, 9, 10);
  slot.refcount = 42;
  object.SetReplicaRef(slot);

  std::string payload;
  FR_ASSERT_OK(object.Serialize(type_, &payload));
  Object decoded;
  FR_ASSERT_OK(decoded.Deserialize(type_, payload));
  // The stored char[12] field comes back padded; normalize before comparing.
  Object expected = object;
  auto padded = expected.field(3).CoerceTo(type_.attribute(3));
  ASSERT_TRUE(padded.ok());
  expected.set_field(3, *padded);
  EXPECT_EQ(decoded, expected);
  ASSERT_NE(decoded.FindLinkRef(3), nullptr);
  EXPECT_EQ(decoded.FindLinkRef(3)->link_oid, Oid(5, 6, 7));
  ASSERT_NE(decoded.FindLinkRef(4), nullptr);
  EXPECT_TRUE(decoded.FindLinkRef(4)->inlined);
  ASSERT_NE(decoded.FindReplicaValues(11), nullptr);
  EXPECT_EQ(decoded.FindReplicaValues(11)->values[0], Value("copy"));
  ASSERT_NE(decoded.FindReplicaRef(12), nullptr);
  EXPECT_EQ(decoded.FindReplicaRef(12)->refcount, 42u);
}

TEST_F(ObjectTest, HiddenAccessorsMutate) {
  Object object;
  object.SetReplicaValues(1, {Value(int32_t{1})});
  object.SetReplicaValues(1, {Value(int32_t{2})});
  ASSERT_EQ(object.replica_values().size(), 1u);
  EXPECT_EQ(object.FindReplicaValues(1)->values[0], Value(int32_t{2}));
  EXPECT_TRUE(object.RemoveReplicaValues(1));
  EXPECT_FALSE(object.RemoveReplicaValues(1));
  EXPECT_FALSE(object.HasHiddenState());
}

TEST_F(ObjectTest, DeserializeRejectsWrongTag) {
  Object object(9, {Value(int32_t{1}), Value(int64_t{2}), Value(3.5),
                    Value("abc"), Value("s"), Value::Null()});
  std::string payload;
  FR_ASSERT_OK(object.Serialize(type_, &payload));
  TypeDescriptor other = SampleType();
  other.set_type_tag(10);
  Object decoded;
  EXPECT_TRUE(decoded.Deserialize(other, payload).IsCorruption());
}

TEST_F(ObjectTest, DeserializeRejectsTruncation) {
  Object object(9, {Value(int32_t{1}), Value(int64_t{2}), Value(3.5),
                    Value("abc"), Value("s"), Value::Null()});
  std::string payload;
  FR_ASSERT_OK(object.Serialize(type_, &payload));
  for (size_t cut : {4u, 17u, 30u}) {
    Object decoded;
    EXPECT_FALSE(decoded.Deserialize(type_, payload.substr(0, cut)).ok());
  }
}

TEST(ObjectPropertyTest, RandomRoundTrips) {
  TypeDescriptor type = SampleType();
  type.set_type_tag(3);
  Random rng(404);
  for (int i = 0; i < 300; ++i) {
    Object object(3, {Value(static_cast<int32_t>(rng.Uniform(1000))),
                      Value(static_cast<int64_t>(rng.NextU64() >> 1)),
                      Value(rng.NextDouble()),
                      Value(std::string(rng.Uniform(12), 'k')),
                      Value(std::string(rng.Uniform(64), 'v')),
                      rng.Bernoulli(0.5)
                          ? Value(Oid(1, static_cast<PageId>(rng.Uniform(99)),
                                      static_cast<uint16_t>(rng.Uniform(9))))
                          : Value::Null()});
    if (rng.Bernoulli(0.5)) {
      object.SetReplicaValues(static_cast<uint16_t>(rng.Uniform(100)),
                              {Value(static_cast<int32_t>(i))});
    }
    if (rng.Bernoulli(0.5)) {
      LinkRef link;
      link.link_id = static_cast<uint8_t>(1 + rng.Uniform(250));
      link.inlined = rng.Bernoulli(0.5);
      if (link.inlined) {
        for (uint64_t j = 0; j < rng.Uniform(4); ++j) {
          link.inline_oids.push_back(Oid(1, 1, static_cast<uint16_t>(j)));
        }
      } else {
        link.link_oid = Oid(2, 3, 4);
      }
      object.SetLinkRef(link);
    }
    std::string payload;
    ASSERT_TRUE(object.Serialize(type, &payload).ok());
    Object decoded;
    ASSERT_TRUE(decoded.Deserialize(type, payload).ok());
    // char field padding is the only expected change; normalize it.
    Object expected = object;
    auto padded = expected.field(3).CoerceTo(type.attribute(3));
    ASSERT_TRUE(padded.ok());
    expected.set_field(3, *padded);
    ASSERT_EQ(decoded, expected);
  }
}

// --- ObjectSet ------------------------------------------------------------------

class ObjectSetTest : public ::testing::Test {
 protected:
  ObjectSetTest()
      : pool_(&device_, 64), type_(SampleType()) {
    type_.set_type_tag(1);
    set_ = std::make_unique<ObjectSet>(&pool_, 1, "Sample", &type_);
  }
  Object MakeObject(int32_t i) {
    return Object(1, {Value(i), Value(int64_t{i} * 10), Value(i * 0.5),
                      Value("c"), Value("s"), Value::Null()});
  }
  MemoryDevice device_;
  BufferPool pool_;
  TypeDescriptor type_;
  std::unique_ptr<ObjectSet> set_;
};

TEST_F(ObjectSetTest, InsertReadWriteDelete) {
  Oid oid;
  FR_ASSERT_OK(set_->Insert(MakeObject(7), &oid));
  Object object;
  FR_ASSERT_OK(set_->Read(oid, &object));
  EXPECT_EQ(object.field(0), Value(int32_t{7}));
  EXPECT_EQ(object.type_tag(), 1);
  object.set_field(0, Value(int32_t{8}));
  FR_ASSERT_OK(set_->Write(oid, object));
  FR_ASSERT_OK(set_->Read(oid, &object));
  EXPECT_EQ(object.field(0), Value(int32_t{8}));
  FR_ASSERT_OK(set_->Delete(oid));
  EXPECT_FALSE(set_->Read(oid, &object).ok());
}

TEST_F(ObjectSetTest, RejectsWrongArity) {
  Object bad(1, {Value(int32_t{1})});
  Oid oid;
  EXPECT_FALSE(set_->Insert(bad, &oid).ok());
}

TEST_F(ObjectSetTest, RejectsWrongKind) {
  Object bad = MakeObject(1);
  bad.set_field(0, Value("not an int"));
  Oid oid;
  EXPECT_FALSE(set_->Insert(bad, &oid).ok());
}

TEST_F(ObjectSetTest, ScanVisitsAll) {
  for (int i = 0; i < 100; ++i) {
    Oid oid;
    FR_ASSERT_OK(set_->Insert(MakeObject(i), &oid));
  }
  int32_t expected = 0;
  FR_ASSERT_OK(set_->Scan([&](const Oid&, const Object& object) {
    EXPECT_EQ(object.field(0), Value(expected++));
    return true;
  }));
  EXPECT_EQ(expected, 100);
  EXPECT_EQ(set_->size(), 100u);
}

TEST_F(ObjectSetTest, GetFieldCoerces) {
  Oid oid;
  FR_ASSERT_OK(set_->Insert(MakeObject(5), &oid));
  Object object;
  FR_ASSERT_OK(set_->Read(oid, &object));
  auto value = set_->GetField(object, 0);
  ASSERT_TRUE(value.ok());
  EXPECT_EQ(*value, Value(int32_t{5}));
  EXPECT_FALSE(set_->GetField(object, 99).ok());
}

}  // namespace
}  // namespace fieldrep
