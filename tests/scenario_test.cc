// Scenario tests lifted directly from the paper's figures: the multi-path
// link-sequence assignment of Section 4.1.4 / Figure 5, and stress runs
// under a tiny buffer pool (eviction pressure catches pin leaks and
// write-back bugs that large pools hide).

#include "common/bytes.h"
#include "common/random.h"
#include "gtest/gtest.h"
#include "test_util.h"

namespace fieldrep {
namespace {

using ::fieldrep::testing::EmployeeFixture;
using ::fieldrep::testing::ExpectCleanIntegrity;
using ::fieldrep::testing::OpenEmployeeDatabase;
using ::fieldrep::testing::PopulateEmployees;

/// The paper's Section 4.1.4 example, Figure 5:
///   replicate Emp1.dept.budget    link sequence = (1)
///   replicate Emp1.dept.name      link sequence = (1)
///   replicate Emp1.dept.org.name  link sequence = (1,2)
///   replicate Emp2.dept.org       link sequence = (3)
TEST(Figure5ScenarioTest, LinkSequencesMatchPaper) {
  auto db = OpenEmployeeDatabase();
  EmployeeFixture fixture = PopulateEmployees(db.get(), 2, 4, 12);
  // Populate Emp2 as well.
  std::vector<Oid> emp2;
  for (int k = 0; k < 6; ++k) {
    Object emp(0, {Value("z" + std::to_string(k)), Value(int32_t{30}),
                   Value(int32_t{100 * k}), Value(fixture.depts[k % 4])});
    Oid oid;
    FR_ASSERT_OK(db->Insert("Emp2", emp, &oid));
    emp2.push_back(oid);
  }

  FR_ASSERT_OK(db->Replicate("Emp1.dept.budget", {}));
  FR_ASSERT_OK(db->Replicate("Emp1.dept.name", {}));
  FR_ASSERT_OK(db->Replicate("Emp1.dept.org.name", {}));
  FR_ASSERT_OK(db->Replicate("Emp2.dept.org", {}));

  const auto* p1 = db->catalog().FindPathBySpec("Emp1.dept.budget");
  const auto* p2 = db->catalog().FindPathBySpec("Emp1.dept.name");
  const auto* p3 = db->catalog().FindPathBySpec("Emp1.dept.org.name");
  const auto* p4 = db->catalog().FindPathBySpec("Emp2.dept.org");
  // (1), (1), (1,2), (3): first three share link 1; the Emp2 path gets its
  // own.
  ASSERT_EQ(p1->link_sequence.size(), 1u);
  EXPECT_EQ(p2->link_sequence, p1->link_sequence);
  ASSERT_EQ(p3->link_sequence.size(), 2u);
  EXPECT_EQ(p3->link_sequence[0], p1->link_sequence[0]);
  EXPECT_NE(p3->link_sequence[1], p1->link_sequence[0]);
  ASSERT_EQ(p4->link_sequence.size(), 1u);
  EXPECT_NE(p4->link_sequence[0], p1->link_sequence[0]);
  EXPECT_NE(p4->link_sequence[0], p3->link_sequence[1]);

  // "The key thing to observe about Figure 5 is that only one link object
  // (L1) is used to propagate updates in the first three replication
  // paths" — a DEPT object referenced by both sets carries exactly two
  // link refs: the shared Emp1.dept link and the Emp2.dept link.
  Object dept;
  FR_ASSERT_OK(db->Get("Dept", fixture.depts[0], &dept));
  ASSERT_EQ(dept.link_refs().size(), 2u);

  // Updating D.budget, D.name, or D.org each propagates to the right
  // paths; consistency holds for all four simultaneously.
  FR_ASSERT_OK(
      db->Update("Dept", fixture.depts[1], "budget", Value(int32_t{99})));
  FR_ASSERT_OK(db->Update("Dept", fixture.depts[1], "name", Value("sales")));
  FR_ASSERT_OK(
      db->Update("Dept", fixture.depts[1], "org", Value(fixture.orgs[1])));
  for (uint16_t path_id : db->catalog().AllPathIds()) {
    FR_ASSERT_OK(db->replication().VerifyPathConsistency(path_id));
  }

  // Dropping the shared-prefix paths one by one keeps the survivors
  // working; dropping all three frees link 1 for reuse.
  FR_ASSERT_OK(db->DropReplication("Emp1.dept.budget"));
  FR_ASSERT_OK(db->DropReplication("Emp1.dept.org.name"));
  FR_ASSERT_OK(
      db->Update("Dept", fixture.depts[2], "name", Value("after-drop")));
  FR_ASSERT_OK(db->replication().VerifyPathConsistency(p2->id));
  FR_ASSERT_OK(db->replication().VerifyPathConsistency(p4->id));
}

/// The whole mixed workload under a 24-frame (96 KiB) buffer pool: every
/// structure is forced through eviction constantly.
TEST(TinyPoolStressTest, MixedWorkloadUnderEvictionPressure) {
  auto db = OpenEmployeeDatabase(/*pool_frames=*/24);
  EmployeeFixture fixture = PopulateEmployees(db.get(), 2, 8, 120);
  FR_ASSERT_OK(db->BuildIndex("emp_salary", "Emp1", "salary"));
  FR_ASSERT_OK(db->Replicate("Emp1.dept.name", {}));
  ReplicateOptions separate;
  separate.strategy = ReplicationStrategy::kSeparate;
  FR_ASSERT_OK(db->Replicate("Emp1.dept.org.name", separate));

  Random rng(4242);
  std::vector<Oid> emps = fixture.emps;
  for (int step = 0; step < 150; ++step) {
    int action = static_cast<int>(rng.Uniform(10));
    if (action < 3) {
      ReadQuery query;
      query.set_name = "Emp1";
      query.projections = {"name", "dept.name", "dept.org.name"};
      int32_t lo = static_cast<int32_t>(rng.Uniform(100000));
      query.predicate = Predicate::Between("salary", Value(lo),
                                           Value(lo + 20000));
      ReadResult result;
      ASSERT_TRUE(db->Retrieve(query, &result).ok()) << "step " << step;
    } else if (action < 5) {
      UpdateQuery update;
      update.set_name = "Dept";
      update.predicate = Predicate::Compare(
          "budget", CompareOp::kLt,
          Value(static_cast<int32_t>(rng.Uniform(80))));
      update.assignments = {{"name", Value("n" + std::to_string(step))}};
      UpdateResult result;
      ASSERT_TRUE(db->Replace(update, &result).ok()) << "step " << step;
    } else if (action < 7 && !emps.empty()) {
      size_t pick = rng.Uniform(emps.size());
      ASSERT_TRUE(db->Update("Emp1", emps[pick], "dept",
                             Value(fixture.depts[rng.Uniform(8)]))
                      .ok());
    } else if (action < 8) {
      Object emp(0, {Value("s" + std::to_string(step)), Value(int32_t{20}),
                     Value(static_cast<int32_t>(rng.Uniform(200000))),
                     Value(fixture.depts[rng.Uniform(8)])});
      Oid oid;
      ASSERT_TRUE(db->Insert("Emp1", emp, &oid).ok());
      emps.push_back(oid);
    } else if (action < 9 && emps.size() > 10) {
      size_t pick = rng.Uniform(emps.size());
      ASSERT_TRUE(db->Delete("Emp1", emps[pick]).ok());
      emps.erase(emps.begin() + pick);
    } else {
      ASSERT_TRUE(db->Update("Org", fixture.orgs[rng.Uniform(2)], "name",
                             Value("o" + std::to_string(step)))
                      .ok());
    }
    // No pins may leak — the pool must always be fully unpinned between
    // operations.
    ASSERT_EQ(db->pool().total_pins(), 0u) << "step " << step;
  }
  for (uint16_t path_id : db->catalog().AllPathIds()) {
    FR_ASSERT_OK(db->replication().VerifyPathConsistency(path_id));
  }
  ExpectCleanIntegrity(db.get());
}

/// Three-level reference paths: a four-tier schema (worker -> team ->
/// division -> company) exercising insertion/deletion ripple and interior
/// retargets across the full depth, for both strategies.
class ThreeLevelPathTest : public ::testing::TestWithParam<
                               ReplicationStrategy> {
 protected:
  void SetUp() override {
    auto db_or = Database::Open({});
    ASSERT_TRUE(db_or.ok());
    db_ = std::move(db_or).value();
    FR_ASSERT_OK(db_->DefineType(
        TypeDescriptor("COMPANY", {CharAttr("name", 20)})));
    FR_ASSERT_OK(db_->DefineType(TypeDescriptor(
        "DIVISION", {CharAttr("name", 20), RefAttr("company", "COMPANY")})));
    FR_ASSERT_OK(db_->DefineType(TypeDescriptor(
        "TEAM", {CharAttr("name", 20), RefAttr("division", "DIVISION")})));
    FR_ASSERT_OK(db_->DefineType(TypeDescriptor(
        "WORKER", {CharAttr("name", 20), Int32Attr("id"),
                   RefAttr("team", "TEAM")})));
    FR_ASSERT_OK(db_->CreateSet("Companies", "COMPANY"));
    FR_ASSERT_OK(db_->CreateSet("Divisions", "DIVISION"));
    FR_ASSERT_OK(db_->CreateSet("Teams", "TEAM"));
    FR_ASSERT_OK(db_->CreateSet("Workers", "WORKER"));
    for (int i = 0; i < 2; ++i) {
      Oid oid;
      FR_ASSERT_OK(db_->Insert(
          "Companies", Object(0, {Value("co" + std::to_string(i))}), &oid));
      companies_.push_back(oid);
    }
    for (int i = 0; i < 4; ++i) {
      Oid oid;
      FR_ASSERT_OK(db_->Insert(
          "Divisions", Object(0, {Value("div" + std::to_string(i)),
                                  Value(companies_[i % 2])}),
          &oid));
      divisions_.push_back(oid);
    }
    for (int i = 0; i < 8; ++i) {
      Oid oid;
      FR_ASSERT_OK(db_->Insert(
          "Teams", Object(0, {Value("team" + std::to_string(i)),
                              Value(divisions_[i % 4])}),
          &oid));
      teams_.push_back(oid);
    }
    for (int i = 0; i < 40; ++i) {
      Oid oid;
      FR_ASSERT_OK(db_->Insert(
          "Workers", Object(0, {Value("w" + std::to_string(i)),
                                Value(int32_t{i}), Value(teams_[i % 8])}),
          &oid));
      workers_.push_back(oid);
    }
    ReplicateOptions options;
    options.strategy = GetParam();
    FR_ASSERT_OK(
        db_->Replicate("Workers.team.division.company.name", options));
    path_ = db_->catalog().FindPathBySpec(
        "Workers.team.division.company.name");
    ASSERT_NE(path_, nullptr);
  }

  void Verify() {
    FR_ASSERT_OK(db_->replication().VerifyPathConsistency(path_->id));
    ExpectCleanIntegrity(db_.get());
  }

  std::unique_ptr<Database> db_;
  std::vector<Oid> companies_, divisions_, teams_, workers_;
  const ReplicationPathInfo* path_ = nullptr;
};

TEST_P(ThreeLevelPathTest, BulkBuildAndLinkDepth) {
  // In-place: 3 links; separate: 2 (an n-level path needs an (n-1)-level
  // inverted path).
  size_t expected_links =
      GetParam() == ReplicationStrategy::kInPlace ? 3u : 2u;
  EXPECT_EQ(path_->link_sequence.size(), expected_links);
  Verify();
}

TEST_P(ThreeLevelPathTest, DeepScalarPropagation) {
  FR_ASSERT_OK(db_->Update("Companies", companies_[0], "name",
                           Value("megacorp")));
  Verify();
  Object worker;
  FR_ASSERT_OK(db_->Get("Workers", workers_[0], &worker));
  std::vector<Value> values;
  FR_ASSERT_OK(
      db_->replication().ReadReplicatedValues(*path_, worker, &values));
  std::string padded = "megacorp";
  padded.resize(20, '\0');
  EXPECT_EQ(values[0], Value(padded));
}

TEST_P(ThreeLevelPathTest, RetargetsAtEveryLevel) {
  // Level 1: worker switches team.
  FR_ASSERT_OK(db_->Update("Workers", workers_[0], "team", Value(teams_[7])));
  Verify();
  // Level 2: team switches division.
  FR_ASSERT_OK(
      db_->Update("Teams", teams_[0], "division", Value(divisions_[3])));
  Verify();
  // Level 3: division switches company.
  FR_ASSERT_OK(db_->Update("Divisions", divisions_[0], "company",
                           Value(companies_[1])));
  Verify();
  // Nulls at each level.
  FR_ASSERT_OK(db_->Update("Teams", teams_[1], "division", Value::Null()));
  Verify();
  FR_ASSERT_OK(
      db_->Update("Teams", teams_[1], "division", Value(divisions_[2])));
  Verify();
}

TEST_P(ThreeLevelPathTest, InsertDeleteRipple) {
  // New worker on a team whose chain is fully populated.
  Oid oid;
  FR_ASSERT_OK(db_->Insert(
      "Workers",
      Object(0, {Value("new"), Value(int32_t{999}), Value(teams_[3])}),
      &oid));
  Verify();
  // Delete every worker of team 2; the ripple must unwind team 2's links
  // through division and company.
  for (int i = 2; i < 40; i += 8) {
    FR_ASSERT_OK(db_->Delete("Workers", workers_[i]));
  }
  Verify();
  Object team;
  FR_ASSERT_OK(db_->Get("Teams", teams_[2], &team));
  EXPECT_TRUE(team.link_refs().empty());
}

TEST_P(ThreeLevelPathTest, QueriesThroughThreeLevels) {
  ReadQuery query;
  query.set_name = "Workers";
  query.projections = {"name", "team.division.company.name"};
  ReadResult via_replica;
  FR_ASSERT_OK(db_->Retrieve(query, &via_replica));
  query.use_replication = false;
  ReadResult via_join;
  FR_ASSERT_OK(db_->Retrieve(query, &via_join));
  EXPECT_EQ(via_replica.rows, via_join.rows);
  EXPECT_EQ(via_replica.rows.size(), 40u);
}

INSTANTIATE_TEST_SUITE_P(
    Strategies, ThreeLevelPathTest,
    ::testing::Values(ReplicationStrategy::kInPlace,
                      ReplicationStrategy::kSeparate),
    [](const ::testing::TestParamInfo<ReplicationStrategy>& info) {
      return info.param == ReplicationStrategy::kInPlace ? "InPlace"
                                                         : "Separate";
    });

/// Catalog serialization round-trips bit-exactly at the catalog level.
TEST(CatalogCodecTest, EncodeDecodeRoundTrip) {
  auto db = OpenEmployeeDatabase();
  EmployeeFixture fixture = PopulateEmployees(db.get(), 2, 4, 8);
  FR_ASSERT_OK(db->Replicate("Emp1.dept.name", {}));
  ReplicateOptions options;
  options.strategy = ReplicationStrategy::kSeparate;
  FR_ASSERT_OK(db->Replicate("Emp1.dept.org.name", options));
  FR_ASSERT_OK(db->BuildIndex("emp_salary", "Emp1", "salary"));

  std::string blob;
  db->catalog().EncodeTo(&blob);
  Catalog decoded;
  ByteReader reader(blob);
  FR_ASSERT_OK(decoded.DecodeFrom(&reader));
  EXPECT_EQ(reader.remaining(), 0u);
  // Re-encoding the decoded catalog yields identical bytes.
  std::string blob2;
  decoded.EncodeTo(&blob2);
  EXPECT_EQ(blob, blob2);
  // Spot checks.
  EXPECT_TRUE(decoded.HasType("EMP"));
  ASSERT_NE(decoded.FindPathBySpec("Emp1.dept.org.name"), nullptr);
  EXPECT_EQ(decoded.FindPathBySpec("Emp1.dept.org.name")->strategy,
            ReplicationStrategy::kSeparate);
  EXPECT_NE(decoded.FindIndexByName("emp_salary"), nullptr);
  EXPECT_EQ(decoded.link_registry().link_count(),
            db->catalog().link_registry().link_count());
  // Truncated blobs fail loudly at every prefix length.
  for (size_t cut : std::vector<size_t>{0, 5, blob.size() / 2}) {
    Catalog bad;
    ByteReader cut_reader(blob.substr(0, cut));
    EXPECT_FALSE(bad.DecodeFrom(&cut_reader).ok()) << cut;
  }
}

}  // namespace
}  // namespace fieldrep
