// Read-ahead and elevator write-back suite: the accounting contract
// (prefetch performs physical batch reads; logical counters are charged
// on first fetch and are byte-identical with any window), victim-selection
// safety under the WAL observer's no-steal veto and flush ordering,
// checksum verification of batch-read pages, and crash behaviour of
// vectored writes under fault injection.

#include <algorithm>
#include <cstring>
#include <string>
#include <vector>

#include "common/strings.h"
#include "db/database.h"
#include "gtest/gtest.h"
#include "storage/buffer_pool.h"
#include "storage/checksum.h"
#include "storage/fault_injecting_device.h"
#include "storage/memory_device.h"
#include "storage/record_file.h"
#include "test_util.h"

namespace fieldrep {
namespace {

using ::fieldrep::testing::ExpectCleanIntegrity;

/// Allocates `n` pages through the pool, tags byte 0 of page i with i,
/// and leaves the pool cold with zeroed stats. Pages are checksummed on
/// the device (the flush path stamps them).
std::vector<PageId> SeedPages(BufferPool* pool, int n) {
  std::vector<PageId> pages;
  for (int i = 0; i < n; ++i) {
    PageGuard guard;
    EXPECT_TRUE(pool->NewPage(&guard).ok());
    guard.data()[0] = static_cast<uint8_t>(i);
    guard.MarkDirty();
    pages.push_back(guard.page_id());
  }
  EXPECT_TRUE(pool->EvictAll().ok());
  pool->ResetStats();
  return pages;
}

// --- Accounting --------------------------------------------------------------

TEST(PrefetchTest, ChargesLogicalReadOnFirstFetchOnly) {
  MemoryDevice device;
  BufferPool pool(&device, 16);
  std::vector<PageId> pages = SeedPages(&pool, 6);

  FR_ASSERT_OK(pool.Prefetch(pages));
  // Physical side: one batch of 6 pages; logical side: untouched.
  EXPECT_EQ(pool.stats().batched_reads, 6u);
  EXPECT_EQ(pool.stats().bytes_read, 6u * kPageSize);
  EXPECT_EQ(pool.stats().disk_reads, 0u);
  EXPECT_EQ(pool.stats().hits, 0u);
  EXPECT_EQ(pool.pages_cached(), 6u);
  EXPECT_EQ(pool.total_pins(), 0u);  // installed unpinned

  // First fetch of a prefetched page is charged as the read the caller
  // would have performed on demand — not as a hit.
  PageGuard guard;
  FR_ASSERT_OK(pool.FetchPage(pages[2], &guard));
  EXPECT_EQ(guard.data()[0], 2);
  EXPECT_EQ(pool.stats().disk_reads, 1u);
  EXPECT_EQ(pool.stats().hits, 0u);
  guard.Release();

  // Second fetch is an ordinary hit.
  FR_ASSERT_OK(pool.FetchPage(pages[2], &guard));
  EXPECT_EQ(pool.stats().disk_reads, 1u);
  EXPECT_EQ(pool.stats().hits, 1u);
  guard.Release();

  // Pages prefetched but never fetched are never charged.
  EXPECT_EQ(pool.stats().TotalIo(), 1u);
}

TEST(PrefetchTest, WindowZeroMakesPrefetchANoOp) {
  MemoryDevice device;
  BufferPool pool(&device, 16);
  std::vector<PageId> pages = SeedPages(&pool, 4);

  pool.set_read_ahead_window(0);
  FR_ASSERT_OK(pool.Prefetch(pages));
  EXPECT_EQ(pool.pages_cached(), 0u);
  EXPECT_EQ(pool.stats().batched_reads, 0u);
  EXPECT_EQ(pool.stats().bytes_read, 0u);
}

TEST(PrefetchTest, SkipsResidentDuplicateAndUnallocatedIds) {
  MemoryDevice device;
  BufferPool pool(&device, 16);
  std::vector<PageId> pages = SeedPages(&pool, 4);

  PageGuard resident;
  FR_ASSERT_OK(pool.FetchPage(pages[0], &resident));
  pool.ResetStats();

  std::vector<PageId> request = {pages[0],  // resident
                                 pages[1], pages[1],  // duplicate
                                 pages[2],
                                 static_cast<PageId>(9999)};  // unallocated
  FR_ASSERT_OK(pool.Prefetch(request));
  EXPECT_EQ(pool.stats().batched_reads, 2u);  // pages[1] and pages[2] only
  EXPECT_EQ(pool.pages_cached(), 3u);
  EXPECT_EQ(pool.PeekPage(static_cast<PageId>(9999)), nullptr);
  resident.Release();
}

TEST(PrefetchOidTest, PrefetchesDistinctPagesOfOidBatch) {
  MemoryDevice device;
  BufferPool pool(&device, 16);
  std::vector<PageId> pages = SeedPages(&pool, 3);

  std::vector<Oid> oids = {Oid(1, pages[0], 0), Oid(1, pages[0], 5),
                           Oid(1, pages[2], 1), Oid::Invalid()};
  FR_ASSERT_OK(pool.PrefetchOidPages(oids));
  EXPECT_EQ(pool.stats().batched_reads, 2u);
  EXPECT_NE(pool.PeekPage(pages[0]), nullptr);
  EXPECT_NE(pool.PeekPage(pages[2]), nullptr);
  EXPECT_EQ(pool.PeekPage(pages[1]), nullptr);
}

// --- Elevator write-back -----------------------------------------------------

/// StorageDevice decorator that records the page-id sequence of every
/// vectored write batch it forwards.
class WriteRecordingDevice : public StorageDevice {
 public:
  explicit WriteRecordingDevice(StorageDevice* base) : base_(base) {}

  Status ReadPage(PageId page_id, void* buf) override {
    return base_->ReadPage(page_id, buf);
  }
  Status WritePage(PageId page_id, const void* buf) override {
    batches_.push_back({page_id});
    return base_->WritePage(page_id, buf);
  }
  Status WritePages(std::span<const PageId> page_ids,
                    std::span<const uint8_t* const> bufs) override {
    batches_.emplace_back(page_ids.begin(), page_ids.end());
    return base_->WritePages(page_ids, bufs);
  }
  Status AllocatePage(PageId* page_id) override {
    return base_->AllocatePage(page_id);
  }
  uint32_t page_count() const override { return base_->page_count(); }

  const std::vector<std::vector<PageId>>& batches() const { return batches_; }
  void ClearBatches() { batches_.clear(); }

 private:
  StorageDevice* base_;
  std::vector<std::vector<PageId>> batches_;
};

TEST(ElevatorFlushTest, FlushesInAscendingOrderWithContiguousRunsCoalesced) {
  MemoryDevice base;
  WriteRecordingDevice device(&base);
  BufferPool pool(&device, 16);
  std::vector<PageId> pages = SeedPages(&pool, 8);

  // Dirty pages {6, 1, 0, 3, 2} in scrambled order; the flush must come
  // out as the sorted runs [0 1 2 3] and [6].
  for (PageId id : {pages[6], pages[1], pages[0], pages[3], pages[2]}) {
    PageGuard guard;
    FR_ASSERT_OK(pool.FetchPage(id, &guard));
    guard.data()[1] = 0x7E;
    guard.MarkDirty();
  }
  device.ClearBatches();
  pool.ResetStats();
  FR_ASSERT_OK(pool.FlushAll());

  ASSERT_EQ(device.batches().size(), 2u);
  EXPECT_EQ(device.batches()[0],
            (std::vector<PageId>{pages[0], pages[1], pages[2], pages[3]}));
  EXPECT_EQ(device.batches()[1], std::vector<PageId>{pages[6]});
  // Logical writes count every page; coalesced_writes only multi-page runs.
  EXPECT_EQ(pool.stats().disk_writes, 5u);
  EXPECT_EQ(pool.stats().coalesced_writes, 4u);
  EXPECT_EQ(pool.stats().bytes_written, 5u * kPageSize);
}

// --- WAL observer interaction ------------------------------------------------

/// Observer that vetoes eviction of a protected page set and records the
/// BeforePageFlush order (the WAL flush-ordering hook).
class RecordingObserver : public PageObserver {
 public:
  void OnPageAccess(PageId, const uint8_t*) override {}
  void OnPageDirtied(PageId) override {}
  bool CanEvict(PageId page_id) const override {
    return protected_pages_.end() ==
           std::find(protected_pages_.begin(), protected_pages_.end(),
                     page_id);
  }
  Status BeforePageFlush(PageId page_id, uint64_t) override {
    flushed_.push_back(page_id);
    return Status::OK();
  }

  void Protect(PageId page_id) { protected_pages_.push_back(page_id); }
  const std::vector<PageId>& flushed() const { return flushed_; }

 private:
  std::vector<PageId> protected_pages_;
  std::vector<PageId> flushed_;
};

TEST(PrefetchTest, VictimSelectionHonoursNoStealVeto) {
  MemoryDevice device;
  // 3 frames: one will hold an uncommitted dirty page, leaving two for
  // the prefetch batch to fight over.
  BufferPool pool(&device, 3);
  std::vector<PageId> pages = SeedPages(&pool, 5);

  RecordingObserver observer;
  pool.SetObserver(&observer);
  PageGuard guard;
  FR_ASSERT_OK(pool.FetchPage(pages[0], &guard));
  guard.data()[2] = 0x11;
  guard.MarkDirty();
  guard.Release();
  observer.Protect(pages[0]);  // "uncommitted": no-steal forbids eviction

  // Asking for 4 pages with only 2 stealable frames: the batch shrinks,
  // the protected dirty page stays resident and is NEVER flushed.
  FR_ASSERT_OK(
      pool.Prefetch(std::vector<PageId>{pages[1], pages[2], pages[3],
                                        pages[4]}));
  EXPECT_NE(pool.PeekPage(pages[0]), nullptr);
  EXPECT_TRUE(observer.flushed().empty());
  EXPECT_LE(pool.stats().batched_reads, 2u);
  pool.SetObserver(nullptr);
  // The protected page's bytes are intact (flush at destruction would
  // trip the veto; detaching the observer lets teardown write it back).
  EXPECT_EQ(pool.PeekPage(pages[0])[2], 0x11);
}

TEST(PrefetchTest, DirtyVictimsFlushThroughObserverBeforeReuse) {
  MemoryDevice device;
  BufferPool pool(&device, 2);
  std::vector<PageId> pages = SeedPages(&pool, 4);

  RecordingObserver observer;
  pool.SetObserver(&observer);
  PageGuard guard;
  FR_ASSERT_OK(pool.FetchPage(pages[0], &guard));
  guard.data()[3] = 0x42;
  guard.MarkDirty();
  guard.Release();

  // Prefetching two other pages must evict the dirty frame — and the
  // WAL ordering hook must run before its bytes reach the device.
  FR_ASSERT_OK(pool.Prefetch(std::vector<PageId>{pages[1], pages[2]}));
  ASSERT_EQ(observer.flushed().size(), 1u);
  EXPECT_EQ(observer.flushed()[0], pages[0]);
  pool.SetObserver(nullptr);

  PageGuard reread;
  FR_ASSERT_OK(pool.FetchPage(pages[0], &reread));
  EXPECT_EQ(reread.data()[3], 0x42);  // write-back actually happened
}

// --- Checksums ---------------------------------------------------------------

TEST(PrefetchTest, CorruptBatchPageIsNotInstalledAndFetchReportsIt) {
  MemoryDevice device;
  BufferPool pool(&device, 16);
  pool.set_verify_checksums(true);
  std::vector<PageId> pages = SeedPages(&pool, 3);

  // Flip a payload byte of pages[1] directly on the device without
  // restamping: its checksum no longer matches.
  uint8_t raw[kPageSize];
  FR_ASSERT_OK(device.ReadPage(pages[1], raw));
  raw[kPageSize - 1] ^= 0xFF;
  FR_ASSERT_OK(device.WritePage(pages[1], raw));

  // The batch read succeeds, but the corrupt page is silently dropped.
  FR_ASSERT_OK(pool.Prefetch(pages));
  EXPECT_NE(pool.PeekPage(pages[0]), nullptr);
  EXPECT_EQ(pool.PeekPage(pages[1]), nullptr);
  EXPECT_NE(pool.PeekPage(pages[2]), nullptr);

  // The on-demand retry sees exactly what it would have seen without
  // read-ahead: a Corruption naming the page.
  PageGuard guard;
  Status s = pool.FetchPage(pages[1], &guard);
  ASSERT_FALSE(s.ok());
  EXPECT_NE(s.ToString().find("checksum"), std::string::npos) << s.ToString();
  EXPECT_NE(s.ToString().find(StringPrintf("%u", pages[1])),
            std::string::npos)
      << s.ToString();
}

// --- Fault injection ---------------------------------------------------------

TEST(PrefetchTest, DeviceErrorInstallsNothingAndLeaksNoFrames) {
  MemoryDevice disk;
  FaultPlan plan;
  FaultInjectingDevice device(&disk, &plan);
  BufferPool pool(&device, 16);
  std::vector<PageId> pages = SeedPages(&pool, 4);

  plan.crashed = true;  // machine down: every read fails
  Status s = pool.Prefetch(pages);
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(pool.pages_cached(), 0u);
  EXPECT_EQ(pool.total_pins(), 0u);
  EXPECT_EQ(pool.stats().batched_reads, 0u);

  plan.Reset();  // reboot: on-demand access works again
  PageGuard guard;
  FR_ASSERT_OK(pool.FetchPage(pages[0], &guard));
  EXPECT_EQ(guard.data()[0], 0);
}

TEST(ElevatorFlushTest, CrashMidFlushKeepsFramesDirtyForRetry) {
  MemoryDevice disk;
  FaultPlan plan;
  FaultInjectingDevice device(&disk, &plan);
  BufferPool pool(&device, 16);
  std::vector<PageId> pages = SeedPages(&pool, 6);

  for (int i = 0; i < 6; ++i) {
    PageGuard guard;
    FR_ASSERT_OK(pool.FetchPage(pages[i], &guard));
    guard.data()[4] = static_cast<uint8_t>(0xA0 + i);
    guard.MarkDirty();
  }
  plan.Arm(3);  // power fails after the 3rd durable write of the flush
  Status s = pool.FlushAll();
  ASSERT_FALSE(s.ok());
  EXPECT_NE(s.ToString().find("flushing page"), std::string::npos)
      << s.ToString();

  // Reboot. Every page the crash interrupted is still dirty, so the
  // retry completes the flush and the media ends up fully new.
  plan.Reset();
  EXPECT_FALSE(pool.DirtyPageIds().empty());
  FR_ASSERT_OK(pool.FlushAll());
  FR_ASSERT_OK(pool.EvictAll());
  pool.set_verify_checksums(true);
  for (int i = 0; i < 6; ++i) {
    PageGuard guard;
    FR_ASSERT_OK(pool.FetchPage(pages[i], &guard));
    EXPECT_EQ(guard.data()[4], static_cast<uint8_t>(0xA0 + i));
  }
}

/// Fresh "machine" per crash boundary: media, shared fault plan, and a
/// database with read-ahead enabled over both fault-injecting devices.
struct ReadAheadCrashRig {
  MemoryDevice disk;
  MemoryDevice log_disk;
  FaultPlan plan;
  FaultInjectingDevice db_dev{&disk, &plan};
  FaultInjectingDevice log_dev{&log_disk, &plan};

  std::unique_ptr<Database> Open() {
    Database::Options options;
    options.buffer_pool_frames = 512;
    options.device = &db_dev;
    options.wal_device = &log_dev;
    options.enable_wal = true;
    options.read_ahead_window = 4;
    auto db_or = Database::Open(options);
    EXPECT_TRUE(db_or.ok()) << db_or.status().ToString();
    return db_or.ok() ? std::move(db_or).value() : nullptr;
  }

  /// One set, enough records to span several pages, all dirty in cache.
  Status Populate(Database* db) {
    FIELDREP_RETURN_IF_ERROR(db->DefineType(
        TypeDescriptor("DEPT", {CharAttr("name", 20), Int32Attr("budget")})));
    FIELDREP_RETURN_IF_ERROR(db->CreateSet("Depts", "DEPT"));
    for (int i = 0; i < 30; ++i) {
      Oid oid;
      FIELDREP_RETURN_IF_ERROR(db->Insert(
          "Depts",
          Object(0, {Value(StringPrintf("dept%d", i)), Value(int32_t{i})}),
          &oid));
    }
    return Status::OK();
  }
};

TEST(WalPrefetchCrashTest, CheckpointCrashWithReadAheadRecoversClean) {
  // End-to-end: a database with read-ahead enabled crashes during a
  // checkpoint (whose dirty-page flush takes the elevator path), reboots,
  // recovers from the WAL, and passes the full integrity checker.

  // Oracle pass: how many durable operations does the checkpoint issue?
  uint64_t checkpoint_ops = 0;
  {
    ReadAheadCrashRig rig;
    auto db = rig.Open();
    ASSERT_NE(db, nullptr);
    FR_ASSERT_OK(rig.Populate(db.get()));
    uint64_t before = rig.plan.ops_seen;
    FR_ASSERT_OK(db->Checkpoint());
    checkpoint_ops = rig.plan.ops_seen - before;
    ASSERT_GT(checkpoint_ops, 0u);
  }

  // Crash at every other boundary inside the checkpoint and recover.
  for (uint64_t k = 1; k <= checkpoint_ops; k += 2) {
    SCOPED_TRACE(StringPrintf("crash after %d checkpoint ops",
                              static_cast<int>(k)));
    ReadAheadCrashRig rig;
    {
      auto db = rig.Open();
      ASSERT_NE(db, nullptr);
      FR_ASSERT_OK(rig.Populate(db.get()));
      rig.plan.Arm(k);
      (void)db->Checkpoint();  // dies somewhere inside the elevator flush
    }
    rig.plan.Reset();  // reboot
    auto db = rig.Open();
    ASSERT_NE(db, nullptr);
    ExpectCleanIntegrity(db.get());
  }
}

// --- EvictAll diagnostics ----------------------------------------------------

TEST(EvictAllTest, ErrorNamesThePinnedPage) {
  MemoryDevice device;
  BufferPool pool(&device, 8);
  PageGuard guard;
  FR_ASSERT_OK(pool.NewPage(&guard));
  Status s = pool.EvictAll();
  ASSERT_FALSE(s.ok());
  EXPECT_NE(s.ToString().find(StringPrintf("page %u", guard.page_id())),
            std::string::npos)
      << s.ToString();
  guard.Release();
}

// --- Logical-I/O equivalence at the scan level -------------------------------

TEST(ReadAheadScanTest, RecordFileScanLogicalIoIsWindowIndependent) {
  MemoryDevice device;
  BufferPool pool(&device, 4096);
  RecordFile file(&pool, 1);
  const std::string payload(100, 'z');
  for (int i = 0; i < 2000; ++i) {  // ~50 pages of records
    Oid oid;
    FR_ASSERT_OK(file.Insert(payload, &oid));
  }

  auto cold_scan_stats = [&](uint32_t window) {
    pool.set_read_ahead_window(window);
    EXPECT_TRUE(pool.EvictAll().ok());
    pool.ResetStats();
    size_t count = 0;
    EXPECT_TRUE(file.Scan([&](const Oid&, const std::string&) {
                      ++count;
                      return true;
                    })
                    .ok());
    EXPECT_EQ(count, 2000u);
    return pool.stats();
  };

  IoStats with = cold_scan_stats(16);
  IoStats without = cold_scan_stats(0);
  // The paper's cost unit must not notice the physical batching.
  EXPECT_EQ(with.disk_reads, without.disk_reads);
  EXPECT_EQ(with.disk_writes, without.disk_writes);
  EXPECT_EQ(with.TotalIo(), without.TotalIo());
  EXPECT_EQ(with.fetches, without.fetches);
  EXPECT_EQ(with.hits, without.hits);
  // The physical counters DO notice: pages moved in batches.
  EXPECT_GT(with.batched_reads, 0u);
  EXPECT_EQ(without.batched_reads, 0u);
}

}  // namespace
}  // namespace fieldrep
