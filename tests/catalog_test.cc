#include "catalog/catalog.h"
#include "catalog/link_registry.h"
#include "catalog/path.h"
#include "catalog/type.h"
#include "gtest/gtest.h"
#include "test_util.h"

namespace fieldrep {
namespace {

TypeDescriptor EmpType() {
  return TypeDescriptor("EMP", {CharAttr("name", 20), Int32Attr("age"),
                                Int32Attr("salary"), RefAttr("dept", "DEPT")});
}
TypeDescriptor DeptType() {
  return TypeDescriptor("DEPT", {CharAttr("name", 20), Int32Attr("budget"),
                                 RefAttr("org", "ORG")});
}
TypeDescriptor OrgType() {
  return TypeDescriptor("ORG", {CharAttr("name", 20), Int32Attr("budget")});
}

class CatalogTest : public ::testing::Test {
 protected:
  void SetUp() override {
    FR_ASSERT_OK(catalog_.DefineType(OrgType()));
    FR_ASSERT_OK(catalog_.DefineType(DeptType()));
    FR_ASSERT_OK(catalog_.DefineType(EmpType()));
    FileId ignored;
    FR_ASSERT_OK(catalog_.CreateSet("Org", "ORG", &ignored));
    FR_ASSERT_OK(catalog_.CreateSet("Dept", "DEPT", &ignored));
    FR_ASSERT_OK(catalog_.CreateSet("Emp1", "EMP", &ignored));
    FR_ASSERT_OK(catalog_.CreateSet("Emp2", "EMP", &ignored));
  }
  Catalog catalog_;
};

// --- Types -------------------------------------------------------------------

TEST_F(CatalogTest, TypeTagsAreUniqueAndResolvable) {
  auto emp = catalog_.GetType("EMP");
  auto dept = catalog_.GetType("DEPT");
  ASSERT_TRUE(emp.ok() && dept.ok());
  EXPECT_NE((*emp)->type_tag(), (*dept)->type_tag());
  auto by_tag = catalog_.GetTypeByTag((*emp)->type_tag());
  ASSERT_TRUE(by_tag.ok());
  EXPECT_EQ((*by_tag)->name(), "EMP");
}

TEST_F(CatalogTest, DuplicateTypeRejected) {
  EXPECT_EQ(catalog_.DefineType(EmpType()).code(),
            StatusCode::kAlreadyExists);
}

TEST(TypeTest, ValidateCatchesErrors) {
  TypeDescriptor dup("T", {Int32Attr("a"), Int32Attr("a")});
  EXPECT_FALSE(dup.Validate().ok());
  TypeDescriptor noref("T", {{"r", FieldType::kRef, 0, ""}});
  EXPECT_FALSE(noref.Validate().ok());
  TypeDescriptor zerochar("T", {{"c", FieldType::kChar, 0, ""}});
  EXPECT_FALSE(zerochar.Validate().ok());
  TypeDescriptor ok("T", {Int32Attr("a"), CharAttr("c", 8)});
  EXPECT_TRUE(ok.Validate().ok());
}

TEST(TypeTest, AttributeSizes) {
  EXPECT_EQ(Int32Attr("a").FixedBytes(), 4u);
  EXPECT_EQ(Int64Attr("a").FixedBytes(), 8u);
  EXPECT_EQ(DoubleAttr("a").FixedBytes(), 8u);
  EXPECT_EQ(CharAttr("a", 20).FixedBytes(), 20u);
  EXPECT_EQ(RefAttr("a", "T").FixedBytes(), 8u);
}

TEST(TypeTest, ScalarAttributeIndices) {
  TypeDescriptor t = DeptType();
  EXPECT_EQ(t.ScalarAttributeIndices(), (std::vector<int>{0, 1}));
}

// --- Sets --------------------------------------------------------------------

TEST_F(CatalogTest, SetLookupByNameAndFile) {
  auto set = catalog_.GetSet("Emp1");
  ASSERT_TRUE(set.ok());
  EXPECT_EQ((*set)->type_name, "EMP");
  auto by_file = catalog_.GetSetForFile((*set)->file_id);
  ASSERT_TRUE(by_file.ok());
  EXPECT_EQ((*by_file)->name, "Emp1");
}

TEST_F(CatalogTest, SetOfUnknownTypeRejected) {
  FileId ignored;
  EXPECT_TRUE(catalog_.CreateSet("X", "NOPE", &ignored).IsNotFound());
}

TEST_F(CatalogTest, SetWithDanglingRefTypeRejected) {
  FR_ASSERT_OK(catalog_.DefineType(
      TypeDescriptor("BAD", {RefAttr("x", "MISSING")})));
  FileId ignored;
  EXPECT_EQ(catalog_.CreateSet("Bad", "BAD", &ignored).code(),
            StatusCode::kFailedPrecondition);
}

// --- Path binding -------------------------------------------------------------

TEST_F(CatalogTest, BindsOneLevelPath) {
  BoundPath path;
  FR_ASSERT_OK(catalog_.BindPath("Emp1.dept.name", &path));
  EXPECT_EQ(path.set_name, "Emp1");
  ASSERT_EQ(path.level(), 1u);
  EXPECT_EQ(path.steps[0].attr_name, "dept");
  EXPECT_EQ(path.steps[0].source_type, "EMP");
  EXPECT_EQ(path.steps[0].target_type, "DEPT");
  EXPECT_EQ(path.terminal_type, "DEPT");
  EXPECT_EQ(path.terminal_fields, (std::vector<int>{0}));
  EXPECT_FALSE(path.all);
}

TEST_F(CatalogTest, BindsTwoLevelPath) {
  BoundPath path;
  FR_ASSERT_OK(catalog_.BindPath("Emp1.dept.org.name", &path));
  ASSERT_EQ(path.level(), 2u);
  EXPECT_EQ(path.steps[1].attr_name, "org");
  EXPECT_EQ(path.terminal_type, "ORG");
}

TEST_F(CatalogTest, BindsAllPath) {
  BoundPath path;
  FR_ASSERT_OK(catalog_.BindPath("Emp1.dept.all", &path));
  EXPECT_TRUE(path.all);
  EXPECT_EQ(path.terminal_type, "DEPT");
  // Every attribute of DEPT, including the ref.
  EXPECT_EQ(path.terminal_fields, (std::vector<int>{0, 1, 2}));
}

TEST_F(CatalogTest, BindsRefTerminal) {
  // Section 3.3.3: replicate Emp1.dept.org collapses the 2-level path.
  BoundPath path;
  FR_ASSERT_OK(catalog_.BindPath("Emp1.dept.org", &path));
  ASSERT_EQ(path.level(), 1u);
  EXPECT_EQ(path.terminal_type, "DEPT");
  EXPECT_EQ(path.terminal_fields, (std::vector<int>{2}));  // the org ref
}

TEST_F(CatalogTest, BindRejectsBadPaths) {
  BoundPath path;
  EXPECT_FALSE(catalog_.BindPath("Nope.dept.name", &path).ok());
  EXPECT_FALSE(catalog_.BindPath("Emp1.nope.name", &path).ok());
  // Scalar mid-path.
  EXPECT_FALSE(catalog_.BindPath("Emp1.salary.name", &path).ok());
  EXPECT_FALSE(catalog_.BindPath("Emp1", &path).ok());
  EXPECT_FALSE(catalog_.BindPath("Emp1..dept", &path).ok());
}

// --- Link registry (Section 4.1.4) ---------------------------------------------

TEST(LinkRegistryTest, SharedPrefixSharesLinkIds) {
  // The paper's example:
  //   replicate Emp1.dept.budget    link sequence = (1)
  //   replicate Emp1.dept.name      link sequence = (1)
  //   replicate Emp1.dept.org.name  link sequence = (1,2)
  //   replicate Emp2.dept.org       link sequence = (3)
  LinkRegistry registry;
  uint8_t id1, id2, id3, id4, id5;
  FR_ASSERT_OK(registry.InternLink("Emp1.dept", "Emp1", 1, "EMP", "DEPT",
                                   "dept", false, 1, &id1));
  FR_ASSERT_OK(registry.InternLink("Emp1.dept", "Emp1", 1, "EMP", "DEPT",
                                   "dept", false, 2, &id2));
  EXPECT_EQ(id1, id2);  // shared first link
  FR_ASSERT_OK(registry.InternLink("Emp1.dept", "Emp1", 1, "EMP", "DEPT",
                                   "dept", false, 3, &id3));
  EXPECT_EQ(id1, id3);
  FR_ASSERT_OK(registry.InternLink("Emp1.dept.org", "Emp1", 2, "DEPT", "ORG",
                                   "org", false, 3, &id4));
  EXPECT_NE(id4, id1);
  FR_ASSERT_OK(registry.InternLink("Emp2.dept", "Emp2", 1, "EMP", "DEPT",
                                   "dept", false, 4, &id5));
  EXPECT_NE(id5, id1);  // different head set: no sharing
  const LinkInfo* link = registry.GetLink(id1);
  ASSERT_NE(link, nullptr);
  EXPECT_EQ(link->path_ids, (std::vector<uint16_t>{1, 2, 3}));
}

TEST(LinkRegistryTest, CollapsedLinksNeverShare) {
  LinkRegistry registry;
  uint8_t a, b;
  FR_ASSERT_OK(registry.InternLink("Emp1.dept.org", "Emp1", 2, "EMP", "ORG",
                                   "org", true, 1, &a));
  FR_ASSERT_OK(registry.InternLink("Emp1.dept.org", "Emp1", 2, "EMP", "ORG",
                                   "org", true, 2, &b));
  EXPECT_NE(a, b);
}

TEST(LinkRegistryTest, ReleaseFreesOrphanedIdsForReuse) {
  LinkRegistry registry;
  uint8_t id1, id2;
  FR_ASSERT_OK(registry.InternLink("Emp1.dept", "Emp1", 1, "EMP", "DEPT",
                                   "dept", false, 1, &id1));
  FR_ASSERT_OK(registry.InternLink("Emp1.dept", "Emp1", 1, "EMP", "DEPT",
                                   "dept", false, 2, &id2));
  std::vector<uint8_t> freed = registry.ReleasePathLinks(1);
  EXPECT_TRUE(freed.empty());  // still shared with path 2
  freed = registry.ReleasePathLinks(2);
  ASSERT_EQ(freed.size(), 1u);
  EXPECT_EQ(freed[0], id1);
  EXPECT_EQ(registry.GetLink(id1), nullptr);
}

// --- Replication path & index registration -------------------------------------

TEST_F(CatalogTest, ReplicationPathRegistry) {
  ReplicationPathInfo info;
  info.spec = "Emp1.dept.name";
  FR_ASSERT_OK(catalog_.BindPath(info.spec, &info.bound));
  uint16_t id;
  FR_ASSERT_OK(catalog_.RegisterReplicationPath(info, &id));
  EXPECT_NE(catalog_.GetPath(id), nullptr);
  EXPECT_NE(catalog_.FindPathBySpec("Emp1.dept.name"), nullptr);
  EXPECT_EQ(catalog_.PathsHeadedAt("Emp1"), (std::vector<uint16_t>{id}));
  EXPECT_TRUE(catalog_.PathsHeadedAt("Emp2").empty());
  // Duplicate spec rejected.
  uint16_t id2;
  EXPECT_EQ(catalog_.RegisterReplicationPath(info, &id2).code(),
            StatusCode::kAlreadyExists);
  FR_ASSERT_OK(catalog_.DropReplicationPath(id));
  EXPECT_EQ(catalog_.GetPath(id), nullptr);
}

TEST_F(CatalogTest, IndexRegistry) {
  IndexInfo info;
  info.name = "emp_salary";
  info.set_name = "Emp1";
  info.key_expr = "salary";
  info.attr_index = 2;
  FR_ASSERT_OK(catalog_.RegisterIndex(info));
  EXPECT_NE(catalog_.FindIndexByName("emp_salary"), nullptr);
  EXPECT_NE(catalog_.FindIndex("Emp1", "salary"), nullptr);
  EXPECT_EQ(catalog_.FindIndex("Emp1", "age"), nullptr);
  EXPECT_EQ(catalog_.IndexesOnSet("Emp1").size(), 1u);
  FR_ASSERT_OK(catalog_.DropIndex("emp_salary"));
  EXPECT_EQ(catalog_.FindIndexByName("emp_salary"), nullptr);
}

TEST_F(CatalogTest, DescribeMentionsEverything) {
  std::string description = catalog_.Describe();
  EXPECT_NE(description.find("define type EMP"), std::string::npos);
  EXPECT_NE(description.find("create Emp1"), std::string::npos);
}

TEST(PathParseTest, ParseExpression) {
  std::string set;
  std::vector<std::string> components;
  FR_ASSERT_OK(ParsePathExpression("Emp1.dept.org.name", &set, &components));
  EXPECT_EQ(set, "Emp1");
  EXPECT_EQ(components,
            (std::vector<std::string>{"dept", "org", "name"}));
  EXPECT_FALSE(ParsePathExpression("Emp1", &set, &components).ok());
  EXPECT_FALSE(ParsePathExpression("Emp1.2bad", &set, &components).ok());
  EXPECT_FALSE(ParsePathExpression("", &set, &components).ok());
}

}  // namespace
}  // namespace fieldrep
