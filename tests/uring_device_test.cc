// UringDevice suite: round trips over the ring and the synchronous
// fallback, O_DIRECT (with bounce-buffer handling for unaligned callers),
// the asynchronous batch API and its per-page error reporting, decorator
// transparency (fault injection / corruption over the async device), and
// the buffer pool's async write-back/prefetch contract under injected
// completion errors: failed frames stay dirty and the error names them.

#include <unistd.h>

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdio>
#include <cstring>
#include <mutex>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "common/strings.h"
#include "gtest/gtest.h"
#include "storage/buffer_pool.h"
#include "storage/corrupting_device.h"
#include "storage/fault_injecting_device.h"
#include "storage/memory_device.h"
#include "storage/uring_device.h"
#include "telemetry/metrics.h"
#include "test_util.h"

namespace fieldrep {
namespace {

std::string TempPath(const char* tag) {
  return StringPrintf("/tmp/fieldrep_uring_test_%s_%d.db", tag,
                      static_cast<int>(::getpid()));
}

/// Opens a device on a fresh backing file, failing the test on error.
void OpenFresh(UringDevice* device, const std::string& path,
               const UringDevice::Options& options = {}) {
  std::remove(path.c_str());
  Status s = device->Open(path, options);
  ASSERT_TRUE(s.ok()) << s.ToString();
}

/// Allocates `n` pages and fills page i with byte i via the batch API.
std::vector<PageId> FillPages(UringDevice* device, int n) {
  std::vector<PageId> ids;
  std::vector<PageBuffer> storage;
  std::vector<const uint8_t*> bufs;
  for (int i = 0; i < n; ++i) {
    PageId id;
    EXPECT_TRUE(device->AllocatePage(&id).ok());
    ids.push_back(id);
    storage.push_back(AllocatePageBuffer());
    std::memset(storage.back().get(), i, kPageSize);
    bufs.push_back(storage.back().get());
  }
  EXPECT_TRUE(device->WritePages(ids, bufs).ok());
  return ids;
}

void ExpectRoundTrip(UringDevice* device, const std::vector<PageId>& ids) {
  std::vector<PageBuffer> storage;
  std::vector<uint8_t*> bufs;
  for (size_t i = 0; i < ids.size(); ++i) {
    storage.push_back(AllocatePageBuffer());
    bufs.push_back(storage.back().get());
  }
  Status s = device->ReadPages(ids, bufs);
  ASSERT_TRUE(s.ok()) << s.ToString();
  for (size_t i = 0; i < ids.size(); ++i) {
    EXPECT_EQ(bufs[i][0], static_cast<uint8_t>(i)) << "page " << ids[i];
    EXPECT_EQ(bufs[i][kPageSize - 1], static_cast<uint8_t>(i));
  }
}

TEST(UringDeviceTest, BatchedWriteReadRoundTrip) {
  UringDevice device;
  const std::string path = TempPath("roundtrip");
  OpenFresh(&device, path);
  std::vector<PageId> ids = FillPages(&device, 64);
  EXPECT_EQ(device.page_count(), 64u);
  ExpectRoundTrip(&device, ids);
  // The ring actually carried the batches when it is active.
  if (device.ring_active()) {
    EXPECT_GT(device.stats().sqes_submitted, 0u);
    EXPECT_EQ(device.stats().cqes_harvested, device.stats().sqes_submitted);
    EXPECT_EQ(device.stats().cqe_errors, 0u);
    EXPECT_EQ(device.stats().inflight, 0u);
  }
  FR_ASSERT_OK(device.Sync());
  FR_ASSERT_OK(device.Close());
  std::remove(path.c_str());
}

TEST(UringDeviceTest, SinglePageOpsAndReopenPersistence) {
  const std::string path = TempPath("single");
  PageId id;
  {
    UringDevice device;
    OpenFresh(&device, path);
    FR_ASSERT_OK(device.AllocatePage(&id));
    PageBuffer buf = AllocatePageBuffer();
    std::memset(buf.get(), 0x5A, kPageSize);
    FR_ASSERT_OK(device.WritePage(id, buf.get()));
    FR_ASSERT_OK(device.Close());
  }
  {
    UringDevice device;
    FR_ASSERT_OK(device.Open(path));
    EXPECT_EQ(device.page_count(), 1u);
    PageBuffer buf = AllocatePageBuffer();
    FR_ASSERT_OK(device.ReadPage(id, buf.get()));
    EXPECT_EQ(buf.get()[100], 0x5A);
    FR_ASSERT_OK(device.Close());
  }
  std::remove(path.c_str());
}

TEST(UringDeviceTest, OutOfRangeReadReportsThePage) {
  UringDevice device;
  const std::string path = TempPath("oob");
  OpenFresh(&device, path);
  FillPages(&device, 2);
  PageBuffer buf = AllocatePageBuffer();
  Status s = device.ReadPage(static_cast<PageId>(99), buf.get());
  ASSERT_FALSE(s.ok());
  EXPECT_NE(s.ToString().find("99"), std::string::npos) << s.ToString();
  // Batch with one bad page: the batch fails and names it.
  std::vector<PageId> ids = {0, 99};
  PageBuffer b2 = AllocatePageBuffer();
  std::vector<uint8_t*> bufs = {buf.get(), b2.get()};
  s = device.ReadPages(ids, bufs);
  EXPECT_FALSE(s.ok());
  FR_ASSERT_OK(device.Close());
  std::remove(path.c_str());
}

TEST(UringDeviceTest, ODirectRoundTripWithUnalignedBounce) {
  UringDevice device;
  UringDevice::Options options;
  options.use_o_direct = true;
  const std::string path = TempPath("odirect");
  std::remove(path.c_str());
  FR_ASSERT_OK(device.Open(path, options));
  // The filesystem may refuse O_DIRECT (tmpfs does); either way the
  // device must work. Log which mode actually ran.
  std::printf("o_direct=%d ring_active=%d\n", device.o_direct(),
              device.ring_active());
  std::vector<PageId> ids = FillPages(&device, 8);
  ExpectRoundTrip(&device, ids);

  // Unaligned caller buffer: must bounce, not fail.
  std::vector<uint8_t> raw(kPageSize + 1);
  uint8_t* unaligned = raw.data() + 1;
  FR_ASSERT_OK(device.ReadPage(ids[3], unaligned));
  EXPECT_EQ(unaligned[0], 3);
  std::memset(unaligned, 0xEE, kPageSize);
  FR_ASSERT_OK(device.WritePage(ids[3], unaligned));
  PageBuffer aligned = AllocatePageBuffer();
  FR_ASSERT_OK(device.ReadPage(ids[3], aligned.get()));
  EXPECT_EQ(aligned.get()[0], 0xEE);
  if (device.o_direct()) {
    EXPECT_GT(device.stats().bounce_copies, 0u);
  }
  FR_ASSERT_OK(device.Close());
  std::remove(path.c_str());
}

TEST(UringDeviceTest, ForceFallbackRunsEverythingSynchronously) {
  UringDevice device;
  UringDevice::Options options;
  options.force_fallback = true;
  const std::string path = TempPath("fallback");
  std::remove(path.c_str());
  FR_ASSERT_OK(device.Open(path, options));
  EXPECT_FALSE(device.ring_active());
  EXPECT_FALSE(device.async_io());
  std::vector<PageId> ids = FillPages(&device, 16);
  ExpectRoundTrip(&device, ids);
  EXPECT_EQ(device.stats().sqes_submitted, 0u);

  // The default *Async implementations complete inline with OK statuses.
  std::vector<PageBuffer> storage;
  std::vector<uint8_t*> bufs;
  for (size_t i = 0; i < ids.size(); ++i) {
    storage.push_back(AllocatePageBuffer());
    bufs.push_back(storage.back().get());
  }
  bool completed = false;
  device.ReadPagesAsync(ids, bufs, [&](std::span<const Status> statuses) {
    completed = true;
    for (const Status& s : statuses) EXPECT_TRUE(s.ok()) << s.ToString();
  });
  EXPECT_TRUE(completed);  // synchronous fallback completes before return
  EXPECT_EQ(bufs[7][0], 7);
  FR_ASSERT_OK(device.Close());
  std::remove(path.c_str());
}

TEST(UringDeviceTest, AsyncBatchCompletesOnReaperThread) {
  UringDevice device;
  const std::string path = TempPath("async");
  OpenFresh(&device, path);
  if (!device.ring_active()) {
    GTEST_SKIP() << "io_uring unavailable on this kernel";
  }
  std::vector<PageId> ids = FillPages(&device, 32);

  std::vector<PageBuffer> storage;
  std::vector<uint8_t*> bufs;
  for (size_t i = 0; i < ids.size(); ++i) {
    storage.push_back(AllocatePageBuffer());
    bufs.push_back(storage.back().get());
  }
  std::mutex mu;
  std::condition_variable cv;
  bool done_flag = false;
  std::vector<Status> got;
  device.ReadPagesAsync(ids, bufs, [&](std::span<const Status> statuses) {
    std::lock_guard<std::mutex> lock(mu);
    got.assign(statuses.begin(), statuses.end());
    done_flag = true;
    cv.notify_all();
  });
  {
    std::unique_lock<std::mutex> lock(mu);
    ASSERT_TRUE(cv.wait_for(lock, std::chrono::seconds(30),
                            [&] { return done_flag; }));
  }
  ASSERT_EQ(got.size(), ids.size());
  for (size_t i = 0; i < ids.size(); ++i) {
    EXPECT_TRUE(got[i].ok()) << got[i].ToString();
    EXPECT_EQ(bufs[i][0], static_cast<uint8_t>(i));
  }
  FR_ASSERT_OK(device.Close());
  std::remove(path.c_str());
}

TEST(UringDeviceTest, AsyncOutOfRangePageFailsOnlyThatPage) {
  UringDevice device;
  const std::string path = TempPath("asyncerr");
  OpenFresh(&device, path);
  if (!device.ring_active()) {
    GTEST_SKIP() << "io_uring unavailable on this kernel";
  }
  FillPages(&device, 4);

  std::vector<PageId> ids = {0, 1, 777, 3};
  std::vector<PageBuffer> storage;
  std::vector<uint8_t*> bufs;
  for (size_t i = 0; i < ids.size(); ++i) {
    storage.push_back(AllocatePageBuffer());
    bufs.push_back(storage.back().get());
  }
  std::mutex mu;
  std::condition_variable cv;
  bool done_flag = false;
  std::vector<Status> got;
  device.ReadPagesAsync(ids, bufs, [&](std::span<const Status> statuses) {
    std::lock_guard<std::mutex> lock(mu);
    got.assign(statuses.begin(), statuses.end());
    done_flag = true;
    cv.notify_all();
  });
  {
    std::unique_lock<std::mutex> lock(mu);
    ASSERT_TRUE(cv.wait_for(lock, std::chrono::seconds(30),
                            [&] { return done_flag; }));
  }
  ASSERT_EQ(got.size(), 4u);
  EXPECT_TRUE(got[0].ok());
  EXPECT_TRUE(got[1].ok());
  EXPECT_FALSE(got[2].ok());
  EXPECT_NE(got[2].ToString().find("777"), std::string::npos)
      << got[2].ToString();
  EXPECT_TRUE(got[3].ok());
  FR_ASSERT_OK(device.Close());
  std::remove(path.c_str());
}

TEST(UringDeviceTest, MetricsExposeRingState) {
  UringDevice device;
  const std::string path = TempPath("metrics");
  OpenFresh(&device, path);
  FillPages(&device, 8);
  std::vector<MetricSample> samples;
  device.CollectMetrics(&samples);
  bool saw_active = false, saw_latency = false;
  for (const MetricSample& s : samples) {
    if (s.name == "fieldrep_uring_ring_active") {
      saw_active = true;
      EXPECT_EQ(s.value, device.ring_active() ? 1.0 : 0.0);
    }
    if (s.name == "fieldrep_uring_cqe_latency_ns") saw_latency = true;
  }
  EXPECT_TRUE(saw_active);
  EXPECT_TRUE(saw_latency);
  FR_ASSERT_OK(device.Close());
  std::remove(path.c_str());
}

// --- Decorator transparency ---------------------------------------------------

TEST(UringDeviceTest, FaultInjectionDecoratesTheAsyncDevice) {
  UringDevice inner;
  const std::string path = TempPath("fault");
  OpenFresh(&inner, path);
  std::vector<PageId> ids = FillPages(&inner, 6);

  FaultPlan plan;
  FaultInjectingDevice device(&inner, &plan);
  // The decorator inherits the synchronous default batch paths, so its
  // per-page crash semantics survive unchanged over the async device.
  EXPECT_FALSE(device.async_io());

  plan.Arm(3);  // power fails after 3 durable writes
  std::vector<PageBuffer> storage;
  std::vector<const uint8_t*> bufs;
  for (size_t i = 0; i < ids.size(); ++i) {
    storage.push_back(AllocatePageBuffer());
    std::memset(storage.back().get(), 0xC0 + static_cast<int>(i), kPageSize);
    bufs.push_back(storage.back().get());
  }
  Status s = device.WritePages(ids, bufs);
  EXPECT_FALSE(s.ok());

  plan.Reset();  // reboot: the first 3 pages landed, the rest did not
  PageBuffer buf = AllocatePageBuffer();
  FR_ASSERT_OK(device.ReadPage(ids[0], buf.get()));
  EXPECT_EQ(buf.get()[0], 0xC0);
  FR_ASSERT_OK(device.ReadPage(ids[5], buf.get()));
  EXPECT_EQ(buf.get()[0], 5);  // original fill, crash blocked the rewrite
  FR_ASSERT_OK(inner.Close());
  std::remove(path.c_str());
}

TEST(UringDeviceTest, CorruptionDecoratesTheAsyncDevice) {
  UringDevice inner;
  const std::string path = TempPath("corrupt");
  OpenFresh(&inner, path);
  std::vector<PageId> ids = FillPages(&inner, 3);

  CorruptingDevice device(&inner);
  FR_ASSERT_OK(device.CorruptByte(ids[1], 10, 0xFF));
  PageBuffer buf = AllocatePageBuffer();
  FR_ASSERT_OK(device.ReadPage(ids[1], buf.get()));
  EXPECT_EQ(buf.get()[10], static_cast<uint8_t>(1 ^ 0xFF));
  EXPECT_EQ(buf.get()[11], 1);  // neighbours untouched
  FR_ASSERT_OK(inner.Close());
  std::remove(path.c_str());
}

// --- Buffer-pool async contract under injected completion errors --------------

/// Asynchronous test double: a MemoryDevice whose batch operations
/// complete on a background thread, with injectable per-page completion
/// errors — the deterministic stand-in for an io_uring CQE error.
class AsyncFailingDevice : public MemoryDevice {
 public:
  ~AsyncFailingDevice() override {
    for (std::thread& t : threads_) t.join();
  }

  bool async_io() const override { return true; }

  void FailPage(PageId page_id) { fail_pages_.insert(page_id); }
  void ClearFailures() { fail_pages_.clear(); }

  void ReadPagesAsync(std::vector<PageId> page_ids,
                      std::vector<uint8_t*> bufs, AsyncDone done) override {
    threads_.emplace_back([this, ids = std::move(page_ids),
                           bufs = std::move(bufs), done = std::move(done)] {
      std::vector<Status> statuses(ids.size());
      for (size_t i = 0; i < ids.size(); ++i) {
        statuses[i] = fail_pages_.count(ids[i]) != 0
                          ? Status::IOError(StringPrintf(
                                "injected CQE error on page %u", ids[i]))
                          : ReadPage(ids[i], bufs[i]);
      }
      done(statuses);
    });
  }

  void WritePagesAsync(std::vector<PageId> page_ids,
                       std::vector<const uint8_t*> bufs,
                       AsyncDone done) override {
    threads_.emplace_back([this, ids = std::move(page_ids),
                           bufs = std::move(bufs), done = std::move(done)] {
      std::vector<Status> statuses(ids.size());
      for (size_t i = 0; i < ids.size(); ++i) {
        statuses[i] = fail_pages_.count(ids[i]) != 0
                          ? Status::IOError(StringPrintf(
                                "injected CQE error on page %u", ids[i]))
                          : WritePage(ids[i], bufs[i]);
      }
      done(statuses);
    });
  }

 private:
  /// Written only while no batch is in flight (test-sequenced).
  std::set<PageId> fail_pages_;
  std::vector<std::thread> threads_;
};

std::vector<PageId> SeedPoolPages(BufferPool* pool, int n) {
  std::vector<PageId> pages;
  for (int i = 0; i < n; ++i) {
    PageGuard guard;
    EXPECT_TRUE(pool->NewPage(&guard).ok());
    guard.data()[0] = static_cast<uint8_t>(i);
    guard.MarkDirty();
    pages.push_back(guard.page_id());
  }
  EXPECT_TRUE(pool->EvictAll().ok());
  pool->ResetStats();
  return pages;
}

TEST(AsyncWriteBackTest, FailedCompletionKeepsFramesDirtyAndNamesPages) {
  AsyncFailingDevice device;
  BufferPool pool(&device, 16);
  std::vector<PageId> pages = SeedPoolPages(&pool, 6);

  for (int i = 0; i < 6; ++i) {
    PageGuard guard;
    FR_ASSERT_OK(pool.FetchPage(pages[i], &guard));
    guard.data()[4] = static_cast<uint8_t>(0xB0 + i);
    guard.MarkDirty();
  }
  pool.ResetStats();
  device.FailPage(pages[2]);

  Status s = pool.FlushAll();
  ASSERT_FALSE(s.ok());
  // The error names the failed page; frames of failed completions stay
  // dirty, successfully written ones are clean.
  EXPECT_NE(s.ToString().find(StringPrintf("%u", pages[2])),
            std::string::npos)
      << s.ToString();
  EXPECT_NE(s.ToString().find("stay dirty"), std::string::npos)
      << s.ToString();
  std::vector<PageId> dirty = pool.DirtyPageIds();
  ASSERT_EQ(dirty.size(), 1u);
  EXPECT_EQ(dirty[0], pages[2]);
  // Accounting: only completed pages were charged, all submissions were
  // async.
  EXPECT_EQ(pool.stats().disk_writes, 5u);
  EXPECT_EQ(pool.stats().async_writes, 6u);

  // "Repair the device" and retry: the still-dirty frame completes the
  // flush and the media holds the new bytes.
  device.ClearFailures();
  FR_ASSERT_OK(pool.FlushAll());
  EXPECT_TRUE(pool.DirtyPageIds().empty());
  EXPECT_EQ(pool.stats().disk_writes, 6u);
  FR_ASSERT_OK(pool.EvictAll());
  for (int i = 0; i < 6; ++i) {
    PageGuard guard;
    FR_ASSERT_OK(pool.FetchPage(pages[i], &guard));
    EXPECT_EQ(guard.data()[4], static_cast<uint8_t>(0xB0 + i));
  }
}

TEST(AsyncPrefetchTest, CompletionInstallsPagesWithLogicalChargeDeferred) {
  AsyncFailingDevice device;
  BufferPool pool(&device, 16);
  std::vector<PageId> pages = SeedPoolPages(&pool, 5);

  FR_ASSERT_OK(pool.Prefetch(pages));
  pool.DrainAsyncIo();  // wait for the completion to install the frames
  EXPECT_EQ(pool.pages_cached(), 5u);
  EXPECT_EQ(pool.stats().async_reads, 5u);
  EXPECT_EQ(pool.stats().batched_reads, 5u);
  EXPECT_EQ(pool.stats().disk_reads, 0u);  // charge deferred to first fetch

  PageGuard guard;
  FR_ASSERT_OK(pool.FetchPage(pages[1], &guard));
  EXPECT_EQ(guard.data()[0], 1);
  EXPECT_EQ(pool.stats().disk_reads, 1u);
  EXPECT_EQ(pool.stats().hits, 0u);
}

TEST(AsyncPrefetchTest, FailedCompletionInstallsNothingForThatPage) {
  AsyncFailingDevice device;
  BufferPool pool(&device, 16);
  std::vector<PageId> pages = SeedPoolPages(&pool, 4);

  device.FailPage(pages[1]);
  FR_ASSERT_OK(pool.Prefetch(pages));  // fire-and-forget: no error surface
  pool.DrainAsyncIo();
  EXPECT_EQ(pool.PeekPage(pages[1]), nullptr);
  EXPECT_NE(pool.PeekPage(pages[0]), nullptr);
  EXPECT_NE(pool.PeekPage(pages[2]), nullptr);
  EXPECT_EQ(pool.stats().batched_reads, 3u);  // only installed pages count

  // On-demand fetch of the failed page behaves as if never prefetched.
  device.ClearFailures();
  PageGuard guard;
  FR_ASSERT_OK(pool.FetchPage(pages[1], &guard));
  EXPECT_EQ(guard.data()[0], 1);
  EXPECT_EQ(pool.stats().disk_reads, 1u);
}

}  // namespace
}  // namespace fieldrep
