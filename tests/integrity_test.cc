// Integrity-checker suite: proves Database::CheckIntegrity (the engine of
// fieldrep_fsck) detects each corruption class at the layer it belongs to
// — and stays silent on healthy databases, including one that just went
// through crash recovery.
//
// The database is opened over a CorruptingDevice so each test can reach
// past the engine and damage the stored page images directly, the way
// failing media would. Structural corruptions are re-stamped with a valid
// page checksum afterwards, so they survive debug-build read verification
// and must be caught by the structural invariant that actually covers
// them; the checksum test omits the restamp.

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "check/check_report.h"
#include "gtest/gtest.h"
#include "replication/link_object.h"
#include "storage/corrupting_device.h"
#include "storage/fault_injecting_device.h"
#include "storage/memory_device.h"
#include "storage/page.h"
#include "test_util.h"

namespace fieldrep {
namespace {

std::string Padded(const std::string& s, size_t n = 20) {
  std::string out = s;
  out.resize(n, '\0');
  return out;
}

class IntegrityTest : public ::testing::Test {
 protected:
  void SetUp() override {
    Database::Options options;
    options.buffer_pool_frames = 512;
    options.device = &dev_;
    auto db_or = Database::Open(options);
    ASSERT_TRUE(db_or.ok()) << db_or.status().ToString();
    db_ = std::move(db_or).value();
    BuildFixture();
  }

  /// ORG/DEPT/EMP chain with an in-place path (Emp1.dept.name), a separate
  /// path (Emp1.dept.budget), and a salary index; checkpointed and with a
  /// cold (empty) buffer pool, so every page sits checksummed on dev_.
  void BuildFixture() {
    FR_ASSERT_OK(db_->DefineType(
        TypeDescriptor("ORG", {CharAttr("name", 20), Int32Attr("budget")})));
    FR_ASSERT_OK(db_->DefineType(
        TypeDescriptor("DEPT", {CharAttr("name", 20), Int32Attr("budget"),
                                RefAttr("org", "ORG")})));
    FR_ASSERT_OK(db_->DefineType(
        TypeDescriptor("EMP", {CharAttr("name", 20), Int32Attr("salary"),
                               RefAttr("dept", "DEPT")})));
    FR_ASSERT_OK(db_->CreateSet("Org", "ORG"));
    FR_ASSERT_OK(db_->CreateSet("Dept", "DEPT"));
    FR_ASSERT_OK(db_->CreateSet("Emp1", "EMP"));

    std::vector<Oid> orgs(2), depts(4);
    for (int i = 0; i < 2; ++i) {
      FR_ASSERT_OK(db_->Insert(
          "Org",
          Object(0, {Value(Padded("org" + std::to_string(i))),
                     Value(int32_t{1000 * i})}),
          &orgs[i]));
    }
    for (int i = 0; i < 4; ++i) {
      FR_ASSERT_OK(db_->Insert(
          "Dept",
          Object(0, {Value(Padded("dept" + std::to_string(i))),
                     Value(int32_t{10 * i}), Value(orgs[i % 2])}),
          &depts[i]));
    }
    emps_.resize(12);
    for (int i = 0; i < 12; ++i) {
      FR_ASSERT_OK(db_->Insert(
          "Emp1",
          Object(0, {Value(Padded("emp" + std::to_string(i))),
                     Value(int32_t{1000 * i}), Value(depts[i % 4])}),
          &emps_[i]));
    }

    FR_ASSERT_OK(db_->Replicate("Emp1.dept.name", {}));
    ReplicateOptions separate;
    separate.strategy = ReplicationStrategy::kSeparate;
    FR_ASSERT_OK(db_->Replicate("Emp1.dept.budget", separate));
    FR_ASSERT_OK(db_->BuildIndex("emp_salary", "Emp1", "salary"));
    FR_ASSERT_OK(db_->Checkpoint());
    FR_ASSERT_OK(db_->ColdStart());
  }

  CheckReport Check() {
    CheckReport report;
    Status s = db_->CheckIntegrity(&report);
    EXPECT_TRUE(s.ok()) << s.ToString();
    return report;
  }

  static bool HasFinding(const CheckReport& report, CheckSeverity severity,
                         CheckLayer layer, const std::string& substring) {
    for (const CheckFinding& f : report.findings) {
      if (f.severity == severity && f.layer == layer &&
          f.message.find(substring) != std::string::npos) {
        return true;
      }
    }
    return false;
  }

  MemoryDevice disk_;
  CorruptingDevice dev_{&disk_};
  std::unique_ptr<Database> db_;
  std::vector<Oid> emps_;
};

TEST_F(IntegrityTest, CleanDatabaseHasNoFindings) {
  CheckReport report = Check();
  EXPECT_EQ(report.error_count(), 0u) << report.ToString();
  EXPECT_EQ(report.warning_count(), 0u) << report.ToString();
}

// Corruption class 1: slot directory damage -> storage layer.
TEST_F(IntegrityTest, DetectsBadSlotDirectory) {
  auto set = db_->GetSet("Emp1");
  ASSERT_TRUE(set.ok());
  const PageId page = set.value()->file().first_page();
  // Slot 0's offset field lives at the start of the slot directory. Point
  // it at the last byte of the page so the cell runs off the end.
  const uint8_t bogus[2] = {0xFF, 0x0F};  // 4095, little-endian
  FR_ASSERT_OK(dev_.OverwriteBytes(page, kPageHeaderBytes, bogus, 2));
  FR_ASSERT_OK(dev_.RestampChecksum(page));

  CheckReport report = Check();
  EXPECT_TRUE(HasFinding(report, CheckSeverity::kError, CheckLayer::kStorage,
                         "cell"))
      << report.ToString();
}

// Corruption class 2: B+ tree key ordering broken -> index layer.
TEST_F(IntegrityTest, DetectsBrokenBTreeOrder) {
  auto tree = db_->indexes().GetIndex("emp_salary");
  ASSERT_TRUE(tree.ok());
  const PageId root = tree.value()->root();
  // The salary index holds 12 entries in one leaf; entries start right
  // after the 40-byte header with the 8-byte key first. Overwrite entry
  // 0's key with INT64_MAX so it orders after every real salary.
  const uint8_t huge[8] = {0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0x7F};
  FR_ASSERT_OK(dev_.OverwriteBytes(root, kPageHeaderBytes, huge, 8));
  FR_ASSERT_OK(dev_.RestampChecksum(root));

  CheckReport report = Check();
  bool index_error = false;
  for (const CheckFinding& f : report.findings) {
    if (f.severity == CheckSeverity::kError && f.layer == CheckLayer::kIndex)
      index_error = true;
  }
  EXPECT_TRUE(index_error) << report.ToString();
}

// Corruption class 3: a head's link ref dangles -> replication layer.
TEST_F(IntegrityTest, DetectsDanglingLinkObject) {
  const ReplicationPathInfo* path =
      db_->catalog().FindPathBySpec("Emp1.dept.name");
  ASSERT_NE(path, nullptr);
  ASSERT_FALSE(path->link_sequence.empty());
  const LinkInfo* link =
      db_->catalog().link_registry().GetLink(path->link_sequence[0]);
  ASSERT_NE(link, nullptr);
  auto link_file = db_->GetAuxFile(link->link_set_file);
  ASSERT_TRUE(link_file.ok());
  std::vector<Oid> records;
  FR_ASSERT_OK(link_file.value()->ListOids(&records));
  ASSERT_FALSE(records.empty());
  // Delete a dept's link object out from under the engine: every emp whose
  // LinkRef pointed at it now dangles.
  FR_ASSERT_OK(link_file.value()->Delete(records[0]));

  CheckReport report = Check();
  EXPECT_GT(report.error_count(), 0u);
  bool replication_error = false;
  for (const CheckFinding& f : report.findings) {
    if (f.severity == CheckSeverity::kError &&
        f.layer == CheckLayer::kReplication) {
      replication_error = true;
    }
  }
  EXPECT_TRUE(replication_error) << report.ToString();
}

// Corruption class 4: hidden replica value desynchronized -> replication.
TEST_F(IntegrityTest, DetectsStaleReplicaValue) {
  const ReplicationPathInfo* path =
      db_->catalog().FindPathBySpec("Emp1.dept.name");
  ASSERT_NE(path, nullptr);
  auto set = db_->GetSet("Emp1");
  ASSERT_TRUE(set.ok());
  Object object;
  FR_ASSERT_OK(set.value()->Read(emps_[0], &object));
  object.SetReplicaValues(path->id, {Value(Padded("tampered"))});
  FR_ASSERT_OK(set.value()->Write(emps_[0], object));

  CheckReport report = Check();
  EXPECT_TRUE(HasFinding(report, CheckSeverity::kError,
                         CheckLayer::kReplication, "stale replica"))
      << report.ToString();
}

// Corruption class 5: S' physical order decayed -> replication warning.
// The records and every backpointer are surgically kept consistent, so the
// ONLY deviation is ordering — a performance bug (Section 5 clustering),
// not a correctness one, hence kWarning with zero errors.
TEST_F(IntegrityTest, DetectsMisorderedReplicaSet) {
  const ReplicationPathInfo* path =
      db_->catalog().FindPathBySpec("Emp1.dept.budget");
  ASSERT_NE(path, nullptr);
  ASSERT_EQ(path->strategy, ReplicationStrategy::kSeparate);
  auto file = db_->GetAuxFile(path->replica_set_file);
  ASSERT_TRUE(file.ok());
  std::vector<Oid> records;
  FR_ASSERT_OK(file.value()->ListOids(&records));
  ASSERT_GE(records.size(), 2u);

  // Swap the first two records' payloads...
  std::string payload0, payload1;
  FR_ASSERT_OK(file.value()->Read(records[0], &payload0));
  FR_ASSERT_OK(file.value()->Read(records[1], &payload1));
  FR_ASSERT_OK(file.value()->Update(records[0], payload1));
  FR_ASSERT_OK(file.value()->Update(records[1], payload0));

  // ...then repoint the terminals' canonical replica refs...
  ReplicaRecord rec0, rec1;
  FR_ASSERT_OK(rec0.Deserialize(payload1));  // now stored at records[0]
  FR_ASSERT_OK(rec1.Deserialize(payload0));  // now stored at records[1]
  auto repoint = [&](const Oid& owner, const Oid& replica_oid) {
    Object obj;
    FR_ASSERT_OK(db_->replication().ops().ReadObject(owner, &obj));
    ReplicaRefSlot slot = *obj.FindReplicaRef(path->id);
    slot.replica_oid = replica_oid;
    obj.SetReplicaRef(slot);
    FR_ASSERT_OK(db_->replication().ops().WriteObject(owner, obj));
  };
  repoint(rec0.owner, records[0]);
  repoint(rec1.owner, records[1]);

  // ...and every head's ref, via its dept.
  auto emp_set = db_->GetSet("Emp1");
  ASSERT_TRUE(emp_set.ok());
  const int dept_attr = emp_set.value()->type().FindAttribute("dept");
  ASSERT_GE(dept_attr, 0);
  for (const Oid& emp : emps_) {
    Object head;
    FR_ASSERT_OK(emp_set.value()->Read(emp, &head));
    if (head.FindReplicaRef(path->id) == nullptr) continue;
    Object dept;
    FR_ASSERT_OK(db_->replication().ops().ReadObject(
        head.field(dept_attr).as_ref(), &dept));
    const ReplicaRefSlot* dept_slot = dept.FindReplicaRef(path->id);
    ASSERT_NE(dept_slot, nullptr);
    ReplicaRefSlot slot = *head.FindReplicaRef(path->id);
    slot.replica_oid = dept_slot->replica_oid;
    head.SetReplicaRef(slot);
    FR_ASSERT_OK(emp_set.value()->Write(emp, head));
  }

  CheckReport report = Check();
  EXPECT_EQ(report.error_count(), 0u) << report.ToString();
  EXPECT_TRUE(HasFinding(report, CheckSeverity::kWarning,
                         CheckLayer::kReplication, "order"))
      << report.ToString();
}

// Corruption class 6: bit rot the checksum catches -> storage layer.
TEST_F(IntegrityTest, DetectsBadPageChecksum) {
  auto set = db_->GetSet("Dept");
  ASSERT_TRUE(set.ok());
  const PageId page = set.value()->file().first_page();
  // Flip one payload bit and deliberately do NOT restamp: the stored
  // checksum no longer matches.
  FR_ASSERT_OK(dev_.CorruptByte(page, kPageSize - 100, 0x40));

  CheckReport report = Check();
  EXPECT_TRUE(HasFinding(report, CheckSeverity::kError, CheckLayer::kStorage,
                         "checksum"))
      << report.ToString();
}

// A database that just crashed mid-update and recovered from its WAL must
// check clean: recovery replays committed work atomically and restamps
// page checksums.
TEST(IntegrityRecoveryTest, CleanAfterCrashRecovery) {
  MemoryDevice disk, log_disk;
  FaultPlan plan;
  FaultInjectingDevice db_dev{&disk, &plan};
  FaultInjectingDevice log_dev{&log_disk, &plan};

  auto open = [&]() {
    Database::Options options;
    options.buffer_pool_frames = 256;
    options.device = &db_dev;
    options.wal_device = &log_dev;
    options.enable_wal = true;
    auto db_or = Database::Open(options);
    EXPECT_TRUE(db_or.ok()) << db_or.status().ToString();
    return std::move(db_or).value();
  };

  Oid dept0, emp_oid;
  {
    auto db = open();
    FR_ASSERT_OK(db->DefineType(
        TypeDescriptor("DEPT", {CharAttr("name", 20)})));
    FR_ASSERT_OK(db->DefineType(TypeDescriptor(
        "EMP", {CharAttr("name", 20), RefAttr("dept", "DEPT")})));
    FR_ASSERT_OK(db->CreateSet("Dept", "DEPT"));
    FR_ASSERT_OK(db->CreateSet("Emp1", "EMP"));
    FR_ASSERT_OK(db->Insert("Dept", Object(0, {Value(Padded("sales"))}),
                            &dept0));
    for (int i = 0; i < 6; ++i) {
      FR_ASSERT_OK(db->Insert(
          "Emp1",
          Object(0, {Value(Padded("emp" + std::to_string(i))),
                     Value(dept0)}),
          &emp_oid));
    }
    FR_ASSERT_OK(db->Replicate("Emp1.dept.name", {}));
    FR_ASSERT_OK(db->Checkpoint());

    // Crash partway through a replicated update: the propagation touches
    // the dept, every emp's hidden slot, and the log.
    plan.Arm(3, /*torn=*/true);
    Status s = db->Update("Dept", dept0, "name", Value(Padded("renamed")));
    (void)s;  // fails if the crash tripped mid-update; both outcomes valid
  }

  plan.Reset();  // reboot
  auto db = open();
  CheckReport report;
  FR_ASSERT_OK(db->CheckIntegrity(&report));
  EXPECT_EQ(report.error_count(), 0u) << report.ToString();
  EXPECT_EQ(report.warning_count(), 0u) << report.ToString();
}

}  // namespace
}  // namespace fieldrep
