// Tests for the Section 8 future-work extensions: deferred propagation
// ("updates are not propagated until needed") and inverse functions /
// bidirectional reference attributes via inverted paths.

#include "common/random.h"
#include "common/strings.h"
#include "gtest/gtest.h"
#include "test_util.h"

namespace fieldrep {
namespace {

using ::fieldrep::testing::EmployeeFixture;
using ::fieldrep::testing::OpenEmployeeDatabase;
using ::fieldrep::testing::PopulateEmployees;

std::string Padded(const std::string& s, size_t n = 20) {
  std::string out = s;
  out.resize(n, '\0');
  return out;
}

class DeferredPropagationTest : public ::testing::Test {
 protected:
  void SetUp() override {
    db_ = OpenEmployeeDatabase();
    fixture_ = PopulateEmployees(db_.get(), 2, 4, 20);
    ReplicateOptions options;
    options.deferred = true;
    FR_ASSERT_OK(db_->Replicate("Emp1.dept.name", options));
    path_ = db_->catalog().FindPathBySpec("Emp1.dept.name");
    ASSERT_NE(path_, nullptr);
    EXPECT_TRUE(path_->deferred);
  }

  Value HeadReplica(const Oid& head) {
    Object object;
    EXPECT_TRUE(db_->Get("Emp1", head, &object).ok());
    const ReplicaValueSlot* slot = object.FindReplicaValues(path_->id);
    return slot == nullptr || slot->values.empty() ? Value::Null()
                                                   : slot->values[0];
  }

  std::unique_ptr<Database> db_;
  EmployeeFixture fixture_;
  const ReplicationPathInfo* path_ = nullptr;
};

TEST_F(DeferredPropagationTest, RejectedForSeparate) {
  ReplicateOptions options;
  options.deferred = true;
  options.strategy = ReplicationStrategy::kSeparate;
  EXPECT_EQ(db_->Replicate("Emp2.dept.name", options).code(),
            StatusCode::kNotSupported);
}

TEST_F(DeferredPropagationTest, UpdateQueuesInsteadOfPropagating) {
  FR_ASSERT_OK(db_->Update("Dept", fixture_.depts[1], "name", Value("lazy")));
  EXPECT_EQ(db_->replication().pending_propagation_count(), 1u);
  // Heads still hold the stale value.
  EXPECT_EQ(HeadReplica(fixture_.emps[1]), Value(Padded("dept1")));
  // Flushing applies it.
  FR_ASSERT_OK(db_->replication().FlushPendingPropagation(path_->id));
  EXPECT_EQ(db_->replication().pending_propagation_count(), 0u);
  EXPECT_EQ(HeadReplica(fixture_.emps[1]), Value(Padded("lazy")));
}

TEST_F(DeferredPropagationTest, RepeatedUpdatesCoalesce) {
  for (int i = 0; i < 10; ++i) {
    FR_ASSERT_OK(db_->Update("Dept", fixture_.depts[0], "name",
                             Value(StringPrintf("v%d", i))));
  }
  // Ten updates, one queue entry.
  EXPECT_EQ(db_->replication().pending_propagation_count(), 1u);
  FR_ASSERT_OK(db_->replication().FlushAllPendingPropagation());
  EXPECT_EQ(HeadReplica(fixture_.emps[0]), Value(Padded("v9")));
}

TEST_F(DeferredPropagationTest, ReadQueryFlushesOnDemand) {
  FR_ASSERT_OK(db_->Update("Dept", fixture_.depts[2], "name", Value("pull")));
  EXPECT_EQ(db_->replication().pending_propagation_count(), 1u);
  // A query that reads through the path triggers the flush, so it always
  // sees fresh values.
  ReadQuery query;
  query.set_name = "Emp1";
  query.projections = {"dept.name"};
  ReadResult result;
  FR_ASSERT_OK(db_->Retrieve(query, &result));
  EXPECT_EQ(db_->replication().pending_propagation_count(), 0u);
  EXPECT_EQ(result.rows[2][0], Value(Padded("pull")));
}

TEST_F(DeferredPropagationTest, PathClauseFlushesToo) {
  FR_ASSERT_OK(db_->BuildIndex("emp_deptname", "Emp1", "dept.name"));
  FR_ASSERT_OK(db_->Update("Dept", fixture_.depts[3], "name", Value("zz")));
  ReadQuery query;
  query.set_name = "Emp1";
  query.projections = {"name"};
  query.predicate = Predicate::Compare("dept.name", CompareOp::kEq,
                                       Value(Padded("zz")));
  ReadResult result;
  FR_ASSERT_OK(db_->Retrieve(query, &result));
  EXPECT_EQ(result.rows.size(), 5u);  // dept3's employees
}

TEST_F(DeferredPropagationTest, VerifyFlushesFirst) {
  FR_ASSERT_OK(db_->Update("Dept", fixture_.depts[0], "name", Value("x")));
  FR_ASSERT_OK(db_->replication().VerifyPathConsistency(path_->id));
  EXPECT_EQ(db_->replication().pending_propagation_count(), 0u);
}

TEST_F(DeferredPropagationTest, RefRetargetStaysCorrectAfterFlush) {
  // Structural maintenance is eager; value refreshes are queued.
  FR_ASSERT_OK(db_->Update("Emp1", fixture_.emps[0], "dept",
                           Value(fixture_.depts[3])));
  FR_ASSERT_OK(db_->replication().FlushAllPendingPropagation());
  FR_ASSERT_OK(db_->replication().VerifyPathConsistency(path_->id));
  EXPECT_EQ(HeadReplica(fixture_.emps[0]), Value(Padded("dept3")));
}

TEST_F(DeferredPropagationTest, DropPathClearsQueue) {
  FR_ASSERT_OK(db_->Update("Dept", fixture_.depts[0], "name", Value("x")));
  EXPECT_EQ(db_->replication().pending_propagation_count(), 1u);
  FR_ASSERT_OK(db_->DropReplication("Emp1.dept.name"));
  EXPECT_EQ(db_->replication().pending_propagation_count(), 0u);
}

TEST_F(DeferredPropagationTest, RandomMixConvergesOnFlush) {
  Random rng(314);
  for (int step = 0; step < 120; ++step) {
    int action = static_cast<int>(rng.Uniform(10));
    if (action < 5) {
      FR_ASSERT_OK(db_->Update("Dept",
                               fixture_.depts[rng.Uniform(4)], "name",
                               Value(StringPrintf("s%d", step))));
    } else if (action < 8) {
      FR_ASSERT_OK(db_->Update("Emp1", fixture_.emps[rng.Uniform(20)],
                               "dept", Value(fixture_.depts[rng.Uniform(4)])));
    } else {
      FR_ASSERT_OK(db_->replication().FlushAllPendingPropagation());
    }
  }
  FR_ASSERT_OK(db_->replication().VerifyPathConsistency(path_->id));
}

TEST(DeferredTwoLevelTest, InteriorRetargetQueues) {
  auto db = OpenEmployeeDatabase();
  auto fixture = PopulateEmployees(db.get(), 2, 4, 20);
  ReplicateOptions options;
  options.deferred = true;
  FR_ASSERT_OK(db->Replicate("Emp1.dept.org.name", options));
  const auto* path = db->catalog().FindPathBySpec("Emp1.dept.org.name");
  FR_ASSERT_OK(
      db->Update("Dept", fixture.depts[0], "org", Value(fixture.orgs[1])));
  EXPECT_GE(db->replication().pending_propagation_count(), 1u);
  FR_ASSERT_OK(db->replication().VerifyPathConsistency(path->id));
  Object head;
  FR_ASSERT_OK(db->Get("Emp1", fixture.emps[0], &head));
  std::string padded = "org1";
  padded.resize(20, '\0');
  EXPECT_EQ(head.FindReplicaValues(path->id)->values[0], Value(padded));
}

// --- Inverse functions -----------------------------------------------------------

class InverseLookupTest : public ::testing::Test {
 protected:
  void SetUp() override {
    db_ = OpenEmployeeDatabase();
    fixture_ = PopulateEmployees(db_.get(), 2, 4, 20);
  }
  std::unique_ptr<Database> db_;
  EmployeeFixture fixture_;
};

TEST_F(InverseLookupTest, FallsBackToScanWithoutLinks) {
  std::vector<Oid> referencers;
  bool via_link = true;
  FR_ASSERT_OK(db_->replication().FindReferencers(
      "Emp1", "dept", fixture_.depts[1], &referencers, &via_link));
  EXPECT_FALSE(via_link);
  EXPECT_EQ(referencers.size(), 5u);
}

TEST_F(InverseLookupTest, UsesLinkObjectsWhenPathExists) {
  FR_ASSERT_OK(db_->Replicate("Emp1.dept.name", {}));
  std::vector<Oid> referencers;
  bool via_link = false;
  FR_ASSERT_OK(db_->replication().FindReferencers(
      "Emp1", "dept", fixture_.depts[1], &referencers, &via_link));
  EXPECT_TRUE(via_link);
  ASSERT_EQ(referencers.size(), 5u);
  // Link-based and scan-based answers agree.
  for (const Oid& emp : referencers) {
    Object object;
    FR_ASSERT_OK(db_->Get("Emp1", emp, &object));
    EXPECT_EQ(object.field(3), Value(fixture_.depts[1]));
  }
  // And they track retargets.
  FR_ASSERT_OK(db_->Update("Emp1", referencers[0], "dept",
                           Value(fixture_.depts[0])));
  FR_ASSERT_OK(db_->replication().FindReferencers(
      "Emp1", "dept", fixture_.depts[1], &referencers, &via_link));
  EXPECT_EQ(referencers.size(), 4u);
}

TEST_F(InverseLookupTest, RejectsNonRefAttribute) {
  std::vector<Oid> referencers;
  EXPECT_FALSE(db_->replication()
                   .FindReferencers("Emp1", "salary", fixture_.depts[0],
                                    &referencers)
                   .ok());
}

TEST_F(InverseLookupTest, UnreferencedTargetYieldsEmpty) {
  FR_ASSERT_OK(db_->Replicate("Emp1.dept.name", {}));
  Oid lonely;
  FR_ASSERT_OK(db_->Insert(
      "Dept",
      Object(0, {Value("lonely"), Value(int32_t{0}), Value(fixture_.orgs[0])}),
      &lonely));
  std::vector<Oid> referencers;
  bool via_link = false;
  FR_ASSERT_OK(db_->replication().FindReferencers("Emp1", "dept", lonely,
                                                  &referencers, &via_link));
  EXPECT_TRUE(via_link);
  EXPECT_TRUE(referencers.empty());
}

// --- Checkpoint / reopen persistence ------------------------------------------

TEST(PersistenceTest, CheckpointAndReopenRestoresEverything) {
  std::string path = ::testing::TempDir() + "/fieldrep_persist.db";
  std::remove(path.c_str());
  Oid fred, toys;
  {
    Database::Options options;
    options.file_path = path;
    auto db_or = Database::Open(options);
    ASSERT_TRUE(db_or.ok()) << db_or.status().ToString();
    auto db = std::move(db_or).value();
    FR_ASSERT_OK(db->DefineType(TypeDescriptor(
        "DEPT", {CharAttr("name", 20), Int32Attr("budget")})));
    FR_ASSERT_OK(db->DefineType(TypeDescriptor(
        "EMP", {CharAttr("name", 20), Int32Attr("salary"),
                RefAttr("dept", "DEPT")})));
    FR_ASSERT_OK(db->CreateSet("Dept", "DEPT"));
    FR_ASSERT_OK(db->CreateSet("Emp1", "EMP"));
    FR_ASSERT_OK(db->Insert(
        "Dept", Object(0, {Value("toys"), Value(int32_t{10})}), &toys));
    for (int i = 0; i < 100; ++i) {
      Oid oid;
      FR_ASSERT_OK(db->Insert(
          "Emp1",
          Object(0, {Value("e" + std::to_string(i)), Value(int32_t{i * 100}),
                     Value(toys)}),
          &oid));
      if (i == 0) fred = oid;
    }
    FR_ASSERT_OK(db->Replicate("Emp1.dept.name", {}));
    FR_ASSERT_OK(db->BuildIndex("emp_salary", "Emp1", "salary"));
    FR_ASSERT_OK(db->Checkpoint());
  }
  {
    Database::Options options;
    options.file_path = path;
    auto db_or = Database::Open(options);
    ASSERT_TRUE(db_or.ok()) << db_or.status().ToString();
    auto db = std::move(db_or).value();
    // Catalog restored.
    EXPECT_TRUE(db->catalog().HasType("EMP"));
    const ReplicationPathInfo* rep =
        db->catalog().FindPathBySpec("Emp1.dept.name");
    ASSERT_NE(rep, nullptr);
    // Data restored.
    Object object;
    FR_ASSERT_OK(db->Get("Emp1", fred, &object));
    EXPECT_EQ(object.field(1), Value(int32_t{0}));
    // Index restored and queryable.
    ReadQuery query;
    query.set_name = "Emp1";
    query.projections = {"name", "dept.name"};
    query.predicate = Predicate::Between("salary", Value(int32_t{500}),
                                         Value(int32_t{900}));
    ReadResult result;
    FR_ASSERT_OK(db->Retrieve(query, &result));
    EXPECT_TRUE(result.used_index);
    EXPECT_EQ(result.rows.size(), 5u);
    std::string padded = "toys";
    padded.resize(20, '\0');
    EXPECT_EQ(result.rows[0][1], Value(padded));
    // Replication machinery still live: updates propagate post-restore.
    FR_ASSERT_OK(db->Update("Dept", toys, "name", Value("games")));
    FR_ASSERT_OK(db->replication().VerifyPathConsistency(rep->id));
    // And new inserts keep working (counters restored).
    Oid oid;
    FR_ASSERT_OK(db->Insert(
        "Emp1",
        Object(0, {Value("late"), Value(int32_t{42}), Value(toys)}), &oid));
    FR_ASSERT_OK(db->replication().VerifyPathConsistency(rep->id));
    FR_ASSERT_OK(db->Checkpoint());
  }
  // Third generation: the re-checkpoint is also loadable.
  {
    Database::Options options;
    options.file_path = path;
    auto db_or = Database::Open(options);
    ASSERT_TRUE(db_or.ok()) << db_or.status().ToString();
    auto db = std::move(db_or).value();
    auto set = db->GetSet("Emp1");
    ASSERT_TRUE(set.ok());
    EXPECT_EQ((*set)->size(), 101u);
  }
  std::remove(path.c_str());
}

TEST(PersistenceTest, ReopenWithoutCheckpointFails) {
  std::string path = ::testing::TempDir() + "/fieldrep_nockpt.db";
  std::remove(path.c_str());
  {
    Database::Options options;
    options.file_path = path;
    auto db_or = Database::Open(options);
    ASSERT_TRUE(db_or.ok());
    // Touch the file (header page exists) but never checkpoint... the
    // header page is zeroed, so reopen must fail loudly, not misparse.
    auto db = std::move(db_or).value();
    FR_ASSERT_OK(db->pool().FlushAll());
  }
  Database::Options options;
  options.file_path = path;
  auto reopened = Database::Open(options);
  EXPECT_FALSE(reopened.ok());
  EXPECT_TRUE(reopened.status().IsCorruption());
  std::remove(path.c_str());
}

TEST(PersistenceTest, MemoryDatabaseCheckpointIsHarmless) {
  auto db = OpenEmployeeDatabase();
  PopulateEmployees(db.get(), 1, 2, 4);
  FR_ASSERT_OK(db->Replicate("Emp1.dept.name", {}));
  FR_ASSERT_OK(db->Checkpoint());
  ReadQuery query;
  query.set_name = "Emp1";
  query.projections = {"name"};
  ReadResult result;
  FR_ASSERT_OK(db->Retrieve(query, &result));
  EXPECT_EQ(result.rows.size(), 4u);
}

}  // namespace
}  // namespace fieldrep
