#include <cstdint>
#include <map>
#include <set>
#include <vector>

#include "common/bytes.h"
#include "common/random.h"
#include "common/status.h"
#include "common/strings.h"
#include "gtest/gtest.h"

namespace fieldrep {
namespace {

TEST(StatusTest, OkByDefault) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, CarriesCodeAndMessage) {
  Status s = Status::NotFound("missing thing");
  EXPECT_FALSE(s.ok());
  EXPECT_TRUE(s.IsNotFound());
  EXPECT_EQ(s.code(), StatusCode::kNotFound);
  EXPECT_EQ(s.ToString(), "NotFound: missing thing");
}

TEST(StatusTest, AllCodesHaveNames) {
  for (StatusCode code :
       {StatusCode::kOk, StatusCode::kInvalidArgument, StatusCode::kNotFound,
        StatusCode::kAlreadyExists, StatusCode::kCorruption,
        StatusCode::kIOError, StatusCode::kOutOfRange,
        StatusCode::kNotSupported, StatusCode::kFailedPrecondition,
        StatusCode::kInternal}) {
    EXPECT_STRNE(StatusCodeName(code), "Unknown");
  }
}

TEST(ResultTest, HoldsValue) {
  Result<int> r = 42;
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, 42);
  EXPECT_TRUE(r.status().ok());
}

TEST(ResultTest, HoldsError) {
  Result<int> r = Status::InvalidArgument("bad");
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(std::move(r).ValueOr(-1), -1);
}

TEST(ResultTest, MacroPropagatesError) {
  auto inner = []() -> Result<int> {
    return Status::NotFound("nothing here");
  };
  auto outer = [&]() -> Status {
    FIELDREP_ASSIGN_OR_RETURN(int v, inner());
    (void)v;
    return Status::OK();
  };
  EXPECT_TRUE(outer().IsNotFound());
}

TEST(BytesTest, FixedWidthRoundTrip) {
  std::string buf;
  PutU16(&buf, 0xBEEF);
  PutU32(&buf, 0xDEADBEEFu);
  PutU64(&buf, 0x0123456789ABCDEFull);
  PutI32(&buf, -12345);
  PutI64(&buf, -9876543210LL);
  PutF64(&buf, 3.14159);
  PutLengthPrefixed(&buf, "hello");

  ByteReader reader(buf);
  uint16_t u16;
  uint32_t u32;
  uint64_t u64;
  int32_t i32;
  int64_t i64;
  double f64;
  std::string s;
  ASSERT_TRUE(reader.GetU16(&u16));
  ASSERT_TRUE(reader.GetU32(&u32));
  ASSERT_TRUE(reader.GetU64(&u64));
  ASSERT_TRUE(reader.GetI32(&i32));
  ASSERT_TRUE(reader.GetI64(&i64));
  ASSERT_TRUE(reader.GetF64(&f64));
  ASSERT_TRUE(reader.GetLengthPrefixed(&s));
  EXPECT_EQ(u16, 0xBEEF);
  EXPECT_EQ(u32, 0xDEADBEEFu);
  EXPECT_EQ(u64, 0x0123456789ABCDEFull);
  EXPECT_EQ(i32, -12345);
  EXPECT_EQ(i64, -9876543210LL);
  EXPECT_DOUBLE_EQ(f64, 3.14159);
  EXPECT_EQ(s, "hello");
  EXPECT_EQ(reader.remaining(), 0u);
}

TEST(BytesTest, ReaderRejectsTruncation) {
  std::string buf;
  PutU32(&buf, 7);
  ByteReader reader(buf);
  uint64_t u64;
  EXPECT_FALSE(reader.GetU64(&u64));
  std::string s;
  ByteReader reader2(buf);  // length prefix 7 but no payload
  EXPECT_FALSE(reader2.GetLengthPrefixed(&s));
}

TEST(BytesTest, SkipAndRaw) {
  std::string buf = "abcdef";
  ByteReader reader(buf);
  ASSERT_TRUE(reader.Skip(2));
  std::string s;
  ASSERT_TRUE(reader.GetRaw(3, &s));
  EXPECT_EQ(s, "cde");
  EXPECT_FALSE(reader.Skip(2));
}

TEST(Crc32Test, MatchesStandardCheckValue) {
  // The CRC-32/ISO-HDLC check value: crc32("123456789") == 0xCBF43926.
  EXPECT_EQ(Crc32("123456789", 9), 0xCBF43926u);
  EXPECT_EQ(Crc32("", 0), 0u);
}

TEST(Crc32Test, SlicedImplementationMatchesBytewiseReference) {
  // Bit-at-a-time reference for the same polynomial; the production
  // implementation processes 8 bytes per step and must agree at every
  // length, including the tail lengths around the 8-byte boundary.
  auto reference = [](const uint8_t* data, size_t size) {
    uint32_t crc = 0xFFFFFFFFu;
    for (size_t i = 0; i < size; ++i) {
      crc ^= data[i];
      for (int bit = 0; bit < 8; ++bit) {
        crc = (crc & 1) != 0 ? (0xEDB88320u ^ (crc >> 1)) : (crc >> 1);
      }
    }
    return crc ^ 0xFFFFFFFFu;
  };
  Random rng(31);
  std::vector<uint8_t> buf(5000);
  for (auto& b : buf) b = static_cast<uint8_t>(rng.NextU64());
  for (size_t len : {size_t{0}, size_t{1}, size_t{7}, size_t{8}, size_t{9},
                     size_t{15}, size_t{16}, size_t{17}, size_t{999},
                     size_t{4096}, size_t{5000}}) {
    EXPECT_EQ(Crc32(buf.data(), len), reference(buf.data(), len))
        << "length " << len;
  }
}

TEST(RandomTest, DeterministicForSeed) {
  Random a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.NextU64(), b.NextU64());
}

TEST(RandomTest, DifferentSeedsDiffer) {
  Random a(1), b(2);
  bool differed = false;
  for (int i = 0; i < 10; ++i) differed |= (a.NextU64() != b.NextU64());
  EXPECT_TRUE(differed);
}

TEST(RandomTest, UniformInRange) {
  Random rng(7);
  for (int i = 0; i < 1000; ++i) {
    uint64_t v = rng.Uniform(10);
    EXPECT_LT(v, 10u);
  }
  for (int i = 0; i < 1000; ++i) {
    int64_t v = rng.UniformRange(-5, 5);
    EXPECT_GE(v, -5);
    EXPECT_LE(v, 5);
  }
}

TEST(RandomTest, PermutationIsPermutation) {
  Random rng(99);
  std::vector<uint32_t> p = rng.Permutation(100);
  std::set<uint32_t> seen(p.begin(), p.end());
  EXPECT_EQ(seen.size(), 100u);
  EXPECT_EQ(*seen.begin(), 0u);
  EXPECT_EQ(*seen.rbegin(), 99u);
}

TEST(RandomTest, BernoulliExtremes) {
  Random rng(5);
  for (int i = 0; i < 50; ++i) {
    EXPECT_FALSE(rng.Bernoulli(0.0));
    EXPECT_TRUE(rng.Bernoulli(1.0));
  }
}

TEST(StringsTest, TrimWhitespace) {
  EXPECT_EQ(TrimWhitespace("  abc \t\n"), "abc");
  EXPECT_EQ(TrimWhitespace(""), "");
  EXPECT_EQ(TrimWhitespace("   "), "");
}

TEST(StringsTest, SplitAndJoin) {
  std::vector<std::string> parts = SplitString("a.b..c", '.');
  ASSERT_EQ(parts.size(), 4u);
  EXPECT_EQ(parts[2], "");
  EXPECT_EQ(JoinStrings({"x", "y", "z"}, ", "), "x, y, z");
  EXPECT_EQ(JoinStrings({}, ","), "");
}

TEST(StringsTest, StartsWithAndLower) {
  EXPECT_TRUE(StartsWith("Emp1.dept", "Emp1."));
  EXPECT_FALSE(StartsWith("Emp", "Emp1"));
  EXPECT_EQ(ToLower("AbC"), "abc");
}

TEST(StringsTest, StringPrintf) {
  EXPECT_EQ(StringPrintf("%d-%s", 5, "x"), "5-x");
  EXPECT_EQ(StringPrintf("%s", ""), "");
}

}  // namespace
}  // namespace fieldrep
