#include <cmath>

#include "costmodel/cost_model.h"
#include "costmodel/series.h"
#include "costmodel/yao.h"
#include "gtest/gtest.h"

namespace fieldrep {
namespace {

// --- Yao function ---------------------------------------------------------------

TEST(YaoTest, EdgeCases) {
  EXPECT_DOUBLE_EQ(Yao(100, 10, 0), 0.0);
  EXPECT_DOUBLE_EQ(Yao(100, 0, 10), 0.0);
  EXPECT_DOUBLE_EQ(Yao(100, 100, 5), 1.0);
  EXPECT_DOUBLE_EQ(Yao(100, 95, 10), 1.0);  // c > a-b: page always touched
}

TEST(YaoTest, FullSelectionTouchesEverything) {
  EXPECT_NEAR(Yao(10000, 18, 10000), 1.0, 1e-12);
}

TEST(YaoTest, SingleObjectSelection) {
  // Selecting one object touches a page holding b of a objects with
  // probability exactly b/a.
  EXPECT_NEAR(Yao(1000, 25, 1), 25.0 / 1000.0, 1e-12);
}

TEST(YaoTest, MonotoneInEachArgument) {
  double prev = 0;
  for (double c = 0; c <= 200; c += 10) {
    double y = Yao(10000, 33, c);
    EXPECT_GE(y, prev);
    prev = y;
  }
  prev = 0;
  for (double b = 0; b <= 200; b += 10) {
    double y = Yao(10000, b, 50);
    EXPECT_GE(y, prev);
    prev = y;
  }
}

TEST(YaoTest, BoundedByApproximation) {
  // The exact hypergeometric probability of touching a page is >= the
  // independent-draw approximation (sampling without replacement spreads
  // the selection).
  for (double c : {5.0, 20.0, 100.0, 400.0}) {
    double exact = Yao(10000, 33, c);
    double approx = YaoApprox(10000, 33, c);
    EXPECT_GE(exact, approx - 1e-12);
    EXPECT_NEAR(exact, approx, 0.01);  // close at paper scale
  }
}

TEST(YaoTest, MatchesHandComputedSmallCase) {
  // a=5, b=2, c=2: 1 - C(3,2)/C(5,2) = 1 - 3/10.
  EXPECT_NEAR(Yao(5, 2, 2), 0.7, 1e-12);
}

// --- Derived parameters -----------------------------------------------------------

TEST(CostModelTest, DerivedParametersMatchFigure10) {
  CostModelParams params;  // paper defaults, f = 1
  CostModel model(params);
  // O_r = floor(4056/120) = 33; P_r = ceil(10000/33) = 304.
  EXPECT_EQ(model.ObjectsPerPage(100), 33);
  EXPECT_EQ(model.Pr(ModelStrategy::kNoReplication), 304);
  // O_s = floor(4056/220) = 18; P_s = 556.
  EXPECT_EQ(model.Ps(ModelStrategy::kNoReplication), 556);
  // s' = k + type_tag = 22; O_s' = floor(4056/42) = 96; P_s' = 105.
  EXPECT_EQ(model.SPrimeSize(), 22);
  EXPECT_EQ(model.PsPrime(), 105);
  // l = 1 + 2 + 1*8 = 11; O_l = floor(4056/31) = 130; P_l = 77.
  EXPECT_EQ(model.LinkObjectSize(), 11);
  EXPECT_EQ(model.Pl(), 77);
  // In-place r = 120 -> O_r = 28 -> P_r = 358.
  EXPECT_EQ(model.Pr(ModelStrategy::kInPlace), 358);
}

TEST(CostModelTest, SharingLevelScalesR) {
  CostModelParams params;
  params.f = 20;
  CostModel model(params);
  EXPECT_EQ(model.params().R(), 200000);
  EXPECT_EQ(model.Pr(ModelStrategy::kNoReplication), 6061);
  EXPECT_EQ(model.Pr(ModelStrategy::kInPlace), 7143);
}

// --- Golden values: the paper's Figure 12 (unclustered) ---------------------------

struct GoldenCase {
  double f;
  ModelStrategy strategy;
  IndexSetting setting;
  double paper_read;
  double paper_update;
  double tolerance;  // |ours - paper| allowed
};

class GoldenTest : public ::testing::TestWithParam<GoldenCase> {};

TEST_P(GoldenTest, MatchesPaperTable) {
  const GoldenCase& param = GetParam();
  CostModelParams params;  // defaults: |S|=10000, fs=.001, k=20, r=100, s=200
  params.f = param.f;
  params.fr = 0.002;  // both Figure 12 and Figure 14 use fr = .002
  CostModel model(params);
  EXPECT_NEAR(model.ReadCost(param.strategy, param.setting), param.paper_read,
              param.tolerance)
      << "read cost";
  EXPECT_NEAR(model.UpdateCost(param.strategy, param.setting),
              param.paper_update, param.tolerance)
      << "update cost";
}

INSTANTIATE_TEST_SUITE_P(
    Figure12Unclustered, GoldenTest,
    ::testing::Values(
        // f=1, fr=.002 column of Figure 12.
        GoldenCase{1, ModelStrategy::kNoReplication,
                   IndexSetting::kUnclustered, 43, 22, 0},
        GoldenCase{1, ModelStrategy::kInPlace, IndexSetting::kUnclustered,
                   23, 42, 0},
        GoldenCase{1, ModelStrategy::kSeparate, IndexSetting::kUnclustered,
                   41, 42, 1},
        // f=20, fr=.002 column of Figure 12.
        GoldenCase{20, ModelStrategy::kNoReplication,
                   IndexSetting::kUnclustered, 691, 22, 0},
        GoldenCase{20, ModelStrategy::kInPlace, IndexSetting::kUnclustered,
                   407, 427, 1},
        GoldenCase{20, ModelStrategy::kSeparate, IndexSetting::kUnclustered,
                   509, 42, 0}));

INSTANTIATE_TEST_SUITE_P(
    Figure14Clustered, GoldenTest,
    ::testing::Values(
        GoldenCase{1, ModelStrategy::kNoReplication, IndexSetting::kClustered,
                   24, 4, 0},
        GoldenCase{1, ModelStrategy::kInPlace, IndexSetting::kClustered,
                   4, 24, 0},
        GoldenCase{1, ModelStrategy::kSeparate, IndexSetting::kClustered,
                   23, 6, 0},
        GoldenCase{20, ModelStrategy::kNoReplication,
                   IndexSetting::kClustered, 316, 4, 0},
        GoldenCase{20, ModelStrategy::kInPlace, IndexSetting::kClustered,
                   32, 400, 1},
        GoldenCase{20, ModelStrategy::kSeparate, IndexSetting::kClustered,
                   133, 6, 0}));

// --- Qualitative claims from Section 6.6 / 6.8 ------------------------------------

TEST(CostModelClaimsTest, InPlaceWinsAtLowUpdateProbability) {
  // "in-place replication always outperforms separate replication when the
  // probability of an update query is less than roughly 0.15". At f = 50
  // the crossover sits just under 0.10 in our calibration ("roughly"), so
  // the sweep checks p <= 0.05 everywhere.
  for (double f : {1.0, 10.0, 20.0, 50.0}) {
    for (double fr : {0.001, 0.002, 0.005}) {
      CostModelParams params;
      params.f = f;
      params.fr = fr;
      CostModel model(params);
      for (double p : {0.0, 0.025, 0.05}) {
        EXPECT_LT(model.TotalCost(ModelStrategy::kInPlace,
                                  IndexSetting::kUnclustered, p),
                  model.TotalCost(ModelStrategy::kSeparate,
                                  IndexSetting::kUnclustered, p))
            << "f=" << f << " fr=" << fr << " p=" << p;
      }
    }
  }
}

TEST(CostModelClaimsTest, SeparateWinsAtHighUpdateProbability) {
  // "separate replication always outperforms in-place replication when the
  // probability of an update query exceeds roughly 0.35" (f > 1).
  for (double f : {10.0, 20.0, 50.0}) {
    for (double fr : {0.001, 0.002, 0.005}) {
      CostModelParams params;
      params.f = f;
      params.fr = fr;
      CostModel model(params);
      for (double p : {0.4, 0.6, 0.9}) {
        EXPECT_LT(model.TotalCost(ModelStrategy::kSeparate,
                                  IndexSetting::kUnclustered, p),
                  model.TotalCost(ModelStrategy::kInPlace,
                                  IndexSetting::kUnclustered, p))
            << "f=" << f << " fr=" << fr << " p=" << p;
      }
    }
  }
}

TEST(CostModelClaimsTest, SeparateNearNoReplicationAtFOne) {
  // "for f = 1, separate replication provides almost no benefit" on reads.
  CostModelParams params;
  params.f = 1;
  params.fr = 0.002;
  CostModel model(params);
  double none = model.ReadCost(ModelStrategy::kNoReplication,
                               IndexSetting::kUnclustered);
  double separate =
      model.ReadCost(ModelStrategy::kSeparate, IndexSetting::kUnclustered);
  EXPECT_NEAR(separate, none, 3);
}

TEST(CostModelClaimsTest, InPlaceUpdatePenaltyGrowsWithF) {
  // Update cost of in-place grows roughly like 2 f fs |S| over baseline.
  CostModelParams params;
  params.f = 20;
  CostModel model20(params);
  params.f = 1;
  CostModel model1(params);
  double penalty20 = model20.UpdateCost(ModelStrategy::kInPlace,
                                        IndexSetting::kUnclustered) -
                     model20.UpdateCost(ModelStrategy::kNoReplication,
                                        IndexSetting::kUnclustered);
  double penalty1 = model1.UpdateCost(ModelStrategy::kInPlace,
                                      IndexSetting::kUnclustered) -
                    model1.UpdateCost(ModelStrategy::kNoReplication,
                                      IndexSetting::kUnclustered);
  EXPECT_NEAR(penalty20, 2 * 20 * 0.001 * 10000, 30);  // ~400
  EXPECT_NEAR(penalty1, 2 * 1 * 0.001 * 10000, 5);     // ~20
}

TEST(CostModelClaimsTest, SeparateUpdateCostIndependentOfF) {
  // "the cost of an update query in separate replication is unaffected by
  // the value of f ... roughly double the cost with no replication".
  CostModelParams params;
  double prev = -1;
  for (double f : {1.0, 10.0, 20.0, 50.0}) {
    params.f = f;
    CostModel model(params);
    double cost = model.UpdateCost(ModelStrategy::kSeparate,
                                   IndexSetting::kUnclustered);
    if (prev >= 0) {
      EXPECT_NEAR(cost, prev, 1);
    }
    prev = cost;
  }
  params.f = 20;
  CostModel model(params);
  EXPECT_NEAR(model.UpdateCost(ModelStrategy::kSeparate,
                               IndexSetting::kUnclustered),
              2 * model.UpdateCost(ModelStrategy::kNoReplication,
                                   IndexSetting::kUnclustered),
              4);
}

TEST(CostModelClaimsTest, ClusteredSavingsLargerThanUnclustered) {
  // Section 6.8: with clustered indexes the percentage savings are larger.
  CostModelParams params;
  params.f = 10;
  params.fr = 0.002;
  CostModel model(params);
  double p = 0.05;
  EXPECT_LT(model.PercentDifference(ModelStrategy::kInPlace,
                                    IndexSetting::kClustered, p),
            model.PercentDifference(ModelStrategy::kInPlace,
                                    IndexSetting::kUnclustered, p));
}

TEST(CostModelClaimsTest, SelectivityFlipForSeparate) {
  // Section 6.6: at f=10 separate does best at fr=.005; by f=50 the lines
  // flip and fr=.001 is best.
  auto percent = [](double f, double fr, double p) {
    CostModelParams params;
    params.f = f;
    params.fr = fr;
    CostModel model(params);
    return model.PercentDifference(ModelStrategy::kSeparate,
                                   IndexSetting::kUnclustered, p);
  };
  EXPECT_LT(percent(10, 0.005, 0.1), percent(10, 0.001, 0.1));
  EXPECT_LT(percent(50, 0.001, 0.1), percent(50, 0.005, 0.1));
}

// --- Series helpers -----------------------------------------------------------------

TEST(SeriesTest, PanelShapeAndRange) {
  CostModelParams base;
  auto panel = GeneratePanel(base, IndexSetting::kUnclustered, 10, 20);
  EXPECT_EQ(panel.size(), 6u);  // 2 strategies x 3 selectivities
  for (const FigureSeries& series : panel) {
    ASSERT_EQ(series.p_update.size(), 21u);
    EXPECT_DOUBLE_EQ(series.p_update.front(), 0.0);
    EXPECT_DOUBLE_EQ(series.p_update.back(), 1.0);
    // At P_update = 0 replication is never worse for reads at f=10.
    EXPECT_LT(series.percent_diff.front(), 0.0);
  }
  std::string text = RenderPanel(panel, "test panel");
  EXPECT_NE(text.find("test panel"), std::string::npos);
}

TEST(SeriesTest, SelectedCostRowsOrdered) {
  CostModelParams base;
  auto rows =
      GenerateSelectedCosts(base, IndexSetting::kUnclustered, 20, 0.002);
  ASSERT_EQ(rows.size(), 3u);
  EXPECT_EQ(rows[0].strategy, ModelStrategy::kNoReplication);
  EXPECT_GT(rows[0].c_read, rows[1].c_read);  // in-place cheapest read
}

TEST(SeriesTest, CrossoverNearPaperValue) {
  // In-place vs separate crossover sits in the paper's 0.15–0.35 band for
  // f > 1.
  CostModelParams params;
  params.f = 20;
  params.fr = 0.002;
  CostModel model(params);
  double crossover =
      CrossoverUpdateProbability(model, ModelStrategy::kInPlace,
                                 ModelStrategy::kSeparate,
                                 IndexSetting::kUnclustered);
  EXPECT_GT(crossover, 0.10);
  EXPECT_LT(crossover, 0.40);
}

TEST(SeriesTest, NoCrossoverWhenDominated) {
  // At f=1, in-place dominates separate for every update probability.
  CostModelParams params;
  params.f = 1;
  params.fr = 0.002;
  CostModel model(params);
  double crossover =
      CrossoverUpdateProbability(model, ModelStrategy::kInPlace,
                                 ModelStrategy::kSeparate,
                                 IndexSetting::kUnclustered);
  // In-place is at least as cheap everywhere; the strategies tie exactly at
  // P_update = 1 (both update costs are 42 in Figure 12), so either "no
  // crossover" or a crossover at the right edge is correct.
  EXPECT_TRUE(crossover == -1 || crossover >= 0.99) << crossover;
}

// --- Cross-parameter invariants (parameterized sweep) ------------------------------

struct SweepCase {
  double f;
  double fr;
  IndexSetting setting;
};

class ModelSweepTest : public ::testing::TestWithParam<SweepCase> {};

TEST_P(ModelSweepTest, StructuralInvariants) {
  const SweepCase& param = GetParam();
  CostModelParams params;
  params.f = param.f;
  params.fr = param.fr;
  CostModel model(params);

  // Reads: in-place <= separate <= none (in-place drops the join entirely;
  // separate's S' is never larger than S).
  double read_none =
      model.ReadCost(ModelStrategy::kNoReplication, param.setting);
  double read_inplace = model.ReadCost(ModelStrategy::kInPlace, param.setting);
  double read_separate =
      model.ReadCost(ModelStrategy::kSeparate, param.setting);
  EXPECT_LE(read_inplace, read_separate + 1);
  EXPECT_LE(read_separate, read_none + 1);

  // Updates: none <= separate <= in-place (propagation only adds work).
  double upd_none =
      model.UpdateCost(ModelStrategy::kNoReplication, param.setting);
  double upd_inplace =
      model.UpdateCost(ModelStrategy::kInPlace, param.setting);
  double upd_separate =
      model.UpdateCost(ModelStrategy::kSeparate, param.setting);
  EXPECT_LE(upd_none, upd_separate);
  EXPECT_LE(upd_separate, upd_inplace + 1);

  // C_total is linear in P_update between its endpoints.
  for (ModelStrategy strategy :
       {ModelStrategy::kNoReplication, ModelStrategy::kInPlace,
        ModelStrategy::kSeparate}) {
    double at_0 = model.TotalCost(strategy, param.setting, 0);
    double at_1 = model.TotalCost(strategy, param.setting, 1);
    double at_half = model.TotalCost(strategy, param.setting, 0.5);
    EXPECT_NEAR(at_half, (at_0 + at_1) / 2, 1e-9);
  }

  // Clustered access never costs more than unclustered for the same
  // strategy.
  for (ModelStrategy strategy :
       {ModelStrategy::kNoReplication, ModelStrategy::kInPlace,
        ModelStrategy::kSeparate}) {
    EXPECT_LE(model.ReadCost(strategy, IndexSetting::kClustered),
              model.ReadCost(strategy, IndexSetting::kUnclustered));
    EXPECT_LE(model.UpdateCost(strategy, IndexSetting::kClustered),
              model.UpdateCost(strategy, IndexSetting::kUnclustered));
  }

  // Breakdown terms are non-negative and sum to the (unceiled) total.
  CostTerms terms = model.ReadTerms(ModelStrategy::kSeparate, param.setting);
  EXPECT_GE(terms.read_r, 0);
  EXPECT_GE(terms.read_sprime, 0);
  EXPECT_EQ(terms.read_s, 0);  // separate never joins with S
  EXPECT_NEAR(terms.Total(), terms.index + terms.read_r + terms.read_sprime +
                                 terms.output,
              1e-9);
}

INSTANTIATE_TEST_SUITE_P(
    FSweep, ModelSweepTest,
    ::testing::Values(SweepCase{1, 0.001, IndexSetting::kUnclustered},
                      SweepCase{1, 0.005, IndexSetting::kClustered},
                      SweepCase{5, 0.002, IndexSetting::kUnclustered},
                      SweepCase{10, 0.001, IndexSetting::kClustered},
                      SweepCase{20, 0.002, IndexSetting::kUnclustered},
                      SweepCase{20, 0.005, IndexSetting::kClustered},
                      SweepCase{50, 0.001, IndexSetting::kUnclustered},
                      SweepCase{50, 0.005, IndexSetting::kClustered},
                      SweepCase{100, 0.002, IndexSetting::kUnclustered}));

TEST(ModelOverrideTest, SizeOverridesFeedThrough) {
  CostModelParams params;
  params.f = 5;
  CostModel paper(params);
  params.inplace_head_bytes = 30;
  params.inplace_terminal_bytes = 11;
  params.sprime_bytes = 23;
  params.link_fixed_bytes = 0;
  params.sep_head_bytes = 15;
  params.sep_terminal_bytes = 15;
  CostModel engine(params);
  EXPECT_EQ(engine.EffectiveR(ModelStrategy::kInPlace), 130);
  EXPECT_EQ(engine.EffectiveS(ModelStrategy::kInPlace), 211);
  EXPECT_EQ(engine.EffectiveR(ModelStrategy::kSeparate), 115);
  EXPECT_EQ(engine.EffectiveS(ModelStrategy::kSeparate), 215);
  EXPECT_EQ(engine.SPrimeSize(), 23);
  EXPECT_EQ(engine.LinkObjectSize(), 0 + 5 * 8);
  // Defaults unchanged.
  EXPECT_EQ(paper.EffectiveR(ModelStrategy::kInPlace), 120);
  EXPECT_EQ(paper.SPrimeSize(), 22);
}

// --- Rounding modes ------------------------------------------------------------------

TEST(CostModelTest, RoundingModesOrdered) {
  CostModelParams params;
  params.f = 20;
  params.fr = 0.002;
  params.rounding = Rounding::kNone;
  CostModel smooth(params);
  params.rounding = Rounding::kCeilTotal;
  CostModel total(params);
  params.rounding = Rounding::kCeilPerTerm;
  CostModel per_term(params);
  double s = smooth.ReadCost(ModelStrategy::kNoReplication,
                             IndexSetting::kUnclustered);
  double t = total.ReadCost(ModelStrategy::kNoReplication,
                            IndexSetting::kUnclustered);
  double pt = per_term.ReadCost(ModelStrategy::kNoReplication,
                                IndexSetting::kUnclustered);
  EXPECT_LE(s, t);
  EXPECT_LE(t, pt);
  EXPECT_NEAR(s, pt, 4);
}

TEST(CostModelTest, InlineThresholdRemovesLinkTerm) {
  CostModelParams params;
  params.f = 1;
  CostModel inlined(params);
  EXPECT_TRUE(inlined.LinksInlined());
  EXPECT_EQ(inlined
                .UpdateTerms(ModelStrategy::kInPlace,
                             IndexSetting::kUnclustered)
                .read_l,
            0.0);
  params.inline_link_threshold = 0;
  CostModel materialized(params);
  EXPECT_FALSE(materialized.LinksInlined());
  EXPECT_GT(materialized
                .UpdateTerms(ModelStrategy::kInPlace,
                             IndexSetting::kUnclustered)
                .read_l,
            0.0);
}

}  // namespace
}  // namespace fieldrep
