// Crash-recovery suite: kills a replica propagation at EVERY durable-write
// boundary (clean and torn), reboots, recovers, and asserts the replica
// state is fully-old or fully-new — never a mix.
//
// The rig wraps both the database "disk" and the log "disk" in
// FaultInjectingDevices sharing one FaultPlan, so "crash after k ops"
// counts every durable operation the engine issues, in order. An oracle
// run with an unarmed plan measures how many durable operations the
// update needs; the suite then replays the scenario once per boundary.

#include <memory>
#include <string>
#include <vector>

#include "common/strings.h"
#include "gtest/gtest.h"
#include "storage/fault_injecting_device.h"
#include "storage/memory_device.h"
#include "test_util.h"

namespace fieldrep {
namespace {

using ::fieldrep::testing::TraversePath;

/// Strips the NUL padding char(n) attributes come back with.
std::string Unpad(const std::string& s) {
  return s.substr(0, s.find('\0'));
}

struct CrashRig {
  MemoryDevice disk;  // the persistent media; survives "reboots"
  MemoryDevice log_disk;
  FaultPlan plan;
  FaultInjectingDevice db_dev{&disk, &plan};
  FaultInjectingDevice log_dev{&log_disk, &plan};

  std::unique_ptr<Database> Open(bool sync_on_commit = true) {
    Database::Options options;
    options.buffer_pool_frames = 512;
    options.device = &db_dev;
    options.wal_device = &log_dev;
    options.enable_wal = true;
    options.wal_sync_on_commit = sync_on_commit;
    auto db_or = Database::Open(options);
    EXPECT_TRUE(db_or.ok()) << db_or.status().ToString();
    return db_or.ok() ? std::move(db_or).value() : nullptr;
  }
};

/// One named mutation scenario over the EMP -> DEPT -> ORG -> CITY chain.
struct Scenario {
  std::string name;
  std::string spec;  ///< replication path spec
  ReplicationStrategy strategy = ReplicationStrategy::kInPlace;
  std::string target_set;   ///< set the update hits
  std::string old_value;    ///< terminal value before the update
  std::string new_value;    ///< terminal value after the update
  Oid target;               ///< filled by BuildFixture
};

// FR_ASSERT_OK needs a void function; BuildFixture returns a value.
#define FR_ASSERT_OK_RET(expr)                                          \
  do {                                                                  \
    ::fieldrep::Status _s = (expr);                                     \
    EXPECT_TRUE(_s.ok()) << _s.ToString();                              \
    if (!_s.ok()) return {};                                            \
  } while (0)

/// Builds the 4-type chain, the scenario's replication path, and a
/// checkpoint, so the crash window contains only the update. Returns the
/// head employee oids.
std::vector<Oid> BuildFixture(Database* db, Scenario* scenario) {
  FR_ASSERT_OK_RET(db->DefineType(
      TypeDescriptor("CITY", {CharAttr("name", 20), Int32Attr("pop")})));
  FR_ASSERT_OK_RET(db->DefineType(TypeDescriptor(
      "ORG", {CharAttr("name", 20), RefAttr("city", "CITY")})));
  FR_ASSERT_OK_RET(db->DefineType(TypeDescriptor(
      "DEPT", {CharAttr("name", 20), RefAttr("org", "ORG")})));
  FR_ASSERT_OK_RET(db->DefineType(TypeDescriptor(
      "EMP", {CharAttr("name", 20), RefAttr("dept", "DEPT")})));
  FR_ASSERT_OK_RET(db->CreateSet("Cities", "CITY"));
  FR_ASSERT_OK_RET(db->CreateSet("Orgs", "ORG"));
  FR_ASSERT_OK_RET(db->CreateSet("Depts", "DEPT"));
  FR_ASSERT_OK_RET(db->CreateSet("Emps", "EMP"));

  std::vector<Oid> cities(2), orgs(2), depts(3), emps(6);
  for (int i = 0; i < 2; ++i) {
    FR_ASSERT_OK_RET(db->Insert(
        "Cities",
        Object(0, {Value(StringPrintf("city%d", i)), Value(int32_t{1000})}),
        &cities[i]));
  }
  for (int i = 0; i < 2; ++i) {
    FR_ASSERT_OK_RET(db->Insert(
        "Orgs",
        Object(0, {Value(StringPrintf("org%d", i)), Value(cities[i])}),
        &orgs[i]));
  }
  for (int i = 0; i < 3; ++i) {
    FR_ASSERT_OK_RET(db->Insert(
        "Depts",
        Object(0, {Value(StringPrintf("dept%d", i)), Value(orgs[i % 2])}),
        &depts[i]));
  }
  for (int i = 0; i < 6; ++i) {
    FR_ASSERT_OK_RET(db->Insert(
        "Emps",
        Object(0, {Value(StringPrintf("emp%d", i)), Value(depts[i % 3])}),
        &emps[i]));
  }

  ReplicateOptions options;
  options.strategy = scenario->strategy;
  FR_ASSERT_OK_RET(db->Replicate(scenario->spec, options));

  // The update target is the terminal object reached from emp0's chain.
  scenario->target =
      scenario->target_set == "Cities" ? cities[0] : depts[0];
  FR_ASSERT_OK_RET(db->Checkpoint());
  return emps;
}

/// Runs the scenario's update; errors expected when the plan trips.
Status RunUpdate(Database* db, const Scenario& scenario) {
  return db->Update(scenario.target_set, scenario.target, "name",
                    Value(scenario.new_value));
}

/// The terminal attribute chain of the spec ("Emps.dept.name" -> dept,name).
std::vector<std::string> SpecAttrs(const Scenario& scenario) {
  std::vector<std::string> attrs;
  size_t pos = scenario.spec.find('.');
  while (pos != std::string::npos) {
    size_t next = scenario.spec.find('.', pos + 1);
    attrs.push_back(scenario.spec.substr(
        pos + 1, next == std::string::npos ? std::string::npos
                                           : next - pos - 1));
    pos = next;
  }
  return attrs;
}

/// Asserts full recovery-time atomicity: replica bookkeeping internally
/// consistent, base value fully-old XOR fully-new, and the query layer
/// (serving from replicas) agreeing with forward traversal on every head.
void CheckRecoveredState(Database* db, const Scenario& scenario,
                         const std::vector<Oid>& emps,
                         bool update_reported_ok) {
  const ReplicationPathInfo* path = db->replication().FindPath(scenario.spec);
  ASSERT_NE(path, nullptr);
  FR_ASSERT_OK(db->replication().VerifyPathConsistency(path->id));

  Object target;
  FR_ASSERT_OK(db->Get(scenario.target_set, scenario.target, &target));
  std::string base = Unpad(target.field(0).as_string());
  ASSERT_TRUE(base == scenario.old_value || base == scenario.new_value)
      << "base value is neither old nor new: \"" << base << "\"";
  if (update_reported_ok) {
    // A commit the client saw succeed must survive the crash.
    EXPECT_EQ(base, scenario.new_value);
  }

  // Per-head: what a query answers (replica) == forward traversal truth,
  // and heads on the updated chain match the recovered base value.
  std::vector<std::string> attrs = SpecAttrs(scenario);
  std::string dotted = attrs[0];
  for (size_t i = 1; i < attrs.size(); ++i) dotted += "." + attrs[i];
  ReadQuery query;
  query.set_name = "Emps";
  query.projections = {"name", dotted};
  ReadResult result;
  FR_ASSERT_OK(db->Retrieve(query, &result));
  ASSERT_EQ(result.rows.size(), emps.size());
  for (const auto& row : result.rows) {
    ASSERT_EQ(row.size(), 2u);
    std::string head_name = Unpad(row[0].as_string());
    std::string via_replica = Unpad(row[1].as_string());
    // Match the row back to its oid through the unique head name.
    size_t idx = std::stoul(head_name.substr(3));
    ASSERT_LT(idx, emps.size());
    Value truth = TraversePath(db, "Emps", emps[idx], attrs);
    ASSERT_FALSE(truth.is_null());
    EXPECT_EQ(via_replica, Unpad(truth.as_string()))
        << head_name << ": replica disagrees with forward traversal";
    if (via_replica == scenario.old_value ||
        via_replica == scenario.new_value) {
      EXPECT_EQ(via_replica, base)
          << head_name << ": replica torn relative to the base object";
    }
  }
}

/// Counts the durable device operations the no-crash update needs, and
/// sanity-checks that the propagation actually reached the heads.
uint64_t OracleOpCount(Scenario scenario) {
  CrashRig rig;
  auto db = rig.Open();
  std::vector<Oid> emps = BuildFixture(db.get(), &scenario);
  uint64_t before = rig.plan.ops_seen;
  Status s = RunUpdate(db.get(), scenario);
  EXPECT_TRUE(s.ok()) << s.ToString();
  uint64_t ops = rig.plan.ops_seen - before;
  EXPECT_GT(ops, 0u) << "update issued no durable operations to crash at";
  CheckRecoveredState(db.get(), scenario, emps, /*update_reported_ok=*/true);
  return ops;
}

/// Crash at boundary `k` (optionally tearing the final page write),
/// reboot, recover, check atomicity. Boundaries past the oracle count
/// exercise crashes during post-commit writeback at destruction.
void CrashAtBoundary(const Scenario& base_scenario, uint64_t k, bool torn) {
  SCOPED_TRACE(StringPrintf("%s: crash after %d ops%s",
                            base_scenario.name.c_str(), static_cast<int>(k),
                            torn ? " (torn)" : ""));
  CrashRig rig;
  Scenario scenario = base_scenario;
  std::vector<Oid> emps;
  bool update_reported_ok = false;
  {
    auto db = rig.Open();
    ASSERT_NE(db, nullptr);
    emps = BuildFixture(db.get(), &scenario);
    ASSERT_FALSE(::testing::Test::HasFailure());
    rig.plan.Arm(k, torn);
    update_reported_ok = RunUpdate(db.get(), scenario).ok();
    // The destructor's writeback races the dead machine: every operation
    // after the crash point fails and leaves no trace on the media.
  }
  rig.plan.Reset();  // reboot

  auto db = rig.Open();
  ASSERT_NE(db, nullptr);
  CheckRecoveredState(db.get(), scenario, emps, update_reported_ok);
}

void RunScenario(const Scenario& scenario) {
  uint64_t ops = OracleOpCount(scenario);
  ASSERT_FALSE(::testing::Test::HasFailure());
  // +2 boundaries past the oracle count: the update commits, then the
  // crash hits the shutdown writeback instead.
  for (uint64_t k = 1; k <= ops + 2; ++k) {
    CrashAtBoundary(scenario, k, /*torn=*/false);
    CrashAtBoundary(scenario, k, /*torn=*/true);
  }
}

Scenario InPlaceScenario() {
  Scenario s;
  s.name = "in-place 3-level";
  s.spec = "Emps.dept.org.city.name";
  s.strategy = ReplicationStrategy::kInPlace;
  s.target_set = "Cities";
  s.old_value = "city0";
  s.new_value = "metropolis";
  return s;
}

Scenario SeparateScenario() {
  Scenario s;
  s.name = "separate 1-level";
  s.spec = "Emps.dept.name";
  s.strategy = ReplicationStrategy::kSeparate;
  s.target_set = "Depts";
  s.old_value = "dept0";
  s.new_value = "platform";
  return s;
}

TEST(WalCrashTest, ThreeLevelInPlacePropagationIsAtomic) {
  RunScenario(InPlaceScenario());
}

TEST(WalCrashTest, SeparateReplicationUpdateIsAtomic) {
  RunScenario(SeparateScenario());
}

TEST(WalCrashTest, GroupCommitCrashIsConsistentThoughPossiblyStale) {
  // In group-commit mode (no sync per commit) a crash may lose the most
  // recent commits, but recovery must still land on a consistent state.
  for (uint64_t k = 1; k <= 6; ++k) {
    SCOPED_TRACE(StringPrintf("nosync crash after %d ops",
                              static_cast<int>(k)));
    CrashRig rig;
    Scenario scenario = InPlaceScenario();
    std::vector<Oid> emps;
    {
      auto db = rig.Open(/*sync_on_commit=*/false);
      ASSERT_NE(db, nullptr);
      emps = BuildFixture(db.get(), &scenario);
      ASSERT_FALSE(::testing::Test::HasFailure());
      rig.plan.Arm(k);
      (void)RunUpdate(db.get(), scenario);
    }
    rig.plan.Reset();
    auto db = rig.Open(/*sync_on_commit=*/false);
    ASSERT_NE(db, nullptr);
    CheckRecoveredState(db.get(), scenario, emps,
                        /*update_reported_ok=*/false);
  }
}

TEST(WalCrashTest, CrashDuringCheckpointKeepsCommittedUpdate) {
  // A checkpoint interrupted at any boundary must not lose the committed
  // (synced) update that preceded it: the old log stays valid until the
  // pages it describes are durable and the new-epoch header lands.
  for (uint64_t k = 1; k <= 10; ++k) {
    for (bool torn : {false, true}) {
      SCOPED_TRACE(StringPrintf("checkpoint crash after %d ops%s",
                                static_cast<int>(k), torn ? " (torn)" : ""));
      CrashRig rig;
      Scenario scenario = InPlaceScenario();
      std::vector<Oid> emps;
      {
        auto db = rig.Open();
        ASSERT_NE(db, nullptr);
        emps = BuildFixture(db.get(), &scenario);
        ASSERT_FALSE(::testing::Test::HasFailure());
        FR_ASSERT_OK(RunUpdate(db.get(), scenario));
        rig.plan.Arm(k, torn);
        (void)db->Checkpoint();  // may trip anywhere inside
      }
      rig.plan.Reset();
      auto db = rig.Open();
      ASSERT_NE(db, nullptr);
      CheckRecoveredState(db.get(), scenario, emps,
                          /*update_reported_ok=*/true);
    }
  }
}

// --- Crash mid asynchronous write-back (DESIGN.md §15) ------------------------

/// Marks a fault-injecting device as asynchronous, so the buffer pool
/// takes its async write-back/prefetch paths (staging, submit-then-wait,
/// completion-driven settling) while the inherited inline-completing
/// default *Async implementations keep the plan's per-page crash
/// semantics fully deterministic.
class AsyncFaultShim : public StorageDevice {
 public:
  explicit AsyncFaultShim(FaultInjectingDevice* inner) : inner_(inner) {}

  bool async_io() const override { return true; }
  Status ReadPage(PageId page_id, void* buf) override {
    return inner_->ReadPage(page_id, buf);
  }
  Status WritePage(PageId page_id, const void* buf) override {
    return inner_->WritePage(page_id, buf);
  }
  Status AllocatePage(PageId* page_id) override {
    return inner_->AllocatePage(page_id);
  }
  Status Sync() override { return inner_->Sync(); }
  uint32_t page_count() const override { return inner_->page_count(); }

 private:
  FaultInjectingDevice* inner_;
};

TEST(WalCrashTest, CrashMidAsyncFlushRecoversClean) {
  // A checkpoint over an asynchronous device submits its dirty-page runs
  // through WritePagesAsync; a crash landing between two pages of a
  // submitted run surfaces as per-page completion errors (frames stay
  // dirty), and recovery from the WAL must still land on a consistent
  // state with the committed update intact.
  Scenario base_scenario = InPlaceScenario();
  uint64_t ops;
  {
    CrashRig rig;
    AsyncFaultShim shim(&rig.db_dev);
    Scenario scenario = base_scenario;
    Database::Options options;
    options.buffer_pool_frames = 512;
    options.device = &shim;
    options.wal_device = &rig.log_dev;
    options.enable_wal = true;
    auto db_or = Database::Open(options);
    ASSERT_TRUE(db_or.ok()) << db_or.status().ToString();
    auto db = std::move(db_or).value();
    std::vector<Oid> emps = BuildFixture(db.get(), &scenario);
    ASSERT_FALSE(::testing::Test::HasFailure());
    FR_ASSERT_OK(RunUpdate(db.get(), scenario));
    uint64_t before = rig.plan.ops_seen;
    FR_ASSERT_OK(db->Checkpoint());
    ops = rig.plan.ops_seen - before;
    ASSERT_GT(ops, 0u);
  }
  for (uint64_t k = 1; k <= ops + 2; k += 2) {
    for (bool torn : {false, true}) {
      SCOPED_TRACE(StringPrintf("async-flush crash after %d ops%s",
                                static_cast<int>(k), torn ? " (torn)" : ""));
      CrashRig rig;
      AsyncFaultShim shim(&rig.db_dev);
      Scenario scenario = base_scenario;
      std::vector<Oid> emps;
      {
        Database::Options options;
        options.buffer_pool_frames = 512;
        options.device = &shim;
        options.wal_device = &rig.log_dev;
        options.enable_wal = true;
        auto db_or = Database::Open(options);
        ASSERT_TRUE(db_or.ok()) << db_or.status().ToString();
        auto db = std::move(db_or).value();
        emps = BuildFixture(db.get(), &scenario);
        ASSERT_FALSE(::testing::Test::HasFailure());
        FR_ASSERT_OK(RunUpdate(db.get(), scenario));
        rig.plan.Arm(k, torn);
        (void)db->Checkpoint();  // may trip anywhere inside the async flush
      }
      rig.plan.Reset();  // reboot

      Database::Options options;
      options.buffer_pool_frames = 512;
      options.device = &shim;
      options.wal_device = &rig.log_dev;
      options.enable_wal = true;
      auto db_or = Database::Open(options);
      ASSERT_TRUE(db_or.ok()) << db_or.status().ToString();
      auto db = std::move(db_or).value();
      CheckRecoveredState(db.get(), scenario, emps,
                          /*update_reported_ok=*/true);
      ::fieldrep::testing::ExpectCleanIntegrity(db.get());
    }
  }
}

// --- Interleaved transactions (per-set 2PL, DESIGN.md §14) --------------------

/// Crash with two write transactions interleaved in the log: txn1
/// (replicated update, committed and synced) and txn2 (unrelated set,
/// mid-commit when the machine dies). Recovery must replay txn1 in full —
/// base value AND every in-place replica, prefix-consistent — while txn2
/// lands atomically (fully-old or fully-new, new only if its commit
/// synced before the crash). The two transactions use sets of distinct
/// types, so the striped locks let them interleave on one thread via
/// Detach/AttachSessionTransaction exactly as two server sessions would.
TEST(WalCrashTest, InterleavedTransactionsRecoverCommittedPrefix) {
  for (uint64_t k = 1; k <= 8; ++k) {
    for (bool torn : {false, true}) {
      SCOPED_TRACE(StringPrintf("interleaved crash after %d ops%s",
                                static_cast<int>(k), torn ? " (torn)" : ""));
      CrashRig rig;
      std::vector<Oid> heads(4);
      Oid tgt_oid, b_oid;
      bool txn2_reported_ok = false;
      {
        auto db = rig.Open();
        ASSERT_NE(db, nullptr);
        FR_ASSERT_OK(db->DefineType(
            TypeDescriptor("TGT", {CharAttr("name", 20)})));
        FR_ASSERT_OK(db->DefineType(TypeDescriptor(
            "HEAD", {CharAttr("name", 20), RefAttr("ref", "TGT")})));
        FR_ASSERT_OK(db->DefineType(
            TypeDescriptor("BROW", {Int32Attr("key"), Int32Attr("val")})));
        FR_ASSERT_OK(db->CreateSet("Tgts", "TGT"));
        FR_ASSERT_OK(db->CreateSet("Heads", "HEAD"));
        FR_ASSERT_OK(db->CreateSet("B", "BROW"));
        FR_ASSERT_OK(db->Insert("Tgts", Object(0, {Value("oldname")}),
                                &tgt_oid));
        for (size_t i = 0; i < heads.size(); ++i) {
          FR_ASSERT_OK(db->Insert(
              "Heads",
              Object(0, {Value(StringPrintf("head%d", static_cast<int>(i))),
                         Value(tgt_oid)}),
              &heads[i]));
        }
        FR_ASSERT_OK(db->Insert(
            "B", Object(0, {Value(int32_t{0}), Value(int32_t{100})}),
            &b_oid));
        FR_ASSERT_OK(db->Replicate("Heads.ref.name", {}));
        FR_ASSERT_OK(db->Checkpoint());

        // txn1 starts and writes (replicated propagation into Heads)...
        FR_ASSERT_OK(db->BeginSessionTransaction());
        FR_ASSERT_OK(
            db->Update("Tgts", tgt_oid, "name", Value("newname")));
        Database::SessionTxn* txn1 = db->DetachSessionTransaction();
        ASSERT_NE(txn1, nullptr);

        // ...txn2 starts and writes the unrelated set, interleaving its
        // log records with txn1's...
        FR_ASSERT_OK(db->BeginSessionTransaction());
        FR_ASSERT_OK(db->Update("B", b_oid, "val", Value(int32_t{200})));
        Database::SessionTxn* txn2 = db->DetachSessionTransaction();
        ASSERT_NE(txn2, nullptr);

        // ...txn1 commits durably; the machine dies k ops into txn2's
        // commit (or the shutdown writeback after it).
        db->AttachSessionTransaction(txn1);
        FR_ASSERT_OK(db->CommitSessionTransaction());
        rig.plan.Arm(k, torn);
        db->AttachSessionTransaction(txn2);
        txn2_reported_ok = db->CommitSessionTransaction().ok();
      }
      rig.plan.Reset();  // reboot

      auto db = rig.Open();
      ASSERT_NE(db, nullptr);

      // txn1, committed before the crash, must be replayed in full.
      Object tgt;
      FR_ASSERT_OK(db->Get("Tgts", tgt_oid, &tgt));
      EXPECT_EQ(Unpad(tgt.field(0).as_string()), "newname");
      const ReplicationPathInfo* path =
          db->replication().FindPath("Heads.ref.name");
      ASSERT_NE(path, nullptr);
      FR_ASSERT_OK(db->replication().VerifyPathConsistency(path->id));
      ReadQuery query;
      query.set_name = "Heads";
      query.projections = {"ref.name"};
      ReadResult result;
      FR_ASSERT_OK(db->Retrieve(query, &result));
      ASSERT_EQ(result.rows.size(), heads.size());
      for (const auto& row : result.rows) {
        EXPECT_EQ(Unpad(row[0].as_string()), "newname")
            << "replica not prefix-consistent with committed txn1";
      }

      // txn2 is atomic: fully-old or fully-new, new if its commit synced.
      Object b_row;
      FR_ASSERT_OK(db->Get("B", b_oid, &b_row));
      const int32_t b_val = b_row.field(1).as_int32();
      EXPECT_TRUE(b_val == 100 || b_val == 200) << b_val;
      if (txn2_reported_ok) {
        EXPECT_EQ(b_val, 200);
      }

      ::fieldrep::testing::ExpectCleanIntegrity(db.get());
    }
  }
}

}  // namespace
}  // namespace fieldrep
