#include "gtest/gtest.h"
#include "test_util.h"

namespace fieldrep {
namespace {

using ::fieldrep::testing::EmployeeFixture;
using ::fieldrep::testing::OpenEmployeeDatabase;
using ::fieldrep::testing::PopulateEmployees;
using ::fieldrep::testing::TraversePath;

std::string Padded(const std::string& s, size_t n = 20) {
  std::string out = s;
  out.resize(n, '\0');
  return out;
}

class ReplicationTest : public ::testing::Test {
 protected:
  void SetUp() override {
    db_ = OpenEmployeeDatabase();
    fixture_ = PopulateEmployees(db_.get(), 2, 4, 20);
  }

  Value ReplicaFor(const std::string& spec, const Oid& head) {
    const ReplicationPathInfo* path = db_->catalog().FindPathBySpec(spec);
    EXPECT_NE(path, nullptr);
    Object object;
    EXPECT_TRUE(db_->Get(path->bound.set_name, head, &object).ok());
    std::vector<Value> values;
    EXPECT_TRUE(
        db_->replication().ReadReplicatedValues(*path, object, &values).ok());
    EXPECT_FALSE(values.empty());
    return values.empty() ? Value::Null() : values[0];
  }

  void VerifyPath(const std::string& spec) {
    const ReplicationPathInfo* path = db_->catalog().FindPathBySpec(spec);
    ASSERT_NE(path, nullptr);
    FR_ASSERT_OK(db_->replication().VerifyPathConsistency(path->id));
  }

  std::unique_ptr<Database> db_;
  EmployeeFixture fixture_;
};

// --- Path creation / bulk build ------------------------------------------------

TEST_F(ReplicationTest, CreateOneLevelInPlacePath) {
  FR_ASSERT_OK(db_->Replicate("Emp1.dept.name", {}));
  VerifyPath("Emp1.dept.name");
  for (const Oid& emp : fixture_.emps) {
    Value expected = TraversePath(db_.get(), "Emp1", emp, {"dept", "name"});
    EXPECT_EQ(ReplicaFor("Emp1.dept.name", emp), expected);
  }
}

TEST_F(ReplicationTest, CreateTwoLevelInPlacePath) {
  FR_ASSERT_OK(db_->Replicate("Emp1.dept.org.name", {}));
  VerifyPath("Emp1.dept.org.name");
  const ReplicationPathInfo* path =
      db_->catalog().FindPathBySpec("Emp1.dept.org.name");
  EXPECT_EQ(path->link_sequence.size(), 2u);
  for (const Oid& emp : fixture_.emps) {
    Value expected =
        TraversePath(db_.get(), "Emp1", emp, {"dept", "org", "name"});
    EXPECT_EQ(ReplicaFor("Emp1.dept.org.name", emp), expected);
  }
}

TEST_F(ReplicationTest, CreateSeparatePath) {
  ReplicateOptions options;
  options.strategy = ReplicationStrategy::kSeparate;
  FR_ASSERT_OK(db_->Replicate("Emp1.dept.name", options));
  VerifyPath("Emp1.dept.name");
  const ReplicationPathInfo* path =
      db_->catalog().FindPathBySpec("Emp1.dept.name");
  // 1-level separate path: no inverted path at all (Section 5.2).
  EXPECT_TRUE(path->link_sequence.empty());
  EXPECT_NE(path->replica_set_file, kInvalidFileId);
  // Replica records shared: one per referenced DEPT.
  auto file = db_->GetAuxFile(path->replica_set_file);
  ASSERT_TRUE(file.ok());
  EXPECT_EQ((*file)->record_count(), 4u);  // all four depts referenced
}

TEST_F(ReplicationTest, TwoLevelSeparateHasOneLevelInvertedPath) {
  ReplicateOptions options;
  options.strategy = ReplicationStrategy::kSeparate;
  FR_ASSERT_OK(db_->Replicate("Emp1.dept.org.name", options));
  const ReplicationPathInfo* path =
      db_->catalog().FindPathBySpec("Emp1.dept.org.name");
  EXPECT_EQ(path->link_sequence.size(), 1u);  // (n-1)-level inverted path
  VerifyPath("Emp1.dept.org.name");
}

TEST_F(ReplicationTest, AllPathReplicatesEveryField) {
  FR_ASSERT_OK(db_->Replicate("Emp1.dept.all", {}));
  VerifyPath("Emp1.dept.all");
  const ReplicationPathInfo* path =
      db_->catalog().FindPathBySpec("Emp1.dept.all");
  ASSERT_EQ(path->bound.terminal_fields.size(), 3u);
  Object emp;
  FR_ASSERT_OK(db_->Get("Emp1", fixture_.emps[0], &emp));
  std::vector<Value> values;
  FR_ASSERT_OK(db_->replication().ReadReplicatedValues(*path, emp, &values));
  EXPECT_EQ(values[0], Value(Padded("dept0")));
  EXPECT_EQ(values[1], Value(int32_t{0}));
  EXPECT_TRUE(values[2].is_ref());  // the org ref attribute
}

TEST_F(ReplicationTest, SharedPrefixSharesLinks) {
  FR_ASSERT_OK(db_->Replicate("Emp1.dept.budget", {}));
  FR_ASSERT_OK(db_->Replicate("Emp1.dept.name", {}));
  FR_ASSERT_OK(db_->Replicate("Emp1.dept.org.name", {}));
  const auto* p1 = db_->catalog().FindPathBySpec("Emp1.dept.budget");
  const auto* p2 = db_->catalog().FindPathBySpec("Emp1.dept.name");
  const auto* p3 = db_->catalog().FindPathBySpec("Emp1.dept.org.name");
  // The paper's link sequences: (1), (1), (1,2).
  ASSERT_EQ(p1->link_sequence.size(), 1u);
  EXPECT_EQ(p1->link_sequence, p2->link_sequence);
  ASSERT_EQ(p3->link_sequence.size(), 2u);
  EXPECT_EQ(p3->link_sequence[0], p1->link_sequence[0]);
  // A path from another set gets a fresh link id.
  testing::PopulateEmployees(db_.get(), 0, 0, 0);  // no-op, keep types
  FR_ASSERT_OK(db_->Replicate("Emp2.dept.org", {}));
  const auto* p4 = db_->catalog().FindPathBySpec("Emp2.dept.org");
  ASSERT_EQ(p4->link_sequence.size(), 1u);
  EXPECT_NE(p4->link_sequence[0], p1->link_sequence[0]);
  VerifyPath("Emp1.dept.budget");
  VerifyPath("Emp1.dept.name");
  VerifyPath("Emp1.dept.org.name");
}

TEST_F(ReplicationTest, RefTerminalPathCollapsesLevels) {
  // Section 3.3.3: replicate Emp1.dept.org gives 1-join access to ORG data.
  FR_ASSERT_OK(db_->Replicate("Emp1.dept.org", {}));
  VerifyPath("Emp1.dept.org");
  Value replica = ReplicaFor("Emp1.dept.org", fixture_.emps[0]);
  ASSERT_TRUE(replica.is_ref());
  EXPECT_EQ(replica.as_ref(), fixture_.orgs[0]);
}

TEST_F(ReplicationTest, RejectsInvalidOptions) {
  ReplicateOptions collapsed_separate;
  collapsed_separate.strategy = ReplicationStrategy::kSeparate;
  collapsed_separate.collapsed = true;
  EXPECT_FALSE(db_->Replicate("Emp1.dept.org.name", collapsed_separate).ok());
  ReplicateOptions collapsed_1level;
  collapsed_1level.collapsed = true;
  EXPECT_FALSE(db_->Replicate("Emp1.dept.name", collapsed_1level).ok());
  // Zero-level path.
  EXPECT_FALSE(db_->Replicate("Emp1.salary", {}).ok());
  // Duplicate.
  FR_ASSERT_OK(db_->Replicate("Emp1.dept.name", {}));
  EXPECT_FALSE(db_->Replicate("Emp1.dept.name", {}).ok());
}

// --- Update propagation (Section 4.1) -------------------------------------------

TEST_F(ReplicationTest, InPlaceScalarUpdatePropagates) {
  FR_ASSERT_OK(db_->Replicate("Emp1.dept.name", {}));
  FR_ASSERT_OK(
      db_->Update("Dept", fixture_.depts[1], "name", Value("renamed")));
  VerifyPath("Emp1.dept.name");
  for (size_t k = 0; k < fixture_.emps.size(); ++k) {
    Value expected = (k % 4 == 1) ? Value(Padded("renamed"))
                                  : Value(Padded("dept" + std::to_string(k % 4)));
    EXPECT_EQ(ReplicaFor("Emp1.dept.name", fixture_.emps[k]), expected) << k;
  }
}

TEST_F(ReplicationTest, UnreplicatedFieldUpdateDoesNotPropagate) {
  FR_ASSERT_OK(db_->Replicate("Emp1.dept.name", {}));
  // budget is not replicated; update must not disturb replicas.
  FR_ASSERT_OK(
      db_->Update("Dept", fixture_.depts[1], "budget", Value(int32_t{999})));
  VerifyPath("Emp1.dept.name");
}

TEST_F(ReplicationTest, TwoLevelScalarUpdatePropagates) {
  FR_ASSERT_OK(db_->Replicate("Emp1.dept.org.name", {}));
  FR_ASSERT_OK(db_->Update("Org", fixture_.orgs[0], "name", Value("mega")));
  VerifyPath("Emp1.dept.org.name");
  Value replica = ReplicaFor("Emp1.dept.org.name", fixture_.emps[0]);
  EXPECT_EQ(replica, Value(Padded("mega")));
}

TEST_F(ReplicationTest, SeparateScalarUpdateTouchesOnlyReplica) {
  ReplicateOptions options;
  options.strategy = ReplicationStrategy::kSeparate;
  FR_ASSERT_OK(db_->Replicate("Emp1.dept.name", options));
  FR_ASSERT_OK(
      db_->Update("Dept", fixture_.depts[2], "name", Value("changed")));
  VerifyPath("Emp1.dept.name");
  EXPECT_EQ(ReplicaFor("Emp1.dept.name", fixture_.emps[2]),
            Value(Padded("changed")));
}

TEST_F(ReplicationTest, InsertHeadMaintainsPath) {
  FR_ASSERT_OK(db_->Replicate("Emp1.dept.org.name", {}));
  Object emp(0, {Value("newbie"), Value(int32_t{30}), Value(int32_t{5}),
                 Value(fixture_.depts[3])});
  Oid oid;
  FR_ASSERT_OK(db_->Insert("Emp1", emp, &oid));
  VerifyPath("Emp1.dept.org.name");
  Value expected = TraversePath(db_.get(), "Emp1", oid, {"dept", "org", "name"});
  EXPECT_EQ(ReplicaFor("Emp1.dept.org.name", oid), expected);
}

TEST_F(ReplicationTest, InsertHeadWithNullRefGetsNullReplica) {
  FR_ASSERT_OK(db_->Replicate("Emp1.dept.name", {}));
  Object emp(0, {Value("lost"), Value(int32_t{30}), Value(int32_t{5}),
                 Value::Null()});
  Oid oid;
  FR_ASSERT_OK(db_->Insert("Emp1", emp, &oid));
  VerifyPath("Emp1.dept.name");
  EXPECT_TRUE(ReplicaFor("Emp1.dept.name", oid).is_null());
}

TEST_F(ReplicationTest, DeleteHeadMaintainsPath) {
  FR_ASSERT_OK(db_->Replicate("Emp1.dept.org.name", {}));
  // Delete all employees of dept 2; its link objects must disappear, and
  // consistency must hold throughout.
  for (size_t k = 2; k < fixture_.emps.size(); k += 4) {
    FR_ASSERT_OK(db_->Delete("Emp1", fixture_.emps[k]));
  }
  VerifyPath("Emp1.dept.org.name");
  Object dept;
  FR_ASSERT_OK(db_->Get("Dept", fixture_.depts[2], &dept));
  EXPECT_TRUE(dept.link_refs().empty());  // left the path entirely
}

TEST_F(ReplicationTest, DeleteReferencedInteriorObjectFails) {
  FR_ASSERT_OK(db_->Replicate("Emp1.dept.name", {}));
  EXPECT_EQ(db_->Delete("Dept", fixture_.depts[0]).code(),
            StatusCode::kFailedPrecondition);
}

TEST_F(ReplicationTest, HeadRefUpdateMovesMembership) {
  // Section 4.1.1's update E.dept: delete-then-insert semantics.
  FR_ASSERT_OK(db_->Replicate("Emp1.dept.name", {}));
  Oid emp = fixture_.emps[0];  // dept0
  FR_ASSERT_OK(db_->Update("Emp1", emp, "dept", Value(fixture_.depts[3])));
  VerifyPath("Emp1.dept.name");
  EXPECT_EQ(ReplicaFor("Emp1.dept.name", emp), Value(Padded("dept3")));
  // And to null.
  FR_ASSERT_OK(db_->Update("Emp1", emp, "dept", Value::Null()));
  VerifyPath("Emp1.dept.name");
  EXPECT_TRUE(ReplicaFor("Emp1.dept.name", emp).is_null());
  // And back.
  FR_ASSERT_OK(db_->Update("Emp1", emp, "dept", Value(fixture_.depts[1])));
  VerifyPath("Emp1.dept.name");
  EXPECT_EQ(ReplicaFor("Emp1.dept.name", emp), Value(Padded("dept1")));
}

TEST_F(ReplicationTest, InteriorRefUpdateRepropagates) {
  // Section 4.1.2: D.org changes from O to X — X.name must replace O.name
  // in all Emp1 objects that reference D.
  FR_ASSERT_OK(db_->Replicate("Emp1.dept.org.name", {}));
  FR_ASSERT_OK(
      db_->Update("Dept", fixture_.depts[0], "org", Value(fixture_.orgs[1])));
  VerifyPath("Emp1.dept.org.name");
  EXPECT_EQ(ReplicaFor("Emp1.dept.org.name", fixture_.emps[0]),
            Value(Padded("org1")));
  // Subsequent updates to the *new* org propagate; old org updates don't
  // reach these heads.
  FR_ASSERT_OK(db_->Update("Org", fixture_.orgs[1], "name", Value("newname")));
  EXPECT_EQ(ReplicaFor("Emp1.dept.org.name", fixture_.emps[0]),
            Value(Padded("newname")));
  VerifyPath("Emp1.dept.org.name");
}

TEST_F(ReplicationTest, SeparateRefUpdateRepointsHeads) {
  // Figure 8's example: D2.org changes from O2 to O1 — E3 must reference
  // R1 rather than R2.
  ReplicateOptions options;
  options.strategy = ReplicationStrategy::kSeparate;
  FR_ASSERT_OK(db_->Replicate("Emp1.dept.org.name", options));
  FR_ASSERT_OK(
      db_->Update("Dept", fixture_.depts[1], "org", Value(fixture_.orgs[0])));
  VerifyPath("Emp1.dept.org.name");
  EXPECT_EQ(ReplicaFor("Emp1.dept.org.name", fixture_.emps[1]),
            Value(Padded("org0")));
}

TEST_F(ReplicationTest, SeparateRefcountsTrackHeads) {
  ReplicateOptions options;
  options.strategy = ReplicationStrategy::kSeparate;
  FR_ASSERT_OK(db_->Replicate("Emp1.dept.name", options));
  const ReplicationPathInfo* path =
      db_->catalog().FindPathBySpec("Emp1.dept.name");
  Object dept;
  FR_ASSERT_OK(db_->Get("Dept", fixture_.depts[0], &dept));
  const ReplicaRefSlot* slot = dept.FindReplicaRef(path->id);
  ASSERT_NE(slot, nullptr);
  EXPECT_EQ(slot->refcount, 5u);  // 20 emps round-robin over 4 depts
  // Retarget one employee away: refcount drops; replica record survives.
  FR_ASSERT_OK(db_->Update("Emp1", fixture_.emps[0], "dept",
                           Value(fixture_.depts[1])));
  FR_ASSERT_OK(db_->Get("Dept", fixture_.depts[0], &dept));
  EXPECT_EQ(dept.FindReplicaRef(path->id)->refcount, 4u);
  VerifyPath("Emp1.dept.name");
  // Move everyone off dept0: its replica record must be deleted.
  for (size_t k = 4; k < fixture_.emps.size(); k += 4) {
    FR_ASSERT_OK(db_->Update("Emp1", fixture_.emps[k], "dept",
                             Value(fixture_.depts[1])));
  }
  FR_ASSERT_OK(db_->Get("Dept", fixture_.depts[0], &dept));
  EXPECT_EQ(dept.FindReplicaRef(path->id), nullptr);
  VerifyPath("Emp1.dept.name");
}

// --- Optimizations (Section 4.3) ------------------------------------------------

TEST_F(ReplicationTest, SmallLinksAreInlined) {
  // With threshold 1 and a dept referenced by a single employee, no link
  // object is materialized (Section 4.3.1).
  auto db = OpenEmployeeDatabase();
  auto fixture = PopulateEmployees(db.get(), 1, 3, 3);  // 1 emp per dept
  ReplicateOptions options;
  options.inline_threshold = 1;
  FR_ASSERT_OK(db->Replicate("Emp1.dept.name", options));
  const ReplicationPathInfo* path =
      db->catalog().FindPathBySpec("Emp1.dept.name");
  Object dept;
  FR_ASSERT_OK(db->Get("Dept", fixture.depts[0], &dept));
  const LinkRef* ref = dept.FindLinkRef(path->link_sequence[0]);
  ASSERT_NE(ref, nullptr);
  EXPECT_TRUE(ref->inlined);
  const LinkInfo* link =
      db->catalog().link_registry().GetLink(path->link_sequence[0]);
  auto link_file = db->GetAuxFile(link->link_set_file);
  ASSERT_TRUE(link_file.ok());
  EXPECT_EQ((*link_file)->record_count(), 0u);  // nothing materialized
  FR_ASSERT_OK(db->replication().VerifyPathConsistency(path->id));
}

TEST_F(ReplicationTest, InlineSpillsWhenThresholdExceeded) {
  auto db = OpenEmployeeDatabase();
  auto fixture = PopulateEmployees(db.get(), 1, 1, 2);  // 2 emps, 1 dept
  ReplicateOptions options;
  options.inline_threshold = 2;
  FR_ASSERT_OK(db->Replicate("Emp1.dept.name", options));
  const ReplicationPathInfo* path =
      db->catalog().FindPathBySpec("Emp1.dept.name");
  Object dept;
  FR_ASSERT_OK(db->Get("Dept", fixture.depts[0], &dept));
  EXPECT_TRUE(dept.FindLinkRef(path->link_sequence[0])->inlined);
  // Third employee spills the inline ref into a real link object.
  Object emp(0, {Value("e3"), Value(int32_t{33}), Value(int32_t{3}),
                 Value(fixture.depts[0])});
  Oid oid;
  FR_ASSERT_OK(db->Insert("Emp1", emp, &oid));
  FR_ASSERT_OK(db->Get("Dept", fixture.depts[0], &dept));
  const LinkRef* ref = dept.FindLinkRef(path->link_sequence[0]);
  ASSERT_NE(ref, nullptr);
  EXPECT_FALSE(ref->inlined);
  FR_ASSERT_OK(db->replication().VerifyPathConsistency(path->id));
  // Propagation still reaches all three.
  FR_ASSERT_OK(db->Update("Dept", fixture.depts[0], "name", Value("x")));
  FR_ASSERT_OK(db->replication().VerifyPathConsistency(path->id));
}

TEST_F(ReplicationTest, CollapsedPathPropagatesDirectly) {
  // Section 4.3.3 / Figure 6.
  ReplicateOptions options;
  options.collapsed = true;
  FR_ASSERT_OK(db_->Replicate("Emp1.dept.org.name", options));
  const ReplicationPathInfo* path =
      db_->catalog().FindPathBySpec("Emp1.dept.org.name");
  EXPECT_EQ(path->link_sequence.size(), 1u);  // one collapsed link
  VerifyPath("Emp1.dept.org.name");
  FR_ASSERT_OK(db_->Update("Org", fixture_.orgs[0], "name", Value("direct")));
  VerifyPath("Emp1.dept.org.name");
  EXPECT_EQ(ReplicaFor("Emp1.dept.org.name", fixture_.emps[0]),
            Value(Padded("direct")));
}

TEST_F(ReplicationTest, CollapsedPathHandlesIntermediateRetarget) {
  // Figure 6: D.org set to X — the tagged OIDs move to X's link object.
  ReplicateOptions options;
  options.collapsed = true;
  FR_ASSERT_OK(db_->Replicate("Emp1.dept.org.name", options));
  FR_ASSERT_OK(
      db_->Update("Dept", fixture_.depts[0], "org", Value(fixture_.orgs[1])));
  VerifyPath("Emp1.dept.org.name");
  EXPECT_EQ(ReplicaFor("Emp1.dept.org.name", fixture_.emps[0]),
            Value(Padded("org1")));
  // Head ref updates also keep collapsed tags right.
  FR_ASSERT_OK(db_->Update("Emp1", fixture_.emps[0], "dept",
                           Value(fixture_.depts[1])));
  VerifyPath("Emp1.dept.org.name");
}

// --- DropPath --------------------------------------------------------------------

TEST_F(ReplicationTest, DropPathStripsHiddenState) {
  FR_ASSERT_OK(db_->Replicate("Emp1.dept.name", {}));
  FR_ASSERT_OK(db_->DropReplication("Emp1.dept.name"));
  EXPECT_EQ(db_->catalog().FindPathBySpec("Emp1.dept.name"), nullptr);
  Object emp, dept;
  FR_ASSERT_OK(db_->Get("Emp1", fixture_.emps[0], &emp));
  EXPECT_FALSE(emp.HasHiddenState());
  FR_ASSERT_OK(db_->Get("Dept", fixture_.depts[0], &dept));
  EXPECT_FALSE(dept.HasHiddenState());
  // The interior object is deletable again once nothing references it
  // through a path.
  FR_ASSERT_OK(db_->Replicate("Emp1.dept.name", {}));  // re-creatable
  VerifyPath("Emp1.dept.name");
}

TEST_F(ReplicationTest, DropSharedPrefixKeepsSurvivor) {
  FR_ASSERT_OK(db_->Replicate("Emp1.dept.name", {}));
  FR_ASSERT_OK(db_->Replicate("Emp1.dept.budget", {}));
  FR_ASSERT_OK(db_->DropReplication("Emp1.dept.name"));
  VerifyPath("Emp1.dept.budget");
  // Propagation still works for the survivor.
  FR_ASSERT_OK(
      db_->Update("Dept", fixture_.depts[0], "budget", Value(int32_t{777})));
  VerifyPath("Emp1.dept.budget");
  EXPECT_EQ(ReplicaFor("Emp1.dept.budget", fixture_.emps[0]),
            Value(int32_t{777}));
}

TEST_F(ReplicationTest, DropSeparatePathFreesReplicas) {
  ReplicateOptions options;
  options.strategy = ReplicationStrategy::kSeparate;
  FR_ASSERT_OK(db_->Replicate("Emp1.dept.name", options));
  FileId replica_file =
      db_->catalog().FindPathBySpec("Emp1.dept.name")->replica_set_file;
  FR_ASSERT_OK(db_->DropReplication("Emp1.dept.name"));
  auto file = db_->GetAuxFile(replica_file);
  ASSERT_TRUE(file.ok());
  EXPECT_EQ((*file)->record_count(), 0u);
  Object dept;
  FR_ASSERT_OK(db_->Get("Dept", fixture_.depts[0], &dept));
  EXPECT_FALSE(dept.HasHiddenState());
}

// --- Mixed strategies (Section 5.3) -----------------------------------------------

TEST_F(ReplicationTest, InPlaceAndSeparateCoexistAndShareLinks) {
  ReplicateOptions separate;
  separate.strategy = ReplicationStrategy::kSeparate;
  FR_ASSERT_OK(db_->Replicate("Emp1.dept.org.name", separate));
  FR_ASSERT_OK(db_->Replicate("Emp1.dept.budget", {}));
  const auto* p_sep = db_->catalog().FindPathBySpec("Emp1.dept.org.name");
  const auto* p_inp = db_->catalog().FindPathBySpec("Emp1.dept.budget");
  // Both need link Emp1.dept; they share it (Section 5.3: "links can even
  // be shared by the two strategies").
  ASSERT_FALSE(p_sep->link_sequence.empty());
  ASSERT_FALSE(p_inp->link_sequence.empty());
  EXPECT_EQ(p_sep->link_sequence[0], p_inp->link_sequence[0]);
  VerifyPath("Emp1.dept.org.name");
  VerifyPath("Emp1.dept.budget");
  // Mutations keep both consistent.
  FR_ASSERT_OK(
      db_->Update("Dept", fixture_.depts[0], "budget", Value(int32_t{5})));
  FR_ASSERT_OK(db_->Update("Org", fixture_.orgs[0], "name", Value("x")));
  FR_ASSERT_OK(db_->Update("Emp1", fixture_.emps[0], "dept",
                           Value(fixture_.depts[2])));
  VerifyPath("Emp1.dept.org.name");
  VerifyPath("Emp1.dept.budget");
}

TEST_F(ReplicationTest, SeparateSelfReferencingRejected) {
  FR_ASSERT_OK(db_->DefineType(
      TypeDescriptor("NODE", {Int32Attr("v"), RefAttr("next", "NODE")})));
  FR_ASSERT_OK(db_->CreateSet("Nodes", "NODE"));
  ReplicateOptions options;
  options.strategy = ReplicationStrategy::kSeparate;
  EXPECT_EQ(db_->Replicate("Nodes.next.v", options).code(),
            StatusCode::kNotSupported);
  // In-place self-referencing works.
  FR_ASSERT_OK(db_->Replicate("Nodes.next.v", {}));
}

TEST_F(ReplicationTest, SelfReferencingInPlaceMaintains) {
  FR_ASSERT_OK(db_->DefineType(
      TypeDescriptor("NODE", {Int32Attr("v"), RefAttr("next", "NODE")})));
  FR_ASSERT_OK(db_->CreateSet("Nodes", "NODE"));
  FR_ASSERT_OK(db_->Replicate("Nodes.next.v", {}));
  Oid a, b;
  FR_ASSERT_OK(db_->Insert("Nodes", Object(0, {Value(int32_t{1}),
                                               Value::Null()}), &a));
  FR_ASSERT_OK(db_->Insert("Nodes", Object(0, {Value(int32_t{2}),
                                               Value(a)}), &b));
  const auto* path = db_->catalog().FindPathBySpec("Nodes.next.v");
  FR_ASSERT_OK(db_->replication().VerifyPathConsistency(path->id));
  // Updating a's value propagates into b's replica; a updates itself too.
  FR_ASSERT_OK(db_->Update("Nodes", a, "v", Value(int32_t{99})));
  FR_ASSERT_OK(db_->replication().VerifyPathConsistency(path->id));
  Object node_b;
  FR_ASSERT_OK(db_->Get("Nodes", b, &node_b));
  EXPECT_EQ(node_b.FindReplicaValues(path->id)->values[0], Value(int32_t{99}));
}

TEST_F(ReplicationTest, ClusteredLinksShareOneFileAndStayConsistent) {
  // Section 4.3.2: both levels' link objects live in one file, grouped by
  // terminal chain.
  ReplicateOptions options;
  options.cluster_links = true;
  options.inline_threshold = 0;
  FR_ASSERT_OK(db_->Replicate("Emp1.dept.org.name", options));
  const ReplicationPathInfo* path =
      db_->catalog().FindPathBySpec("Emp1.dept.org.name");
  ASSERT_EQ(path->link_sequence.size(), 2u);
  const LinkInfo* l1 =
      db_->catalog().link_registry().GetLink(path->link_sequence[0]);
  const LinkInfo* l2 =
      db_->catalog().link_registry().GetLink(path->link_sequence[1]);
  EXPECT_EQ(l1->link_set_file, l2->link_set_file);
  VerifyPath("Emp1.dept.org.name");
  // Full maintenance still works on the clustered layout.
  FR_ASSERT_OK(db_->Update("Org", fixture_.orgs[0], "name", Value("clu")));
  FR_ASSERT_OK(
      db_->Update("Dept", fixture_.depts[0], "org", Value(fixture_.orgs[1])));
  FR_ASSERT_OK(db_->Update("Emp1", fixture_.emps[0], "dept",
                           Value(fixture_.depts[2])));
  VerifyPath("Emp1.dept.org.name");
}

TEST_F(ReplicationTest, ClusterLinksOptionValidation) {
  ReplicateOptions options;
  options.cluster_links = true;
  // 1-level path: nothing to cluster.
  EXPECT_EQ(db_->Replicate("Emp1.dept.name", options).code(),
            StatusCode::kNotSupported);
  // Separate strategy unsupported.
  options.strategy = ReplicationStrategy::kSeparate;
  EXPECT_EQ(db_->Replicate("Emp1.dept.org.name", options).code(),
            StatusCode::kNotSupported);
  // Sharing a link with an existing path is the paper's clustering
  // conflict: refused.
  FR_ASSERT_OK(db_->Replicate("Emp1.dept.name", {}));
  options = ReplicateOptions();
  options.cluster_links = true;
  EXPECT_EQ(db_->Replicate("Emp1.dept.org.name", options).code(),
            StatusCode::kNotSupported);
}

TEST_F(ReplicationTest, PageSpanningLinkObjects) {
  // "Each link object can contain a large number of OIDs, and can be quite
  // large as a result": 1500 members need ~3 page-sized segments.
  auto db = OpenEmployeeDatabase(16384);
  auto fixture = PopulateEmployees(db.get(), 1, 1, 0);
  ReplicateOptions options;
  options.inline_threshold = 0;
  FR_ASSERT_OK(db->Replicate("Emp1.dept.name", options));
  std::vector<Oid> emps;
  for (int k = 0; k < 1500; ++k) {
    Object emp(0, {Value("e"), Value(int32_t{20}), Value(int32_t{k}),
                   Value(fixture.depts[0])});
    Oid oid;
    FR_ASSERT_OK(db->Insert("Emp1", emp, &oid));
    emps.push_back(oid);
  }
  const ReplicationPathInfo* path =
      db->catalog().FindPathBySpec("Emp1.dept.name");
  FR_ASSERT_OK(db->replication().VerifyPathConsistency(path->id));
  // Propagation reaches all 1500 heads through the chained link object.
  FR_ASSERT_OK(db->Update("Dept", fixture.depts[0], "name", Value("big")));
  FR_ASSERT_OK(db->replication().VerifyPathConsistency(path->id));
  Object head;
  FR_ASSERT_OK(db->Get("Emp1", emps[1499], &head));
  std::string padded = "big";
  padded.resize(20, '\0');
  EXPECT_EQ(head.FindReplicaValues(path->id)->values[0], Value(padded));
  // Shrink below one segment and verify again.
  for (int k = 0; k < 1200; ++k) {
    FR_ASSERT_OK(db->Delete("Emp1", emps[k]));
  }
  FR_ASSERT_OK(db->replication().VerifyPathConsistency(path->id));
  FR_ASSERT_OK(db->Update("Dept", fixture.depts[0], "name", Value("small")));
  FR_ASSERT_OK(db->replication().VerifyPathConsistency(path->id));
}

TEST_F(ReplicationTest, VariableLengthAndWideFieldReplication) {
  // Replicas of int64 / double / variable-length string fields: growing a
  // replicated string grows every head object (handled by in-place page
  // growth or forwarding).
  auto db = OpenEmployeeDatabase();
  FR_ASSERT_OK(db->DefineType(TypeDescriptor(
      "WIDE", {Int64Attr("big"), DoubleAttr("ratio"), StringAttr("blurb")})));
  FR_ASSERT_OK(db->DefineType(TypeDescriptor(
      "REF", {Int32Attr("k"), RefAttr("wide", "WIDE")})));
  FR_ASSERT_OK(db->CreateSet("Wides", "WIDE"));
  FR_ASSERT_OK(db->CreateSet("Refs", "REF"));
  Oid wide;
  FR_ASSERT_OK(db->Insert(
      "Wides",
      Object(0, {Value(int64_t{1} << 40), Value(0.5), Value("tiny")}),
      &wide));
  std::vector<Oid> refs;
  for (int i = 0; i < 50; ++i) {
    Oid oid;
    FR_ASSERT_OK(
        db->Insert("Refs", Object(0, {Value(int32_t{i}), Value(wide)}),
                   &oid));
    refs.push_back(oid);
  }
  FR_ASSERT_OK(db->Replicate("Refs.wide.all", {}));
  const auto* path = db->catalog().FindPathBySpec("Refs.wide.all");
  FR_ASSERT_OK(db->replication().VerifyPathConsistency(path->id));
  // Grow the replicated string by two orders of magnitude.
  FR_ASSERT_OK(
      db->Update("Wides", wide, "blurb", Value(std::string(600, 'x'))));
  FR_ASSERT_OK(db->replication().VerifyPathConsistency(path->id));
  Object head;
  FR_ASSERT_OK(db->Get("Refs", refs[49], &head));
  const ReplicaValueSlot* slot = head.FindReplicaValues(path->id);
  ASSERT_NE(slot, nullptr);
  EXPECT_EQ(slot->values[0], Value(int64_t{1} << 40));
  EXPECT_EQ(slot->values[1], Value(0.5));
  EXPECT_EQ(slot->values[2], Value(std::string(600, 'x')));
  // Shrink again.
  FR_ASSERT_OK(db->Update("Wides", wide, "blurb", Value("s")));
  FR_ASSERT_OK(db->replication().VerifyPathConsistency(path->id));
  FR_ASSERT_OK(
      db->Update("Wides", wide, "ratio", Value(2.25)));
  FR_ASSERT_OK(db->replication().VerifyPathConsistency(path->id));
}

// --- Referential integrity --------------------------------------------------------

TEST_F(ReplicationTest, VerifierDetectsTamperedReplica) {
  // Writing around the ReplicationManager (straight through the ObjectSet)
  // desynchronizes a hidden replica; the verifier must catch it.
  FR_ASSERT_OK(db_->Replicate("Emp1.dept.name", {}));
  const ReplicationPathInfo* path =
      db_->catalog().FindPathBySpec("Emp1.dept.name");
  auto set = db_->GetSet("Emp1");
  ASSERT_TRUE(set.ok());
  Object object;
  FR_ASSERT_OK((*set)->Read(fixture_.emps[0], &object));
  object.SetReplicaValues(path->id, {Value(Padded("tampered"))});
  FR_ASSERT_OK((*set)->Write(fixture_.emps[0], object));
  Status s = db_->replication().VerifyPathConsistency(path->id);
  EXPECT_FALSE(s.ok());
  EXPECT_NE(s.message().find("stale replica"), std::string::npos);
}

TEST_F(ReplicationTest, VerifierDetectsBrokenLinkMembership) {
  FR_ASSERT_OK(db_->Replicate("Emp1.dept.name", {}));
  const ReplicationPathInfo* path =
      db_->catalog().FindPathBySpec("Emp1.dept.name");
  // Remove one head's membership from its dept's link object by hand.
  Object dept;
  FR_ASSERT_OK(db_->Get("Dept", fixture_.depts[0], &dept));
  Object* dept_ptr = &dept;
  bool on_path = true;
  FR_ASSERT_OK(db_->replication().ops().RemoveMember(
      path->link_sequence[0], fixture_.depts[0], dept_ptr,
      fixture_.emps[0], &on_path));
  Status s = db_->replication().VerifyPathConsistency(path->id);
  EXPECT_FALSE(s.ok());
}

TEST_F(ReplicationTest, VerifierDetectsStaleExtraMember) {
  FR_ASSERT_OK(db_->Replicate("Emp1.dept.name", {}));
  const ReplicationPathInfo* path =
      db_->catalog().FindPathBySpec("Emp1.dept.name");
  // Inject a member that does not reference this dept.
  Object dept;
  FR_ASSERT_OK(db_->Get("Dept", fixture_.depts[0], &dept));
  FR_ASSERT_OK(db_->replication().ops().AddMember(
      path->link_sequence[0], fixture_.depts[0], &dept,
      fixture_.emps[1]));  // emp1 references dept1, not dept0
  Status s = db_->replication().VerifyPathConsistency(path->id);
  EXPECT_FALSE(s.ok());
  EXPECT_NE(s.message().find("membership mismatch"), std::string::npos);
}

TEST_F(ReplicationTest, InsertValidatesReferences) {
  // Wrong target type.
  Object emp(0, {Value("bad"), Value(int32_t{1}), Value(int32_t{1}),
                 Value(fixture_.orgs[0])});
  Oid oid;
  EXPECT_FALSE(db_->Insert("Emp1", emp, &oid).ok());
  // Dangling OID.
  Object emp2(0, {Value("bad"), Value(int32_t{1}), Value(int32_t{1}),
                  Value(Oid(250, 9, 9))});
  EXPECT_FALSE(db_->Insert("Emp1", emp2, &oid).ok());
}

}  // namespace
}  // namespace fieldrep
