// fieldrep_server: the network front-end daemon (DESIGN.md §12).
//
//   fieldrep_server [options] <database-file>
//
//   --listen <addr>        listen address: "unix:/path" or "tcp:PORT"
//                          ("tcp:0" picks a free port; default unix socket
//                          next to the database file)
//   --max-sessions <n>     admission-control cap on concurrent sessions
//   --workers <n>          request worker threads
//   --sync-per-commit      fsync the log inside every commit instead of
//                          using group commit (the default batches
//                          concurrent commits behind one leader fsync)
//   --no-sync              never fsync on commit (benchmarks only: loses
//                          the durability of the most recent commits on
//                          a crash, never atomicity)
//   --query-threads <n>    worker threads for parallel read execution
//
// The database is opened (or created) with a write-ahead log at
// `<database-file>.wal`. The server prints "listening on <addr>" once it
// accepts connections and runs until SIGINT/SIGTERM, then stops the
// network front-end, checkpoints, and exits 0.
//
// Exit status: 0 = clean shutdown, 1 = bad usage, 2 = startup failure.

#include <signal.h>
#include <unistd.h>

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "db/database.h"
#include "net/server.h"

namespace {

int g_shutdown_pipe[2] = {-1, -1};

void HandleShutdownSignal(int /*signo*/) {
  const char byte = 1;
  // Best-effort: the pipe is only ever written here and read once.
  ssize_t ignored = ::write(g_shutdown_pipe[1], &byte, 1);
  (void)ignored;
}

void Usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s [--listen unix:/path|tcp:PORT] [--max-sessions n] "
               "[--workers n] [--query-threads n] [--sync-per-commit] "
               "[--no-sync] <database-file>\n",
               argv0);
}

}  // namespace

int main(int argc, char** argv) {
  std::string db_path;
  fieldrep::net::ServerOptions server_options;
  server_options.address.clear();  // Derived from db_path if left empty.
  bool sync_per_commit = false;
  bool no_sync = false;
  size_t query_threads = 1;

  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg == "--listen" && i + 1 < argc) {
      server_options.address = argv[++i];
    } else if (arg.rfind("--listen=", 0) == 0) {
      server_options.address = arg.substr(std::strlen("--listen="));
    } else if (arg == "--max-sessions" && i + 1 < argc) {
      server_options.max_sessions =
          static_cast<size_t>(std::strtoul(argv[++i], nullptr, 10));
    } else if (arg == "--workers" && i + 1 < argc) {
      server_options.worker_threads =
          static_cast<size_t>(std::strtoul(argv[++i], nullptr, 10));
    } else if (arg == "--query-threads" && i + 1 < argc) {
      query_threads =
          static_cast<size_t>(std::strtoul(argv[++i], nullptr, 10));
    } else if (arg == "--sync-per-commit") {
      sync_per_commit = true;
    } else if (arg == "--no-sync") {
      no_sync = true;
    } else if (arg == "--help" || arg == "-h") {
      Usage(argv[0]);
      return 0;
    } else if (!arg.empty() && arg[0] == '-') {
      std::fprintf(stderr, "unknown option: %s\n", arg.c_str());
      Usage(argv[0]);
      return 1;
    } else if (db_path.empty()) {
      db_path = arg;
    } else {
      Usage(argv[0]);
      return 1;
    }
  }
  if (db_path.empty() || (sync_per_commit && no_sync)) {
    Usage(argv[0]);
    return 1;
  }
  if (server_options.address.empty()) {
    server_options.address = "unix:" + db_path + ".sock";
  }

  fieldrep::Database::Options db_options;
  db_options.file_path = db_path;
  db_options.enable_wal = true;
  db_options.wal_sync_on_commit = !no_sync;
  db_options.wal_group_commit = !no_sync && !sync_per_commit;
  db_options.worker_threads = query_threads;
  auto db = fieldrep::Database::Open(db_options);
  if (!db.ok()) {
    std::fprintf(stderr, "fieldrep_server: cannot open %s: %s\n",
                 db_path.c_str(), db.status().ToString().c_str());
    return 2;
  }

  // Install the shutdown pipe before the server starts accepting so an
  // early signal cannot be lost.
  if (::pipe(g_shutdown_pipe) != 0) {
    std::perror("fieldrep_server: pipe");
    return 2;
  }
  struct sigaction sa;
  std::memset(&sa, 0, sizeof(sa));
  sa.sa_handler = HandleShutdownSignal;
  ::sigaction(SIGINT, &sa, nullptr);
  ::sigaction(SIGTERM, &sa, nullptr);
  ::signal(SIGPIPE, SIG_IGN);

  auto server = fieldrep::net::Server::Start(db.value().get(),
                                             server_options);
  if (!server.ok()) {
    std::fprintf(stderr, "fieldrep_server: cannot listen on %s: %s\n",
                 server_options.address.c_str(),
                 server.status().ToString().c_str());
    return 2;
  }
  std::printf("listening on %s\n", server.value()->address().c_str());
  std::fflush(stdout);

  char byte = 0;
  while (::read(g_shutdown_pipe[0], &byte, 1) < 0 && errno == EINTR) {
  }

  std::printf("shutting down\n");
  std::fflush(stdout);
  server.value()->Stop();
  fieldrep::Status s = db.value()->Checkpoint();
  if (!s.ok()) {
    std::fprintf(stderr, "fieldrep_server: checkpoint failed: %s\n",
                 s.ToString().c_str());
    return 2;
  }
  return 0;
}
