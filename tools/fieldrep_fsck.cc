// fieldrep_fsck: offline structural-invariant checker for fieldrep
// database files.
//
//   fieldrep_fsck [options] <database-file>
//
//   --wal <path>       log file to check/replay (default: <database>.wal)
//   --no-wal           ignore any log file
//   --include-info     report informational findings too
//   --max-findings N   stop after N findings (default 1000)
//   --quiet            print the summary line only
//   --stats            print the integrity pass's own work counters
//
// The checker never writes to the files: both the database and the log are
// copied page-by-page into memory and the database is opened (and, when a
// log is present, recovered) over the copies. Verification therefore sees
// the state a real reopen would see.
//
// Exit status: 0 = clean (warnings allowed), 1 = errors found,
// 2 = the file could not be opened as a database.

#include <sys/stat.h>

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>

#include "check/check_report.h"
#include "check/integrity_checker.h"
#include "db/database.h"
#include "storage/file_device.h"
#include "storage/memory_device.h"
#include "storage/page.h"

namespace {

using fieldrep::CheckOptions;
using fieldrep::CheckReport;
using fieldrep::CheckSeverity;
using fieldrep::Database;
using fieldrep::FileDevice;
using fieldrep::IntegrityChecker;
using fieldrep::kPageSize;
using fieldrep::MemoryDevice;
using fieldrep::PageId;
using fieldrep::Status;

bool FileExists(const std::string& path) {
  struct stat st;
  return stat(path.c_str(), &st) == 0;
}

/// Copies every page of the file at `path` into a fresh MemoryDevice.
Status SnapshotFile(const std::string& path,
                    std::unique_ptr<MemoryDevice>* out) {
  FileDevice file;
  FIELDREP_RETURN_IF_ERROR(file.Open(path));
  auto mem = std::make_unique<MemoryDevice>();
  uint8_t buf[kPageSize];
  for (PageId page = 0; page < file.page_count(); ++page) {
    FIELDREP_RETURN_IF_ERROR(file.ReadPage(page, buf));
    PageId copy_id = 0;
    FIELDREP_RETURN_IF_ERROR(mem->AllocatePage(&copy_id));
    FIELDREP_RETURN_IF_ERROR(mem->WritePage(copy_id, buf));
  }
  FIELDREP_RETURN_IF_ERROR(file.Close());
  *out = std::move(mem);
  return Status::OK();
}

void Usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s [--wal <path>] [--no-wal] [--include-info] "
               "[--max-findings N] [--quiet] [--stats] <database-file>\n",
               argv0);
}

}  // namespace

int main(int argc, char** argv) {
  std::string db_path;
  std::string wal_path;
  bool no_wal = false;
  bool quiet = false;
  bool stats = false;
  CheckOptions options;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--wal" && i + 1 < argc) {
      wal_path = argv[++i];
    } else if (arg == "--no-wal") {
      no_wal = true;
    } else if (arg == "--include-info") {
      options.include_info = true;
    } else if (arg == "--max-findings" && i + 1 < argc) {
      options.max_findings =
          static_cast<size_t>(std::strtoull(argv[++i], nullptr, 10));
    } else if (arg == "--quiet") {
      quiet = true;
    } else if (arg == "--stats") {
      stats = true;
    } else if (arg == "--help" || arg == "-h") {
      Usage(argv[0]);
      return 0;
    } else if (!arg.empty() && arg[0] == '-') {
      std::fprintf(stderr, "unknown option: %s\n", arg.c_str());
      Usage(argv[0]);
      return 2;
    } else if (db_path.empty()) {
      db_path = arg;
    } else {
      Usage(argv[0]);
      return 2;
    }
  }
  if (db_path.empty()) {
    Usage(argv[0]);
    return 2;
  }
  if (!FileExists(db_path)) {
    std::fprintf(stderr, "fieldrep_fsck: %s: no such file\n",
                 db_path.c_str());
    return 2;
  }
  if (wal_path.empty()) wal_path = db_path + ".wal";

  // Snapshot the files so checking is strictly read-only.
  std::unique_ptr<MemoryDevice> db_copy;
  Status s = SnapshotFile(db_path, &db_copy);
  if (!s.ok()) {
    std::fprintf(stderr, "fieldrep_fsck: cannot read %s: %s\n",
                 db_path.c_str(), s.ToString().c_str());
    return 2;
  }
  std::unique_ptr<MemoryDevice> wal_copy;
  const bool have_wal = !no_wal && FileExists(wal_path);
  if (have_wal) {
    s = SnapshotFile(wal_path, &wal_copy);
    if (!s.ok()) {
      std::fprintf(stderr, "fieldrep_fsck: cannot read %s: %s\n",
                   wal_path.c_str(), s.ToString().c_str());
      return 2;
    }
  }

  Database::Options open_options;
  open_options.device = db_copy.get();
  if (have_wal) {
    open_options.enable_wal = true;
    open_options.wal_device = wal_copy.get();
  }
  auto db = Database::Open(open_options);
  if (!db.ok()) {
    std::fprintf(stderr, "fieldrep_fsck: cannot open %s as a database: %s\n",
                 db_path.c_str(), db.status().ToString().c_str());
    // A standalone log scan may still tell the operator something.
    if (have_wal) {
      CheckReport wal_report;
      IntegrityChecker::CheckWalDevice(wal_copy.get(), options.include_info,
                                       &wal_report);
      if (!wal_report.findings.empty()) {
        std::fprintf(stderr, "%s", wal_report.ToString().c_str());
      }
    }
    return 2;
  }
  if (have_wal && db.value()->recovery_stats().committed_txns > 0 &&
      !quiet) {
    std::printf("note: replayed %llu committed transaction(s) from %s "
                "before checking\n",
                static_cast<unsigned long long>(
                    db.value()->recovery_stats().committed_txns),
                wal_path.c_str());
  }

  CheckReport report;
  s = db.value()->CheckIntegrity(options, &report);
  if (!s.ok()) {
    std::fprintf(stderr, "fieldrep_fsck: checker failed: %s\n",
                 s.ToString().c_str());
    return 2;
  }

  if (quiet) {
    std::printf("%s: %zu error(s), %zu warning(s)\n", db_path.c_str(),
                report.error_count(), report.warning_count());
  } else {
    std::printf("%s", report.ToString().c_str());
  }
  if (stats) {
    std::printf("check statistics:\n%s", report.stats.ToString().c_str());
  }
  return report.ok() ? 0 : 1;
}
