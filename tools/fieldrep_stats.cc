// fieldrep_stats: metrics exporter for fieldrep database files.
//
//   fieldrep_stats [options] <database-file>
//   fieldrep_stats [options] --snapshot <metrics.json>
//   fieldrep_stats [options] --connect <address>
//
//   --format <f>       output format: text (default), json, prometheus
//   --wal <path>       log file to recover from (default: <database>.wal)
//   --no-wal           ignore any log file
//   --touch            run one full-projection read query per set before
//                      sampling, so the counters show representative
//                      activity instead of an idle open
//   --snapshot <file>  re-render a metrics JSON dump (produced by
//                      Database::DumpMetricsJson or `--format json`)
//                      instead of opening a database
//   --connect <addr>   scrape a live fieldrep_server ("unix:/path" or
//                      "tcp:host:port") instead of opening database files
//   --profile          also print the workload profile (text format only)
//
// Like fieldrep_fsck, the tool never writes to the files: database and
// log are snapshotted page-by-page into memory and opened over the
// copies, so exporting metrics from a live database's files is safe.
//
// Exit status: 0 = metrics rendered, 2 = the input could not be read.

#include <sys/stat.h>

#include <cstdio>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "catalog/catalog.h"
#include "client/client.h"
#include "db/database.h"
#include "query/read_query.h"
#include "storage/file_device.h"
#include "storage/memory_device.h"
#include "storage/page.h"
#include "telemetry/metrics.h"
#include "telemetry/workload_profiler.h"

namespace {

using fieldrep::Database;
using fieldrep::FileDevice;
using fieldrep::kPageSize;
using fieldrep::MemoryDevice;
using fieldrep::MetricSample;
using fieldrep::MetricsRegistry;
using fieldrep::PageId;
using fieldrep::ReadQuery;
using fieldrep::ReadResult;
using fieldrep::Status;

bool FileExists(const std::string& path) {
  struct stat st;
  return stat(path.c_str(), &st) == 0;
}

/// Copies every page of the file at `path` into a fresh MemoryDevice.
Status SnapshotFile(const std::string& path,
                    std::unique_ptr<MemoryDevice>* out) {
  FileDevice file;
  FIELDREP_RETURN_IF_ERROR(file.Open(path));
  auto mem = std::make_unique<MemoryDevice>();
  uint8_t buf[kPageSize];
  for (PageId page = 0; page < file.page_count(); ++page) {
    FIELDREP_RETURN_IF_ERROR(file.ReadPage(page, buf));
    PageId copy_id = 0;
    FIELDREP_RETURN_IF_ERROR(mem->AllocatePage(&copy_id));
    FIELDREP_RETURN_IF_ERROR(mem->WritePage(copy_id, buf));
  }
  FIELDREP_RETURN_IF_ERROR(file.Close());
  *out = std::move(mem);
  return Status::OK();
}

Status ReadWholeFile(const std::string& path, std::string* out) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) return Status::IOError("cannot open " + path);
  char buf[4096];
  size_t n;
  while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0) out->append(buf, n);
  bool failed = std::ferror(f) != 0;
  std::fclose(f);
  if (failed) return Status::IOError("read error on " + path);
  return Status::OK();
}

/// One read query per set, projecting every attribute plus every
/// replicated path rooted at the set — exercises the planner, the pool,
/// and the profiler so the exported counters are non-trivial.
Status TouchWorkload(Database* db) {
  const fieldrep::Catalog& catalog = db->catalog();
  for (const std::string& set_name : catalog.SetNames()) {
    auto set = db->GetSet(set_name);
    if (!set.ok()) continue;
    ReadQuery query;
    query.set_name = set_name;
    for (const fieldrep::AttributeDescriptor& attr :
         set.value()->type().attributes()) {
      query.projections.push_back(attr.name);
    }
    for (uint16_t path_id : catalog.AllPathIds()) {
      const fieldrep::ReplicationPathInfo* path = catalog.GetPath(path_id);
      if (path == nullptr || path->bound.set_name != set_name) continue;
      // "Emp1.dept.name" -> projection "dept.name".
      if (path->spec.size() > set_name.size() + 1) {
        query.projections.push_back(path->spec.substr(set_name.size() + 1));
      }
    }
    if (query.projections.empty()) continue;
    ReadResult result;
    FIELDREP_RETURN_IF_ERROR(db->Retrieve(query, &result));
  }
  return Status::OK();
}

void Usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s [--format text|json|prometheus] [--wal <path>] "
               "[--no-wal] [--touch] [--profile] <database-file>\n"
               "       %s [--format ...] --snapshot <metrics.json>\n"
               "       %s [--format ...] --connect <address>\n",
               argv0, argv0, argv0);
}

}  // namespace

int main(int argc, char** argv) {
  std::string db_path;
  std::string wal_path;
  std::string snapshot_path;
  std::string connect_addr;
  std::string format = "text";
  bool no_wal = false;
  bool touch = false;
  bool profile = false;

  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg == "--format" && i + 1 < argc) {
      format = argv[++i];
    } else if (arg.rfind("--format=", 0) == 0) {
      format = arg.substr(std::strlen("--format="));
    } else if (arg == "--wal" && i + 1 < argc) {
      wal_path = argv[++i];
    } else if (arg == "--no-wal") {
      no_wal = true;
    } else if (arg == "--touch") {
      touch = true;
    } else if (arg == "--profile") {
      profile = true;
    } else if (arg == "--snapshot" && i + 1 < argc) {
      snapshot_path = argv[++i];
    } else if (arg == "--connect" && i + 1 < argc) {
      connect_addr = argv[++i];
    } else if (arg.rfind("--connect=", 0) == 0) {
      connect_addr = arg.substr(std::strlen("--connect="));
    } else if (arg == "--help" || arg == "-h") {
      Usage(argv[0]);
      return 0;
    } else if (!arg.empty() && arg[0] == '-') {
      std::fprintf(stderr, "unknown option: %s\n", arg.c_str());
      Usage(argv[0]);
      return 2;
    } else if (db_path.empty()) {
      db_path = arg;
    } else {
      Usage(argv[0]);
      return 2;
    }
  }
  if (format != "text" && format != "json" && format != "prometheus") {
    std::fprintf(stderr, "unknown format: %s\n", format.c_str());
    Usage(argv[0]);
    return 2;
  }

  // Connect mode: scrape a live fieldrep_server over its wire protocol.
  // The server renders JSON; we re-render locally so every --format works
  // against any server version that speaks the metrics opcode.
  if (!connect_addr.empty()) {
    auto client = fieldrep::client::Client::Connect(connect_addr,
                                                    "fieldrep_stats");
    if (!client.ok()) {
      std::fprintf(stderr, "fieldrep_stats: cannot connect to %s: %s\n",
                   connect_addr.c_str(),
                   client.status().ToString().c_str());
      return 2;
    }
    std::string text;
    Status s = client.value()->Metrics("json", &text);
    if (!s.ok()) {
      std::fprintf(stderr, "fieldrep_stats: metrics scrape failed: %s\n",
                   s.ToString().c_str());
      return 2;
    }
    std::vector<MetricSample> samples;
    s = MetricsRegistry::ParseSamplesJson(text, &samples);
    if (!s.ok()) {
      std::fprintf(stderr,
                   "fieldrep_stats: server sent an invalid metrics dump: %s\n",
                   s.ToString().c_str());
      return 2;
    }
    std::string out = format == "json"
                          ? MetricsRegistry::SamplesToJson(samples)
                          : format == "prometheus"
                                ? MetricsRegistry::SamplesToPrometheus(samples)
                                : MetricsRegistry::SamplesToText(samples);
    std::fwrite(out.data(), 1, out.size(), stdout);
    return 0;
  }

  // Snapshot mode: re-render a dumped metrics JSON, no database needed.
  if (!snapshot_path.empty()) {
    std::string text;
    Status s = ReadWholeFile(snapshot_path, &text);
    if (!s.ok()) {
      std::fprintf(stderr, "fieldrep_stats: %s\n", s.ToString().c_str());
      return 2;
    }
    std::vector<MetricSample> samples;
    s = MetricsRegistry::ParseSamplesJson(text, &samples);
    if (!s.ok()) {
      std::fprintf(stderr, "fieldrep_stats: %s is not a metrics dump: %s\n",
                   snapshot_path.c_str(), s.ToString().c_str());
      return 2;
    }
    std::string out = format == "json"
                          ? MetricsRegistry::SamplesToJson(samples)
                          : format == "prometheus"
                                ? MetricsRegistry::SamplesToPrometheus(samples)
                                : MetricsRegistry::SamplesToText(samples);
    std::fwrite(out.data(), 1, out.size(), stdout);
    return 0;
  }

  if (db_path.empty()) {
    Usage(argv[0]);
    return 2;
  }
  if (!FileExists(db_path)) {
    std::fprintf(stderr, "fieldrep_stats: %s: no such file\n",
                 db_path.c_str());
    return 2;
  }
  if (wal_path.empty()) wal_path = db_path + ".wal";

  // Snapshot the files so sampling is strictly read-only.
  std::unique_ptr<MemoryDevice> db_copy;
  Status s = SnapshotFile(db_path, &db_copy);
  if (!s.ok()) {
    std::fprintf(stderr, "fieldrep_stats: cannot read %s: %s\n",
                 db_path.c_str(), s.ToString().c_str());
    return 2;
  }
  std::unique_ptr<MemoryDevice> wal_copy;
  const bool have_wal = !no_wal && FileExists(wal_path);
  if (have_wal) {
    s = SnapshotFile(wal_path, &wal_copy);
    if (!s.ok()) {
      std::fprintf(stderr, "fieldrep_stats: cannot read %s: %s\n",
                   wal_path.c_str(), s.ToString().c_str());
      return 2;
    }
  }

  Database::Options open_options;
  open_options.device = db_copy.get();
  if (have_wal) {
    open_options.enable_wal = true;
    open_options.wal_device = wal_copy.get();
  }
  auto db = Database::Open(open_options);
  if (!db.ok()) {
    std::fprintf(stderr, "fieldrep_stats: cannot open %s as a database: %s\n",
                 db_path.c_str(), db.status().ToString().c_str());
    return 2;
  }

  if (touch) {
    s = TouchWorkload(db.value().get());
    if (!s.ok()) {
      std::fprintf(stderr, "fieldrep_stats: touch workload failed: %s\n",
                   s.ToString().c_str());
      return 2;
    }
  }

  MetricsRegistry* metrics = db.value()->metrics();
  std::string out = format == "json"
                        ? metrics->RenderJson()
                        : format == "prometheus" ? metrics->RenderPrometheus()
                                                 : metrics->RenderText();
  std::fwrite(out.data(), 1, out.size(), stdout);
  if (profile && format == "text") {
    std::printf("\nworkload profile:\n%s",
                db.value()->Stats().ToString().c_str());
  }
  return 0;
}
