// fieldrep_client: command-line client for a running fieldrep_server.
//
//   fieldrep_client --connect <address> [mode]
//
// Modes (default --smoke):
//   --metrics [--format prometheus|json]   print the server's metrics
//   --catalog                              print the served schema
//   --smoke                                generic round trip: fetch the
//                                          catalog, Retrieve every set with
//                                          a full projection, print row
//                                          counts ("<set>: <rows> rows")
//
// The smoke mode is schema-agnostic — it discovers the sets over the
// kCatalog opcode — so CI can point it at any served database.
//
// Exit status: 0 = success, 1 = bad usage, 2 = connection/query failure.

#include <cstdio>
#include <cstring>
#include <string>

#include "client/client.h"

namespace {

void Usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s --connect <address> "
               "[--smoke | --catalog | --metrics [--format f]]\n",
               argv0);
}

int RunMetrics(fieldrep::client::Client* client, const std::string& format) {
  std::string text;
  fieldrep::Status s = client->Metrics(format, &text);
  if (!s.ok()) {
    std::fprintf(stderr, "fieldrep_client: metrics failed: %s\n",
                 s.ToString().c_str());
    return 2;
  }
  std::fwrite(text.data(), 1, text.size(), stdout);
  return 0;
}

int RunCatalog(fieldrep::client::Client* client) {
  fieldrep::net::CatalogInfo info;
  fieldrep::Status s = client->GetCatalog(&info);
  if (!s.ok()) {
    std::fprintf(stderr, "fieldrep_client: catalog failed: %s\n",
                 s.ToString().c_str());
    return 2;
  }
  for (const auto& set : info.sets) {
    std::printf("set %s : %s\n", set.name.c_str(), set.type_name.c_str());
    for (const auto& attr : set.attributes) {
      std::printf("  %-16s %s%s%s\n", attr.name.c_str(),
                  fieldrep::FieldTypeName(attr.type),
                  attr.ref_type.empty() ? "" : " -> ",
                  attr.ref_type.c_str());
    }
  }
  for (const auto& path : info.replicated_paths) {
    std::printf("replicated %s\n", path.c_str());
  }
  return 0;
}

int RunSmoke(fieldrep::client::Client* client) {
  fieldrep::net::CatalogInfo info;
  fieldrep::Status s = client->GetCatalog(&info);
  if (!s.ok()) {
    std::fprintf(stderr, "fieldrep_client: catalog failed: %s\n",
                 s.ToString().c_str());
    return 2;
  }
  for (const auto& set : info.sets) {
    fieldrep::ReadQuery query;
    query.set_name = set.name;
    for (const auto& attr : set.attributes) {
      // Reference attributes have no direct value; skip them and project
      // the scalar fields (enough to exercise fetch + decode).
      if (attr.ref_type.empty()) query.projections.push_back(attr.name);
    }
    if (query.projections.empty()) continue;
    fieldrep::ReadResult result;
    s = client->Retrieve(query, &result);
    if (!s.ok()) {
      std::fprintf(stderr, "fieldrep_client: retrieve %s failed: %s\n",
                   set.name.c_str(), s.ToString().c_str());
      return 2;
    }
    std::printf("%s: %zu rows\n", set.name.c_str(), result.rows.size());
  }
  std::printf("smoke ok (session %llu)\n",
              static_cast<unsigned long long>(client->session_id()));
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  std::string address;
  std::string mode = "--smoke";
  std::string format = "prometheus";

  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg == "--connect" && i + 1 < argc) {
      address = argv[++i];
    } else if (arg.rfind("--connect=", 0) == 0) {
      address = arg.substr(std::strlen("--connect="));
    } else if (arg == "--smoke" || arg == "--catalog" || arg == "--metrics") {
      mode = arg;
    } else if (arg == "--format" && i + 1 < argc) {
      format = argv[++i];
    } else if (arg.rfind("--format=", 0) == 0) {
      format = arg.substr(std::strlen("--format="));
    } else if (arg == "--help" || arg == "-h") {
      Usage(argv[0]);
      return 0;
    } else {
      std::fprintf(stderr, "unknown option: %s\n", arg.c_str());
      Usage(argv[0]);
      return 1;
    }
  }
  if (address.empty()) {
    Usage(argv[0]);
    return 1;
  }

  auto client = fieldrep::client::Client::Connect(address, "fieldrep_client");
  if (!client.ok()) {
    std::fprintf(stderr, "fieldrep_client: cannot connect to %s: %s\n",
                 address.c_str(), client.status().ToString().c_str());
    return 2;
  }

  if (mode == "--metrics") return RunMetrics(client.value().get(), format);
  if (mode == "--catalog") return RunCatalog(client.value().get());
  return RunSmoke(client.value().get());
}
