#ifndef FIELDREP_FIELDREP_H_
#define FIELDREP_FIELDREP_H_

/// \file
/// Umbrella header for the fieldrep library — the public API a downstream
/// user needs:
///
///  * Database (db/database.h): open, define types, create sets, insert/
///    update/delete objects, replicate paths, build indexes, run queries,
///    checkpoint.
///  * Query types (query/read_query.h, query/update_query.h,
///    query/predicate.h).
///  * Replication control (replication/replication_manager.h):
///    ReplicateOptions, consistency verification, deferred-propagation
///    flushing, inverse lookups.
///  * The Section 6 analytical cost model (costmodel/*).
///  * The EXTRA-flavoured statement language (extra/interpreter.h).
///
/// Internal layers (storage, catalog, objects, index) are reachable through
/// their own headers when needed; most applications should not need them.

#include "costmodel/cost_model.h"
#include "costmodel/params.h"
#include "costmodel/series.h"
#include "costmodel/yao.h"
#include "db/database.h"
#include "extra/interpreter.h"
#include "query/predicate.h"
#include "query/read_query.h"
#include "query/update_query.h"
#include "replication/replication_manager.h"

#endif  // FIELDREP_FIELDREP_H_
