#ifndef FIELDREP_CHECK_INTEGRITY_CHECKER_H_
#define FIELDREP_CHECK_INTEGRITY_CHECKER_H_

#include <string>

#include "check/check_report.h"
#include "common/status.h"

namespace fieldrep {

class Database;
class RecordFile;
class StorageDevice;

/// \brief Offline structural-invariant checker (the engine of
/// fieldrep_fsck and Database::CheckIntegrity).
///
/// Verifies an open database bottom-up, each layer assuming the ones below
/// it so a single corruption is reported where it lives:
///
///   1. storage      page headers, slot directories, free-space accounting,
///                   record-file page linkage, relocation stub pairing, and
///                   per-page checksums (read straight from the device);
///   2. index        B+ tree ordering/fanout plus an entry <-> object
///                   cross-check in both directions;
///   3. catalog      type/set/path/index definitions resolve; every stored
///                   object matches its set's type, its references resolve,
///                   and its hidden section names registered links/paths;
///   4. replication  for every `replicate` path the forward references and
///                   the inverted path are exact mirrors: replica values
///                   equal the terminal fields, link objects point both
///                   ways, S' records are owned, shared, refcounted, and
///                   S-ordered (the paper's Sections 4.1-4.3 and 5);
///   5. wal          log header/epoch sanity and record-stream structure.
///
/// The checker is read-only: it never repairs, never flushes deferred
/// propagations, and reports rather than fails — broken structures become
/// CheckFinding entries and checking continues (up to
/// CheckOptions::max_findings). The returned Status is non-OK only when
/// the checker itself cannot run.
class IntegrityChecker {
 public:
  IntegrityChecker(Database* db, const CheckOptions& options);

  /// Runs all enabled layers, appending to `report`.
  Status Run(CheckReport* report);

  /// Structural scan of a standalone log device (no database required):
  /// header validity, epoch, record-stream well-formedness, transaction
  /// bracket pairing. Used for layer 5 and by fieldrep_fsck on the `.wal`
  /// file.
  static void CheckWalDevice(StorageDevice* device, bool include_info,
                             CheckReport* report);

 private:
  void CheckStorage();
  void CheckRecordFile(const RecordFile& file, const std::string& context);
  void CheckDeviceChecksums();
  void CheckIndexes();
  void CheckCatalog();
  void CheckObjects(const std::string& set_name);
  void CheckReplication();
  void CheckLinkSets();
  void CheckReplicaSets();
  void CheckWal();

  /// True once the report hit CheckOptions::max_findings; layers bail out.
  bool Full() const;

  Database* db_;
  CheckOptions options_;
  CheckReport* report_ = nullptr;
};

}  // namespace fieldrep

#endif  // FIELDREP_CHECK_INTEGRITY_CHECKER_H_
