#ifndef FIELDREP_CHECK_INVARIANT_H_
#define FIELDREP_CHECK_INVARIANT_H_

namespace fieldrep {
namespace check {

/// Prints a diagnostic for a violated invariant and aborts. Out of line so
/// the macro below expands to almost nothing at call sites.
[[noreturn]] void InvariantFailure(const char* file, int line,
                                   const char* condition, const char* message);

}  // namespace check
}  // namespace fieldrep

/// FIELDREP_INVARIANT(cond, "message") — hot-path structural invariant.
///
/// Unlike assert(), failures identify the invariant in engine terms (what
/// structure was inconsistent) rather than just the expression, and the
/// macro can be force-enabled in optimized builds with
/// -DFIELDREP_ENABLE_INVARIANTS for soak testing. In release builds it
/// compiles away entirely; invariants must therefore never have side
/// effects. The offline checker (IntegrityChecker) verifies the same
/// invariants exhaustively; these are the cheap inline subset guarding the
/// mutation paths that could silently plant corruption.
#if !defined(NDEBUG) || defined(FIELDREP_ENABLE_INVARIANTS)
#define FIELDREP_INVARIANT(cond, message)                                  \
  do {                                                                     \
    if (!(cond)) {                                                         \
      ::fieldrep::check::InvariantFailure(__FILE__, __LINE__, #cond,       \
                                          (message));                      \
    }                                                                      \
  } while (false)
#else
#define FIELDREP_INVARIANT(cond, message) \
  do {                                    \
  } while (false)
#endif

#endif  // FIELDREP_CHECK_INVARIANT_H_
