#include "check/check_report.h"

#include "common/strings.h"

namespace fieldrep {

const char* CheckSeverityName(CheckSeverity severity) {
  switch (severity) {
    case CheckSeverity::kInfo:
      return "INFO";
    case CheckSeverity::kWarning:
      return "WARNING";
    case CheckSeverity::kError:
      return "ERROR";
  }
  return "UNKNOWN";
}

const char* CheckLayerName(CheckLayer layer) {
  switch (layer) {
    case CheckLayer::kStorage:
      return "storage";
    case CheckLayer::kIndex:
      return "index";
    case CheckLayer::kCatalog:
      return "catalog";
    case CheckLayer::kReplication:
      return "replication";
    case CheckLayer::kWal:
      return "wal";
  }
  return "unknown";
}

std::string CheckStats::ToString() const {
  std::string out;
  auto line = [&out](const char* key, uint64_t value) {
    out += StringPrintf("  %-24s %llu\n", key,
                        static_cast<unsigned long long>(value));
  };
  line("heap pages scanned:", heap_pages_scanned);
  line("records checked:", records_checked);
  line("checksum pages verified:", checksum_pages_verified);
  line("index entries checked:", index_entries_checked);
  line("objects checked:", objects_checked);
  line("link objects checked:", link_objects_checked);
  line("replica records checked:", replica_records_checked);
  line("wal records scanned:", wal_records_scanned);
  return out;
}

std::string CheckFinding::ToString() const {
  std::string out = StringPrintf("[%s] %s: ", CheckSeverityName(severity),
                                 CheckLayerName(layer));
  if (!context.empty()) {
    out += context;
    out += ": ";
  }
  out += message;
  if (page_id != kInvalidPageId) {
    out += StringPrintf(" (page %u)", page_id);
  }
  if (oid.valid()) {
    out += " [";
    out += oid.ToString();
    out += "]";
  }
  return out;
}

void CheckReport::Add(CheckFinding finding) {
  findings.push_back(std::move(finding));
}

namespace {
CheckFinding MakeFinding(CheckSeverity severity, CheckLayer layer,
                         std::string context, std::string message,
                         PageId page_id, Oid oid) {
  CheckFinding f;
  f.severity = severity;
  f.layer = layer;
  f.context = std::move(context);
  f.message = std::move(message);
  f.page_id = page_id;
  f.oid = oid;
  return f;
}
}  // namespace

void CheckReport::AddError(CheckLayer layer, std::string context,
                           std::string message, PageId page_id, Oid oid) {
  Add(MakeFinding(CheckSeverity::kError, layer, std::move(context),
                  std::move(message), page_id, oid));
}

void CheckReport::AddWarning(CheckLayer layer, std::string context,
                             std::string message, PageId page_id, Oid oid) {
  Add(MakeFinding(CheckSeverity::kWarning, layer, std::move(context),
                  std::move(message), page_id, oid));
}

void CheckReport::AddInfo(CheckLayer layer, std::string context,
                          std::string message, PageId page_id, Oid oid) {
  Add(MakeFinding(CheckSeverity::kInfo, layer, std::move(context),
                  std::move(message), page_id, oid));
}

size_t CheckReport::error_count() const {
  size_t n = 0;
  for (const CheckFinding& f : findings) {
    if (f.severity == CheckSeverity::kError) ++n;
  }
  return n;
}

size_t CheckReport::warning_count() const {
  size_t n = 0;
  for (const CheckFinding& f : findings) {
    if (f.severity == CheckSeverity::kWarning) ++n;
  }
  return n;
}

std::string CheckReport::ToString() const {
  std::string out;
  for (const CheckFinding& f : findings) {
    out += f.ToString();
    out += "\n";
  }
  out += StringPrintf("%zu finding(s): %zu error(s), %zu warning(s)\n",
                      findings.size(), error_count(), warning_count());
  return out;
}

}  // namespace fieldrep
