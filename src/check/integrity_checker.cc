#include "check/integrity_checker.h"

#include <algorithm>
#include <cstdint>
#include <limits>
#include <map>
#include <set>
#include <vector>

#include "common/bytes.h"
#include "common/strings.h"
#include "db/database.h"
#include "replication/link_object.h"
#include "storage/checksum.h"
#include "storage/slotted_page.h"
#include "wal/log_reader.h"

namespace fieldrep {

namespace {

// Relocation stub tags (mirrors record_file.cc; the checker validates the
// structures that file maintains, so the constants must agree).
constexpr uint16_t kForwardTag = 0xFFFF;
constexpr uint16_t kMovedTag = 0xFFFE;
constexpr uint32_t kStubBytes = 10;  // u16 tag + u64 packed OID

uint16_t CellTag(const uint8_t* cell, uint32_t size) {
  if (size < 2) return 0;
  return DecodeU16(cell);
}

}  // namespace

IntegrityChecker::IntegrityChecker(Database* db, const CheckOptions& options)
    : db_(db), options_(options) {}

bool IntegrityChecker::Full() const {
  return report_->findings.size() >= options_.max_findings;
}

Status IntegrityChecker::Run(CheckReport* report) {
  report_ = report;
  if (options_.check_storage) CheckStorage();
  if (options_.check_indexes && !Full()) CheckIndexes();
  if (options_.check_catalog && !Full()) CheckCatalog();
  if (options_.check_replication && !Full()) CheckReplication();
  if (options_.check_wal && !Full()) CheckWal();
  if (Full()) {
    report_->AddWarning(CheckLayer::kStorage, "",
                        StringPrintf("finding limit (%zu) reached; checking "
                                     "stopped early",
                                     options_.max_findings));
  }
  report_ = nullptr;
  return Status::OK();
}

// ---------------------------------------------------------------------------
// Layer 1: storage
// ---------------------------------------------------------------------------

void IntegrityChecker::CheckStorage() {
  for (const std::string& name : db_->catalog().SetNames()) {
    if (Full()) return;
    auto set = db_->GetSet(name);
    if (!set.ok()) {
      report_->AddError(CheckLayer::kStorage, name,
                        "set has no open file: " + set.status().ToString());
      continue;
    }
    CheckRecordFile(set.value()->file(), "set " + name);
  }
  for (FileId file_id : db_->AuxFileIds()) {
    if (Full()) return;
    auto file = db_->GetAuxFile(file_id);
    if (!file.ok()) continue;
    CheckRecordFile(*file.value(), StringPrintf("aux file %u", file_id));
  }
  if (!Full()) CheckDeviceChecksums();
}

void IntegrityChecker::CheckRecordFile(const RecordFile& file,
                                       const std::string& context) {
  const uint32_t device_pages = db_->pool().device()->page_count();
  // (stub oid, target) and (body oid, original) pairs for the mirror check.
  std::map<uint64_t, uint64_t> stubs;
  std::map<uint64_t, uint64_t> moved;
  std::set<PageId> visited;
  uint64_t logical_records = 0;
  uint32_t pages_seen = 0;
  PageId prev = kInvalidPageId;
  PageId current = file.first_page();

  while (current != kInvalidPageId && !Full()) {
    if (current >= device_pages) {
      report_->AddError(CheckLayer::kStorage, context,
                        "page chain points past the end of the device",
                        current);
      return;
    }
    if (!visited.insert(current).second) {
      report_->AddError(CheckLayer::kStorage, context,
                        "page chain contains a cycle", current);
      return;
    }
    PageGuard guard;
    Status fetch = db_->pool().FetchPage(current, &guard);
    if (!fetch.ok()) {
      report_->AddError(CheckLayer::kStorage, context,
                        "page unreadable: " + fetch.ToString(), current);
      return;
    }
    ++pages_seen;
    ++report_->stats.heap_pages_scanned;
    SlottedPage page(guard.data());
    if (page.page_type() != PageType::kHeap) {
      report_->AddError(
          CheckLayer::kStorage, context,
          StringPrintf("page type %u is not a heap page",
                       static_cast<uint16_t>(page.page_type())),
          current);
      return;  // header untrustworthy; stop walking this file
    }
    if (page.prev_page() != prev) {
      report_->AddError(CheckLayer::kStorage, context,
                        StringPrintf("prev-page link %u does not match the "
                                     "preceding page %u",
                                     page.prev_page(), prev),
                        current);
    }

    // Slot directory and cell bounds.
    const uint16_t slot_count = page.slot_count();
    const uint32_t directory_end =
        kPageHeaderBytes + static_cast<uint32_t>(slot_count) * 4;
    const uint16_t cell_start = page.cell_start();
    if (directory_end > cell_start || cell_start > kPageSize) {
      report_->AddError(
          CheckLayer::kStorage, context,
          StringPrintf("slot directory (%u slots, ends %u) overlaps cell "
                       "area (cell_start %u)",
                       slot_count, directory_end, cell_start),
          current);
      current = page.next_page();
      prev = guard.page_id();
      continue;
    }
    if (slot_count > 0 && page.SlotOffset(slot_count - 1) == 0) {
      report_->AddError(CheckLayer::kStorage, context,
                        "trailing slot is tombstoned (directory not trimmed)",
                        current);
    }
    uint16_t live = 0;
    uint64_t live_bytes = 0;
    std::vector<std::pair<uint16_t, uint16_t>> cells;  // (offset, length)
    for (uint16_t slot = 0; slot < slot_count && !Full(); ++slot) {
      uint16_t offset = page.SlotOffset(slot);
      if (offset == 0) continue;  // tombstone
      uint16_t length = page.SlotLength(slot);
      Oid oid(file.file_id(), current, slot);
      if (offset < cell_start ||
          static_cast<uint32_t>(offset) + length > kPageSize) {
        report_->AddError(
            CheckLayer::kStorage, context,
            StringPrintf("slot %u cell [%u, %u) outside cell area [%u, %u)",
                         slot, offset, offset + length, cell_start,
                         kPageSize),
            current, oid);
        continue;
      }
      ++live;
      ++report_->stats.records_checked;
      live_bytes += length;
      cells.emplace_back(offset, length);

      uint16_t tag = CellTag(guard.data() + offset, length);
      if (tag == kForwardTag) {
        if (length != kStubBytes) {
          report_->AddError(
              CheckLayer::kStorage, context,
              StringPrintf("forwarding stub has %u bytes, expected %u",
                           length, kStubBytes),
              current, oid);
        } else {
          stubs[oid.Packed()] = DecodeU64(guard.data() + offset + 2);
        }
      } else {
        ++logical_records;
        if (tag == kMovedTag) {
          if (length < kStubBytes) {
            report_->AddError(CheckLayer::kStorage, context,
                              "relocated body shorter than its header",
                              current, oid);
          } else {
            moved[oid.Packed()] = DecodeU64(guard.data() + offset + 2);
          }
        }
      }
    }
    if (live != page.live_count()) {
      report_->AddError(
          CheckLayer::kStorage, context,
          StringPrintf("live_count %u but %u live slots found",
                       page.live_count(), live),
          current);
    }
    // Free-space accounting: the cell area holds exactly the live cells
    // plus the recorded fragmentation.
    if (live_bytes + page.frag_bytes() != kPageSize - cell_start) {
      report_->AddError(
          CheckLayer::kStorage, context,
          StringPrintf("free-space accounting broken: %llu live bytes + %u "
                       "frag != %u cell-area bytes",
                       static_cast<unsigned long long>(live_bytes),
                       page.frag_bytes(), kPageSize - cell_start),
          current);
    }
    // Live cells must not overlap.
    std::sort(cells.begin(), cells.end());
    for (size_t i = 1; i < cells.size(); ++i) {
      if (cells[i - 1].first + cells[i - 1].second > cells[i].first) {
        report_->AddError(
            CheckLayer::kStorage, context,
            StringPrintf("cells at offsets %u and %u overlap",
                         cells[i - 1].first, cells[i].first),
            current);
        break;
      }
    }

    prev = current;
    current = page.next_page();
  }
  if (Full()) return;

  if (pages_seen != file.page_count()) {
    report_->AddError(CheckLayer::kStorage, context,
                      StringPrintf("page chain has %u pages but metadata "
                                   "records %u",
                                   pages_seen, file.page_count()));
  }
  if (file.page_count() > 0 && prev != file.last_page()) {
    report_->AddError(CheckLayer::kStorage, context,
                      StringPrintf("chain tail is page %u but metadata "
                                   "records %u",
                                   prev, file.last_page()));
  }
  if (logical_records != file.record_count()) {
    report_->AddError(
        CheckLayer::kStorage, context,
        StringPrintf("%llu records stored but metadata records %llu",
                     static_cast<unsigned long long>(logical_records),
                     static_cast<unsigned long long>(file.record_count())));
  }

  // Relocation stubs and bodies must pair up exactly.
  for (const auto& [stub_packed, target_packed] : stubs) {
    if (Full()) return;
    Oid stub = Oid::FromPacked(stub_packed);
    auto it = moved.find(target_packed);
    if (it == moved.end()) {
      report_->AddError(CheckLayer::kStorage, context,
                        "forwarding stub points at a missing relocated body",
                        kInvalidPageId, stub);
    } else if (it->second != stub_packed) {
      report_->AddError(CheckLayer::kStorage, context,
                        "relocated body's original OID does not point back "
                        "at its forwarding stub",
                        kInvalidPageId, stub);
    }
  }
  for (const auto& [body_packed, original_packed] : moved) {
    if (Full()) return;
    Oid body = Oid::FromPacked(body_packed);
    auto it = stubs.find(original_packed);
    if (it == stubs.end() || it->second != body_packed) {
      report_->AddError(CheckLayer::kStorage, context,
                        "relocated body has no forwarding stub at its "
                        "original OID",
                        kInvalidPageId, body);
    }
  }
}

void IntegrityChecker::CheckDeviceChecksums() {
  // Read straight from the device: the device copy of a page is the last
  // flushed (stamped) version and must always be self-consistent, even
  // while newer dirty versions sit in the pool. Page 0 is the header blob.
  StorageDevice* device = db_->pool().device();
  uint8_t buf[kPageSize];
  for (PageId page_id = 1; page_id < device->page_count(); ++page_id) {
    if (Full()) return;
    Status s = device->ReadPage(page_id, buf);
    if (!s.ok()) {
      report_->AddError(CheckLayer::kStorage, "device",
                        "page unreadable: " + s.ToString(), page_id);
      continue;
    }
    ++report_->stats.checksum_pages_verified;
    if (!VerifyPageChecksum(buf)) {
      report_->AddError(CheckLayer::kStorage, "device",
                        "page checksum mismatch", page_id);
    }
  }
}

// ---------------------------------------------------------------------------
// Layer 2: indexes
// ---------------------------------------------------------------------------

void IntegrityChecker::CheckIndexes() {
  constexpr int64_t kMin = std::numeric_limits<int64_t>::min();
  constexpr int64_t kMax = std::numeric_limits<int64_t>::max();
  for (const std::string& set_name : db_->catalog().SetNames()) {
    auto set_result = db_->GetSet(set_name);
    if (!set_result.ok()) continue;  // reported by the storage layer
    ObjectSet* set = set_result.value();
    for (const IndexInfo* info : db_->catalog().IndexesOnSet(set_name)) {
      if (Full()) return;
      const std::string context = "index " + info->name;
      auto tree_result = db_->indexes().GetIndex(info->name);
      if (!tree_result.ok()) {
        report_->AddError(CheckLayer::kIndex, context,
                          "index has no open tree: " +
                              tree_result.status().ToString());
        continue;
      }
      BTree* tree = tree_result.value();
      Status invariants = tree->CheckInvariants();
      if (!invariants.ok()) {
        report_->AddError(CheckLayer::kIndex, context,
                          "tree invariants violated: " +
                              invariants.ToString());
        // Ordering is broken; entry cross-checks would cascade.
        continue;
      }

      // Every entry must name a live object whose key matches.
      uint64_t entries = 0;
      Status scan = tree->ScanRange(kMin, kMax, [&](int64_t key, Oid oid) {
        ++entries;
        ++report_->stats.index_entries_checked;
        if (Full()) return false;
        Object object;
        if (oid.file_id != set->file().file_id() ||
            !set->Read(oid, &object).ok()) {
          report_->AddError(CheckLayer::kIndex, context,
                            "entry points at a missing object",
                            kInvalidPageId, oid);
          return true;
        }
        auto expected = db_->indexes().KeyFor(*info, object);
        if (!expected.ok()) {
          report_->AddError(CheckLayer::kIndex, context,
                            "entry for an object that should not be indexed",
                            kInvalidPageId, oid);
        } else if (expected.value() != key) {
          report_->AddError(
              CheckLayer::kIndex, context,
              StringPrintf("entry key %lld but object's key is %lld",
                           static_cast<long long>(key),
                           static_cast<long long>(expected.value())),
              kInvalidPageId, oid);
        }
        return true;
      });
      if (!scan.ok()) {
        report_->AddError(CheckLayer::kIndex, context,
                          "tree scan failed: " + scan.ToString());
        continue;
      }
      if (Full()) return;
      if (entries != tree->size()) {
        report_->AddError(
            CheckLayer::kIndex, context,
            StringPrintf("tree holds %llu entries but records %llu",
                         static_cast<unsigned long long>(entries),
                         static_cast<unsigned long long>(tree->size())));
      }

      // Every indexable object must have its entry.
      Status set_scan = set->Scan([&](const Oid& oid, const Object& object) {
        if (Full()) return false;
        auto key = db_->indexes().KeyFor(*info, object);
        if (!key.ok()) return true;  // unindexed (null / unreplicated)
        std::vector<Oid> found;
        if (!tree->Lookup(key.value(), &found).ok() ||
            std::find(found.begin(), found.end(), oid) == found.end()) {
          report_->AddError(CheckLayer::kIndex, context,
                            "object missing from the index", kInvalidPageId,
                            oid);
        }
        return true;
      });
      if (!set_scan.ok()) {
        report_->AddError(CheckLayer::kIndex, context,
                          "set scan failed: " + set_scan.ToString());
      }
    }
  }
}

// ---------------------------------------------------------------------------
// Layer 3: catalog
// ---------------------------------------------------------------------------

void IntegrityChecker::CheckCatalog() {
  const Catalog& catalog = db_->catalog();
  for (const std::string& set_name : catalog.SetNames()) {
    if (Full()) return;
    auto info = catalog.GetSet(set_name);
    if (!info.ok()) continue;
    auto type = catalog.GetType(info.value()->type_name);
    if (!type.ok()) {
      report_->AddError(CheckLayer::kCatalog, "set " + set_name,
                        "element type '" + info.value()->type_name +
                            "' is not defined");
      continue;
    }
    Status valid = type.value()->Validate();
    if (!valid.ok()) {
      report_->AddError(CheckLayer::kCatalog,
                        "type " + type.value()->name(),
                        "definition invalid: " + valid.ToString());
    }
    for (const AttributeDescriptor& attr : type.value()->attributes()) {
      if (attr.is_ref() && !catalog.HasType(attr.ref_type)) {
        report_->AddError(CheckLayer::kCatalog,
                          "type " + type.value()->name(),
                          "ref attribute '" + attr.name +
                              "' names undefined type '" + attr.ref_type +
                              "'");
      }
    }
    CheckObjects(set_name);
  }

  for (uint16_t path_id : catalog.AllPathIds()) {
    if (Full()) return;
    const ReplicationPathInfo* path = catalog.GetPath(path_id);
    if (path == nullptr) continue;
    const std::string context = "path " + path->spec;
    if (!catalog.GetSet(path->bound.set_name).ok()) {
      report_->AddError(CheckLayer::kCatalog, context,
                        "head set '" + path->bound.set_name +
                            "' is not defined");
    }
    for (uint8_t link_id : path->link_sequence) {
      const LinkInfo* link = catalog.link_registry().GetLink(link_id);
      if (link == nullptr) {
        report_->AddError(CheckLayer::kCatalog, context,
                          StringPrintf("link %u is not registered", link_id));
      } else if (link->link_set_file != kInvalidFileId &&
                 !db_->GetAuxFile(link->link_set_file).ok()) {
        report_->AddError(CheckLayer::kCatalog, context,
                          StringPrintf("link set file %u is not open",
                                       link->link_set_file));
      }
    }
    if (path->strategy == ReplicationStrategy::kSeparate &&
        !db_->GetAuxFile(path->replica_set_file).ok()) {
      report_->AddError(CheckLayer::kCatalog, context,
                        StringPrintf("replica set (S') file %u is not open",
                                     path->replica_set_file));
    }
  }

  for (const std::string& set_name : catalog.SetNames()) {
    for (const IndexInfo* info : catalog.IndexesOnSet(set_name)) {
      if (Full()) return;
      const std::string context = "index " + info->name;
      auto set_info = catalog.GetSet(info->set_name);
      if (!set_info.ok()) {
        report_->AddError(CheckLayer::kCatalog, context,
                          "indexed set '" + info->set_name +
                              "' is not defined");
        continue;
      }
      if (info->is_path_index) {
        if (catalog.GetPath(info->path_id) == nullptr) {
          report_->AddError(
              CheckLayer::kCatalog, context,
              StringPrintf("path index names dropped path %u",
                           info->path_id));
        }
      } else {
        auto type = catalog.GetType(set_info.value()->type_name);
        if (type.ok() &&
            (info->attr_index < 0 ||
             static_cast<size_t>(info->attr_index) >=
                 type.value()->attribute_count())) {
          report_->AddError(CheckLayer::kCatalog, context,
                            StringPrintf("attribute index %d out of range",
                                         info->attr_index));
        }
      }
    }
  }
}

void IntegrityChecker::CheckObjects(const std::string& set_name) {
  const Catalog& catalog = db_->catalog();
  auto set_result = db_->GetSet(set_name);
  if (!set_result.ok()) return;
  ObjectSet* set = set_result.value();
  const TypeDescriptor& type = set->type();
  const std::string context = "set " + set_name;

  Status scan = set->Scan([&](const Oid& oid, const Object& object) {
    if (Full()) return false;
    ++report_->stats.objects_checked;
    if (object.type_tag() != type.type_tag()) {
      report_->AddError(CheckLayer::kCatalog, context,
                        StringPrintf("object type tag %u but set type is %u",
                                     object.type_tag(), type.type_tag()),
                        kInvalidPageId, oid);
      return true;
    }
    if (object.fields().size() != type.attribute_count()) {
      report_->AddError(
          CheckLayer::kCatalog, context,
          StringPrintf("object has %zu fields but type defines %zu",
                       object.fields().size(), type.attribute_count()),
          kInvalidPageId, oid);
      return true;
    }
    for (size_t i = 0; i < type.attribute_count(); ++i) {
      const AttributeDescriptor& attr = type.attribute(i);
      const Value& value = object.field(i);
      if (!value.is_null() && !value.MatchesType(attr.type)) {
        report_->AddError(CheckLayer::kCatalog, context,
                          "field '" + attr.name +
                              "' holds a value of the wrong kind",
                          kInvalidPageId, oid);
        continue;
      }
      if (attr.is_ref() && value.is_ref() && value.as_ref().valid()) {
        const Oid target = value.as_ref();
        auto target_set = catalog.GetSetForFile(target.file_id);
        if (!target_set.ok() ||
            target_set.value()->type_name != attr.ref_type) {
          report_->AddError(CheckLayer::kCatalog, context,
                            "ref '" + attr.name +
                                "' points outside any set of type " +
                                attr.ref_type,
                            kInvalidPageId, oid);
          continue;
        }
        Object target_obj;
        if (!db_->replication().ops().ReadObject(target, &target_obj).ok()) {
          report_->AddError(CheckLayer::kCatalog, context,
                            "ref '" + attr.name +
                                "' dangles (no object at " +
                                target.ToString() + ")",
                            kInvalidPageId, oid);
        }
      }
    }
    // The hidden section must name registered links and live paths.
    for (const LinkRef& ref : object.link_refs()) {
      if (catalog.link_registry().GetLink(ref.link_id) == nullptr) {
        report_->AddError(
            CheckLayer::kCatalog, context,
            StringPrintf("hidden link ref names unregistered link %u",
                         ref.link_id),
            kInvalidPageId, oid);
      }
    }
    for (const ReplicaValueSlot& slot : object.replica_values()) {
      if (catalog.GetPath(slot.path_id) == nullptr) {
        report_->AddError(
            CheckLayer::kCatalog, context,
            StringPrintf("hidden replica values name dropped path %u",
                         slot.path_id),
            kInvalidPageId, oid);
      }
    }
    for (const ReplicaRefSlot& slot : object.replica_refs()) {
      if (catalog.GetPath(slot.path_id) == nullptr) {
        report_->AddError(
            CheckLayer::kCatalog, context,
            StringPrintf("hidden replica ref names dropped path %u",
                         slot.path_id),
            kInvalidPageId, oid);
      }
    }
    return true;
  });
  if (!scan.ok()) {
    report_->AddError(CheckLayer::kCatalog, context,
                      "set scan failed: " + scan.ToString());
  }
}

// ---------------------------------------------------------------------------
// Layer 4: replication
// ---------------------------------------------------------------------------

void IntegrityChecker::CheckReplication() {
  for (uint16_t path_id : db_->catalog().AllPathIds()) {
    if (Full()) return;
    Status s = db_->replication().VerifyPathToReport(path_id, report_);
    if (!s.ok()) {
      const ReplicationPathInfo* path = db_->catalog().GetPath(path_id);
      report_->AddError(CheckLayer::kReplication,
                        path == nullptr ? StringPrintf("path %u", path_id)
                                        : "path " + path->spec,
                        "verification aborted: " + s.ToString());
    }
  }
  if (!Full()) CheckLinkSets();
  if (!Full()) CheckReplicaSets();
  if (options_.include_info &&
      db_->replication().pending_propagation_count() > 0) {
    report_->AddInfo(
        CheckLayer::kReplication, "",
        StringPrintf("%zu deferred propagation(s) pending",
                     db_->replication().pending_propagation_count()));
  }
}

void IntegrityChecker::CheckLinkSets() {
  const LinkRegistry& registry = db_->catalog().link_registry();

  // Pass 1: load every link record of every link set file.
  struct LinkRecord {
    LinkObjectData data;
    bool reachable = false;
  };
  std::map<FileId, std::map<uint64_t, LinkRecord>> files;
  for (uint8_t link_id : registry.AllLinkIds()) {
    const LinkInfo* link = registry.GetLink(link_id);
    if (link == nullptr || link->link_set_file == kInvalidFileId) continue;
    files.emplace(link->link_set_file,
                  std::map<uint64_t, LinkRecord>());
  }
  for (auto& [file_id, records] : files) {
    auto file = db_->GetAuxFile(file_id);
    if (!file.ok()) continue;  // reported by the catalog layer
    const std::string context = StringPrintf("link set (file %u)", file_id);
    Status scan = file.value()->Scan(
        [&](const Oid& oid, const std::string& payload) {
          if (Full()) return false;
          ++report_->stats.link_objects_checked;
          LinkRecord record;
          Status parse = record.data.Deserialize(payload);
          if (!parse.ok()) {
            report_->AddError(CheckLayer::kReplication, context,
                              "record is not a link object: " +
                                  parse.ToString(),
                              kInvalidPageId, oid);
            return true;
          }
          const LinkInfo* link = registry.GetLink(record.data.link_id());
          if (link == nullptr) {
            report_->AddError(
                CheckLayer::kReplication, context,
                StringPrintf("link object names unregistered link %u",
                             record.data.link_id()),
                kInvalidPageId, oid);
          } else if (record.data.tagged() != link->collapsed) {
            report_->AddError(CheckLayer::kReplication, context,
                              "link object's tagged flag disagrees with the "
                              "link definition",
                              kInvalidPageId, oid);
          }
          const std::vector<LinkEntry>& entries = record.data.entries();
          for (size_t i = 1; i < entries.size(); ++i) {
            if (!(entries[i - 1].member < entries[i].member)) {
              report_->AddError(CheckLayer::kReplication, context,
                                "link object members out of sorted order",
                                kInvalidPageId, oid);
              break;
            }
          }
          records.emplace(oid.Packed(), std::move(record));
          return true;
        });
    if (!scan.ok()) {
      report_->AddError(CheckLayer::kReplication, context,
                        "scan failed: " + scan.ToString());
    }
  }
  if (Full()) return;

  // Pass 2: every owner's LinkRef must resolve to a well-formed segment
  // chain whose records point back at the owner.
  for (const std::string& set_name : db_->catalog().SetNames()) {
    auto set = db_->GetSet(set_name);
    if (!set.ok()) continue;
    Status scan = set.value()->Scan([&](const Oid& oid,
                                        const Object& object) {
      if (Full()) return false;
      for (const LinkRef& ref : object.link_refs()) {
        const LinkInfo* link = registry.GetLink(ref.link_id);
        if (link == nullptr) continue;  // reported by the catalog layer
        const std::string context =
            StringPrintf("link %u of %s", ref.link_id, set_name.c_str());
        if (ref.inlined) {
          for (size_t i = 1; i < ref.inline_oids.size(); ++i) {
            if (!(ref.inline_oids[i - 1] < ref.inline_oids[i])) {
              report_->AddError(CheckLayer::kReplication, context,
                                "inlined link members out of sorted order",
                                kInvalidPageId, oid);
              break;
            }
          }
          continue;
        }
        auto file_it = files.find(link->link_set_file);
        if (ref.link_oid.file_id != link->link_set_file ||
            file_it == files.end()) {
          report_->AddError(CheckLayer::kReplication, context,
                            "link ref points outside the link's set file",
                            kInvalidPageId, oid);
          continue;
        }
        Oid segment = ref.link_oid;
        std::set<uint64_t> seen;
        while (segment.valid()) {
          if (!seen.insert(segment.Packed()).second) {
            report_->AddError(CheckLayer::kReplication, context,
                              "link object segment chain contains a cycle",
                              kInvalidPageId, oid);
            break;
          }
          auto record_it = file_it->second.find(segment.Packed());
          if (record_it == file_it->second.end()) {
            report_->AddError(CheckLayer::kReplication, context,
                              "link ref dangles (no link object at " +
                                  segment.ToString() + ")",
                              kInvalidPageId, oid);
            break;
          }
          LinkRecord& record = record_it->second;
          record.reachable = true;
          if (record.data.link_id() != ref.link_id ||
              record.data.owner() != oid) {
            report_->AddError(CheckLayer::kReplication, context,
                              "link object at " + segment.ToString() +
                                  " does not belong to this owner",
                              kInvalidPageId, oid);
            break;
          }
          segment = record.data.next_segment();
        }
      }
      return true;
    });
    if (!scan.ok()) {
      report_->AddError(CheckLayer::kReplication, "set " + set_name,
                        "scan failed: " + scan.ToString());
    }
  }
  if (Full()) return;

  // Pass 3: link objects no owner points at are orphans.
  for (const auto& [file_id, records] : files) {
    for (const auto& [packed, record] : records) {
      if (Full()) return;
      if (!record.reachable) {
        report_->AddError(
            CheckLayer::kReplication,
            StringPrintf("link set (file %u)", file_id),
            "orphan link object (owner " + record.data.owner().ToString() +
                " does not reference it)",
            kInvalidPageId, Oid::FromPacked(packed));
      }
    }
  }
}

void IntegrityChecker::CheckReplicaSets() {
  for (uint16_t path_id : db_->catalog().AllPathIds()) {
    const ReplicationPathInfo* path = db_->catalog().GetPath(path_id);
    if (path == nullptr ||
        path->strategy != ReplicationStrategy::kSeparate) {
      continue;
    }
    auto file = db_->GetAuxFile(path->replica_set_file);
    if (!file.ok()) continue;  // reported by the catalog layer
    const std::string context = "S' of " + path->spec;
    uint64_t prev_owner = 0;
    bool order_reported = false;
    Status scan = file.value()->Scan([&](const Oid& oid,
                                         const std::string& payload) {
      if (Full()) return false;
      ++report_->stats.replica_records_checked;
      ReplicaRecord record;
      Status parse = record.Deserialize(payload);
      if (!parse.ok()) {
        report_->AddError(CheckLayer::kReplication, context,
                          "record is not a replica record: " +
                              parse.ToString(),
                          kInvalidPageId, oid);
        return true;
      }
      if (record.path_id != path->id) {
        report_->AddError(
            CheckLayer::kReplication, context,
            StringPrintf("replica record belongs to path %u",
                         record.path_id),
            kInvalidPageId, oid);
        return true;
      }
      // S' stays ordered by the terminal (S) objects it mirrors — the
      // clustering property of Section 5. Decay is a performance bug, not
      // a correctness one.
      if (record.owner.Packed() < prev_owner && !order_reported) {
        report_->AddWarning(CheckLayer::kReplication, context,
                            "S' records out of S physical order",
                            kInvalidPageId, oid);
        order_reported = true;
      }
      prev_owner = record.owner.Packed();

      Object terminal;
      ObjectSet* terminal_set = nullptr;
      if (!db_->replication()
               .ops()
               .ReadObject(record.owner, &terminal, &terminal_set)
               .ok()) {
        report_->AddError(CheckLayer::kReplication, context,
                          "replica record's owner " +
                              record.owner.ToString() + " does not exist",
                          kInvalidPageId, oid);
        return true;
      }
      const ReplicaRefSlot* slot = terminal.FindReplicaRef(path->id);
      if (slot == nullptr || slot->replica_oid != oid) {
        report_->AddError(CheckLayer::kReplication, context,
                          "orphan replica record (owner does not point "
                          "back at it)",
                          kInvalidPageId, oid);
        return true;
      }
      if (slot->refcount == 0) {
        report_->AddError(CheckLayer::kReplication, context,
                          "replica record kept alive with refcount 0",
                          kInvalidPageId, oid);
      }
      const std::vector<int>& terminal_fields = path->bound.terminal_fields;
      if (record.values.size() != terminal_fields.size()) {
        report_->AddError(
            CheckLayer::kReplication, context,
            StringPrintf("replica record holds %zu values, path "
                         "replicates %zu fields",
                         record.values.size(), terminal_fields.size()),
            kInvalidPageId, oid);
        return true;
      }
      for (size_t i = 0; i < terminal_fields.size(); ++i) {
        auto current = terminal_set->GetField(terminal, terminal_fields[i]);
        if (!current.ok() || !(current.value() == record.values[i])) {
          report_->AddError(CheckLayer::kReplication, context,
                            "stale replica value (S' record disagrees with "
                            "terminal " +
                                record.owner.ToString() + ")",
                            kInvalidPageId, oid);
          break;
        }
      }
      return true;
    });
    if (!scan.ok()) {
      report_->AddError(CheckLayer::kReplication, context,
                        "scan failed: " + scan.ToString());
    }
  }
}

// ---------------------------------------------------------------------------
// Layer 5: WAL
// ---------------------------------------------------------------------------

void IntegrityChecker::CheckWal() {
  WalManager* wal = db_->wal();
  if (wal != nullptr && wal->broken()) {
    report_->AddError(CheckLayer::kWal, "",
                      "WAL manager is in the broken state (a log write "
                      "failed; uncommitted pages are pinned)");
  }
  if (db_->wal_device() != nullptr) {
    CheckWalDevice(db_->wal_device(), options_.include_info, report_);
  }
}

void IntegrityChecker::CheckWalDevice(StorageDevice* device,
                                      bool include_info,
                                      CheckReport* report) {
  LogReader reader(device);
  bool valid = false;
  Status open = reader.Open(&valid);
  if (!open.ok()) {
    report->AddError(CheckLayer::kWal, "log",
                     "log header unreadable: " + open.ToString());
    return;
  }
  if (!valid) {
    if (include_info) {
      report->AddInfo(CheckLayer::kWal, "log",
                      "no usable log header (empty or reset log)");
    }
    return;
  }
  if (reader.epoch() == 0) {
    report->AddError(CheckLayer::kWal, "log", "log header epoch is 0");
  }

  std::set<uint64_t> open_txns;
  uint64_t records = 0;
  uint64_t committed = 0;
  while (true) {
    LogRecord record;
    bool end = false;
    Status s = reader.ReadNext(&record, &end);
    if (!s.ok()) {
      report->AddError(CheckLayer::kWal, "log",
                       "record stream unreadable: " + s.ToString());
      return;
    }
    if (end) break;
    ++records;
    ++report->stats.wal_records_scanned;
    switch (record.type) {
      case LogRecordType::kBegin:
        if (!open_txns.insert(record.txn_id).second) {
          report->AddWarning(
              CheckLayer::kWal, "log",
              StringPrintf("transaction %llu begun twice",
                           static_cast<unsigned long long>(record.txn_id)));
        }
        break;
      case LogRecordType::kPageWrite:
        if (open_txns.count(record.txn_id) == 0) {
          report->AddWarning(
              CheckLayer::kWal, "log",
              StringPrintf("page write for transaction %llu outside a "
                           "begin/commit bracket",
                           static_cast<unsigned long long>(record.txn_id)));
        }
        break;
      case LogRecordType::kCommit:
        if (open_txns.erase(record.txn_id) == 0) {
          report->AddWarning(
              CheckLayer::kWal, "log",
              StringPrintf("commit for transaction %llu without a begin",
                           static_cast<unsigned long long>(record.txn_id)));
        } else {
          ++committed;
        }
        break;
      case LogRecordType::kCheckpoint:
        break;
    }
  }
  if (include_info) {
    report->AddInfo(
        CheckLayer::kWal, "log",
        StringPrintf("epoch %llu: %llu record(s), %llu committed "
                     "transaction(s), %zu uncommitted at the tail",
                     static_cast<unsigned long long>(reader.epoch()),
                     static_cast<unsigned long long>(records),
                     static_cast<unsigned long long>(committed),
                     open_txns.size()));
  }
}

}  // namespace fieldrep
