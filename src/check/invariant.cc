#include "check/invariant.h"

#include <cstdio>
#include <cstdlib>

namespace fieldrep {
namespace check {

void InvariantFailure(const char* file, int line, const char* condition,
                      const char* message) {
  std::fprintf(stderr, "fieldrep invariant violated at %s:%d: %s\n  (%s)\n",
               file, line, message, condition);
  std::fflush(stderr);
  std::abort();
}

}  // namespace check
}  // namespace fieldrep
