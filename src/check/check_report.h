#ifndef FIELDREP_CHECK_CHECK_REPORT_H_
#define FIELDREP_CHECK_CHECK_REPORT_H_

#include <cstdint>
#include <string>
#include <vector>

#include "storage/oid.h"
#include "storage/page.h"

namespace fieldrep {

/// \file
/// Structured findings produced by the offline integrity checker
/// (IntegrityChecker, surfaced as Database::CheckIntegrity and the
/// fieldrep_fsck tool). A finding pins a violated invariant to the layer
/// it belongs to and, when known, the page or object involved, so that a
/// corruption in (say) a link set is reported where it lives rather than
/// as a cascade of downstream query failures.

enum class CheckSeverity : uint8_t {
  kInfo = 0,     ///< Observation, not a defect (e.g. pending propagations).
  kWarning = 1,  ///< Degraded but recoverable (e.g. S' clustering decayed).
  kError = 2,    ///< Structural invariant violated; data may be wrong.
};

enum class CheckLayer : uint8_t {
  kStorage = 0,      ///< Page headers, slot directories, file linkage.
  kIndex = 1,        ///< B+ tree ordering, fanout, leaf chains.
  kCatalog = 2,      ///< Type/set/path definitions and object typing.
  kReplication = 3,  ///< Forward refs vs. inverted paths vs. replicas.
  kWal = 4,          ///< Log header, epochs, committed-tail replayability.
};

const char* CheckSeverityName(CheckSeverity severity);
const char* CheckLayerName(CheckLayer layer);

struct CheckFinding {
  CheckSeverity severity = CheckSeverity::kError;
  CheckLayer layer = CheckLayer::kStorage;
  /// Page the violation was observed on, or kInvalidPageId.
  PageId page_id = kInvalidPageId;
  /// Object involved, or an invalid Oid.
  Oid oid;
  /// What was being checked, e.g. a set name or path spec.
  std::string context;
  std::string message;

  std::string ToString() const;
};

/// Work counters of one integrity pass: how much each layer actually
/// visited. Monotone over a run; printed by `fieldrep_fsck --stats` so an
/// operator can tell a clean-because-checked report from a
/// clean-because-empty one.
struct CheckStats {
  uint64_t heap_pages_scanned = 0;      ///< Record-file pages walked.
  uint64_t records_checked = 0;         ///< Live slots examined.
  uint64_t checksum_pages_verified = 0; ///< Device pages checksummed.
  uint64_t index_entries_checked = 0;   ///< B+ tree entries cross-checked.
  uint64_t objects_checked = 0;         ///< Objects type-checked.
  uint64_t link_objects_checked = 0;    ///< Link records parsed.
  uint64_t replica_records_checked = 0; ///< S' records compared.
  uint64_t wal_records_scanned = 0;     ///< Log records scanned.

  /// Multi-line "  key: value" listing.
  std::string ToString() const;
};

struct CheckReport {
  std::vector<CheckFinding> findings;
  CheckStats stats;

  void Add(CheckFinding finding);
  void AddError(CheckLayer layer, std::string context, std::string message,
                PageId page_id = kInvalidPageId, Oid oid = Oid());
  void AddWarning(CheckLayer layer, std::string context, std::string message,
                  PageId page_id = kInvalidPageId, Oid oid = Oid());
  void AddInfo(CheckLayer layer, std::string context, std::string message,
               PageId page_id = kInvalidPageId, Oid oid = Oid());

  size_t error_count() const;
  size_t warning_count() const;

  /// True when no kError findings were recorded (warnings allowed).
  bool ok() const { return error_count() == 0; }

  /// Human-readable listing, one finding per line, plus a summary line.
  std::string ToString() const;
};

/// Which layers to verify; all on by default. `max_findings` bounds the
/// report so a badly corrupted file cannot produce an unbounded listing
/// (checking stops early once reached).
struct CheckOptions {
  bool check_storage = true;
  bool check_indexes = true;
  bool check_catalog = true;
  bool check_replication = true;
  bool check_wal = true;
  bool include_info = false;
  size_t max_findings = 1000;
};

}  // namespace fieldrep

#endif  // FIELDREP_CHECK_CHECK_REPORT_H_
