#include "index/btree.h"

#include <cstring>

#include "common/bytes.h"
#include "common/strings.h"
#include "storage/slotted_page.h"

namespace fieldrep {

namespace {

// Node layout (shares the 40-byte header budget with slotted pages):
//   u16 page_type (kBTreeLeaf / kBTreeInternal)
//   u16 count
//   u32 next_leaf (leaves only)
//   ... reserved to byte 40
// Leaf body:     count * 16-byte entries { i64 key, u64 val }
// Internal body: u32 child0, then count * 20-byte entries
//                { i64 key, u64 val, u32 child }
// Separator i is the smallest (key, val) in child i+1's subtree.

constexpr uint32_t kHeader = kPageHeaderBytes;
constexpr uint32_t kLeafEntryBytes = 16;
constexpr uint32_t kInternalEntryBytes = 20;
// Nodes transiently hold max+1 entries before a split, so capacity leaves
// room for one extra entry within the page.
constexpr uint32_t kLeafMax =
    kUserBytesPerPage / kLeafEntryBytes - 1;  // 252
constexpr uint32_t kInternalMax =
    (kUserBytesPerPage - 4) / kInternalEntryBytes - 1;  // 201

uint16_t NodeType(const uint8_t* p) { return DecodeU16(p); }
void SetNodeType(uint8_t* p, PageType t) {
  EncodeU16(p, static_cast<uint16_t>(t));
}
uint16_t Count(const uint8_t* p) { return DecodeU16(p + 2); }
void SetCount(uint8_t* p, uint16_t c) { EncodeU16(p + 2, c); }
PageId NextLeaf(const uint8_t* p) { return DecodeU32(p + 4); }
void SetNextLeaf(uint8_t* p, PageId id) { EncodeU32(p + 4, id); }

bool IsLeaf(const uint8_t* p) {
  return NodeType(p) == static_cast<uint16_t>(PageType::kBTreeLeaf);
}

// --- Leaf accessors ---------------------------------------------------------

int64_t LeafKey(const uint8_t* p, uint32_t i) {
  return DecodeI64(p + kHeader + i * kLeafEntryBytes);
}
uint64_t LeafVal(const uint8_t* p, uint32_t i) {
  return DecodeU64(p + kHeader + i * kLeafEntryBytes + 8);
}
void SetLeafEntry(uint8_t* p, uint32_t i, int64_t key, uint64_t val) {
  EncodeI64(p + kHeader + i * kLeafEntryBytes, key);
  EncodeU64(p + kHeader + i * kLeafEntryBytes + 8, val);
}
void LeafInsertAt(uint8_t* p, uint32_t i, int64_t key, uint64_t val) {
  uint16_t n = Count(p);
  std::memmove(p + kHeader + (i + 1) * kLeafEntryBytes,
               p + kHeader + i * kLeafEntryBytes,
               (n - i) * kLeafEntryBytes);
  SetLeafEntry(p, i, key, val);
  SetCount(p, n + 1);
}
void LeafRemoveAt(uint8_t* p, uint32_t i) {
  uint16_t n = Count(p);
  std::memmove(p + kHeader + i * kLeafEntryBytes,
               p + kHeader + (i + 1) * kLeafEntryBytes,
               (n - i - 1) * kLeafEntryBytes);
  SetCount(p, n - 1);
}

// --- Internal accessors -----------------------------------------------------

PageId Child0(const uint8_t* p) { return DecodeU32(p + kHeader); }
void SetChild0(uint8_t* p, PageId id) { EncodeU32(p + kHeader, id); }
int64_t IntKey(const uint8_t* p, uint32_t i) {
  return DecodeI64(p + kHeader + 4 + i * kInternalEntryBytes);
}
uint64_t IntVal(const uint8_t* p, uint32_t i) {
  return DecodeU64(p + kHeader + 4 + i * kInternalEntryBytes + 8);
}
PageId IntChild(const uint8_t* p, uint32_t i) {
  return DecodeU32(p + kHeader + 4 + i * kInternalEntryBytes + 16);
}
void SetIntEntry(uint8_t* p, uint32_t i, int64_t key, uint64_t val,
                 PageId child) {
  EncodeI64(p + kHeader + 4 + i * kInternalEntryBytes, key);
  EncodeU64(p + kHeader + 4 + i * kInternalEntryBytes + 8, val);
  EncodeU32(p + kHeader + 4 + i * kInternalEntryBytes + 16, child);
}
void IntInsertAt(uint8_t* p, uint32_t i, int64_t key, uint64_t val,
                 PageId child) {
  uint16_t n = Count(p);
  std::memmove(p + kHeader + 4 + (i + 1) * kInternalEntryBytes,
               p + kHeader + 4 + i * kInternalEntryBytes,
               (n - i) * kInternalEntryBytes);
  SetIntEntry(p, i, key, val, child);
  SetCount(p, n + 1);
}

// Lexicographic comparison of (key, val) pairs.
bool PairLess(int64_t k1, uint64_t v1, int64_t k2, uint64_t v2) {
  if (k1 != k2) return k1 < k2;
  return v1 < v2;
}

// First index i in the leaf with entry >= (key, val).
uint32_t LeafLowerBound(const uint8_t* p, int64_t key, uint64_t val) {
  uint32_t lo = 0, hi = Count(p);
  while (lo < hi) {
    uint32_t mid = (lo + hi) / 2;
    if (PairLess(LeafKey(p, mid), LeafVal(p, mid), key, val)) {
      lo = mid + 1;
    } else {
      hi = mid;
    }
  }
  return lo;
}

// Child index to descend into for (key, val): the number of separators
// <= (key, val).
uint32_t IntChildIndex(const uint8_t* p, int64_t key, uint64_t val) {
  uint32_t lo = 0, hi = Count(p);
  while (lo < hi) {
    uint32_t mid = (lo + hi) / 2;
    // separator <= (key,val)  <=>  !((key,val) < separator)
    if (!PairLess(key, val, IntKey(p, mid), IntVal(p, mid))) {
      lo = mid + 1;
    } else {
      hi = mid;
    }
  }
  return lo;
}

PageId ChildAt(const uint8_t* p, uint32_t i) {
  return i == 0 ? Child0(p) : IntChild(p, i - 1);
}

}  // namespace

BTree::BTree(BufferPool* pool) : pool_(pool) {}

Status BTree::Init() {
  if (root_ != kInvalidPageId) {
    return Status::FailedPrecondition("btree already initialized");
  }
  PageGuard guard;
  FIELDREP_RETURN_IF_ERROR(pool_->NewPage(&guard));
  SetNodeType(guard.data(), PageType::kBTreeLeaf);
  SetCount(guard.data(), 0);
  SetNextLeaf(guard.data(), kInvalidPageId);
  guard.MarkDirty();
  root_ = guard.page_id();
  entry_count_ = 0;
  return Status::OK();
}

Status BTree::InsertRecursive(PageId node, int64_t key, uint64_t val,
                              SplitResult* result) {
  PageGuard guard;
  FIELDREP_RETURN_IF_ERROR(pool_->FetchPage(node, &guard));
  uint8_t* p = guard.data();

  if (IsLeaf(p)) {
    uint32_t pos = LeafLowerBound(p, key, val);
    if (pos < Count(p) && LeafKey(p, pos) == key && LeafVal(p, pos) == val) {
      return Status::AlreadyExists(
          StringPrintf("entry (%lld, %llu) already in btree",
                       static_cast<long long>(key),
                       static_cast<unsigned long long>(val)));
    }
    LeafInsertAt(p, pos, key, val);
    guard.MarkDirty();
    if (Count(p) <= kLeafMax) {
      result->split = false;
      return Status::OK();
    }
    // Split: upper half moves to a new right sibling.
    PageGuard right_guard;
    FIELDREP_RETURN_IF_ERROR(pool_->NewPage(&right_guard));
    uint8_t* r = right_guard.data();
    SetNodeType(r, PageType::kBTreeLeaf);
    uint16_t n = Count(p);
    uint16_t keep = n / 2;
    uint16_t move = n - keep;
    std::memcpy(r + kHeader, p + kHeader + keep * kLeafEntryBytes,
                move * kLeafEntryBytes);
    SetCount(r, move);
    SetCount(p, keep);
    SetNextLeaf(r, NextLeaf(p));
    SetNextLeaf(p, right_guard.page_id());
    right_guard.MarkDirty();
    result->split = true;
    result->sep_key = LeafKey(r, 0);
    result->sep_val = LeafVal(r, 0);
    result->right = right_guard.page_id();
    return Status::OK();
  }

  uint32_t child_index = IntChildIndex(p, key, val);
  PageId child = ChildAt(p, child_index);
  guard.Release();  // avoid holding pins down the whole descent

  SplitResult child_split;
  FIELDREP_RETURN_IF_ERROR(InsertRecursive(child, key, val, &child_split));
  if (!child_split.split) {
    result->split = false;
    return Status::OK();
  }

  PageGuard again;
  FIELDREP_RETURN_IF_ERROR(pool_->FetchPage(node, &again));
  p = again.data();
  IntInsertAt(p, child_index, child_split.sep_key, child_split.sep_val,
              child_split.right);
  again.MarkDirty();
  if (Count(p) <= kInternalMax) {
    result->split = false;
    return Status::OK();
  }
  // Split internal node: middle separator moves up.
  PageGuard right_guard;
  FIELDREP_RETURN_IF_ERROR(pool_->NewPage(&right_guard));
  uint8_t* r = right_guard.data();
  SetNodeType(r, PageType::kBTreeInternal);
  uint16_t n = Count(p);
  uint16_t mid = n / 2;  // separator index promoted upward
  result->split = true;
  result->sep_key = IntKey(p, mid);
  result->sep_val = IntVal(p, mid);
  result->right = right_guard.page_id();
  SetChild0(r, IntChild(p, mid));
  uint16_t move = n - mid - 1;
  std::memcpy(r + kHeader + 4,
              p + kHeader + 4 + (mid + 1) * kInternalEntryBytes,
              move * kInternalEntryBytes);
  SetCount(r, move);
  SetCount(p, mid);
  right_guard.MarkDirty();
  again.MarkDirty();
  return Status::OK();
}

Status BTree::Insert(int64_t key, Oid value) {
  if (root_ == kInvalidPageId) {
    return Status::FailedPrecondition("btree not initialized");
  }
  SplitResult split;
  FIELDREP_RETURN_IF_ERROR(
      InsertRecursive(root_, key, value.Packed(), &split));
  if (split.split) {
    PageGuard guard;
    FIELDREP_RETURN_IF_ERROR(pool_->NewPage(&guard));
    uint8_t* p = guard.data();
    SetNodeType(p, PageType::kBTreeInternal);
    SetChild0(p, root_);
    SetIntEntry(p, 0, split.sep_key, split.sep_val, split.right);
    SetCount(p, 1);
    guard.MarkDirty();
    root_ = guard.page_id();
  }
  ++entry_count_;
  return Status::OK();
}

Status BTree::FindLeaf(int64_t key, uint64_t val, PageId* leaf) const {
  // Shared latches, one node at a time: concurrent readers may descend
  // together. Structural modification (Insert/Delete) is writer-only and
  // must not run concurrently with reads (see DESIGN.md §10).
  PageId node = root_;
  for (;;) {
    PageGuard guard;
    FIELDREP_RETURN_IF_ERROR(
        pool_->FetchPage(node, &guard, LatchMode::kShared));
    const uint8_t* p = guard.data();
    if (IsLeaf(p)) {
      *leaf = node;
      return Status::OK();
    }
    node = ChildAt(p, IntChildIndex(p, key, val));
  }
}

Status BTree::Delete(int64_t key, Oid value) {
  if (root_ == kInvalidPageId) {
    return Status::FailedPrecondition("btree not initialized");
  }
  PageId leaf;
  FIELDREP_RETURN_IF_ERROR(FindLeaf(key, value.Packed(), &leaf));
  PageGuard guard;
  FIELDREP_RETURN_IF_ERROR(pool_->FetchPage(leaf, &guard));
  uint8_t* p = guard.data();
  uint32_t pos = LeafLowerBound(p, key, value.Packed());
  if (pos >= Count(p) || LeafKey(p, pos) != key ||
      LeafVal(p, pos) != value.Packed()) {
    return Status::NotFound(
        StringPrintf("entry (%lld, %s) not in btree",
                     static_cast<long long>(key), value.ToString().c_str()));
  }
  LeafRemoveAt(p, pos);
  guard.MarkDirty();
  --entry_count_;
  return Status::OK();
}

Status BTree::Lookup(int64_t key, std::vector<Oid>* out) const {
  return ScanRange(key, key, [out](int64_t, Oid oid) {
    out->push_back(oid);
    return true;
  });
}

Status BTree::ScanRange(int64_t lo, int64_t hi,
                        const std::function<bool(int64_t, Oid)>& fn) const {
  if (root_ == kInvalidPageId) {
    return Status::FailedPrecondition("btree not initialized");
  }
  if (lo > hi) return Status::OK();
  PageId leaf;
  FIELDREP_RETURN_IF_ERROR(FindLeaf(lo, 0, &leaf));
  // Read-ahead along the leaf chain. Bulk-loaded trees allocate leaves in
  // mostly ascending page order (rightmost splits), so once the chain
  // advances to the physically next page we speculatively batch-read a
  // window beyond it. Prefetched pages stay logically uncharged until
  // fetched, so a misprediction (or an early scan stop) costs only
  // physical I/O — never a page of the paper's cost unit.
  const uint32_t window = pool_->read_ahead_window();
  PageId prefetched_until = 0;  // highest page id already hinted
  std::vector<std::pair<int64_t, uint64_t>> entries;
  while (leaf != kInvalidPageId) {
    // Collect the leaf's entries under a shared latch, then run the
    // callbacks (and the prefetch, which may block on victim writeback)
    // after releasing it: readers never block while holding a latch.
    entries.clear();
    bool done = false;
    PageId next;
    {
      PageGuard guard;
      FIELDREP_RETURN_IF_ERROR(
          pool_->FetchPage(leaf, &guard, LatchMode::kShared));
      const uint8_t* p = guard.data();
      uint16_t n = Count(p);
      uint32_t start = LeafLowerBound(p, lo, 0);
      for (uint32_t i = start; i < n; ++i) {
        int64_t key = LeafKey(p, i);
        if (key > hi) {
          done = true;
          break;
        }
        entries.emplace_back(key, LeafVal(p, i));
      }
      next = NextLeaf(p);
    }
    for (const auto& [key, val] : entries) {
      if (!fn(key, Oid::FromPacked(val))) return Status::OK();
    }
    if (done) return Status::OK();
    if (window > 0 && next != kInvalidPageId && next == leaf + 1 &&
        next + window > prefetched_until) {
      std::vector<PageId> ahead(window);
      for (uint32_t i = 0; i < window; ++i) ahead[i] = next + i;
      FIELDREP_RETURN_IF_ERROR(pool_->Prefetch(ahead));
      prefetched_until = next + window;
    }
    leaf = next;
  }
  return Status::OK();
}

Result<uint32_t> BTree::Height() const {
  if (root_ == kInvalidPageId) return static_cast<uint32_t>(0);
  uint32_t height = 1;
  PageId node = root_;
  for (;;) {
    PageGuard guard;
    FIELDREP_RETURN_IF_ERROR(
        pool_->FetchPage(node, &guard, LatchMode::kShared));
    const uint8_t* p = guard.data();
    if (IsLeaf(p)) return height;
    node = Child0(p);
    ++height;
  }
}

Result<uint32_t> BTree::PageCount() const {
  uint32_t height_unused, pages = 0;
  FIELDREP_RETURN_IF_ERROR(CheckNode(root_, true, 0, 0, false, 0, 0, false,
                                     &height_unused, &pages));
  return pages;
}

std::string BTree::EncodeMetadata() const {
  std::string out;
  PutU32(&out, root_);
  PutU64(&out, entry_count_);
  return out;
}

Status BTree::DecodeMetadata(const std::string& encoded) {
  ByteReader reader(encoded);
  uint32_t root;
  uint64_t count;
  if (!reader.GetU32(&root) || !reader.GetU64(&count)) {
    return Status::Corruption("bad BTree metadata");
  }
  root_ = root;
  entry_count_ = count;
  return Status::OK();
}

Status BTree::CheckNode(PageId node, bool is_root, int64_t lo_key,
                        uint64_t lo_val, bool has_lo, int64_t hi_key,
                        uint64_t hi_val, bool has_hi, uint32_t* height,
                        uint32_t* pages) const {
  // Holds the parent's guard across the child recursion (unlike the hot
  // read paths), so this check must run quiesced — which integrity
  // checking always does. Shared mode keeps it off the WAL's
  // OnPageAccess path.
  PageGuard guard;
  FIELDREP_RETURN_IF_ERROR(
      pool_->FetchPage(node, &guard, LatchMode::kShared));
  const uint8_t* p = guard.data();
  ++*pages;
  uint16_t n = Count(p);
  if (IsLeaf(p)) {
    *height = 1;
    for (uint32_t i = 0; i < n; ++i) {
      if (i > 0 && !PairLess(LeafKey(p, i - 1), LeafVal(p, i - 1),
                             LeafKey(p, i), LeafVal(p, i))) {
        return Status::Corruption("leaf entries out of order");
      }
      if (has_lo &&
          PairLess(LeafKey(p, i), LeafVal(p, i), lo_key, lo_val)) {
        return Status::Corruption("leaf entry below subtree lower bound");
      }
      if (has_hi &&
          !PairLess(LeafKey(p, i), LeafVal(p, i), hi_key, hi_val)) {
        return Status::Corruption("leaf entry above subtree upper bound");
      }
    }
    return Status::OK();
  }
  if (n == 0 && !is_root) {
    return Status::Corruption("internal node with no separators");
  }
  for (uint32_t i = 1; i < n; ++i) {
    if (!PairLess(IntKey(p, i - 1), IntVal(p, i - 1), IntKey(p, i),
                  IntVal(p, i))) {
      return Status::Corruption("separators out of order");
    }
  }
  uint32_t child_height = 0;
  for (uint32_t i = 0; i <= n; ++i) {
    int64_t clo_key = (i == 0) ? lo_key : IntKey(p, i - 1);
    uint64_t clo_val = (i == 0) ? lo_val : IntVal(p, i - 1);
    bool chas_lo = (i == 0) ? has_lo : true;
    int64_t chi_key = (i == n) ? hi_key : IntKey(p, i);
    uint64_t chi_val = (i == n) ? hi_val : IntVal(p, i);
    bool chas_hi = (i == n) ? has_hi : true;
    uint32_t h;
    FIELDREP_RETURN_IF_ERROR(CheckNode(ChildAt(p, i), false, clo_key, clo_val,
                                       chas_lo, chi_key, chi_val, chas_hi, &h,
                                       pages));
    if (i == 0) {
      child_height = h;
    } else if (h != child_height) {
      return Status::Corruption("uneven subtree heights");
    }
  }
  *height = child_height + 1;
  return Status::OK();
}

Status BTree::CheckInvariants() const {
  if (root_ == kInvalidPageId) return Status::OK();
  uint32_t height, pages = 0;
  return CheckNode(root_, true, 0, 0, false, 0, 0, false, &height, &pages);
}

Result<int64_t> BTreeKeyForValue(const Value& value) {
  if (value.is_int32()) return static_cast<int64_t>(value.as_int32());
  if (value.is_int64()) return value.as_int64();
  if (value.is_double()) {
    // Order-preserving double -> int64 transform.
    double d = value.as_double();
    uint64_t bits;
    std::memcpy(&bits, &d, 8);
    if (bits & 0x8000000000000000ULL) {
      bits = ~bits;
    } else {
      bits |= 0x8000000000000000ULL;
    }
    return static_cast<int64_t>(bits ^ 0x8000000000000000ULL);
  }
  if (value.is_string()) {
    // Big-endian 8-byte prefix; distinct strings may collide, so lookups
    // post-filter by the actual attribute value.
    const std::string& s = value.as_string();
    uint64_t packed = 0;
    for (size_t i = 0; i < 8; ++i) {
      packed = (packed << 8) |
               (i < s.size() ? static_cast<uint8_t>(s[i]) : 0);
    }
    return static_cast<int64_t>(packed ^ 0x8000000000000000ULL);
  }
  if (value.is_ref()) return static_cast<int64_t>(value.as_ref().Packed());
  return Status::InvalidArgument("cannot index value " + value.ToString());
}

}  // namespace fieldrep
