#ifndef FIELDREP_INDEX_BTREE_H_
#define FIELDREP_INDEX_BTREE_H_

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "common/status.h"
#include "objects/value.h"
#include "storage/buffer_pool.h"
#include "storage/oid.h"

namespace fieldrep {

/// \brief Disk-based B+ tree mapping int64 keys to OIDs, built over the
/// buffer pool.
///
/// Duplicate keys are supported by treating (key, value) as the unit of
/// ordering; separators in internal nodes carry the full pair, so descent
/// is exact even across duplicates. Deletion is lazy (no merging or
/// borrowing): leaves may become underfull or empty, which range scans skip
/// over — the classic trade-off chosen by many production engines.
///
/// The paper's queries reach R and S through B+ tree indexes on scalar
/// fields (Section 6.2's last assumption); Section 3.3.4's indexes on
/// replicated paths are BTrees keyed on replica values.
class BTree {
 public:
  /// \param pool shared buffer pool (not owned)
  explicit BTree(BufferPool* pool);

  BTree(const BTree&) = delete;
  BTree& operator=(const BTree&) = delete;

  /// Allocates the root leaf. Must be called once before use (or
  /// DecodeMetadata for an existing tree).
  Status Init();

  /// Inserts an entry; AlreadyExists if the exact (key, value) is present.
  Status Insert(int64_t key, Oid value);

  /// Removes the entry (key, value); NotFound if absent.
  Status Delete(int64_t key, Oid value);

  /// Appends all values with exactly `key` to `out`.
  Status Lookup(int64_t key, std::vector<Oid>* out) const;

  /// Calls `fn(key, value)` for entries with lo <= key <= hi in ascending
  /// (key, value) order; stops early when `fn` returns false.
  Status ScanRange(int64_t lo, int64_t hi,
                   const std::function<bool(int64_t, Oid)>& fn) const;

  uint64_t size() const { return entry_count_; }
  bool empty() const { return entry_count_ == 0; }

  /// Levels from root to leaf (1 for a lone leaf). 0 if uninitialized.
  Result<uint32_t> Height() const;

  /// Number of pages currently reachable from the root.
  Result<uint32_t> PageCount() const;

  PageId root() const { return root_; }

  std::string EncodeMetadata() const;
  Status DecodeMetadata(const std::string& encoded);

  /// Validates ordering and separator invariants over the whole tree
  /// (test support).
  Status CheckInvariants() const;

 private:
  struct SplitResult {
    bool split = false;
    int64_t sep_key = 0;
    uint64_t sep_val = 0;
    PageId right = kInvalidPageId;
  };

  Status InsertRecursive(PageId node, int64_t key, uint64_t val,
                         SplitResult* result);
  Status FindLeaf(int64_t key, uint64_t val, PageId* leaf) const;
  Status CheckNode(PageId node, bool is_root, int64_t lo_key, uint64_t lo_val,
                   bool has_lo, int64_t hi_key, uint64_t hi_val, bool has_hi,
                   uint32_t* height, uint32_t* pages) const;

  BufferPool* pool_;
  PageId root_ = kInvalidPageId;
  uint64_t entry_count_ = 0;
};

/// Maps an attribute value to a B+ tree key. Integers map directly;
/// doubles map through an order-preserving bit transform; strings map to
/// their big-endian 8-byte prefix (ties compare equal, so lookups
/// post-filter); refs use the packed OID.
Result<int64_t> BTreeKeyForValue(const Value& value);

}  // namespace fieldrep

#endif  // FIELDREP_INDEX_BTREE_H_
