#include "index/index_manager.h"

#include "common/strings.h"

namespace fieldrep {

IndexManager::IndexManager(BufferPool* pool, Catalog* catalog,
                           SetProvider* sets)
    : pool_(pool), catalog_(catalog), sets_(sets) {}

Status IndexManager::BuildIndex(const std::string& index_name,
                                const std::string& set_name,
                                const std::string& key_expr, bool clustered) {
  if (catalog_->FindIndexByName(index_name) != nullptr) {
    return Status::AlreadyExists("index " + index_name + " already exists");
  }
  FIELDREP_ASSIGN_OR_RETURN(ObjectSet * set, sets_->GetSet(set_name));

  IndexInfo info;
  info.name = index_name;
  info.set_name = set_name;
  info.key_expr = key_expr;
  info.clustered = clustered;

  if (key_expr.find('.') == std::string::npos) {
    int attr_index = set->type().FindAttribute(key_expr);
    if (attr_index < 0) {
      return Status::InvalidArgument("type " + set->type().name() +
                                     " has no attribute " + key_expr);
    }
    info.attr_index = attr_index;
  } else {
    // Path index (Section 3.3.4): requires the path to be replicated
    // in-place, so the keys are the replica values stored in this set.
    const ReplicationPathInfo* path =
        catalog_->FindPathBySpec(set_name + "." + key_expr);
    if (path == nullptr) {
      return Status::FailedPrecondition(
          "an index on path " + set_name + "." + key_expr +
          " requires `replicate " + set_name + "." + key_expr + "` first");
    }
    if (path->strategy != ReplicationStrategy::kInPlace) {
      return Status::NotSupported(
          "path indexes require in-place replication (replica values must "
          "be stored in " + set_name + " itself)");
    }
    if (path->bound.terminal_fields.size() != 1) {
      return Status::NotSupported(
          "path indexes require a single replicated terminal field");
    }
    info.is_path_index = true;
    info.path_id = path->id;
  }

  info.file_id = catalog_->AllocateFileId();
  auto tree = std::make_unique<BTree>(pool_);
  FIELDREP_RETURN_IF_ERROR(tree->Init());

  // Bulk build.
  Status build_status;
  BTree* tree_ptr = tree.get();
  const IndexInfo& info_ref = info;
  Status scan_status = set->Scan([&](const Oid& oid, const Object& object) {
    Result<int64_t> key = KeyFor(info_ref, object);
    if (!key.ok()) {
      if (key.status().IsNotFound()) return true;  // null key: skip
      build_status = key.status();
      return false;
    }
    build_status = tree_ptr->Insert(key.value(), oid);
    return build_status.ok();
  });
  FIELDREP_RETURN_IF_ERROR(scan_status);
  FIELDREP_RETURN_IF_ERROR(build_status);

  FIELDREP_RETURN_IF_ERROR(catalog_->RegisterIndex(info));
  trees_.emplace(index_name, std::move(tree));
  return Status::OK();
}

Status IndexManager::RestoreIndex(const std::string& index_name,
                                  const std::string& btree_metadata) {
  if (catalog_->FindIndexByName(index_name) == nullptr) {
    return Status::FailedPrecondition("index " + index_name +
                                      " is not in the catalog");
  }
  auto tree = std::make_unique<BTree>(pool_);
  FIELDREP_RETURN_IF_ERROR(tree->DecodeMetadata(btree_metadata));
  trees_[index_name] = std::move(tree);
  return Status::OK();
}

Status IndexManager::DropIndex(const std::string& index_name) {
  FIELDREP_RETURN_IF_ERROR(catalog_->DropIndex(index_name));
  trees_.erase(index_name);
  return Status::OK();
}

Result<BTree*> IndexManager::GetIndex(const std::string& index_name) {
  auto it = trees_.find(index_name);
  if (it == trees_.end()) {
    return Status::NotFound("no index named " + index_name);
  }
  return it->second.get();
}

Status IndexManager::IndexKeyForPath(const IndexInfo& info,
                                     const Object& object,
                                     Value* value) const {
  const ReplicaValueSlot* slot = object.FindReplicaValues(info.path_id);
  if (slot == nullptr || slot->values.empty()) {
    return Status::NotFound("object has no replica values for path");
  }
  *value = slot->values[0];
  return Status::OK();
}

Result<int64_t> IndexManager::KeyFor(const IndexInfo& info,
                                     const Object& object) const {
  Value value;
  if (info.is_path_index) {
    FIELDREP_RETURN_IF_ERROR(IndexKeyForPath(info, object, &value));
  } else {
    if (static_cast<size_t>(info.attr_index) >= object.fields().size()) {
      return Status::InvalidArgument("attribute index out of range");
    }
    value = object.field(info.attr_index);
  }
  if (value.is_null()) {
    return Status::NotFound("null key is not indexed");
  }
  return BTreeKeyForValue(value);
}

Status IndexManager::OnInsert(const std::string& set_name, const Oid& oid,
                              const Object& object) {
  for (const IndexInfo* info : catalog_->IndexesOnSet(set_name)) {
    Result<int64_t> key = KeyFor(*info, object);
    if (!key.ok()) {
      if (key.status().IsNotFound()) continue;
      return key.status();
    }
    FIELDREP_ASSIGN_OR_RETURN(BTree * tree, GetIndex(info->name));
    FIELDREP_RETURN_IF_ERROR(tree->Insert(key.value(), oid));
  }
  return Status::OK();
}

Status IndexManager::OnDelete(const std::string& set_name, const Oid& oid,
                              const Object& object) {
  for (const IndexInfo* info : catalog_->IndexesOnSet(set_name)) {
    Result<int64_t> key = KeyFor(*info, object);
    if (!key.ok()) {
      if (key.status().IsNotFound()) continue;
      return key.status();
    }
    FIELDREP_ASSIGN_OR_RETURN(BTree * tree, GetIndex(info->name));
    Status s = tree->Delete(key.value(), oid);
    if (!s.ok() && !s.IsNotFound()) return s;
  }
  return Status::OK();
}

Status IndexManager::OnFieldUpdate(const std::string& set_name, const Oid& oid,
                                   const Value& old_value,
                                   const Value& new_value, int attr_index) {
  for (const IndexInfo* info : catalog_->IndexesOnSet(set_name)) {
    if (info->is_path_index || info->attr_index != attr_index) continue;
    FIELDREP_ASSIGN_OR_RETURN(BTree * tree, GetIndex(info->name));
    if (!old_value.is_null()) {
      FIELDREP_ASSIGN_OR_RETURN(int64_t old_key, BTreeKeyForValue(old_value));
      Status s = tree->Delete(old_key, oid);
      if (!s.ok() && !s.IsNotFound()) return s;
    }
    if (!new_value.is_null()) {
      FIELDREP_ASSIGN_OR_RETURN(int64_t new_key, BTreeKeyForValue(new_value));
      Status s = tree->Insert(new_key, oid);
      if (!s.ok() && s.code() != StatusCode::kAlreadyExists) return s;
    }
  }
  return Status::OK();
}

Status IndexManager::OnReplicaValuesChanged(
    const std::string& set_name, const Oid& oid, uint16_t path_id,
    const std::vector<Value>& old_values,
    const std::vector<Value>& new_values) {
  for (const IndexInfo* info : catalog_->IndexesOnSet(set_name)) {
    if (!info->is_path_index || info->path_id != path_id) continue;
    FIELDREP_ASSIGN_OR_RETURN(BTree * tree, GetIndex(info->name));
    if (!old_values.empty() && !old_values[0].is_null()) {
      FIELDREP_ASSIGN_OR_RETURN(int64_t old_key,
                                BTreeKeyForValue(old_values[0]));
      Status s = tree->Delete(old_key, oid);
      if (!s.ok() && !s.IsNotFound()) return s;
    }
    if (!new_values.empty() && !new_values[0].is_null()) {
      FIELDREP_ASSIGN_OR_RETURN(int64_t new_key,
                                BTreeKeyForValue(new_values[0]));
      Status s = tree->Insert(new_key, oid);
      if (!s.ok() && s.code() != StatusCode::kAlreadyExists) return s;
    }
  }
  return Status::OK();
}

}  // namespace fieldrep
