#ifndef FIELDREP_INDEX_INDEX_MANAGER_H_
#define FIELDREP_INDEX_INDEX_MANAGER_H_

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "catalog/catalog.h"
#include "common/status.h"
#include "index/btree.h"
#include "objects/object.h"
#include "objects/set_provider.h"
#include "storage/buffer_pool.h"

namespace fieldrep {

/// \brief Owns the B+ trees of the database and keeps them consistent with
/// object mutations.
///
/// Supports two kinds of indexes:
///  * plain-attribute indexes (`build btree on Emp1.salary`), the indexes
///    the cost model's read/update queries descend (Section 6.2);
///  * path indexes on in-place-replicated reference paths
///    (`build btree on Emp1.dept.org.name`, Section 3.3.4), keyed on the
///    hidden replica values, so an associative lookup on an n-level path
///    costs one index probe instead of n+1 (the Gemstone comparison of
///    Section 7.2).
class IndexManager {
 public:
  IndexManager(BufferPool* pool, Catalog* catalog, SetProvider* sets);

  IndexManager(const IndexManager&) = delete;
  IndexManager& operator=(const IndexManager&) = delete;

  /// Creates and bulk-builds an index over `set_name` keyed by `key_expr`
  /// (a plain attribute like "salary", or a dotted path like
  /// "dept.org.name" which must match an existing in-place replication
  /// path). `clustered` is metadata recording that the file is physically
  /// ordered by this key; the tree structure is identical.
  Status BuildIndex(const std::string& index_name, const std::string& set_name,
                    const std::string& key_expr, bool clustered);

  Status DropIndex(const std::string& index_name);

  /// Reinstalls an index whose IndexInfo is already in the catalog, from
  /// checkpointed B+ tree metadata (database reopen).
  Status RestoreIndex(const std::string& index_name,
                      const std::string& btree_metadata);

  /// The tree behind a registered index.
  Result<BTree*> GetIndex(const std::string& index_name);

  /// All (key, oid) maintenance entry points. `object` must carry the
  /// post-state for inserts / pre-state for deletes.
  Status OnInsert(const std::string& set_name, const Oid& oid,
                  const Object& object);
  Status OnDelete(const std::string& set_name, const Oid& oid,
                  const Object& object);
  /// Field update: reindexes plain-attribute indexes on `attr_index`.
  Status OnFieldUpdate(const std::string& set_name, const Oid& oid,
                       const Value& old_value, const Value& new_value,
                       int attr_index);
  /// Replica propagation hook: reindexes path indexes on `path_id`.
  Status OnReplicaValuesChanged(const std::string& set_name, const Oid& oid,
                                uint16_t path_id,
                                const std::vector<Value>& old_values,
                                const std::vector<Value>& new_values);

  /// Extracts the B+ tree key for `info` from `object`; null values yield
  /// NotFound (unindexed).
  Result<int64_t> KeyFor(const IndexInfo& info, const Object& object) const;

 private:
  Status IndexKeyForPath(const IndexInfo& info, const Object& object,
                         Value* value) const;

  BufferPool* pool_;
  Catalog* catalog_;
  SetProvider* sets_;
  std::map<std::string, std::unique_ptr<BTree>> trees_;
};

}  // namespace fieldrep

#endif  // FIELDREP_INDEX_INDEX_MANAGER_H_
