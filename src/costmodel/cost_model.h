#ifndef FIELDREP_COSTMODEL_COST_MODEL_H_
#define FIELDREP_COSTMODEL_COST_MODEL_H_

#include <string>

#include "costmodel/params.h"

namespace fieldrep {

/// \brief The per-file components of one query's expected I/O cost.
///
/// Read queries use index/read_r/read_s/read_sprime/output; update queries
/// use index, the S read+write pair, the link-file read, the R read+write
/// pair (in-place propagation), and the S' read+write pair (separate
/// propagation). Unused components stay 0.
struct CostTerms {
  double index = 0;
  double read_r = 0;
  double read_s = 0;
  double read_sprime = 0;
  double output = 0;
  double update_s_read = 0;
  double update_s_write = 0;
  double read_l = 0;
  double update_r_read = 0;
  double update_r_write = 0;
  double update_sprime_read = 0;
  double update_sprime_write = 0;

  double Total() const {
    return index + read_r + read_s + read_sprime + output + update_s_read +
           update_s_write + read_l + update_r_read + update_r_write +
           update_sprime_read + update_sprime_write;
  }

  std::string ToString() const;
};

/// \brief The analytical cost model of Section 6: expected I/O costs of the
/// paper's read and update queries under no replication, in-place
/// replication, and separate replication, with unclustered or clustered
/// clause indexes.
///
/// Strategy-dependent size adjustments (Section 6.3's "r and s need to be
/// adjusted") are applied internally:
///   in-place: r += k; s += link-ID + (f <= inline threshold ? f : 1) OIDs
///   separate: r += OID (the head's replica pointer);
///             s += OID + 4 (replica pointer and reference count);
///             s' = k + type-tag; l = link-ID + type-tag + f * OID.
/// With the calibrated defaults (per-term ceiling, inline threshold 1) the
/// model reproduces 21 of the paper's 24 Figure 12/14 cells exactly and the
/// rest within 1 I/O (see EXPERIMENTS.md).
class CostModel {
 public:
  explicit CostModel(const CostModelParams& params) : p_(params) {}

  const CostModelParams& params() const { return p_; }

  /// C_read: expected I/O of one read query.
  double ReadCost(ModelStrategy strategy, IndexSetting setting) const;
  /// C_update: expected I/O of one update query.
  double UpdateCost(ModelStrategy strategy, IndexSetting setting) const;
  /// C_total = (1 - P_update) C_read + P_update C_update.
  double TotalCost(ModelStrategy strategy, IndexSetting setting,
                   double p_update) const;
  /// Percentage difference in C_total versus no replication — the y-axis of
  /// Figures 11 and 13 (negative = replication wins).
  double PercentDifference(ModelStrategy strategy, IndexSetting setting,
                           double p_update) const;

  CostTerms ReadTerms(ModelStrategy strategy, IndexSetting setting) const;
  CostTerms UpdateTerms(ModelStrategy strategy, IndexSetting setting) const;

  // --- Derived quantities (exposed for tests and benches) -------------------

  /// Adjusted object sizes.
  double EffectiveR(ModelStrategy strategy) const;
  double EffectiveS(ModelStrategy strategy) const;
  double SPrimeSize() const;
  double LinkObjectSize() const;
  /// Objects per page for a given object size: floor(B / (h + size)).
  double ObjectsPerPage(double object_size) const;
  /// Pages in each file.
  double Pr(ModelStrategy strategy) const;
  double Ps(ModelStrategy strategy) const;
  double PsPrime() const;
  double Pl() const;
  double Pt() const;
  /// True when Section 4.3.1 inlining removes the link file (f <= threshold).
  bool LinksInlined() const;
  /// Index descent + leaf-scan cost for a file of `n` entries returning
  /// `selected` of them.
  double IndexCost(double n, double selected) const;

 private:
  /// Applies the configured per-term rounding.
  double Term(double x) const;

  CostModelParams p_;
};

}  // namespace fieldrep

#endif  // FIELDREP_COSTMODEL_COST_MODEL_H_
