#ifndef FIELDREP_COSTMODEL_YAO_H_
#define FIELDREP_COSTMODEL_YAO_H_

#include <cstdint>

namespace fieldrep {

/// \brief Yao's block-access function [Yao77], the workhorse of the paper's
/// cost model (Section 6.5):
///
///   y(a, b, c) = 1 - C(a-b, c) / C(a, c)
///
/// the probability that a page holding b of a file's a objects is touched
/// when a random subset of c objects is accessed. Computed exactly via
/// log-gamma, which is stable for the paper's magnitudes (a up to 500 000).
///
/// Edge cases: c == 0 or b == 0 yields 0; c > a - b (every subset must hit
/// the page) yields 1; b >= a yields 1 for any c > 0.
double Yao(double a, double b, double c);

/// The exponential approximation 1 - (1 - b/a)^c, exposed for tests and
/// for documenting how close the exact form is at paper scale.
double YaoApprox(double a, double b, double c);

}  // namespace fieldrep

#endif  // FIELDREP_COSTMODEL_YAO_H_
