#include "costmodel/series.h"

#include <cmath>

#include "common/strings.h"

namespace fieldrep {

std::vector<FigureSeries> GeneratePanel(const CostModelParams& base,
                                        IndexSetting setting, double f,
                                        int steps) {
  const double read_selectivities[] = {0.001, 0.002, 0.005};
  std::vector<FigureSeries> panel;
  for (ModelStrategy strategy :
       {ModelStrategy::kInPlace, ModelStrategy::kSeparate}) {
    for (double fr : read_selectivities) {
      CostModelParams params = base;
      params.f = f;
      params.fr = fr;
      CostModel model(params);
      FigureSeries series;
      series.strategy = strategy;
      series.setting = setting;
      series.f = f;
      series.fr = fr;
      for (int i = 0; i <= steps; ++i) {
        double p = static_cast<double>(i) / steps;
        series.p_update.push_back(p);
        series.percent_diff.push_back(
            model.PercentDifference(strategy, setting, p));
      }
      panel.push_back(std::move(series));
    }
  }
  return panel;
}

std::vector<SelectedCostsRow> GenerateSelectedCosts(
    const CostModelParams& base, IndexSetting setting, double f, double fr) {
  CostModelParams params = base;
  params.f = f;
  params.fr = fr;
  CostModel model(params);
  std::vector<SelectedCostsRow> rows;
  for (ModelStrategy strategy :
       {ModelStrategy::kNoReplication, ModelStrategy::kInPlace,
        ModelStrategy::kSeparate}) {
    SelectedCostsRow row;
    row.strategy = strategy;
    row.c_read = model.ReadCost(strategy, setting);
    row.c_update = model.UpdateCost(strategy, setting);
    rows.push_back(row);
  }
  return rows;
}

std::string RenderPanel(const std::vector<FigureSeries>& panel,
                        const std::string& title) {
  std::string out = title + "\n";
  if (panel.empty()) return out;
  out += "  P_upd";
  for (const FigureSeries& series : panel) {
    out += StringPrintf(
        "  %s fr=%.3f",
        series.strategy == ModelStrategy::kInPlace ? "inplace " : "separate",
        series.fr);
  }
  out += "\n";
  size_t points = panel[0].p_update.size();
  for (size_t i = 0; i < points; ++i) {
    out += StringPrintf("  %5.2f", panel[0].p_update[i]);
    for (const FigureSeries& series : panel) {
      out += StringPrintf("  %+15.1f%%", series.percent_diff[i]);
    }
    out += "\n";
  }
  return out;
}

std::string RenderPanelCsv(const std::vector<FigureSeries>& panel) {
  std::string out = "p_update";
  for (const FigureSeries& series : panel) {
    out += StringPrintf(",%s_fr%.3f",
                        series.strategy == ModelStrategy::kInPlace
                            ? "inplace"
                            : "separate",
                        series.fr);
  }
  out += "\n";
  if (panel.empty()) return out;
  for (size_t i = 0; i < panel[0].p_update.size(); ++i) {
    out += StringPrintf("%.3f", panel[0].p_update[i]);
    for (const FigureSeries& series : panel) {
      out += StringPrintf(",%.4f", series.percent_diff[i]);
    }
    out += "\n";
  }
  return out;
}

double CrossoverUpdateProbability(const CostModel& model, ModelStrategy a,
                                  ModelStrategy b, IndexSetting setting) {
  auto diff = [&](double p) {
    return model.TotalCost(a, setting, p) - model.TotalCost(b, setting, p);
  };
  double lo = 0.0, hi = 1.0;
  double d_lo = diff(lo), d_hi = diff(hi);
  if (d_lo == 0) return 0;
  if (d_hi == 0) return 1;
  if ((d_lo < 0) == (d_hi < 0)) return -1;  // no crossover
  for (int iter = 0; iter < 60; ++iter) {
    double mid = (lo + hi) / 2;
    double d_mid = diff(mid);
    if (d_mid == 0) return mid;
    if ((d_mid < 0) == (d_lo < 0)) {
      lo = mid;
      d_lo = d_mid;
    } else {
      hi = mid;
    }
  }
  return (lo + hi) / 2;
}

}  // namespace fieldrep
