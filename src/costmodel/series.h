#ifndef FIELDREP_COSTMODEL_SERIES_H_
#define FIELDREP_COSTMODEL_SERIES_H_

#include <string>
#include <vector>

#include "costmodel/cost_model.h"

namespace fieldrep {

/// \brief One plotted line of Figure 11 or 13: percentage difference in
/// C_total versus update probability for one (strategy, f, fr).
struct FigureSeries {
  ModelStrategy strategy = ModelStrategy::kInPlace;
  IndexSetting setting = IndexSetting::kUnclustered;
  double f = 1;
  double fr = 0.001;
  std::vector<double> p_update;
  std::vector<double> percent_diff;
};

/// Generates every line of one panel (fixed f) of Figure 11/13: both
/// strategies crossed with the paper's read selectivities
/// fr in {.001, .002, .005}, sweeping P_update over [0, 1] in `steps`
/// increments.
std::vector<FigureSeries> GeneratePanel(const CostModelParams& base,
                                        IndexSetting setting, double f,
                                        int steps = 20);

/// \brief One row of Figure 12 / Figure 14: selected C_read and C_update.
struct SelectedCostsRow {
  ModelStrategy strategy = ModelStrategy::kNoReplication;
  double c_read = 0;
  double c_update = 0;
};

/// The three rows of one column-group of Figure 12/14 (fixed f, fr).
std::vector<SelectedCostsRow> GenerateSelectedCosts(
    const CostModelParams& base, IndexSetting setting, double f, double fr);

/// Renders a panel as an aligned text table (one column per line of the
/// figure), matching what the benches print.
std::string RenderPanel(const std::vector<FigureSeries>& panel,
                        const std::string& title);

/// Renders a panel as CSV (columns: p_update, then one column per series,
/// headed `strategy_fr`), for plotting the figures externally.
std::string RenderPanelCsv(const std::vector<FigureSeries>& panel);

/// The update probability at which `a` and `b` have equal C_total, found
/// by bisection over [0, 1]; returns -1 when one strategy dominates
/// throughout. Used to report the paper's crossover observations
/// (in-place wins below ~0.15, separate above ~0.35).
double CrossoverUpdateProbability(const CostModel& model, ModelStrategy a,
                                  ModelStrategy b, IndexSetting setting);

}  // namespace fieldrep

#endif  // FIELDREP_COSTMODEL_SERIES_H_
