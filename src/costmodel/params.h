#ifndef FIELDREP_COSTMODEL_PARAMS_H_
#define FIELDREP_COSTMODEL_PARAMS_H_

#include <cstdint>
#include <string>

namespace fieldrep {

/// Replication strategies compared by the model (Section 6).
enum class ModelStrategy { kNoReplication, kInPlace, kSeparate };

const char* ModelStrategyName(ModelStrategy s);

/// Index settings analyzed (Sections 6.4–6.8): both clause indexes
/// unclustered, or both clustered.
enum class IndexSetting { kUnclustered, kClustered };

const char* IndexSettingName(IndexSetting s);

/// How per-file cost terms are rounded (see DESIGN.md's calibration notes):
/// kCeilPerTerm matches 21 of the paper's 24 table cells exactly.
enum class Rounding {
  kCeilPerTerm,  ///< each per-file read/write term rounded up to whole I/Os
  kCeilTotal,    ///< only the final sum rounded up
  kNone,         ///< continuous (smooth curves)
};

/// \brief The cost model parameters of Figure 10, with the paper's
/// defaults. "Core" parameters are stored; derived quantities (object
/// sizes per strategy, objects per page, pages per file) are computed by
/// CostModel.
struct CostModelParams {
  double B = 4056;          ///< bytes per page available for user data
  double h = 20;            ///< storage overhead per object
  double m = 350;           ///< B+ tree fanout
  double S = 10000;         ///< |S|
  double f = 1;             ///< sharing level: each S object referenced by f R objects
  double fr = 0.001;        ///< read-query selectivity on R
  double fs = 0.001;        ///< update-query selectivity on S
  double oid_size = 8;      ///< sizeof(OID)
  double link_id_size = 1;  ///< sizeof(link-ID)
  double type_tag_size = 2; ///< sizeof(type-tag)
  double k = 20;            ///< size of the replicated field
  double r = 100;           ///< size of R objects (before strategy adjustments)
  double s = 200;           ///< size of S objects (before strategy adjustments)
  double t = 100;           ///< size of output (T) objects

  /// Rounding of per-file cost terms (calibrated against Figures 12/14).
  Rounding rounding = Rounding::kCeilPerTerm;
  /// Section 4.3.1: link objects with at most this many OIDs are inlined
  /// into their owners, dropping the link file from in-place update costs
  /// when f <= threshold. 0 disables.
  uint32_t inline_link_threshold = 1;

  /// Per-strategy storage overheads. Negative values (the default) select
  /// the paper's formulas; the empirical benchmarks override them with the
  /// engine's actual serialized sizes so model and measurement describe the
  /// same bytes.
  double inplace_head_bytes = -1;      ///< default: k
  double inplace_terminal_bytes = -1;  ///< default: link-ID + (inlined ? f : 1) OIDs
  double sep_head_bytes = -1;          ///< default: OID
  double sep_terminal_bytes = -1;      ///< default: OID + 4 (refcount)
  double link_fixed_bytes = -1;        ///< default: link-ID + type-tag
  double sprime_bytes = -1;            ///< default: k + type-tag

  /// |R| = f * |S|.
  double R() const { return f * S; }

  std::string ToString() const;
};

}  // namespace fieldrep

#endif  // FIELDREP_COSTMODEL_PARAMS_H_
