#include "costmodel/params.h"

#include "common/strings.h"

namespace fieldrep {

const char* ModelStrategyName(ModelStrategy s) {
  switch (s) {
    case ModelStrategy::kNoReplication:
      return "no replication";
    case ModelStrategy::kInPlace:
      return "in-place replication";
    case ModelStrategy::kSeparate:
      return "separate replication";
  }
  return "?";
}

const char* IndexSettingName(IndexSetting s) {
  switch (s) {
    case IndexSetting::kUnclustered:
      return "unclustered";
    case IndexSetting::kClustered:
      return "clustered";
  }
  return "?";
}

std::string CostModelParams::ToString() const {
  return StringPrintf(
      "CostModelParams{B=%.0f h=%.0f m=%.0f |S|=%.0f f=%.0f fr=%.4f fs=%.4f "
      "k=%.0f r=%.0f s=%.0f t=%.0f}",
      B, h, m, S, f, fr, fs, k, r, s, t);
}

}  // namespace fieldrep
