#include "costmodel/cost_model.h"

#include <cmath>

#include "common/strings.h"
#include "costmodel/yao.h"

namespace fieldrep {

namespace {
constexpr double kEps = 1e-9;
double CeilSafe(double x) { return std::ceil(x - kEps); }
}  // namespace

std::string CostTerms::ToString() const {
  return StringPrintf(
      "CostTerms{index=%.2f read_r=%.2f read_s=%.2f read_s'=%.2f out=%.2f "
      "upd_s=%.2f/%.2f read_l=%.2f upd_r=%.2f/%.2f upd_s'=%.2f/%.2f "
      "total=%.2f}",
      index, read_r, read_s, read_sprime, output, update_s_read,
      update_s_write, read_l, update_r_read, update_r_write,
      update_sprime_read, update_sprime_write, Total());
}

double CostModel::Term(double x) const {
  if (x <= 0) return 0;
  return p_.rounding == Rounding::kCeilPerTerm ? CeilSafe(x) : x;
}

bool CostModel::LinksInlined() const {
  return p_.f <= static_cast<double>(p_.inline_link_threshold);
}

double CostModel::EffectiveR(ModelStrategy strategy) const {
  switch (strategy) {
    case ModelStrategy::kNoReplication:
      return p_.r;
    case ModelStrategy::kInPlace:
      return p_.r +
             (p_.inplace_head_bytes >= 0 ? p_.inplace_head_bytes : p_.k);
    case ModelStrategy::kSeparate:
      // Pointer to the shared replica.
      return p_.r +
             (p_.sep_head_bytes >= 0 ? p_.sep_head_bytes : p_.oid_size);
  }
  return p_.r;
}

double CostModel::EffectiveS(ModelStrategy strategy) const {
  switch (strategy) {
    case ModelStrategy::kNoReplication:
      return p_.s;
    case ModelStrategy::kInPlace:
      // The (link-OID, link-ID) pair of Section 4.1.3 — or, when links are
      // inlined (Section 4.3.1), the f member OIDs stored directly.
      if (p_.inplace_terminal_bytes >= 0) {
        return p_.s + p_.inplace_terminal_bytes;
      }
      return p_.s + p_.link_id_size +
             (LinksInlined() ? p_.f * p_.oid_size : p_.oid_size);
    case ModelStrategy::kSeparate:
      // Replica pointer + reference count (Section 5.2).
      if (p_.sep_terminal_bytes >= 0) return p_.s + p_.sep_terminal_bytes;
      return p_.s + p_.oid_size + 4;
  }
  return p_.s;
}

double CostModel::SPrimeSize() const {
  if (p_.sprime_bytes >= 0) return p_.sprime_bytes;
  return p_.k + p_.type_tag_size;
}

double CostModel::LinkObjectSize() const {
  // Figure 10: l = 1 + sizeof(type-tag) + f * sizeof(OID).
  double fixed = p_.link_fixed_bytes >= 0
                     ? p_.link_fixed_bytes
                     : p_.link_id_size + p_.type_tag_size;
  return fixed + p_.f * p_.oid_size;
}

double CostModel::ObjectsPerPage(double object_size) const {
  return std::floor(p_.B / (p_.h + object_size));
}

double CostModel::Pr(ModelStrategy strategy) const {
  return CeilSafe(p_.R() / ObjectsPerPage(EffectiveR(strategy)));
}

double CostModel::Ps(ModelStrategy strategy) const {
  return CeilSafe(p_.S / ObjectsPerPage(EffectiveS(strategy)));
}

double CostModel::PsPrime() const {
  return CeilSafe(p_.S / ObjectsPerPage(SPrimeSize()));
}

double CostModel::Pl() const {
  return CeilSafe(p_.S / ObjectsPerPage(LinkObjectSize()));
}

double CostModel::Pt() const {
  return CeilSafe(p_.fr * p_.R() / ObjectsPerPage(p_.t));
}

double CostModel::IndexCost(double n, double selected) const {
  // Descend to the first leaf, then scan across leaves (Section 6.5.1).
  double descend = CeilSafe(std::log(n) / std::log(p_.m));
  if (descend < 1) descend = 1;
  double leaves = CeilSafe(selected / p_.m - 1);
  if (leaves < 0) leaves = 0;
  return descend + leaves;
}

CostTerms CostModel::ReadTerms(ModelStrategy strategy,
                               IndexSetting setting) const {
  CostTerms terms;
  const double R = p_.R();
  const double selected = p_.fr * R;
  terms.index = IndexCost(R, selected);
  const double o_r = ObjectsPerPage(EffectiveR(strategy));
  const double p_r = Pr(strategy);

  if (setting == IndexSetting::kUnclustered) {
    terms.read_r = Term(p_r * Yao(R, o_r, selected));
  } else {
    terms.read_r = Term(p_.fr * p_r);
  }

  switch (strategy) {
    case ModelStrategy::kNoReplication: {
      // Functional join with S: the page holding an S object is touched
      // when any of the f R objects referencing objects on it is selected,
      // so b = f * O_s (Section 6.5.1).
      const double o_s = ObjectsPerPage(EffectiveS(strategy));
      terms.read_s = Term(Ps(strategy) * Yao(R, p_.f * o_s, selected));
      break;
    }
    case ModelStrategy::kInPlace:
      break;  // no join at all
    case ModelStrategy::kSeparate: {
      const double o_sp = ObjectsPerPage(SPrimeSize());
      terms.read_sprime = Term(PsPrime() * Yao(R, p_.f * o_sp, selected));
      break;
    }
  }
  terms.output = Pt();
  return terms;
}

CostTerms CostModel::UpdateTerms(ModelStrategy strategy,
                                 IndexSetting setting) const {
  CostTerms terms;
  const double selected = p_.fs * p_.S;
  terms.index = IndexCost(p_.S, selected);

  const double o_s = ObjectsPerPage(EffectiveS(strategy));
  const double p_s = Ps(strategy);
  double s_pages;
  if (setting == IndexSetting::kUnclustered) {
    s_pages = p_s * Yao(p_.S, o_s, selected);
  } else {
    s_pages = p_.fs * p_s;
  }
  terms.update_s_read = Term(s_pages);
  terms.update_s_write = Term(s_pages);

  switch (strategy) {
    case ModelStrategy::kNoReplication:
      break;
    case ModelStrategy::kInPlace: {
      if (!LinksInlined()) {
        // Read the link objects of the updated S objects.
        const double o_l = ObjectsPerPage(LinkObjectSize());
        double l_pages;
        if (setting == IndexSetting::kUnclustered) {
          l_pages = Pl() * Yao(p_.S, o_l, selected);
        } else {
          l_pages = p_.fs * Pl();
        }
        terms.read_l = Term(l_pages);
      }
      // Propagate to the f * fs * |S| = fs * |R| referencing R objects.
      // R is relatively unclustered with respect to S in both settings.
      const double R = p_.R();
      const double o_r = ObjectsPerPage(EffectiveR(strategy));
      double r_pages = Pr(strategy) * Yao(R, o_r, p_.fs * R);
      terms.update_r_read = Term(r_pages);
      terms.update_r_write = Term(r_pages);
      break;
    }
    case ModelStrategy::kSeparate: {
      const double o_sp = ObjectsPerPage(SPrimeSize());
      double sp_pages;
      if (setting == IndexSetting::kUnclustered) {
        sp_pages = PsPrime() * Yao(p_.S, o_sp, selected);
      } else {
        sp_pages = p_.fs * PsPrime();
      }
      terms.update_sprime_read = Term(sp_pages);
      terms.update_sprime_write = Term(sp_pages);
      break;
    }
  }
  return terms;
}

double CostModel::ReadCost(ModelStrategy strategy,
                           IndexSetting setting) const {
  double total = ReadTerms(strategy, setting).Total();
  return p_.rounding == Rounding::kNone ? total : CeilSafe(total);
}

double CostModel::UpdateCost(ModelStrategy strategy,
                             IndexSetting setting) const {
  double total = UpdateTerms(strategy, setting).Total();
  return p_.rounding == Rounding::kNone ? total : CeilSafe(total);
}

double CostModel::TotalCost(ModelStrategy strategy, IndexSetting setting,
                            double p_update) const {
  return (1.0 - p_update) * ReadCost(strategy, setting) +
         p_update * UpdateCost(strategy, setting);
}

double CostModel::PercentDifference(ModelStrategy strategy,
                                    IndexSetting setting,
                                    double p_update) const {
  double baseline =
      TotalCost(ModelStrategy::kNoReplication, setting, p_update);
  double cost = TotalCost(strategy, setting, p_update);
  return 100.0 * (cost - baseline) / baseline;
}

}  // namespace fieldrep
