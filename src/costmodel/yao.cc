#include "costmodel/yao.h"

#include <cmath>

namespace fieldrep {

double Yao(double a, double b, double c) {
  if (c <= 0.0 || b <= 0.0 || a <= 0.0) return 0.0;
  if (b >= a) return 1.0;
  if (c > a - b) return 1.0;
  // C(a-b, c) / C(a, c) = Gamma(a-b+1) Gamma(a-c+1) /
  //                       (Gamma(a-b-c+1) Gamma(a+1))
  double log_ratio = std::lgamma(a - b + 1.0) - std::lgamma(a - b - c + 1.0) -
                     std::lgamma(a + 1.0) + std::lgamma(a - c + 1.0);
  double prob_untouched = std::exp(log_ratio);
  if (prob_untouched > 1.0) prob_untouched = 1.0;
  if (prob_untouched < 0.0) prob_untouched = 0.0;
  return 1.0 - prob_untouched;
}

double YaoApprox(double a, double b, double c) {
  if (c <= 0.0 || b <= 0.0 || a <= 0.0) return 0.0;
  if (b >= a) return 1.0;
  return 1.0 - std::pow(1.0 - b / a, c);
}

}  // namespace fieldrep
