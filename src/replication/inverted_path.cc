#include "replication/inverted_path.h"

#include <algorithm>

#include "common/strings.h"

namespace fieldrep {

Result<ObjectSet*> InvertedPathOps::SetForOid(const Oid& oid) const {
  FIELDREP_ASSIGN_OR_RETURN(const SetInfo* info,
                            catalog_->GetSetForFile(oid.file_id));
  return sets_->GetSet(info->name);
}

Status InvertedPathOps::ReadObject(const Oid& oid, Object* object,
                                   ObjectSet** set_out) const {
  FIELDREP_ASSIGN_OR_RETURN(ObjectSet * set, SetForOid(oid));
  if (set_out != nullptr) *set_out = set;
  return set->Read(oid, object);
}

Status InvertedPathOps::WriteObject(const Oid& oid,
                                    const Object& object) const {
  FIELDREP_ASSIGN_OR_RETURN(ObjectSet * set, SetForOid(oid));
  return set->Write(oid, object);
}

Result<LinkSet> InvertedPathOps::LinkSetFor(uint8_t link_id) const {
  const LinkInfo* link = catalog_->link_registry().GetLink(link_id);
  if (link == nullptr) {
    return Status::NotFound(StringPrintf("no link with id %u", link_id));
  }
  FIELDREP_ASSIGN_OR_RETURN(RecordFile * file,
                            sets_->GetAuxFile(link->link_set_file));
  return LinkSet(file);
}

Status InvertedPathOps::SpillInline(const LinkInfo& link, const Oid& owner,
                                    LinkRef* ref) {
  LinkObjectData data(link.id, owner, /*tagged=*/link.collapsed);
  for (const Oid& member : ref->inline_oids) {
    data.AddMember(member);
  }
  FIELDREP_ASSIGN_OR_RETURN(LinkSet link_set, LinkSetFor(link.id));
  Oid link_oid;
  FIELDREP_RETURN_IF_ERROR(link_set.Create(data, &link_oid));
  ref->inlined = false;
  ref->inline_oids.clear();
  ref->link_oid = link_oid;
  return Status::OK();
}

Status InvertedPathOps::AddMember(uint8_t link_id, const Oid& owner,
                                  Object* owner_obj, const Oid& member,
                                  const Oid& tag) {
  const LinkInfo* link = catalog_->link_registry().GetLink(link_id);
  if (link == nullptr) {
    return Status::NotFound(StringPrintf("no link with id %u", link_id));
  }
  LinkRef* ref = owner_obj->FindLinkRef(link_id);
  if (ref == nullptr) {
    // Owner enters the link. Small links are inlined (Section 4.3.1:
    // "L can be eliminated, and x can be stored directly in the object(s)
    // that reference L"); collapsed links always materialize because their
    // entries carry tags.
    if (!link->collapsed && link->inline_threshold >= 1) {
      LinkRef fresh;
      fresh.link_id = link_id;
      fresh.inlined = true;
      fresh.inline_oids.push_back(member);
      owner_obj->SetLinkRef(std::move(fresh));
    } else {
      LinkObjectData data(link_id, owner, /*tagged=*/link->collapsed);
      data.AddMember(member, tag);
      FIELDREP_ASSIGN_OR_RETURN(LinkSet link_set, LinkSetFor(link_id));
      Oid link_oid;
      FIELDREP_RETURN_IF_ERROR(link_set.Create(data, &link_oid));
      LinkRef fresh;
      fresh.link_id = link_id;
      fresh.link_oid = link_oid;
      owner_obj->SetLinkRef(std::move(fresh));
    }
    return WriteObject(owner, *owner_obj);
  }

  if (ref->inlined) {
    auto it = std::lower_bound(ref->inline_oids.begin(),
                               ref->inline_oids.end(), member);
    if (it != ref->inline_oids.end() && *it == member) {
      return Status::OK();  // already present
    }
    ref->inline_oids.insert(it, member);
    if (ref->inline_oids.size() > link->inline_threshold) {
      FIELDREP_RETURN_IF_ERROR(SpillInline(*link, owner, ref));
    }
    return WriteObject(owner, *owner_obj);
  }

  FIELDREP_ASSIGN_OR_RETURN(LinkSet link_set, LinkSetFor(link_id));
  LinkObjectData data;
  FIELDREP_RETURN_IF_ERROR(link_set.Read(ref->link_oid, &data));
  if (!data.AddMember(member, tag)) {
    return Status::OK();  // already present; nothing to write
  }
  return link_set.Write(ref->link_oid, data);
}

Status InvertedPathOps::AddMembers(uint8_t link_id, const Oid& owner,
                                   Object* owner_obj,
                                   const std::vector<Oid>& members,
                                   const Oid& tag) {
  if (members.empty()) return Status::OK();
  const LinkInfo* link = catalog_->link_registry().GetLink(link_id);
  if (link == nullptr) {
    return Status::NotFound(StringPrintf("no link with id %u", link_id));
  }
  LinkRef* ref = owner_obj->FindLinkRef(link_id);
  if (ref == nullptr) {
    if (!link->collapsed && members.size() <= link->inline_threshold) {
      LinkRef fresh;
      fresh.link_id = link_id;
      fresh.inlined = true;
      fresh.inline_oids = members;
      std::sort(fresh.inline_oids.begin(), fresh.inline_oids.end());
      owner_obj->SetLinkRef(std::move(fresh));
      return WriteObject(owner, *owner_obj);
    }
    LinkObjectData data(link_id, owner, /*tagged=*/link->collapsed);
    for (const Oid& member : members) data.AddMember(member, tag);
    FIELDREP_ASSIGN_OR_RETURN(LinkSet link_set, LinkSetFor(link_id));
    Oid link_oid;
    FIELDREP_RETURN_IF_ERROR(link_set.Create(data, &link_oid));
    LinkRef fresh;
    fresh.link_id = link_id;
    fresh.link_oid = link_oid;
    owner_obj->SetLinkRef(std::move(fresh));
    return WriteObject(owner, *owner_obj);
  }
  if (ref->inlined) {
    bool changed = false;
    for (const Oid& member : members) {
      auto it = std::lower_bound(ref->inline_oids.begin(),
                                 ref->inline_oids.end(), member);
      if (it == ref->inline_oids.end() || *it != member) {
        ref->inline_oids.insert(it, member);
        changed = true;
      }
    }
    if (!changed) return Status::OK();
    if (ref->inline_oids.size() > link->inline_threshold) {
      FIELDREP_RETURN_IF_ERROR(SpillInline(*link, owner, ref));
    }
    return WriteObject(owner, *owner_obj);
  }
  FIELDREP_ASSIGN_OR_RETURN(LinkSet link_set, LinkSetFor(link_id));
  LinkObjectData data;
  FIELDREP_RETURN_IF_ERROR(link_set.Read(ref->link_oid, &data));
  bool changed = false;
  for (const Oid& member : members) {
    changed |= data.AddMember(member, tag);
  }
  if (!changed) return Status::OK();
  return link_set.Write(ref->link_oid, data);
}

Status InvertedPathOps::RemoveMember(uint8_t link_id, const Oid& owner,
                                     Object* owner_obj, const Oid& member,
                                     bool* owner_on_path) {
  LinkRef* ref = owner_obj->FindLinkRef(link_id);
  if (ref == nullptr) {
    *owner_on_path = false;
    return Status::OK();
  }
  if (ref->inlined) {
    auto it = std::lower_bound(ref->inline_oids.begin(),
                               ref->inline_oids.end(), member);
    if (it != ref->inline_oids.end() && *it == member) {
      ref->inline_oids.erase(it);
      if (ref->inline_oids.empty()) {
        owner_obj->RemoveLinkRef(link_id);
        *owner_on_path = false;
      } else {
        *owner_on_path = true;
      }
      return WriteObject(owner, *owner_obj);
    }
    *owner_on_path = true;
    return Status::OK();
  }

  FIELDREP_ASSIGN_OR_RETURN(LinkSet link_set, LinkSetFor(link_id));
  LinkObjectData data;
  FIELDREP_RETURN_IF_ERROR(link_set.Read(ref->link_oid, &data));
  if (!data.RemoveMember(member)) {
    *owner_on_path = true;
    return Status::OK();
  }
  if (data.empty()) {
    // "If there are no longer any OIDs in the link object, it is deleted."
    FIELDREP_RETURN_IF_ERROR(link_set.Delete(ref->link_oid));
    owner_obj->RemoveLinkRef(link_id);
    *owner_on_path = false;
    return WriteObject(owner, *owner_obj);
  }
  *owner_on_path = true;
  return link_set.Write(ref->link_oid, data);
}

Status InvertedPathOps::GetMembers(uint8_t link_id, const Object& owner_obj,
                                   std::vector<Oid>* members) const {
  members->clear();
  const LinkRef* ref = owner_obj.FindLinkRef(link_id);
  if (ref == nullptr) return Status::OK();
  if (ref->inlined) {
    *members = ref->inline_oids;
    return Status::OK();
  }
  FIELDREP_ASSIGN_OR_RETURN(LinkSet link_set, LinkSetFor(link_id));
  LinkObjectData data;
  FIELDREP_RETURN_IF_ERROR(link_set.Read(ref->link_oid, &data));
  *members = data.Members();
  return Status::OK();
}

Status InvertedPathOps::GetEntries(uint8_t link_id, const Object& owner_obj,
                                   std::vector<LinkEntry>* entries) const {
  entries->clear();
  const LinkRef* ref = owner_obj.FindLinkRef(link_id);
  if (ref == nullptr) return Status::OK();
  if (ref->inlined) {
    for (const Oid& member : ref->inline_oids) {
      entries->push_back(LinkEntry{member, Oid::Invalid()});
    }
    return Status::OK();
  }
  FIELDREP_ASSIGN_OR_RETURN(LinkSet link_set, LinkSetFor(link_id));
  LinkObjectData data;
  FIELDREP_RETURN_IF_ERROR(link_set.Read(ref->link_oid, &data));
  *entries = data.entries();
  return Status::OK();
}

Status InvertedPathOps::RemoveTaggedMembers(uint8_t link_id, const Oid& owner,
                                            Object* owner_obj, const Oid& tag,
                                            std::vector<Oid>* removed) {
  removed->clear();
  LinkRef* ref = owner_obj->FindLinkRef(link_id);
  if (ref == nullptr) return Status::OK();
  if (ref->inlined) {
    return Status::Internal("collapsed link unexpectedly inlined");
  }
  FIELDREP_ASSIGN_OR_RETURN(LinkSet link_set, LinkSetFor(link_id));
  LinkObjectData data;
  FIELDREP_RETURN_IF_ERROR(link_set.Read(ref->link_oid, &data));
  *removed = data.RemoveByTag(tag);
  if (removed->empty()) return Status::OK();
  if (data.empty()) {
    FIELDREP_RETURN_IF_ERROR(link_set.Delete(ref->link_oid));
    owner_obj->RemoveLinkRef(link_id);
    return WriteObject(owner, *owner_obj);
  }
  return link_set.Write(ref->link_oid, data);
}

Status InvertedPathOps::MoveTaggedMembers(uint8_t link_id,
                                          const Oid& old_owner,
                                          Object* old_owner_obj,
                                          const Oid& new_owner,
                                          Object* new_owner_obj,
                                          const Oid& tag,
                                          std::vector<Oid>* moved) {
  FIELDREP_RETURN_IF_ERROR(
      RemoveTaggedMembers(link_id, old_owner, old_owner_obj, tag, moved));
  return AddMembers(link_id, new_owner, new_owner_obj, *moved, tag);
}

}  // namespace fieldrep
