#include "replication/link_object.h"

#include <algorithm>

#include "common/bytes.h"

namespace fieldrep {

namespace {
bool EntryLess(const LinkEntry& a, const Oid& member) {
  return a.member < member;
}
}  // namespace

std::vector<Oid> LinkObjectData::Members() const {
  std::vector<Oid> out;
  out.reserve(entries_.size());
  for (const LinkEntry& entry : entries_) out.push_back(entry.member);
  return out;
}

bool LinkObjectData::AddMember(const Oid& member, const Oid& tag) {
  auto it =
      std::lower_bound(entries_.begin(), entries_.end(), member, EntryLess);
  if (it != entries_.end() && it->member == member) return false;
  entries_.insert(it, LinkEntry{member, tag});
  return true;
}

bool LinkObjectData::RemoveMember(const Oid& member) {
  auto it =
      std::lower_bound(entries_.begin(), entries_.end(), member, EntryLess);
  if (it == entries_.end() || it->member != member) return false;
  entries_.erase(it);
  return true;
}

bool LinkObjectData::HasMember(const Oid& member) const {
  auto it =
      std::lower_bound(entries_.begin(), entries_.end(), member, EntryLess);
  return it != entries_.end() && it->member == member;
}

std::vector<Oid> LinkObjectData::RemoveByTag(const Oid& tag) {
  std::vector<Oid> moved;
  auto keep = entries_.begin();
  for (const LinkEntry& entry : entries_) {
    if (entry.tag == tag) {
      moved.push_back(entry.member);
    } else {
      *keep++ = entry;
    }
  }
  entries_.erase(keep, entries_.end());
  return moved;
}

size_t LinkObjectData::SerializedSize() const {
  return 2 + 1 + 1 + 8 + 8 + 4 + entries_.size() * (tagged_ ? 16 : 8);
}

std::string LinkObjectData::Serialize(const Oid& next) const {
  std::string out;
  PutU16(&out, kLinkRecordTag);
  out.push_back(static_cast<char>(link_id_));
  out.push_back(static_cast<char>(tagged_ ? 1 : 0));
  PutU64(&out, owner_.Packed());
  PutU64(&out, next.Packed());
  PutU32(&out, static_cast<uint32_t>(entries_.size()));
  for (const LinkEntry& entry : entries_) {
    PutU64(&out, entry.member.Packed());
    if (tagged_) PutU64(&out, entry.tag.Packed());
  }
  return out;
}

Status LinkObjectData::Deserialize(const std::string& payload) {
  ByteReader reader(payload);
  uint16_t tag;
  std::string head;
  uint64_t owner_packed, next_packed;
  uint32_t count;
  if (!reader.GetU16(&tag) || tag != kLinkRecordTag) {
    return Status::Corruption("record is not a link object");
  }
  if (!reader.GetRaw(2, &head) || !reader.GetU64(&owner_packed) ||
      !reader.GetU64(&next_packed) || !reader.GetU32(&count)) {
    return Status::Corruption("truncated link object");
  }
  link_id_ = static_cast<uint8_t>(head[0]);
  tagged_ = head[1] != 0;
  owner_ = Oid::FromPacked(owner_packed);
  next_segment_ = Oid::FromPacked(next_packed);
  entries_.clear();
  entries_.reserve(count);
  for (uint32_t i = 0; i < count; ++i) {
    LinkEntry entry;
    uint64_t packed;
    if (!reader.GetU64(&packed)) {
      return Status::Corruption("truncated link entry");
    }
    entry.member = Oid::FromPacked(packed);
    if (tagged_) {
      if (!reader.GetU64(&packed)) {
        return Status::Corruption("truncated link entry tag");
      }
      entry.tag = Oid::FromPacked(packed);
    }
    entries_.push_back(entry);
  }
  return Status::OK();
}

std::string ReplicaRecord::Serialize() const {
  std::string out;
  PutU16(&out, kReplicaRecordTag);
  PutU16(&out, path_id);
  PutU64(&out, owner.Packed());
  PutU16(&out, static_cast<uint16_t>(values.size()));
  for (const Value& v : values) EncodeTaggedValue(v, &out);
  return out;
}

Status ReplicaRecord::Deserialize(const std::string& payload) {
  ByteReader reader(payload);
  uint16_t tag, count;
  uint64_t owner_packed;
  if (!reader.GetU16(&tag) || tag != kReplicaRecordTag) {
    return Status::Corruption("record is not a replica record");
  }
  if (!reader.GetU16(&path_id) || !reader.GetU64(&owner_packed) ||
      !reader.GetU16(&count)) {
    return Status::Corruption("truncated replica record");
  }
  owner = Oid::FromPacked(owner_packed);
  values.clear();
  values.reserve(count);
  for (uint16_t i = 0; i < count; ++i) {
    Value v;
    FIELDREP_RETURN_IF_ERROR(DecodeTaggedValue(&reader, &v));
    values.push_back(std::move(v));
  }
  return Status::OK();
}

}  // namespace fieldrep
