#ifndef FIELDREP_REPLICATION_INVERTED_PATH_H_
#define FIELDREP_REPLICATION_INVERTED_PATH_H_

#include <vector>

#include "catalog/catalog.h"
#include "common/status.h"
#include "objects/object.h"
#include "objects/set_provider.h"
#include "replication/link_set.h"

namespace fieldrep {

/// \brief Low-level operations on the links of inverted paths
/// (Sections 4.1 and 4.3).
///
/// An inverted path P1.P2...Pn^-1 is broken into links; each link's inverse
/// mapping is materialized as link objects owned by the objects at the
/// link's target end. This class maintains single links: membership
/// add/remove with automatic link-object creation/deletion, the small-link
/// inlining optimization (Section 4.3.1), and tagged-entry moves for
/// collapsed links (Section 4.3.3). Path-level orchestration (ripple across
/// levels, head bookkeeping) lives in ReplicationManager.
class InvertedPathOps {
 public:
  InvertedPathOps(Catalog* catalog, SetProvider* sets)
      : catalog_(catalog), sets_(sets) {}

  // --- Object plumbing ------------------------------------------------------

  /// Resolves the set an OID belongs to.
  Result<ObjectSet*> SetForOid(const Oid& oid) const;

  /// Reads the object at `oid`; optionally returns its set.
  Status ReadObject(const Oid& oid, Object* object,
                    ObjectSet** set_out = nullptr) const;

  /// Writes the object at `oid` back to its set.
  Status WriteObject(const Oid& oid, const Object& object) const;

  /// The link set file of `link_id`.
  Result<LinkSet> LinkSetFor(uint8_t link_id) const;

  // --- Link membership ------------------------------------------------------

  /// Adds `member` to `owner`'s link object for `link_id`, creating the
  /// link object (or inline ref) if the owner just entered the link.
  /// No-op if the member is already present. `tag` is stored for collapsed
  /// links. `owner_obj` is the owner's current image and is mutated and
  /// written back when the owner's hidden state changes.
  Status AddMember(uint8_t link_id, const Oid& owner, Object* owner_obj,
                   const Oid& member, const Oid& tag = Oid::Invalid());

  /// Batched form of AddMember: one link-object read and one write for the
  /// whole member list (all entries share `tag`).
  Status AddMembers(uint8_t link_id, const Oid& owner, Object* owner_obj,
                    const std::vector<Oid>& members,
                    const Oid& tag = Oid::Invalid());

  /// Removes `member` from `owner`'s link object for `link_id`, deleting
  /// the link object and the owner's LinkRef when it empties (the
  /// maintenance rule of Section 4.1.1). On return `*owner_on_path` says
  /// whether the owner still has a link object for this link — the ripple
  /// signal of Section 4.1.2.
  Status RemoveMember(uint8_t link_id, const Oid& owner, Object* owner_obj,
                      const Oid& member, bool* owner_on_path);

  /// Member OIDs (sorted) of `owner_obj`'s link object for `link_id`;
  /// empty if the owner is not on the link.
  Status GetMembers(uint8_t link_id, const Object& owner_obj,
                    std::vector<Oid>* members) const;

  /// Tagged entries of a collapsed link object (member, tag pairs).
  Status GetEntries(uint8_t link_id, const Object& owner_obj,
                    std::vector<LinkEntry>* entries) const;

  /// Collapsed-link retargeting (Figure 6): moves every entry tagged `tag`
  /// from `old_owner`'s link object to `new_owner`'s, returning the moved
  /// members. Both owner images are mutated/written as needed.
  Status MoveTaggedMembers(uint8_t link_id, const Oid& old_owner,
                           Object* old_owner_obj, const Oid& new_owner,
                           Object* new_owner_obj, const Oid& tag,
                           std::vector<Oid>* moved);

  /// Removes every entry tagged `tag` from `owner`'s collapsed link
  /// object, returning the removed members.
  Status RemoveTaggedMembers(uint8_t link_id, const Oid& owner,
                             Object* owner_obj, const Oid& tag,
                             std::vector<Oid>* removed);

 private:
  /// Spills an inlined LinkRef into a real link object.
  Status SpillInline(const LinkInfo& link, const Oid& owner, LinkRef* ref);

  Catalog* catalog_;
  SetProvider* sets_;
};

}  // namespace fieldrep

#endif  // FIELDREP_REPLICATION_INVERTED_PATH_H_
