#include "replication/link_set.h"

#include <algorithm>

#include "storage/page.h"

namespace fieldrep {

uint32_t LinkSet::MaxEntriesPerSegment(bool tagged) {
  // Keep segment records comfortably within one page (the record layer
  // needs slack for its slot and potential relocation stubs).
  return (kUserBytesPerPage - 128) / (tagged ? 16 : 8);
}

namespace {
/// Splits `data`'s entries into per-segment chunks of at most `max` each.
std::vector<std::vector<LinkEntry>> Chunk(const LinkObjectData& data,
                                          uint32_t max) {
  std::vector<std::vector<LinkEntry>> chunks;
  const std::vector<LinkEntry>& entries = data.entries();
  for (size_t start = 0; start < entries.size(); start += max) {
    size_t end = std::min(entries.size(), start + max);
    chunks.emplace_back(entries.begin() + start, entries.begin() + end);
  }
  if (chunks.empty()) chunks.emplace_back();
  return chunks;
}

LinkObjectData Segment(const LinkObjectData& proto,
                       std::vector<LinkEntry> entries) {
  LinkObjectData segment(proto.link_id(), proto.owner(), proto.tagged());
  segment.SetEntries(std::move(entries));
  return segment;
}
}  // namespace

Status LinkSet::CreateTail(const LinkObjectData& data, size_t chunk_count,
                           Oid* first_tail) {
  *first_tail = Oid::Invalid();
  if (chunk_count <= 1) return Status::OK();
  auto chunks = Chunk(data, MaxEntriesPerSegment(data.tagged()));
  // Create tail segments last-to-first so each can chain to its successor.
  Oid next = Oid::Invalid();
  for (size_t i = chunks.size(); i-- > 1;) {
    LinkObjectData segment = Segment(data, std::move(chunks[i]));
    Oid oid;
    FIELDREP_RETURN_IF_ERROR(file_->Insert(segment.Serialize(next), &oid));
    next = oid;
  }
  *first_tail = next;
  return Status::OK();
}

Status LinkSet::Create(const LinkObjectData& data, Oid* oid) {
  auto chunks = Chunk(data, MaxEntriesPerSegment(data.tagged()));
  Oid first_tail;
  FIELDREP_RETURN_IF_ERROR(CreateTail(data, chunks.size(), &first_tail));
  LinkObjectData head = Segment(data, std::move(chunks[0]));
  return file_->Insert(head.Serialize(first_tail), oid);
}

Status LinkSet::Read(const Oid& oid, LinkObjectData* data) const {
  std::string payload;
  FIELDREP_RETURN_IF_ERROR(file_->Read(oid, &payload));
  FIELDREP_RETURN_IF_ERROR(data->Deserialize(payload));
  Oid next = data->next_segment();
  if (!next.valid()) return Status::OK();
  std::vector<LinkEntry> entries = data->entries();
  while (next.valid()) {
    FIELDREP_RETURN_IF_ERROR(file_->Read(next, &payload));
    LinkObjectData segment;
    FIELDREP_RETURN_IF_ERROR(segment.Deserialize(payload));
    entries.insert(entries.end(), segment.entries().begin(),
                   segment.entries().end());
    next = segment.next_segment();
  }
  data->SetEntries(std::move(entries));
  return Status::OK();
}

Status LinkSet::CollectChain(const Oid& head, std::vector<Oid>* tail) const {
  tail->clear();
  std::string payload;
  FIELDREP_RETURN_IF_ERROR(file_->Read(head, &payload));
  LinkObjectData segment;
  FIELDREP_RETURN_IF_ERROR(segment.Deserialize(payload));
  Oid next = segment.next_segment();
  while (next.valid()) {
    tail->push_back(next);
    FIELDREP_RETURN_IF_ERROR(file_->Read(next, &payload));
    FIELDREP_RETURN_IF_ERROR(segment.Deserialize(payload));
    next = segment.next_segment();
  }
  return Status::OK();
}

Status LinkSet::Write(const Oid& oid, const LinkObjectData& data) {
  std::vector<Oid> old_tail;
  FIELDREP_RETURN_IF_ERROR(CollectChain(oid, &old_tail));
  auto chunks = Chunk(data, MaxEntriesPerSegment(data.tagged()));
  Oid first_tail;
  FIELDREP_RETURN_IF_ERROR(CreateTail(data, chunks.size(), &first_tail));
  LinkObjectData head = Segment(data, std::move(chunks[0]));
  FIELDREP_RETURN_IF_ERROR(file_->Update(oid, head.Serialize(first_tail)));
  for (const Oid& segment : old_tail) {
    FIELDREP_RETURN_IF_ERROR(file_->Delete(segment));
  }
  return Status::OK();
}

Status LinkSet::Delete(const Oid& oid) {
  std::vector<Oid> tail;
  FIELDREP_RETURN_IF_ERROR(CollectChain(oid, &tail));
  FIELDREP_RETURN_IF_ERROR(file_->Delete(oid));
  for (const Oid& segment : tail) {
    FIELDREP_RETURN_IF_ERROR(file_->Delete(segment));
  }
  return Status::OK();
}

}  // namespace fieldrep
