#ifndef FIELDREP_REPLICATION_REPLICATION_MANAGER_H_
#define FIELDREP_REPLICATION_REPLICATION_MANAGER_H_

#include <atomic>
#include <set>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "catalog/catalog.h"
#include "check/check_report.h"
#include "common/annotated_mutex.h"
#include "common/status.h"
#include "index/index_manager.h"
#include "objects/object.h"
#include "objects/set_provider.h"
#include "replication/inverted_path.h"

namespace fieldrep {

class BufferPool;
class WalManager;
class WorkloadProfiler;
struct MetricSample;

/// Options for `replicate <path>` (Sections 4, 5, 4.3).
struct ReplicateOptions {
  ReplicationStrategy strategy = ReplicationStrategy::kInPlace;
  /// Collapse the inverted path to one level (Section 4.3.3). In-place,
  /// 2-level paths only.
  bool collapsed = false;
  /// Inline link objects with at most this many members (Section 4.3.1);
  /// 0 disables. Applies to links first created by this path.
  uint32_t inline_threshold = 1;
  /// Cluster the link objects of different levels of this path into one
  /// link file, grouped by terminal chain (Section 4.3.2: avoid the two
  /// I/Os of reading L_O and L_D from different sets by keeping them
  /// together). In-place, non-collapsed paths of 2+ levels only, and the
  /// path must not share links with existing paths (the clustering
  /// conflict the paper leaves "for future study" is resolved here by
  /// simply refusing to share).
  bool cluster_links = false;
  /// Deferred propagation — the Section 8 future-work item "replication
  /// techniques in which updates are not propagated until needed".
  /// Terminal-value updates are queued instead of fanned out to the heads;
  /// the queue is drained when a query reads through the path (or on an
  /// explicit FlushPendingPropagation call), coalescing repeated updates
  /// to the same terminal into one propagation. In-place paths only; link
  /// maintenance for reference retargets stays eager (the inverted path
  /// must be correct for the eventual flush). The queue is in-memory:
  /// deferred mode trades crash-freshness for update latency, like the
  /// POSTGRES invalidation schemes the paper compares against.
  bool deferred = false;
};

/// \brief The replication engine: creates and drops replication paths and
/// performs every object mutation so that replicated values, link objects,
/// inverted paths, and replica files stay consistent.
///
/// All data mutations on sets that may participate in replication must go
/// through InsertObject / DeleteObject / UpdateField(s); Database's public
/// API routes them here. Query execution reads replicas through
/// ReadReplicatedValues.
///
/// One schema restriction (documented in DESIGN.md): separate replication
/// of a path whose terminal type equals the head set's element type is
/// rejected, because head-side and terminal-side replica bookkeeping would
/// collide on the same object.
class ReplicationManager {
 public:
  /// \param indexes may be null (no index maintenance).
  ReplicationManager(Catalog* catalog, SetProvider* sets,
                     IndexManager* indexes);

  ReplicationManager(const ReplicationManager&) = delete;
  ReplicationManager& operator=(const ReplicationManager&) = delete;

  /// Attaches a write-ahead log. Every mutating entry point then runs as
  /// one transaction, so an entire inverted-path propagation — head slots,
  /// link objects, replica records, indexes — commits atomically. Null
  /// detaches (operations run unlogged, as before).
  void set_wal(WalManager* wal) { wal_ = wal; }

  /// Attaches the buffer pool so propagation fan-out can batch-prefetch
  /// the pages of head/frontier OID sets before reading them. Null (the
  /// default) disables propagation read-ahead.
  void set_pool(BufferPool* pool) { pool_ = pool; }

  /// Attaches the workload profiler; per-path / per-field activity
  /// recording is a no-op when null (the default).
  void set_profiler(WorkloadProfiler* profiler) { profiler_ = profiler; }

  /// Always-on propagation activity counters (relaxed atomics, read-any-
  /// time; exact when the single writer is quiesced).
  struct Telemetry {
    uint64_t propagations = 0;     ///< Terminal-value fan-outs executed.
    uint64_t heads_updated = 0;    ///< Head replica slots rewritten.
    uint64_t link_traversals = 0;  ///< Link-object member expansions.
    uint64_t separate_replica_writes = 0;  ///< Shared S' record updates.
    uint64_t deferred_queued = 0;  ///< Propagations queued by deferred paths.
    uint64_t deferred_flushed = 0; ///< Queued propagations drained.
  };
  Telemetry telemetry() const;

  /// Appends this manager's metric samples (the Telemetry counters plus a
  /// pending-propagation-queue gauge) to `out`.
  void CollectMetrics(std::vector<MetricSample>* out) const;

  // --- Path lifecycle --------------------------------------------------------

  /// `replicate <spec>`: binds the path, assigns its link sequence (sharing
  /// links with existing paths that have a common prefix, Section 4.1.4),
  /// creates link sets / the S' replica set, and bulk-builds the hidden
  /// state for every existing head object.
  Status CreatePath(const std::string& spec, const ReplicateOptions& options,
                    uint16_t* path_id);

  /// Removes a path: strips hidden slots from heads, unwinds unshared
  /// links, deletes private link sets and the replica set.
  Status DropPath(uint16_t path_id);

  // --- Data mutations --------------------------------------------------------

  /// Inserts `object` into `set_name`, enforcing referential integrity of
  /// its ref attributes and performing the `insert E` maintenance of
  /// Section 4.1.1 for every path headed at the set.
  Status InsertObject(const std::string& set_name, const Object& object,
                      Oid* oid);

  /// Deletes the object, performing the `delete E` maintenance of
  /// Section 4.1.1. Deleting an object that is still referenced on some
  /// replication path (it owns link objects) or whose replica record is
  /// still shared fails with FailedPrecondition — the paper's assumption
  /// that "D can be deleted only when it is not referenced".
  Status DeleteObject(const std::string& set_name, const Oid& oid);

  /// Updates one field, propagating to replicas: scalar terminal fields
  /// propagate values (in-place: to every head through the inverted path;
  /// separate: to the shared S' record); reference attributes trigger the
  /// `update E.dept` link surgery of Sections 4.1.1/4.1.2/5.2.
  Status UpdateField(const std::string& set_name, const Oid& oid,
                     int attr_index, const Value& value);

  /// Batched multi-field update (one base-object write).
  Status UpdateFields(const std::string& set_name, const Oid& oid,
                      const std::vector<std::pair<int, Value>>& updates);

  // --- Query support ---------------------------------------------------------

  /// Values of the path's replicated terminal fields for `head`, read from
  /// the replica: in-place paths cost no I/O; separate paths read one S'
  /// record. Values align with `path.bound.terminal_fields`; broken chains
  /// yield nulls.
  Status ReadReplicatedValues(const ReplicationPathInfo& path,
                              const Object& head,
                              std::vector<Value>* values) const;

  /// Finds the longest in-place... see Executor; exposed for planning:
  /// the replication path (any strategy) exactly matching `spec`, or null.
  const ReplicationPathInfo* FindPath(const std::string& spec) const {
    return catalog_->FindPathBySpec(spec);
  }

  // --- Deferred propagation (Section 8 future work) ---------------------------

  /// Drains the pending-propagation queue for one path: every queued
  /// terminal's current values are fanned out to its heads. Repeated
  /// updates to the same terminal between flushes cost one propagation.
  Status FlushPendingPropagation(uint16_t path_id);

  /// Drains every path's queue.
  Status FlushAllPendingPropagation();

  /// Queued (path, terminal) propagations awaiting a flush (atomic mirror
  /// of the queue size; exact whenever no flush is mid-drain).
  size_t pending_propagation_count() const {
    return pending_count_.load(std::memory_order_relaxed);
  }

  // --- Inverse functions (Section 8 future work) --------------------------------

  /// The objects of `referencing_set` whose `ref_attr` references `target`
  /// — the paper's "inverted paths ... used ... in implementing inverse
  /// functions (or bidirectional reference attributes)". Answered from the
  /// level-1 link object when a replication path maintains one (no scan);
  /// falls back to a set scan otherwise. `*via_link` reports which.
  Status FindReferencers(const std::string& referencing_set,
                         const std::string& ref_attr, const Oid& target,
                         std::vector<Oid>* referencers,
                         bool* via_link = nullptr);

  InvertedPathOps& ops() { return ops_; }

  // --- Introspection / verification -----------------------------------------

  /// Recomputes every head's replicated values by forward traversal and
  /// compares with the stored replicas; verifies link-object membership
  /// both ways. Inconsistencies are appended to `report` as kReplication
  /// findings and checking continues; the returned status is non-OK only
  /// when the traversal itself cannot run. Read-only: deferred paths with
  /// queued propagations skip the value comparison (the lag is
  /// legitimate) instead of flushing. Used by IntegrityChecker.
  Status VerifyPathToReport(uint16_t path_id, CheckReport* report);

  /// First-failure wrapper over VerifyPathToReport for tests: flushes a
  /// deferred path's queue first, then fails with Internal on the first
  /// error finding.
  Status VerifyPathConsistency(uint16_t path_id);

 private:
  struct MutationContext;

  // Path bookkeeping helpers (replication_manager.cc).
  /// Builds the hidden state for every existing head at path creation,
  /// materializing link objects and replica records in *target-set
  /// physical order* — "the link objects for Dept are stored in the same
  /// physical order as the objects in Dept which reference them"
  /// (Section 4.1), and likewise for S' (Section 5).
  Status BulkBuildPath(const ReplicationPathInfo& path,
                       const std::vector<Oid>& heads);
  Status BuildChain(const ReplicationPathInfo& path, const Oid& head_oid,
                    MutationContext* ctx, std::vector<Oid>* chain);
  Status AddHeadToPath(const ReplicationPathInfo& path, const Oid& head_oid,
                       Object* head_obj, MutationContext* ctx);
  Status RemoveHeadFromPath(const ReplicationPathInfo& path,
                            const Oid& head_oid, Object* head_obj,
                            MutationContext* ctx);
  Status HandleRefUpdate(const std::string& set_name, const Oid& oid,
                         Object* object, int attr_index, const Value& value,
                         MutationContext* ctx);
  Status ReadTerminalValues(const ReplicationPathInfo& path,
                            const Oid& terminal_oid, MutationContext* ctx,
                            std::vector<Value>* values);
  Status EnsureReplica(const ReplicationPathInfo& path,
                       const Oid& terminal_oid, Object* terminal_obj,
                       uint32_t new_refs, Oid* replica_oid);
  Status ReleaseReplica(const ReplicationPathInfo& path,
                        const Oid& terminal_oid, Object* terminal_obj,
                        uint32_t released_refs);

  // Propagation (propagation.cc).
  /// Heads (sorted, deduped) that reach the object at `level` via the
  /// path's links `level`..1.
  Status CollectHeadsFromLevel(const ReplicationPathInfo& path,
                               uint16_t level, const Oid& oid,
                               MutationContext* ctx, std::vector<Oid>* heads);
  /// Scalar/terminal-value propagation after `attr_index` of a terminal
  /// object changed (Section 4.1.3 decides *when* from the link IDs /
  /// replica slots stored in the object itself). `propagated`, when
  /// non-null, reports whether any replica work happened (fan-out, queue,
  /// or S' write) — the workload profiler's per-field signal.
  Status PropagateTerminalValue(const std::string& set_name, const Oid& oid,
                                Object* object, int attr_index,
                                MutationContext* ctx,
                                bool* propagated = nullptr);
  /// Rewrites the replica slot of each head with `values` (in-place paths).
  Status UpdateHeadSlots(const ReplicationPathInfo& path,
                         const std::vector<Oid>& heads,
                         const std::vector<Value>& values, int value_pos,
                         MutationContext* ctx);
  /// Repoints each head's ReplicaRefSlot to `replica_oid` (separate paths).
  Status RepointHeadRefs(const ReplicationPathInfo& path,
                         const std::vector<Oid>& heads, const Oid& replica_oid,
                         MutationContext* ctx);

  Status CheckReferentialIntegrity(const TypeDescriptor& type,
                                   const Object& object) const;

  /// Keeps pending_count_ in lockstep with pending_. Both take
  /// pending_mu_ internally; concurrent writers of disjoint deferred
  /// paths may queue at once.
  void PendingInsert(uint16_t path_id, uint64_t packed);
  void PendingErase(uint16_t path_id, uint64_t packed);

  Catalog* catalog_;
  SetProvider* sets_;
  IndexManager* indexes_;
  WalManager* wal_ = nullptr;
  BufferPool* pool_ = nullptr;
  WorkloadProfiler* profiler_ = nullptr;
  InvertedPathOps ops_;
  /// Guards the deferred-propagation queue. Near-leaf rank: held only
  /// for queue snapshots and insert/erase, never across propagation or
  /// pool calls.
  mutable Mutex pending_mu_{LockRank::kReplicationPending, "repl.pending_mu"};
  /// Pending deferred propagations: (path id, packed terminal OID)
  /// pairs. Ordered so flushes visit terminals in physical order.
  /// pending_count_ mirrors its size for lock-free gauges.
  std::set<std::pair<uint16_t, uint64_t>> pending_ GUARDED_BY(pending_mu_);
  std::atomic<uint64_t> pending_count_{0};

  /// See Telemetry.
  std::atomic<uint64_t> propagations_{0};
  std::atomic<uint64_t> heads_updated_{0};
  std::atomic<uint64_t> link_traversals_{0};
  std::atomic<uint64_t> separate_replica_writes_{0};
  std::atomic<uint64_t> deferred_queued_{0};
  std::atomic<uint64_t> deferred_flushed_{0};
};

}  // namespace fieldrep

#endif  // FIELDREP_REPLICATION_REPLICATION_MANAGER_H_
