#ifndef FIELDREP_REPLICATION_MUTATION_CONTEXT_H_
#define FIELDREP_REPLICATION_MUTATION_CONTEXT_H_

#include <deque>
#include <unordered_map>

#include "common/status.h"
#include "objects/object.h"
#include "replication/inverted_path.h"
#include "replication/replication_manager.h"
#include "storage/oid.h"

namespace fieldrep {

/// \brief Per-mutation object cache guaranteeing a single in-memory image
/// per OID.
///
/// Replication maintenance touches the same object from several directions
/// (in-flight update target, link owner, chain intermediate, propagation
/// head). Loading it twice would lose writes, so every object access during
/// one mutation goes through this cache; mutated images are written through
/// immediately by the code that mutates them. The deque keeps addresses
/// stable as the cache grows.
struct ReplicationManager::MutationContext {
  explicit MutationContext(InvertedPathOps* ops_in) : ops(ops_in) {}

  /// Returns the cached image for `oid`, loading it on first access.
  Status Get(const Oid& oid, Object** out) {
    auto it = index.find(oid.Packed());
    if (it != index.end()) {
      *out = it->second;
      return Status::OK();
    }
    Object loaded;
    FIELDREP_RETURN_IF_ERROR(ops->ReadObject(oid, &loaded));
    owned.push_back(std::move(loaded));
    Object* ptr = &owned.back();
    index.emplace(oid.Packed(), ptr);
    *out = ptr;
    return Status::OK();
  }

  /// Registers an externally owned image (the in-flight object of the
  /// current mutation) so every helper sees the same instance.
  void Seed(const Oid& oid, Object* object) {
    index[oid.Packed()] = object;
  }

  InvertedPathOps* ops;
  std::unordered_map<uint64_t, Object*> index;
  std::deque<Object> owned;
};

}  // namespace fieldrep

#endif  // FIELDREP_REPLICATION_MUTATION_CONTEXT_H_
