#include <algorithm>
#include <map>
#include <set>

#include "common/strings.h"
#include "replication/mutation_context.h"
#include "replication/replication_manager.h"
#include "storage/buffer_pool.h"
#include "telemetry/metrics.h"
#include "telemetry/workload_profiler.h"
#include "wal/wal_manager.h"

namespace fieldrep {

namespace {
int PositionOf(const std::vector<int>& fields, int attr_index) {
  for (size_t i = 0; i < fields.size(); ++i) {
    if (fields[i] == attr_index) return static_cast<int>(i);
  }
  return -1;
}

constexpr auto kRelaxed = std::memory_order_relaxed;
}  // namespace

// ---------------------------------------------------------------------------
// Telemetry
// ---------------------------------------------------------------------------

void ReplicationManager::PendingInsert(uint16_t path_id, uint64_t packed) {
  MutexLock lock(pending_mu_);
  if (pending_.insert({path_id, packed}).second) {
    pending_count_.fetch_add(1, kRelaxed);
    deferred_queued_.fetch_add(1, kRelaxed);
  }
}

void ReplicationManager::PendingErase(uint16_t path_id, uint64_t packed) {
  MutexLock lock(pending_mu_);
  if (pending_.erase({path_id, packed}) != 0) {
    pending_count_.fetch_sub(1, kRelaxed);
  }
}

ReplicationManager::Telemetry ReplicationManager::telemetry() const {
  Telemetry t;
  t.propagations = propagations_.load(kRelaxed);
  t.heads_updated = heads_updated_.load(kRelaxed);
  t.link_traversals = link_traversals_.load(kRelaxed);
  t.separate_replica_writes = separate_replica_writes_.load(kRelaxed);
  t.deferred_queued = deferred_queued_.load(kRelaxed);
  t.deferred_flushed = deferred_flushed_.load(kRelaxed);
  return t;
}

void ReplicationManager::CollectMetrics(std::vector<MetricSample>* out) const {
  auto add = [out](const char* name, const char* help, MetricKind kind,
                   double value) {
    MetricSample s;
    s.name = name;
    s.help = help;
    s.kind = kind;
    s.value = value;
    out->push_back(std::move(s));
  };
  const Telemetry t = telemetry();
  add("fieldrep_replication_propagations_total",
      "Terminal-value propagations executed.", MetricKind::kCounter,
      static_cast<double>(t.propagations));
  add("fieldrep_replication_heads_updated_total",
      "Head replica slots rewritten.", MetricKind::kCounter,
      static_cast<double>(t.heads_updated));
  add("fieldrep_replication_link_traversals_total",
      "Link-object member expansions (link-file fetches).",
      MetricKind::kCounter, static_cast<double>(t.link_traversals));
  add("fieldrep_replication_separate_replica_writes_total",
      "Shared S' replica record updates.", MetricKind::kCounter,
      static_cast<double>(t.separate_replica_writes));
  add("fieldrep_replication_deferred_queued_total",
      "Propagations queued by deferred paths.", MetricKind::kCounter,
      static_cast<double>(t.deferred_queued));
  add("fieldrep_replication_deferred_flushed_total",
      "Queued propagations drained by flushes.", MetricKind::kCounter,
      static_cast<double>(t.deferred_flushed));
  add("fieldrep_replication_pending_propagations",
      "Deferred propagations awaiting a flush.", MetricKind::kGauge,
      static_cast<double>(pending_count_.load(kRelaxed)));
}

// ---------------------------------------------------------------------------
// Head collection
// ---------------------------------------------------------------------------

Status ReplicationManager::CollectHeadsFromLevel(
    const ReplicationPathInfo& path, uint16_t level, const Oid& oid,
    MutationContext* ctx, std::vector<Oid>* heads) {
  heads->clear();
  if (path.collapsed) {
    // The single collapsed link maps the terminal straight to the heads.
    Object* image;
    FIELDREP_RETURN_IF_ERROR(ctx->Get(oid, &image));
    link_traversals_.fetch_add(1, kRelaxed);
    return ops_.GetMembers(path.link_sequence[0], *image, heads);
  }
  // Walk the inverted path downward: the frontier starts at `level` and the
  // members of each frontier object's link object sit one level closer to
  // the head set. Frontiers stay sorted so objects are visited in
  // clustered order, as the paper's sorted link objects intend.
  std::vector<Oid> frontier = {oid};
  for (uint16_t i = level; i >= 1; --i) {
    if (pool_ != nullptr && frontier.size() > 1) {
      // Best-effort read-ahead over the sorted frontier; a failed batch
      // just falls back to on-demand fetches below.
      (void)pool_->PrefetchOidPages(frontier);
    }
    std::vector<Oid> next;
    for (const Oid& owner : frontier) {
      Object* image;
      FIELDREP_RETURN_IF_ERROR(ctx->Get(owner, &image));
      std::vector<Oid> members;
      link_traversals_.fetch_add(1, kRelaxed);
      FIELDREP_RETURN_IF_ERROR(
          ops_.GetMembers(path.link_sequence[i - 1], *image, &members));
      next.insert(next.end(), members.begin(), members.end());
    }
    std::sort(next.begin(), next.end());
    next.erase(std::unique(next.begin(), next.end()), next.end());
    frontier = std::move(next);
    if (frontier.empty()) break;
  }
  *heads = std::move(frontier);
  return Status::OK();
}

// ---------------------------------------------------------------------------
// Value propagation
// ---------------------------------------------------------------------------

Status ReplicationManager::UpdateHeadSlots(const ReplicationPathInfo& path,
                                           const std::vector<Oid>& heads,
                                           const std::vector<Value>& values,
                                           int value_pos,
                                           MutationContext* ctx) {
  if (pool_ != nullptr && heads.size() > 1) {
    // Heads arrive sorted (clustered order), so the fan-out touches their
    // pages as one ascending sweep — prefetch the batch up front.
    (void)pool_->PrefetchOidPages(heads);
  }
  for (const Oid& head : heads) {
    Object* image;
    FIELDREP_RETURN_IF_ERROR(ctx->Get(head, &image));
    std::vector<Value> old_values;
    if (const ReplicaValueSlot* slot = image->FindReplicaValues(path.id)) {
      old_values = slot->values;
    }
    std::vector<Value> new_values;
    if (value_pos < 0) {
      new_values = values;
    } else {
      new_values = old_values;
      new_values.resize(path.bound.terminal_fields.size(), Value::Null());
      new_values[value_pos] = values[0];
    }
    image->SetReplicaValues(path.id, new_values);
    FIELDREP_RETURN_IF_ERROR(ops_.WriteObject(head, *image));
    heads_updated_.fetch_add(1, kRelaxed);
    if (indexes_ != nullptr) {
      FIELDREP_RETURN_IF_ERROR(indexes_->OnReplicaValuesChanged(
          path.bound.set_name, head, path.id, old_values, new_values));
    }
  }
  return Status::OK();
}

Status ReplicationManager::RepointHeadRefs(const ReplicationPathInfo& path,
                                           const std::vector<Oid>& heads,
                                           const Oid& replica_oid,
                                           MutationContext* ctx) {
  for (const Oid& head : heads) {
    Object* image;
    FIELDREP_RETURN_IF_ERROR(ctx->Get(head, &image));
    if (replica_oid.valid()) {
      ReplicaRefSlot slot;
      slot.path_id = path.id;
      slot.replica_oid = replica_oid;
      image->SetReplicaRef(slot);
    } else {
      image->RemoveReplicaRef(path.id);
    }
    FIELDREP_RETURN_IF_ERROR(ops_.WriteObject(head, *image));
  }
  return Status::OK();
}

Status ReplicationManager::PropagateTerminalValue(const std::string& set_name,
                                                  const Oid& oid,
                                                  Object* object,
                                                  int attr_index,
                                                  MutationContext* ctx,
                                                  bool* propagated) {
  if (propagated != nullptr) *propagated = false;
  // In-place paths: the link IDs stored in the object say exactly which
  // paths it terminates (Section 4.1.3 — "the link ID(s) stored in O ...
  // can be used to determine which updates to O need to be propagated").
  // Iterate over a snapshot because head-slot writes may touch this image.
  std::vector<uint8_t> link_ids;
  for (const LinkRef& ref : object->link_refs()) link_ids.push_back(ref.link_id);
  std::set<uint16_t> done;
  for (uint8_t link_id : link_ids) {
    const LinkInfo* link = catalog_->link_registry().GetLink(link_id);
    if (link == nullptr) continue;
    for (uint16_t path_id : link->path_ids) {
      const ReplicationPathInfo* path = catalog_->GetPath(path_id);
      if (path == nullptr) continue;
      if (path->strategy != ReplicationStrategy::kInPlace) continue;
      if (path->link_sequence.empty() ||
          path->link_sequence.back() != link_id) {
        continue;  // this object is interior, not terminal, for this path
      }
      int pos = PositionOf(path->bound.terminal_fields, attr_index);
      if (pos < 0) continue;
      if (!done.insert(path_id).second) continue;
      if (path->deferred) {
        // Section 8 future work: queue the (path, terminal) pair; the
        // fan-out happens at the next read through this path.
        PendingInsert(path_id, oid.Packed());
        if (propagated != nullptr) *propagated = true;
        continue;
      }
      std::vector<Oid> heads;
      FIELDREP_RETURN_IF_ERROR(CollectHeadsFromLevel(
          *path, static_cast<uint16_t>(path->bound.level()), oid, ctx,
          &heads));
      FIELDREP_RETURN_IF_ERROR(UpdateHeadSlots(
          *path, heads, {object->field(attr_index)}, pos, ctx));
      propagations_.fetch_add(1, kRelaxed);
      if (profiler_ != nullptr) {
        profiler_->RecordPropagation(path->spec, heads.size());
      }
      if (propagated != nullptr) *propagated = true;
    }
  }

  // Separate paths: the terminal-side replica slot points at the shared S'
  // record; "updates to O1.name are propagated by simply retrieving the
  // object R1 and updating it" (Section 5.2).
  for (const ReplicaRefSlot& slot : object->replica_refs()) {
    const ReplicationPathInfo* path = catalog_->GetPath(slot.path_id);
    if (path == nullptr) continue;
    if (path->strategy != ReplicationStrategy::kSeparate) continue;
    if (path->bound.set_name == set_name) continue;  // head-side slot
    int pos = PositionOf(path->bound.terminal_fields, attr_index);
    if (pos < 0) continue;
    FIELDREP_ASSIGN_OR_RETURN(RecordFile * file,
                              sets_->GetAuxFile(path->replica_set_file));
    std::string payload;
    FIELDREP_RETURN_IF_ERROR(file->Read(slot.replica_oid, &payload));
    ReplicaRecord record;
    FIELDREP_RETURN_IF_ERROR(record.Deserialize(payload));
    if (pos < static_cast<int>(record.values.size())) {
      record.values[pos] = object->field(attr_index);
    }
    FIELDREP_RETURN_IF_ERROR(file->Update(slot.replica_oid,
                                          record.Serialize()));
    propagations_.fetch_add(1, kRelaxed);
    separate_replica_writes_.fetch_add(1, kRelaxed);
    if (profiler_ != nullptr) {
      // A separate-strategy propagation rewrites the shared S' record;
      // no head slots are touched.
      profiler_->RecordPropagation(path->spec, 0);
    }
    if (propagated != nullptr) *propagated = true;
  }
  return Status::OK();
}

// ---------------------------------------------------------------------------
// Deferred propagation (Section 8 future work)
// ---------------------------------------------------------------------------

Status ReplicationManager::FlushPendingPropagation(uint16_t path_id) {
  WalTransaction txn(wal_);
  FIELDREP_RETURN_IF_ERROR(txn.begin_status());
  const ReplicationPathInfo* path = catalog_->GetPath(path_id);
  if (path == nullptr) {
    return Status::NotFound(StringPrintf("no replication path %u", path_id));
  }
  // Snapshot this path's queue up front, never holding pending_mu_
  // across the propagation work below. The set ordering visits terminals
  // in physical order.
  std::vector<uint64_t> terminals;
  {
    MutexLock lock(pending_mu_);
    for (auto it = pending_.lower_bound({path_id, 0});
         it != pending_.end() && it->first == path_id; ++it) {
      terminals.push_back(it->second);
    }
  }
  if (pool_ != nullptr && terminals.size() > 1) {
    // The queue orders terminals physically; warm their pages in one batch.
    std::vector<Oid> terminal_oids;
    terminal_oids.reserve(terminals.size());
    for (uint64_t packed : terminals) {
      terminal_oids.push_back(Oid::FromPacked(packed));
    }
    (void)pool_->PrefetchOidPages(terminal_oids);
  }
  for (uint64_t packed : terminals) {
    Oid terminal = Oid::FromPacked(packed);
    MutationContext ctx(&ops_);
    Object* terminal_obj;
    Status read = ctx.Get(terminal, &terminal_obj);
    if (read.IsNotFound()) {
      // Terminal deleted after its update was queued; nothing references
      // it any more (deletion requires no link objects), so nothing to do.
      PendingErase(path_id, packed);
      continue;
    }
    FIELDREP_RETURN_IF_ERROR(read);
    std::vector<Oid> heads;
    FIELDREP_RETURN_IF_ERROR(CollectHeadsFromLevel(
        *path, static_cast<uint16_t>(path->bound.level()), terminal, &ctx,
        &heads));
    std::vector<Value> values;
    FIELDREP_RETURN_IF_ERROR(
        ReadTerminalValues(*path, terminal, &ctx, &values));
    FIELDREP_RETURN_IF_ERROR(UpdateHeadSlots(*path, heads, values, -1, &ctx));
    PendingErase(path_id, packed);
    propagations_.fetch_add(1, kRelaxed);
    deferred_flushed_.fetch_add(1, kRelaxed);
    if (profiler_ != nullptr) {
      profiler_->RecordPropagation(path->spec, heads.size());
    }
  }
  return txn.Commit();
}

Status ReplicationManager::FlushAllPendingPropagation() {
  std::set<uint16_t> paths;
  {
    MutexLock lock(pending_mu_);
    for (const auto& [path_id, packed] : pending_) paths.insert(path_id);
  }
  for (uint16_t path_id : paths) {
    FIELDREP_RETURN_IF_ERROR(FlushPendingPropagation(path_id));
  }
  return Status::OK();
}

// ---------------------------------------------------------------------------
// Inverse functions (Section 8 future work)
// ---------------------------------------------------------------------------

Status ReplicationManager::FindReferencers(const std::string& referencing_set,
                                           const std::string& ref_attr,
                                           const Oid& target,
                                           std::vector<Oid>* referencers,
                                           bool* via_link) {
  referencers->clear();
  if (via_link != nullptr) *via_link = false;
  FIELDREP_ASSIGN_OR_RETURN(ObjectSet * set, sets_->GetSet(referencing_set));
  int attr_index = set->type().FindAttribute(ref_attr);
  if (attr_index < 0 || !set->type().attribute(attr_index).is_ref()) {
    return Status::InvalidArgument("set " + referencing_set +
                                   " has no reference attribute " + ref_attr);
  }
  // A level-1 link of some replication path headed at this set over this
  // attribute holds exactly the inverse mapping.
  const LinkRegistry& registry = catalog_->link_registry();
  for (uint8_t link_id : registry.AllLinkIds()) {
    const LinkInfo* link = registry.GetLink(link_id);
    if (link == nullptr || link->collapsed) continue;
    if (link->level != 1 || link->head_set != referencing_set ||
        link->attr_name != ref_attr) {
      continue;
    }
    Object target_obj;
    FIELDREP_RETURN_IF_ERROR(ops_.ReadObject(target, &target_obj));
    FIELDREP_RETURN_IF_ERROR(ops_.GetMembers(link_id, target_obj,
                                             referencers));
    if (via_link != nullptr) *via_link = true;
    return Status::OK();
  }
  // No inverted path covers the attribute: scan.
  return set->Scan([&](const Oid& oid, const Object& object) {
    const Value& v = object.field(attr_index);
    if (v.is_ref() && v.as_ref() == target) referencers->push_back(oid);
    return true;
  });
}

// ---------------------------------------------------------------------------
// Query support
// ---------------------------------------------------------------------------

Status ReplicationManager::ReadReplicatedValues(
    const ReplicationPathInfo& path, const Object& head,
    std::vector<Value>* values) const {
  values->assign(path.bound.terminal_fields.size(), Value::Null());
  if (path.strategy == ReplicationStrategy::kInPlace) {
    const ReplicaValueSlot* slot = head.FindReplicaValues(path.id);
    if (slot != nullptr) *values = slot->values;
    return Status::OK();
  }
  const ReplicaRefSlot* slot = head.FindReplicaRef(path.id);
  if (slot == nullptr) return Status::OK();  // broken chain: nulls
  FIELDREP_ASSIGN_OR_RETURN(RecordFile * file,
                            sets_->GetAuxFile(path.replica_set_file));
  std::string payload;
  FIELDREP_RETURN_IF_ERROR(file->Read(slot->replica_oid, &payload));
  ReplicaRecord record;
  FIELDREP_RETURN_IF_ERROR(record.Deserialize(payload));
  *values = record.values;
  return Status::OK();
}

// ---------------------------------------------------------------------------
// Verification
// ---------------------------------------------------------------------------

Status ReplicationManager::VerifyPathToReport(uint16_t path_id,
                                              CheckReport* report) {
  const ReplicationPathInfo* path_ptr = catalog_->GetPath(path_id);
  if (path_ptr == nullptr) {
    return Status::NotFound(StringPrintf("no replication path %u", path_id));
  }
  const ReplicationPathInfo& path = *path_ptr;
  const std::string context = "path " + path.spec;

  // Read-only mode never drains the deferred queue; queued propagations
  // make value lag legitimate, so value comparisons are skipped (link
  // maintenance stays eager even in deferred mode and is still checked).
  bool values_lagging = false;
  if (path.deferred) {
    {
      MutexLock lock(pending_mu_);
      auto it = pending_.lower_bound({path_id, 0});
      values_lagging = it != pending_.end() && it->first == path_id;
    }
    if (values_lagging) {
      report->AddInfo(CheckLayer::kReplication, context,
                      "deferred propagations pending; replica values not "
                      "compared");
    }
  }

  FIELDREP_ASSIGN_OR_RETURN(ObjectSet * head_set,
                            sets_->GetSet(path.bound.set_name));
  std::vector<Oid> heads;
  FIELDREP_RETURN_IF_ERROR(head_set->file().ListOids(&heads));

  const size_t n = path.bound.level();
  std::map<uint64_t, uint32_t> expected_refcounts;  // terminal -> heads
  // Exact expected membership per (link index, owner): catches stale
  // members left behind, not just missing ones.
  std::vector<std::map<uint64_t, std::set<uint64_t>>> expected_members(
      path.link_sequence.size());
  for (const Oid& head : heads) {
    MutationContext ctx(&ops_);
    std::vector<Oid> chain;
    FIELDREP_RETURN_IF_ERROR(BuildChain(path, head, &ctx, &chain));
    for (size_t li = 0; li < path.link_sequence.size(); ++li) {
      const size_t owner_level = path.collapsed ? 2 : li + 1;
      const size_t member_level = path.collapsed ? 0 : li;
      if (chain[owner_level].valid() && chain[member_level].valid()) {
        expected_members[li][chain[owner_level].Packed()].insert(
            chain[member_level].Packed());
      }
    }

    // Expected replica values by forward traversal.
    Object* head_img;
    FIELDREP_RETURN_IF_ERROR(ctx.Get(head, &head_img));
    if (!values_lagging) {
      std::vector<Value> expected;
      FIELDREP_RETURN_IF_ERROR(ReadTerminalValues(path, chain[n], &ctx,
                                                  &expected));
      std::vector<Value> actual;
      FIELDREP_RETURN_IF_ERROR(ReadReplicatedValues(path, *head_img,
                                                    &actual));
      if (actual != expected) {
        report->AddError(CheckLayer::kReplication, context,
                         "stale replica: stored values disagree with "
                         "forward traversal",
                         kInvalidPageId, head);
      }
    }

    // Link membership along the chain.
    if (path.strategy == ReplicationStrategy::kInPlace && path.collapsed) {
      if (chain[2].valid()) {
        Object* owner;
        FIELDREP_RETURN_IF_ERROR(ctx.Get(chain[2], &owner));
        std::vector<LinkEntry> entries;
        FIELDREP_RETURN_IF_ERROR(
            ops_.GetEntries(path.link_sequence[0], *owner, &entries));
        bool found = false;
        for (const LinkEntry& entry : entries) {
          if (entry.member == head && entry.tag == chain[1]) found = true;
        }
        if (!found) {
          report->AddError(CheckLayer::kReplication, context,
                           "collapsed link object missing this head's "
                           "tagged entry",
                           kInvalidPageId, head);
        }
      }
    } else {
      size_t links = path.link_sequence.size();
      for (size_t i = 1; i <= links; ++i) {
        if (!chain[i].valid()) break;
        Object* owner;
        FIELDREP_RETURN_IF_ERROR(ctx.Get(chain[i], &owner));
        std::vector<Oid> members;
        FIELDREP_RETURN_IF_ERROR(
            ops_.GetMembers(path.link_sequence[i - 1], *owner, &members));
        if (!std::binary_search(members.begin(), members.end(),
                                chain[i - 1])) {
          report->AddError(
              CheckLayer::kReplication, context,
              StringPrintf("link %u missing member %s in owner %s",
                           path.link_sequence[i - 1],
                           chain[i - 1].ToString().c_str(),
                           chain[i].ToString().c_str()),
              kInvalidPageId, head);
        }
      }
    }

    if (path.strategy == ReplicationStrategy::kSeparate && chain[n].valid()) {
      ++expected_refcounts[chain[n].Packed()];
      // Head and terminal must point at the same replica record.
      Object* terminal;
      FIELDREP_RETURN_IF_ERROR(ctx.Get(chain[n], &terminal));
      const ReplicaRefSlot* head_slot = head_img->FindReplicaRef(path.id);
      const ReplicaRefSlot* term_slot = terminal->FindReplicaRef(path.id);
      if (head_slot == nullptr || term_slot == nullptr ||
          head_slot->replica_oid != term_slot->replica_oid) {
        report->AddError(CheckLayer::kReplication, context,
                         "head and terminal disagree on the shared S' "
                         "record",
                         kInvalidPageId, head);
      }
    }
  }

  // Exact link membership: every owner's link object holds precisely the
  // members the forward chains imply — no extras, no omissions.
  for (size_t li = 0; li < path.link_sequence.size(); ++li) {
    for (const auto& [owner_packed, members] : expected_members[li]) {
      Oid owner = Oid::FromPacked(owner_packed);
      Object owner_obj;
      FIELDREP_RETURN_IF_ERROR(ops_.ReadObject(owner, &owner_obj));
      std::vector<Oid> actual;
      FIELDREP_RETURN_IF_ERROR(
          ops_.GetMembers(path.link_sequence[li], owner_obj, &actual));
      std::set<uint64_t> actual_set;
      for (const Oid& member : actual) actual_set.insert(member.Packed());
      if (actual_set != members) {
        report->AddError(
            CheckLayer::kReplication, context,
            StringPrintf("link %u membership mismatch: stored %zu members, "
                         "forward chains imply %zu",
                         path.link_sequence[li], actual_set.size(),
                         members.size()),
            kInvalidPageId, owner);
      }
    }
  }

  if (path.strategy == ReplicationStrategy::kSeparate) {
    for (const auto& [terminal_packed, count] : expected_refcounts) {
      Oid terminal = Oid::FromPacked(terminal_packed);
      Object terminal_obj;
      FIELDREP_RETURN_IF_ERROR(ops_.ReadObject(terminal, &terminal_obj));
      const ReplicaRefSlot* slot = terminal_obj.FindReplicaRef(path.id);
      if (slot == nullptr || slot->refcount != count) {
        report->AddError(
            CheckLayer::kReplication, context,
            StringPrintf("refcount mismatch: stored %u, %u heads reach the "
                         "terminal",
                         slot == nullptr ? 0 : slot->refcount, count),
            kInvalidPageId, terminal);
      }
    }
  }
  return Status::OK();
}

Status ReplicationManager::VerifyPathConsistency(uint16_t path_id) {
  const ReplicationPathInfo* path = catalog_->GetPath(path_id);
  if (path == nullptr) {
    return Status::NotFound(StringPrintf("no replication path %u", path_id));
  }
  if (path->deferred) {
    // Deferred mode's invariant is "consistent after a flush".
    FIELDREP_RETURN_IF_ERROR(FlushPendingPropagation(path_id));
  }
  CheckReport report;
  FIELDREP_RETURN_IF_ERROR(VerifyPathToReport(path_id, &report));
  for (const CheckFinding& finding : report.findings) {
    if (finding.severity == CheckSeverity::kError) {
      return Status::Internal(finding.ToString());
    }
  }
  return Status::OK();
}

}  // namespace fieldrep
