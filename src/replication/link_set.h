#ifndef FIELDREP_REPLICATION_LINK_SET_H_
#define FIELDREP_REPLICATION_LINK_SET_H_

#include <vector>

#include "common/status.h"
#include "replication/link_object.h"
#include "storage/record_file.h"

namespace fieldrep {

/// \brief Typed access to a link set: the separate file that stores the
/// link objects of one link (Section 4.1: "the link objects are stored in
/// a separate set so that the clustering of objects in Dept is not
/// disrupted").
///
/// "Each link object can contain a large number of OIDs, and can be quite
/// large as a result" — link objects that outgrow a page are stored as a
/// chain of segment records; the head segment's OID is what owners hold in
/// their (link-OID, link-ID) pairs and stays stable across rewrites.
///
/// Link objects are appended as their owners are first referenced, which —
/// together with the ordered bulk build at path creation — keeps the link
/// set "in the same physical order as the objects ... which reference
/// them".
class LinkSet {
 public:
  /// \param file underlying record file (not owned)
  explicit LinkSet(RecordFile* file) : file_(file) {}

  RecordFile* file() { return file_; }
  const RecordFile* file() const { return file_; }

  /// Persists a new link object (splitting into segments as needed) and
  /// returns its head OID.
  Status Create(const LinkObjectData& data, Oid* oid);

  /// Reads a whole link object, reassembling its segment chain.
  Status Read(const Oid& oid, LinkObjectData* data) const;

  /// Rewrites a link object. The head OID stays valid; tail segments are
  /// re-created as needed.
  Status Write(const Oid& oid, const LinkObjectData& data);

  /// Deletes a link object and all its segments.
  Status Delete(const Oid& oid);

  /// Entries per segment record (page capacity divided by entry size).
  static uint32_t MaxEntriesPerSegment(bool tagged);

 private:
  Status CollectChain(const Oid& head, std::vector<Oid>* tail) const;
  /// Creates the tail segments for entries beyond the first chunk,
  /// returning the OID the head segment should chain to.
  Status CreateTail(const LinkObjectData& data, size_t chunk,
                    Oid* first_tail);

  RecordFile* file_;
};

}  // namespace fieldrep

#endif  // FIELDREP_REPLICATION_LINK_SET_H_
