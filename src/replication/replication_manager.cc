#include "replication/replication_manager.h"

#include <algorithm>
#include <functional>
#include <map>
#include <set>

#include "common/strings.h"
#include "replication/mutation_context.h"
#include "telemetry/workload_profiler.h"
#include "wal/wal_manager.h"

namespace fieldrep {

namespace {
/// Joins the first `count` step attribute names onto the set name:
/// the canonical key of a link prefix (Section 4.1.4).
std::string LinkKey(const BoundPath& bound, size_t count) {
  std::string key = bound.set_name;
  for (size_t i = 0; i < count; ++i) key += "." + bound.steps[i].attr_name;
  return key;
}

Oid RefOrInvalid(const Value& v) {
  return v.is_ref() ? v.as_ref() : Oid::Invalid();
}
}  // namespace

ReplicationManager::ReplicationManager(Catalog* catalog, SetProvider* sets,
                                       IndexManager* indexes)
    : catalog_(catalog),
      sets_(sets),
      indexes_(indexes),
      ops_(catalog, sets) {}

// ---------------------------------------------------------------------------
// Path lifecycle
// ---------------------------------------------------------------------------

Status ReplicationManager::CreatePath(const std::string& spec,
                                      const ReplicateOptions& options,
                                      uint16_t* path_id) {
  WalTransaction txn(wal_);
  FIELDREP_RETURN_IF_ERROR(txn.begin_status());
  BoundPath bound;
  FIELDREP_RETURN_IF_ERROR(catalog_->BindPath(spec, &bound));
  if (bound.level() < 1) {
    return Status::InvalidArgument(
        "replication path " + spec +
        " must traverse at least one reference attribute");
  }
  if (options.collapsed) {
    if (options.strategy != ReplicationStrategy::kInPlace) {
      return Status::NotSupported(
          "collapsed inverted paths require in-place replication");
    }
    if (bound.level() != 2) {
      return Status::NotSupported(
          "collapsed inverted paths are supported for 2-level paths "
          "(the configuration of Section 4.3.3)");
    }
  }
  FIELDREP_ASSIGN_OR_RETURN(const SetInfo* head_set,
                            catalog_->GetSet(bound.set_name));
  if (options.strategy == ReplicationStrategy::kSeparate &&
      bound.terminal_type == head_set->type_name) {
    return Status::NotSupported(
        "separate replication of a self-referencing path is not supported "
        "(head-side and terminal-side replica bookkeeping would collide)");
  }
  if (options.deferred &&
      options.strategy != ReplicationStrategy::kInPlace) {
    return Status::NotSupported(
        "deferred propagation applies to in-place replication (separate "
        "replication already touches only the shared replica record)");
  }
  if (options.cluster_links) {
    if (options.strategy != ReplicationStrategy::kInPlace ||
        options.collapsed || bound.level() < 2) {
      return Status::NotSupported(
          "link clustering (Section 4.3.2) applies to in-place, "
          "non-collapsed paths of two or more levels");
    }
  }

  ReplicationPathInfo info;
  info.spec = spec;
  info.bound = bound;
  info.strategy = options.strategy;
  info.collapsed = options.collapsed;
  info.inline_threshold = options.inline_threshold;
  info.deferred = options.deferred;
  info.cluster_links = options.cluster_links;
  uint16_t id;
  FIELDREP_RETURN_IF_ERROR(catalog_->RegisterReplicationPath(info, &id));
  *path_id = id;

  LinkRegistry& registry = catalog_->link_registry();
  std::vector<uint8_t> sequence;
  Status setup;
  if (options.collapsed) {
    // One link mapping terminal objects straight back to heads, entries
    // tagged with the intermediate object (Figure 6).
    uint8_t link_id;
    setup = registry.InternLink(
        LinkKey(bound, 2), bound.set_name, /*level=*/2,
        /*source_type=*/head_set->type_name,
        /*target_type=*/bound.steps[1].target_type,
        bound.steps[1].attr_name, /*collapsed=*/true, id, &link_id);
    if (setup.ok()) {
      LinkInfo* link = registry.GetMutableLink(link_id);
      link->inline_threshold = 0;  // tagged entries cannot inline
      FileId file_id;
      Result<RecordFile*> file = sets_->CreateAuxFile(&file_id);
      if (!file.ok()) {
        setup = file.status();
      } else {
        link->link_set_file = file_id;
        sequence.push_back(link_id);
      }
    }
  } else {
    size_t link_count = bound.level();
    if (options.strategy == ReplicationStrategy::kSeparate) {
      // An n-level path needs an (n-1)-level inverted path (Section 5.2).
      link_count -= 1;
    }
    FileId cluster_file = kInvalidFileId;
    for (size_t i = 1; i <= link_count && setup.ok(); ++i) {
      const PathStep& step = bound.steps[i - 1];
      uint8_t link_id;
      setup = registry.InternLink(LinkKey(bound, i), bound.set_name,
                                  static_cast<uint16_t>(i), step.source_type,
                                  step.target_type, step.attr_name,
                                  /*collapsed=*/false, id, &link_id);
      if (!setup.ok()) break;
      LinkInfo* link = registry.GetMutableLink(link_id);
      if (options.cluster_links) {
        // Section 4.3.2: every level shares one link file, grouped by
        // terminal chain. Sharing a link with another path would create
        // the clustering conflict the paper describes, so refuse.
        if (link->link_set_file != kInvalidFileId) {
          setup = Status::NotSupported(
              "link clustering cannot share link " + link->key +
              " with an existing path (conflicting clustering goals, "
              "Section 4.3.2)");
          break;
        }
        link->inline_threshold = options.inline_threshold;
        if (cluster_file == kInvalidFileId) {
          Result<RecordFile*> file = sets_->CreateAuxFile(&cluster_file);
          if (!file.ok()) {
            setup = file.status();
            break;
          }
        }
        link->link_set_file = cluster_file;
      } else if (link->link_set_file == kInvalidFileId) {
        // Newly created link: it adopts this path's options.
        link->inline_threshold = options.inline_threshold;
        FileId file_id;
        Result<RecordFile*> file = sets_->CreateAuxFile(&file_id);
        if (!file.ok()) {
          setup = file.status();
          break;
        }
        link->link_set_file = file_id;
      }
      sequence.push_back(link_id);
    }
  }
  if (setup.ok() && options.strategy == ReplicationStrategy::kSeparate) {
    FileId file_id;
    Result<RecordFile*> file = sets_->CreateAuxFile(&file_id);
    if (!file.ok()) {
      setup = file.status();
    } else {
      catalog_->GetMutablePath(id)->replica_set_file = file_id;
    }
  }
  if (!setup.ok()) {
    catalog_->DropReplicationPath(id).ok();
    return setup;
  }
  catalog_->GetMutablePath(id)->link_sequence = sequence;

  // Bulk build over the existing head set.
  FIELDREP_ASSIGN_OR_RETURN(ObjectSet * set, sets_->GetSet(bound.set_name));
  std::vector<Oid> heads;
  FIELDREP_RETURN_IF_ERROR(set->file().ListOids(&heads));
  const ReplicationPathInfo* path = catalog_->GetPath(id);
  if (!heads.empty()) {
    FIELDREP_RETURN_IF_ERROR(BulkBuildPath(*path, heads));
  }
  return txn.Commit();
}

Status ReplicationManager::BulkBuildPath(const ReplicationPathInfo& path,
                                         const std::vector<Oid>& heads) {
  // One mutation context for the whole build: every touched object is
  // loaded once and written through. Memory is proportional to the number
  // of distinct objects on the path.
  MutationContext ctx(&ops_);
  const size_t n = path.bound.level();
  std::vector<std::vector<Oid>> chains(heads.size());
  for (size_t i = 0; i < heads.size(); ++i) {
    FIELDREP_RETURN_IF_ERROR(BuildChain(path, heads[i], &ctx, &chains[i]));
  }

  LinkRegistry& registry = catalog_->link_registry();

  // Gather the membership of every link this path must build, keyed by
  // packed owner OID so iteration visits owners in physical order.
  std::vector<std::map<uint64_t, LinkObjectData>> pending(
      path.link_sequence.size());
  std::vector<const LinkInfo*> links(path.link_sequence.size());
  for (size_t li = 0; li < path.link_sequence.size(); ++li) {
    uint8_t link_id = path.link_sequence[li];
    links[li] = registry.GetLink(link_id);
    if (links[li] == nullptr) {
      return Status::Internal("missing link during bulk build");
    }
    if (links[li]->path_ids.size() > 1) {
      // Shared with an older path from the same prefix: membership is
      // path-independent, so the structures already exist.
      continue;
    }
    const size_t owner_level = path.collapsed ? 2 : li + 1;
    const size_t member_level = path.collapsed ? 0 : li;
    for (const std::vector<Oid>& chain : chains) {
      const Oid& owner = chain[owner_level];
      const Oid& member = chain[member_level];
      if (!owner.valid() || !member.valid()) continue;
      auto [it, fresh] = pending[li].try_emplace(
          owner.Packed(),
          LinkObjectData(link_id, owner, links[li]->collapsed));
      it->second.AddMember(member,
                           path.collapsed ? chain[1] : Oid::Invalid());
    }
  }

  // Materializes one owner's link object (or inlines it) and stamps the
  // owner's (link-OID, link-ID) pair.
  auto emit_one = [&](size_t li, const Oid& owner,
                      LinkObjectData& data) -> Status {
    const LinkInfo* link = links[li];
    Object* owner_img;
    FIELDREP_RETURN_IF_ERROR(ctx.Get(owner, &owner_img));
    LinkRef ref;
    ref.link_id = link->id;
    if (!link->collapsed && data.size() <= link->inline_threshold) {
      ref.inlined = true;
      ref.inline_oids = data.Members();
    } else {
      FIELDREP_ASSIGN_OR_RETURN(LinkSet link_set, ops_.LinkSetFor(link->id));
      FIELDREP_RETURN_IF_ERROR(link_set.Create(data, &ref.link_oid));
    }
    owner_img->SetLinkRef(std::move(ref));
    return ops_.WriteObject(owner, *owner_img);
  };

  if (path.cluster_links && !path.collapsed &&
      path.link_sequence.size() >= 2) {
    // Section 4.3.2: emit link objects grouped by terminal chain — each
    // terminal's L_n immediately followed by the L_{n-1} objects of the
    // intermediates that reach it, and so on — so that propagating one
    // terminal update reads link objects that sit on the same page(s).
    // Reference chains form a forest (each object has one parent), so
    // every link object belongs to exactly one group.
    std::function<Status(size_t, const Oid&)> emit_group =
        [&](size_t li, const Oid& owner) -> Status {
      auto it = pending[li].find(owner.Packed());
      if (it == pending[li].end()) return Status::OK();
      LinkObjectData data = std::move(it->second);
      pending[li].erase(it);
      FIELDREP_RETURN_IF_ERROR(emit_one(li, owner, data));
      if (li >= 1) {
        for (const Oid& member : data.Members()) {
          FIELDREP_RETURN_IF_ERROR(emit_group(li - 1, member));
        }
      }
      return Status::OK();
    };
    const size_t top = path.link_sequence.size() - 1;
    // Iterate a snapshot of the top-level owners (emit_group mutates the
    // maps).
    std::vector<uint64_t> terminals;
    for (const auto& [owner_packed, data] : pending[top]) {
      terminals.push_back(owner_packed);
    }
    for (uint64_t owner_packed : terminals) {
      FIELDREP_RETURN_IF_ERROR(
          emit_group(top, Oid::FromPacked(owner_packed)));
    }
  } else {
    for (size_t li = 0; li < path.link_sequence.size(); ++li) {
      for (auto& [owner_packed, data] : pending[li]) {
        FIELDREP_RETURN_IF_ERROR(
            emit_one(li, Oid::FromPacked(owner_packed), data));
      }
    }
  }

  if (path.strategy == ReplicationStrategy::kInPlace) {
    for (size_t i = 0; i < heads.size(); ++i) {
      std::vector<Value> values;
      FIELDREP_RETURN_IF_ERROR(
          ReadTerminalValues(path, chains[i][n], &ctx, &values));
      Object* image;
      FIELDREP_RETURN_IF_ERROR(ctx.Get(heads[i], &image));
      image->SetReplicaValues(path.id, values);
      FIELDREP_RETURN_IF_ERROR(ops_.WriteObject(heads[i], *image));
      if (indexes_ != nullptr) {
        FIELDREP_RETURN_IF_ERROR(indexes_->OnReplicaValuesChanged(
            path.bound.set_name, heads[i], path.id, {}, values));
      }
    }
    return Status::OK();
  }

  // Separate: create replica records in terminal physical order with the
  // final refcounts, then point the heads at them.
  std::map<uint64_t, uint32_t> refcounts;
  for (const std::vector<Oid>& chain : chains) {
    if (chain[n].valid()) ++refcounts[chain[n].Packed()];
  }
  std::map<uint64_t, Oid> replica_of;
  for (const auto& [terminal_packed, count] : refcounts) {
    Oid terminal = Oid::FromPacked(terminal_packed);
    Object* terminal_img;
    FIELDREP_RETURN_IF_ERROR(ctx.Get(terminal, &terminal_img));
    Oid replica_oid;
    FIELDREP_RETURN_IF_ERROR(
        EnsureReplica(path, terminal, terminal_img, count, &replica_oid));
    replica_of[terminal_packed] = replica_oid;
  }
  for (size_t i = 0; i < heads.size(); ++i) {
    if (!chains[i][n].valid()) continue;
    Object* image;
    FIELDREP_RETURN_IF_ERROR(ctx.Get(heads[i], &image));
    ReplicaRefSlot slot;
    slot.path_id = path.id;
    slot.replica_oid = replica_of.at(chains[i][n].Packed());
    image->SetReplicaRef(slot);
    FIELDREP_RETURN_IF_ERROR(ops_.WriteObject(heads[i], *image));
  }
  return Status::OK();
}

Status ReplicationManager::DropPath(uint16_t path_id) {
  WalTransaction txn(wal_);
  FIELDREP_RETURN_IF_ERROR(txn.begin_status());
  const ReplicationPathInfo* found = catalog_->GetPath(path_id);
  if (found == nullptr) {
    return Status::NotFound(StringPrintf("no replication path %u", path_id));
  }
  // Abandon any queued deferred propagations for this path.
  {
    MutexLock pending_lock(pending_mu_);
    for (auto it = pending_.begin(); it != pending_.end();) {
      it = (it->first == path_id) ? pending_.erase(it) : std::next(it);
    }
    pending_count_.store(pending_.size(), std::memory_order_relaxed);
  }
  ReplicationPathInfo path = *found;  // survives catalog removal below
  LinkRegistry& registry = catalog_->link_registry();

  // Links used only by this path disappear with it; shared links keep
  // their membership for the surviving paths.
  std::set<uint8_t> private_links;
  for (uint8_t link_id : path.link_sequence) {
    const LinkInfo* link = registry.GetLink(link_id);
    if (link != nullptr && link->path_ids.size() == 1) {
      private_links.insert(link_id);
    }
  }

  FIELDREP_ASSIGN_OR_RETURN(ObjectSet * set,
                            sets_->GetSet(path.bound.set_name));
  std::vector<Oid> heads;
  FIELDREP_RETURN_IF_ERROR(set->file().ListOids(&heads));
  std::set<uint64_t> stripped;  // (link, owner) pairs already processed
  std::set<uint64_t> terminals_stripped;
  const size_t n = path.bound.level();
  for (const Oid& head : heads) {
    MutationContext ctx(&ops_);
    Object* image;
    FIELDREP_RETURN_IF_ERROR(ctx.Get(head, &image));
    std::vector<Oid> chain;
    FIELDREP_RETURN_IF_ERROR(BuildChain(path, head, &ctx, &chain));
    // Strip LinkRefs for private links from chain objects.
    for (size_t i = 0; i < path.link_sequence.size(); ++i) {
      uint8_t link_id = path.link_sequence[i];
      if (private_links.count(link_id) == 0) continue;
      size_t owner_level = path.collapsed ? 2 : i + 1;
      const Oid& owner = chain[owner_level];
      if (!owner.valid()) break;
      uint64_t key = (static_cast<uint64_t>(link_id) << 56) ^ owner.Packed();
      if (!stripped.insert(key).second) continue;
      Object* owner_img;
      FIELDREP_RETURN_IF_ERROR(ctx.Get(owner, &owner_img));
      if (owner_img->RemoveLinkRef(link_id)) {
        FIELDREP_RETURN_IF_ERROR(ops_.WriteObject(owner, *owner_img));
      }
    }
    if (path.strategy == ReplicationStrategy::kInPlace) {
      const ReplicaValueSlot* slot = image->FindReplicaValues(path.id);
      if (slot != nullptr) {
        std::vector<Value> old_values = slot->values;
        image->RemoveReplicaValues(path.id);
        FIELDREP_RETURN_IF_ERROR(ops_.WriteObject(head, *image));
        if (indexes_ != nullptr) {
          FIELDREP_RETURN_IF_ERROR(indexes_->OnReplicaValuesChanged(
              path.bound.set_name, head, path.id, old_values, {}));
        }
      }
    } else {
      image->RemoveReplicaRef(path.id);
      FIELDREP_RETURN_IF_ERROR(ops_.WriteObject(head, *image));
      const Oid& terminal = chain[n];
      if (terminal.valid() &&
          terminals_stripped.insert(terminal.Packed()).second) {
        Object* term_img;
        FIELDREP_RETURN_IF_ERROR(ctx.Get(terminal, &term_img));
        if (term_img->RemoveReplicaRef(path.id)) {
          FIELDREP_RETURN_IF_ERROR(ops_.WriteObject(terminal, *term_img));
        }
      }
    }
  }

  // Reclaim private link sets and the replica file.
  for (uint8_t link_id : private_links) {
    const LinkInfo* link = registry.GetLink(link_id);
    if (link != nullptr && link->link_set_file != kInvalidFileId) {
      FIELDREP_ASSIGN_OR_RETURN(RecordFile * file,
                                sets_->GetAuxFile(link->link_set_file));
      FIELDREP_RETURN_IF_ERROR(file->Truncate());
    }
  }
  if (path.replica_set_file != kInvalidFileId) {
    FIELDREP_ASSIGN_OR_RETURN(RecordFile * file,
                              sets_->GetAuxFile(path.replica_set_file));
    FIELDREP_RETURN_IF_ERROR(file->Truncate());
  }
  FIELDREP_RETURN_IF_ERROR(catalog_->DropReplicationPath(path_id));
  return txn.Commit();
}

// ---------------------------------------------------------------------------
// Chain / head bookkeeping
// ---------------------------------------------------------------------------

Status ReplicationManager::BuildChain(const ReplicationPathInfo& path,
                                      const Oid& head_oid,
                                      MutationContext* ctx,
                                      std::vector<Oid>* chain) {
  const size_t n = path.bound.level();
  chain->assign(n + 1, Oid::Invalid());
  (*chain)[0] = head_oid;
  for (size_t i = 1; i <= n; ++i) {
    Object* prev;
    FIELDREP_RETURN_IF_ERROR(ctx->Get((*chain)[i - 1], &prev));
    Oid next = RefOrInvalid(prev->field(path.bound.steps[i - 1].attr_index));
    if (!next.valid()) break;
    (*chain)[i] = next;
  }
  return Status::OK();
}

Status ReplicationManager::ReadTerminalValues(const ReplicationPathInfo& path,
                                              const Oid& terminal_oid,
                                              MutationContext* ctx,
                                              std::vector<Value>* values) {
  values->assign(path.bound.terminal_fields.size(), Value::Null());
  if (!terminal_oid.valid()) return Status::OK();
  Object* terminal;
  FIELDREP_RETURN_IF_ERROR(ctx->Get(terminal_oid, &terminal));
  for (size_t i = 0; i < path.bound.terminal_fields.size(); ++i) {
    (*values)[i] = terminal->field(path.bound.terminal_fields[i]);
  }
  return Status::OK();
}

Status ReplicationManager::EnsureReplica(const ReplicationPathInfo& path,
                                         const Oid& terminal_oid,
                                         Object* terminal_obj,
                                         uint32_t new_refs, Oid* replica_oid) {
  ReplicaRefSlot* slot = terminal_obj->FindReplicaRef(path.id);
  if (slot != nullptr) {
    slot->refcount += new_refs;
    *replica_oid = slot->replica_oid;
    return ops_.WriteObject(terminal_oid, *terminal_obj);
  }
  ReplicaRecord record;
  record.path_id = path.id;
  record.owner = terminal_oid;
  for (int field : path.bound.terminal_fields) {
    record.values.push_back(terminal_obj->field(field));
  }
  FIELDREP_ASSIGN_OR_RETURN(RecordFile * file,
                            sets_->GetAuxFile(path.replica_set_file));
  FIELDREP_RETURN_IF_ERROR(file->Insert(record.Serialize(), replica_oid));
  ReplicaRefSlot fresh;
  fresh.path_id = path.id;
  fresh.replica_oid = *replica_oid;
  fresh.refcount = new_refs;
  terminal_obj->SetReplicaRef(fresh);
  return ops_.WriteObject(terminal_oid, *terminal_obj);
}

Status ReplicationManager::ReleaseReplica(const ReplicationPathInfo& path,
                                          const Oid& terminal_oid,
                                          Object* terminal_obj,
                                          uint32_t released_refs) {
  ReplicaRefSlot* slot = terminal_obj->FindReplicaRef(path.id);
  if (slot == nullptr) return Status::OK();
  slot->refcount -= std::min(slot->refcount, released_refs);
  if (slot->refcount == 0) {
    FIELDREP_ASSIGN_OR_RETURN(RecordFile * file,
                              sets_->GetAuxFile(path.replica_set_file));
    FIELDREP_RETURN_IF_ERROR(file->Delete(slot->replica_oid));
    terminal_obj->RemoveReplicaRef(path.id);
  }
  return ops_.WriteObject(terminal_oid, *terminal_obj);
}

Status ReplicationManager::AddHeadToPath(const ReplicationPathInfo& path,
                                         const Oid& head_oid, Object* head_obj,
                                         MutationContext* ctx) {
  const size_t n = path.bound.level();
  std::vector<Oid> chain;
  FIELDREP_RETURN_IF_ERROR(BuildChain(path, head_oid, ctx, &chain));

  if (path.strategy == ReplicationStrategy::kInPlace) {
    if (path.collapsed) {
      if (chain[2].valid()) {
        Object* owner;
        FIELDREP_RETURN_IF_ERROR(ctx->Get(chain[2], &owner));
        FIELDREP_RETURN_IF_ERROR(ops_.AddMember(path.link_sequence[0],
                                                chain[2], owner, head_oid,
                                                /*tag=*/chain[1]));
      }
    } else {
      for (size_t i = 1; i <= n; ++i) {
        if (!chain[i].valid()) break;
        Object* owner;
        FIELDREP_RETURN_IF_ERROR(ctx->Get(chain[i], &owner));
        FIELDREP_RETURN_IF_ERROR(ops_.AddMember(path.link_sequence[i - 1],
                                                chain[i], owner,
                                                chain[i - 1]));
      }
    }
    std::vector<Value> values;
    FIELDREP_RETURN_IF_ERROR(ReadTerminalValues(path, chain[n], ctx, &values));
    std::vector<Value> old_values;
    if (const ReplicaValueSlot* slot = head_obj->FindReplicaValues(path.id)) {
      old_values = slot->values;
    }
    head_obj->SetReplicaValues(path.id, values);
    if (indexes_ != nullptr) {
      FIELDREP_RETURN_IF_ERROR(indexes_->OnReplicaValuesChanged(
          path.bound.set_name, head_oid, path.id, old_values, values));
    }
    return Status::OK();
  }

  // Separate replication.
  for (size_t i = 1; i + 1 <= n && i <= path.link_sequence.size(); ++i) {
    if (!chain[i].valid()) break;
    Object* owner;
    FIELDREP_RETURN_IF_ERROR(ctx->Get(chain[i], &owner));
    FIELDREP_RETURN_IF_ERROR(ops_.AddMember(path.link_sequence[i - 1],
                                            chain[i], owner, chain[i - 1]));
  }
  if (chain[n].valid()) {
    Object* terminal;
    FIELDREP_RETURN_IF_ERROR(ctx->Get(chain[n], &terminal));
    Oid replica_oid;
    FIELDREP_RETURN_IF_ERROR(
        EnsureReplica(path, chain[n], terminal, 1, &replica_oid));
    ReplicaRefSlot slot;
    slot.path_id = path.id;
    slot.replica_oid = replica_oid;
    head_obj->SetReplicaRef(slot);
  }
  return Status::OK();
}

Status ReplicationManager::RemoveHeadFromPath(const ReplicationPathInfo& path,
                                              const Oid& head_oid,
                                              Object* head_obj,
                                              MutationContext* ctx) {
  const size_t n = path.bound.level();
  std::vector<Oid> chain;
  FIELDREP_RETURN_IF_ERROR(BuildChain(path, head_oid, ctx, &chain));

  if (path.strategy == ReplicationStrategy::kInPlace) {
    if (path.collapsed) {
      if (chain[2].valid()) {
        Object* owner;
        FIELDREP_RETURN_IF_ERROR(ctx->Get(chain[2], &owner));
        bool on_path;
        FIELDREP_RETURN_IF_ERROR(ops_.RemoveMember(
            path.link_sequence[0], chain[2], owner, head_oid, &on_path));
      }
    } else {
      for (size_t i = 1; i <= n; ++i) {
        if (!chain[i].valid()) break;
        Object* owner;
        FIELDREP_RETURN_IF_ERROR(ctx->Get(chain[i], &owner));
        bool on_path;
        FIELDREP_RETURN_IF_ERROR(ops_.RemoveMember(path.link_sequence[i - 1],
                                                   chain[i], owner,
                                                   chain[i - 1], &on_path));
        // Ripple (Section 4.1.2): the owner leaves the next link only when
        // its own link object disappeared.
        if (on_path) break;
      }
    }
    std::vector<Value> old_values;
    if (const ReplicaValueSlot* slot = head_obj->FindReplicaValues(path.id)) {
      old_values = slot->values;
    }
    if (head_obj->RemoveReplicaValues(path.id) && indexes_ != nullptr) {
      FIELDREP_RETURN_IF_ERROR(indexes_->OnReplicaValuesChanged(
          path.bound.set_name, head_oid, path.id, old_values, {}));
    }
    return Status::OK();
  }

  // Separate replication.
  for (size_t i = 1; i + 1 <= n && i <= path.link_sequence.size(); ++i) {
    if (!chain[i].valid()) break;
    Object* owner;
    FIELDREP_RETURN_IF_ERROR(ctx->Get(chain[i], &owner));
    bool on_path;
    FIELDREP_RETURN_IF_ERROR(ops_.RemoveMember(path.link_sequence[i - 1],
                                               chain[i], owner, chain[i - 1],
                                               &on_path));
    if (on_path) break;
  }
  if (chain[n].valid() && head_obj->FindReplicaRef(path.id) != nullptr) {
    Object* terminal;
    FIELDREP_RETURN_IF_ERROR(ctx->Get(chain[n], &terminal));
    FIELDREP_RETURN_IF_ERROR(ReleaseReplica(path, chain[n], terminal, 1));
  }
  head_obj->RemoveReplicaRef(path.id);
  return Status::OK();
}

// ---------------------------------------------------------------------------
// Data mutations
// ---------------------------------------------------------------------------

Status ReplicationManager::CheckReferentialIntegrity(
    const TypeDescriptor& type, const Object& object) const {
  for (size_t i = 0; i < type.attribute_count(); ++i) {
    const AttributeDescriptor& attr = type.attribute(i);
    if (!attr.is_ref()) continue;
    const Value& v = object.field(i);
    if (v.is_null()) continue;
    if (!v.is_ref()) {
      return Status::InvalidArgument("attribute " + attr.name +
                                     " expects a reference value");
    }
    Oid target = v.as_ref();
    Result<const SetInfo*> set_info = catalog_->GetSetForFile(target.file_id);
    if (!set_info.ok()) {
      return Status::InvalidArgument("reference " + target.ToString() +
                                     " does not name an object set");
    }
    if (set_info.value()->type_name != attr.ref_type) {
      return Status::InvalidArgument(
          "attribute " + attr.name + " references type " + attr.ref_type +
          " but " + target.ToString() + " holds " +
          set_info.value()->type_name + " objects");
    }
    FIELDREP_ASSIGN_OR_RETURN(ObjectSet * target_set,
                              sets_->GetSet(set_info.value()->name));
    std::string ignored;
    Status exists = target_set->file().Read(target, &ignored);
    if (!exists.ok()) {
      return Status::InvalidArgument("dangling reference " +
                                     target.ToString() + " in attribute " +
                                     attr.name);
    }
  }
  return Status::OK();
}

Status ReplicationManager::InsertObject(const std::string& set_name,
                                        const Object& object, Oid* oid) {
  WalTransaction txn(wal_);
  FIELDREP_RETURN_IF_ERROR(txn.begin_status());
  FIELDREP_ASSIGN_OR_RETURN(ObjectSet * set, sets_->GetSet(set_name));
  FIELDREP_RETURN_IF_ERROR(CheckReferentialIntegrity(set->type(), object));
  Object image = object;
  FIELDREP_RETURN_IF_ERROR(set->Insert(image, oid));
  image.set_type_tag(set->type().type_tag());

  MutationContext ctx(&ops_);
  ctx.Seed(*oid, &image);
  for (uint16_t path_id : catalog_->PathsHeadedAt(set_name)) {
    const ReplicationPathInfo* path = catalog_->GetPath(path_id);
    FIELDREP_RETURN_IF_ERROR(AddHeadToPath(*path, *oid, &image, &ctx));
  }
  FIELDREP_RETURN_IF_ERROR(ops_.WriteObject(*oid, image));
  if (indexes_ != nullptr) {
    FIELDREP_RETURN_IF_ERROR(indexes_->OnInsert(set_name, *oid, image));
  }
  return txn.Commit();
}

Status ReplicationManager::DeleteObject(const std::string& set_name,
                                        const Oid& oid) {
  WalTransaction txn(wal_);
  FIELDREP_RETURN_IF_ERROR(txn.begin_status());
  FIELDREP_ASSIGN_OR_RETURN(ObjectSet * set, sets_->GetSet(set_name));
  MutationContext ctx(&ops_);
  Object* image;
  FIELDREP_RETURN_IF_ERROR(ctx.Get(oid, &image));

  // The paper's precondition: referenced objects cannot be deleted. An
  // object is referenced on a path exactly when it owns link objects, or
  // when its replica record is still shared.
  if (!image->link_refs().empty()) {
    return Status::FailedPrecondition(
        "object " + oid.ToString() +
        " is referenced on a replication path (it owns link objects)");
  }
  for (const ReplicaRefSlot& slot : image->replica_refs()) {
    const ReplicationPathInfo* path = catalog_->GetPath(slot.path_id);
    if (path == nullptr) continue;
    bool head_side = (path->bound.set_name == set_name);
    if (!head_side && slot.refcount > 0) {
      return Status::FailedPrecondition(
          "object " + oid.ToString() +
          " still anchors a shared replica record (refcount " +
          StringPrintf("%u", slot.refcount) + ")");
    }
  }

  for (uint16_t path_id : catalog_->PathsHeadedAt(set_name)) {
    const ReplicationPathInfo* path = catalog_->GetPath(path_id);
    FIELDREP_RETURN_IF_ERROR(RemoveHeadFromPath(*path, oid, image, &ctx));
  }
  if (indexes_ != nullptr) {
    FIELDREP_RETURN_IF_ERROR(indexes_->OnDelete(set_name, oid, *image));
  }
  FIELDREP_RETURN_IF_ERROR(set->Delete(oid));
  return txn.Commit();
}

Status ReplicationManager::UpdateField(const std::string& set_name,
                                       const Oid& oid, int attr_index,
                                       const Value& value) {
  return UpdateFields(set_name, oid, {{attr_index, value}});
}

Status ReplicationManager::UpdateFields(
    const std::string& set_name, const Oid& oid,
    const std::vector<std::pair<int, Value>>& updates) {
  WalTransaction txn(wal_);
  FIELDREP_RETURN_IF_ERROR(txn.begin_status());
  FIELDREP_ASSIGN_OR_RETURN(ObjectSet * set, sets_->GetSet(set_name));
  MutationContext ctx(&ops_);
  Object* image;
  FIELDREP_RETURN_IF_ERROR(ctx.Get(oid, &image));
  const TypeDescriptor& type = set->type();

  for (const auto& [attr_index, raw_value] : updates) {
    if (attr_index < 0 ||
        static_cast<size_t>(attr_index) >= type.attribute_count()) {
      return Status::InvalidArgument(
          StringPrintf("attribute index %d out of range", attr_index));
    }
    const AttributeDescriptor& attr = type.attribute(attr_index);
    FIELDREP_ASSIGN_OR_RETURN(Value value, raw_value.CoerceTo(attr));
    Value old_value = image->field(attr_index);

    if (attr.is_ref()) {
      // Validate the new target before any surgery.
      if (!value.is_null()) {
        Result<const SetInfo*> info =
            catalog_->GetSetForFile(value.as_ref().file_id);
        if (!info.ok() || info.value()->type_name != attr.ref_type) {
          return Status::InvalidArgument(
              "attribute " + attr.name + " cannot reference " +
              value.as_ref().ToString());
        }
      }
      FIELDREP_RETURN_IF_ERROR(
          HandleRefUpdate(set_name, oid, image, attr_index, value, &ctx));
    } else {
      image->set_field(attr_index, value);
    }
    if (indexes_ != nullptr) {
      FIELDREP_RETURN_IF_ERROR(indexes_->OnFieldUpdate(
          set_name, oid, old_value, value, attr_index));
    }
    bool propagated = false;
    FIELDREP_RETURN_IF_ERROR(PropagateTerminalValue(set_name, oid, image,
                                                    attr_index, &ctx,
                                                    &propagated));
    if (profiler_ != nullptr) {
      profiler_->RecordFieldUpdate(set_name + "." + attr.name, propagated);
    }
  }
  FIELDREP_RETURN_IF_ERROR(ops_.WriteObject(oid, *image));
  return txn.Commit();
}

Status ReplicationManager::HandleRefUpdate(const std::string& set_name,
                                           const Oid& oid, Object* object,
                                           int attr_index, const Value& value,
                                           MutationContext* ctx) {
  Oid old_target = RefOrInvalid(object->field(attr_index));
  Oid new_target = RefOrInvalid(value);
  if (old_target == new_target) {
    object->set_field(attr_index, value);
    return Status::OK();
  }

  // Paths where this object is the head and this attribute is the first
  // hop: "update E.dept" = delete E + insert E (Section 4.1.1).
  std::vector<const ReplicationPathInfo*> head_paths;
  for (uint16_t path_id : catalog_->PathsHeadedAt(set_name)) {
    const ReplicationPathInfo* path = catalog_->GetPath(path_id);
    if (path != nullptr && path->bound.steps[0].attr_index == attr_index) {
      head_paths.push_back(path);
    }
  }
  for (const ReplicationPathInfo* path : head_paths) {
    FIELDREP_RETURN_IF_ERROR(RemoveHeadFromPath(*path, oid, object, ctx));
  }

  // Paths where this object is an interior link target and this attribute
  // is the next hop (Section 4.1.2's ripple; Section 5.2's repointing).
  struct InteriorWork {
    const ReplicationPathInfo* path;
    uint16_t level;
    std::vector<Oid> heads;
    Oid old_terminal;
  };
  std::vector<InteriorWork> interior;
  {
    std::set<std::pair<uint16_t, uint16_t>> seen;
    for (const LinkRef& ref : object->link_refs()) {
      const LinkInfo* link = catalog_->link_registry().GetLink(ref.link_id);
      if (link == nullptr || link->collapsed) continue;
      for (uint16_t path_id : link->path_ids) {
        const ReplicationPathInfo* path = catalog_->GetPath(path_id);
        if (path == nullptr) continue;
        uint16_t level = link->level;
        if (level >= path->bound.level()) continue;  // attr is terminal here
        if (path->bound.steps[level].attr_index != attr_index) continue;
        if (!seen.insert({path_id, level}).second) continue;
        interior.push_back({path, level, {}, Oid::Invalid()});
      }
    }
  }

  // Extends a partial chain (levels `level`..n) by following the path's
  // steps from `from`, reading through the mutation context.
  auto extend_chain = [&](const ReplicationPathInfo& path, uint16_t level,
                          const Oid& from,
                          std::vector<Oid>* chain) -> Status {
    size_t n = path.bound.level();
    chain->assign(n + 1, Oid::Invalid());
    (*chain)[level] = oid;
    if (!from.valid()) return Status::OK();
    (*chain)[level + 1] = from;
    for (size_t i = level + 2; i <= n; ++i) {
      Object* prev;
      FIELDREP_RETURN_IF_ERROR(ctx->Get((*chain)[i - 1], &prev));
      Oid next = RefOrInvalid(prev->field(path.bound.steps[i - 1].attr_index));
      if (!next.valid()) break;
      (*chain)[i] = next;
    }
    return Status::OK();
  };

  // Phase 1 (old target still in the field): collect heads, note the old
  // terminal, and unwind the upper part of the old chain.
  for (InteriorWork& work : interior) {
    const ReplicationPathInfo& path = *work.path;
    FIELDREP_RETURN_IF_ERROR(
        CollectHeadsFromLevel(path, work.level, oid, ctx, &work.heads));
    std::vector<Oid> chain;
    FIELDREP_RETURN_IF_ERROR(extend_chain(path, work.level, old_target,
                                          &chain));
    work.old_terminal = chain[path.bound.level()];
    if (old_target.valid()) {
      size_t links = path.link_sequence.size();
      for (size_t i = work.level + 1; i <= links; ++i) {
        if (!chain[i].valid()) break;
        Object* owner;
        FIELDREP_RETURN_IF_ERROR(ctx->Get(chain[i], &owner));
        bool on_path;
        FIELDREP_RETURN_IF_ERROR(ops_.RemoveMember(path.link_sequence[i - 1],
                                                   chain[i], owner,
                                                   chain[i - 1], &on_path));
        if (on_path) break;
      }
    }
  }

  // Collapsed paths keep no link at the intermediate object, so dispatch by
  // shape: this object's type is the intermediate and the attribute is the
  // second hop (the D.org retargeting of Section 4.3.3 / Figure 6).
  struct CollapsedWork {
    const ReplicationPathInfo* path;
    std::vector<Oid> heads;
  };
  std::vector<CollapsedWork> collapsed;
  {
    FIELDREP_ASSIGN_OR_RETURN(ObjectSet * this_set, sets_->GetSet(set_name));
    for (uint16_t path_id : catalog_->AllPathIds()) {
      const ReplicationPathInfo* path = catalog_->GetPath(path_id);
      if (path == nullptr || !path->collapsed) continue;
      if (path->bound.steps[1].attr_index != attr_index) continue;
      if (path->bound.steps[0].target_type != this_set->type().name()) {
        continue;
      }
      CollapsedWork work{path, {}};
      if (old_target.valid()) {
        Object* old_owner;
        FIELDREP_RETURN_IF_ERROR(ctx->Get(old_target, &old_owner));
        FIELDREP_RETURN_IF_ERROR(ops_.RemoveTaggedMembers(
            path->link_sequence[0], old_target, old_owner, oid, &work.heads));
      } else {
        // The intermediate gains its first target: heads referencing it are
        // recorded nowhere in a collapsed path, so fall back to a head-set
        // scan (the price of collapsing; refs are assumed mostly static).
        FIELDREP_ASSIGN_OR_RETURN(ObjectSet * head_set,
                                  sets_->GetSet(path->bound.set_name));
        int head_attr = path->bound.steps[0].attr_index;
        std::vector<Oid>* heads = &work.heads;
        FIELDREP_RETURN_IF_ERROR(head_set->Scan(
            [&](const Oid& head_oid, const Object& head_obj) {
              if (RefOrInvalid(head_obj.field(head_attr)) == oid) {
                heads->push_back(head_oid);
              }
              return true;
            }));
      }
      collapsed.push_back(std::move(work));
    }
  }

  object->set_field(attr_index, value);

  // Phase 2 (new target in the field): rebuild the upper chain, refresh
  // replicas.
  for (InteriorWork& work : interior) {
    const ReplicationPathInfo& path = *work.path;
    size_t n = path.bound.level();
    std::vector<Oid> chain;
    FIELDREP_RETURN_IF_ERROR(extend_chain(path, work.level, new_target,
                                          &chain));
    if (new_target.valid()) {
      size_t links = path.link_sequence.size();
      for (size_t i = work.level + 1; i <= links; ++i) {
        if (!chain[i].valid()) break;
        Object* owner;
        FIELDREP_RETURN_IF_ERROR(ctx->Get(chain[i], &owner));
        FIELDREP_RETURN_IF_ERROR(ops_.AddMember(path.link_sequence[i - 1],
                                                chain[i], owner,
                                                chain[i - 1]));
      }
    }
    if (path.strategy == ReplicationStrategy::kInPlace) {
      // Every collected head reaches the terminal through this object, so
      // they all hold the old terminal's values; when the new terminal's
      // values are identical, no head needs touching.
      std::vector<Value> old_values, values;
      FIELDREP_RETURN_IF_ERROR(
          ReadTerminalValues(path, work.old_terminal, ctx, &old_values));
      FIELDREP_RETURN_IF_ERROR(
          ReadTerminalValues(path, chain[n], ctx, &values));
      if (path.deferred && chain[n].valid()) {
        // Queue the refresh; the eventual flush of the new terminal
        // re-derives exactly these heads through the rebuilt links.
        PendingInsert(path.id, chain[n].Packed());
      } else if (values != old_values) {
        FIELDREP_RETURN_IF_ERROR(
            UpdateHeadSlots(path, work.heads, values, -1, ctx));
      }
    } else if (chain[n] == work.old_terminal) {
      // Same terminal through a different intermediate: the shared replica
      // record and every head pointer stay valid.
    } else {
      if (!work.heads.empty() && work.old_terminal.valid()) {
        Object* old_term;
        FIELDREP_RETURN_IF_ERROR(ctx->Get(work.old_terminal, &old_term));
        FIELDREP_RETURN_IF_ERROR(
            ReleaseReplica(path, work.old_terminal, old_term,
                           static_cast<uint32_t>(work.heads.size())));
      }
      Oid replica_oid = Oid::Invalid();
      if (!work.heads.empty() && chain[n].valid()) {
        Object* new_term;
        FIELDREP_RETURN_IF_ERROR(ctx->Get(chain[n], &new_term));
        FIELDREP_RETURN_IF_ERROR(
            EnsureReplica(path, chain[n], new_term,
                          static_cast<uint32_t>(work.heads.size()),
                          &replica_oid));
      }
      FIELDREP_RETURN_IF_ERROR(
          RepointHeadRefs(path, work.heads, replica_oid, ctx));
    }
  }
  for (CollapsedWork& work : collapsed) {
    const ReplicationPathInfo& path = *work.path;
    if (new_target.valid() && !work.heads.empty()) {
      Object* new_owner;
      FIELDREP_RETURN_IF_ERROR(ctx->Get(new_target, &new_owner));
      FIELDREP_RETURN_IF_ERROR(ops_.AddMembers(
          path.link_sequence[0], new_target, new_owner, work.heads, oid));
    }
    std::vector<Value> old_values, values;
    FIELDREP_RETURN_IF_ERROR(
        ReadTerminalValues(path, old_target, ctx, &old_values));
    FIELDREP_RETURN_IF_ERROR(
        ReadTerminalValues(path, new_target, ctx, &values));
    if (path.deferred && new_target.valid()) {
      PendingInsert(path.id, new_target.Packed());
    } else if (values != old_values) {
      FIELDREP_RETURN_IF_ERROR(
          UpdateHeadSlots(path, work.heads, values, -1, ctx));
    }
  }

  for (const ReplicationPathInfo* path : head_paths) {
    FIELDREP_RETURN_IF_ERROR(AddHeadToPath(*path, oid, object, ctx));
  }
  return Status::OK();
}

}  // namespace fieldrep
