#ifndef FIELDREP_REPLICATION_LINK_OBJECT_H_
#define FIELDREP_REPLICATION_LINK_OBJECT_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/status.h"
#include "objects/value.h"
#include "storage/oid.h"

namespace fieldrep {

/// Record tags distinguishing auxiliary record kinds. Object type tags
/// assigned by the catalog count up from 1, so these high values are free.
inline constexpr uint16_t kLinkRecordTag = 0xFF00;
inline constexpr uint16_t kReplicaRecordTag = 0xFF01;

/// \brief One entry of a link object: a member OID, plus — in collapsed
/// links only (Section 4.3.3) — the tag identifying the intermediate object
/// the member reaches this owner through.
struct LinkEntry {
  Oid member;
  Oid tag;  ///< invalid unless the link is collapsed

  friend bool operator==(const LinkEntry& a, const LinkEntry& b) {
    return a.member == b.member && a.tag == b.tag;
  }
};

/// \brief In-memory form of a link object (Section 4.1, Figure 2).
///
/// A link object is owned by an object O at the end of link L and holds the
/// (sorted) OIDs of the objects one level closer to the head set that
/// reference O. "The OIDs that appear in a link object are kept in sorted
/// order so that ... a particular OID can be found and deleted using a
/// binary search" and so updates propagate in clustered order.
class LinkObjectData {
 public:
  LinkObjectData() = default;
  LinkObjectData(uint8_t link_id, Oid owner, bool tagged)
      : link_id_(link_id), owner_(owner), tagged_(tagged) {}

  uint8_t link_id() const { return link_id_; }
  Oid owner() const { return owner_; }
  bool tagged() const { return tagged_; }
  const std::vector<LinkEntry>& entries() const { return entries_; }
  size_t size() const { return entries_.size(); }
  bool empty() const { return entries_.empty(); }

  /// Sorted members (without tags).
  std::vector<Oid> Members() const;

  /// Inserts (member, tag) preserving sort order; false if already present.
  bool AddMember(const Oid& member, const Oid& tag = Oid::Invalid());

  /// Removes `member` via binary search; false if absent.
  bool RemoveMember(const Oid& member);

  bool HasMember(const Oid& member) const;

  /// Removes every entry tagged with `tag`, returning the removed members —
  /// the retargeting move of Figure 6 ("the OIDs of E1, E2, and E3 will
  /// have to be moved from O's link object to X's link object").
  std::vector<Oid> RemoveByTag(const Oid& tag);

  /// Serialized byte size (for the space accounting of Section 4.2:
  /// l = 1 + sizeof(type-tag) + f * sizeof(OID), plus the owner backpointer
  /// and segment-chain pointer this implementation adds).
  size_t SerializedSize() const;

  /// Serializes this data as one segment record; `next` chains additional
  /// segments when a link object outgrows a page (LinkSet handles the
  /// splitting — "each link object can contain a large number of OIDs, and
  /// can be quite large as a result", Section 4.1).
  std::string Serialize(const Oid& next = Oid::Invalid()) const;
  Status Deserialize(const std::string& payload);

  /// Chain pointer read back by Deserialize (invalid = last segment).
  Oid next_segment() const { return next_segment_; }

  /// Replaces the entry vector (segmentation support; entries must be
  /// sorted by member).
  void SetEntries(std::vector<LinkEntry> entries) {
    entries_ = std::move(entries);
  }

 private:
  uint8_t link_id_ = 0;
  Oid owner_;
  bool tagged_ = false;
  Oid next_segment_;
  std::vector<LinkEntry> entries_;  // sorted by member
};

/// \brief A replica record stored in an S' file under separate replication
/// (Section 5, Figure 7): the replicated value(s) for one terminal object,
/// shared by every head object that reaches that terminal.
///
/// Values are stored with self-describing tags (see EncodeTaggedValue); the
/// owner backpointer names the terminal object the values mirror.
struct ReplicaRecord {
  uint16_t path_id = 0;
  Oid owner;  ///< the terminal (S) object these values replicate
  std::vector<Value> values;

  std::string Serialize() const;
  Status Deserialize(const std::string& payload);
};

}  // namespace fieldrep

#endif  // FIELDREP_REPLICATION_LINK_OBJECT_H_
