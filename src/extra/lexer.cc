#include "extra/lexer.h"

#include <cctype>

#include "common/strings.h"

namespace fieldrep::extra {

bool Token::IsKeyword(const char* kw) const {
  if (kind != TokenKind::kIdentifier) return false;
  return ToLower(text) == ToLower(kw);
}

namespace {
bool IsIdentStart(char c) {
  return std::isalpha(static_cast<unsigned char>(c)) || c == '_';
}
bool IsIdentBody(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) || c == '_';
}
}  // namespace

Status Tokenize(const std::string& input, std::vector<Token>* tokens) {
  tokens->clear();
  size_t i = 0;
  const size_t n = input.size();
  while (i < n) {
    char c = input[i];
    if (std::isspace(static_cast<unsigned char>(c))) {
      ++i;
      continue;
    }
    // Comments: -- to end of line.
    if (c == '-' && i + 1 < n && input[i + 1] == '-') {
      while (i < n && input[i] != '\n') ++i;
      continue;
    }
    Token token;
    token.offset = i;
    if (IsIdentStart(c)) {
      size_t start = i;
      while (i < n && IsIdentBody(input[i])) ++i;
      token.kind = TokenKind::kIdentifier;
      token.text = input.substr(start, i - start);
      tokens->push_back(std::move(token));
      continue;
    }
    if (std::isdigit(static_cast<unsigned char>(c)) ||
        (c == '-' && i + 1 < n &&
         std::isdigit(static_cast<unsigned char>(input[i + 1])))) {
      size_t start = i;
      if (c == '-') ++i;
      bool is_float = false;
      while (i < n && (std::isdigit(static_cast<unsigned char>(input[i])) ||
                       input[i] == '.')) {
        // A '.' only continues the number when followed by a digit,
        // so `1.dept` lexes as integer 1, '.', identifier.
        if (input[i] == '.') {
          if (i + 1 < n &&
              std::isdigit(static_cast<unsigned char>(input[i + 1]))) {
            is_float = true;
          } else {
            break;
          }
        }
        ++i;
      }
      std::string text = input.substr(start, i - start);
      if (is_float) {
        token.kind = TokenKind::kFloat;
        token.float_value = std::stod(text);
      } else {
        token.kind = TokenKind::kInteger;
        token.int_value = std::stoll(text);
      }
      token.text = std::move(text);
      tokens->push_back(std::move(token));
      continue;
    }
    if (c == '"' || c == '\'') {
      char quote = c;
      ++i;
      std::string contents;
      while (i < n && input[i] != quote) {
        if (input[i] == '\\' && i + 1 < n) ++i;  // simple escapes
        contents.push_back(input[i]);
        ++i;
      }
      if (i >= n) {
        return Status::InvalidArgument(StringPrintf(
            "unterminated string literal at offset %zu", token.offset));
      }
      ++i;  // closing quote
      token.kind = TokenKind::kString;
      token.text = std::move(contents);
      tokens->push_back(std::move(token));
      continue;
    }
    if (c == '$') {
      size_t start = ++i;
      while (i < n && IsIdentBody(input[i])) ++i;
      if (i == start) {
        return Status::InvalidArgument(
            StringPrintf("bare '$' at offset %zu", token.offset));
      }
      token.kind = TokenKind::kVariable;
      token.text = input.substr(start, i - start);
      tokens->push_back(std::move(token));
      continue;
    }
    // Two-character symbols first.
    if (i + 1 < n) {
      std::string two = input.substr(i, 2);
      if (two == "<=" || two == ">=" || two == "!=") {
        token.kind = TokenKind::kSymbol;
        token.text = two;
        tokens->push_back(std::move(token));
        i += 2;
        continue;
      }
    }
    static const std::string kSingles = "(){}:,.;=<>[]*";
    if (kSingles.find(c) != std::string::npos) {
      token.kind = TokenKind::kSymbol;
      token.text = std::string(1, c);
      tokens->push_back(std::move(token));
      ++i;
      continue;
    }
    return Status::InvalidArgument(
        StringPrintf("unexpected character '%c' at offset %zu", c, i));
  }
  Token end;
  end.kind = TokenKind::kEnd;
  end.offset = n;
  tokens->push_back(std::move(end));
  return Status::OK();
}

}  // namespace fieldrep::extra
