#ifndef FIELDREP_EXTRA_AST_H_
#define FIELDREP_EXTRA_AST_H_

#include <memory>
#include <optional>
#include <string>
#include <utility>
#include <variant>
#include <vector>

#include "catalog/type.h"
#include "query/predicate.h"
#include "replication/replication_manager.h"

namespace fieldrep::extra {

/// A literal or $variable in a statement.
struct Operand {
  enum class Kind { kNull, kInteger, kFloat, kString, kVariable };
  Kind kind = Kind::kNull;
  int64_t int_value = 0;
  double float_value = 0;
  std::string text;  ///< string contents or variable name

  std::string ToString() const;
};

/// `define type EMP ( name: char[20], salary: int, dept: ref DEPT )`
struct DefineTypeStmt {
  TypeDescriptor type;
};

/// `create Emp1: {own ref EMP}`
struct CreateSetStmt {
  std::string set_name;
  std::string type_name;
};

/// `replicate Emp1.dept.name [using separate|inplace] [collapsed]
///  [inline N]`
struct ReplicateStmt {
  std::string spec;
  ReplicateOptions options;
};

/// `drop replicate Emp1.dept.name`
struct DropReplicateStmt {
  std::string spec;
};

/// `build btree name_idx on Emp1.dept.org.name [clustered]`
struct BuildIndexStmt {
  std::string index_name;
  std::string set_name;
  std::string key_expr;
  bool clustered = false;
};

/// `insert Emp1 (name = "fred", salary = 90000, dept = $d1) [as $e1]`
struct InsertStmt {
  std::string set_name;
  std::vector<std::pair<std::string, Operand>> fields;
  std::string bind_variable;  ///< empty when no `as $x`
};

/// `where salary > 100000` / `where salary between 1 and 2`
struct WhereClause {
  std::string attr_name;
  CompareOp op = CompareOp::kEq;
  Operand operand;
  Operand operand2;  ///< upper bound for between
};

/// `retrieve (Emp1.name, Emp1.dept.name) where Emp1.salary > 100000`
struct RetrieveStmt {
  std::string set_name;
  std::vector<std::string> projections;  ///< set prefix stripped
  std::optional<WhereClause> where;
};

/// `replace Dept (budget = 5, name = "x") where name = "toys"`
struct ReplaceStmt {
  std::string set_name;
  std::vector<std::pair<std::string, Operand>> assignments;
  std::optional<WhereClause> where;
};

/// `delete from Emp1 where salary < 0`
struct DeleteStmt {
  std::string set_name;
  std::optional<WhereClause> where;
};

/// `show catalog`
struct ShowCatalogStmt {};

/// `checkpoint` — persists catalog + file metadata (Database::Checkpoint).
struct CheckpointStmt {};

/// `verify Emp1.dept.name` — runs the replication consistency checker.
struct VerifyStmt {
  std::string spec;
};

using Statement =
    std::variant<DefineTypeStmt, CreateSetStmt, ReplicateStmt,
                 DropReplicateStmt, BuildIndexStmt, InsertStmt, RetrieveStmt,
                 ReplaceStmt, DeleteStmt, ShowCatalogStmt, VerifyStmt,
                 CheckpointStmt>;

/// Statement kind name for diagnostics.
const char* StatementName(const Statement& statement);

}  // namespace fieldrep::extra

#endif  // FIELDREP_EXTRA_AST_H_
