#ifndef FIELDREP_EXTRA_LEXER_H_
#define FIELDREP_EXTRA_LEXER_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/status.h"

namespace fieldrep::extra {

/// Token kinds of the EXTRA-flavoured statement language.
enum class TokenKind {
  kIdentifier,  ///< names and keywords (keywords matched case-insensitively)
  kInteger,
  kFloat,
  kString,    ///< "..." or '...'
  kVariable,  ///< $name — an OID handle bound by `insert ... as $name`
  kSymbol,    ///< one of ( ) { } : , . ; = < > [ ]  and two-char <= >= !=
  kEnd,
};

struct Token {
  TokenKind kind = TokenKind::kEnd;
  std::string text;       ///< identifier/symbol text, string contents
  int64_t int_value = 0;  ///< for kInteger
  double float_value = 0; ///< for kFloat
  size_t offset = 0;      ///< byte offset in the input, for diagnostics

  bool IsSymbol(const char* s) const {
    return kind == TokenKind::kSymbol && text == s;
  }
  /// Case-insensitive keyword match.
  bool IsKeyword(const char* kw) const;
};

/// Tokenizes `input`. `--` starts a comment running to end of line.
Status Tokenize(const std::string& input, std::vector<Token>* tokens);

}  // namespace fieldrep::extra

#endif  // FIELDREP_EXTRA_LEXER_H_
