#ifndef FIELDREP_EXTRA_PARSER_H_
#define FIELDREP_EXTRA_PARSER_H_

#include <string>
#include <vector>

#include "common/status.h"
#include "extra/ast.h"
#include "extra/lexer.h"

namespace fieldrep::extra {

/// \brief Recursive-descent parser for the EXTRA-flavoured statement
/// language. Statements are separated by ';' (a trailing ';' is optional).
///
/// Supported statements (Section 2's schema syntax plus the minimal DML the
/// paper's examples use):
///   define type T ( a: int, b: char[20], c: ref U, d: int64, e: double,
///                   f: string )
///   create SetName: {own ref T}
///   replicate Set.a.b [using inplace|separate] [collapsed] [inline N]
///                     [deferred]
///   drop replicate Set.a.b
///   build btree IndexName on Set.key[.path] [clustered]
///   insert Set (a = 1, c = $x) [as $y]
///   retrieve (Set.a, Set.b.c) [where Set.a > 5]
///   replace Set (a = 1) [where a = 2]
///   delete from Set [where a = 2]
///   show catalog
///   verify Set.a.b
class Parser {
 public:
  /// Parses a script into statements.
  static Result<std::vector<Statement>> Parse(const std::string& input);

 private:
  explicit Parser(std::vector<Token> tokens) : tokens_(std::move(tokens)) {}

  const Token& Peek(size_t ahead = 0) const;
  const Token& Advance();
  bool ConsumeSymbol(const char* symbol);
  bool ConsumeKeyword(const char* keyword);
  Status ExpectSymbol(const char* symbol);
  Status ExpectIdentifier(std::string* text);
  Status ErrorHere(const std::string& message) const;

  Result<Statement> ParseStatement();
  Result<DefineTypeStmt> ParseDefineType();
  Result<CreateSetStmt> ParseCreateSet();
  Result<ReplicateStmt> ParseReplicate();
  Result<BuildIndexStmt> ParseBuildIndex();
  Result<InsertStmt> ParseInsert();
  Result<RetrieveStmt> ParseRetrieve();
  Result<ReplaceStmt> ParseReplace();
  Result<DeleteStmt> ParseDelete();

  Status ParseDottedName(std::string* out);
  Result<Operand> ParseOperand();
  Result<WhereClause> ParseWhere(bool strip_set_prefix,
                                 const std::string& set_name);
  Status ParseAssignmentList(
      std::vector<std::pair<std::string, Operand>>* out);

  std::vector<Token> tokens_;
  size_t pos_ = 0;
};

}  // namespace fieldrep::extra

#endif  // FIELDREP_EXTRA_PARSER_H_
