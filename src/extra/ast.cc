#include "extra/ast.h"

#include "common/strings.h"

namespace fieldrep::extra {

std::string Operand::ToString() const {
  switch (kind) {
    case Kind::kNull:
      return "null";
    case Kind::kInteger:
      return StringPrintf("%lld", static_cast<long long>(int_value));
    case Kind::kFloat:
      return StringPrintf("%g", float_value);
    case Kind::kString:
      return "\"" + text + "\"";
    case Kind::kVariable:
      return "$" + text;
  }
  return "?";
}

const char* StatementName(const Statement& statement) {
  struct Visitor {
    const char* operator()(const DefineTypeStmt&) { return "define type"; }
    const char* operator()(const CreateSetStmt&) { return "create"; }
    const char* operator()(const ReplicateStmt&) { return "replicate"; }
    const char* operator()(const DropReplicateStmt&) {
      return "drop replicate";
    }
    const char* operator()(const BuildIndexStmt&) { return "build btree"; }
    const char* operator()(const InsertStmt&) { return "insert"; }
    const char* operator()(const RetrieveStmt&) { return "retrieve"; }
    const char* operator()(const ReplaceStmt&) { return "replace"; }
    const char* operator()(const DeleteStmt&) { return "delete"; }
    const char* operator()(const ShowCatalogStmt&) { return "show catalog"; }
    const char* operator()(const VerifyStmt&) { return "verify"; }
    const char* operator()(const CheckpointStmt&) { return "checkpoint"; }
  };
  return std::visit(Visitor{}, statement);
}

}  // namespace fieldrep::extra
