#ifndef FIELDREP_EXTRA_INTERPRETER_H_
#define FIELDREP_EXTRA_INTERPRETER_H_

#include <map>
#include <string>

#include "common/status.h"
#include "db/database.h"
#include "extra/ast.h"

namespace fieldrep::extra {

/// \brief Executes EXTRA-flavoured statements against a Database.
///
/// Object identity flows through $variables: `insert Dept (...) as $d`
/// binds the new OID to $d, which later statements use as a reference
/// value (`insert Emp1 (dept = $d, ...)`). Retrieve results are rendered
/// as an aligned text table.
class Interpreter {
 public:
  /// \param db target database (not owned)
  explicit Interpreter(Database* db) : db_(db) {}

  Interpreter(const Interpreter&) = delete;
  Interpreter& operator=(const Interpreter&) = delete;

  /// Parses and executes a script (one or more ';'-separated statements),
  /// returning the concatenated human-readable output.
  Result<std::string> Execute(const std::string& script);

  /// Executes one parsed statement.
  Result<std::string> ExecuteStatement(const Statement& statement);

  /// Looks up a bound $variable.
  Result<Oid> GetVariable(const std::string& name) const;
  void BindVariable(const std::string& name, const Oid& oid) {
    variables_[name] = oid;
  }

 private:
  Result<Value> ResolveOperand(const Operand& operand) const;
  Result<Predicate> ResolveWhere(const WhereClause& where) const;

  Result<std::string> Run(const DefineTypeStmt& stmt);
  Result<std::string> Run(const CreateSetStmt& stmt);
  Result<std::string> Run(const ReplicateStmt& stmt);
  Result<std::string> Run(const DropReplicateStmt& stmt);
  Result<std::string> Run(const BuildIndexStmt& stmt);
  Result<std::string> Run(const InsertStmt& stmt);
  Result<std::string> Run(const RetrieveStmt& stmt);
  Result<std::string> Run(const ReplaceStmt& stmt);
  Result<std::string> Run(const DeleteStmt& stmt);
  Result<std::string> Run(const ShowCatalogStmt& stmt);
  Result<std::string> Run(const VerifyStmt& stmt);
  Result<std::string> Run(const CheckpointStmt& stmt);

  Database* db_;
  std::map<std::string, Oid> variables_;
};

}  // namespace fieldrep::extra

#endif  // FIELDREP_EXTRA_INTERPRETER_H_
