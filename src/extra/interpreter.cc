#include "extra/interpreter.h"

#include <algorithm>

#include "common/strings.h"
#include "extra/parser.h"

namespace fieldrep::extra {

Result<std::string> Interpreter::Execute(const std::string& script) {
  FIELDREP_ASSIGN_OR_RETURN(std::vector<Statement> statements,
                            Parser::Parse(script));
  std::string output;
  for (const Statement& statement : statements) {
    FIELDREP_ASSIGN_OR_RETURN(std::string piece,
                              ExecuteStatement(statement));
    output += piece;
  }
  return output;
}

Result<std::string> Interpreter::ExecuteStatement(const Statement& statement) {
  return std::visit(
      [this](const auto& stmt) -> Result<std::string> { return Run(stmt); },
      statement);
}

Result<Oid> Interpreter::GetVariable(const std::string& name) const {
  auto it = variables_.find(name);
  if (it == variables_.end()) {
    return Status::NotFound("no variable named $" + name);
  }
  return it->second;
}

Result<Value> Interpreter::ResolveOperand(const Operand& operand) const {
  switch (operand.kind) {
    case Operand::Kind::kNull:
      return Value::Null();
    case Operand::Kind::kInteger:
      return Value(operand.int_value);
    case Operand::Kind::kFloat:
      return Value(operand.float_value);
    case Operand::Kind::kString:
      return Value(operand.text);
    case Operand::Kind::kVariable: {
      FIELDREP_ASSIGN_OR_RETURN(Oid oid, GetVariable(operand.text));
      return Value(oid);
    }
  }
  return Status::Internal("unreachable");
}

Result<Predicate> Interpreter::ResolveWhere(const WhereClause& where) const {
  Predicate predicate;
  predicate.attr_name = where.attr_name;
  predicate.op = where.op;
  FIELDREP_ASSIGN_OR_RETURN(predicate.operand,
                            ResolveOperand(where.operand));
  if (where.op == CompareOp::kBetween) {
    FIELDREP_ASSIGN_OR_RETURN(predicate.operand2,
                              ResolveOperand(where.operand2));
  }
  return predicate;
}

Result<std::string> Interpreter::Run(const DefineTypeStmt& stmt) {
  FIELDREP_RETURN_IF_ERROR(db_->DefineType(stmt.type));
  return "defined type " + stmt.type.name() + "\n";
}

Result<std::string> Interpreter::Run(const CreateSetStmt& stmt) {
  FIELDREP_RETURN_IF_ERROR(db_->CreateSet(stmt.set_name, stmt.type_name));
  return "created set " + stmt.set_name + ": {own ref " + stmt.type_name +
         "}\n";
}

Result<std::string> Interpreter::Run(const ReplicateStmt& stmt) {
  uint16_t path_id;
  FIELDREP_RETURN_IF_ERROR(db_->Replicate(stmt.spec, stmt.options, &path_id));
  const ReplicationPathInfo* path = db_->catalog().GetPath(path_id);
  return StringPrintf("replicated %s  -- %s, link sequence %s%s%s\n",
                      stmt.spec.c_str(),
                      ReplicationStrategyName(stmt.options.strategy),
                      path->LinkSequenceString().c_str(),
                      stmt.options.collapsed ? ", collapsed" : "",
                      stmt.options.deferred ? ", deferred" : "");
}

Result<std::string> Interpreter::Run(const DropReplicateStmt& stmt) {
  FIELDREP_RETURN_IF_ERROR(db_->DropReplication(stmt.spec));
  return "dropped replication path " + stmt.spec + "\n";
}

Result<std::string> Interpreter::Run(const BuildIndexStmt& stmt) {
  FIELDREP_RETURN_IF_ERROR(db_->BuildIndex(stmt.index_name, stmt.set_name,
                                           stmt.key_expr, stmt.clustered));
  return "built btree " + stmt.index_name + " on " + stmt.set_name + "." +
         stmt.key_expr + (stmt.clustered ? " (clustered)" : "") + "\n";
}

Result<std::string> Interpreter::Run(const InsertStmt& stmt) {
  FIELDREP_ASSIGN_OR_RETURN(ObjectSet * set, db_->GetSet(stmt.set_name));
  const TypeDescriptor& type = set->type();
  Object object;
  object.mutable_fields().assign(type.attribute_count(), Value::Null());
  for (const auto& [attr_name, operand] : stmt.fields) {
    int attr = type.FindAttribute(attr_name);
    if (attr < 0) {
      return Status::InvalidArgument("type " + type.name() +
                                     " has no attribute " + attr_name);
    }
    FIELDREP_ASSIGN_OR_RETURN(Value value, ResolveOperand(operand));
    FIELDREP_ASSIGN_OR_RETURN(value, value.CoerceTo(type.attribute(attr)));
    object.set_field(attr, std::move(value));
  }
  Oid oid;
  FIELDREP_RETURN_IF_ERROR(db_->Insert(stmt.set_name, object, &oid));
  if (!stmt.bind_variable.empty()) {
    BindVariable(stmt.bind_variable, oid);
    return StringPrintf("inserted %s as $%s\n", oid.ToString().c_str(),
                        stmt.bind_variable.c_str());
  }
  return "inserted " + oid.ToString() + "\n";
}

Result<std::string> Interpreter::Run(const RetrieveStmt& stmt) {
  ReadQuery query;
  query.set_name = stmt.set_name;
  query.projections = stmt.projections;
  if (stmt.where.has_value()) {
    FIELDREP_ASSIGN_OR_RETURN(Predicate predicate,
                              ResolveWhere(*stmt.where));
    query.predicate = std::move(predicate);
  }
  ReadResult result;
  FIELDREP_RETURN_IF_ERROR(db_->Retrieve(query, &result));

  // Render an aligned table.
  std::vector<std::string> headers;
  headers.reserve(stmt.projections.size());
  for (const std::string& projection : stmt.projections) {
    headers.push_back(stmt.set_name + "." + projection);
  }
  std::vector<std::vector<std::string>> cells;
  cells.reserve(result.rows.size());
  for (const std::vector<Value>& row : result.rows) {
    std::vector<std::string> line;
    line.reserve(row.size());
    for (const Value& value : row) line.push_back(value.ToString());
    cells.push_back(std::move(line));
  }
  std::vector<size_t> widths(headers.size());
  for (size_t c = 0; c < headers.size(); ++c) {
    widths[c] = headers[c].size();
    for (const auto& line : cells) widths[c] = std::max(widths[c], line[c].size());
  }
  std::string out;
  auto append_row = [&](const std::vector<std::string>& line) {
    out += " ";
    for (size_t c = 0; c < line.size(); ++c) {
      out += " " + line[c] + std::string(widths[c] - line[c].size(), ' ');
    }
    out += "\n";
  };
  append_row(headers);
  for (const auto& line : cells) append_row(line);
  out += StringPrintf("  (%zu row%s)\n", cells.size(),
                      cells.size() == 1 ? "" : "s");
  return out;
}

Result<std::string> Interpreter::Run(const ReplaceStmt& stmt) {
  UpdateQuery query;
  query.set_name = stmt.set_name;
  for (const auto& [attr_name, operand] : stmt.assignments) {
    FIELDREP_ASSIGN_OR_RETURN(Value value, ResolveOperand(operand));
    query.assignments.emplace_back(attr_name, std::move(value));
  }
  if (stmt.where.has_value()) {
    FIELDREP_ASSIGN_OR_RETURN(Predicate predicate,
                              ResolveWhere(*stmt.where));
    query.predicate = std::move(predicate);
  }
  UpdateResult result;
  FIELDREP_RETURN_IF_ERROR(db_->Replace(query, &result));
  return StringPrintf("replaced %llu object%s\n",
                      static_cast<unsigned long long>(result.objects_updated),
                      result.objects_updated == 1 ? "" : "s");
}

Result<std::string> Interpreter::Run(const DeleteStmt& stmt) {
  FIELDREP_ASSIGN_OR_RETURN(ObjectSet * set, db_->GetSet(stmt.set_name));
  std::vector<Oid> victims;
  if (stmt.where.has_value()) {
    FIELDREP_ASSIGN_OR_RETURN(Predicate predicate,
                              ResolveWhere(*stmt.where));
    FIELDREP_ASSIGN_OR_RETURN(BoundPredicate bound,
                              BoundPredicate::Bind(predicate, set->type()));
    Status match_status;
    FIELDREP_RETURN_IF_ERROR(
        set->Scan([&](const Oid& oid, const Object& object) {
          Result<bool> match = bound.Matches(object.field(bound.attr_index()));
          if (!match.ok()) {
            match_status = match.status();
            return false;
          }
          if (match.value()) victims.push_back(oid);
          return true;
        }));
    FIELDREP_RETURN_IF_ERROR(match_status);
  } else {
    FIELDREP_RETURN_IF_ERROR(set->file().ListOids(&victims));
  }
  for (const Oid& oid : victims) {
    FIELDREP_RETURN_IF_ERROR(db_->Delete(stmt.set_name, oid));
  }
  return StringPrintf("deleted %zu object%s\n", victims.size(),
                      victims.size() == 1 ? "" : "s");
}

Result<std::string> Interpreter::Run(const ShowCatalogStmt&) {
  return db_->catalog().Describe();
}

Result<std::string> Interpreter::Run(const CheckpointStmt&) {
  FIELDREP_RETURN_IF_ERROR(db_->Checkpoint());
  return std::string("checkpoint written\n");
}

Result<std::string> Interpreter::Run(const VerifyStmt& stmt) {
  const ReplicationPathInfo* path = db_->catalog().FindPathBySpec(stmt.spec);
  if (path == nullptr) {
    return Status::NotFound("no replication path " + stmt.spec);
  }
  FIELDREP_RETURN_IF_ERROR(
      db_->replication().VerifyPathConsistency(path->id));
  return "verified " + stmt.spec + ": consistent\n";
}

}  // namespace fieldrep::extra
