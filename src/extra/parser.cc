#include "extra/parser.h"

#include "common/strings.h"

namespace fieldrep::extra {

Result<std::vector<Statement>> Parser::Parse(const std::string& input) {
  std::vector<Token> tokens;
  FIELDREP_RETURN_IF_ERROR(Tokenize(input, &tokens));
  Parser parser(std::move(tokens));
  std::vector<Statement> statements;
  while (parser.Peek().kind != TokenKind::kEnd) {
    if (parser.ConsumeSymbol(";")) continue;
    FIELDREP_ASSIGN_OR_RETURN(Statement statement, parser.ParseStatement());
    statements.push_back(std::move(statement));
    if (parser.Peek().kind != TokenKind::kEnd) {
      FIELDREP_RETURN_IF_ERROR(parser.ExpectSymbol(";"));
    }
  }
  return statements;
}

const Token& Parser::Peek(size_t ahead) const {
  size_t index = pos_ + ahead;
  if (index >= tokens_.size()) index = tokens_.size() - 1;
  return tokens_[index];
}

const Token& Parser::Advance() {
  const Token& token = Peek();
  if (pos_ + 1 < tokens_.size()) ++pos_;
  return token;
}

bool Parser::ConsumeSymbol(const char* symbol) {
  if (Peek().IsSymbol(symbol)) {
    Advance();
    return true;
  }
  return false;
}

bool Parser::ConsumeKeyword(const char* keyword) {
  if (Peek().IsKeyword(keyword)) {
    Advance();
    return true;
  }
  return false;
}

Status Parser::ExpectSymbol(const char* symbol) {
  if (!ConsumeSymbol(symbol)) {
    return ErrorHere(StringPrintf("expected '%s'", symbol));
  }
  return Status::OK();
}

Status Parser::ExpectIdentifier(std::string* text) {
  if (Peek().kind != TokenKind::kIdentifier) {
    return ErrorHere("expected an identifier");
  }
  *text = Advance().text;
  return Status::OK();
}

Status Parser::ErrorHere(const std::string& message) const {
  const Token& token = Peek();
  return Status::InvalidArgument(StringPrintf(
      "%s near '%s' (offset %zu)", message.c_str(),
      token.kind == TokenKind::kEnd ? "<end>" : token.text.c_str(),
      token.offset));
}

Result<Statement> Parser::ParseStatement() {
  const Token& token = Peek();
  if (token.IsKeyword("define")) {
    FIELDREP_ASSIGN_OR_RETURN(DefineTypeStmt stmt, ParseDefineType());
    return Statement(std::move(stmt));
  }
  if (token.IsKeyword("create")) {
    FIELDREP_ASSIGN_OR_RETURN(CreateSetStmt stmt, ParseCreateSet());
    return Statement(std::move(stmt));
  }
  if (token.IsKeyword("replicate")) {
    FIELDREP_ASSIGN_OR_RETURN(ReplicateStmt stmt, ParseReplicate());
    return Statement(std::move(stmt));
  }
  if (token.IsKeyword("drop")) {
    Advance();
    if (!ConsumeKeyword("replicate")) {
      return ErrorHere("expected 'replicate' after 'drop'");
    }
    DropReplicateStmt stmt;
    FIELDREP_RETURN_IF_ERROR(ParseDottedName(&stmt.spec));
    return Statement(std::move(stmt));
  }
  if (token.IsKeyword("build")) {
    FIELDREP_ASSIGN_OR_RETURN(BuildIndexStmt stmt, ParseBuildIndex());
    return Statement(std::move(stmt));
  }
  if (token.IsKeyword("insert")) {
    FIELDREP_ASSIGN_OR_RETURN(InsertStmt stmt, ParseInsert());
    return Statement(std::move(stmt));
  }
  if (token.IsKeyword("retrieve")) {
    FIELDREP_ASSIGN_OR_RETURN(RetrieveStmt stmt, ParseRetrieve());
    return Statement(std::move(stmt));
  }
  if (token.IsKeyword("replace")) {
    FIELDREP_ASSIGN_OR_RETURN(ReplaceStmt stmt, ParseReplace());
    return Statement(std::move(stmt));
  }
  if (token.IsKeyword("delete")) {
    FIELDREP_ASSIGN_OR_RETURN(DeleteStmt stmt, ParseDelete());
    return Statement(std::move(stmt));
  }
  if (token.IsKeyword("show")) {
    Advance();
    if (!ConsumeKeyword("catalog")) {
      return ErrorHere("expected 'catalog' after 'show'");
    }
    return Statement(ShowCatalogStmt{});
  }
  if (token.IsKeyword("checkpoint")) {
    Advance();
    return Statement(CheckpointStmt{});
  }
  if (token.IsKeyword("verify")) {
    Advance();
    VerifyStmt stmt;
    FIELDREP_RETURN_IF_ERROR(ParseDottedName(&stmt.spec));
    return Statement(std::move(stmt));
  }
  return ErrorHere("unknown statement");
}

Result<DefineTypeStmt> Parser::ParseDefineType() {
  Advance();  // define
  if (!ConsumeKeyword("type")) return ErrorHere("expected 'type'");
  std::string type_name;
  FIELDREP_RETURN_IF_ERROR(ExpectIdentifier(&type_name));
  FIELDREP_RETURN_IF_ERROR(ExpectSymbol("("));
  std::vector<AttributeDescriptor> attributes;
  if (!Peek().IsSymbol(")")) {
    do {
      std::string attr_name;
      FIELDREP_RETURN_IF_ERROR(ExpectIdentifier(&attr_name));
      FIELDREP_RETURN_IF_ERROR(ExpectSymbol(":"));
      if (ConsumeKeyword("int")) {
        attributes.push_back(Int32Attr(attr_name));
      } else if (ConsumeKeyword("int64")) {
        attributes.push_back(Int64Attr(attr_name));
      } else if (ConsumeKeyword("double") || ConsumeKeyword("float")) {
        attributes.push_back(DoubleAttr(attr_name));
      } else if (ConsumeKeyword("string")) {
        attributes.push_back(StringAttr(attr_name));
      } else if (ConsumeKeyword("char")) {
        FIELDREP_RETURN_IF_ERROR(ExpectSymbol("["));
        if (Peek().kind != TokenKind::kInteger) {
          return ErrorHere("expected a char[] length");
        }
        int64_t length = Advance().int_value;
        if (length <= 0 || length > 4000) {
          return ErrorHere("char[] length out of range");
        }
        FIELDREP_RETURN_IF_ERROR(ExpectSymbol("]"));
        attributes.push_back(
            CharAttr(attr_name, static_cast<uint32_t>(length)));
      } else if (ConsumeKeyword("ref")) {
        std::string target;
        FIELDREP_RETURN_IF_ERROR(ExpectIdentifier(&target));
        attributes.push_back(RefAttr(attr_name, target));
      } else {
        return ErrorHere("unknown attribute type");
      }
    } while (ConsumeSymbol(","));
  }
  FIELDREP_RETURN_IF_ERROR(ExpectSymbol(")"));
  DefineTypeStmt stmt;
  stmt.type = TypeDescriptor(type_name, std::move(attributes));
  return stmt;
}

Result<CreateSetStmt> Parser::ParseCreateSet() {
  Advance();  // create
  CreateSetStmt stmt;
  FIELDREP_RETURN_IF_ERROR(ExpectIdentifier(&stmt.set_name));
  FIELDREP_RETURN_IF_ERROR(ExpectSymbol(":"));
  FIELDREP_RETURN_IF_ERROR(ExpectSymbol("{"));
  if (!ConsumeKeyword("own")) return ErrorHere("expected 'own'");
  if (!ConsumeKeyword("ref")) return ErrorHere("expected 'ref'");
  FIELDREP_RETURN_IF_ERROR(ExpectIdentifier(&stmt.type_name));
  FIELDREP_RETURN_IF_ERROR(ExpectSymbol("}"));
  return stmt;
}

Status Parser::ParseDottedName(std::string* out) {
  std::string name;
  FIELDREP_RETURN_IF_ERROR(ExpectIdentifier(&name));
  while (ConsumeSymbol(".")) {
    std::string part;
    FIELDREP_RETURN_IF_ERROR(ExpectIdentifier(&part));
    name += "." + part;
  }
  *out = std::move(name);
  return Status::OK();
}

Result<ReplicateStmt> Parser::ParseReplicate() {
  Advance();  // replicate
  ReplicateStmt stmt;
  FIELDREP_RETURN_IF_ERROR(ParseDottedName(&stmt.spec));
  for (;;) {
    if (ConsumeKeyword("using")) {
      if (ConsumeKeyword("separate")) {
        stmt.options.strategy = ReplicationStrategy::kSeparate;
      } else if (ConsumeKeyword("inplace")) {
        stmt.options.strategy = ReplicationStrategy::kInPlace;
      } else {
        return ErrorHere("expected 'inplace' or 'separate' after 'using'");
      }
      continue;
    }
    if (ConsumeKeyword("collapsed")) {
      stmt.options.collapsed = true;
      continue;
    }
    if (ConsumeKeyword("deferred")) {
      stmt.options.deferred = true;
      continue;
    }
    if (ConsumeKeyword("clustered")) {
      stmt.options.cluster_links = true;
      continue;
    }
    if (ConsumeKeyword("inline")) {
      if (Peek().kind != TokenKind::kInteger) {
        return ErrorHere("expected an inline threshold");
      }
      stmt.options.inline_threshold =
          static_cast<uint32_t>(Advance().int_value);
      continue;
    }
    break;
  }
  return stmt;
}

Result<BuildIndexStmt> Parser::ParseBuildIndex() {
  Advance();  // build
  if (!ConsumeKeyword("btree")) return ErrorHere("expected 'btree'");
  BuildIndexStmt stmt;
  FIELDREP_RETURN_IF_ERROR(ExpectIdentifier(&stmt.index_name));
  if (!ConsumeKeyword("on")) return ErrorHere("expected 'on'");
  std::string dotted;
  FIELDREP_RETURN_IF_ERROR(ParseDottedName(&dotted));
  size_t dot = dotted.find('.');
  if (dot == std::string::npos) {
    return ErrorHere("index key must be Set.attribute or Set.path");
  }
  stmt.set_name = dotted.substr(0, dot);
  stmt.key_expr = dotted.substr(dot + 1);
  if (ConsumeKeyword("clustered")) stmt.clustered = true;
  return stmt;
}

Result<Operand> Parser::ParseOperand() {
  Operand operand;
  const Token& token = Peek();
  switch (token.kind) {
    case TokenKind::kInteger:
      operand.kind = Operand::Kind::kInteger;
      operand.int_value = token.int_value;
      Advance();
      return operand;
    case TokenKind::kFloat:
      operand.kind = Operand::Kind::kFloat;
      operand.float_value = token.float_value;
      Advance();
      return operand;
    case TokenKind::kString:
      operand.kind = Operand::Kind::kString;
      operand.text = token.text;
      Advance();
      return operand;
    case TokenKind::kVariable:
      operand.kind = Operand::Kind::kVariable;
      operand.text = token.text;
      Advance();
      return operand;
    default:
      if (token.IsKeyword("null")) {
        Advance();
        operand.kind = Operand::Kind::kNull;
        return operand;
      }
      return ErrorHere("expected a literal, $variable, or null");
  }
}

Status Parser::ParseAssignmentList(
    std::vector<std::pair<std::string, Operand>>* out) {
  FIELDREP_RETURN_IF_ERROR(ExpectSymbol("("));
  do {
    std::string attr;
    FIELDREP_RETURN_IF_ERROR(ExpectIdentifier(&attr));
    FIELDREP_RETURN_IF_ERROR(ExpectSymbol("="));
    FIELDREP_ASSIGN_OR_RETURN(Operand operand, ParseOperand());
    out->emplace_back(std::move(attr), std::move(operand));
  } while (ConsumeSymbol(","));
  return ExpectSymbol(")");
}

Result<InsertStmt> Parser::ParseInsert() {
  Advance();  // insert
  InsertStmt stmt;
  FIELDREP_RETURN_IF_ERROR(ExpectIdentifier(&stmt.set_name));
  FIELDREP_RETURN_IF_ERROR(ParseAssignmentList(&stmt.fields));
  if (ConsumeKeyword("as")) {
    if (Peek().kind != TokenKind::kVariable) {
      return ErrorHere("expected a $variable after 'as'");
    }
    stmt.bind_variable = Advance().text;
  }
  return stmt;
}

Result<WhereClause> Parser::ParseWhere(bool strip_set_prefix,
                                       const std::string& set_name) {
  WhereClause where;
  std::string attr;
  FIELDREP_RETURN_IF_ERROR(ParseDottedName(&attr));
  if (strip_set_prefix && StartsWith(attr, set_name + ".")) {
    attr = attr.substr(set_name.size() + 1);
  }
  // Plain attributes and dotted reference paths are both allowed; path
  // clauses are answered through replicas or path indexes (Section 3.3.4).
  where.attr_name = attr;
  const Token& op = Peek();
  if (op.IsKeyword("between")) {
    Advance();
    where.op = CompareOp::kBetween;
    FIELDREP_ASSIGN_OR_RETURN(where.operand, ParseOperand());
    if (!ConsumeKeyword("and")) return ErrorHere("expected 'and'");
    FIELDREP_ASSIGN_OR_RETURN(where.operand2, ParseOperand());
    return where;
  }
  if (ConsumeSymbol("=")) {
    where.op = CompareOp::kEq;
  } else if (ConsumeSymbol("<=")) {
    where.op = CompareOp::kLe;
  } else if (ConsumeSymbol(">=")) {
    where.op = CompareOp::kGe;
  } else if (ConsumeSymbol("<")) {
    where.op = CompareOp::kLt;
  } else if (ConsumeSymbol(">")) {
    where.op = CompareOp::kGt;
  } else {
    return ErrorHere("expected a comparison operator");
  }
  FIELDREP_ASSIGN_OR_RETURN(where.operand, ParseOperand());
  return where;
}

Result<RetrieveStmt> Parser::ParseRetrieve() {
  Advance();  // retrieve
  RetrieveStmt stmt;
  FIELDREP_RETURN_IF_ERROR(ExpectSymbol("("));
  std::vector<std::string> raw;
  do {
    std::string projection;
    FIELDREP_RETURN_IF_ERROR(ParseDottedName(&projection));
    raw.push_back(std::move(projection));
  } while (ConsumeSymbol(","));
  FIELDREP_RETURN_IF_ERROR(ExpectSymbol(")"));
  // All projections must share one set prefix: retrieve (Emp1.name, ...).
  for (const std::string& projection : raw) {
    size_t dot = projection.find('.');
    if (dot == std::string::npos) {
      return ErrorHere("projections must be Set.attribute or Set.path");
    }
    std::string set_name = projection.substr(0, dot);
    if (stmt.set_name.empty()) {
      stmt.set_name = set_name;
    } else if (stmt.set_name != set_name) {
      return ErrorHere("all projections must target the same set");
    }
    stmt.projections.push_back(projection.substr(dot + 1));
  }
  if (ConsumeKeyword("where")) {
    FIELDREP_ASSIGN_OR_RETURN(WhereClause where,
                              ParseWhere(true, stmt.set_name));
    stmt.where = std::move(where);
  }
  return stmt;
}

Result<ReplaceStmt> Parser::ParseReplace() {
  Advance();  // replace
  ReplaceStmt stmt;
  FIELDREP_RETURN_IF_ERROR(ExpectIdentifier(&stmt.set_name));
  FIELDREP_RETURN_IF_ERROR(ParseAssignmentList(&stmt.assignments));
  if (ConsumeKeyword("where")) {
    FIELDREP_ASSIGN_OR_RETURN(WhereClause where,
                              ParseWhere(true, stmt.set_name));
    stmt.where = std::move(where);
  }
  return stmt;
}

Result<DeleteStmt> Parser::ParseDelete() {
  Advance();  // delete
  ConsumeKeyword("from");
  DeleteStmt stmt;
  FIELDREP_RETURN_IF_ERROR(ExpectIdentifier(&stmt.set_name));
  if (ConsumeKeyword("where")) {
    FIELDREP_ASSIGN_OR_RETURN(WhereClause where,
                              ParseWhere(true, stmt.set_name));
    stmt.where = std::move(where);
  }
  return stmt;
}

}  // namespace fieldrep::extra
