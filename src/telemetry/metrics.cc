#include "telemetry/metrics.h"

#include <algorithm>
#include <cmath>

#include "common/json.h"
#include "common/strings.h"

namespace fieldrep {

Histogram::Histogram(std::vector<uint64_t> upper_bounds)
    : bounds_(std::move(upper_bounds)) {
  std::sort(bounds_.begin(), bounds_.end());
  bounds_.erase(std::unique(bounds_.begin(), bounds_.end()), bounds_.end());
  buckets_ = std::make_unique<std::atomic<uint64_t>[]>(bounds_.size() + 1);
  for (size_t i = 0; i <= bounds_.size(); ++i) {
    buckets_[i].store(0, std::memory_order_relaxed);
  }
}

std::vector<uint64_t> Histogram::LatencyBoundsNs() {
  // Powers of four from 1 µs to ~17 s: 13 buckets covering everything from
  // a buffer hit to a pathological checkpoint, coarse enough to keep
  // Observe at two relaxed adds.
  std::vector<uint64_t> bounds;
  for (uint64_t b = 1000; b < 20'000'000'000ULL; b *= 4) bounds.push_back(b);
  return bounds;
}

void Histogram::Observe(uint64_t value) {
  size_t idx =
      std::lower_bound(bounds_.begin(), bounds_.end(), value) - bounds_.begin();
  buckets_[idx].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  sum_.fetch_add(value, std::memory_order_relaxed);
}

Histogram::Snapshot Histogram::TakeSnapshot() const {
  Snapshot out;
  out.bounds = bounds_;
  out.buckets.resize(bounds_.size() + 1);
  for (size_t i = 0; i <= bounds_.size(); ++i) {
    out.buckets[i] = buckets_[i].load(std::memory_order_relaxed);
  }
  out.count = count_.load(std::memory_order_relaxed);
  out.sum = sum_.load(std::memory_order_relaxed);
  return out;
}

Counter* MetricsRegistry::AddCounter(const std::string& name,
                                     const std::string& help,
                                     const std::string& labels) {
  MutexLock lock(mu_);
  Instrument& inst = instruments_.emplace_back();
  inst.name = name;
  inst.labels = labels;
  inst.help = help;
  inst.kind = MetricKind::kCounter;
  inst.counter = std::make_unique<Counter>();
  return inst.counter.get();
}

Gauge* MetricsRegistry::AddGauge(const std::string& name,
                                 const std::string& help,
                                 const std::string& labels) {
  MutexLock lock(mu_);
  Instrument& inst = instruments_.emplace_back();
  inst.name = name;
  inst.labels = labels;
  inst.help = help;
  inst.kind = MetricKind::kGauge;
  inst.gauge = std::make_unique<Gauge>();
  return inst.gauge.get();
}

Histogram* MetricsRegistry::AddHistogram(const std::string& name,
                                         const std::string& help,
                                         std::vector<uint64_t> upper_bounds,
                                         const std::string& labels) {
  MutexLock lock(mu_);
  Instrument& inst = instruments_.emplace_back();
  inst.name = name;
  inst.labels = labels;
  inst.help = help;
  inst.kind = MetricKind::kHistogram;
  inst.histogram = std::make_unique<Histogram>(std::move(upper_bounds));
  return inst.histogram.get();
}

void MetricsRegistry::AddCallback(const std::string& name,
                                  const std::string& help, MetricKind kind,
                                  const std::string& labels,
                                  std::function<double()> fn) {
  MutexLock lock(mu_);
  Instrument& inst = instruments_.emplace_back();
  inst.name = name;
  inst.labels = labels;
  inst.help = help;
  inst.kind = kind;
  inst.callback = std::move(fn);
}

void MetricsRegistry::AddCollector(
    std::function<void(std::vector<MetricSample>*)> fn) {
  MutexLock lock(mu_);
  collectors_.push_back(std::move(fn));
}

std::vector<MetricSample> MetricsRegistry::Collect() const {
  MutexLock lock(mu_);
  std::vector<MetricSample> out;
  out.reserve(instruments_.size());
  for (const Instrument& inst : instruments_) {
    MetricSample sample;
    sample.name = inst.name;
    sample.labels = inst.labels;
    sample.help = inst.help;
    sample.kind = inst.kind;
    if (inst.counter != nullptr) {
      sample.value = static_cast<double>(inst.counter->value());
    } else if (inst.gauge != nullptr) {
      sample.value = static_cast<double>(inst.gauge->value());
    } else if (inst.histogram != nullptr) {
      sample.histogram = inst.histogram->TakeSnapshot();
    } else if (inst.callback) {
      sample.value = inst.callback();
    }
    out.push_back(std::move(sample));
  }
  for (const auto& collector : collectors_) collector(&out);
  return out;
}

namespace {

const char* KindName(MetricKind kind) {
  switch (kind) {
    case MetricKind::kCounter:
      return "counter";
    case MetricKind::kGauge:
      return "gauge";
    case MetricKind::kHistogram:
      return "histogram";
  }
  return "counter";
}

std::string FormatValue(double v) {
  if (std::isfinite(v) && v == std::floor(v) && std::fabs(v) < 9.0e15) {
    return StringPrintf("%lld", static_cast<long long>(v));
  }
  return StringPrintf("%g", v);
}

std::string Labeled(const std::string& name, const std::string& labels,
                    const std::string& extra = "") {
  std::string body = labels;
  if (!extra.empty()) {
    if (!body.empty()) body += ',';
    body += extra;
  }
  if (body.empty()) return name;
  return name + '{' + body + '}';
}

}  // namespace

std::string MetricsRegistry::SamplesToPrometheus(
    const std::vector<MetricSample>& samples) {
  std::string out;
  std::string last_name;
  for (const MetricSample& s : samples) {
    if (s.name != last_name) {
      if (!s.help.empty()) {
        out += "# HELP " + s.name + ' ' + s.help + '\n';
      }
      out += "# TYPE " + s.name + ' ' + KindName(s.kind) + '\n';
      last_name = s.name;
    }
    if (s.histogram.has_value()) {
      const Histogram::Snapshot& h = *s.histogram;
      uint64_t cumulative = 0;
      for (size_t i = 0; i < h.bounds.size(); ++i) {
        cumulative += h.buckets[i];
        out += Labeled(s.name + "_bucket", s.labels,
                       StringPrintf("le=\"%llu\"",
                                    static_cast<unsigned long long>(
                                        h.bounds[i]))) +
               ' ' + FormatValue(static_cast<double>(cumulative)) + '\n';
      }
      out += Labeled(s.name + "_bucket", s.labels, "le=\"+Inf\"") + ' ' +
             FormatValue(static_cast<double>(h.count)) + '\n';
      out += Labeled(s.name + "_sum", s.labels) + ' ' +
             FormatValue(static_cast<double>(h.sum)) + '\n';
      out += Labeled(s.name + "_count", s.labels) + ' ' +
             FormatValue(static_cast<double>(h.count)) + '\n';
    } else {
      out += Labeled(s.name, s.labels) + ' ' + FormatValue(s.value) + '\n';
    }
  }
  return out;
}

JsonValue MetricsRegistry::SamplesToJsonValue(
    const std::vector<MetricSample>& samples) {
  JsonValue doc = JsonValue::Object();
  doc.Set("version", JsonValue::Number(uint64_t{1}));
  JsonValue metrics = JsonValue::Array();
  for (const MetricSample& s : samples) {
    JsonValue m = JsonValue::Object();
    m.Set("name", JsonValue::Str(s.name));
    m.Set("kind", JsonValue::Str(KindName(s.kind)));
    if (!s.labels.empty()) m.Set("labels", JsonValue::Str(s.labels));
    if (!s.help.empty()) m.Set("help", JsonValue::Str(s.help));
    if (s.histogram.has_value()) {
      const Histogram::Snapshot& h = *s.histogram;
      m.Set("count", JsonValue::Number(h.count));
      m.Set("sum", JsonValue::Number(h.sum));
      JsonValue buckets = JsonValue::Array();
      for (size_t i = 0; i < h.bounds.size(); ++i) {
        JsonValue b = JsonValue::Object();
        b.Set("le", JsonValue::Number(h.bounds[i]));
        b.Set("count", JsonValue::Number(h.buckets[i]));
        buckets.Append(std::move(b));
      }
      JsonValue inf = JsonValue::Object();
      inf.Set("le", JsonValue::Str("+Inf"));
      inf.Set("count", JsonValue::Number(h.buckets.empty()
                                             ? uint64_t{0}
                                             : h.buckets.back()));
      buckets.Append(std::move(inf));
      m.Set("buckets", std::move(buckets));
    } else {
      m.Set("value", JsonValue::Number(s.value));
    }
    metrics.Append(std::move(m));
  }
  doc.Set("metrics", std::move(metrics));
  return doc;
}

std::string MetricsRegistry::SamplesToJson(
    const std::vector<MetricSample>& samples) {
  return SamplesToJsonValue(samples).Serialize(/*indent=*/2);
}

std::string MetricsRegistry::SamplesToText(
    const std::vector<MetricSample>& samples) {
  std::string out;
  for (const MetricSample& s : samples) {
    if (s.histogram.has_value()) {
      const Histogram::Snapshot& h = *s.histogram;
      double mean = h.count == 0 ? 0.0 : static_cast<double>(h.sum) /
                                             static_cast<double>(h.count);
      out += StringPrintf("%-52s count=%llu sum=%llu mean=%.0f\n",
                          Labeled(s.name, s.labels).c_str(),
                          static_cast<unsigned long long>(h.count),
                          static_cast<unsigned long long>(h.sum), mean);
    } else {
      out += StringPrintf("%-52s %s\n", Labeled(s.name, s.labels).c_str(),
                          FormatValue(s.value).c_str());
    }
  }
  return out;
}

Status MetricsRegistry::ParseSamplesJson(const std::string& text,
                                         std::vector<MetricSample>* out) {
  JsonValue doc;
  FIELDREP_RETURN_IF_ERROR(JsonValue::Parse(text, &doc));
  if (!doc.is_object()) {
    return Status::InvalidArgument("metrics snapshot: not a JSON object");
  }
  const JsonValue* metrics = doc.Find("metrics");
  if (metrics == nullptr || !metrics->is_array()) {
    return Status::InvalidArgument("metrics snapshot: no \"metrics\" array");
  }
  for (size_t i = 0; i < metrics->size(); ++i) {
    const JsonValue& m = metrics->at(i);
    if (!m.is_object()) {
      return Status::InvalidArgument("metrics snapshot: non-object metric");
    }
    MetricSample sample;
    const JsonValue* name = m.Find("name");
    if (name == nullptr || !name->is_string()) {
      return Status::InvalidArgument("metrics snapshot: metric without name");
    }
    sample.name = name->as_string();
    if (const JsonValue* labels = m.Find("labels");
        labels != nullptr && labels->is_string()) {
      sample.labels = labels->as_string();
    }
    if (const JsonValue* help = m.Find("help");
        help != nullptr && help->is_string()) {
      sample.help = help->as_string();
    }
    std::string kind = "counter";
    if (const JsonValue* k = m.Find("kind");
        k != nullptr && k->is_string()) {
      kind = k->as_string();
    }
    if (kind == "gauge") {
      sample.kind = MetricKind::kGauge;
    } else if (kind == "histogram") {
      sample.kind = MetricKind::kHistogram;
    } else {
      sample.kind = MetricKind::kCounter;
    }
    if (sample.kind == MetricKind::kHistogram) {
      Histogram::Snapshot h;
      if (const JsonValue* count = m.Find("count");
          count != nullptr && count->is_number()) {
        h.count = count->as_u64();
      }
      if (const JsonValue* sum = m.Find("sum");
          sum != nullptr && sum->is_number()) {
        h.sum = sum->as_u64();
      }
      if (const JsonValue* buckets = m.Find("buckets");
          buckets != nullptr && buckets->is_array()) {
        for (size_t b = 0; b < buckets->size(); ++b) {
          const JsonValue& bucket = buckets->at(b);
          if (!bucket.is_object()) continue;
          const JsonValue* le = bucket.Find("le");
          const JsonValue* count = bucket.Find("count");
          uint64_t n = (count != nullptr && count->is_number())
                           ? count->as_u64()
                           : 0;
          if (le != nullptr && le->is_number()) {
            h.bounds.push_back(le->as_u64());
            h.buckets.push_back(n);
          } else {
            h.buckets.push_back(n);  // the +Inf bucket
          }
        }
      }
      // A well-formed snapshot has bounds.size() + 1 buckets; tolerate a
      // missing +Inf entry by padding.
      while (h.buckets.size() < h.bounds.size() + 1) h.buckets.push_back(0);
      sample.histogram = std::move(h);
    } else if (const JsonValue* value = m.Find("value");
               value != nullptr && value->is_number()) {
      sample.value = value->as_number();
    }
    out->push_back(std::move(sample));
  }
  return Status::OK();
}

}  // namespace fieldrep
