#ifndef FIELDREP_TELEMETRY_WORKLOAD_PROFILER_H_
#define FIELDREP_TELEMETRY_WORKLOAD_PROFILER_H_

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "common/annotated_mutex.h"
#include "common/json.h"
#include "telemetry/metrics.h"

namespace fieldrep {

/// Read-side and propagation activity of one replication path, keyed by
/// the path's catalog spec ("Emp1.dept.name").
struct PathActivity {
  uint64_t read_queries = 0;  ///< Queries that projected/tested the path.
  uint64_t derefs = 0;        ///< Row-level dereferences through the path.
  uint64_t replica_rows = 0;  ///< Dereferences answered from a replica.
  uint64_t join_rows = 0;     ///< Dereferences answered by functional joins.
  uint64_t propagations = 0;  ///< Terminal updates propagated through it.
  uint64_t heads_touched = 0; ///< Head replica slots rewritten.
};

/// Update-side activity of one attribute, keyed "Set.attr".
struct FieldActivity {
  uint64_t updates = 0;       ///< UpdateField calls on the attribute.
  uint64_t propagations = 0;  ///< Updates that triggered replica fan-out.
};

/// \brief Snapshot of the profiler: the workload trace the §6 cost model
/// (and the ROADMAP's replication-tuning advisor) takes as input —
/// per-path dereference counts and per-field update/propagation rates,
/// in the catalog's own terms.
struct WorkloadProfile {
  std::map<std::string, PathActivity> paths;
  std::map<std::string, FieldActivity> fields;

  JsonValue ToJson() const;
  std::string ToString() const;
};

/// \brief Accumulates the workload profile. Recording is mutex-striped
/// per call but amortized: the executor records once per (query,
/// projection) with the row count, not once per row, so the lock is off
/// every per-object hot path. Thread-safe against concurrent readers and
/// the propagating writer.
class WorkloadProfiler {
 public:
  WorkloadProfiler() = default;
  WorkloadProfiler(const WorkloadProfiler&) = delete;
  WorkloadProfiler& operator=(const WorkloadProfiler&) = delete;

  /// A read query resolved `rows` values through `spec`; answered from a
  /// replica (`from_replica`) or by functional joins.
  void RecordPathRead(const std::string& spec, bool from_replica,
                      uint64_t rows);

  /// An update hit attribute "Set.attr"; `propagated` when replicas
  /// fanned out (or were queued) because of it.
  void RecordFieldUpdate(const std::string& field, bool propagated);

  /// A propagation through `spec` rewrote `heads` head slots.
  void RecordPropagation(const std::string& spec, uint64_t heads);

  WorkloadProfile Snapshot() const;
  void Reset();

  /// Registry collector: emits the per-path / per-field activity as
  /// labeled samples (dynamic label sets).
  void CollectMetrics(std::vector<MetricSample>* out) const;

 private:
  /// kProfiler is near-leaf: recording call sites hold engine locks
  /// (the writer mutex during propagation), and the profiler calls
  /// nothing back.
  mutable Mutex mu_{LockRank::kProfiler, "workload_profiler.mu"};
  WorkloadProfile profile_ GUARDED_BY(mu_);
};

}  // namespace fieldrep

#endif  // FIELDREP_TELEMETRY_WORKLOAD_PROFILER_H_
