#include "telemetry/workload_profiler.h"

#include "common/strings.h"

namespace fieldrep {

JsonValue WorkloadProfile::ToJson() const {
  JsonValue out = JsonValue::Object();
  JsonValue path_list = JsonValue::Array();
  for (const auto& [spec, a] : paths) {
    JsonValue p = JsonValue::Object();
    p.Set("path", JsonValue::Str(spec));
    p.Set("read_queries", JsonValue::Number(a.read_queries));
    p.Set("derefs", JsonValue::Number(a.derefs));
    p.Set("replica_rows", JsonValue::Number(a.replica_rows));
    p.Set("join_rows", JsonValue::Number(a.join_rows));
    p.Set("propagations", JsonValue::Number(a.propagations));
    p.Set("heads_touched", JsonValue::Number(a.heads_touched));
    path_list.Append(std::move(p));
  }
  out.Set("paths", std::move(path_list));
  JsonValue field_list = JsonValue::Array();
  for (const auto& [field, a] : fields) {
    JsonValue f = JsonValue::Object();
    f.Set("field", JsonValue::Str(field));
    f.Set("updates", JsonValue::Number(a.updates));
    f.Set("propagations", JsonValue::Number(a.propagations));
    field_list.Append(std::move(f));
  }
  out.Set("fields", std::move(field_list));
  return out;
}

std::string WorkloadProfile::ToString() const {
  std::string out = "workload profile\n";
  for (const auto& [spec, a] : paths) {
    out += StringPrintf(
        "  path %-32s queries=%llu derefs=%llu replica=%llu join=%llu "
        "props=%llu heads=%llu\n",
        spec.c_str(), static_cast<unsigned long long>(a.read_queries),
        static_cast<unsigned long long>(a.derefs),
        static_cast<unsigned long long>(a.replica_rows),
        static_cast<unsigned long long>(a.join_rows),
        static_cast<unsigned long long>(a.propagations),
        static_cast<unsigned long long>(a.heads_touched));
  }
  for (const auto& [field, a] : fields) {
    out += StringPrintf("  field %-31s updates=%llu propagations=%llu\n",
                        field.c_str(),
                        static_cast<unsigned long long>(a.updates),
                        static_cast<unsigned long long>(a.propagations));
  }
  return out;
}

void WorkloadProfiler::RecordPathRead(const std::string& spec,
                                      bool from_replica, uint64_t rows) {
  MutexLock lock(mu_);
  PathActivity& a = profile_.paths[spec];
  ++a.read_queries;
  a.derefs += rows;
  if (from_replica) {
    a.replica_rows += rows;
  } else {
    a.join_rows += rows;
  }
}

void WorkloadProfiler::RecordFieldUpdate(const std::string& field,
                                         bool propagated) {
  MutexLock lock(mu_);
  FieldActivity& a = profile_.fields[field];
  ++a.updates;
  if (propagated) ++a.propagations;
}

void WorkloadProfiler::RecordPropagation(const std::string& spec,
                                         uint64_t heads) {
  MutexLock lock(mu_);
  PathActivity& a = profile_.paths[spec];
  ++a.propagations;
  a.heads_touched += heads;
}

WorkloadProfile WorkloadProfiler::Snapshot() const {
  MutexLock lock(mu_);
  return profile_;
}

void WorkloadProfiler::Reset() {
  MutexLock lock(mu_);
  profile_ = WorkloadProfile();
}

void WorkloadProfiler::CollectMetrics(std::vector<MetricSample>* out) const {
  WorkloadProfile profile = Snapshot();
  auto add = [out](const char* name, const std::string& labels,
                   uint64_t value) {
    MetricSample s;
    s.name = name;
    s.labels = labels;
    s.kind = MetricKind::kCounter;
    s.value = static_cast<double>(value);
    out->push_back(std::move(s));
  };
  for (const auto& [spec, a] : profile.paths) {
    std::string labels = "path=\"" + spec + "\"";
    add("fieldrep_path_read_queries_total", labels, a.read_queries);
    add("fieldrep_path_derefs_total", labels, a.derefs);
    add("fieldrep_path_replica_rows_total", labels, a.replica_rows);
    add("fieldrep_path_join_rows_total", labels, a.join_rows);
    add("fieldrep_path_propagations_total", labels, a.propagations);
    add("fieldrep_path_heads_touched_total", labels, a.heads_touched);
  }
  for (const auto& [field, a] : profile.fields) {
    std::string labels = "field=\"" + field + "\"";
    add("fieldrep_field_updates_total", labels, a.updates);
    add("fieldrep_field_propagations_total", labels, a.propagations);
  }
}

}  // namespace fieldrep
