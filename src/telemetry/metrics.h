#ifndef FIELDREP_TELEMETRY_METRICS_H_
#define FIELDREP_TELEMETRY_METRICS_H_

#include <atomic>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "common/annotated_mutex.h"
#include "common/status.h"

namespace fieldrep {

class JsonValue;

/// \brief A monotone event counter. Relaxed atomics, the `AtomicIoStats`
/// discipline: each increment is an independent event, never a
/// synchronization point, so counters are exact when the engine is
/// quiesced and monotone mid-flight — and cheap enough to stay on in
/// release builds.
class Counter {
 public:
  void Increment(uint64_t n = 1) {
    value_.fetch_add(n, std::memory_order_relaxed);
  }
  uint64_t value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<uint64_t> value_{0};
};

/// \brief A point-in-time signed level (queue depth, cached pages).
class Gauge {
 public:
  void Set(int64_t v) { value_.store(v, std::memory_order_relaxed); }
  void Add(int64_t d) { value_.fetch_add(d, std::memory_order_relaxed); }
  int64_t value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<int64_t> value_{0};
};

/// \brief A fixed-bucket histogram: cumulative-style exposition, relaxed
/// atomic buckets. Bucket i counts observations <= bounds[i]; one extra
/// bucket counts the +Inf overflow. Observations also accumulate into
/// `sum`/`count`, so mean latency falls out of any snapshot.
class Histogram {
 public:
  explicit Histogram(std::vector<uint64_t> upper_bounds);

  /// The default latency ladder: 1 µs .. ~17 s, powers of four, in ns.
  static std::vector<uint64_t> LatencyBoundsNs();

  void Observe(uint64_t value);

  struct Snapshot {
    std::vector<uint64_t> bounds;  ///< Upper bounds; buckets has one more.
    std::vector<uint64_t> buckets; ///< Per-bucket (non-cumulative) counts.
    uint64_t count = 0;
    uint64_t sum = 0;
  };
  Snapshot TakeSnapshot() const;

 private:
  std::vector<uint64_t> bounds_;
  std::unique_ptr<std::atomic<uint64_t>[]> buckets_;
  std::atomic<uint64_t> count_{0};
  std::atomic<uint64_t> sum_{0};
};

enum class MetricKind { kCounter, kGauge, kHistogram };

/// One rendered data point: everything the expositions need, detached
/// from the live instrument that produced it.
struct MetricSample {
  std::string name;
  /// Pre-rendered Prometheus label body, e.g. `shard="3"` (no braces);
  /// empty for unlabeled metrics.
  std::string labels;
  std::string help;  ///< May be empty for collector-produced samples.
  MetricKind kind = MetricKind::kCounter;
  double value = 0;  ///< Counter / gauge value; unused for histograms.
  std::optional<Histogram::Snapshot> histogram;
};

/// \brief The engine's metric naming and exposition surface.
///
/// Components either own registry-allocated instruments (AddCounter /
/// AddGauge / AddHistogram hand out stable pointers the caller bumps on
/// its hot path) or keep their existing relaxed-atomic counters and
/// expose them through read-only callbacks/collectors sampled at render
/// time. Collect() gathers every instrument into MetricSamples, and the
/// two expositions — Prometheus text and JSON — are pure functions of
/// that sample list, shared with `fieldrep_stats --snapshot` which
/// re-renders parsed dumps.
///
/// Registration is mutex-guarded and expected at attach/setup time;
/// instrument updates and Collect() are thread-safe against each other
/// (relaxed reads of live counters).
class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  /// Instrument allocation. The returned pointer is owned by the registry
  /// and stable for its lifetime.
  Counter* AddCounter(const std::string& name, const std::string& help,
                      const std::string& labels = "");
  Gauge* AddGauge(const std::string& name, const std::string& help,
                  const std::string& labels = "");
  Histogram* AddHistogram(const std::string& name, const std::string& help,
                          std::vector<uint64_t> upper_bounds,
                          const std::string& labels = "");

  /// A counter/gauge whose value is computed at render time — the bridge
  /// to pre-existing relaxed-atomic counters (IoStats, WalStats, pool
  /// gauges) without double bookkeeping.
  void AddCallback(const std::string& name, const std::string& help,
                   MetricKind kind, const std::string& labels,
                   std::function<double()> fn);

  /// A render-time producer of arbitrarily many samples — for dynamic
  /// label sets (per-shard, per-replication-path) whose cardinality is
  /// not known at registration.
  void AddCollector(std::function<void(std::vector<MetricSample>*)> fn);

  /// Samples every instrument, callback, and collector.
  std::vector<MetricSample> Collect() const;

  std::string RenderPrometheus() const { return SamplesToPrometheus(Collect()); }
  std::string RenderJson() const { return SamplesToJson(Collect()); }
  std::string RenderText() const { return SamplesToText(Collect()); }

  // --- Pure exposition functions (shared with snapshot re-rendering) ---------

  static std::string SamplesToPrometheus(const std::vector<MetricSample>& s);
  static std::string SamplesToJson(const std::vector<MetricSample>& s);
  static std::string SamplesToText(const std::vector<MetricSample>& s);
  /// Builds the JSON document SamplesToJson serializes.
  static JsonValue SamplesToJsonValue(const std::vector<MetricSample>& s);
  /// Inverse of SamplesToJson: parses a dumped snapshot back into samples.
  static Status ParseSamplesJson(const std::string& text,
                                 std::vector<MetricSample>* out);

 private:
  struct Instrument {
    std::string name;
    std::string labels;
    std::string help;
    MetricKind kind = MetricKind::kCounter;
    // Exactly one of these is set.
    std::unique_ptr<Counter> counter;
    std::unique_ptr<Gauge> gauge;
    std::unique_ptr<Histogram> histogram;
    std::function<double()> callback;
  };

  /// kMetricsRegistry ranks just above the server lock and below every
  /// engine lock: Collect() invokes collectors that read WAL stats and
  /// pool counters (taking log/shard/profiler locks) while mu_ is held.
  mutable Mutex mu_{LockRank::kMetricsRegistry, "metrics_registry.mu"};
  /// deque: instrument addresses stay stable across registrations.
  std::deque<Instrument> instruments_ GUARDED_BY(mu_);
  std::vector<std::function<void(std::vector<MetricSample>*)>> collectors_
      GUARDED_BY(mu_);
};

}  // namespace fieldrep

#endif  // FIELDREP_TELEMETRY_METRICS_H_
