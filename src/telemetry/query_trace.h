#ifndef FIELDREP_TELEMETRY_QUERY_TRACE_H_
#define FIELDREP_TELEMETRY_QUERY_TRACE_H_

#include <chrono>
#include <cstdint>
#include <string>
#include <vector>

#include "common/json.h"
#include "storage/io_stats.h"

namespace fieldrep {

class BufferPool;

/// Monotonic wall clock in nanoseconds (the engine's timing base).
inline uint64_t TelemetryNowNs() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

/// One stage of a traced query: its wall time, the pool-level IoStats
/// delta it caused, and how many items (OIDs, pending entries, rows) it
/// processed.
struct QueryStageTrace {
  std::string name;
  uint64_t wall_ns = 0;
  IoStats io;
  uint64_t items = 0;
};

/// \brief EXPLAIN ANALYZE for one query.
///
/// Filled by Executor::ExecuteRead / ExecuteUpdate when the caller passes
/// a trace object (Database::Retrieve/Replace overloads, or implicitly
/// when `Options::slow_query_ns` arms the slow-query log). Stage
/// snapshots telescope: each stage's `io` is the pool counter delta
/// between consecutive boundaries, so the per-stage deltas always sum to
/// the query's total `io` exactly.
struct QueryTrace {
  enum class Kind { kRead, kUpdate };

  Kind kind = Kind::kRead;
  std::string set_name;
  uint64_t wall_ns = 0;
  IoStats io;  ///< Pool-level delta across the whole query.
  uint64_t rows = 0;
  bool used_index = false;
  /// Page-aligned ranges the head stage fanned out over (0 = serial plan).
  uint64_t parallel_ranges = 0;
  /// Per-projection strategy ("attr", "replica-inplace", "replica-separate",
  /// "join"), aligned with the query's projections; for updates, the
  /// assigned attribute names.
  std::vector<std::string> strategies;
  std::vector<QueryStageTrace> stages;

  /// Buffer hit ratio of the whole query (hits / fetches; 1.0 when the
  /// query touched no pages).
  double hit_ratio() const {
    return io.fetches == 0
               ? 1.0
               : static_cast<double>(io.hits) /
                     static_cast<double>(io.fetches);
  }

  /// One-line form — the slow-query log format.
  std::string Summary() const;
  /// Multi-line EXPLAIN ANALYZE rendering.
  std::string ToString() const;
  JsonValue ToJson() const;
};

/// \brief Stage bracketing helper for the executor.
///
/// Construction snapshots the pool counters and the clock; each
/// EndStage() closes the current bracket (recording the delta since the
/// previous boundary) and opens the next; Finish() stamps the query-level
/// totals. A null trace makes every call a no-op, so untraced queries pay
/// nothing. Stage boundaries must be quiesced points (the executor's
/// stages end at RunBatch barriers), or the deltas would smear across
/// stages — they would still telescope to the correct total.
class StageTracer {
 public:
  StageTracer(QueryTrace* trace, BufferPool* pool);

  bool active() const { return trace_ != nullptr; }

  /// Closes the current stage bracket as `name` with `items` processed.
  void EndStage(const std::string& name, uint64_t items = 0);

  /// Stamps query totals (wall time + total IoStats delta).
  void Finish();

 private:
  IoStats PoolStats() const;

  QueryTrace* trace_ = nullptr;
  BufferPool* pool_ = nullptr;
  uint64_t query_start_ns_ = 0;
  IoStats query_start_io_;
  uint64_t stage_start_ns_ = 0;
  IoStats stage_start_io_;
};

}  // namespace fieldrep

#endif  // FIELDREP_TELEMETRY_QUERY_TRACE_H_
