#include "telemetry/query_trace.h"

#include "common/strings.h"
#include "storage/buffer_pool.h"

namespace fieldrep {

namespace {
const char* KindName(QueryTrace::Kind kind) {
  return kind == QueryTrace::Kind::kRead ? "read" : "update";
}
}  // namespace

std::string QueryTrace::Summary() const {
  std::string strat = JoinStrings(strategies, ",");
  return StringPrintf(
      "%s %s: %.3f ms rows=%llu io=%llu (reads=%llu writes=%llu "
      "hit_ratio=%.2f) index=%d ranges=%llu [%s]",
      KindName(kind), set_name.c_str(), wall_ns / 1e6,
      static_cast<unsigned long long>(rows),
      static_cast<unsigned long long>(io.TotalIo()),
      static_cast<unsigned long long>(io.disk_reads),
      static_cast<unsigned long long>(io.disk_writes), hit_ratio(),
      used_index ? 1 : 0, static_cast<unsigned long long>(parallel_ranges),
      strat.c_str());
}

std::string QueryTrace::ToString() const {
  std::string out = StringPrintf(
      "QueryTrace(%s %s)\n  total: %.3f ms, %s\n  rows=%llu index=%d "
      "hit_ratio=%.2f parallel_ranges=%llu\n",
      KindName(kind), set_name.c_str(), wall_ns / 1e6,
      io.ToString().c_str(), static_cast<unsigned long long>(rows),
      used_index ? 1 : 0, hit_ratio(),
      static_cast<unsigned long long>(parallel_ranges));
  if (!strategies.empty()) {
    out += "  strategies: " + JoinStrings(strategies, ", ") + '\n';
  }
  for (const QueryStageTrace& stage : stages) {
    out += StringPrintf(
        "  stage %-10s %9.3f ms  items=%-8llu fetches=%llu hits=%llu "
        "reads=%llu writes=%llu\n",
        stage.name.c_str(), stage.wall_ns / 1e6,
        static_cast<unsigned long long>(stage.items),
        static_cast<unsigned long long>(stage.io.fetches),
        static_cast<unsigned long long>(stage.io.hits),
        static_cast<unsigned long long>(stage.io.disk_reads),
        static_cast<unsigned long long>(stage.io.disk_writes));
  }
  return out;
}

namespace {
JsonValue IoToJson(const IoStats& io) {
  JsonValue out = JsonValue::Object();
#define FIELDREP_IO_JSON(field) out.Set(#field, JsonValue::Number(io.field));
  FIELDREP_IO_STATS_FIELDS(FIELDREP_IO_JSON)
#undef FIELDREP_IO_JSON
  return out;
}
}  // namespace

JsonValue QueryTrace::ToJson() const {
  JsonValue out = JsonValue::Object();
  out.Set("kind", JsonValue::Str(KindName(kind)));
  out.Set("set", JsonValue::Str(set_name));
  out.Set("wall_ns", JsonValue::Number(wall_ns));
  out.Set("rows", JsonValue::Number(rows));
  out.Set("used_index", JsonValue::Bool(used_index));
  out.Set("hit_ratio", JsonValue::Number(hit_ratio()));
  out.Set("parallel_ranges", JsonValue::Number(parallel_ranges));
  out.Set("io", IoToJson(io));
  JsonValue strat = JsonValue::Array();
  for (const std::string& s : strategies) strat.Append(JsonValue::Str(s));
  out.Set("strategies", std::move(strat));
  JsonValue stage_list = JsonValue::Array();
  for (const QueryStageTrace& stage : stages) {
    JsonValue s = JsonValue::Object();
    s.Set("name", JsonValue::Str(stage.name));
    s.Set("wall_ns", JsonValue::Number(stage.wall_ns));
    s.Set("items", JsonValue::Number(stage.items));
    s.Set("io", IoToJson(stage.io));
    stage_list.Append(std::move(s));
  }
  out.Set("stages", std::move(stage_list));
  return out;
}

StageTracer::StageTracer(QueryTrace* trace, BufferPool* pool)
    : trace_(trace), pool_(pool) {
  if (trace_ == nullptr) return;
  query_start_ns_ = TelemetryNowNs();
  query_start_io_ = PoolStats();
  stage_start_ns_ = query_start_ns_;
  stage_start_io_ = query_start_io_;
}

IoStats StageTracer::PoolStats() const {
  return pool_ != nullptr ? pool_->stats() : IoStats();
}

void StageTracer::EndStage(const std::string& name, uint64_t items) {
  if (trace_ == nullptr) return;
  const uint64_t now = TelemetryNowNs();
  const IoStats io = PoolStats();
  QueryStageTrace stage;
  stage.name = name;
  stage.wall_ns = now - stage_start_ns_;
  stage.io = io - stage_start_io_;
  stage.items = items;
  trace_->stages.push_back(std::move(stage));
  stage_start_ns_ = now;
  stage_start_io_ = io;
}

void StageTracer::Finish() {
  if (trace_ == nullptr) return;
  trace_->wall_ns = TelemetryNowNs() - query_start_ns_;
  trace_->io = PoolStats() - query_start_io_;
}

}  // namespace fieldrep
