#include "objects/object_set.h"

#include "common/strings.h"

namespace fieldrep {

ObjectSet::ObjectSet(BufferPool* pool, FileId file_id, std::string name,
                     const TypeDescriptor* type)
    : pool_(pool), file_(pool, file_id), name_(std::move(name)), type_(type) {
  (void)pool_;
}

Status ObjectSet::ValidateFields(const Object& object) const {
  if (object.fields().size() != type_->attribute_count()) {
    return Status::InvalidArgument(StringPrintf(
        "set %s: object has %zu fields, type %s has %zu", name_.c_str(),
        object.fields().size(), type_->name().c_str(),
        type_->attribute_count()));
  }
  for (size_t i = 0; i < object.fields().size(); ++i) {
    if (!object.field(i).MatchesType(type_->attribute(i).type)) {
      return Status::InvalidArgument(
          "set " + name_ + ": field " + type_->attribute(i).name +
          " value " + object.field(i).ToString() + " does not match " +
          type_->attribute(i).ToString());
    }
  }
  return Status::OK();
}

Status ObjectSet::Insert(const Object& object, Oid* oid) {
  FIELDREP_RETURN_IF_ERROR(ValidateFields(object));
  Object stamped = object;
  stamped.set_type_tag(type_->type_tag());
  std::string payload;
  FIELDREP_RETURN_IF_ERROR(stamped.Serialize(*type_, &payload));
  return file_.Insert(payload, oid);
}

Status ObjectSet::Read(const Oid& oid, Object* object) const {
  std::string payload;
  FIELDREP_RETURN_IF_ERROR(file_.Read(oid, &payload));
  return object->Deserialize(*type_, payload);
}

Status ObjectSet::Write(const Oid& oid, const Object& object) {
  FIELDREP_RETURN_IF_ERROR(ValidateFields(object));
  Object stamped = object;
  stamped.set_type_tag(type_->type_tag());
  std::string payload;
  FIELDREP_RETURN_IF_ERROR(stamped.Serialize(*type_, &payload));
  return file_.Update(oid, payload);
}

Status ObjectSet::Delete(const Oid& oid) { return file_.Delete(oid); }

Status ObjectSet::Scan(
    const std::function<bool(const Oid&, const Object&)>& fn) const {
  Status decode_status;
  Status s = file_.Scan([&](const Oid& oid, const std::string& payload) {
    Object object;
    decode_status = object.Deserialize(*type_, payload);
    if (!decode_status.ok()) return false;
    return fn(oid, object);
  });
  FIELDREP_RETURN_IF_ERROR(decode_status);
  return s;
}

Result<Value> ObjectSet::GetField(const Object& object, int attr_index) const {
  if (attr_index < 0 ||
      static_cast<size_t>(attr_index) >= type_->attribute_count()) {
    return Status::InvalidArgument(
        StringPrintf("attribute index %d out of range for type %s",
                     attr_index, type_->name().c_str()));
  }
  return object.field(attr_index).CoerceTo(type_->attribute(attr_index));
}

}  // namespace fieldrep
