#ifndef FIELDREP_OBJECTS_OBJECT_H_
#define FIELDREP_OBJECTS_OBJECT_H_

#include <cstdint>
#include <string>
#include <vector>

#include "catalog/type.h"
#include "common/status.h"
#include "objects/value.h"
#include "storage/oid.h"

namespace fieldrep {

/// \brief A (link-OID, link-ID) pair stored in an object that lies on a
/// replication path (Section 4.1.3), optionally with the link object
/// inlined (Section 4.3.1).
///
/// The link ID identifies which link of which replication path(s) this
/// object belongs to; the link OID locates the object's link object in the
/// link set. When the link object would hold at most a few OIDs, it is
/// eliminated and its member OIDs are stored here directly (`inlined`).
struct LinkRef {
  uint8_t link_id = 0;
  Oid link_oid;               ///< invalid when inlined
  bool inlined = false;
  std::vector<Oid> inline_oids;  ///< members, only when inlined

  friend bool operator==(const LinkRef& a, const LinkRef& b) {
    return a.link_id == b.link_id && a.link_oid == b.link_oid &&
           a.inlined == b.inlined && a.inline_oids == b.inline_oids;
  }
};

/// \brief A replicated-value slot: the hidden field(s) added to objects of
/// the head set by in-place replication (Section 4). One slot per
/// replication path; `values` holds one entry per replicated terminal
/// field (several for `.all` paths).
struct ReplicaValueSlot {
  uint16_t path_id = 0;
  std::vector<Value> values;

  friend bool operator==(const ReplicaValueSlot& a,
                         const ReplicaValueSlot& b) {
    return a.path_id == b.path_id && a.values == b.values;
  }
};

/// \brief Separate-replication bookkeeping (Section 5).
///
/// In head-set objects: `replica_oid` locates the shared S' record holding
/// the replicated values (refcount unused). In terminal-set objects:
/// `replica_oid` is the canonical pointer to the S' record and `refcount`
/// counts referencing head objects, as in the paper's description of O1
/// ("O1 contains R1's OID, a reference count for R1, and a tag").
struct ReplicaRefSlot {
  uint16_t path_id = 0;
  Oid replica_oid;
  uint32_t refcount = 0;

  friend bool operator==(const ReplicaRefSlot& a, const ReplicaRefSlot& b) {
    return a.path_id == b.path_id && a.replica_oid == b.replica_oid &&
           a.refcount == b.refcount;
  }
};

/// \brief An object: a type tag, the logical attribute values of its type,
/// and a hidden section maintained by the replication machinery.
///
/// The hidden section implements the paper's "structural changes ...
/// handled through subtyping" (Section 4): replica value slots, link refs,
/// and replica ref slots are invisible at the query-language level but are
/// serialized with the object.
class Object {
 public:
  Object() = default;
  Object(uint16_t type_tag, std::vector<Value> fields)
      : type_tag_(type_tag), fields_(std::move(fields)) {}

  uint16_t type_tag() const { return type_tag_; }
  void set_type_tag(uint16_t tag) { type_tag_ = tag; }

  const std::vector<Value>& fields() const { return fields_; }
  std::vector<Value>& mutable_fields() { return fields_; }
  const Value& field(size_t i) const { return fields_[i]; }
  void set_field(size_t i, Value v) { fields_[i] = std::move(v); }

  // --- Hidden section -----------------------------------------------------

  const std::vector<LinkRef>& link_refs() const { return link_refs_; }
  const std::vector<ReplicaValueSlot>& replica_values() const {
    return replica_values_;
  }
  const std::vector<ReplicaRefSlot>& replica_refs() const {
    return replica_refs_;
  }

  /// Returns the LinkRef for `link_id`, or nullptr.
  const LinkRef* FindLinkRef(uint8_t link_id) const;
  LinkRef* FindLinkRef(uint8_t link_id);
  /// Inserts or replaces the LinkRef for `ref.link_id`.
  void SetLinkRef(LinkRef ref);
  /// Removes the LinkRef for `link_id`; false if absent.
  bool RemoveLinkRef(uint8_t link_id);

  const ReplicaValueSlot* FindReplicaValues(uint16_t path_id) const;
  void SetReplicaValues(uint16_t path_id, std::vector<Value> values);
  bool RemoveReplicaValues(uint16_t path_id);

  const ReplicaRefSlot* FindReplicaRef(uint16_t path_id) const;
  ReplicaRefSlot* FindReplicaRef(uint16_t path_id);
  void SetReplicaRef(ReplicaRefSlot slot);
  bool RemoveReplicaRef(uint16_t path_id);

  bool HasHiddenState() const {
    return !link_refs_.empty() || !replica_values_.empty() ||
           !replica_refs_.empty();
  }

  /// Serializes the object for storage. Fields are encoded per `type`
  /// (fixed layout); the hidden section follows with self-describing tags.
  /// Total overhead beyond field bytes is the 16-byte object header, which
  /// together with the 4-byte page slot matches the paper's h = 20.
  Status Serialize(const TypeDescriptor& type, std::string* out) const;

  /// Inverse of Serialize. `type` must match the encoded type tag.
  Status Deserialize(const TypeDescriptor& type, const std::string& payload);

  /// The serialized size of an object with `type`'s fixed-width fields and
  /// no hidden state (useful for sizing workloads against the cost model).
  static uint32_t FixedSerializedSize(const TypeDescriptor& type);

  std::string ToString(const TypeDescriptor& type) const;

  friend bool operator==(const Object& a, const Object& b) {
    return a.type_tag_ == b.type_tag_ && a.fields_ == b.fields_ &&
           a.link_refs_ == b.link_refs_ &&
           a.replica_values_ == b.replica_values_ &&
           a.replica_refs_ == b.replica_refs_;
  }

 private:
  uint16_t type_tag_ = 0;
  std::vector<Value> fields_;
  std::vector<LinkRef> link_refs_;
  std::vector<ReplicaValueSlot> replica_values_;
  std::vector<ReplicaRefSlot> replica_refs_;
};

}  // namespace fieldrep

#endif  // FIELDREP_OBJECTS_OBJECT_H_
