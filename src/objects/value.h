#ifndef FIELDREP_OBJECTS_VALUE_H_
#define FIELDREP_OBJECTS_VALUE_H_

#include <cstdint>
#include <string>
#include <variant>

#include "catalog/type.h"
#include "common/status.h"
#include "storage/oid.h"

namespace fieldrep {

/// \brief A dynamically-typed attribute value: null, int32, int64, double,
/// string (also used for char[n] fields), or an object reference.
class Value {
 public:
  Value() : v_(std::monostate{}) {}
  explicit Value(int32_t v) : v_(v) {}
  explicit Value(int64_t v) : v_(v) {}
  explicit Value(double v) : v_(v) {}
  explicit Value(std::string v) : v_(std::move(v)) {}
  explicit Value(const char* v) : v_(std::string(v)) {}
  explicit Value(Oid v) : v_(v) {}

  static Value Null() { return Value(); }

  bool is_null() const { return std::holds_alternative<std::monostate>(v_); }
  bool is_int32() const { return std::holds_alternative<int32_t>(v_); }
  bool is_int64() const { return std::holds_alternative<int64_t>(v_); }
  bool is_double() const { return std::holds_alternative<double>(v_); }
  bool is_string() const { return std::holds_alternative<std::string>(v_); }
  bool is_ref() const { return std::holds_alternative<Oid>(v_); }

  int32_t as_int32() const { return std::get<int32_t>(v_); }
  int64_t as_int64() const { return std::get<int64_t>(v_); }
  double as_double() const { return std::get<double>(v_); }
  const std::string& as_string() const { return std::get<std::string>(v_); }
  Oid as_ref() const { return std::get<Oid>(v_); }

  /// Any integer value widened to int64 (int32 or int64); fails on other
  /// kinds.
  Result<int64_t> AsInteger() const;

  /// True if this value's kind can be stored in an attribute of `type`
  /// (integers widen/narrow between int32 and int64 if in range; strings
  /// match kChar and kString; refs match kRef; null matches anything).
  bool MatchesType(FieldType type) const;

  /// Returns the value coerced to exactly `type` (e.g. truncating/padding a
  /// kChar, widening an int32). Fails on kind mismatch or overflow.
  Result<Value> CoerceTo(const AttributeDescriptor& attr) const;

  std::string ToString() const;

  friend bool operator==(const Value& a, const Value& b) {
    return a.v_ == b.v_;
  }
  friend bool operator!=(const Value& a, const Value& b) { return !(a == b); }

 private:
  std::variant<std::monostate, int32_t, int64_t, double, std::string, Oid> v_;
};

/// Encodes `value` as the byte representation of attribute `attr`,
/// appending to `out`. kChar values are padded/truncated to char_length.
Status EncodeValue(const AttributeDescriptor& attr, const Value& value,
                   std::string* out);

/// Decodes one value of attribute `attr` from `reader`.
class ByteReader;
Status DecodeValue(const AttributeDescriptor& attr, ByteReader* reader,
                   Value* value);

/// Encodes a Value with a self-describing 1-byte kind tag (used in hidden
/// replica slots, which have no backing attribute descriptor).
void EncodeTaggedValue(const Value& value, std::string* out);
Status DecodeTaggedValue(ByteReader* reader, Value* value);

}  // namespace fieldrep

#endif  // FIELDREP_OBJECTS_VALUE_H_
