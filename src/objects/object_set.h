#ifndef FIELDREP_OBJECTS_OBJECT_SET_H_
#define FIELDREP_OBJECTS_OBJECT_SET_H_

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "catalog/type.h"
#include "common/status.h"
#include "objects/object.h"
#include "storage/record_file.h"

namespace fieldrep {

/// \brief A typed, named top-level set stored as one heap file
/// (Section 2.2), e.g. `create Emp1: {own ref EMP}`.
///
/// ObjectSet validates logical fields against the set's type and carries
/// the hidden section opaquely. Mutations performed directly through this
/// class bypass replication maintenance — use Database's insert/update/
/// delete entry points (or the ReplicationManager hooks) for sets that
/// participate in replication paths.
class ObjectSet {
 public:
  /// \param pool    shared buffer pool (not owned)
  /// \param file_id catalog-assigned file id
  /// \param name    set name
  /// \param type    element type (not owned; outlives the set)
  ObjectSet(BufferPool* pool, FileId file_id, std::string name,
            const TypeDescriptor* type);

  ObjectSet(const ObjectSet&) = delete;
  ObjectSet& operator=(const ObjectSet&) = delete;

  const std::string& name() const { return name_; }
  const TypeDescriptor& type() const { return *type_; }
  RecordFile& file() { return file_; }
  const RecordFile& file() const { return file_; }
  uint64_t size() const { return file_.record_count(); }

  /// Validates and stores `object`, returning its OID. The object's type
  /// tag is stamped from the set's type.
  Status Insert(const Object& object, Oid* oid);

  /// Loads the object at `oid`.
  Status Read(const Oid& oid, Object* object) const;

  /// Replaces the whole object at `oid` (logical fields + hidden section).
  Status Write(const Oid& oid, const Object& object);

  /// Removes the object at `oid`.
  Status Delete(const Oid& oid);

  /// Calls `fn` for every object in physical order; stops early on false.
  Status Scan(const std::function<bool(const Oid&, const Object&)>& fn) const;

  /// Materializes a Value for `object.field(attr_index)` coerced to the
  /// attribute type (convenience for the executor).
  Result<Value> GetField(const Object& object, int attr_index) const;

 private:
  Status ValidateFields(const Object& object) const;

  BufferPool* pool_;
  RecordFile file_;
  std::string name_;
  const TypeDescriptor* type_;
};

}  // namespace fieldrep

#endif  // FIELDREP_OBJECTS_OBJECT_SET_H_
