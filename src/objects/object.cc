#include "objects/object.h"

#include <algorithm>

#include "common/bytes.h"
#include "common/strings.h"

namespace fieldrep {

namespace {
// Hidden-item kind tags in the serialized form.
enum HiddenKind : uint8_t {
  kHiddenLinkRef = 1,
  kHiddenReplicaValues = 2,
  kHiddenReplicaRef = 3,
};

// Serialized object header:
//   u16 type_tag | u16 flags | u16 n_fields | u16 n_hidden |
//   u32 field_bytes | u32 reserved
constexpr uint32_t kObjectHeaderBytes = 16;
}  // namespace

const LinkRef* Object::FindLinkRef(uint8_t link_id) const {
  for (const LinkRef& ref : link_refs_) {
    if (ref.link_id == link_id) return &ref;
  }
  return nullptr;
}

LinkRef* Object::FindLinkRef(uint8_t link_id) {
  for (LinkRef& ref : link_refs_) {
    if (ref.link_id == link_id) return &ref;
  }
  return nullptr;
}

void Object::SetLinkRef(LinkRef ref) {
  for (LinkRef& existing : link_refs_) {
    if (existing.link_id == ref.link_id) {
      existing = std::move(ref);
      return;
    }
  }
  link_refs_.push_back(std::move(ref));
}

bool Object::RemoveLinkRef(uint8_t link_id) {
  auto it = std::find_if(
      link_refs_.begin(), link_refs_.end(),
      [link_id](const LinkRef& r) { return r.link_id == link_id; });
  if (it == link_refs_.end()) return false;
  link_refs_.erase(it);
  return true;
}

const ReplicaValueSlot* Object::FindReplicaValues(uint16_t path_id) const {
  for (const ReplicaValueSlot& slot : replica_values_) {
    if (slot.path_id == path_id) return &slot;
  }
  return nullptr;
}

void Object::SetReplicaValues(uint16_t path_id, std::vector<Value> values) {
  for (ReplicaValueSlot& slot : replica_values_) {
    if (slot.path_id == path_id) {
      slot.values = std::move(values);
      return;
    }
  }
  replica_values_.push_back({path_id, std::move(values)});
}

bool Object::RemoveReplicaValues(uint16_t path_id) {
  auto it = std::find_if(
      replica_values_.begin(), replica_values_.end(),
      [path_id](const ReplicaValueSlot& s) { return s.path_id == path_id; });
  if (it == replica_values_.end()) return false;
  replica_values_.erase(it);
  return true;
}

const ReplicaRefSlot* Object::FindReplicaRef(uint16_t path_id) const {
  for (const ReplicaRefSlot& slot : replica_refs_) {
    if (slot.path_id == path_id) return &slot;
  }
  return nullptr;
}

ReplicaRefSlot* Object::FindReplicaRef(uint16_t path_id) {
  for (ReplicaRefSlot& slot : replica_refs_) {
    if (slot.path_id == path_id) return &slot;
  }
  return nullptr;
}

void Object::SetReplicaRef(ReplicaRefSlot slot) {
  for (ReplicaRefSlot& existing : replica_refs_) {
    if (existing.path_id == slot.path_id) {
      existing = std::move(slot);
      return;
    }
  }
  replica_refs_.push_back(std::move(slot));
}

bool Object::RemoveReplicaRef(uint16_t path_id) {
  auto it = std::find_if(
      replica_refs_.begin(), replica_refs_.end(),
      [path_id](const ReplicaRefSlot& s) { return s.path_id == path_id; });
  if (it == replica_refs_.end()) return false;
  replica_refs_.erase(it);
  return true;
}

Status Object::Serialize(const TypeDescriptor& type, std::string* out) const {
  if (fields_.size() != type.attribute_count()) {
    return Status::InvalidArgument(StringPrintf(
        "object has %zu fields but type %s has %zu attributes",
        fields_.size(), type.name().c_str(), type.attribute_count()));
  }
  out->clear();
  std::string body;
  for (size_t i = 0; i < fields_.size(); ++i) {
    FIELDREP_RETURN_IF_ERROR(EncodeValue(type.attribute(i), fields_[i], &body));
  }
  uint32_t field_bytes = static_cast<uint32_t>(body.size());

  uint16_t n_hidden = 0;
  for (const LinkRef& ref : link_refs_) {
    body.push_back(static_cast<char>(kHiddenLinkRef));
    body.push_back(static_cast<char>(ref.link_id));
    body.push_back(static_cast<char>(ref.inlined ? 1 : 0));
    if (ref.inlined) {
      PutU16(&body, static_cast<uint16_t>(ref.inline_oids.size()));
      for (const Oid& oid : ref.inline_oids) PutU64(&body, oid.Packed());
    } else {
      PutU64(&body, ref.link_oid.Packed());
    }
    ++n_hidden;
  }
  for (const ReplicaValueSlot& slot : replica_values_) {
    body.push_back(static_cast<char>(kHiddenReplicaValues));
    PutU16(&body, slot.path_id);
    PutU16(&body, static_cast<uint16_t>(slot.values.size()));
    for (const Value& v : slot.values) EncodeTaggedValue(v, &body);
    ++n_hidden;
  }
  for (const ReplicaRefSlot& slot : replica_refs_) {
    body.push_back(static_cast<char>(kHiddenReplicaRef));
    PutU16(&body, slot.path_id);
    PutU64(&body, slot.replica_oid.Packed());
    PutU32(&body, slot.refcount);
    ++n_hidden;
  }

  PutU16(out, type_tag_);
  PutU16(out, 0);  // flags
  PutU16(out, static_cast<uint16_t>(fields_.size()));
  PutU16(out, n_hidden);
  PutU32(out, field_bytes);
  PutU32(out, 0);  // reserved
  out->append(body);
  return Status::OK();
}

Status Object::Deserialize(const TypeDescriptor& type,
                           const std::string& payload) {
  ByteReader reader(payload);
  uint16_t tag, flags, n_fields, n_hidden;
  uint32_t field_bytes, reserved;
  if (!reader.GetU16(&tag) || !reader.GetU16(&flags) ||
      !reader.GetU16(&n_fields) || !reader.GetU16(&n_hidden) ||
      !reader.GetU32(&field_bytes) || !reader.GetU32(&reserved)) {
    return Status::Corruption("truncated object header");
  }
  if (tag != type.type_tag()) {
    return Status::Corruption(StringPrintf(
        "object tagged %u but decoded with type %s (tag %u)", tag,
        type.name().c_str(), type.type_tag()));
  }
  if (n_fields != type.attribute_count()) {
    return Status::Corruption("field count mismatch");
  }
  type_tag_ = tag;
  fields_.clear();
  fields_.reserve(n_fields);
  for (uint16_t i = 0; i < n_fields; ++i) {
    Value v;
    FIELDREP_RETURN_IF_ERROR(DecodeValue(type.attribute(i), &reader, &v));
    fields_.push_back(std::move(v));
  }
  link_refs_.clear();
  replica_values_.clear();
  replica_refs_.clear();
  for (uint16_t i = 0; i < n_hidden; ++i) {
    std::string kind_byte;
    if (!reader.GetRaw(1, &kind_byte)) {
      return Status::Corruption("truncated hidden section");
    }
    switch (static_cast<HiddenKind>(kind_byte[0])) {
      case kHiddenLinkRef: {
        std::string b;
        if (!reader.GetRaw(2, &b)) {
          return Status::Corruption("truncated link ref");
        }
        LinkRef ref;
        ref.link_id = static_cast<uint8_t>(b[0]);
        ref.inlined = b[1] != 0;
        if (ref.inlined) {
          uint16_t count;
          if (!reader.GetU16(&count)) {
            return Status::Corruption("truncated inline link");
          }
          ref.inline_oids.reserve(count);
          for (uint16_t j = 0; j < count; ++j) {
            uint64_t packed;
            if (!reader.GetU64(&packed)) {
              return Status::Corruption("truncated inline link oid");
            }
            ref.inline_oids.push_back(Oid::FromPacked(packed));
          }
        } else {
          uint64_t packed;
          if (!reader.GetU64(&packed)) {
            return Status::Corruption("truncated link oid");
          }
          ref.link_oid = Oid::FromPacked(packed);
        }
        link_refs_.push_back(std::move(ref));
        break;
      }
      case kHiddenReplicaValues: {
        ReplicaValueSlot slot;
        uint16_t count;
        if (!reader.GetU16(&slot.path_id) || !reader.GetU16(&count)) {
          return Status::Corruption("truncated replica values");
        }
        slot.values.reserve(count);
        for (uint16_t j = 0; j < count; ++j) {
          Value v;
          FIELDREP_RETURN_IF_ERROR(DecodeTaggedValue(&reader, &v));
          slot.values.push_back(std::move(v));
        }
        replica_values_.push_back(std::move(slot));
        break;
      }
      case kHiddenReplicaRef: {
        ReplicaRefSlot slot;
        uint64_t packed;
        if (!reader.GetU16(&slot.path_id) || !reader.GetU64(&packed) ||
            !reader.GetU32(&slot.refcount)) {
          return Status::Corruption("truncated replica ref");
        }
        slot.replica_oid = Oid::FromPacked(packed);
        replica_refs_.push_back(std::move(slot));
        break;
      }
      default:
        return Status::Corruption("unknown hidden item kind");
    }
  }
  return Status::OK();
}

uint32_t Object::FixedSerializedSize(const TypeDescriptor& type) {
  uint32_t size = kObjectHeaderBytes;
  for (const AttributeDescriptor& attr : type.attributes()) {
    size += attr.FixedBytes();
  }
  return size;
}

std::string Object::ToString(const TypeDescriptor& type) const {
  std::vector<std::string> parts;
  for (size_t i = 0; i < fields_.size() && i < type.attribute_count(); ++i) {
    parts.push_back(type.attribute(i).name + "=" + fields_[i].ToString());
  }
  return type.name() + "{" + JoinStrings(parts, ", ") + "}";
}

}  // namespace fieldrep
