#include "objects/value.h"

#include <limits>

#include "common/bytes.h"
#include "common/strings.h"

namespace fieldrep {

Result<int64_t> Value::AsInteger() const {
  if (is_int32()) return static_cast<int64_t>(as_int32());
  if (is_int64()) return as_int64();
  return Status::InvalidArgument("value " + ToString() + " is not an integer");
}

bool Value::MatchesType(FieldType type) const {
  if (is_null()) return true;
  switch (type) {
    case FieldType::kInt32:
    case FieldType::kInt64:
      return is_int32() || is_int64();
    case FieldType::kDouble:
      return is_double() || is_int32() || is_int64();
    case FieldType::kChar:
    case FieldType::kString:
      return is_string();
    case FieldType::kRef:
      return is_ref();
  }
  return false;
}

Result<Value> Value::CoerceTo(const AttributeDescriptor& attr) const {
  if (!MatchesType(attr.type)) {
    return Status::InvalidArgument("value " + ToString() +
                                   " does not match attribute " +
                                   attr.ToString());
  }
  if (is_null()) return Value::Null();
  switch (attr.type) {
    case FieldType::kInt32: {
      int64_t v = is_int32() ? as_int32() : as_int64();
      if (v < std::numeric_limits<int32_t>::min() ||
          v > std::numeric_limits<int32_t>::max()) {
        return Status::OutOfRange("integer overflow coercing to int32");
      }
      return Value(static_cast<int32_t>(v));
    }
    case FieldType::kInt64:
      return Value(is_int32() ? static_cast<int64_t>(as_int32()) : as_int64());
    case FieldType::kDouble: {
      if (is_double()) return *this;
      int64_t v = is_int32() ? as_int32() : as_int64();
      return Value(static_cast<double>(v));
    }
    case FieldType::kChar: {
      std::string s = as_string();
      s.resize(attr.char_length, '\0');
      return Value(std::move(s));
    }
    case FieldType::kString:
      return *this;
    case FieldType::kRef:
      return *this;
  }
  return Status::Internal("unreachable");
}

std::string Value::ToString() const {
  if (is_null()) return "null";
  if (is_int32()) return StringPrintf("%d", as_int32());
  if (is_int64()) {
    return StringPrintf("%lld", static_cast<long long>(as_int64()));
  }
  if (is_double()) return StringPrintf("%g", as_double());
  if (is_string()) {
    // Strip the NUL padding of char[n] fields for display.
    const std::string& s = as_string();
    size_t end = s.find('\0');
    return "\"" + (end == std::string::npos ? s : s.substr(0, end)) + "\"";
  }
  return as_ref().ToString();
}

Status EncodeValue(const AttributeDescriptor& attr, const Value& value,
                   std::string* out) {
  FIELDREP_ASSIGN_OR_RETURN(Value coerced, value.CoerceTo(attr));
  switch (attr.type) {
    case FieldType::kInt32:
      PutI32(out, coerced.is_null() ? 0 : coerced.as_int32());
      return Status::OK();
    case FieldType::kInt64:
      PutI64(out, coerced.is_null() ? 0 : coerced.as_int64());
      return Status::OK();
    case FieldType::kDouble:
      PutF64(out, coerced.is_null() ? 0.0 : coerced.as_double());
      return Status::OK();
    case FieldType::kChar: {
      std::string s = coerced.is_null() ? std::string() : coerced.as_string();
      s.resize(attr.char_length, '\0');
      out->append(s);
      return Status::OK();
    }
    case FieldType::kString:
      PutLengthPrefixed(out,
                        coerced.is_null() ? std::string() : coerced.as_string());
      return Status::OK();
    case FieldType::kRef:
      PutU64(out, coerced.is_null() ? Oid::Invalid().Packed()
                                    : coerced.as_ref().Packed());
      return Status::OK();
  }
  return Status::Internal("unreachable");
}

Status DecodeValue(const AttributeDescriptor& attr, ByteReader* reader,
                   Value* value) {
  switch (attr.type) {
    case FieldType::kInt32: {
      int32_t v;
      if (!reader->GetI32(&v)) return Status::Corruption("truncated int32");
      *value = Value(v);
      return Status::OK();
    }
    case FieldType::kInt64: {
      int64_t v;
      if (!reader->GetI64(&v)) return Status::Corruption("truncated int64");
      *value = Value(v);
      return Status::OK();
    }
    case FieldType::kDouble: {
      double v;
      if (!reader->GetF64(&v)) return Status::Corruption("truncated double");
      *value = Value(v);
      return Status::OK();
    }
    case FieldType::kChar: {
      std::string s;
      if (!reader->GetRaw(attr.char_length, &s)) {
        return Status::Corruption("truncated char[] field");
      }
      *value = Value(std::move(s));
      return Status::OK();
    }
    case FieldType::kString: {
      std::string s;
      if (!reader->GetLengthPrefixed(&s)) {
        return Status::Corruption("truncated string field");
      }
      *value = Value(std::move(s));
      return Status::OK();
    }
    case FieldType::kRef: {
      uint64_t packed;
      if (!reader->GetU64(&packed)) return Status::Corruption("truncated ref");
      Oid oid = Oid::FromPacked(packed);
      *value = oid.valid() ? Value(oid) : Value::Null();
      return Status::OK();
    }
  }
  return Status::Internal("unreachable");
}

namespace {
enum TaggedKind : uint8_t {
  kTagNull = 0,
  kTagInt32 = 1,
  kTagInt64 = 2,
  kTagDouble = 3,
  kTagString = 4,
  kTagRef = 5,
};
}  // namespace

void EncodeTaggedValue(const Value& value, std::string* out) {
  if (value.is_null()) {
    out->push_back(static_cast<char>(kTagNull));
  } else if (value.is_int32()) {
    out->push_back(static_cast<char>(kTagInt32));
    PutI32(out, value.as_int32());
  } else if (value.is_int64()) {
    out->push_back(static_cast<char>(kTagInt64));
    PutI64(out, value.as_int64());
  } else if (value.is_double()) {
    out->push_back(static_cast<char>(kTagDouble));
    PutF64(out, value.as_double());
  } else if (value.is_string()) {
    out->push_back(static_cast<char>(kTagString));
    PutLengthPrefixed(out, value.as_string());
  } else {
    out->push_back(static_cast<char>(kTagRef));
    PutU64(out, value.as_ref().Packed());
  }
}

Status DecodeTaggedValue(ByteReader* reader, Value* value) {
  std::string kind_byte;
  if (!reader->GetRaw(1, &kind_byte)) {
    return Status::Corruption("truncated tagged value");
  }
  switch (static_cast<TaggedKind>(kind_byte[0])) {
    case kTagNull:
      *value = Value::Null();
      return Status::OK();
    case kTagInt32: {
      int32_t v;
      if (!reader->GetI32(&v)) return Status::Corruption("truncated value");
      *value = Value(v);
      return Status::OK();
    }
    case kTagInt64: {
      int64_t v;
      if (!reader->GetI64(&v)) return Status::Corruption("truncated value");
      *value = Value(v);
      return Status::OK();
    }
    case kTagDouble: {
      double v;
      if (!reader->GetF64(&v)) return Status::Corruption("truncated value");
      *value = Value(v);
      return Status::OK();
    }
    case kTagString: {
      std::string s;
      if (!reader->GetLengthPrefixed(&s)) {
        return Status::Corruption("truncated value");
      }
      *value = Value(std::move(s));
      return Status::OK();
    }
    case kTagRef: {
      uint64_t packed;
      if (!reader->GetU64(&packed)) {
        return Status::Corruption("truncated value");
      }
      *value = Value(Oid::FromPacked(packed));
      return Status::OK();
    }
  }
  return Status::Corruption("unknown tagged value kind");
}

}  // namespace fieldrep
