#ifndef FIELDREP_OBJECTS_SET_PROVIDER_H_
#define FIELDREP_OBJECTS_SET_PROVIDER_H_

#include <string>

#include "common/status.h"
#include "objects/object_set.h"
#include "storage/record_file.h"

namespace fieldrep {

/// \brief Resolves names and file ids to live storage objects.
///
/// Implemented by Database; consumed by the index and replication managers
/// so they can reach sets and auxiliary files (link sets, replica sets,
/// output files) without depending on the Database type.
class SetProvider {
 public:
  virtual ~SetProvider() = default;

  /// The object set named `name`.
  virtual Result<ObjectSet*> GetSet(const std::string& name) = 0;

  /// The object set stored in `file_id` (reverse OID resolution).
  virtual Result<ObjectSet*> GetSetByFile(FileId file_id) = 0;

  /// An auxiliary record file previously created with CreateAuxFile.
  virtual Result<RecordFile*> GetAuxFile(FileId file_id) = 0;

  /// Allocates a new auxiliary record file (link set, replica set, output
  /// file) and returns it; `*file_id` receives its id.
  virtual Result<RecordFile*> CreateAuxFile(FileId* file_id) = 0;
};

}  // namespace fieldrep

#endif  // FIELDREP_OBJECTS_SET_PROVIDER_H_
