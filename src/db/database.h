#ifndef FIELDREP_DB_DATABASE_H_
#define FIELDREP_DB_DATABASE_H_

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "catalog/catalog.h"
#include "common/status.h"
#include "index/index_manager.h"
#include "objects/set_provider.h"
#include "query/executor.h"
#include "replication/replication_manager.h"
#include "storage/buffer_pool.h"
#include "storage/file_device.h"
#include "storage/memory_device.h"

namespace fieldrep {

/// \brief The public facade of the library: one object-oriented database
/// with field replication.
///
/// A Database owns the storage device, buffer pool, catalog, object sets,
/// auxiliary files (link sets, replica sets, output files), indexes,
/// replication machinery, and query executor, and wires them together.
///
/// Typical use (the paper's employee database):
/// \code
///   auto db = Database::Open({});
///   db->DefineType(...ORG...); db->DefineType(...DEPT...);
///   db->DefineType(...EMP...);
///   db->CreateSet("Org", "ORG"); db->CreateSet("Dept", "DEPT");
///   db->CreateSet("Emp1", "EMP");
///   ... insert objects ...
///   db->Replicate("Emp1.dept.name", {});
///   ReadQuery q{.set_name = "Emp1",
///               .projections = {"name", "salary", "dept.name"},
///               .predicate = Predicate::Compare("salary", CompareOp::kGt,
///                                               Value(int32_t{100000}))};
///   ReadResult r;
///   db->Retrieve(q, &r);   // no functional join: dept.name is replicated
/// \endcode
class Database : public SetProvider {
 public:
  struct Options {
    /// Buffer pool capacity in 4 KiB frames.
    size_t buffer_pool_frames = 4096;
    /// Path of the backing file; empty selects the in-memory device.
    std::string file_path;
  };

  /// Opens a database. Never returns null on OK status.
  static Result<std::unique_ptr<Database>> Open(const Options& options);

  ~Database() override = default;
  Database(const Database&) = delete;
  Database& operator=(const Database&) = delete;

  // --- Schema ---------------------------------------------------------------

  /// `define type NAME (...)`.
  Status DefineType(TypeDescriptor type);
  /// `create Name: {own ref TYPE}`.
  Status CreateSet(const std::string& name, const std::string& type_name);
  /// `replicate Spec` with strategy options; returns the path id.
  Status Replicate(const std::string& spec, const ReplicateOptions& options,
                   uint16_t* path_id = nullptr);
  /// Drops a replication path by its original spec.
  Status DropReplication(const std::string& spec);
  /// `build btree NAME on Set.key` (plain attribute or replicated path).
  Status BuildIndex(const std::string& index_name, const std::string& set_name,
                    const std::string& key_expr, bool clustered = false);

  // --- Data -----------------------------------------------------------------

  Status Insert(const std::string& set_name, const Object& object, Oid* oid);
  Status Get(const std::string& set_name, const Oid& oid, Object* object);
  /// Updates one attribute by name (replication-consistent).
  Status Update(const std::string& set_name, const Oid& oid,
                const std::string& attr_name, const Value& value);
  Status Delete(const std::string& set_name, const Oid& oid);

  // --- Queries ----------------------------------------------------------------

  Status Retrieve(const ReadQuery& query, ReadResult* result);
  Status Replace(const UpdateQuery& query, UpdateResult* result);

  // --- Measurement -------------------------------------------------------------

  /// Flushes all dirty pages and empties the buffer pool, then zeroes the
  /// I/O counters: the state the cost model assumes at the start of a
  /// query. Benchmarks call this before each measured query.
  Status ColdStart();
  const IoStats& io_stats() const { return pool_->stats(); }

  // --- Persistence -------------------------------------------------------------

  /// Writes the catalog, file metadata, and index roots to the database
  /// header pages and flushes everything, so that Open() on the same
  /// backing file restores the full database (file-backed devices).
  /// Pending deferred propagations are flushed first. There is no
  /// write-ahead log: Checkpoint is the durability point.
  Status Checkpoint();

  /// Human-readable storage report: per-set and per-auxiliary-file record
  /// and page counts, index sizes, device pages, and buffer-pool state —
  /// the space-overhead picture Section 4.2 discusses.
  std::string StorageReport();

  // --- Component access --------------------------------------------------------

  Catalog& catalog() { return catalog_; }
  const Catalog& catalog() const { return catalog_; }
  BufferPool& pool() { return *pool_; }
  IndexManager& indexes() { return *indexes_; }
  ReplicationManager& replication() { return *replication_; }
  Executor& executor() { return *executor_; }

  // --- SetProvider ---------------------------------------------------------------

  Result<ObjectSet*> GetSet(const std::string& name) override;
  Result<ObjectSet*> GetSetByFile(FileId file_id) override;
  Result<RecordFile*> GetAuxFile(FileId file_id) override;
  Result<RecordFile*> CreateAuxFile(FileId* file_id) override;

 private:
  Database() = default;

  /// Serializes everything Checkpoint persists beyond the catalog: file
  /// metadata for sets and auxiliary files, index tree roots, the output
  /// file id.
  std::string EncodeState() const;
  /// Rebuilds sets, auxiliary files, and index trees from a checkpoint
  /// blob (after the catalog itself was decoded).
  Status DecodeState(class ByteReader* reader);
  /// Loads the checkpoint blob from the header page chain, if any.
  Status RestoreFromDevice();

  std::unique_ptr<StorageDevice> device_;
  std::unique_ptr<BufferPool> pool_;
  Catalog catalog_;
  std::map<std::string, std::unique_ptr<ObjectSet>> sets_;
  std::map<FileId, ObjectSet*> sets_by_file_;
  std::map<FileId, std::unique_ptr<RecordFile>> aux_files_;
  std::unique_ptr<IndexManager> indexes_;
  std::unique_ptr<ReplicationManager> replication_;
  std::unique_ptr<Executor> executor_;
  /// Pages holding the most recent checkpoint blob (page 0 is the header).
  std::vector<PageId> meta_pages_;
};

}  // namespace fieldrep

#endif  // FIELDREP_DB_DATABASE_H_
