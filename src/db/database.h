#ifndef FIELDREP_DB_DATABASE_H_
#define FIELDREP_DB_DATABASE_H_

#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "catalog/catalog.h"
#include "common/annotated_mutex.h"
#include "check/check_report.h"
#include "common/status.h"
#include "common/thread_pool.h"
#include "index/index_manager.h"
#include "objects/set_provider.h"
#include "query/executor.h"
#include "replication/replication_manager.h"
#include "storage/buffer_pool.h"
#include "storage/file_device.h"
#include "storage/memory_device.h"
#include "telemetry/metrics.h"
#include "telemetry/workload_profiler.h"
#include "wal/recovery_manager.h"
#include "wal/wal_manager.h"

namespace fieldrep {

/// \brief The public facade of the library: one object-oriented database
/// with field replication.
///
/// A Database owns the storage device, buffer pool, catalog, object sets,
/// auxiliary files (link sets, replica sets, output files), indexes,
/// replication machinery, and query executor, and wires them together.
///
/// Typical use (the paper's employee database):
/// \code
///   auto db = Database::Open({});
///   db->DefineType(...ORG...); db->DefineType(...DEPT...);
///   db->DefineType(...EMP...);
///   db->CreateSet("Org", "ORG"); db->CreateSet("Dept", "DEPT");
///   db->CreateSet("Emp1", "EMP");
///   ... insert objects ...
///   db->Replicate("Emp1.dept.name", {});
///   ReadQuery q{.set_name = "Emp1",
///               .projections = {"name", "salary", "dept.name"},
///               .predicate = Predicate::Compare("salary", CompareOp::kGt,
///                                               Value(int32_t{100000}))};
///   ReadResult r;
///   db->Retrieve(q, &r);   // no functional join: dept.name is replicated
/// \endcode
class Database : public SetProvider {
 public:
  struct Options {
    /// Buffer pool capacity in 4 KiB frames.
    size_t buffer_pool_frames = 4096;
    /// Path of the backing file; empty selects the in-memory device.
    std::string file_path;
    /// External database device (not owned; overrides file_path). Lets a
    /// test keep the "disk" alive across simulated machine crashes.
    StorageDevice* device = nullptr;

    /// Enables write-ahead logging and crash recovery. On open, the
    /// committed tail of the log is replayed onto the database device;
    /// afterwards every mutating operation (including its full replica
    /// propagation) commits atomically.
    bool enable_wal = false;
    /// Backing file of the log; empty derives `file_path + ".wal"`, or an
    /// in-memory log for in-memory databases.
    std::string wal_path;
    /// External log device (not owned; overrides wal_path).
    StorageDevice* wal_device = nullptr;
    /// Sync the log on every commit (full durability). False trades the
    /// durability of the most recent commits for fewer syncs; atomicity
    /// is unaffected.
    bool wal_sync_on_commit = true;
    /// True group commit (DESIGN.md §12): commits flush the log but defer
    /// the device sync to WalManager::WaitDurable, where concurrent
    /// committers share one leader fsync. Every mutating entry point still
    /// returns only after its commit is durable, so single-threaded
    /// callers keep full durability (at one sync per commit); the win
    /// appears when many sessions commit concurrently.
    bool wal_group_commit = false;
    /// Auto-checkpoint once the log exceeds this size (0 = only explicit
    /// Checkpoint() calls truncate the log).
    uint64_t wal_checkpoint_threshold_bytes = 0;

    /// Scan read-ahead window in pages (0 disables prefetching entirely).
    /// Read-ahead changes only *physical* I/O scheduling; the logical
    /// counters (IoStats::disk_reads / disk_writes) are identical for any
    /// window, so the paper's cost-model measurements are unaffected.
    uint32_t read_ahead_window = kDefaultReadAheadWindow;

    /// Worker threads for parallel read-query execution (DESIGN.md §10).
    /// 1 (the default) runs the original serial engine — no pool is
    /// created and no query code path changes. Values > 1 attach a
    /// fixed-size ThreadPool that ExecuteRead fans page-aligned OID
    /// ranges out over; the logical I/O counters stay identical to the
    /// serial plan. Mutations remain single-writer regardless.
    size_t worker_threads = 1;

    /// Engine-wide telemetry (DESIGN.md §11). The component-level
    /// instruments (pool shard hit/miss, WAL commit latency, replication
    /// propagation counters, ...) are always-on relaxed atomics; this
    /// flag only controls whether the database builds the
    /// MetricsRegistry/WorkloadProfiler that name and expose them.
    /// Telemetry never changes the logical I/O a query performs.
    bool enable_telemetry = true;
    /// Slow-query log threshold: read/update queries whose wall time
    /// reaches this many nanoseconds are traced and reported through
    /// `slow_query_hook` (or, with no hook, a one-line Summary() on
    /// stderr). 0 disables the slow-query log.
    uint64_t slow_query_ns = 0;
    /// Receives the QueryTrace of every slow query when set.
    std::function<void(const QueryTrace&)> slow_query_hook;
  };

  /// Opens a database. Never returns null on OK status.
  static Result<std::unique_ptr<Database>> Open(const Options& options);

  ~Database() override = default;
  Database(const Database&) = delete;
  Database& operator=(const Database&) = delete;

  // --- Schema ---------------------------------------------------------------

  /// `define type NAME (...)`.
  Status DefineType(TypeDescriptor type);
  /// `create Name: {own ref TYPE}`.
  Status CreateSet(const std::string& name, const std::string& type_name);
  /// `replicate Spec` with strategy options; returns the path id.
  Status Replicate(const std::string& spec, const ReplicateOptions& options,
                   uint16_t* path_id = nullptr);
  /// Drops a replication path by its original spec.
  Status DropReplication(const std::string& spec);
  /// `build btree NAME on Set.key` (plain attribute or replicated path).
  Status BuildIndex(const std::string& index_name, const std::string& set_name,
                    const std::string& key_expr, bool clustered = false);

  // --- Data -----------------------------------------------------------------

  Status Insert(const std::string& set_name, const Object& object, Oid* oid);
  Status Get(const std::string& set_name, const Oid& oid, Object* object);
  /// Updates one attribute by name (replication-consistent).
  Status Update(const std::string& set_name, const Oid& oid,
                const std::string& attr_name, const Value& value);
  Status Delete(const std::string& set_name, const Oid& oid);

  // --- Session transactions ---------------------------------------------------

  /// Opens an explicit transaction bracket for a network session: every
  /// mutating call until Commit/Abort joins one WAL transaction (flat
  /// nesting folds the per-operation brackets in). Requires WAL. The
  /// caller must serialize all mutating operations while a session
  /// transaction is open — the network server does this with its
  /// session-owned writer gate; operations may run on different threads
  /// as long as they are externally ordered.
  Status BeginSessionTransaction();
  /// Commits the open session transaction. `commit_lsn` (optional)
  /// receives the LSN to pass to WaitWalDurable — in group-commit mode
  /// the commit returns before the log is synced.
  Status CommitSessionTransaction(uint64_t* commit_lsn = nullptr);
  Status AbortSessionTransaction();
  bool InSessionTransaction() const;

  /// Blocks until the WAL is durable through `lsn` (no-op without WAL or
  /// for lsn 0). Concurrent callers batch behind one leader fsync.
  Status WaitWalDurable(uint64_t lsn);

  // --- Queries ----------------------------------------------------------------

  Status Retrieve(const ReadQuery& query, ReadResult* result);
  Status Replace(const UpdateQuery& query, UpdateResult* result);
  /// Traced variants: `trace`, when non-null, receives the query's
  /// EXPLAIN ANALYZE (per-stage wall time and IoStats deltas, strategy
  /// choices, parallel fan-out). Traced queries also feed the slow-query
  /// log when they cross `Options::slow_query_ns`.
  Status Retrieve(const ReadQuery& query, ReadResult* result,
                  QueryTrace* trace);
  Status Replace(const UpdateQuery& query, UpdateResult* result,
                 QueryTrace* trace);

  // --- Measurement -------------------------------------------------------------

  /// Flushes all dirty pages and empties the buffer pool, then zeroes the
  /// I/O counters: the state the cost model assumes at the start of a
  /// query. Benchmarks call this before each measured query.
  Status ColdStart();
  IoStats io_stats() const { return pool_->stats(); }

  /// Resizes the read-query worker pool (1 detaches it and restores the
  /// serial engine). Callers must quiesce queries first; benchmarks use
  /// this to sweep a thread ladder over one populated database.
  Status SetWorkerThreads(size_t n);

  // --- Observability -----------------------------------------------------------

  /// The engine's metric registry; null when opened with
  /// `enable_telemetry = false`. All component counters (buffer pool,
  /// WAL, replication, thread pool, workload profiler) are attached as
  /// render-time collectors, so Collect() always reflects live state.
  MetricsRegistry* metrics() { return metrics_.get(); }
  /// The workload profiler (per-path dereference counts, per-field
  /// update/propagation rates); null when telemetry is disabled.
  WorkloadProfiler* profiler() { return profiler_.get(); }

  /// Snapshot of the workload profile — the §6 cost model's input,
  /// expressed in catalog terms. Empty when telemetry is disabled.
  WorkloadProfile Stats() const;

  /// Full metrics snapshot in Prometheus text exposition / JSON. Empty
  /// string when telemetry is disabled.
  std::string MetricsPrometheus() const;
  std::string MetricsJson() const;
  /// Writes MetricsJson() to `path` (the dump fieldrep_stats --snapshot
  /// re-renders offline).
  Status DumpMetricsJson(const std::string& path) const;

  // --- Persistence -------------------------------------------------------------

  /// Writes the catalog, file metadata, and index roots to the database
  /// header pages and flushes everything, so that Open() on the same
  /// backing file restores the full database (file-backed devices).
  /// Pending deferred propagations are flushed first. Without WAL this is
  /// the only durability point; with WAL it additionally flushes the pool
  /// and truncates the log (fuzzy checkpoint).
  Status Checkpoint();

  /// Human-readable storage report: per-set and per-auxiliary-file record
  /// and page counts, index sizes, device pages, and buffer-pool state —
  /// the space-overhead picture Section 4.2 discusses.
  std::string StorageReport();

  // --- Integrity ---------------------------------------------------------------

  /// Verifies structural invariants bottom-up — page/slot structure and
  /// checksums, B+ tree ordering, catalog/object typing, replication
  /// mirrors (link objects, replica slots, S' files), WAL state — and
  /// appends findings to `report`. Read-only: nothing is repaired and
  /// deferred propagations are not flushed. The returned status reports
  /// checker failures only; corruption is expressed as findings
  /// (`report->ok()`). Used by fieldrep_fsck and by tests as a closing
  /// assertion.
  Status CheckIntegrity(const CheckOptions& options, CheckReport* report);
  Status CheckIntegrity(CheckReport* report);

  // --- Component access --------------------------------------------------------

  Catalog& catalog() { return catalog_; }
  const Catalog& catalog() const { return catalog_; }
  BufferPool& pool() { return *pool_; }
  IndexManager& indexes() { return *indexes_; }
  ReplicationManager& replication() { return *replication_; }
  Executor& executor() { return *executor_; }
  /// Null when the database was opened without `enable_wal`.
  WalManager* wal() { return wal_.get(); }
  /// The log's backing device; null without `enable_wal`.
  StorageDevice* wal_device() { return wal_device_; }
  /// File ids of all auxiliary files (link sets, replica sets, output
  /// files) currently open, in id order.
  std::vector<FileId> AuxFileIds() const;
  /// What recovery did at Open (all zeros when WAL is off).
  const RecoveryStats& recovery_stats() const { return recovery_stats_; }

  // --- SetProvider ---------------------------------------------------------------

  Result<ObjectSet*> GetSet(const std::string& name) override;
  Result<ObjectSet*> GetSetByFile(FileId file_id) override;
  Result<RecordFile*> GetAuxFile(FileId file_id) override;
  Result<RecordFile*> CreateAuxFile(FileId* file_id) override;

 private:
  Database() = default;

  /// Serializes everything Checkpoint persists beyond the catalog: file
  /// metadata for sets and auxiliary files, index tree roots, the output
  /// file id.
  std::string EncodeState() const;
  /// Rebuilds sets, auxiliary files, and index trees from a checkpoint
  /// blob (after the catalog itself was decoded).
  Status DecodeState(class ByteReader* reader);
  /// Loads the checkpoint blob from the header page chain, if any.
  Status RestoreFromDevice();
  /// Serializes catalog + state into the meta page chain (page 0 header).
  /// With WAL enabled this runs inside every commit (pre-commit hook), so
  /// each committed transaction is self-describing after replay.
  Status WriteStateToMetaPages();

  /// Invokes the slow-query hook (or the default stderr line) when a
  /// traced query crossed the configured threshold.
  void MaybeLogSlowQuery(const QueryTrace& trace) const;

  /// Called under write_mu_ right after a mutating operation: the LSN the
  /// caller must make durable before returning (0 = nothing to wait for —
  /// not in group-commit mode, the operation failed, or it is nested in
  /// an open session transaction whose commit will wait instead).
  uint64_t PendingDurableLsn(const Status& s) const;

  // Declaration order doubles as destruction order (reversed): the pool
  // must be torn down while the WAL manager it observes — and the devices
  // both of them write to — are still alive. The registry and profiler
  // come first (destroyed last): components hold raw pointers to the
  // profiler, and registry collectors capture component pointers.
  std::unique_ptr<MetricsRegistry> metrics_;
  std::unique_ptr<WorkloadProfiler> profiler_;
  StorageDevice* device_ = nullptr;
  StorageDevice* wal_device_ = nullptr;
  std::unique_ptr<StorageDevice> owned_device_;
  std::unique_ptr<StorageDevice> owned_wal_device_;
  std::unique_ptr<WalManager> wal_;
  std::unique_ptr<BufferPool> pool_;
  Catalog catalog_;
  std::map<std::string, std::unique_ptr<ObjectSet>> sets_ GUARDED_BY(maps_mu_);
  std::map<FileId, ObjectSet*> sets_by_file_ GUARDED_BY(maps_mu_);
  std::map<FileId, std::unique_ptr<RecordFile>> aux_files_
      GUARDED_BY(maps_mu_);
  std::unique_ptr<IndexManager> indexes_;
  std::unique_ptr<ReplicationManager> replication_;
  /// Declared before the executor that holds a raw pointer to it; the
  /// executor is destroyed first, and RunBatch is blocking, so no task
  /// can outlive a query — the join in ~ThreadPool finds an idle pool.
  std::unique_ptr<ThreadPool> workers_;
  std::unique_ptr<Executor> executor_;
  /// Single-writer rule (DESIGN.md §10): every mutating entry point
  /// (schema, data, Checkpoint, ColdStart) runs under this mutex;
  /// concurrent read queries take it only around their mutating steps
  /// (deferred-propagation flushes, output spooling). Recursive because
  /// the WAL pre-commit hook re-enters WriteStateToMetaPages from inside
  /// a locked mutation.
  RecursiveMutex write_mu_{LockRank::kDatabaseWrite, "db.write_mu"};
  /// Guards the set/aux-file maps: readers resolving OIDs take it
  /// shared, CreateSet/CreateAuxFile/DecodeState take it unique.
  mutable SharedMutex maps_mu_{LockRank::kDatabaseMaps, "db.maps_mu"};
  /// Pages holding the most recent checkpoint blob (page 0 is the header).
  std::vector<PageId> meta_pages_;
  RecoveryStats recovery_stats_;
  /// Slow-query log configuration (from Options).
  uint64_t slow_query_ns_ = 0;
  std::function<void(const QueryTrace&)> slow_query_hook_;
};

}  // namespace fieldrep

#endif  // FIELDREP_DB_DATABASE_H_
