#ifndef FIELDREP_DB_DATABASE_H_
#define FIELDREP_DB_DATABASE_H_

#include <atomic>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "catalog/catalog.h"
#include "common/annotated_mutex.h"
#include "check/check_report.h"
#include "common/status.h"
#include "common/thread_pool.h"
#include "db/lock_table.h"
#include "index/index_manager.h"
#include "objects/set_provider.h"
#include "query/executor.h"
#include "replication/replication_manager.h"
#include "storage/buffer_pool.h"
#include "storage/file_device.h"
#include "storage/memory_device.h"
#include "telemetry/metrics.h"
#include "telemetry/workload_profiler.h"
#include "wal/recovery_manager.h"
#include "wal/wal_manager.h"

namespace fieldrep {

/// \brief The public facade of the library: one object-oriented database
/// with field replication.
///
/// A Database owns the storage device, buffer pool, catalog, object sets,
/// auxiliary files (link sets, replica sets, output files), indexes,
/// replication machinery, and query executor, and wires them together.
///
/// Typical use (the paper's employee database):
/// \code
///   auto db = Database::Open({});
///   db->DefineType(...ORG...); db->DefineType(...DEPT...);
///   db->DefineType(...EMP...);
///   db->CreateSet("Org", "ORG"); db->CreateSet("Dept", "DEPT");
///   db->CreateSet("Emp1", "EMP");
///   ... insert objects ...
///   db->Replicate("Emp1.dept.name", {});
///   ReadQuery q{.set_name = "Emp1",
///               .projections = {"name", "salary", "dept.name"},
///               .predicate = Predicate::Compare("salary", CompareOp::kGt,
///                                               Value(int32_t{100000}))};
///   ReadResult r;
///   db->Retrieve(q, &r);   // no functional join: dept.name is replicated
/// \endcode
class Database : public SetProvider {
 public:
  /// Which storage device backs a file-backed database (DESIGN.md §15).
  enum class StorageBackend {
    /// kFile today; a future default may prefer the ring when available.
    kAuto,
    /// Synchronous pread/pwrite FileDevice.
    kFile,
    /// io_uring UringDevice (optionally O_DIRECT). Degrades gracefully:
    /// without kernel/compile-time io_uring support the device still
    /// opens and runs on its synchronous fallback path, so selecting
    /// kUring is always safe.
    kUring,
  };

  struct Options {
    /// Buffer pool capacity in 4 KiB frames.
    size_t buffer_pool_frames = 4096;
    /// Path of the backing file; empty selects the in-memory device.
    std::string file_path;
    /// External database device (not owned; overrides file_path). Lets a
    /// test keep the "disk" alive across simulated machine crashes.
    StorageDevice* device = nullptr;
    /// Device implementation for file-backed databases (ignored for
    /// in-memory and external devices).
    StorageBackend storage_backend = StorageBackend::kAuto;
    /// With kUring: open the backing file O_DIRECT (falls back to
    /// buffered I/O when the filesystem refuses the flag).
    bool o_direct = false;

    /// Enables write-ahead logging and crash recovery. On open, the
    /// committed tail of the log is replayed onto the database device;
    /// afterwards every mutating operation (including its full replica
    /// propagation) commits atomically.
    bool enable_wal = false;
    /// Backing file of the log; empty derives `file_path + ".wal"`, or an
    /// in-memory log for in-memory databases.
    std::string wal_path;
    /// External log device (not owned; overrides wal_path).
    StorageDevice* wal_device = nullptr;
    /// Sync the log on every commit (full durability). False trades the
    /// durability of the most recent commits for fewer syncs; atomicity
    /// is unaffected.
    bool wal_sync_on_commit = true;
    /// True group commit (DESIGN.md §12): commits flush the log but defer
    /// the device sync to WalManager::WaitDurable, where concurrent
    /// committers share one leader fsync. Every mutating entry point still
    /// returns only after its commit is durable, so single-threaded
    /// callers keep full durability (at one sync per commit); the win
    /// appears when many sessions commit concurrently.
    bool wal_group_commit = false;
    /// Auto-checkpoint once the log exceeds this size (0 = only explicit
    /// Checkpoint() calls truncate the log).
    uint64_t wal_checkpoint_threshold_bytes = 0;

    /// Scan read-ahead window in pages (0 disables prefetching entirely).
    /// Read-ahead changes only *physical* I/O scheduling; the logical
    /// counters (IoStats::disk_reads / disk_writes) are identical for any
    /// window, so the paper's cost-model measurements are unaffected.
    uint32_t read_ahead_window = kDefaultReadAheadWindow;

    /// Worker threads for parallel read-query execution (DESIGN.md §10).
    /// 1 (the default) runs the original serial engine — no pool is
    /// created and no query code path changes. Values > 1 attach a
    /// fixed-size ThreadPool that ExecuteRead fans page-aligned OID
    /// ranges out over; the logical I/O counters stay identical to the
    /// serial plan. Mutations remain single-writer regardless.
    size_t worker_threads = 1;

    /// Engine-wide telemetry (DESIGN.md §11). The component-level
    /// instruments (pool shard hit/miss, WAL commit latency, replication
    /// propagation counters, ...) are always-on relaxed atomics; this
    /// flag only controls whether the database builds the
    /// MetricsRegistry/WorkloadProfiler that name and expose them.
    /// Telemetry never changes the logical I/O a query performs.
    bool enable_telemetry = true;
    /// Slow-query log threshold: read/update queries whose wall time
    /// reaches this many nanoseconds are traced and reported through
    /// `slow_query_hook` (or, with no hook, a one-line Summary() on
    /// stderr). 0 disables the slow-query log.
    uint64_t slow_query_ns = 0;
    /// Receives the QueryTrace of every slow query when set.
    std::function<void(const QueryTrace&)> slow_query_hook;
  };

  /// Opens a database. Never returns null on OK status.
  static Result<std::unique_ptr<Database>> Open(const Options& options);

  ~Database() override = default;
  Database(const Database&) = delete;
  Database& operator=(const Database&) = delete;

  // --- Schema ---------------------------------------------------------------

  /// `define type NAME (...)`.
  Status DefineType(TypeDescriptor type);
  /// `create Name: {own ref TYPE}`.
  Status CreateSet(const std::string& name, const std::string& type_name);
  /// `replicate Spec` with strategy options; returns the path id.
  Status Replicate(const std::string& spec, const ReplicateOptions& options,
                   uint16_t* path_id = nullptr);
  /// Drops a replication path by its original spec.
  Status DropReplication(const std::string& spec);
  /// `build btree NAME on Set.key` (plain attribute or replicated path).
  Status BuildIndex(const std::string& index_name, const std::string& set_name,
                    const std::string& key_expr, bool clustered = false);

  // --- Data -----------------------------------------------------------------

  Status Insert(const std::string& set_name, const Object& object, Oid* oid);
  Status Get(const std::string& set_name, const Oid& oid, Object* object);
  /// Updates one attribute by name (replication-consistent).
  Status Update(const std::string& set_name, const Oid& oid,
                const std::string& attr_name, const Value& value);
  Status Delete(const std::string& set_name, const Oid& oid);

  // --- Session transactions ---------------------------------------------------

  /// One explicit multi-statement transaction: its two-phase lock set,
  /// publish scope, and (once the first mutation runs) its WAL bracket.
  /// Created by BeginSessionTransaction on the calling thread; network
  /// sessions carry it across worker threads with
  /// Detach/AttachSessionTransaction. Opaque outside the Database.
  struct SessionTxn;

  /// Opens an explicit transaction bracket on the calling thread: every
  /// mutating call on this thread (or on whatever thread the transaction
  /// is attached to) until Commit/Abort joins one WAL transaction and
  /// accumulates per-set 2PL locks, which are held to commit/abort
  /// (strict two-phase locking, DESIGN.md §14). Requires WAL. Any number
  /// of session transactions may be open concurrently — disjoint lock
  /// sets proceed in parallel; conflicts block (ascending requests) or
  /// abort with a retryable Status::Aborted (descending, wait-or-die).
  Status BeginSessionTransaction();
  /// Commits the transaction attached to this thread and releases its
  /// locks. `commit_lsn` (optional) receives the LSN to pass to
  /// WaitWalDurable — in group-commit mode the commit returns before the
  /// log is synced.
  Status CommitSessionTransaction(uint64_t* commit_lsn = nullptr);
  /// Aborts the transaction attached to this thread and releases its
  /// locks. Redo-only logging keeps the partial in-memory effects (they
  /// are never logged, so crash recovery discards them).
  Status AbortSessionTransaction();
  /// Whether any explicit session transaction is open, on any thread.
  bool InSessionTransaction() const;

  /// Unbinds the calling thread's session transaction so another thread
  /// can continue it (the network server migrates sessions across its
  /// worker pool between statements). Null when none is attached. The
  /// locks stay held by the transaction while detached.
  SessionTxn* DetachSessionTransaction();
  /// Rebinds a detached session transaction to the calling thread.
  void AttachSessionTransaction(SessionTxn* txn);

  /// Non-blocking acquisition of the write-lock set for `set_name` (or,
  /// when null, the exclusive schema lock for DDL) on the calling
  /// thread's attached session transaction — the server's parking loop:
  /// kAcquired means the statement may run (every lock is now held and
  /// the statement's own blocking acquisition is a no-op); kWouldBlock
  /// means the caller should park the statement and retry after some
  /// transaction releases; kMustAbort means wait-or-die killed the
  /// transaction — abort it and have the client retry. Locks granted by
  /// earlier calls stay held in the WouldBlock case.
  Status TryLockSetForWrite(const std::string* set_name,
                            LockTable::TryOutcome* outcome);

  /// The per-set two-phase lock table (telemetry: conflict/wait counters).
  LockTable& lock_table() { return lock_table_; }

  /// Blocks until the WAL is durable through `lsn` (no-op without WAL or
  /// for lsn 0). Concurrent callers batch behind one leader fsync.
  Status WaitWalDurable(uint64_t lsn);

  // --- Queries ----------------------------------------------------------------

  Status Retrieve(const ReadQuery& query, ReadResult* result);
  Status Replace(const UpdateQuery& query, UpdateResult* result);
  /// Traced variants: `trace`, when non-null, receives the query's
  /// EXPLAIN ANALYZE (per-stage wall time and IoStats deltas, strategy
  /// choices, parallel fan-out). Traced queries also feed the slow-query
  /// log when they cross `Options::slow_query_ns`.
  Status Retrieve(const ReadQuery& query, ReadResult* result,
                  QueryTrace* trace);
  Status Replace(const UpdateQuery& query, UpdateResult* result,
                 QueryTrace* trace);

  // --- Measurement -------------------------------------------------------------

  /// Flushes all dirty pages and empties the buffer pool, then zeroes the
  /// I/O counters: the state the cost model assumes at the start of a
  /// query. Benchmarks call this before each measured query.
  Status ColdStart();
  IoStats io_stats() const { return pool_->stats(); }

  /// Resizes the read-query worker pool (1 detaches it and restores the
  /// serial engine). Callers must quiesce queries first; benchmarks use
  /// this to sweep a thread ladder over one populated database.
  Status SetWorkerThreads(size_t n);

  // --- Observability -----------------------------------------------------------

  /// The engine's metric registry; null when opened with
  /// `enable_telemetry = false`. All component counters (buffer pool,
  /// WAL, replication, thread pool, workload profiler) are attached as
  /// render-time collectors, so Collect() always reflects live state.
  MetricsRegistry* metrics() { return metrics_.get(); }
  /// The workload profiler (per-path dereference counts, per-field
  /// update/propagation rates); null when telemetry is disabled.
  WorkloadProfiler* profiler() { return profiler_.get(); }

  /// Snapshot of the workload profile — the §6 cost model's input,
  /// expressed in catalog terms. Empty when telemetry is disabled.
  WorkloadProfile Stats() const;

  /// Full metrics snapshot in Prometheus text exposition / JSON. Empty
  /// string when telemetry is disabled.
  std::string MetricsPrometheus() const;
  std::string MetricsJson() const;
  /// Writes MetricsJson() to `path` (the dump fieldrep_stats --snapshot
  /// re-renders offline).
  Status DumpMetricsJson(const std::string& path) const;

  // --- Persistence -------------------------------------------------------------

  /// Writes the catalog, file metadata, and index roots to the database
  /// header pages and flushes everything, so that Open() on the same
  /// backing file restores the full database (file-backed devices).
  /// Pending deferred propagations are flushed first. Without WAL this is
  /// the only durability point; with WAL it additionally flushes the pool
  /// and truncates the log (fuzzy checkpoint).
  Status Checkpoint();

  /// Human-readable storage report: per-set and per-auxiliary-file record
  /// and page counts, index sizes, device pages, and buffer-pool state —
  /// the space-overhead picture Section 4.2 discusses.
  std::string StorageReport();

  // --- Integrity ---------------------------------------------------------------

  /// Verifies structural invariants bottom-up — page/slot structure and
  /// checksums, B+ tree ordering, catalog/object typing, replication
  /// mirrors (link objects, replica slots, S' files), WAL state — and
  /// appends findings to `report`. Read-only: nothing is repaired and
  /// deferred propagations are not flushed. The returned status reports
  /// checker failures only; corruption is expressed as findings
  /// (`report->ok()`). Used by fieldrep_fsck and by tests as a closing
  /// assertion.
  Status CheckIntegrity(const CheckOptions& options, CheckReport* report);
  Status CheckIntegrity(CheckReport* report);

  // --- Component access --------------------------------------------------------

  Catalog& catalog() { return catalog_; }
  const Catalog& catalog() const { return catalog_; }
  BufferPool& pool() { return *pool_; }
  IndexManager& indexes() { return *indexes_; }
  ReplicationManager& replication() { return *replication_; }
  Executor& executor() { return *executor_; }
  /// Null when the database was opened without `enable_wal`.
  WalManager* wal() { return wal_.get(); }
  /// The log's backing device; null without `enable_wal`.
  StorageDevice* wal_device() { return wal_device_; }
  /// File ids of all auxiliary files (link sets, replica sets, output
  /// files) currently open, in id order.
  std::vector<FileId> AuxFileIds() const;
  /// What recovery did at Open (all zeros when WAL is off).
  const RecoveryStats& recovery_stats() const { return recovery_stats_; }

  // --- SetProvider ---------------------------------------------------------------

  Result<ObjectSet*> GetSet(const std::string& name) override;
  Result<ObjectSet*> GetSetByFile(FileId file_id) override;
  Result<RecordFile*> GetAuxFile(FileId file_id) override;
  Result<RecordFile*> CreateAuxFile(FileId* file_id) override;

 private:
  Database() = default;

  /// Serializes everything Checkpoint persists beyond the catalog — file
  /// metadata for sets and auxiliary files, index tree roots, the output
  /// file id — from the *committed-state registry*, so the image never
  /// contains another live transaction's uncommitted metadata. The
  /// scratch output file is the one live read (under the executor's
  /// output lock).
  std::string EncodeState() const;
  /// Rebuilds sets, auxiliary files, and index trees from a checkpoint
  /// blob (after the catalog itself was decoded).
  Status DecodeState(class ByteReader* reader);
  /// Loads the checkpoint blob from the header page chain, if any.
  Status RestoreFromDevice();
  /// Serializes catalog + state into the meta page chain (page 0 header).
  /// With WAL enabled this runs inside every commit (pre-commit hook,
  /// under the WAL's commit mutex), so each committed transaction is
  /// self-describing after replay.
  Status WriteStateToMetaPages();

  /// Invokes the slow-query hook (or the default stderr line) when a
  /// traced query crossed the configured threshold.
  void MaybeLogSlowQuery(const QueryTrace& trace) const;

  // --- Write concurrency (DESIGN.md §14) -------------------------------------

  /// The session transaction attached to the calling thread (null when
  /// none; a thread holds at most one per database).
  SessionTxn* CurrentTxn() const;

  /// Runs one mutating operation under two-phase locking. When a session
  /// transaction is attached to this thread, the operation joins it: the
  /// lock set grows (held to the session's commit/abort), the session's
  /// WAL bracket opens lazily on this first mutation, and `fn` runs with
  /// commit and durability deferred. Otherwise the operation is its own
  /// transaction: acquire locks (schema shared + the replication
  /// closure's set locks in ascending id order — deadlock-free, never
  /// killed by wait-or-die), run `fn` inside a WAL bracket, commit,
  /// release, wait for group-commit durability, and opportunistically
  /// auto-checkpoint. `set_name == nullptr` is a DDL/maintenance
  /// operation and takes the schema lock exclusively, quiescing every
  /// writer. `wal_bracket = false` skips transaction bracketing and
  /// publication entirely (lock-only quiescence for ColdStart /
  /// SetWorkerThreads, whose bodies must not dirty pages).
  Status WriteOp(const std::string* set_name,
                 const std::function<Status()>& fn, bool wal_bracket = true);

  /// Schema lock shared, then the closure's set locks in ascending order.
  Status AcquireWriteLocks(SessionTxn* txn, const std::string& set_name);
  /// Schema lock exclusive (DDL, checkpoint, maintenance); marks the
  /// transaction's publish scope as everything.
  Status AcquireSchemaExclusive(SessionTxn* txn);

  /// The set of sets a write to `set_name` may touch, as lock id ->
  /// set name: the target set plus the *type-overlap closure* over
  /// replication paths — a path is relevant when its head set is already
  /// in the closure or any of its chain/terminal types overlaps the
  /// closure's types; a relevant path contributes its head set and every
  /// set whose element type appears in its chain, iterated to fixpoint.
  /// Conservative (type-level, not instance-level) but sound: any
  /// propagation triggered by the write stays inside the closure, and
  /// auxiliary files (link sets, S', indexes) are covered by their head
  /// set's exclusive lock. Caller holds the schema lock (shared or
  /// exclusive), so the catalog is stable.
  Status WriteLockClosure(const std::string& set_name,
                          std::map<uint32_t, std::string>* locks) const;

  /// Releases the transaction's locks, unlinks it from this thread, and
  /// frees it (explicit sessions only).
  void FinishSessionTxn(SessionTxn* txn);

  /// Copies the live metadata of the transaction's publish scope into the
  /// committed-state registry. Runs inside the WAL commit (precommit
  /// hook) for logged operations — serialized by the commit mutex, before
  /// the metadata image is encoded — and directly after `fn` for unlogged
  /// databases.
  void PublishCommittedState(SessionTxn* txn);
  /// Rebuilds the whole committed-state registry from live state (DDL
  /// publish-all, Open, and commits outside any tracked transaction).
  void RefreshAllCommitted();

  /// Runs a deferred-propagation flush as a locked write transaction on
  /// the path's head set (the executor's flush_deferred callback).
  Status FlushDeferredPath(uint16_t path_id);

  /// Best-effort checkpoint once the log crosses the configured
  /// threshold. Called after a committed operation released its locks;
  /// skipped (silently) while other transactions are live.
  void MaybeAutoCheckpoint();

  // Declaration order doubles as destruction order (reversed): the pool
  // must be torn down while the WAL manager it observes — and the devices
  // both of them write to — are still alive. The registry and profiler
  // come first (destroyed last): components hold raw pointers to the
  // profiler, and registry collectors capture component pointers.
  std::unique_ptr<MetricsRegistry> metrics_;
  std::unique_ptr<WorkloadProfiler> profiler_;
  StorageDevice* device_ = nullptr;
  StorageDevice* wal_device_ = nullptr;
  std::unique_ptr<StorageDevice> owned_device_;
  std::unique_ptr<StorageDevice> owned_wal_device_;
  std::unique_ptr<WalManager> wal_;
  std::unique_ptr<BufferPool> pool_;
  Catalog catalog_;
  std::map<std::string, std::unique_ptr<ObjectSet>> sets_ GUARDED_BY(maps_mu_);
  std::map<FileId, ObjectSet*> sets_by_file_ GUARDED_BY(maps_mu_);
  std::map<FileId, std::unique_ptr<RecordFile>> aux_files_
      GUARDED_BY(maps_mu_);
  std::unique_ptr<IndexManager> indexes_;
  std::unique_ptr<ReplicationManager> replication_;
  /// Declared before the executor that holds a raw pointer to it; the
  /// executor is destroyed first, and RunBatch is blocking, so no task
  /// can outlive a query — the join in ~ThreadPool finds an idle pool.
  std::unique_ptr<ThreadPool> workers_;
  std::unique_ptr<Executor> executor_;
  /// Per-set two-phase locks (DESIGN.md §14): writers hold the schema
  /// lock shared plus their closure's set locks exclusive; DDL,
  /// Checkpoint, and maintenance hold the schema lock exclusive. Readers
  /// take no set locks at all — snapshot reads stay non-blocking.
  LockTable lock_table_;
  /// Explicit session transactions currently open (any thread).
  std::atomic<int> open_sessions_{0};
  /// Guards the committed-state registry: the per-file metadata images of
  /// the most recent *committed* transaction touching each file. The
  /// WAL precommit hook encodes checkpoint blobs from these (not from
  /// live metadata), so one transaction's commit never embeds another
  /// live transaction's uncommitted record counts or page lists.
  mutable Mutex committed_mu_{LockRank::kCommittedState, "db.committed_mu"};
  std::map<std::string, std::string> committed_set_meta_
      GUARDED_BY(committed_mu_);
  std::map<FileId, std::string> committed_aux_meta_ GUARDED_BY(committed_mu_);
  std::map<std::string, std::string> committed_tree_meta_
      GUARDED_BY(committed_mu_);
  /// Guards the set/aux-file maps: readers resolving OIDs take it
  /// shared, CreateSet/CreateAuxFile/DecodeState take it unique.
  mutable SharedMutex maps_mu_{LockRank::kDatabaseMaps, "db.maps_mu"};
  /// Pages holding the most recent checkpoint blob (page 0 is the header).
  std::vector<PageId> meta_pages_;
  RecoveryStats recovery_stats_;
  /// Slow-query log configuration (from Options).
  uint64_t slow_query_ns_ = 0;
  std::function<void(const QueryTrace&)> slow_query_hook_;
};

}  // namespace fieldrep

#endif  // FIELDREP_DB_DATABASE_H_
