#ifndef FIELDREP_DB_LOCK_TABLE_H_
#define FIELDREP_DB_LOCK_TABLE_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/annotated_mutex.h"
#include "common/status.h"
#include "telemetry/metrics.h"

namespace fieldrep {

/// \brief Per-set two-phase locks for concurrent write transactions
/// (DESIGN.md §14).
///
/// Lock ids are logical: id 0 is the schema/catalog lock (every write
/// transaction holds it shared, DDL and maintenance hold it exclusive);
/// id `1 + file_id` is the lock of the object set stored in that file.
/// Auxiliary files (replica sets S', link sets, indexes) need no ids of
/// their own: every transaction that writes one holds the owning head
/// set exclusively, because the replication closure (shared link ⇒
/// shared step types ⇒ merged closure) always covers it.
///
/// Deadlock policy — *ascending wait-or-die*: a transaction may block
/// only when the requested id is greater than every id it already holds
/// (or it holds nothing). A blocked chain therefore implies a strictly
/// ascending id sequence, so no wait cycle can close. A conflicting
/// request at or below a held id aborts immediately with a retryable
/// Status::Aborted — the caller releases everything and retries. The
/// Database acquires each transaction's lock set in ascending order
/// ({0 shared} first, then the replication closure's set ids), so
/// single-statement writers never die; only explicit multi-statement
/// session transactions whose later statements reach *down* the id
/// space can.
///
/// Every granted lock is also registered with the LockRank runtime
/// checker (rank kSetLock, a same-rank-ok class) on the holding thread,
/// so cross-subsystem inversions — e.g. taking a set lock while holding
/// a WAL or pool lock — abort with both names. Because network sessions
/// migrate between worker threads, registrations follow the transaction
/// through RegisterHeldOnThread/UnregisterHeldFromThread at
/// attach/detach time.
class LockTable {
 public:
  enum class Mode : uint8_t { kShared, kExclusive };

  /// The outcome of a non-blocking acquisition attempt.
  enum class TryOutcome {
    kAcquired,    ///< granted (or already held)
    kWouldBlock,  ///< conflict, but waiting would be safe: caller may park
    kMustAbort,   ///< conflict below a held id: caller must abort + retry
  };

  /// One transaction's lock set. Owned by the caller (the Database's
  /// session state); all members are managed by the LockTable.
  struct Txn {
    uint64_t id = 0;  ///< assigned by RegisterTxn
    /// Held lock ids -> mode. Mutated only by the table, on the thread
    /// the transaction is attached to.
    std::map<uint32_t, Mode> held;
  };

  static constexpr uint32_t kSchemaLockId = 0;
  static constexpr uint32_t LockIdForFile(uint32_t file_id) {
    return 1 + file_id;
  }

  LockTable() = default;
  LockTable(const LockTable&) = delete;
  LockTable& operator=(const LockTable&) = delete;

  /// Assigns the transaction its id. Call once before the first acquire.
  void RegisterTxn(Txn* txn);

  /// Blocking acquire. Waits only when `lock_id` exceeds every held id;
  /// otherwise a conflict returns a retryable Status::Aborted (the
  /// caller still holds its locks and must ReleaseAll). Re-acquiring a
  /// held lock is a no-op; a shared holder requesting exclusive is
  /// upgraded in place when it is the sole sharer and dies otherwise.
  Status Acquire(Txn* txn, uint32_t lock_id, Mode mode);

  /// Non-blocking acquire for the server's parking loop. On
  /// kWouldBlock/kMustAbort nothing new is granted, but locks granted by
  /// earlier calls stay held (the parked session resumes where it
  /// stopped; the aborting session releases everything).
  TryOutcome TryAcquire(Txn* txn, uint32_t lock_id, Mode mode);

  /// Releases every lock the transaction holds and wakes all waiters.
  /// Must run on the thread the transaction is attached to (rank
  /// registrations are per-thread).
  void ReleaseAll(Txn* txn);

  /// Re-registers (un-registers) the transaction's held locks with the
  /// lock-rank checker on the current thread. Called when a detached
  /// session transaction attaches to (detaches from) a worker thread.
  void RegisterHeldOnThread(const Txn& txn);
  void UnregisterHeldFromThread(const Txn& txn);

  // --- Telemetry -----------------------------------------------------------

  uint64_t acquisitions() const { return acquisitions_.load(); }
  uint64_t conflicts() const { return conflicts_.load(); }
  uint64_t aborts() const { return aborts_.load(); }
  uint64_t wait_ns() const { return wait_ns_.load(); }
  uint64_t held() const { return held_.load(); }
  uint64_t waiters() const { return waiters_.load(); }

  /// Appends fieldrep_lock_* samples (counters, gauges, wait histogram).
  void CollectMetrics(std::vector<MetricSample>* out) const;

 private:
  struct Entry {
    uint32_t sharers = 0;          ///< count of shared holders
    uint64_t sole_sharer = 0;      ///< txn id when sharers == 1
    uint64_t exclusive_owner = 0;  ///< txn id, 0 = none
    std::string name;              ///< "db.setlock.<id>" for the checker
  };

  /// The entry for `lock_id`, created on first use. Entries are never
  /// erased, so their addresses are stable registration keys.
  Entry* GetEntryLocked(uint32_t lock_id) REQUIRES(mu_);

  /// Whether `txn` could be granted `mode` right now.
  static bool CompatibleLocked(const Entry& e, uint64_t txn_id, Mode mode);

  mutable Mutex mu_{LockRank::kLockTable, "db.lock_table.mu"};
  CondVar cv_;
  std::map<uint32_t, std::unique_ptr<Entry>> entries_ GUARDED_BY(mu_);
  std::atomic<uint64_t> next_txn_id_{1};

  std::atomic<uint64_t> acquisitions_{0};
  std::atomic<uint64_t> conflicts_{0};
  std::atomic<uint64_t> aborts_{0};
  std::atomic<uint64_t> wait_ns_{0};
  std::atomic<uint64_t> held_{0};
  std::atomic<uint64_t> waiters_{0};
  Histogram wait_hist_ns_{Histogram::LatencyBoundsNs()};
};

}  // namespace fieldrep

#endif  // FIELDREP_DB_LOCK_TABLE_H_
