#include "db/lock_table.h"

#include <chrono>

#include "common/lock_rank.h"
#include "common/strings.h"

namespace fieldrep {

namespace {
inline uint64_t NowNs() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

/// True when waiting for `lock_id` cannot close a cycle: the id is above
/// everything the transaction holds. With every waiter obeying this rule
/// a wait chain is a strictly ascending id sequence.
bool MayWait(const LockTable::Txn& txn, uint32_t lock_id) {
  return txn.held.empty() || lock_id > txn.held.rbegin()->first;
}
}  // namespace

void LockTable::RegisterTxn(Txn* txn) {
  txn->id = next_txn_id_.fetch_add(1, std::memory_order_relaxed);
}

LockTable::Entry* LockTable::GetEntryLocked(uint32_t lock_id) {
  auto it = entries_.find(lock_id);
  if (it != entries_.end()) return it->second.get();
  auto entry = std::make_unique<Entry>();
  entry->name = lock_id == kSchemaLockId
                    ? "db.setlock.schema"
                    : StringPrintf("db.setlock.%u", lock_id - 1);
  Entry* raw = entry.get();
  entries_.emplace(lock_id, std::move(entry));
  return raw;
}

bool LockTable::CompatibleLocked(const Entry& e, uint64_t txn_id, Mode mode) {
  if (e.exclusive_owner != 0 && e.exclusive_owner != txn_id) return false;
  if (mode == Mode::kExclusive && e.sharers > 0 &&
      !(e.sharers == 1 && e.sole_sharer == txn_id)) {
    return false;
  }
  return true;
}

Status LockTable::Acquire(Txn* txn, uint32_t lock_id, Mode mode) {
  auto held_it = txn->held.find(lock_id);
  const bool upgrade =
      held_it != txn->held.end() && held_it->second == Mode::kShared &&
      mode == Mode::kExclusive;
  if (held_it != txn->held.end() && !upgrade) return Status::OK();

  const Entry* granted = nullptr;
  bool counted_conflict = false;
  uint64_t wait_start = 0;
  {
    UniqueMutexLock lock(mu_);
    Entry* e = GetEntryLocked(lock_id);
    for (;;) {
      const bool compatible = CompatibleLocked(*e, txn->id, mode);
      if (compatible) break;
      if (!counted_conflict) {
        conflicts_.fetch_add(1, std::memory_order_relaxed);
        counted_conflict = true;
      }
      // Upgrades with other sharers present and any conflicting request
      // at or below a held id die: waiting there could close a cycle.
      if (upgrade || !MayWait(*txn, lock_id)) {
        aborts_.fetch_add(1, std::memory_order_relaxed);
        return Status::Aborted(StringPrintf(
            "lock conflict on %s; release and retry the transaction",
            e->name.c_str()));
      }
      if (wait_start == 0) wait_start = NowNs();
      waiters_.fetch_add(1, std::memory_order_relaxed);
      cv_.wait(lock);
      waiters_.fetch_sub(1, std::memory_order_relaxed);
    }
    if (upgrade) {
      e->sharers = 0;
      e->sole_sharer = 0;
      e->exclusive_owner = txn->id;
    } else if (mode == Mode::kShared) {
      if (++e->sharers == 1) e->sole_sharer = txn->id;
    } else {
      e->exclusive_owner = txn->id;
    }
    granted = e;
  }
  if (wait_start != 0) {
    const uint64_t waited = NowNs() - wait_start;
    wait_ns_.fetch_add(waited, std::memory_order_relaxed);
    wait_hist_ns_.Observe(waited);
  }
  if (upgrade) {
    held_it->second = Mode::kExclusive;
  } else {
    // Register the logical lock on this thread *after* dropping mu_
    // (kSetLock < kLockTable; the table lock is internal plumbing, the
    // set lock is what the transaction semantically holds).
    lock_rank::OnAcquire(granted, LockRank::kSetLock, granted->name.c_str(),
                         false, true);
    txn->held.emplace(lock_id, mode);
    held_.fetch_add(1, std::memory_order_relaxed);
  }
  acquisitions_.fetch_add(1, std::memory_order_relaxed);
  return Status::OK();
}

LockTable::TryOutcome LockTable::TryAcquire(Txn* txn, uint32_t lock_id,
                                            Mode mode) {
  auto held_it = txn->held.find(lock_id);
  const bool upgrade =
      held_it != txn->held.end() && held_it->second == Mode::kShared &&
      mode == Mode::kExclusive;
  if (held_it != txn->held.end() && !upgrade) return TryOutcome::kAcquired;

  const Entry* granted = nullptr;
  {
    MutexLock lock(mu_);
    Entry* e = GetEntryLocked(lock_id);
    if (!CompatibleLocked(*e, txn->id, mode)) {
      conflicts_.fetch_add(1, std::memory_order_relaxed);
      if (upgrade || !MayWait(*txn, lock_id)) {
        aborts_.fetch_add(1, std::memory_order_relaxed);
        return TryOutcome::kMustAbort;
      }
      return TryOutcome::kWouldBlock;
    }
    if (upgrade) {
      e->sharers = 0;
      e->sole_sharer = 0;
      e->exclusive_owner = txn->id;
    } else if (mode == Mode::kShared) {
      if (++e->sharers == 1) e->sole_sharer = txn->id;
    } else {
      e->exclusive_owner = txn->id;
    }
    granted = e;
  }
  if (upgrade) {
    held_it->second = Mode::kExclusive;
  } else {
    lock_rank::OnAcquire(granted, LockRank::kSetLock, granted->name.c_str(),
                         false, /*blocking=*/false);
    txn->held.emplace(lock_id, mode);
    held_.fetch_add(1, std::memory_order_relaxed);
  }
  acquisitions_.fetch_add(1, std::memory_order_relaxed);
  return TryOutcome::kAcquired;
}

void LockTable::ReleaseAll(Txn* txn) {
  if (txn->held.empty()) return;
  std::vector<const Entry*> released;
  released.reserve(txn->held.size());
  {
    MutexLock lock(mu_);
    for (const auto& [lock_id, mode] : txn->held) {
      Entry* e = GetEntryLocked(lock_id);
      if (mode == Mode::kExclusive) {
        if (e->exclusive_owner == txn->id) e->exclusive_owner = 0;
      } else if (e->sharers > 0) {
        if (--e->sharers == 1) {
          // The surviving sharer's id is unknown here; sole-sharer
          // upgrades simply stop matching until it re-shares. Conservative
          // but safe — upgrades then die and retry.
          e->sole_sharer = 0;
        } else if (e->sharers == 0) {
          e->sole_sharer = 0;
        }
      }
      released.push_back(e);
    }
    cv_.notify_all();
  }
  for (const Entry* e : released) lock_rank::OnRelease(e, e->name.c_str());
  held_.fetch_sub(txn->held.size(), std::memory_order_relaxed);
  txn->held.clear();
}

void LockTable::RegisterHeldOnThread(const Txn& txn) {
  if (txn.held.empty() || !kLockRankChecksEnabled) return;
  MutexLock lock(mu_);
  for (const auto& [lock_id, mode] : txn.held) {
    Entry* e = GetEntryLocked(lock_id);
    // blocking=false: attach order is the map's id order, not the
    // original acquisition order; recorded but not order-checked.
    lock_rank::OnAcquire(e, LockRank::kSetLock, e->name.c_str(), false,
                         /*blocking=*/false);
  }
}

void LockTable::UnregisterHeldFromThread(const Txn& txn) {
  if (txn.held.empty() || !kLockRankChecksEnabled) return;
  MutexLock lock(mu_);
  for (const auto& [lock_id, mode] : txn.held) {
    Entry* e = GetEntryLocked(lock_id);
    lock_rank::OnRelease(e, e->name.c_str());
  }
}

void LockTable::CollectMetrics(std::vector<MetricSample>* out) const {
  auto add = [out](const char* name, const char* help, MetricKind kind,
                   double value) {
    MetricSample s;
    s.name = name;
    s.help = help;
    s.kind = kind;
    s.value = value;
    out->push_back(std::move(s));
  };
  add("fieldrep_lock_acquisitions_total",
      "Set locks granted to write transactions.", MetricKind::kCounter,
      static_cast<double>(acquisitions()));
  add("fieldrep_lock_conflicts_total",
      "Lock requests that found a conflicting holder.", MetricKind::kCounter,
      static_cast<double>(conflicts()));
  add("fieldrep_lock_aborts_total",
      "Transactions killed by the ascending wait-or-die policy.",
      MetricKind::kCounter, static_cast<double>(aborts()));
  add("fieldrep_lock_wait_ns_total",
      "Total nanoseconds spent blocked on set locks.", MetricKind::kCounter,
      static_cast<double>(wait_ns()));
  add("fieldrep_lock_held", "Set locks currently held.", MetricKind::kGauge,
      static_cast<double>(held()));
  add("fieldrep_lock_waiters", "Transactions currently blocked.",
      MetricKind::kGauge, static_cast<double>(waiters()));
  MetricSample wait;
  wait.name = "fieldrep_lock_wait_ns";
  wait.help = "Per-acquisition lock wait latency, nanoseconds.";
  wait.kind = MetricKind::kHistogram;
  wait.histogram = wait_hist_ns_.TakeSnapshot();
  out->push_back(std::move(wait));
}

}  // namespace fieldrep
