#include "db/database.h"

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <set>

#include "check/integrity_checker.h"
#include "common/bytes.h"
#include "common/strings.h"
#include "storage/slotted_page.h"
#include "storage/uring_device.h"

namespace fieldrep {

namespace {
// Header page (page 0) layout: 8-byte magic, u64 blob size, u32 blob page
// count, then that many u32 page ids.
// Format v2: checkpoint blob pages carry a 40-byte kMeta page header (with
// a per-page checksum) instead of raw full-page chunks.
constexpr char kHeaderMagic[8] = {'F', 'R', 'E', 'P', '0', '0', '0', '2'};

// Blob bytes stored per meta page: everything after the page header.
constexpr size_t kMetaChunkBytes = kPageSize - kPageHeaderBytes;
}  // namespace

// ---------------------------------------------------------------------------
// Session transactions (DESIGN.md §14)
// ---------------------------------------------------------------------------

struct Database::SessionTxn {
  Database* db = nullptr;
  /// The two-phase lock set, managed by the database's LockTable.
  LockTable::Txn locks;
  /// Created by BeginSessionTransaction (vs. the stack bracket of a
  /// single-statement WriteOp). Only explicit sessions are heap-owned,
  /// counted in open_sessions_, and detachable.
  bool explicit_session = false;
  /// The outer WAL bracket exists. Opened lazily on the first mutating
  /// statement, so idle Begin'd sessions never hold a live WAL
  /// transaction (which would block checkpoints).
  bool wal_begun = false;
  /// Publish scope for the committed-state registry: everything (DDL,
  /// checkpoint) or the write-locked sets.
  bool publish_all = false;
  std::set<std::string> publish_sets;
  /// The WAL transaction handle while the session is detached from any
  /// thread (between network statements).
  WalTxn* wal_txn = nullptr;
  SessionTxn* tls_prev = nullptr;
};

namespace {
/// The stack of transactions attached to this thread, one node per
/// database (tests open several databases on one thread; a server worker
/// can hold one database's session while flushing another's).
thread_local Database::SessionTxn* tls_db_txn_head = nullptr;

void TlsPush(Database::SessionTxn* t) {
  t->tls_prev = tls_db_txn_head;
  tls_db_txn_head = t;
}

void TlsUnlink(Database::SessionTxn* t) {
  Database::SessionTxn** p = &tls_db_txn_head;
  while (*p != nullptr && *p != t) p = &(*p)->tls_prev;
  if (*p == t) {
    *p = t->tls_prev;
    t->tls_prev = nullptr;
  }
}
}  // namespace

Database::SessionTxn* Database::CurrentTxn() const {
  for (SessionTxn* t = tls_db_txn_head; t != nullptr; t = t->tls_prev) {
    if (t->db == this) return t;
  }
  return nullptr;
}

Result<std::unique_ptr<Database>> Database::Open(const Options& options) {
  std::unique_ptr<Database> db(new Database());
  if (options.device != nullptr) {
    db->device_ = options.device;
  } else if (options.file_path.empty()) {
    db->owned_device_ = std::make_unique<MemoryDevice>();
    db->device_ = db->owned_device_.get();
  } else if (options.storage_backend == StorageBackend::kUring) {
    auto uring_device = std::make_unique<UringDevice>();
    UringDevice::Options uring_options;
    uring_options.use_o_direct = options.o_direct;
    FIELDREP_RETURN_IF_ERROR(
        uring_device->Open(options.file_path, uring_options));
    db->device_ = uring_device.get();
    db->owned_device_ = std::move(uring_device);
  } else {
    auto file_device = std::make_unique<FileDevice>();
    FIELDREP_RETURN_IF_ERROR(file_device->Open(options.file_path));
    db->device_ = file_device.get();
    db->owned_device_ = std::move(file_device);
  }

  StorageDevice* wal_device = nullptr;
  if (options.enable_wal) {
    if (options.wal_device != nullptr) {
      wal_device = options.wal_device;
    } else if (!options.wal_path.empty() || !options.file_path.empty()) {
      auto f = std::make_unique<FileDevice>();
      FIELDREP_RETURN_IF_ERROR(f->Open(options.wal_path.empty()
                                           ? options.file_path + ".wal"
                                           : options.wal_path));
      wal_device = f.get();
      db->owned_wal_device_ = std::move(f);
    } else {
      db->owned_wal_device_ = std::make_unique<MemoryDevice>();
      wal_device = db->owned_wal_device_.get();
    }
    // Crash recovery runs straight against the devices, before the buffer
    // pool exists: replay the committed log tail, then start a fresh
    // epoch above the recovered one.
    FIELDREP_RETURN_IF_ERROR(RecoveryManager::Recover(
        db->device_, wal_device, &db->recovery_stats_));
  }
  db->wal_device_ = wal_device;
  bool restore = db->device_->page_count() > 0;

  size_t frames = options.buffer_pool_frames == 0 ? 1
                                                  : options.buffer_pool_frames;
  db->pool_ = std::make_unique<BufferPool>(db->device_, frames);
  db->pool_->set_read_ahead_window(options.read_ahead_window);
  Database* raw = db.get();
  if (options.enable_wal) {
    WalManager::Options wal_options;
    wal_options.sync_on_commit = options.wal_sync_on_commit;
    wal_options.group_commit = options.wal_group_commit;
    wal_options.checkpoint_threshold_bytes =
        options.wal_checkpoint_threshold_bytes;
    db->wal_ = std::make_unique<WalManager>(wal_device, db->pool_.get(),
                                            wal_options);
    FIELDREP_RETURN_IF_ERROR(db->wal_->Initialize(db->recovery_stats_.epoch + 1));
    db->pool_->SetObserver(db->wal_.get());
    // The committing transaction's metadata is published into the
    // committed-state registry first (inside the commit, serialized by
    // the WAL's commit mutex), so the meta-page image below describes
    // exactly the committed transactions including this one — never a
    // concurrent transaction's uncommitted state. Commits outside any
    // tracked transaction (component tests driving the WAL directly)
    // refresh the whole registry from live state.
    db->wal_->set_precommit_hook([raw] {
      SessionTxn* txn = raw->CurrentTxn();
      if (txn != nullptr) {
        raw->PublishCommittedState(txn);
      } else {
        raw->RefreshAllCommitted();
      }
      return raw->WriteStateToMetaPages();
    });
  }
  db->indexes_ =
      std::make_unique<IndexManager>(db->pool_.get(), &db->catalog_, db.get());
  db->replication_ = std::make_unique<ReplicationManager>(
      &db->catalog_, db.get(), db->indexes_.get());
  db->executor_ = std::make_unique<Executor>(&db->catalog_, db.get(),
                                             db->indexes_.get(),
                                             db->replication_.get());
  if (db->wal_ != nullptr) db->replication_->set_wal(db->wal_.get());
  db->replication_->set_pool(db->pool_.get());
  // Deferred-propagation flushes triggered by read queries run as locked
  // write transactions on the path's head set.
  db->executor_->set_flush_deferred(
      [raw](uint16_t path_id) { return raw->FlushDeferredPath(path_id); });
  if (options.worker_threads > 1) {
    db->workers_ = std::make_unique<ThreadPool>(options.worker_threads);
    db->executor_->set_worker_pool(db->workers_.get());
  }
  db->slow_query_ns_ = options.slow_query_ns;
  db->slow_query_hook_ = options.slow_query_hook;
  if (options.enable_telemetry) {
    db->metrics_ = std::make_unique<MetricsRegistry>();
    db->profiler_ = std::make_unique<WorkloadProfiler>();
    db->executor_->set_profiler(db->profiler_.get());
    db->replication_->set_profiler(db->profiler_.get());
    // Components keep their always-on relaxed-atomic instruments; the
    // registry only names and renders them, so samples are computed at
    // Collect() time and telemetry adds nothing to any hot path.
    BufferPool* pool = db->pool_.get();
    db->metrics_->AddCollector(
        [pool](std::vector<MetricSample>* out) { pool->CollectMetrics(out); });
    if (db->wal_ != nullptr) {
      WalManager* wal = db->wal_.get();
      db->metrics_->AddCollector(
          [wal](std::vector<MetricSample>* out) { wal->CollectMetrics(out); });
    }
    ReplicationManager* repl = db->replication_.get();
    db->metrics_->AddCollector(
        [repl](std::vector<MetricSample>* out) { repl->CollectMetrics(out); });
    LockTable* locks = &db->lock_table_;
    db->metrics_->AddCollector([locks](std::vector<MetricSample>* out) {
      locks->CollectMetrics(out);
    });
    WorkloadProfiler* prof = db->profiler_.get();
    db->metrics_->AddCollector(
        [prof](std::vector<MetricSample>* out) { prof->CollectMetrics(out); });
    // The worker pool is swappable (SetWorkerThreads), so the collector
    // reads through the database each render. SetWorkerThreads already
    // requires quiesced queries; that covers concurrent Collect() too.
    db->metrics_->AddCollector([raw](std::vector<MetricSample>* out) {
      ThreadPool* workers = raw->workers_.get();
      if (workers != nullptr) workers->CollectMetrics(out);
    });
    // The owned device outlives the pool (declaration order above), and
    // the registry is destroyed last, so the capture stays valid for the
    // database's lifetime.
    if (auto* uring = dynamic_cast<UringDevice*>(db->owned_device_.get())) {
      db->metrics_->AddCollector([uring](std::vector<MetricSample>* out) {
        uring->CollectMetrics(out);
      });
    }
  }
  if (restore) {
    FIELDREP_RETURN_IF_ERROR(db->RestoreFromDevice());
  } else {
    // Reserve page 0 as the checkpoint header.
    PageGuard guard;
    FIELDREP_RETURN_IF_ERROR(db->pool_->NewPage(&guard));
    if (guard.page_id() != 0) {
      return Status::Internal("header page is not page 0");
    }
    guard.MarkDirty();
  }
  // Seed the committed-state registry with the opening state.
  db->RefreshAllCommitted();
  return db;
}

// ---------------------------------------------------------------------------
// Two-phase locking
// ---------------------------------------------------------------------------

Status Database::WriteLockClosure(
    const std::string& set_name, std::map<uint32_t, std::string>* locks) const {
  FIELDREP_ASSIGN_OR_RETURN(const SetInfo* target, catalog_.GetSet(set_name));
  std::set<std::string> closure_sets = {set_name};
  std::set<std::string> closure_types = {target->type_name};
  const std::vector<std::string> all_sets = catalog_.SetNames();
  const std::vector<uint16_t> all_paths = catalog_.AllPathIds();
  bool changed = true;
  while (changed) {
    changed = false;
    for (uint16_t path_id : all_paths) {
      const ReplicationPathInfo* path = catalog_.GetPath(path_id);
      if (path == nullptr) continue;
      // Every type a propagation along this path reads or writes.
      std::set<std::string> chain;
      for (const PathStep& step : path->bound.steps) {
        chain.insert(step.source_type);
        chain.insert(step.target_type);
      }
      chain.insert(path->bound.terminal_type);
      bool relevant = closure_sets.count(path->bound.set_name) != 0;
      for (auto it = chain.begin(); !relevant && it != chain.end(); ++it) {
        relevant = closure_types.count(*it) != 0;
      }
      if (!relevant) continue;
      if (closure_sets.insert(path->bound.set_name).second) changed = true;
      for (const std::string& type : chain) {
        if (closure_types.insert(type).second) changed = true;
      }
    }
    for (const std::string& name : all_sets) {
      if (closure_sets.count(name) != 0) continue;
      auto info = catalog_.GetSet(name);
      if (info.ok() && closure_types.count(info.value()->type_name) != 0) {
        closure_sets.insert(name);
        changed = true;
      }
    }
  }
  for (const std::string& name : closure_sets) {
    auto info = catalog_.GetSet(name);
    if (!info.ok()) continue;
    (*locks)[LockTable::LockIdForFile(info.value()->file_id)] = name;
  }
  return Status::OK();
}

Status Database::AcquireWriteLocks(SessionTxn* txn,
                                   const std::string& set_name) {
  // Schema lock (id 0, the globally lowest) first, then the closure in
  // ascending set-lock-id order: acquisition never reaches down the id
  // space, so wait-or-die never kills a single-statement writer.
  FIELDREP_RETURN_IF_ERROR(lock_table_.Acquire(
      &txn->locks, LockTable::kSchemaLockId, LockTable::Mode::kShared));
  std::map<uint32_t, std::string> closure;
  FIELDREP_RETURN_IF_ERROR(WriteLockClosure(set_name, &closure));
  for (const auto& [lock_id, name] : closure) {
    FIELDREP_RETURN_IF_ERROR(
        lock_table_.Acquire(&txn->locks, lock_id, LockTable::Mode::kExclusive));
  }
  for (const auto& [lock_id, name] : closure) txn->publish_sets.insert(name);
  return Status::OK();
}

Status Database::AcquireSchemaExclusive(SessionTxn* txn) {
  FIELDREP_RETURN_IF_ERROR(lock_table_.Acquire(
      &txn->locks, LockTable::kSchemaLockId, LockTable::Mode::kExclusive));
  txn->publish_all = true;
  return Status::OK();
}

Status Database::TryLockSetForWrite(const std::string* set_name,
                                    LockTable::TryOutcome* outcome) {
  *outcome = LockTable::TryOutcome::kAcquired;
  SessionTxn* txn = CurrentTxn();
  if (txn == nullptr) {
    return Status::FailedPrecondition(
        "no transaction attached to this thread");
  }
  if (set_name == nullptr) {
    *outcome = lock_table_.TryAcquire(&txn->locks, LockTable::kSchemaLockId,
                                      LockTable::Mode::kExclusive);
    if (*outcome == LockTable::TryOutcome::kAcquired) txn->publish_all = true;
    return Status::OK();
  }
  *outcome = lock_table_.TryAcquire(&txn->locks, LockTable::kSchemaLockId,
                                    LockTable::Mode::kShared);
  if (*outcome != LockTable::TryOutcome::kAcquired) return Status::OK();
  std::map<uint32_t, std::string> closure;
  FIELDREP_RETURN_IF_ERROR(WriteLockClosure(*set_name, &closure));
  for (const auto& [lock_id, name] : closure) {
    *outcome = lock_table_.TryAcquire(&txn->locks, lock_id,
                                      LockTable::Mode::kExclusive);
    if (*outcome != LockTable::TryOutcome::kAcquired) return Status::OK();
  }
  for (const auto& [lock_id, name] : closure) txn->publish_sets.insert(name);
  return Status::OK();
}

Status Database::WriteOp(const std::string* set_name,
                         const std::function<Status()>& fn, bool wal_bracket) {
  SessionTxn* joined = CurrentTxn();
  if (joined != nullptr) {
    // Statement inside an attached transaction (an explicit session, or
    // nested in another WriteOp): its locks accumulate there — strict
    // 2PL holds them to that transaction's commit/abort — and the WAL
    // bracket opens lazily on this first mutation. Commit, durability,
    // and publication happen when the owning transaction ends.
    FIELDREP_RETURN_IF_ERROR(set_name != nullptr
                                 ? AcquireWriteLocks(joined, *set_name)
                                 : AcquireSchemaExclusive(joined));
    if (wal_bracket && wal_ != nullptr && !joined->wal_begun) {
      FIELDREP_RETURN_IF_ERROR(wal_->BeginTransaction());
      joined->wal_begun = true;
    }
    return fn();
  }

  // The operation is its own transaction.
  SessionTxn local;
  local.db = this;
  lock_table_.RegisterTxn(&local.locks);
  TlsPush(&local);
  Status s = set_name != nullptr ? AcquireWriteLocks(&local, *set_name)
                                 : AcquireSchemaExclusive(&local);
  uint64_t durable = 0;
  if (s.ok()) {
    if (wal_bracket && wal_ != nullptr) {
      s = wal_->BeginTransaction();
      local.wal_begun = s.ok();
    }
    if (s.ok()) {
      s = fn();
      if (local.wal_begun) {
        if (s.ok()) {
          uint64_t lsn = 0;
          s = wal_->CommitTransaction(&lsn);
          if (s.ok() && wal_->group_commit_enabled()) durable = lsn;
        } else {
          // Redo-only log: nothing was logged, recovery lands on the
          // last committed state.
          (void)wal_->AbortTransaction();
        }
      } else if (s.ok() && wal_bracket) {
        // Unlogged database: no commit hook runs, publish directly.
        PublishCommittedState(&local);
      }
    }
  }
  lock_table_.ReleaseAll(&local.locks);
  TlsUnlink(&local);
  if (s.ok() && durable != 0) s = WaitWalDurable(durable);
  if (s.ok() && wal_bracket) MaybeAutoCheckpoint();
  return s;
}

void Database::MaybeAutoCheckpoint() {
  if (wal_ == nullptr || !wal_->needs_auto_checkpoint()) return;
  // Best-effort: skip when explicit sessions are open (the exclusive
  // schema lock below would stall until they commit); any failure
  // surfaces at the next explicit Checkpoint.
  if (InSessionTransaction()) return;
  (void)Checkpoint();
}

// ---------------------------------------------------------------------------
// Committed-state registry
// ---------------------------------------------------------------------------

void Database::RefreshAllCommitted() {
  const FileId output_id =
      executor_ != nullptr ? executor_->output_file_id() : kInvalidFileId;
  MutexLock committed_lock(committed_mu_);
  committed_set_meta_.clear();
  committed_aux_meta_.clear();
  committed_tree_meta_.clear();
  ReaderMutexLock maps_lock(maps_mu_);
  for (const auto& [name, set] : sets_) {
    committed_set_meta_[name] = set->file().EncodeMetadata();
  }
  for (const auto& [file_id, file] : aux_files_) {
    // The output file is scratch state written by concurrent readers;
    // EncodeState reads it live under the executor's output lock.
    if (file_id == output_id) continue;
    committed_aux_meta_[file_id] = file->EncodeMetadata();
  }
  for (const std::string& set_name : catalog_.SetNames()) {
    for (const IndexInfo* info : catalog_.IndexesOnSet(set_name)) {
      auto tree = indexes_->GetIndex(info->name);
      if (tree.ok()) {
        committed_tree_meta_[info->name] = tree.value()->EncodeMetadata();
      }
    }
  }
}

void Database::PublishCommittedState(SessionTxn* txn) {
  if (txn->publish_all) {
    RefreshAllCommitted();
    return;
  }
  if (txn->publish_sets.empty()) return;
  MutexLock committed_lock(committed_mu_);
  ReaderMutexLock maps_lock(maps_mu_);
  for (const std::string& set_name : txn->publish_sets) {
    auto set_it = sets_.find(set_name);
    if (set_it == sets_.end()) continue;
    committed_set_meta_[set_name] = set_it->second->file().EncodeMetadata();
    // Auxiliary files owned by this head set — the S' replica files of
    // paths headed here and the link sets anchored here — are covered by
    // the set's exclusive lock, so their live metadata is this
    // transaction's too.
    for (uint16_t path_id : catalog_.PathsHeadedAt(set_name)) {
      const ReplicationPathInfo* path = catalog_.GetPath(path_id);
      if (path == nullptr) continue;
      auto aux_it = aux_files_.find(path->replica_set_file);
      if (aux_it != aux_files_.end()) {
        committed_aux_meta_[aux_it->first] = aux_it->second->EncodeMetadata();
      }
    }
    for (uint8_t link_id : catalog_.link_registry().AllLinkIds()) {
      const LinkInfo* link = catalog_.link_registry().GetLink(link_id);
      if (link == nullptr || link->head_set != set_name) continue;
      auto aux_it = aux_files_.find(link->link_set_file);
      if (aux_it != aux_files_.end()) {
        committed_aux_meta_[aux_it->first] = aux_it->second->EncodeMetadata();
      }
    }
    for (const IndexInfo* info : catalog_.IndexesOnSet(set_name)) {
      auto tree = indexes_->GetIndex(info->name);
      if (tree.ok()) {
        committed_tree_meta_[info->name] = tree.value()->EncodeMetadata();
      }
    }
  }
}

std::string Database::EncodeState() const {
  // The scratch output file is read live, but consistently: its id and
  // metadata come as one pair from under the executor's output lock
  // (released before committed_mu_ below — never nested).
  FileId output_id = kInvalidFileId;
  const std::string output_meta = executor_->EncodeOutputMetadata(&output_id);
  const bool has_output = output_id != kInvalidFileId && !output_meta.empty();
  MutexLock lock(committed_mu_);
  std::string out;
  PutU16(&out, static_cast<uint16_t>(committed_set_meta_.size()));
  for (const auto& [name, meta] : committed_set_meta_) {
    PutLengthPrefixed(&out, name);
    PutLengthPrefixed(&out, meta);
  }
  PutU16(&out, static_cast<uint16_t>(committed_aux_meta_.size() +
                                     (has_output ? 1 : 0)));
  for (const auto& [file_id, meta] : committed_aux_meta_) {
    PutU16(&out, file_id);
    PutLengthPrefixed(&out, meta);
  }
  if (has_output) {
    PutU16(&out, output_id);
    PutLengthPrefixed(&out, output_meta);
  }
  PutU16(&out, static_cast<uint16_t>(committed_tree_meta_.size()));
  for (const auto& [name, meta] : committed_tree_meta_) {
    PutLengthPrefixed(&out, name);
    PutLengthPrefixed(&out, meta);
  }
  PutU16(&out, has_output ? output_id : kInvalidFileId);
  return out;
}

Status Database::DecodeState(ByteReader* reader) {
  uint16_t set_count;
  if (!reader->GetU16(&set_count)) {
    return Status::Corruption("truncated state: sets");
  }
  for (uint16_t i = 0; i < set_count; ++i) {
    std::string name, metadata;
    if (!reader->GetLengthPrefixed(&name) ||
        !reader->GetLengthPrefixed(&metadata)) {
      return Status::Corruption("truncated set state");
    }
    FIELDREP_ASSIGN_OR_RETURN(const SetInfo* info, catalog_.GetSet(name));
    FIELDREP_ASSIGN_OR_RETURN(const TypeDescriptor* type,
                              catalog_.GetType(info->type_name));
    auto set =
        std::make_unique<ObjectSet>(pool_.get(), info->file_id, name, type);
    FIELDREP_RETURN_IF_ERROR(set->file().DecodeMetadata(metadata));
    WriterMutexLock lock(maps_mu_);
    sets_by_file_[info->file_id] = set.get();
    sets_.emplace(name, std::move(set));
  }
  uint16_t aux_count;
  if (!reader->GetU16(&aux_count)) {
    return Status::Corruption("truncated state: aux files");
  }
  for (uint16_t i = 0; i < aux_count; ++i) {
    uint16_t file_id;
    std::string metadata;
    if (!reader->GetU16(&file_id) ||
        !reader->GetLengthPrefixed(&metadata)) {
      return Status::Corruption("truncated aux file state");
    }
    auto file = std::make_unique<RecordFile>(pool_.get(), file_id);
    FIELDREP_RETURN_IF_ERROR(file->DecodeMetadata(metadata));
    WriterMutexLock lock(maps_mu_);
    aux_files_.emplace(file_id, std::move(file));
  }
  uint16_t tree_count;
  if (!reader->GetU16(&tree_count)) {
    return Status::Corruption("truncated state: trees");
  }
  for (uint16_t i = 0; i < tree_count; ++i) {
    std::string name, metadata;
    if (!reader->GetLengthPrefixed(&name) ||
        !reader->GetLengthPrefixed(&metadata)) {
      return Status::Corruption("truncated tree state");
    }
    FIELDREP_RETURN_IF_ERROR(indexes_->RestoreIndex(name, metadata));
  }
  uint16_t output_id;
  if (!reader->GetU16(&output_id)) {
    return Status::Corruption("truncated state: output file");
  }
  executor_->restore_output_file_id(output_id);
  return Status::OK();
}

Status Database::SetWorkerThreads(size_t n) {
  // Lock-only quiescence of writers; callers quiesce read queries.
  return WriteOp(
      nullptr,
      [&] {
        // Detach before destroying so a pool is never visible to the
        // executor while its threads are joining.
        executor_->set_worker_pool(nullptr);
        workers_.reset();
        if (n > 1) {
          workers_ = std::make_unique<ThreadPool>(n);
          executor_->set_worker_pool(workers_.get());
        }
        return Status::OK();
      },
      /*wal_bracket=*/false);
}

Status Database::Checkpoint() {
  if (CurrentTxn() != nullptr) {
    return Status::FailedPrecondition(
        "checkpoint inside an open transaction");
  }
  SessionTxn local;
  local.db = this;
  lock_table_.RegisterTxn(&local.locks);
  TlsPush(&local);
  // The exclusive schema lock quiesces every writer (writers hold it
  // shared for their whole transaction), so no WAL transaction is live
  // anywhere — the no-steal precondition for the pool flush below.
  Status s = AcquireSchemaExclusive(&local);
  if (s.ok()) s = replication_->FlushAllPendingPropagation();
  if (s.ok()) {
    if (wal_ != nullptr) {
      // The pre-commit hook publishes and writes the state blob inside
      // this (otherwise empty) transaction, so the catalog update itself
      // is logged; the WAL checkpoint then flushes the pool and
      // truncates the log.
      WalTransaction txn(wal_.get());
      s = txn.begin_status();
      if (s.ok()) s = txn.Commit();
      if (s.ok()) s = wal_->Checkpoint();
    } else {
      PublishCommittedState(&local);
      s = WriteStateToMetaPages();
      if (s.ok()) s = pool_->FlushAll();
    }
  }
  lock_table_.ReleaseAll(&local.locks);
  TlsUnlink(&local);
  return s;
}

Status Database::WriteStateToMetaPages() {
  std::string blob;
  catalog_.EncodeTo(&blob);
  blob += EncodeState();

  // Lay the blob across kMeta pages, reusing prior checkpoint pages. Each
  // page holds a header (type, chunk index, chunk length, checksum slot)
  // followed by one kMetaChunkBytes chunk of the blob.
  size_t pages_needed = (blob.size() + kMetaChunkBytes - 1) / kMetaChunkBytes;
  while (meta_pages_.size() < pages_needed) {
    PageGuard guard;
    FIELDREP_RETURN_IF_ERROR(pool_->NewPage(&guard));
    guard.MarkDirty();
    meta_pages_.push_back(guard.page_id());
  }
  for (size_t i = 0; i < pages_needed; ++i) {
    PageGuard guard;
    FIELDREP_RETURN_IF_ERROR(pool_->FetchPage(meta_pages_[i], &guard));
    size_t offset = i * kMetaChunkBytes;
    size_t n = std::min<size_t>(kMetaChunkBytes, blob.size() - offset);
    std::memset(guard.data(), 0, kPageSize);
    uint16_t type = static_cast<uint16_t>(PageType::kMeta);
    std::memcpy(guard.data(), &type, sizeof(type));
    uint32_t chunk_index = static_cast<uint32_t>(i);
    uint32_t chunk_len = static_cast<uint32_t>(n);
    std::memcpy(guard.data() + 4, &chunk_index, sizeof(chunk_index));
    std::memcpy(guard.data() + 8, &chunk_len, sizeof(chunk_len));
    std::memcpy(guard.data() + kPageHeaderBytes, blob.data() + offset, n);
    guard.MarkDirty();
  }
  // Header page.
  if ((meta_pages_.size() + 3) * 4 + 20 > kPageSize) {
    return Status::OutOfRange("checkpoint blob too large for header page");
  }
  PageGuard header;
  FIELDREP_RETURN_IF_ERROR(pool_->FetchPage(0, &header));
  std::string head;
  head.append(kHeaderMagic, sizeof(kHeaderMagic));
  PutU64(&head, blob.size());
  PutU32(&head, static_cast<uint32_t>(pages_needed));
  for (size_t i = 0; i < pages_needed; ++i) PutU32(&head, meta_pages_[i]);
  std::memcpy(header.data(), head.data(), head.size());
  header.MarkDirty();
  header.Release();
  return Status::OK();
}

std::string Database::StorageReport() {
  ReaderMutexLock lock(maps_mu_);
  std::string out = "storage report\n";
  out += StringPrintf("  device pages: %u (%.1f KiB)\n",
                      device_->page_count(),
                      device_->page_count() * kPageSize / 1024.0);
  out += StringPrintf("  buffer pool: %zu frames, %zu cached, %s\n",
                      pool_->capacity(), pool_->pages_cached(),
                      pool_->stats().ToString().c_str());
  for (const auto& [name, set] : sets_) {
    out += StringPrintf("  set %-12s file %-3u %8llu objects %6u pages\n",
                        name.c_str(), set->file().file_id(),
                        static_cast<unsigned long long>(
                            set->file().record_count()),
                        set->file().page_count());
  }
  for (const auto& [file_id, file] : aux_files_) {
    // Identify the role of each auxiliary file from the catalog.
    std::string role = "aux";
    for (uint8_t link_id : catalog_.link_registry().AllLinkIds()) {
      const LinkInfo* link = catalog_.link_registry().GetLink(link_id);
      if (link != nullptr && link->link_set_file == file_id) {
        role = "link set " + link->key;
        break;
      }
    }
    for (uint16_t path_id : catalog_.AllPathIds()) {
      const ReplicationPathInfo* path = catalog_.GetPath(path_id);
      if (path != nullptr && path->replica_set_file == file_id) {
        role = "replica set (S') for " + path->spec;
        break;
      }
    }
    if (file_id == executor_->output_file_id()) role = "output file (T)";
    out += StringPrintf("  %-16s file %-3u %8llu records %6u pages  [%s]\n",
                        "aux", file_id,
                        static_cast<unsigned long long>(file->record_count()),
                        file->page_count(), role.c_str());
  }
  for (const std::string& set_name : catalog_.SetNames()) {
    for (const IndexInfo* info : catalog_.IndexesOnSet(set_name)) {
      auto tree = indexes_->GetIndex(info->name);
      if (!tree.ok()) continue;
      auto pages = tree.value()->PageCount();
      out += StringPrintf(
          "  index %-12s on %s.%s: %llu entries, %u pages\n",
          info->name.c_str(), info->set_name.c_str(), info->key_expr.c_str(),
          static_cast<unsigned long long>(tree.value()->size()),
          pages.ok() ? *pages : 0);
    }
  }
  return out;
}

Status Database::RestoreFromDevice() {
  PageGuard header;
  FIELDREP_RETURN_IF_ERROR(pool_->FetchPage(0, &header));
  if (std::memcmp(header.data(), kHeaderMagic, sizeof(kHeaderMagic)) != 0) {
    return Status::Corruption(
        "backing file has no fieldrep checkpoint header (was Checkpoint() "
        "called before closing?)");
  }
  uint64_t blob_size = DecodeU64(header.data() + 8);
  uint32_t page_count = DecodeU32(header.data() + 16);
  meta_pages_.clear();
  for (uint32_t i = 0; i < page_count; ++i) {
    meta_pages_.push_back(DecodeU32(header.data() + 20 + i * 4));
  }
  header.Release();
  std::string blob;
  blob.reserve(blob_size);
  for (uint32_t i = 0; i < page_count; ++i) {
    PageGuard guard;
    FIELDREP_RETURN_IF_ERROR(pool_->FetchPage(meta_pages_[i], &guard));
    if (DecodeU16(guard.data()) != static_cast<uint16_t>(PageType::kMeta)) {
      return Status::Corruption(StringPrintf(
          "checkpoint page %u is not a meta page", meta_pages_[i]));
    }
    size_t n = std::min<uint64_t>(kMetaChunkBytes, blob_size - blob.size());
    blob.append(reinterpret_cast<const char*>(guard.data()) + kPageHeaderBytes,
                n);
  }
  ByteReader reader(blob);
  FIELDREP_RETURN_IF_ERROR(catalog_.DecodeFrom(&reader));
  return DecodeState(&reader);
}

std::vector<FileId> Database::AuxFileIds() const {
  ReaderMutexLock lock(maps_mu_);
  std::vector<FileId> ids;
  ids.reserve(aux_files_.size());
  for (const auto& [file_id, file] : aux_files_) ids.push_back(file_id);
  return ids;
}

Status Database::CheckIntegrity(const CheckOptions& options,
                                CheckReport* report) {
  IntegrityChecker checker(this, options);
  return checker.Run(report);
}

Status Database::CheckIntegrity(CheckReport* report) {
  return CheckIntegrity(CheckOptions(), report);
}

// ---------------------------------------------------------------------------
// Session transaction API
// ---------------------------------------------------------------------------

Status Database::BeginSessionTransaction() {
  if (wal_ == nullptr) {
    return Status::FailedPrecondition(
        "session transactions require write-ahead logging");
  }
  if (CurrentTxn() != nullptr) {
    return Status::FailedPrecondition("a session transaction is already open");
  }
  auto* txn = new SessionTxn;
  txn->db = this;
  txn->explicit_session = true;
  lock_table_.RegisterTxn(&txn->locks);
  TlsPush(txn);
  open_sessions_.fetch_add(1, std::memory_order_acq_rel);
  return Status::OK();
}

void Database::FinishSessionTxn(SessionTxn* txn) {
  lock_table_.ReleaseAll(&txn->locks);
  TlsUnlink(txn);
  if (txn->explicit_session) {
    open_sessions_.fetch_sub(1, std::memory_order_acq_rel);
    delete txn;
  }
}

Status Database::CommitSessionTransaction(uint64_t* commit_lsn) {
  if (commit_lsn != nullptr) *commit_lsn = 0;
  SessionTxn* txn = CurrentTxn();
  if (txn == nullptr || !txn->explicit_session) {
    return Status::FailedPrecondition("no open session transaction");
  }
  Status s;
  if (txn->wal_begun) {
    uint64_t lsn = 0;
    s = wal_->CommitTransaction(&lsn);
    if (s.ok() && commit_lsn != nullptr && wal_->group_commit_enabled()) {
      *commit_lsn = lsn;
    }
  }
  FinishSessionTxn(txn);
  if (s.ok()) MaybeAutoCheckpoint();
  return s;
}

Status Database::AbortSessionTransaction() {
  SessionTxn* txn = CurrentTxn();
  if (txn == nullptr || !txn->explicit_session) {
    return Status::FailedPrecondition("no open session transaction");
  }
  Status s;
  if (txn->wal_begun) s = wal_->AbortTransaction();
  FinishSessionTxn(txn);
  return s;
}

bool Database::InSessionTransaction() const {
  return open_sessions_.load(std::memory_order_acquire) > 0;
}

Database::SessionTxn* Database::DetachSessionTransaction() {
  SessionTxn* txn = CurrentTxn();
  if (txn == nullptr || !txn->explicit_session) return nullptr;
  if (txn->wal_begun) txn->wal_txn = wal_->DetachTransaction();
  lock_table_.UnregisterHeldFromThread(txn->locks);
  TlsUnlink(txn);
  return txn;
}

void Database::AttachSessionTransaction(SessionTxn* txn) {
  if (txn == nullptr) return;
  TlsPush(txn);
  lock_table_.RegisterHeldOnThread(txn->locks);
  if (txn->wal_txn != nullptr) {
    wal_->AttachTransaction(txn->wal_txn);
    txn->wal_txn = nullptr;
  }
}

Status Database::WaitWalDurable(uint64_t lsn) {
  if (wal_ == nullptr || lsn == 0) return Status::OK();
  return wal_->WaitDurable(lsn);
}

Status Database::FlushDeferredPath(uint16_t path_id) {
  const ReplicationPathInfo* path = catalog_.GetPath(path_id);
  if (path == nullptr) {
    return Status::NotFound(StringPrintf("no replication path %u", path_id));
  }
  const std::string head_set = path->bound.set_name;
  return WriteOp(&head_set, [&] {
    return replication_->FlushPendingPropagation(path_id);
  });
}

// ---------------------------------------------------------------------------
// Schema and data operations
// ---------------------------------------------------------------------------

Status Database::DefineType(TypeDescriptor type) {
  return WriteOp(nullptr,
                 [&] { return catalog_.DefineType(std::move(type)); });
}

Status Database::CreateSet(const std::string& name,
                           const std::string& type_name) {
  return WriteOp(nullptr, [&] {
    FileId file_id;
    FIELDREP_RETURN_IF_ERROR(catalog_.CreateSet(name, type_name, &file_id));
    FIELDREP_ASSIGN_OR_RETURN(const TypeDescriptor* type,
                              catalog_.GetType(type_name));
    auto set = std::make_unique<ObjectSet>(pool_.get(), file_id, name, type);
    WriterMutexLock maps_lock(maps_mu_);
    sets_by_file_[file_id] = set.get();
    sets_.emplace(name, std::move(set));
    return Status::OK();
  });
}

Status Database::Replicate(const std::string& spec,
                           const ReplicateOptions& options,
                           uint16_t* path_id) {
  return WriteOp(nullptr, [&] {
    uint16_t id;
    FIELDREP_RETURN_IF_ERROR(replication_->CreatePath(spec, options, &id));
    if (path_id != nullptr) *path_id = id;
    return Status::OK();
  });
}

Status Database::DropReplication(const std::string& spec) {
  return WriteOp(nullptr, [&] {
    const ReplicationPathInfo* path = catalog_.FindPathBySpec(spec);
    if (path == nullptr) {
      return Status::NotFound("no replication path " + spec);
    }
    return replication_->DropPath(path->id);
  });
}

Status Database::BuildIndex(const std::string& index_name,
                            const std::string& set_name,
                            const std::string& key_expr, bool clustered) {
  return WriteOp(nullptr, [&] {
    return indexes_->BuildIndex(index_name, set_name, key_expr, clustered);
  });
}

Status Database::Insert(const std::string& set_name, const Object& object,
                        Oid* oid) {
  return WriteOp(&set_name, [&] {
    return replication_->InsertObject(set_name, object, oid);
  });
}

Status Database::Get(const std::string& set_name, const Oid& oid,
                     Object* object) {
  FIELDREP_ASSIGN_OR_RETURN(ObjectSet * set, GetSet(set_name));
  return set->Read(oid, object);
}

Status Database::Update(const std::string& set_name, const Oid& oid,
                        const std::string& attr_name, const Value& value) {
  return WriteOp(&set_name, [&] {
    FIELDREP_ASSIGN_OR_RETURN(ObjectSet * set, GetSet(set_name));
    int attr = set->type().FindAttribute(attr_name);
    if (attr < 0) {
      return Status::InvalidArgument("type " + set->type().name() +
                                     " has no attribute " + attr_name);
    }
    return replication_->UpdateField(set_name, oid, attr, value);
  });
}

Status Database::Delete(const std::string& set_name, const Oid& oid) {
  return WriteOp(&set_name,
                 [&] { return replication_->DeleteObject(set_name, oid); });
}

Status Database::Retrieve(const ReadQuery& query, ReadResult* result) {
  if (slow_query_ns_ == 0) return executor_->ExecuteRead(query, result);
  // Slow-query log armed: trace every query so threshold crossings have
  // a full stage breakdown to report.
  QueryTrace trace;
  return Retrieve(query, result, &trace);
}

Status Database::Retrieve(const ReadQuery& query, ReadResult* result,
                          QueryTrace* trace) {
  Status s = executor_->ExecuteRead(query, result, trace);
  if (s.ok() && trace != nullptr) MaybeLogSlowQuery(*trace);
  return s;
}

Status Database::Replace(const UpdateQuery& query, UpdateResult* result) {
  if (slow_query_ns_ == 0) {
    return WriteOp(&query.set_name,
                   [&] { return executor_->ExecuteUpdate(query, result); });
  }
  QueryTrace trace;
  return Replace(query, result, &trace);
}

Status Database::Replace(const UpdateQuery& query, UpdateResult* result,
                         QueryTrace* trace) {
  Status s = WriteOp(&query.set_name, [&] {
    return executor_->ExecuteUpdate(query, result, trace);
  });
  if (s.ok() && trace != nullptr) MaybeLogSlowQuery(*trace);
  return s;
}

void Database::MaybeLogSlowQuery(const QueryTrace& trace) const {
  if (slow_query_ns_ == 0 || trace.wall_ns < slow_query_ns_) return;
  if (slow_query_hook_) {
    slow_query_hook_(trace);
    return;
  }
  std::fprintf(stderr, "[fieldrep] slow query: %s\n", trace.Summary().c_str());
}

WorkloadProfile Database::Stats() const {
  return profiler_ != nullptr ? profiler_->Snapshot() : WorkloadProfile();
}

std::string Database::MetricsPrometheus() const {
  return metrics_ != nullptr ? metrics_->RenderPrometheus() : std::string();
}

std::string Database::MetricsJson() const {
  return metrics_ != nullptr ? metrics_->RenderJson() : std::string();
}

Status Database::DumpMetricsJson(const std::string& path) const {
  if (metrics_ == nullptr) {
    return Status::FailedPrecondition("telemetry is disabled");
  }
  std::string json = metrics_->RenderJson();
  std::FILE* f = std::fopen(path.c_str(), "wb");
  if (f == nullptr) {
    return Status::IOError("cannot open " + path + " for writing");
  }
  size_t written = std::fwrite(json.data(), 1, json.size(), f);
  int close_rc = std::fclose(f);
  if (written != json.size() || close_rc != 0) {
    return Status::IOError("short write to " + path);
  }
  return Status::OK();
}

Status Database::ColdStart() {
  // Lock-only quiescence (no WAL bracket: the sweep must not snapshot
  // pages, and ResetStats must be the last cost-model event). Evicting
  // every frame requires no pinned pages anyway; the exclusive schema
  // lock keeps a late writer from dirtying pages mid-eviction.
  return WriteOp(
      nullptr,
      [&] {
        FIELDREP_RETURN_IF_ERROR(pool_->EvictAll());
        pool_->ResetStats();
        return Status::OK();
      },
      /*wal_bracket=*/false);
}

Result<ObjectSet*> Database::GetSet(const std::string& name) {
  ReaderMutexLock lock(maps_mu_);
  auto it = sets_.find(name);
  if (it == sets_.end()) return Status::NotFound("no set named " + name);
  return it->second.get();
}

Result<ObjectSet*> Database::GetSetByFile(FileId file_id) {
  ReaderMutexLock lock(maps_mu_);
  auto it = sets_by_file_.find(file_id);
  if (it == sets_by_file_.end()) {
    return Status::NotFound(StringPrintf("no set stored in file %u", file_id));
  }
  return it->second;
}

Result<RecordFile*> Database::GetAuxFile(FileId file_id) {
  ReaderMutexLock lock(maps_mu_);
  auto it = aux_files_.find(file_id);
  if (it == aux_files_.end()) {
    return Status::NotFound(
        StringPrintf("no auxiliary file with id %u", file_id));
  }
  return it->second.get();
}

Result<RecordFile*> Database::CreateAuxFile(FileId* file_id) {
  *file_id = catalog_.AllocateFileId();
  auto file = std::make_unique<RecordFile>(pool_.get(), *file_id);
  RecordFile* raw = file.get();
  WriterMutexLock lock(maps_mu_);
  aux_files_.emplace(*file_id, std::move(file));
  return raw;
}

}  // namespace fieldrep
