#include "db/database.h"

#include <algorithm>
#include <cstdio>
#include <cstring>

#include "check/integrity_checker.h"
#include "common/bytes.h"
#include "common/strings.h"
#include "storage/slotted_page.h"

namespace fieldrep {

namespace {
// Header page (page 0) layout: 8-byte magic, u64 blob size, u32 blob page
// count, then that many u32 page ids.
// Format v2: checkpoint blob pages carry a 40-byte kMeta page header (with
// a per-page checksum) instead of raw full-page chunks.
constexpr char kHeaderMagic[8] = {'F', 'R', 'E', 'P', '0', '0', '0', '2'};

// Blob bytes stored per meta page: everything after the page header.
constexpr size_t kMetaChunkBytes = kPageSize - kPageHeaderBytes;
}  // namespace

Result<std::unique_ptr<Database>> Database::Open(const Options& options) {
  std::unique_ptr<Database> db(new Database());
  if (options.device != nullptr) {
    db->device_ = options.device;
  } else if (options.file_path.empty()) {
    db->owned_device_ = std::make_unique<MemoryDevice>();
    db->device_ = db->owned_device_.get();
  } else {
    auto file_device = std::make_unique<FileDevice>();
    FIELDREP_RETURN_IF_ERROR(file_device->Open(options.file_path));
    db->device_ = file_device.get();
    db->owned_device_ = std::move(file_device);
  }

  StorageDevice* wal_device = nullptr;
  if (options.enable_wal) {
    if (options.wal_device != nullptr) {
      wal_device = options.wal_device;
    } else if (!options.wal_path.empty() || !options.file_path.empty()) {
      auto f = std::make_unique<FileDevice>();
      FIELDREP_RETURN_IF_ERROR(f->Open(options.wal_path.empty()
                                           ? options.file_path + ".wal"
                                           : options.wal_path));
      wal_device = f.get();
      db->owned_wal_device_ = std::move(f);
    } else {
      db->owned_wal_device_ = std::make_unique<MemoryDevice>();
      wal_device = db->owned_wal_device_.get();
    }
    // Crash recovery runs straight against the devices, before the buffer
    // pool exists: replay the committed log tail, then start a fresh
    // epoch above the recovered one.
    FIELDREP_RETURN_IF_ERROR(RecoveryManager::Recover(
        db->device_, wal_device, &db->recovery_stats_));
  }
  db->wal_device_ = wal_device;
  bool restore = db->device_->page_count() > 0;

  size_t frames = options.buffer_pool_frames == 0 ? 1
                                                  : options.buffer_pool_frames;
  db->pool_ = std::make_unique<BufferPool>(db->device_, frames);
  db->pool_->set_read_ahead_window(options.read_ahead_window);
  if (options.enable_wal) {
    WalManager::Options wal_options;
    wal_options.sync_on_commit = options.wal_sync_on_commit;
    wal_options.group_commit = options.wal_group_commit;
    wal_options.checkpoint_threshold_bytes =
        options.wal_checkpoint_threshold_bytes;
    db->wal_ = std::make_unique<WalManager>(wal_device, db->pool_.get(),
                                            wal_options);
    FIELDREP_RETURN_IF_ERROR(db->wal_->Initialize(db->recovery_stats_.epoch + 1));
    db->pool_->SetObserver(db->wal_.get());
    Database* raw = db.get();
    db->wal_->set_precommit_hook(
        [raw] { return raw->WriteStateToMetaPages(); });
  }
  db->indexes_ =
      std::make_unique<IndexManager>(db->pool_.get(), &db->catalog_, db.get());
  db->replication_ = std::make_unique<ReplicationManager>(
      &db->catalog_, db.get(), db->indexes_.get());
  db->executor_ = std::make_unique<Executor>(&db->catalog_, db.get(),
                                             db->indexes_.get(),
                                             db->replication_.get());
  if (db->wal_ != nullptr) db->replication_->set_wal(db->wal_.get());
  db->replication_->set_pool(db->pool_.get());
  db->executor_->set_write_mutex(&db->write_mu_);
  if (options.worker_threads > 1) {
    db->workers_ = std::make_unique<ThreadPool>(options.worker_threads);
    db->executor_->set_worker_pool(db->workers_.get());
  }
  db->slow_query_ns_ = options.slow_query_ns;
  db->slow_query_hook_ = options.slow_query_hook;
  if (options.enable_telemetry) {
    db->metrics_ = std::make_unique<MetricsRegistry>();
    db->profiler_ = std::make_unique<WorkloadProfiler>();
    db->executor_->set_profiler(db->profiler_.get());
    db->replication_->set_profiler(db->profiler_.get());
    // Components keep their always-on relaxed-atomic instruments; the
    // registry only names and renders them, so samples are computed at
    // Collect() time and telemetry adds nothing to any hot path.
    BufferPool* pool = db->pool_.get();
    db->metrics_->AddCollector(
        [pool](std::vector<MetricSample>* out) { pool->CollectMetrics(out); });
    if (db->wal_ != nullptr) {
      WalManager* wal = db->wal_.get();
      db->metrics_->AddCollector(
          [wal](std::vector<MetricSample>* out) { wal->CollectMetrics(out); });
    }
    ReplicationManager* repl = db->replication_.get();
    db->metrics_->AddCollector(
        [repl](std::vector<MetricSample>* out) { repl->CollectMetrics(out); });
    WorkloadProfiler* prof = db->profiler_.get();
    db->metrics_->AddCollector(
        [prof](std::vector<MetricSample>* out) { prof->CollectMetrics(out); });
    // The worker pool is swappable (SetWorkerThreads), so the collector
    // reads through the database each render. SetWorkerThreads already
    // requires quiesced queries; that covers concurrent Collect() too.
    Database* raw = db.get();
    db->metrics_->AddCollector([raw](std::vector<MetricSample>* out) {
      ThreadPool* workers = raw->workers_.get();
      if (workers != nullptr) workers->CollectMetrics(out);
    });
  }
  if (restore) {
    FIELDREP_RETURN_IF_ERROR(db->RestoreFromDevice());
  } else {
    // Reserve page 0 as the checkpoint header.
    PageGuard guard;
    FIELDREP_RETURN_IF_ERROR(db->pool_->NewPage(&guard));
    if (guard.page_id() != 0) {
      return Status::Internal("header page is not page 0");
    }
    guard.MarkDirty();
  }
  return db;
}

std::string Database::EncodeState() const {
  // Runs under write_mu_ (the precommit hook fires inside commit), but
  // CreateSet/CreateAuxFile mutate the maps under maps_mu_ from any
  // session thread, so the iteration itself still needs the shared lock.
  // Rank order: db.write_mu (200) -> db.maps_mu (300), ascending.
  ReaderMutexLock maps_lock(maps_mu_);
  std::string out;
  PutU16(&out, static_cast<uint16_t>(sets_.size()));
  for (const auto& [name, set] : sets_) {
    PutLengthPrefixed(&out, name);
    PutLengthPrefixed(&out, set->file().EncodeMetadata());
  }
  PutU16(&out, static_cast<uint16_t>(aux_files_.size()));
  for (const auto& [file_id, file] : aux_files_) {
    PutU16(&out, file_id);
    PutLengthPrefixed(&out, file->EncodeMetadata());
  }
  // Index trees: enumerate via the catalog.
  std::string tree_section;
  uint16_t tree_count = 0;
  for (const std::string& set_name : catalog_.SetNames()) {
    for (const IndexInfo* info : catalog_.IndexesOnSet(set_name)) {
      auto tree = indexes_->GetIndex(info->name);
      if (!tree.ok()) continue;
      PutLengthPrefixed(&tree_section, info->name);
      PutLengthPrefixed(&tree_section, tree.value()->EncodeMetadata());
      ++tree_count;
    }
  }
  PutU16(&out, tree_count);
  out += tree_section;
  PutU16(&out, executor_->output_file_id());
  return out;
}

Status Database::DecodeState(ByteReader* reader) {
  uint16_t set_count;
  if (!reader->GetU16(&set_count)) {
    return Status::Corruption("truncated state: sets");
  }
  for (uint16_t i = 0; i < set_count; ++i) {
    std::string name, metadata;
    if (!reader->GetLengthPrefixed(&name) ||
        !reader->GetLengthPrefixed(&metadata)) {
      return Status::Corruption("truncated set state");
    }
    FIELDREP_ASSIGN_OR_RETURN(const SetInfo* info, catalog_.GetSet(name));
    FIELDREP_ASSIGN_OR_RETURN(const TypeDescriptor* type,
                              catalog_.GetType(info->type_name));
    auto set =
        std::make_unique<ObjectSet>(pool_.get(), info->file_id, name, type);
    FIELDREP_RETURN_IF_ERROR(set->file().DecodeMetadata(metadata));
    WriterMutexLock lock(maps_mu_);
    sets_by_file_[info->file_id] = set.get();
    sets_.emplace(name, std::move(set));
  }
  uint16_t aux_count;
  if (!reader->GetU16(&aux_count)) {
    return Status::Corruption("truncated state: aux files");
  }
  for (uint16_t i = 0; i < aux_count; ++i) {
    uint16_t file_id;
    std::string metadata;
    if (!reader->GetU16(&file_id) ||
        !reader->GetLengthPrefixed(&metadata)) {
      return Status::Corruption("truncated aux file state");
    }
    auto file = std::make_unique<RecordFile>(pool_.get(), file_id);
    FIELDREP_RETURN_IF_ERROR(file->DecodeMetadata(metadata));
    WriterMutexLock lock(maps_mu_);
    aux_files_.emplace(file_id, std::move(file));
  }
  uint16_t tree_count;
  if (!reader->GetU16(&tree_count)) {
    return Status::Corruption("truncated state: trees");
  }
  for (uint16_t i = 0; i < tree_count; ++i) {
    std::string name, metadata;
    if (!reader->GetLengthPrefixed(&name) ||
        !reader->GetLengthPrefixed(&metadata)) {
      return Status::Corruption("truncated tree state");
    }
    FIELDREP_RETURN_IF_ERROR(indexes_->RestoreIndex(name, metadata));
  }
  uint16_t output_id;
  if (!reader->GetU16(&output_id)) {
    return Status::Corruption("truncated state: output file");
  }
  executor_->restore_output_file_id(output_id);
  return Status::OK();
}

Status Database::SetWorkerThreads(size_t n) {
  RecursiveMutexLock lock(write_mu_);
  // Detach before destroying so a pool is never visible to the executor
  // while its threads are joining.
  executor_->set_worker_pool(nullptr);
  workers_.reset();
  if (n > 1) {
    workers_ = std::make_unique<ThreadPool>(n);
    executor_->set_worker_pool(workers_.get());
  }
  return Status::OK();
}

Status Database::Checkpoint() {
  RecursiveMutexLock lock(write_mu_);
  FIELDREP_RETURN_IF_ERROR(replication_->FlushAllPendingPropagation());
  if (wal_ != nullptr) {
    // The pre-commit hook writes the state blob inside this (otherwise
    // empty) transaction, so the catalog update itself is logged; the WAL
    // checkpoint then flushes the pool and truncates the log.
    WalTransaction txn(wal_.get());
    FIELDREP_RETURN_IF_ERROR(txn.begin_status());
    FIELDREP_RETURN_IF_ERROR(txn.Commit());
    return wal_->Checkpoint();
  }
  FIELDREP_RETURN_IF_ERROR(WriteStateToMetaPages());
  return pool_->FlushAll();
}

Status Database::WriteStateToMetaPages() {
  std::string blob;
  catalog_.EncodeTo(&blob);
  blob += EncodeState();

  // Lay the blob across kMeta pages, reusing prior checkpoint pages. Each
  // page holds a header (type, chunk index, chunk length, checksum slot)
  // followed by one kMetaChunkBytes chunk of the blob.
  size_t pages_needed = (blob.size() + kMetaChunkBytes - 1) / kMetaChunkBytes;
  while (meta_pages_.size() < pages_needed) {
    PageGuard guard;
    FIELDREP_RETURN_IF_ERROR(pool_->NewPage(&guard));
    guard.MarkDirty();
    meta_pages_.push_back(guard.page_id());
  }
  for (size_t i = 0; i < pages_needed; ++i) {
    PageGuard guard;
    FIELDREP_RETURN_IF_ERROR(pool_->FetchPage(meta_pages_[i], &guard));
    size_t offset = i * kMetaChunkBytes;
    size_t n = std::min<size_t>(kMetaChunkBytes, blob.size() - offset);
    std::memset(guard.data(), 0, kPageSize);
    uint16_t type = static_cast<uint16_t>(PageType::kMeta);
    std::memcpy(guard.data(), &type, sizeof(type));
    uint32_t chunk_index = static_cast<uint32_t>(i);
    uint32_t chunk_len = static_cast<uint32_t>(n);
    std::memcpy(guard.data() + 4, &chunk_index, sizeof(chunk_index));
    std::memcpy(guard.data() + 8, &chunk_len, sizeof(chunk_len));
    std::memcpy(guard.data() + kPageHeaderBytes, blob.data() + offset, n);
    guard.MarkDirty();
  }
  // Header page.
  if ((meta_pages_.size() + 3) * 4 + 20 > kPageSize) {
    return Status::OutOfRange("checkpoint blob too large for header page");
  }
  PageGuard header;
  FIELDREP_RETURN_IF_ERROR(pool_->FetchPage(0, &header));
  std::string head;
  head.append(kHeaderMagic, sizeof(kHeaderMagic));
  PutU64(&head, blob.size());
  PutU32(&head, static_cast<uint32_t>(pages_needed));
  for (size_t i = 0; i < pages_needed; ++i) PutU32(&head, meta_pages_[i]);
  std::memcpy(header.data(), head.data(), head.size());
  header.MarkDirty();
  header.Release();
  return Status::OK();
}

std::string Database::StorageReport() {
  ReaderMutexLock lock(maps_mu_);
  std::string out = "storage report\n";
  out += StringPrintf("  device pages: %u (%.1f KiB)\n",
                      device_->page_count(),
                      device_->page_count() * kPageSize / 1024.0);
  out += StringPrintf("  buffer pool: %zu frames, %zu cached, %s\n",
                      pool_->capacity(), pool_->pages_cached(),
                      pool_->stats().ToString().c_str());
  for (const auto& [name, set] : sets_) {
    out += StringPrintf("  set %-12s file %-3u %8llu objects %6u pages\n",
                        name.c_str(), set->file().file_id(),
                        static_cast<unsigned long long>(
                            set->file().record_count()),
                        set->file().page_count());
  }
  for (const auto& [file_id, file] : aux_files_) {
    // Identify the role of each auxiliary file from the catalog.
    std::string role = "aux";
    for (uint8_t link_id : catalog_.link_registry().AllLinkIds()) {
      const LinkInfo* link = catalog_.link_registry().GetLink(link_id);
      if (link != nullptr && link->link_set_file == file_id) {
        role = "link set " + link->key;
        break;
      }
    }
    for (uint16_t path_id : catalog_.AllPathIds()) {
      const ReplicationPathInfo* path = catalog_.GetPath(path_id);
      if (path != nullptr && path->replica_set_file == file_id) {
        role = "replica set (S') for " + path->spec;
        break;
      }
    }
    if (file_id == executor_->output_file_id()) role = "output file (T)";
    out += StringPrintf("  %-16s file %-3u %8llu records %6u pages  [%s]\n",
                        "aux", file_id,
                        static_cast<unsigned long long>(file->record_count()),
                        file->page_count(), role.c_str());
  }
  for (const std::string& set_name : catalog_.SetNames()) {
    for (const IndexInfo* info : catalog_.IndexesOnSet(set_name)) {
      auto tree = indexes_->GetIndex(info->name);
      if (!tree.ok()) continue;
      auto pages = tree.value()->PageCount();
      out += StringPrintf(
          "  index %-12s on %s.%s: %llu entries, %u pages\n",
          info->name.c_str(), info->set_name.c_str(), info->key_expr.c_str(),
          static_cast<unsigned long long>(tree.value()->size()),
          pages.ok() ? *pages : 0);
    }
  }
  return out;
}

Status Database::RestoreFromDevice() {
  PageGuard header;
  FIELDREP_RETURN_IF_ERROR(pool_->FetchPage(0, &header));
  if (std::memcmp(header.data(), kHeaderMagic, sizeof(kHeaderMagic)) != 0) {
    return Status::Corruption(
        "backing file has no fieldrep checkpoint header (was Checkpoint() "
        "called before closing?)");
  }
  uint64_t blob_size = DecodeU64(header.data() + 8);
  uint32_t page_count = DecodeU32(header.data() + 16);
  meta_pages_.clear();
  for (uint32_t i = 0; i < page_count; ++i) {
    meta_pages_.push_back(DecodeU32(header.data() + 20 + i * 4));
  }
  header.Release();
  std::string blob;
  blob.reserve(blob_size);
  for (uint32_t i = 0; i < page_count; ++i) {
    PageGuard guard;
    FIELDREP_RETURN_IF_ERROR(pool_->FetchPage(meta_pages_[i], &guard));
    if (DecodeU16(guard.data()) != static_cast<uint16_t>(PageType::kMeta)) {
      return Status::Corruption(StringPrintf(
          "checkpoint page %u is not a meta page", meta_pages_[i]));
    }
    size_t n = std::min<uint64_t>(kMetaChunkBytes, blob_size - blob.size());
    blob.append(reinterpret_cast<const char*>(guard.data()) + kPageHeaderBytes,
                n);
  }
  ByteReader reader(blob);
  FIELDREP_RETURN_IF_ERROR(catalog_.DecodeFrom(&reader));
  return DecodeState(&reader);
}

std::vector<FileId> Database::AuxFileIds() const {
  ReaderMutexLock lock(maps_mu_);
  std::vector<FileId> ids;
  ids.reserve(aux_files_.size());
  for (const auto& [file_id, file] : aux_files_) ids.push_back(file_id);
  return ids;
}

Status Database::CheckIntegrity(const CheckOptions& options,
                                CheckReport* report) {
  IntegrityChecker checker(this, options);
  return checker.Run(report);
}

Status Database::CheckIntegrity(CheckReport* report) {
  return CheckIntegrity(CheckOptions(), report);
}

uint64_t Database::PendingDurableLsn(const Status& s) const {
  if (!s.ok() || wal_ == nullptr) return 0;
  if (!wal_->group_commit_enabled() || wal_->in_transaction()) return 0;
  return wal_->last_commit_lsn();
}

Status Database::BeginSessionTransaction() {
  RecursiveMutexLock lock(write_mu_);
  if (wal_ == nullptr) {
    return Status::FailedPrecondition(
        "session transactions require write-ahead logging");
  }
  if (wal_->in_transaction()) {
    return Status::FailedPrecondition("a session transaction is already open");
  }
  return wal_->BeginTransaction();
}

Status Database::CommitSessionTransaction(uint64_t* commit_lsn) {
  RecursiveMutexLock lock(write_mu_);
  if (commit_lsn != nullptr) *commit_lsn = 0;
  if (wal_ == nullptr || !wal_->in_transaction()) {
    return Status::FailedPrecondition("no open session transaction");
  }
  Status s = wal_->CommitTransaction();
  if (s.ok() && commit_lsn != nullptr && wal_->group_commit_enabled()) {
    *commit_lsn = wal_->last_commit_lsn();
  }
  return s;
}

Status Database::AbortSessionTransaction() {
  RecursiveMutexLock lock(write_mu_);
  if (wal_ == nullptr || !wal_->in_transaction()) {
    return Status::FailedPrecondition("no open session transaction");
  }
  return wal_->AbortTransaction();
}

bool Database::InSessionTransaction() const {
  return wal_ != nullptr && wal_->in_transaction();
}

Status Database::WaitWalDurable(uint64_t lsn) {
  if (wal_ == nullptr || lsn == 0) return Status::OK();
  return wal_->WaitDurable(lsn);
}

Status Database::DefineType(TypeDescriptor type) {
  uint64_t durable = 0;
  Status s;
  {
    RecursiveMutexLock lock(write_mu_);
    WalTransaction txn(wal_.get());
    FIELDREP_RETURN_IF_ERROR(txn.begin_status());
    FIELDREP_RETURN_IF_ERROR(catalog_.DefineType(std::move(type)));
    s = txn.Commit();
    durable = PendingDurableLsn(s);
  }
  FIELDREP_RETURN_IF_ERROR(WaitWalDurable(durable));
  return s;
}

Status Database::CreateSet(const std::string& name,
                           const std::string& type_name) {
  uint64_t durable = 0;
  Status s;
  {
    RecursiveMutexLock lock(write_mu_);
    WalTransaction txn(wal_.get());
    FIELDREP_RETURN_IF_ERROR(txn.begin_status());
    FileId file_id;
    FIELDREP_RETURN_IF_ERROR(catalog_.CreateSet(name, type_name, &file_id));
    FIELDREP_ASSIGN_OR_RETURN(const TypeDescriptor* type,
                              catalog_.GetType(type_name));
    auto set = std::make_unique<ObjectSet>(pool_.get(), file_id, name, type);
    {
      WriterMutexLock maps_lock(maps_mu_);
      sets_by_file_[file_id] = set.get();
      sets_.emplace(name, std::move(set));
    }
    s = txn.Commit();
    durable = PendingDurableLsn(s);
  }
  FIELDREP_RETURN_IF_ERROR(WaitWalDurable(durable));
  return s;
}

Status Database::Replicate(const std::string& spec,
                           const ReplicateOptions& options,
                           uint16_t* path_id) {
  uint64_t durable = 0;
  Status s;
  {
    RecursiveMutexLock lock(write_mu_);
    uint16_t id;
    s = replication_->CreatePath(spec, options, &id);
    if (s.ok() && path_id != nullptr) *path_id = id;
    durable = PendingDurableLsn(s);
  }
  FIELDREP_RETURN_IF_ERROR(WaitWalDurable(durable));
  return s;
}

Status Database::DropReplication(const std::string& spec) {
  uint64_t durable = 0;
  Status s;
  {
    RecursiveMutexLock lock(write_mu_);
    const ReplicationPathInfo* path = catalog_.FindPathBySpec(spec);
    if (path == nullptr) {
      return Status::NotFound("no replication path " + spec);
    }
    s = replication_->DropPath(path->id);
    durable = PendingDurableLsn(s);
  }
  FIELDREP_RETURN_IF_ERROR(WaitWalDurable(durable));
  return s;
}

Status Database::BuildIndex(const std::string& index_name,
                            const std::string& set_name,
                            const std::string& key_expr, bool clustered) {
  uint64_t durable = 0;
  Status s;
  {
    RecursiveMutexLock lock(write_mu_);
    WalTransaction txn(wal_.get());
    FIELDREP_RETURN_IF_ERROR(txn.begin_status());
    FIELDREP_RETURN_IF_ERROR(
        indexes_->BuildIndex(index_name, set_name, key_expr, clustered));
    s = txn.Commit();
    durable = PendingDurableLsn(s);
  }
  FIELDREP_RETURN_IF_ERROR(WaitWalDurable(durable));
  return s;
}

Status Database::Insert(const std::string& set_name, const Object& object,
                        Oid* oid) {
  uint64_t durable = 0;
  Status s;
  {
    RecursiveMutexLock lock(write_mu_);
    s = replication_->InsertObject(set_name, object, oid);
    durable = PendingDurableLsn(s);
  }
  FIELDREP_RETURN_IF_ERROR(WaitWalDurable(durable));
  return s;
}

Status Database::Get(const std::string& set_name, const Oid& oid,
                     Object* object) {
  FIELDREP_ASSIGN_OR_RETURN(ObjectSet * set, GetSet(set_name));
  return set->Read(oid, object);
}

Status Database::Update(const std::string& set_name, const Oid& oid,
                        const std::string& attr_name, const Value& value) {
  uint64_t durable = 0;
  Status s;
  {
    RecursiveMutexLock lock(write_mu_);
    FIELDREP_ASSIGN_OR_RETURN(ObjectSet * set, GetSet(set_name));
    int attr = set->type().FindAttribute(attr_name);
    if (attr < 0) {
      return Status::InvalidArgument("type " + set->type().name() +
                                     " has no attribute " + attr_name);
    }
    s = replication_->UpdateField(set_name, oid, attr, value);
    durable = PendingDurableLsn(s);
  }
  FIELDREP_RETURN_IF_ERROR(WaitWalDurable(durable));
  return s;
}

Status Database::Delete(const std::string& set_name, const Oid& oid) {
  uint64_t durable = 0;
  Status s;
  {
    RecursiveMutexLock lock(write_mu_);
    s = replication_->DeleteObject(set_name, oid);
    durable = PendingDurableLsn(s);
  }
  FIELDREP_RETURN_IF_ERROR(WaitWalDurable(durable));
  return s;
}

Status Database::Retrieve(const ReadQuery& query, ReadResult* result) {
  if (slow_query_ns_ == 0) return executor_->ExecuteRead(query, result);
  // Slow-query log armed: trace every query so threshold crossings have
  // a full stage breakdown to report.
  QueryTrace trace;
  return Retrieve(query, result, &trace);
}

Status Database::Retrieve(const ReadQuery& query, ReadResult* result,
                          QueryTrace* trace) {
  Status s = executor_->ExecuteRead(query, result, trace);
  if (s.ok() && trace != nullptr) MaybeLogSlowQuery(*trace);
  return s;
}

Status Database::Replace(const UpdateQuery& query, UpdateResult* result) {
  if (slow_query_ns_ == 0) {
    uint64_t durable = 0;
    Status s;
    {
      RecursiveMutexLock lock(write_mu_);
      s = executor_->ExecuteUpdate(query, result);
      durable = PendingDurableLsn(s);
    }
    FIELDREP_RETURN_IF_ERROR(WaitWalDurable(durable));
    return s;
  }
  QueryTrace trace;
  return Replace(query, result, &trace);
}

Status Database::Replace(const UpdateQuery& query, UpdateResult* result,
                         QueryTrace* trace) {
  uint64_t durable = 0;
  Status s;
  {
    RecursiveMutexLock lock(write_mu_);
    s = executor_->ExecuteUpdate(query, result, trace);
    durable = PendingDurableLsn(s);
  }
  FIELDREP_RETURN_IF_ERROR(WaitWalDurable(durable));
  if (s.ok() && trace != nullptr) MaybeLogSlowQuery(*trace);
  return s;
}

void Database::MaybeLogSlowQuery(const QueryTrace& trace) const {
  if (slow_query_ns_ == 0 || trace.wall_ns < slow_query_ns_) return;
  if (slow_query_hook_) {
    slow_query_hook_(trace);
    return;
  }
  std::fprintf(stderr, "[fieldrep] slow query: %s\n", trace.Summary().c_str());
}

WorkloadProfile Database::Stats() const {
  return profiler_ != nullptr ? profiler_->Snapshot() : WorkloadProfile();
}

std::string Database::MetricsPrometheus() const {
  return metrics_ != nullptr ? metrics_->RenderPrometheus() : std::string();
}

std::string Database::MetricsJson() const {
  return metrics_ != nullptr ? metrics_->RenderJson() : std::string();
}

Status Database::DumpMetricsJson(const std::string& path) const {
  if (metrics_ == nullptr) {
    return Status::FailedPrecondition("telemetry is disabled");
  }
  std::string json = metrics_->RenderJson();
  std::FILE* f = std::fopen(path.c_str(), "wb");
  if (f == nullptr) {
    return Status::IOError("cannot open " + path + " for writing");
  }
  size_t written = std::fwrite(json.data(), 1, json.size(), f);
  int close_rc = std::fclose(f);
  if (written != json.size() || close_rc != 0) {
    return Status::IOError("short write to " + path);
  }
  return Status::OK();
}

Status Database::ColdStart() {
  // Evicting every frame requires quiescence anyway (no pinned pages);
  // the lock keeps a late writer from dirtying pages mid-eviction.
  RecursiveMutexLock lock(write_mu_);
  FIELDREP_RETURN_IF_ERROR(pool_->EvictAll());
  pool_->ResetStats();
  return Status::OK();
}

Result<ObjectSet*> Database::GetSet(const std::string& name) {
  ReaderMutexLock lock(maps_mu_);
  auto it = sets_.find(name);
  if (it == sets_.end()) return Status::NotFound("no set named " + name);
  return it->second.get();
}

Result<ObjectSet*> Database::GetSetByFile(FileId file_id) {
  ReaderMutexLock lock(maps_mu_);
  auto it = sets_by_file_.find(file_id);
  if (it == sets_by_file_.end()) {
    return Status::NotFound(StringPrintf("no set stored in file %u", file_id));
  }
  return it->second;
}

Result<RecordFile*> Database::GetAuxFile(FileId file_id) {
  ReaderMutexLock lock(maps_mu_);
  auto it = aux_files_.find(file_id);
  if (it == aux_files_.end()) {
    return Status::NotFound(
        StringPrintf("no auxiliary file with id %u", file_id));
  }
  return it->second.get();
}

Result<RecordFile*> Database::CreateAuxFile(FileId* file_id) {
  *file_id = catalog_.AllocateFileId();
  auto file = std::make_unique<RecordFile>(pool_.get(), *file_id);
  RecordFile* raw = file.get();
  WriterMutexLock lock(maps_mu_);
  aux_files_.emplace(*file_id, std::move(file));
  return raw;
}

}  // namespace fieldrep
