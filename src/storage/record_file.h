#ifndef FIELDREP_STORAGE_RECORD_FILE_H_
#define FIELDREP_STORAGE_RECORD_FILE_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "common/annotated_mutex.h"
#include "common/status.h"
#include "storage/buffer_pool.h"
#include "storage/oid.h"
#include "storage/page.h"

namespace fieldrep {

/// \brief A heap file: a doubly linked list of slotted pages holding
/// variable-length records addressed by physically-based OIDs.
///
/// Top-level sets, link sets, replica sets (S'), and query output files are
/// all RecordFiles (Section 2.2: "top-level sets are stored as disk files").
/// Inserts append to the tail page, so insertion order is physical order —
/// the property the paper relies on when it stores link sets and S' "in the
/// same physical order as the objects in S which reference them".
///
/// Records may grow on update (replication adds hidden fields to existing
/// objects). When a record outgrows its page it is *relocated* and a
/// forwarding stub is left at the original slot, so OIDs stay stable — the
/// stability that reference attributes and link objects depend on. Reads
/// through a forwarded OID transparently follow the stub (at the cost of
/// one extra page access, the standard slotted-file trade-off).
///
/// Record payloads must not begin with the bytes FE FF or FF FF, which are
/// reserved for relocation stubs; all object/link/replica encodings begin
/// with a small type tag, satisfying this naturally.
///
/// All page access goes through the BufferPool, so every operation is
/// visible in the pool's IoStats.
///
/// Concurrency: mutations (Insert/Update/Delete/Truncate) run only on the
/// engine's single writer thread; Read/Scan/ListOids may run on any number
/// of reader threads concurrently (they take shared page latches and never
/// hold one while blocking). The chain cache is the only state readers
/// write, so it has its own mutex; the chain-shape counters are relaxed
/// atomics so cross-thread getters are race-free.
class RecordFile {
 public:
  /// \param pool    shared buffer pool (not owned).
  /// \param file_id catalog-assigned id, embedded in every OID this file
  ///                hands out.
  RecordFile(BufferPool* pool, FileId file_id);

  RecordFile(const RecordFile&) = delete;
  RecordFile& operator=(const RecordFile&) = delete;

  FileId file_id() const { return file_id_; }
  BufferPool* pool() const { return pool_; }
  uint32_t page_count() const {
    return page_count_.load(std::memory_order_relaxed);
  }
  uint64_t record_count() const {
    return record_count_.load(std::memory_order_relaxed);
  }
  PageId first_page() const {
    return first_page_.load(std::memory_order_relaxed);
  }
  PageId last_page() const {
    return last_page_.load(std::memory_order_relaxed);
  }

  /// Reserves this many bytes of page free space per resident record so
  /// records can later grow in place (e.g. when replication adds hidden
  /// fields to objects after they are first referenced). Affects future
  /// inserts only; 0 (the default) packs pages fully.
  void set_growth_reserve(uint32_t bytes_per_record) {
    growth_reserve_ = bytes_per_record;
  }
  uint32_t growth_reserve() const { return growth_reserve_; }

  /// Appends a record, returning its OID.
  Status Insert(const std::string& payload, Oid* oid);

  /// Reads the record at `oid` into `payload`, following forwarding stubs.
  Status Read(const Oid& oid, std::string* payload) const;

  /// Rewrites the record at `oid`. The OID remains valid even if the record
  /// must physically move (a forwarding stub is left behind).
  Status Update(const Oid& oid, const std::string& payload);

  /// Deletes the record at `oid` (and its relocated body, if any).
  Status Delete(const Oid& oid);

  /// Calls `fn(oid, payload)` for every live record with its logical OID.
  /// Records sit in physical (insertion) order except relocated ones, which
  /// are visited where their bodies live. Iteration stops when `fn` returns
  /// false.
  Status Scan(
      const std::function<bool(const Oid&, const std::string&)>& fn) const;

  /// Collects all live logical OIDs in scan order.
  Status ListOids(std::vector<Oid>* oids) const;

  /// Drops every page's contents (pages remain allocated on the device;
  /// there is no device-level free list in this engine).
  Status Truncate();

  /// Serializes file metadata (page list head/tail and counters) so a
  /// catalog can reopen the file against the same device.
  std::string EncodeMetadata() const;
  Status DecodeMetadata(const std::string& encoded);

 private:
  Status AppendPage(PageId* page_id);
  Status CheckOid(const Oid& oid) const;
  /// Inserts a raw cell without adjusting record_count_.
  Status InsertCell(const std::string& payload, Oid* oid);

  /// Remembers the page when a delete/relocation frees space, so inserts
  /// can refill it (bounded; oldest hints are dropped).
  void NoteFreeSpace(PageId page_id);

  /// Records that `page_id` is the `pos`-th page of the chain, keeping the
  /// chain cache a valid prefix of the page list (see chain_cache_).
  void NoteChainPage(size_t pos, PageId page_id) const REQUIRES(chain_mu_);

  BufferPool* pool_;
  FileId file_id_;
  /// Chain shape. Mutated only by the writer thread; atomic so reader
  /// threads can begin a Scan (first_page_) or call the getters mid-write.
  std::atomic<PageId> first_page_{kInvalidPageId};
  std::atomic<PageId> last_page_{kInvalidPageId};
  std::atomic<uint32_t> page_count_{0};
  std::atomic<uint64_t> record_count_{0};
  uint32_t growth_reserve_ = 0;
  /// Free-space hints: pages that recently lost a record. A lightweight
  /// stand-in for a free-space map; inserts probe a few before extending
  /// the file. Writer-thread-only.
  std::vector<PageId> free_hints_;

  /// Guards chain_cache_ and chain_complete_: concurrent Scans (reader
  /// threads) extend the cache, AppendPage (writer) appends to it.
  /// kRecordChain ranks after the frame latches AppendPage may hold.
  mutable Mutex chain_mu_{LockRank::kRecordChain, "record_file.chain_mu"};
  /// In-memory prefix of the page chain in scan order, used to issue
  /// read-ahead windows during Scan without chasing next_page links.
  /// Maintained by AppendPage for files built in-session and rebuilt
  /// lazily by the first full Scan after DecodeMetadata; always a valid
  /// prefix of the chain (pages are only appended, never reordered).
  mutable std::vector<PageId> chain_cache_ GUARDED_BY(chain_mu_);
  /// True when chain_cache_ covers the whole chain, so AppendPage can
  /// extend it instead of invalidating it.
  mutable bool chain_complete_ GUARDED_BY(chain_mu_) = true;
};

}  // namespace fieldrep

#endif  // FIELDREP_STORAGE_RECORD_FILE_H_
