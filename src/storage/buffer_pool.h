#ifndef FIELDREP_STORAGE_BUFFER_POOL_H_
#define FIELDREP_STORAGE_BUFFER_POOL_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <span>
#include <unordered_map>
#include <vector>

#include "common/annotated_mutex.h"
#include "common/status.h"
#include "storage/io_stats.h"
#include "storage/oid.h"
#include "storage/page.h"
#include "storage/storage_device.h"

namespace fieldrep {

class BufferPool;
struct MetricSample;

/// Default read-ahead window (pages per prefetch batch). 0 disables
/// read-ahead everywhere and restores strictly on-demand I/O.
constexpr uint32_t kDefaultReadAheadWindow = 16;

/// How a FetchPage caller intends to use the page. Shared fetches take the
/// frame's reader latch and MUST NOT mutate the page (MarkDirty asserts);
/// exclusive fetches take the writer latch. The default is kExclusive so
/// the pre-concurrency call sites keep their semantics; read-only hot
/// paths opt into kShared explicitly.
enum class LatchMode { kShared, kExclusive };

/// \brief Hook interface through which a write-ahead log observes and
/// constrains the buffer pool (see src/wal/wal_manager.h).
///
/// The pool calls these at well-defined points so that the WAL can
/// capture page pre-images, track transaction write sets, veto eviction
/// of uncommitted pages (no-steal policy), and enforce the WAL flush
/// ordering: no dirty page reaches the device before the log records
/// covering it are durable.
///
/// Concurrency contract (single-writer / multi-reader engine):
///   - OnPageAccess fires only for kExclusive fetches, i.e. only on the
///     (single) writer thread — readers never need pre-images.
///   - OnPageDirtied likewise fires only from the writer.
///   - CanEvict and BeforePageFlush may be called from any thread (reader
///     misses evict too) and must synchronize internally.
class PageObserver {
 public:
  virtual ~PageObserver() = default;

  /// A page's bytes became visible through an exclusive fetch (hit or
  /// miss, or a freshly allocated zero page). `data` is the frame content
  /// before the caller mutates it.
  virtual void OnPageAccess(PageId page_id, const uint8_t* data) = 0;

  /// A guard marked the page dirty.
  virtual void OnPageDirtied(PageId page_id) = 0;

  /// May this dirty page be written back and evicted? False while an
  /// active transaction's uncommitted bytes are on it.
  virtual bool CanEvict(PageId page_id) const = 0;

  /// Called immediately before the pool writes a dirty page to the
  /// device. `page_lsn` is the log position that must be durable first;
  /// the observer blocks until it is (WAL rule).
  virtual Status BeforePageFlush(PageId page_id, uint64_t page_lsn) = 0;
};

/// \brief RAII pin + latch on a buffered page.
///
/// While a PageGuard is alive the frame cannot be evicted and the page's
/// latch is held in the guard's LatchMode. Call MarkDirty() after mutating
/// data() (exclusive guards only); the pool writes dirty frames back on
/// eviction or FlushAll(). Guards are movable but not copyable; moves
/// leave the source guard inert (valid() == false), and debug builds
/// assert on use-after-move, use-after-release, and double-release.
class PageGuard {
 public:
  PageGuard() = default;
  PageGuard(BufferPool* pool, size_t frame_index, LatchMode mode);
  ~PageGuard();

  PageGuard(const PageGuard&) = delete;
  PageGuard& operator=(const PageGuard&) = delete;
  PageGuard(PageGuard&& other) noexcept;
  PageGuard& operator=(PageGuard&& other) noexcept;

  bool valid() const { return pool_ != nullptr; }
  uint8_t* data();
  const uint8_t* data() const;
  PageId page_id() const;
  LatchMode mode() const { return mode_; }
  void MarkDirty();

  /// Releases the latch and pin early. Must not be called twice, nor on a
  /// moved-from guard (debug-asserted); the destructor is always safe.
  void Release();

 private:
  /// Destructor / move-assignment path: releases if held, never asserts.
  void ReleaseInternal();

  BufferPool* pool_ = nullptr;
  size_t frame_index_ = 0;
  LatchMode mode_ = LatchMode::kExclusive;
#ifndef NDEBUG
  enum class DebugState { kEmpty, kActive, kReleased, kMoved };
  DebugState debug_state_ = DebugState::kEmpty;
#endif
};

/// \brief Fixed-capacity page cache over a StorageDevice with clock
/// eviction, pin counting, I/O statistics, batched read-ahead, and
/// elevator (PageId-ordered, run-coalesced) write-back.
///
/// The buffer pool is the engine's single point of I/O accounting: every
/// structure (heap files, B+ trees, link sets, replica sets) accesses pages
/// through it, so `stats().disk_reads/disk_writes` measure exactly the
/// quantity the paper's cost model predicts. Benchmarks call
/// EvictAll() + ResetStats() before each query to measure it cold.
///
/// Read-ahead accounting rule: Prefetch() performs *physical* reads
/// (counted as `batched_reads`/`bytes_read`) and installs the pages
/// unpinned and uncharged; the first FetchPage of a prefetched page charges
/// one `disk_reads` (not a `hits`), and a prefetched page that is never
/// fetched is never charged. Logical counters are therefore byte-identical
/// with read-ahead on or off.
///
/// Thread safety (DESIGN.md §10): the page table is sharded (power-of-two
/// shard count, one mutex + condvar each), every frame carries a
/// shared_mutex latch and an atomic pin count, and the I/O counters are
/// atomics. Page installation is single-flight: a miss publishes an
/// in-flight marker in its shard before reading the device, so concurrent
/// fetchers of the same page wait on the shard condvar instead of reading
/// twice — which also keeps the logical counters (one disk_read, k hits)
/// interleaving-invariant. Eviction and free-frame bookkeeping are
/// serialized by a single victim mutex; an evicting thread never takes a
/// frame latch (a pin count of zero, verified under the shard lock,
/// implies the latch is free), so the lock order is always
/// frame-latch -> victim -> shard and never cycles.
class BufferPool {
 public:
  /// \param device   backing store (not owned unless passed via TakeDevice).
  /// \param capacity number of frames. Must be >= 1.
  BufferPool(StorageDevice* device, size_t capacity);

  /// Convenience constructor taking ownership of the device.
  BufferPool(std::unique_ptr<StorageDevice> device, size_t capacity);

  ~BufferPool();

  BufferPool(const BufferPool&) = delete;
  BufferPool& operator=(const BufferPool&) = delete;

  /// Pins and latches page `page_id`, reading it from the device on a
  /// miss. kShared fetches never fire OnPageAccess (readers need no WAL
  /// pre-image) and must not MarkDirty.
  Status FetchPage(PageId page_id, PageGuard* guard,
                   LatchMode mode = LatchMode::kExclusive);

  /// Allocates a fresh zeroed page on the device and pins it (exclusive).
  Status NewPage(PageGuard* guard);

  /// Batch-reads the non-resident pages of `page_ids` into victim frames
  /// through the device's vectored read path, leaving them unpinned and
  /// logically uncharged (see the accounting rule above). A scheduling
  /// hint, not a correctness operation:
  ///   - no-op when the read-ahead window is 0;
  ///   - ids that are resident, in flight, duplicated, or unallocated are
  ///     skipped;
  ///   - victim selection honours the observer's no-steal veto and flushes
  ///     dirty victims through the normal BeforePageFlush path;
  ///   - if every frame is pinned the remainder of the batch is dropped;
  ///   - with checksum verification enabled (see set_verify_checksums),
  ///     pages failing it are not installed (the next FetchPage re-reads
  ///     them through the on-demand path).
  /// Device errors (e.g. a crashed fault-injection device) propagate.
  ///
  /// On an asynchronous device (device->async_io()), the batch is
  /// submitted and Prefetch returns without waiting: frames are installed
  /// by the device's completion callback, concurrent fetchers of an
  /// in-flight page wait on the shard condvar exactly as for a
  /// synchronous miss, and per-page failures abandon the claim (the next
  /// on-demand fetch reports them). The logical accounting rule above is
  /// unchanged — completion installs pages uncharged, first fetch
  /// charges — so IoStats stay byte-identical.
  Status Prefetch(std::span<const PageId> page_ids);

  /// Prefetches the distinct pages addressed by `oids` (in sorted page
  /// order). Convenience wrapper over Prefetch for OID-batch hot paths.
  Status PrefetchOidPages(std::span<const Oid> oids);

  /// Writes all dirty frames back to the device (without unpinning), in
  /// ascending PageId order with contiguous runs coalesced into vectored
  /// writes (elevator write-back). Frames the observer protects
  /// (uncommitted transaction pages) are skipped: their fate is decided by
  /// commit or crash, not by a flush.
  Status FlushAll();

  /// Flushes and then drops every unpinned frame, so the next access to any
  /// page performs a device read. Fails if any page is still pinned — the
  /// benchmarks rely on a fully cold cache. On flush failure the returned
  /// Status names the page that failed.
  Status EvictAll();

  /// Snapshot of the I/O counters. Exact when the pool is quiesced (the
  /// only way measurements use it); monotone mid-flight.
  IoStats stats() const { return stats_.Snapshot(); }
  void ResetStats() { stats_.Reset(); }

  /// Concurrency-behaviour counters (always on; relaxed atomics like the
  /// I/O stats). Purely observational: none of them feed back into any
  /// replacement or scheduling decision.
  struct ConcurrencyStats {
    uint64_t latch_waits = 0;         ///< Latch acquisitions that blocked.
    uint64_t single_flight_waits = 0; ///< Fetches that waited on another
                                      ///< fetcher's in-flight device read.
    uint64_t eviction_scan_steps = 0; ///< Clock-hand steps examined.
    uint64_t evictions = 0;           ///< Occupied frames reclaimed.
  };
  ConcurrencyStats concurrency_stats() const;

  /// Appends this pool's metric samples (logical/physical I/O counters,
  /// per-shard hit/miss, latch and eviction behaviour, cache gauges) to
  /// `out` — the registry-collector hook Database installs.
  void CollectMetrics(std::vector<MetricSample>* out) const;

  /// Read-ahead window: the number of pages scan hot paths prefetch ahead
  /// of the cursor. 0 disables read-ahead (every Prefetch call becomes a
  /// no-op), restoring strictly on-demand I/O.
  void set_read_ahead_window(uint32_t window) { read_ahead_window_ = window; }
  uint32_t read_ahead_window() const { return read_ahead_window_; }

  /// Checksum verification on the read paths (on-demand misses and
  /// prefetch batches). Defaults to on in debug builds and off in release
  /// — the policy FetchPage has always had; tests flip it on explicitly.
  /// A failing on-demand read returns Corruption; a failing batch-read
  /// page is silently not installed (the on-demand retry reports it).
  void set_verify_checksums(bool verify) { verify_checksums_ = verify; }
  bool verify_checksums() const { return verify_checksums_; }

  size_t capacity() const { return capacity_; }
  /// Number of frames currently holding a page.
  size_t pages_cached() const;
  /// Total pins across all frames (for leak checks in tests; exact only
  /// when quiesced).
  uint64_t total_pins() const;

  StorageDevice* device() { return device_; }

  /// Attaches (or detaches, with nullptr) the WAL observer. The observer
  /// must outlive the pool or be detached before destruction. Not
  /// thread-safe: call while the pool is idle.
  void SetObserver(PageObserver* observer) { observer_ = observer; }

  /// Frame bytes of `page_id` if resident, else nullptr. No pin, no
  /// statistics — used by the WAL to diff pages at commit. The returned
  /// pointer is stable only while the page cannot be evicted (the WAL's
  /// no-steal veto guarantees that for transaction pages).
  const uint8_t* PeekPage(PageId page_id) const;

  /// Sets the recovery LSN the flush-ordering hook reports for the page
  /// (no-op if the page is not resident).
  void SetPageLsn(PageId page_id, uint64_t lsn);

  /// Page ids of all dirty frames — the dirty-frame table a checkpoint
  /// walks.
  std::vector<PageId> DirtyPageIds() const;

  /// Issues a device Sync (fsync), counted in stats as a disk_sync.
  Status SyncDevice();

  /// Blocks until every asynchronously submitted batch (prefetch reads,
  /// write-back runs) has completed and its frames are settled. Cheap
  /// no-op on synchronous devices. Called by the destructor and EvictAll;
  /// tests quiescing the pool around stat assertions call it directly.
  void DrainAsyncIo();

 private:
  friend class PageGuard;

  struct Frame {
    /// Page-aligned (PageBuffer) so an O_DIRECT device can transfer
    /// frames directly, without bounce copies.
    PageBuffer data;
    /// Reader/writer latch. Acquired after the pin (never while holding a
    /// shard or victim lock); pin_count > 0 keeps the Frame itself stable.
    /// kFrameLatch is a same-rank-ok rank: the elevator flush and
    /// multi-page appends legitimately hold several latches at once.
    SharedMutex latch{LockRank::kFrameLatch, "pool.frame.latch"};
    std::atomic<uint32_t> pin_count{0};
    std::atomic<uint64_t> page_lsn{0};  ///< Durability horizon for flushes.
    std::atomic<bool> dirty{false};
    std::atomic<bool> referenced{false};  // clock bit
    /// Fill paths store it with release order after page_id (below) so a
    /// pool walk that loads it with acquire order reads the matching id.
    std::atomic<bool> in_use{false};
    /// Installed by Prefetch and not yet logically charged: the first
    /// FetchPage counts it as a disk_read instead of a hit.
    std::atomic<bool> prefetched{false};
    /// Written while the frame is unreachable (under victim_mutex_ before
    /// table publication, or marked in-flight in its shard) — but read by
    /// whole-pool walks that only observe `in_use`, so it is atomic and
    /// publication is the release-store of `in_use` above.
    std::atomic<PageId> page_id{kInvalidPageId};
  };

  /// One page-table shard: page id -> frame index, or kFrameInFlight for
  /// a page whose device read (miss) or writeback (dirty eviction) is in
  /// progress. Fetchers of an in-flight page wait on `cv`.
  struct Shard {
    mutable Mutex mu{LockRank::kPoolShard, "pool.shard.mu"};
    CondVar cv;
    std::unordered_map<PageId, size_t> table GUARDED_BY(mu);
    /// Per-shard logical cache behaviour: `hits` counts fetches satisfied
    /// from the cache, `misses` fetches charged a logical disk_read
    /// (on-demand miss or first touch of a prefetched page). Together they
    /// partition stats_.fetches by page-table shard.
    std::atomic<uint64_t> hits{0};
    std::atomic<uint64_t> misses{0};
  };

  static constexpr size_t kShardCount = 64;  // power of two
  static constexpr size_t kFrameInFlight = static_cast<size_t>(-1);

  Shard& ShardFor(PageId page_id) const {
    return shards_[page_id & (kShardCount - 1)];
  }

  /// Acquires `frame`'s latch in `mode`, counting acquisitions that had
  /// to block in latch_waits_ (uncontended try_lock first, so the common
  /// case costs one extra CAS at most). The acquisition outlives this
  /// function (the matching release is Unpin via ~PageGuard), which the
  /// static analysis cannot follow.
  void LatchFrame(Frame& frame, LatchMode mode) NO_THREAD_SAFETY_ANALYSIS;

  /// Flush-ordering + writeback of one frame's bytes. The caller must
  /// guarantee the bytes are stable (frame unreachable + unpinned, or
  /// exclusive latch held).
  Status WriteBackFrame(Frame& frame);

  /// Elevator write-back of the given dirty frames: sorts by PageId,
  /// honours BeforePageFlush per page, stamps checksums, and coalesces
  /// contiguous runs into vectored device writes. Takes each frame's
  /// exclusive latch around stamping + staging so concurrent readers
  /// never observe checksum bytes mid-update. On failure the Status
  /// names the pages that could not be written; failed frames stay dirty
  /// (a prefix may have reached the device — rewriting later is safe).
  /// Called with no pool lock held (the caller pins the frames instead):
  /// taking a frame latch under victim_mutex_ would invert the
  /// frame-latch → victim order.
  ///
  /// On an asynchronous device, every run is staged (WAL flush ordering:
  /// BeforePageFlush blocks per page BEFORE its bytes are handed to the
  /// device) and submitted without waiting, overlapping the runs'
  /// device writes; the call then blocks until all its runs complete,
  /// so the post-conditions (dirty bits, error reporting, counters) are
  /// identical to the synchronous path.
  Status FlushFramesOrdered(std::vector<size_t> frame_indices)
      EXCLUDES(victim_mutex_);

  /// One claimed-but-unfilled prefetch page: in-flight marker published
  /// in its shard, victim frame reserved with pin_count 1.
  struct PrefetchClaim {
    PageId page_id;
    size_t frame_index;
  };

  /// Completion half of Prefetch, shared by the synchronous path and the
  /// async completion callback (device reaper thread): installs each
  /// claim whose read succeeded (unpinned, logically uncharged,
  /// checksum-verified) and abandons the rest.
  void InstallPrefetchedPages(std::span<const PrefetchClaim> claims,
                              std::span<const Status> statuses);

  /// Async-batch bookkeeping for DrainAsyncIo.
  void BeginAsyncBatch();
  void EndAsyncBatch();

  /// Finds a victim frame via the clock algorithm, writing it back if
  /// dirty, and removes it from the page table. Returns FailedPrecondition
  /// if every frame is pinned. The returned frame is unreachable but has
  /// pin_count 0 — callers that release victim_mutex_ before installing
  /// must set pin_count first so a concurrent sweep cannot hand the frame
  /// out again.
  Status GetVictimFrame(size_t* frame_index) REQUIRES(victim_mutex_);

  /// Returns a claimed-but-uninstalled frame to the free list and erases
  /// the page's in-flight marker, waking waiters to retry.
  void AbandonFill(PageId page_id, size_t frame_index);

  /// Releases the latch taken by LatchFrame and drops the pin (the
  /// acquisition happened in FetchPage/NewPage, so this is the unbalanced
  /// other half the analysis cannot follow).
  void Unpin(size_t frame_index, LatchMode mode) NO_THREAD_SAFETY_ANALYSIS;

  StorageDevice* device_;
  std::unique_ptr<StorageDevice> owned_device_;
  std::unique_ptr<Frame[]> frames_;
  size_t capacity_ = 0;
  mutable std::unique_ptr<Shard[]> shards_;
  /// Serializes victim selection, the free list, the clock hand, and the
  /// whole-pool walks (FlushAll / EvictAll / DirtyPageIds). Lock order
  /// (enforced by LockRank): victim_mutex_ before shard mutexes; frame
  /// latches before either; never the reverse.
  mutable Mutex victim_mutex_{LockRank::kPoolVictim, "pool.victim_mu"};
  std::vector<size_t> free_frames_ GUARDED_BY(victim_mutex_);
  size_t clock_hand_ GUARDED_BY(victim_mutex_) = 0;
  mutable AtomicIoStats stats_;
  /// See ConcurrencyStats.
  std::atomic<uint64_t> latch_waits_{0};
  std::atomic<uint64_t> single_flight_waits_{0};
  std::atomic<uint64_t> eviction_scan_steps_{0};
  std::atomic<uint64_t> evictions_{0};
  PageObserver* observer_ = nullptr;
  /// Outstanding asynchronously submitted device batches. kLeaf: taken
  /// only with no other pool or device lock held (submitters bump it
  /// before handing the batch to the device; completion callbacks
  /// decrement it last, after all frame bookkeeping).
  mutable Mutex async_mu_{LockRank::kLeaf, "pool.async_mu"};
  CondVar async_cv_;
  size_t async_inflight_ GUARDED_BY(async_mu_) = 0;
  std::atomic<uint32_t> read_ahead_window_{kDefaultReadAheadWindow};
#ifndef NDEBUG
  std::atomic<bool> verify_checksums_{true};
#else
  std::atomic<bool> verify_checksums_{false};
#endif
};

}  // namespace fieldrep

#endif  // FIELDREP_STORAGE_BUFFER_POOL_H_
