#ifndef FIELDREP_STORAGE_BUFFER_POOL_H_
#define FIELDREP_STORAGE_BUFFER_POOL_H_

#include <cstdint>
#include <memory>
#include <span>
#include <unordered_map>
#include <vector>

#include "common/status.h"
#include "storage/io_stats.h"
#include "storage/oid.h"
#include "storage/page.h"
#include "storage/storage_device.h"

namespace fieldrep {

class BufferPool;

/// Default read-ahead window (pages per prefetch batch). 0 disables
/// read-ahead everywhere and restores strictly on-demand I/O.
constexpr uint32_t kDefaultReadAheadWindow = 16;

/// \brief Hook interface through which a write-ahead log observes and
/// constrains the buffer pool (see src/wal/wal_manager.h).
///
/// The pool calls these at well-defined points so that the WAL can
/// capture page pre-images, track transaction write sets, veto eviction
/// of uncommitted pages (no-steal policy), and enforce the WAL flush
/// ordering: no dirty page reaches the device before the log records
/// covering it are durable.
class PageObserver {
 public:
  virtual ~PageObserver() = default;

  /// A page's bytes became visible through the pool (fetch hit or miss,
  /// or a freshly allocated zero page). `data` is the frame content
  /// before the caller mutates it.
  virtual void OnPageAccess(PageId page_id, const uint8_t* data) = 0;

  /// A guard marked the page dirty.
  virtual void OnPageDirtied(PageId page_id) = 0;

  /// May this dirty page be written back and evicted? False while an
  /// active transaction's uncommitted bytes are on it.
  virtual bool CanEvict(PageId page_id) const = 0;

  /// Called immediately before the pool writes a dirty page to the
  /// device. `page_lsn` is the log position that must be durable first;
  /// the observer blocks until it is (WAL rule).
  virtual Status BeforePageFlush(PageId page_id, uint64_t page_lsn) = 0;
};

/// \brief RAII pin on a buffered page.
///
/// While a PageGuard is alive the frame cannot be evicted. Call MarkDirty()
/// after mutating data(); the pool writes dirty frames back on eviction or
/// FlushAll(). Guards are movable but not copyable.
class PageGuard {
 public:
  PageGuard() = default;
  PageGuard(BufferPool* pool, size_t frame_index);
  ~PageGuard();

  PageGuard(const PageGuard&) = delete;
  PageGuard& operator=(const PageGuard&) = delete;
  PageGuard(PageGuard&& other) noexcept;
  PageGuard& operator=(PageGuard&& other) noexcept;

  bool valid() const { return pool_ != nullptr; }
  uint8_t* data();
  const uint8_t* data() const;
  PageId page_id() const;
  void MarkDirty();

  /// Releases the pin early (idempotent).
  void Release();

 private:
  BufferPool* pool_ = nullptr;
  size_t frame_index_ = 0;
};

/// \brief Fixed-capacity page cache over a StorageDevice with clock
/// eviction, pin counting, I/O statistics, batched read-ahead, and
/// elevator (PageId-ordered, run-coalesced) write-back.
///
/// The buffer pool is the engine's single point of I/O accounting: every
/// structure (heap files, B+ trees, link sets, replica sets) accesses pages
/// through it, so `stats().disk_reads/disk_writes` measure exactly the
/// quantity the paper's cost model predicts. Benchmarks call
/// EvictAll() + ResetStats() before each query to measure it cold.
///
/// Read-ahead accounting rule: Prefetch() performs *physical* reads
/// (counted as `batched_reads`/`bytes_read`) and installs the pages
/// unpinned and uncharged; the first FetchPage of a prefetched page charges
/// one `disk_reads` (not a `hits`), and a prefetched page that is never
/// fetched is never charged. Logical counters are therefore byte-identical
/// with read-ahead on or off.
class BufferPool {
 public:
  /// \param device   backing store (not owned unless passed via TakeDevice).
  /// \param capacity number of frames. Must be >= 1.
  BufferPool(StorageDevice* device, size_t capacity);

  /// Convenience constructor taking ownership of the device.
  BufferPool(std::unique_ptr<StorageDevice> device, size_t capacity);

  ~BufferPool();

  BufferPool(const BufferPool&) = delete;
  BufferPool& operator=(const BufferPool&) = delete;

  /// Pins page `page_id`, reading it from the device on a miss.
  Status FetchPage(PageId page_id, PageGuard* guard);

  /// Allocates a fresh zeroed page on the device and pins it.
  Status NewPage(PageGuard* guard);

  /// Batch-reads the non-resident pages of `page_ids` into victim frames
  /// through the device's vectored read path, leaving them unpinned and
  /// logically uncharged (see the accounting rule above). A scheduling
  /// hint, not a correctness operation:
  ///   - no-op when the read-ahead window is 0;
  ///   - ids that are resident, duplicated, or unallocated are skipped;
  ///   - victim selection honours the observer's no-steal veto and flushes
  ///     dirty victims through the normal BeforePageFlush path;
  ///   - if every frame is pinned the remainder of the batch is dropped;
  ///   - with checksum verification enabled (see set_verify_checksums),
  ///     pages failing it are not installed (the next FetchPage re-reads
  ///     them through the on-demand path).
  /// Device errors (e.g. a crashed fault-injection device) propagate.
  Status Prefetch(std::span<const PageId> page_ids);

  /// Prefetches the distinct pages addressed by `oids` (in sorted page
  /// order). Convenience wrapper over Prefetch for OID-batch hot paths.
  Status PrefetchOidPages(std::span<const Oid> oids);

  /// Writes all dirty frames back to the device (without unpinning), in
  /// ascending PageId order with contiguous runs coalesced into vectored
  /// writes (elevator write-back). Frames the observer protects
  /// (uncommitted transaction pages) are skipped: their fate is decided by
  /// commit or crash, not by a flush.
  Status FlushAll();

  /// Flushes and then drops every unpinned frame, so the next access to any
  /// page performs a device read. Fails if any page is still pinned — the
  /// benchmarks rely on a fully cold cache. On flush failure the returned
  /// Status names the page that failed.
  Status EvictAll();

  const IoStats& stats() const { return stats_; }
  void ResetStats() { stats_.Reset(); }

  /// Read-ahead window: the number of pages scan hot paths prefetch ahead
  /// of the cursor. 0 disables read-ahead (every Prefetch call becomes a
  /// no-op), restoring strictly on-demand I/O.
  void set_read_ahead_window(uint32_t window) { read_ahead_window_ = window; }
  uint32_t read_ahead_window() const { return read_ahead_window_; }

  /// Checksum verification on the read paths (on-demand misses and
  /// prefetch batches). Defaults to on in debug builds and off in release
  /// — the policy FetchPage has always had; tests flip it on explicitly.
  /// A failing on-demand read returns Corruption; a failing batch-read
  /// page is silently not installed (the on-demand retry reports it).
  void set_verify_checksums(bool verify) { verify_checksums_ = verify; }
  bool verify_checksums() const { return verify_checksums_; }

  size_t capacity() const { return frames_.size(); }
  /// Number of frames currently holding a page.
  size_t pages_cached() const { return page_table_.size(); }
  /// Total pins across all frames (for leak checks in tests).
  uint64_t total_pins() const;

  StorageDevice* device() { return device_; }

  /// Attaches (or detaches, with nullptr) the WAL observer. The observer
  /// must outlive the pool or be detached before destruction.
  void SetObserver(PageObserver* observer) { observer_ = observer; }

  /// Frame bytes of `page_id` if resident, else nullptr. No pin, no
  /// statistics — used by the WAL to diff pages at commit.
  const uint8_t* PeekPage(PageId page_id) const;

  /// Sets the recovery LSN the flush-ordering hook reports for the page
  /// (no-op if the page is not resident).
  void SetPageLsn(PageId page_id, uint64_t lsn);

  /// Page ids of all dirty frames — the dirty-frame table a checkpoint
  /// walks.
  std::vector<PageId> DirtyPageIds() const;

  /// Issues a device Sync (fsync), counted in stats as a disk_sync.
  Status SyncDevice();

 private:
  friend class PageGuard;

  struct Frame {
    std::unique_ptr<uint8_t[]> data;
    PageId page_id = kInvalidPageId;
    uint32_t pin_count = 0;
    uint64_t page_lsn = 0;  ///< Log position that must be durable first.
    bool dirty = false;
    bool referenced = false;  // clock bit
    bool in_use = false;
    /// Installed by Prefetch and not yet logically charged: the first
    /// FetchPage counts it as a disk_read instead of a hit.
    bool prefetched = false;
  };

  /// Flush-ordering + writeback of one dirty frame.
  Status WriteBackFrame(Frame& frame);

  /// Elevator write-back of the given dirty frames: sorts by PageId,
  /// honours BeforePageFlush per page, stamps checksums, and coalesces
  /// contiguous runs into vectored device writes. On failure the Status
  /// names the first page that could not be written; frames of a failed
  /// run stay dirty (a prefix may have reached the device — rewriting
  /// later is safe).
  Status FlushFramesOrdered(std::vector<size_t> frame_indices);

  /// Finds a victim frame via the clock algorithm, writing it back if
  /// dirty. Returns FailedPrecondition if every frame is pinned.
  Status GetVictimFrame(size_t* frame_index);

  void Unpin(size_t frame_index);

  StorageDevice* device_;
  std::unique_ptr<StorageDevice> owned_device_;
  std::vector<Frame> frames_;
  std::unordered_map<PageId, size_t> page_table_;
  std::vector<size_t> free_frames_;
  size_t clock_hand_ = 0;
  IoStats stats_;
  PageObserver* observer_ = nullptr;
  uint32_t read_ahead_window_ = kDefaultReadAheadWindow;
#ifndef NDEBUG
  bool verify_checksums_ = true;
#else
  bool verify_checksums_ = false;
#endif
};

}  // namespace fieldrep

#endif  // FIELDREP_STORAGE_BUFFER_POOL_H_
