#ifndef FIELDREP_STORAGE_BUFFER_POOL_H_
#define FIELDREP_STORAGE_BUFFER_POOL_H_

#include <cstdint>
#include <memory>
#include <unordered_map>
#include <vector>

#include "common/status.h"
#include "storage/io_stats.h"
#include "storage/page.h"
#include "storage/storage_device.h"

namespace fieldrep {

class BufferPool;

/// \brief Hook interface through which a write-ahead log observes and
/// constrains the buffer pool (see src/wal/wal_manager.h).
///
/// The pool calls these at well-defined points so that the WAL can
/// capture page pre-images, track transaction write sets, veto eviction
/// of uncommitted pages (no-steal policy), and enforce the WAL flush
/// ordering: no dirty page reaches the device before the log records
/// covering it are durable.
class PageObserver {
 public:
  virtual ~PageObserver() = default;

  /// A page's bytes became visible through the pool (fetch hit or miss,
  /// or a freshly allocated zero page). `data` is the frame content
  /// before the caller mutates it.
  virtual void OnPageAccess(PageId page_id, const uint8_t* data) = 0;

  /// A guard marked the page dirty.
  virtual void OnPageDirtied(PageId page_id) = 0;

  /// May this dirty page be written back and evicted? False while an
  /// active transaction's uncommitted bytes are on it.
  virtual bool CanEvict(PageId page_id) const = 0;

  /// Called immediately before the pool writes a dirty page to the
  /// device. `page_lsn` is the log position that must be durable first;
  /// the observer blocks until it is (WAL rule).
  virtual Status BeforePageFlush(PageId page_id, uint64_t page_lsn) = 0;
};

/// \brief RAII pin on a buffered page.
///
/// While a PageGuard is alive the frame cannot be evicted. Call MarkDirty()
/// after mutating data(); the pool writes dirty frames back on eviction or
/// FlushAll(). Guards are movable but not copyable.
class PageGuard {
 public:
  PageGuard() = default;
  PageGuard(BufferPool* pool, size_t frame_index);
  ~PageGuard();

  PageGuard(const PageGuard&) = delete;
  PageGuard& operator=(const PageGuard&) = delete;
  PageGuard(PageGuard&& other) noexcept;
  PageGuard& operator=(PageGuard&& other) noexcept;

  bool valid() const { return pool_ != nullptr; }
  uint8_t* data();
  const uint8_t* data() const;
  PageId page_id() const;
  void MarkDirty();

  /// Releases the pin early (idempotent).
  void Release();

 private:
  BufferPool* pool_ = nullptr;
  size_t frame_index_ = 0;
};

/// \brief Fixed-capacity page cache over a StorageDevice with clock
/// eviction, pin counting, and I/O statistics.
///
/// The buffer pool is the engine's single point of I/O accounting: every
/// structure (heap files, B+ trees, link sets, replica sets) accesses pages
/// through it, so `stats().disk_reads/disk_writes` measure exactly the
/// quantity the paper's cost model predicts. Benchmarks call
/// EvictAll() + ResetStats() before each query to measure it cold.
class BufferPool {
 public:
  /// \param device   backing store (not owned unless passed via TakeDevice).
  /// \param capacity number of frames. Must be >= 1.
  BufferPool(StorageDevice* device, size_t capacity);

  /// Convenience constructor taking ownership of the device.
  BufferPool(std::unique_ptr<StorageDevice> device, size_t capacity);

  ~BufferPool();

  BufferPool(const BufferPool&) = delete;
  BufferPool& operator=(const BufferPool&) = delete;

  /// Pins page `page_id`, reading it from the device on a miss.
  Status FetchPage(PageId page_id, PageGuard* guard);

  /// Allocates a fresh zeroed page on the device and pins it.
  Status NewPage(PageGuard* guard);

  /// Writes all dirty frames back to the device (without unpinning).
  /// Frames the observer protects (uncommitted transaction pages) are
  /// skipped: their fate is decided by commit or crash, not by a flush.
  Status FlushAll();

  /// Flushes and then drops every unpinned frame, so the next access to any
  /// page performs a device read. Fails if any page is still pinned — the
  /// benchmarks rely on a fully cold cache.
  Status EvictAll();

  const IoStats& stats() const { return stats_; }
  void ResetStats() { stats_.Reset(); }

  size_t capacity() const { return frames_.size(); }
  /// Number of frames currently holding a page.
  size_t pages_cached() const { return page_table_.size(); }
  /// Total pins across all frames (for leak checks in tests).
  uint64_t total_pins() const;

  StorageDevice* device() { return device_; }

  /// Attaches (or detaches, with nullptr) the WAL observer. The observer
  /// must outlive the pool or be detached before destruction.
  void SetObserver(PageObserver* observer) { observer_ = observer; }

  /// Frame bytes of `page_id` if resident, else nullptr. No pin, no
  /// statistics — used by the WAL to diff pages at commit.
  const uint8_t* PeekPage(PageId page_id) const;

  /// Sets the recovery LSN the flush-ordering hook reports for the page
  /// (no-op if the page is not resident).
  void SetPageLsn(PageId page_id, uint64_t lsn);

  /// Page ids of all dirty frames — the dirty-frame table a checkpoint
  /// walks.
  std::vector<PageId> DirtyPageIds() const;

  /// Issues a device Sync (fsync), counted in stats as a disk_sync.
  Status SyncDevice();

 private:
  friend class PageGuard;

  struct Frame {
    std::unique_ptr<uint8_t[]> data;
    PageId page_id = kInvalidPageId;
    uint32_t pin_count = 0;
    uint64_t page_lsn = 0;  ///< Log position that must be durable first.
    bool dirty = false;
    bool referenced = false;  // clock bit
    bool in_use = false;
  };

  /// Flush-ordering + writeback of one dirty frame.
  Status WriteBackFrame(Frame& frame);

  /// Finds a victim frame via the clock algorithm, writing it back if
  /// dirty. Returns FailedPrecondition if every frame is pinned.
  Status GetVictimFrame(size_t* frame_index);

  void Unpin(size_t frame_index);

  StorageDevice* device_;
  std::unique_ptr<StorageDevice> owned_device_;
  std::vector<Frame> frames_;
  std::unordered_map<PageId, size_t> page_table_;
  std::vector<size_t> free_frames_;
  size_t clock_hand_ = 0;
  IoStats stats_;
  PageObserver* observer_ = nullptr;
};

}  // namespace fieldrep

#endif  // FIELDREP_STORAGE_BUFFER_POOL_H_
