#include "storage/corrupting_device.h"

#include <cstring>

#include "storage/checksum.h"
#include "storage/page.h"

namespace fieldrep {

Status CorruptingDevice::CorruptByte(PageId page_id, uint32_t offset,
                                     uint8_t mask) {
  if (offset >= kPageSize) {
    return Status::InvalidArgument("corruption offset past page end");
  }
  uint8_t buf[kPageSize];
  FIELDREP_RETURN_IF_ERROR(inner_->ReadPage(page_id, buf));
  buf[offset] ^= mask;
  return inner_->WritePage(page_id, buf);
}

Status CorruptingDevice::OverwriteBytes(PageId page_id, uint32_t offset,
                                        const void* bytes, uint32_t len) {
  if (offset + len > kPageSize) {
    return Status::InvalidArgument("corruption range past page end");
  }
  uint8_t buf[kPageSize];
  FIELDREP_RETURN_IF_ERROR(inner_->ReadPage(page_id, buf));
  std::memcpy(buf + offset, bytes, len);
  return inner_->WritePage(page_id, buf);
}

Status CorruptingDevice::RestampChecksum(PageId page_id) {
  uint8_t buf[kPageSize];
  FIELDREP_RETURN_IF_ERROR(inner_->ReadPage(page_id, buf));
  StampPageChecksum(buf);
  return inner_->WritePage(page_id, buf);
}

}  // namespace fieldrep
