#include "storage/memory_device.h"

#include <cstring>

#include "common/strings.h"

namespace fieldrep {

uint8_t* MemoryDevice::PageBlock(PageId page_id) const {
  // The lock covers only the vector access: block addresses are stable,
  // so the copy itself runs unlocked.
  MutexLock lock(mu_);
  if (page_id >= pages_.size()) return nullptr;
  return pages_[page_id].get();
}

Status MemoryDevice::ReadPage(PageId page_id, void* buf) {
  uint8_t* block = PageBlock(page_id);
  if (block == nullptr) {
    return Status::OutOfRange(
        StringPrintf("read of unallocated page %u", page_id));
  }
  std::memcpy(buf, block, kPageSize);
  return Status::OK();
}

Status MemoryDevice::WritePage(PageId page_id, const void* buf) {
  uint8_t* block = PageBlock(page_id);
  if (block == nullptr) {
    return Status::OutOfRange(
        StringPrintf("write of unallocated page %u", page_id));
  }
  std::memcpy(block, buf, kPageSize);
  return Status::OK();
}

Status MemoryDevice::AllocatePage(PageId* page_id) {
  auto page = std::make_unique<uint8_t[]>(kPageSize);
  std::memset(page.get(), 0, kPageSize);
  MutexLock lock(mu_);
  pages_.push_back(std::move(page));
  *page_id = static_cast<PageId>(pages_.size() - 1);
  return Status::OK();
}

}  // namespace fieldrep
