#include "storage/memory_device.h"

#include <cstring>

#include "common/strings.h"

namespace fieldrep {

Status MemoryDevice::ReadPage(PageId page_id, void* buf) {
  if (page_id >= pages_.size()) {
    return Status::OutOfRange(
        StringPrintf("read of unallocated page %u", page_id));
  }
  std::memcpy(buf, pages_[page_id].get(), kPageSize);
  return Status::OK();
}

Status MemoryDevice::WritePage(PageId page_id, const void* buf) {
  if (page_id >= pages_.size()) {
    return Status::OutOfRange(
        StringPrintf("write of unallocated page %u", page_id));
  }
  std::memcpy(pages_[page_id].get(), buf, kPageSize);
  return Status::OK();
}

Status MemoryDevice::AllocatePage(PageId* page_id) {
  auto page = std::make_unique<uint8_t[]>(kPageSize);
  std::memset(page.get(), 0, kPageSize);
  pages_.push_back(std::move(page));
  *page_id = static_cast<PageId>(pages_.size() - 1);
  return Status::OK();
}

}  // namespace fieldrep
