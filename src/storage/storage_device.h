#ifndef FIELDREP_STORAGE_STORAGE_DEVICE_H_
#define FIELDREP_STORAGE_STORAGE_DEVICE_H_

#include <cstdint>

#include "common/status.h"
#include "storage/page.h"

namespace fieldrep {

/// \brief Abstraction over the backing store: a flat, growable array of
/// 4 KiB pages.
///
/// Two implementations are provided: MemoryDevice (the default; the paper's
/// evaluation is analytic, so a RAM-backed "disk" with exact I/O accounting
/// at the buffer pool reproduces its cost quantity) and FileDevice (a real
/// file, for durability within a session and for exercising the same code
/// path against the OS).
///
/// Devices are not thread-safe; the engine is single-threaded by design,
/// like the 1989 prototype it reproduces.
class StorageDevice {
 public:
  virtual ~StorageDevice() = default;

  /// Reads page `page_id` into `buf` (kPageSize bytes).
  virtual Status ReadPage(PageId page_id, void* buf) = 0;

  /// Writes kPageSize bytes from `buf` to page `page_id`.
  virtual Status WritePage(PageId page_id, const void* buf) = 0;

  /// Extends the device by one zeroed page and returns its id.
  virtual Status AllocatePage(PageId* page_id) = 0;

  /// Forces previously written pages to stable storage (fsync). The
  /// write-ahead log calls this to make log records durable before the
  /// pages they describe; counted as `disk_syncs` in IoStats when issued
  /// through the buffer pool. Default: no-op (a MemoryDevice is "stable"
  /// the moment WritePage returns).
  virtual Status Sync() { return Status::OK(); }

  /// Number of pages allocated so far.
  virtual uint32_t page_count() const = 0;
};

}  // namespace fieldrep

#endif  // FIELDREP_STORAGE_STORAGE_DEVICE_H_
