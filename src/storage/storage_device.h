#ifndef FIELDREP_STORAGE_STORAGE_DEVICE_H_
#define FIELDREP_STORAGE_STORAGE_DEVICE_H_

#include <cstdint>
#include <functional>
#include <span>
#include <vector>

#include "common/status.h"
#include "storage/page.h"

namespace fieldrep {

/// \brief Abstraction over the backing store: a flat, growable array of
/// 4 KiB pages.
///
/// Two implementations are provided: MemoryDevice (the default; the paper's
/// evaluation is analytic, so a RAM-backed "disk" with exact I/O accounting
/// at the buffer pool reproduces its cost quantity) and FileDevice (a real
/// file, for durability within a session and for exercising the same code
/// path against the OS).
///
/// Devices are not thread-safe; the engine is single-threaded by design,
/// like the 1989 prototype it reproduces.
class StorageDevice {
 public:
  virtual ~StorageDevice() = default;

  /// Reads page `page_id` into `buf` (kPageSize bytes).
  virtual Status ReadPage(PageId page_id, void* buf) = 0;

  /// Writes kPageSize bytes from `buf` to page `page_id`.
  virtual Status WritePage(PageId page_id, const void* buf) = 0;

  /// Vectored read: fills `bufs[i]` (kPageSize bytes each) with page
  /// `page_ids[i]`. The default implementation issues one ReadPage per
  /// page, so decorators (fault injection, corruption) keep their per-page
  /// semantics; FileDevice overrides it to coalesce contiguous runs into
  /// preadv. On error, the contents of `bufs` are unspecified — callers
  /// must not install any of the pages.
  virtual Status ReadPages(std::span<const PageId> page_ids,
                           std::span<uint8_t* const> bufs) {
    for (size_t i = 0; i < page_ids.size(); ++i) {
      FIELDREP_RETURN_IF_ERROR(ReadPage(page_ids[i], bufs[i]));
    }
    return Status::OK();
  }

  /// Vectored write: writes `bufs[i]` to page `page_ids[i]`. The default
  /// implementation issues one WritePage per page (preserving decorator
  /// fault semantics — a simulated crash can land between any two pages of
  /// a batch); FileDevice coalesces contiguous runs into pwritev. On
  /// error, a prefix of the batch may have reached the device.
  virtual Status WritePages(std::span<const PageId> page_ids,
                            std::span<const uint8_t* const> bufs) {
    for (size_t i = 0; i < page_ids.size(); ++i) {
      FIELDREP_RETURN_IF_ERROR(WritePage(page_ids[i], bufs[i]));
    }
    return Status::OK();
  }

  /// Completion callback of the asynchronous batch operations: one Status
  /// per page of the batch, in batch order. Invoked exactly once, possibly
  /// on an internal device thread (never with device-internal locks held,
  /// so the callback may call back into the engine).
  using AsyncDone = std::function<void(std::span<const Status>)>;

  /// True when this device completes the *Async operations after the
  /// submitting call returns (a real asynchronous backend). The default
  /// implementations below complete inline, so callers that need to know
  /// whether a completion can be concurrent key off this.
  virtual bool async_io() const { return false; }

  /// Asynchronous vectored read: fills `bufs[i]` with page `page_ids[i]`
  /// and invokes `done` once with per-page statuses when every page of
  /// the batch has completed. The vectors are owned by the call (they
  /// must stay valid until completion; passing by value makes that the
  /// device's problem, not the caller's) — but the *buffers* they point
  /// at are the caller's, and must outlive the completion.
  ///
  /// The default implementation completes synchronously through
  /// ReadPages, so decorators (fault injection, corruption) keep their
  /// per-page semantics on the async path too, and devices without a
  /// native async engine are trivially correct. A batch-level error is
  /// reported against every page (contents unspecified — install none).
  virtual void ReadPagesAsync(std::vector<PageId> page_ids,
                              std::vector<uint8_t*> bufs, AsyncDone done) {
    Status s = ReadPages(page_ids, bufs);
    std::vector<Status> statuses(page_ids.size(), s);
    done(statuses);
  }

  /// Asynchronous vectored write; the mirror of ReadPagesAsync. Buffers
  /// must stay valid and unmodified until `done` runs.
  virtual void WritePagesAsync(std::vector<PageId> page_ids,
                               std::vector<const uint8_t*> bufs,
                               AsyncDone done) {
    Status s = WritePages(page_ids, bufs);
    std::vector<Status> statuses(page_ids.size(), s);
    done(statuses);
  }

  /// Extends the device by one zeroed page and returns its id.
  virtual Status AllocatePage(PageId* page_id) = 0;

  /// Forces previously written pages to stable storage (fsync). The
  /// write-ahead log calls this to make log records durable before the
  /// pages they describe; counted as `disk_syncs` in IoStats when issued
  /// through the buffer pool. Default: no-op (a MemoryDevice is "stable"
  /// the moment WritePage returns).
  virtual Status Sync() { return Status::OK(); }

  /// Number of pages allocated so far.
  virtual uint32_t page_count() const = 0;
};

}  // namespace fieldrep

#endif  // FIELDREP_STORAGE_STORAGE_DEVICE_H_
