#ifndef FIELDREP_STORAGE_CHECKSUM_H_
#define FIELDREP_STORAGE_CHECKSUM_H_

#include <cstdint>

#include "storage/page.h"

namespace fieldrep {

/// \file
/// Per-page checksums (on-disk format v2, magic "FREP0002").
///
/// Every headered page (heap, B+ tree, meta — see PageType) reserves bytes
/// [kPageChecksumOffset, kPageChecksumOffset + 4) of its 40-byte header for
/// a CRC-32 over the rest of the page. The checksum is stamped by the
/// buffer pool when a frame is written back to its device and by crash
/// recovery after replaying WAL deltas onto a page; it is verified on every
/// buffer-pool read miss in debug builds and unconditionally by the
/// integrity checker (src/check).
///
/// A stored value of zero means "not stamped": freshly formatted pages and
/// pages written by pre-v2 databases carry no checksum and verify as clean.
/// Page 0 is the database header page (magic-prefixed blob, no page
/// header) and is never checksummed.

/// True if the page's type field marks it as a headered, checksummed page
/// type. Free pages and raw blob pages are not checksummed.
bool PageIsChecksummed(const uint8_t* page);

/// CRC-32 of the page contents excluding the checksum field itself,
/// mapped away from zero (a computed 0 is stored as 1) so that zero can
/// mean "not stamped".
uint32_t ComputePageChecksum(const uint8_t* page);

/// Writes ComputePageChecksum(page) into the header checksum field if the
/// page is of a checksummed type; otherwise does nothing.
void StampPageChecksum(uint8_t* page);

/// True if the page is not of a checksummed type, carries no checksum
/// (stored value 0), or the stored checksum matches the page contents.
bool VerifyPageChecksum(const uint8_t* page);

}  // namespace fieldrep

#endif  // FIELDREP_STORAGE_CHECKSUM_H_
