#include "storage/file_device.h"

#include <fcntl.h>
#include <sys/uio.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <vector>

#include "common/strings.h"

namespace fieldrep {

namespace {
// Pages per vectored syscall. Linux IOV_MAX is 1024; a 256-page (1 MiB)
// batch already amortizes the syscall without building huge iovec arrays.
constexpr size_t kMaxIovPages = 256;
}  // namespace

FileDevice::~FileDevice() { Close().ok(); }

Status FileDevice::Open(const std::string& path) {
  if (is_open()) {
    return Status::FailedPrecondition("device already open: " + path_);
  }
  int fd = ::open(path.c_str(), O_RDWR | O_CREAT, 0644);
  if (fd < 0) {
    return Status::IOError(
        StringPrintf("open(%s): %s", path.c_str(), std::strerror(errno)));
  }
  off_t size = ::lseek(fd, 0, SEEK_END);
  if (size < 0) {
    ::close(fd);
    return Status::IOError(
        StringPrintf("lseek(%s): %s", path.c_str(), std::strerror(errno)));
  }
  fd_ = fd;
  path_ = path;
  page_count_.store(static_cast<uint32_t>(size / kPageSize),
                    std::memory_order_relaxed);
  return Status::OK();
}

Status FileDevice::Close() {
  if (!is_open()) return Status::OK();
  int rc = ::close(fd_);
  fd_ = -1;
  if (rc != 0) {
    return Status::IOError(
        StringPrintf("close(%s): %s", path_.c_str(), std::strerror(errno)));
  }
  return Status::OK();
}

Status FileDevice::ReadPage(PageId page_id, void* buf) {
  if (page_id >= page_count()) {
    return Status::OutOfRange(
        StringPrintf("read of unallocated page %u", page_id));
  }
  ssize_t n = ::pread(fd_, buf, kPageSize,
                      static_cast<off_t>(page_id) * kPageSize);
  if (n != static_cast<ssize_t>(kPageSize)) {
    return Status::IOError(StringPrintf("pread page %u: %s", page_id,
                                        n < 0 ? std::strerror(errno)
                                              : "short read"));
  }
  return Status::OK();
}

Status FileDevice::WritePage(PageId page_id, const void* buf) {
  if (page_id >= page_count()) {
    return Status::OutOfRange(
        StringPrintf("write of unallocated page %u", page_id));
  }
  ssize_t n = ::pwrite(fd_, buf, kPageSize,
                       static_cast<off_t>(page_id) * kPageSize);
  if (n != static_cast<ssize_t>(kPageSize)) {
    return Status::IOError(StringPrintf("pwrite page %u: %s", page_id,
                                        n < 0 ? std::strerror(errno)
                                              : "short write"));
  }
  return Status::OK();
}

Status FileDevice::ReadPages(std::span<const PageId> page_ids,
                             std::span<uint8_t* const> bufs) {
  size_t i = 0;
  while (i < page_ids.size()) {
    // Maximal contiguous run starting at i (capped per syscall).
    size_t run = 1;
    while (i + run < page_ids.size() && run < kMaxIovPages &&
           page_ids[i + run] == page_ids[i] + run) {
      ++run;
    }
    if (run == 1) {
      FIELDREP_RETURN_IF_ERROR(ReadPage(page_ids[i], bufs[i]));
      ++i;
      continue;
    }
    if (page_ids[i] + run > page_count()) {
      return Status::OutOfRange(
          StringPrintf("vectored read past page %u", page_count()));
    }
    std::vector<struct iovec> iov(run);
    for (size_t j = 0; j < run; ++j) {
      iov[j].iov_base = bufs[i + j];
      iov[j].iov_len = kPageSize;
    }
    size_t done = 0;
    const size_t total = run * kPageSize;
    off_t base = static_cast<off_t>(page_ids[i]) * kPageSize;
    while (done < total) {
      // Resume after a short transfer: skip fully-read iovecs and trim
      // the partially-read one.
      size_t skip = done / kPageSize;
      size_t within = done % kPageSize;
      iov[skip].iov_base = bufs[i + skip] + within;
      iov[skip].iov_len = kPageSize - within;
      ssize_t n = ::preadv(fd_, iov.data() + skip,
                           static_cast<int>(run - skip),
                           base + static_cast<off_t>(done));
      if (n <= 0) {
        return Status::IOError(StringPrintf(
            "preadv at page %u: %s", page_ids[i] + static_cast<PageId>(skip),
            n < 0 ? std::strerror(errno) : "short read"));
      }
      iov[skip].iov_base = bufs[i + skip];
      iov[skip].iov_len = kPageSize;
      done += static_cast<size_t>(n);
    }
    i += run;
  }
  return Status::OK();
}

Status FileDevice::WritePages(std::span<const PageId> page_ids,
                              std::span<const uint8_t* const> bufs) {
  size_t i = 0;
  while (i < page_ids.size()) {
    size_t run = 1;
    while (i + run < page_ids.size() && run < kMaxIovPages &&
           page_ids[i + run] == page_ids[i] + run) {
      ++run;
    }
    if (run == 1) {
      FIELDREP_RETURN_IF_ERROR(WritePage(page_ids[i], bufs[i]));
      ++i;
      continue;
    }
    if (page_ids[i] + run > page_count()) {
      return Status::OutOfRange(
          StringPrintf("vectored write past page %u", page_count()));
    }
    std::vector<struct iovec> iov(run);
    for (size_t j = 0; j < run; ++j) {
      iov[j].iov_base = const_cast<uint8_t*>(bufs[i + j]);
      iov[j].iov_len = kPageSize;
    }
    size_t done = 0;
    const size_t total = run * kPageSize;
    off_t base = static_cast<off_t>(page_ids[i]) * kPageSize;
    while (done < total) {
      size_t skip = done / kPageSize;
      size_t within = done % kPageSize;
      iov[skip].iov_base = const_cast<uint8_t*>(bufs[i + skip]) + within;
      iov[skip].iov_len = kPageSize - within;
      ssize_t n = ::pwritev(fd_, iov.data() + skip,
                            static_cast<int>(run - skip),
                            base + static_cast<off_t>(done));
      if (n <= 0) {
        return Status::IOError(StringPrintf(
            "pwritev at page %u: %s", page_ids[i] + static_cast<PageId>(skip),
            n < 0 ? std::strerror(errno) : "short write"));
      }
      iov[skip].iov_base = const_cast<uint8_t*>(bufs[i + skip]);
      iov[skip].iov_len = kPageSize;
      done += static_cast<size_t>(n);
    }
    i += run;
  }
  return Status::OK();
}

Status FileDevice::Sync() {
  if (!is_open()) return Status::FailedPrecondition("device not open");
  if (::fdatasync(fd_) != 0) {
    return Status::IOError(StringPrintf("fdatasync(%s): %s", path_.c_str(),
                                        std::strerror(errno)));
  }
  return Status::OK();
}

Status FileDevice::AllocatePage(PageId* page_id) {
  if (!is_open()) return Status::FailedPrecondition("device not open");
  char zeros[kPageSize];
  std::memset(zeros, 0, sizeof(zeros));
  PageId id = page_count();
  ssize_t n =
      ::pwrite(fd_, zeros, kPageSize, static_cast<off_t>(id) * kPageSize);
  if (n != static_cast<ssize_t>(kPageSize)) {
    return Status::IOError(StringPrintf("extend to page %u: %s", id,
                                        n < 0 ? std::strerror(errno)
                                              : "short write"));
  }
  page_count_.store(id + 1, std::memory_order_relaxed);
  *page_id = id;
  return Status::OK();
}

}  // namespace fieldrep
