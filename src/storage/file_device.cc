#include "storage/file_device.h"

#include <fcntl.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

#include "common/strings.h"

namespace fieldrep {

FileDevice::~FileDevice() { Close().ok(); }

Status FileDevice::Open(const std::string& path) {
  if (is_open()) {
    return Status::FailedPrecondition("device already open: " + path_);
  }
  int fd = ::open(path.c_str(), O_RDWR | O_CREAT, 0644);
  if (fd < 0) {
    return Status::IOError(
        StringPrintf("open(%s): %s", path.c_str(), std::strerror(errno)));
  }
  off_t size = ::lseek(fd, 0, SEEK_END);
  if (size < 0) {
    ::close(fd);
    return Status::IOError(
        StringPrintf("lseek(%s): %s", path.c_str(), std::strerror(errno)));
  }
  fd_ = fd;
  path_ = path;
  page_count_ = static_cast<uint32_t>(size / kPageSize);
  return Status::OK();
}

Status FileDevice::Close() {
  if (!is_open()) return Status::OK();
  int rc = ::close(fd_);
  fd_ = -1;
  if (rc != 0) {
    return Status::IOError(
        StringPrintf("close(%s): %s", path_.c_str(), std::strerror(errno)));
  }
  return Status::OK();
}

Status FileDevice::ReadPage(PageId page_id, void* buf) {
  if (page_id >= page_count_) {
    return Status::OutOfRange(
        StringPrintf("read of unallocated page %u", page_id));
  }
  ssize_t n = ::pread(fd_, buf, kPageSize,
                      static_cast<off_t>(page_id) * kPageSize);
  if (n != static_cast<ssize_t>(kPageSize)) {
    return Status::IOError(StringPrintf("pread page %u: %s", page_id,
                                        n < 0 ? std::strerror(errno)
                                              : "short read"));
  }
  return Status::OK();
}

Status FileDevice::WritePage(PageId page_id, const void* buf) {
  if (page_id >= page_count_) {
    return Status::OutOfRange(
        StringPrintf("write of unallocated page %u", page_id));
  }
  ssize_t n = ::pwrite(fd_, buf, kPageSize,
                       static_cast<off_t>(page_id) * kPageSize);
  if (n != static_cast<ssize_t>(kPageSize)) {
    return Status::IOError(StringPrintf("pwrite page %u: %s", page_id,
                                        n < 0 ? std::strerror(errno)
                                              : "short write"));
  }
  return Status::OK();
}

Status FileDevice::Sync() {
  if (!is_open()) return Status::FailedPrecondition("device not open");
  if (::fdatasync(fd_) != 0) {
    return Status::IOError(StringPrintf("fdatasync(%s): %s", path_.c_str(),
                                        std::strerror(errno)));
  }
  return Status::OK();
}

Status FileDevice::AllocatePage(PageId* page_id) {
  if (!is_open()) return Status::FailedPrecondition("device not open");
  char zeros[kPageSize];
  std::memset(zeros, 0, sizeof(zeros));
  PageId id = page_count_;
  ssize_t n =
      ::pwrite(fd_, zeros, kPageSize, static_cast<off_t>(id) * kPageSize);
  if (n != static_cast<ssize_t>(kPageSize)) {
    return Status::IOError(StringPrintf("extend to page %u: %s", id,
                                        n < 0 ? std::strerror(errno)
                                              : "short write"));
  }
  page_count_ = id + 1;
  *page_id = id;
  return Status::OK();
}

}  // namespace fieldrep
