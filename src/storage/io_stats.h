#ifndef FIELDREP_STORAGE_IO_STATS_H_
#define FIELDREP_STORAGE_IO_STATS_H_

#include <atomic>
#include <cstdint>
#include <string>

namespace fieldrep {

/// \brief Page I/O counters maintained by the buffer pool.
///
/// The paper's entire evaluation is in units of page I/Os, so these counters
/// are the primary measurement surface of the engine: `disk_reads` and
/// `disk_writes` count *logical* device transfers (buffer misses / dirty
/// evictions + flushes), `fetches`/`hits` describe cache behaviour.
///
/// Batched I/O (prefetch read-ahead, elevator write-back) is accounted so
/// that the logical counters are unchanged by batching: a prefetched page is
/// charged to `disk_reads` the first time a caller actually fetches it, and
/// a prefetched page that is never fetched is never charged. The physical
/// side of batching is visible separately through `batched_reads`,
/// `coalesced_writes`, the byte counters, and the per-operation timers.
struct IoStats {
  uint64_t fetches = 0;      ///< Buffer-pool page requests.
  uint64_t hits = 0;         ///< Requests satisfied without device I/O.
  uint64_t disk_reads = 0;   ///< Pages read from the device (logical).
  uint64_t disk_writes = 0;  ///< Pages written to the device (logical).
  uint64_t disk_syncs = 0;   ///< Device Sync (fsync) calls.

  // --- Physical batching counters (not part of the paper's cost unit) ---
  uint64_t batched_reads = 0;     ///< Pages physically read via vectored
                                  ///< prefetch batches.
  uint64_t coalesced_writes = 0;  ///< Pages written as part of multi-page
                                  ///< contiguous runs (elevator write-back).
  uint64_t bytes_read = 0;        ///< Bytes physically read from the device.
  uint64_t bytes_written = 0;     ///< Bytes physically written to the device.
  uint64_t read_ns = 0;           ///< Wall-clock nanoseconds in device reads.
  uint64_t write_ns = 0;          ///< Wall-clock nanoseconds in device writes.
  uint64_t sync_ns = 0;           ///< Wall-clock nanoseconds in device syncs.

  /// Total logical device transfers — the paper's cost unit. Defined purely
  /// as disk_reads + disk_writes; unchanged by batching or read-ahead.
  uint64_t TotalIo() const { return disk_reads + disk_writes; }

  void Reset() { *this = IoStats(); }

  IoStats operator-(const IoStats& rhs) const;
  std::string ToString() const;
};

/// \brief Lock-free counterpart of IoStats, used internally by the (now
/// concurrent) buffer pool. Counters are relaxed atomics: each increment
/// is an independent event count, never a synchronization point, so
/// snapshots are exact whenever the pool is quiesced (how every
/// measurement path uses them) and merely monotone mid-flight.
struct AtomicIoStats {
  std::atomic<uint64_t> fetches{0};
  std::atomic<uint64_t> hits{0};
  std::atomic<uint64_t> disk_reads{0};
  std::atomic<uint64_t> disk_writes{0};
  std::atomic<uint64_t> disk_syncs{0};
  std::atomic<uint64_t> batched_reads{0};
  std::atomic<uint64_t> coalesced_writes{0};
  std::atomic<uint64_t> bytes_read{0};
  std::atomic<uint64_t> bytes_written{0};
  std::atomic<uint64_t> read_ns{0};
  std::atomic<uint64_t> write_ns{0};
  std::atomic<uint64_t> sync_ns{0};

  IoStats Snapshot() const {
    IoStats out;
    out.fetches = fetches.load(std::memory_order_relaxed);
    out.hits = hits.load(std::memory_order_relaxed);
    out.disk_reads = disk_reads.load(std::memory_order_relaxed);
    out.disk_writes = disk_writes.load(std::memory_order_relaxed);
    out.disk_syncs = disk_syncs.load(std::memory_order_relaxed);
    out.batched_reads = batched_reads.load(std::memory_order_relaxed);
    out.coalesced_writes = coalesced_writes.load(std::memory_order_relaxed);
    out.bytes_read = bytes_read.load(std::memory_order_relaxed);
    out.bytes_written = bytes_written.load(std::memory_order_relaxed);
    out.read_ns = read_ns.load(std::memory_order_relaxed);
    out.write_ns = write_ns.load(std::memory_order_relaxed);
    out.sync_ns = sync_ns.load(std::memory_order_relaxed);
    return out;
  }

  void Reset() {
    fetches.store(0, std::memory_order_relaxed);
    hits.store(0, std::memory_order_relaxed);
    disk_reads.store(0, std::memory_order_relaxed);
    disk_writes.store(0, std::memory_order_relaxed);
    disk_syncs.store(0, std::memory_order_relaxed);
    batched_reads.store(0, std::memory_order_relaxed);
    coalesced_writes.store(0, std::memory_order_relaxed);
    bytes_read.store(0, std::memory_order_relaxed);
    bytes_written.store(0, std::memory_order_relaxed);
    read_ns.store(0, std::memory_order_relaxed);
    write_ns.store(0, std::memory_order_relaxed);
    sync_ns.store(0, std::memory_order_relaxed);
  }
};

}  // namespace fieldrep

#endif  // FIELDREP_STORAGE_IO_STATS_H_
