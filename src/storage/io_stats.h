#ifndef FIELDREP_STORAGE_IO_STATS_H_
#define FIELDREP_STORAGE_IO_STATS_H_

#include <cstdint>
#include <string>

namespace fieldrep {

/// \brief Page I/O counters maintained by the buffer pool.
///
/// The paper's entire evaluation is in units of page I/Os, so these counters
/// are the primary measurement surface of the engine: `disk_reads` and
/// `disk_writes` count actual device transfers (buffer misses / dirty
/// evictions + flushes), `fetches`/`hits` describe cache behaviour.
struct IoStats {
  uint64_t fetches = 0;      ///< Buffer-pool page requests.
  uint64_t hits = 0;         ///< Requests satisfied without device I/O.
  uint64_t disk_reads = 0;   ///< Pages read from the device.
  uint64_t disk_writes = 0;  ///< Pages written to the device.
  uint64_t disk_syncs = 0;   ///< Device Sync (fsync) calls.

  /// Total device transfers — the paper's cost unit.
  uint64_t TotalIo() const { return disk_reads + disk_writes; }

  void Reset() { *this = IoStats(); }

  IoStats operator-(const IoStats& rhs) const;
  std::string ToString() const;
};

}  // namespace fieldrep

#endif  // FIELDREP_STORAGE_IO_STATS_H_
