#ifndef FIELDREP_STORAGE_IO_STATS_H_
#define FIELDREP_STORAGE_IO_STATS_H_

#include <atomic>
#include <cstdint>
#include <string>

namespace fieldrep {

/// \brief The single source of truth for the I/O counter set.
///
/// Every member of IoStats / AtomicIoStats and every derived operation
/// (Snapshot, Reset, operator-, operator+=, ToString, metric exposition)
/// is generated from this list, so adding a counter is one line here and
/// cannot silently skip a code path. The first five counters are the
/// *logical* set (buffer behaviour plus the paper's page-I/O cost unit);
/// the rest describe *physical* batching and timing and are allowed to
/// vary with scheduling (read-ahead window, elevator write-back).
///
///   fetches          buffer-pool page requests
///   hits             requests satisfied without device I/O
///   disk_reads       pages read from the device (logical)
///   disk_writes      pages written to the device (logical)
///   disk_syncs       device Sync (fsync) calls
///   batched_reads    pages physically read via vectored prefetch batches
///   coalesced_writes pages written inside multi-page contiguous runs
///   bytes_read       bytes physically read from the device
///   bytes_written    bytes physically written to the device
///   async_reads      pages whose physical read was submitted asynchronously
///   async_writes     pages whose physical write was submitted asynchronously
///   read_ns          wall-clock nanoseconds in device reads
///   write_ns         wall-clock nanoseconds in device writes
///   sync_ns          wall-clock nanoseconds in device syncs
#define FIELDREP_IO_STATS_FIELDS(X) \
  X(fetches)                        \
  X(hits)                           \
  X(disk_reads)                     \
  X(disk_writes)                    \
  X(disk_syncs)                     \
  X(batched_reads)                  \
  X(coalesced_writes)               \
  X(async_reads)                    \
  X(async_writes)                   \
  X(bytes_read)                     \
  X(bytes_written)                  \
  X(read_ns)                        \
  X(write_ns)                       \
  X(sync_ns)

/// \brief Page I/O counters maintained by the buffer pool.
///
/// The paper's entire evaluation is in units of page I/Os, so these counters
/// are the primary measurement surface of the engine: `disk_reads` and
/// `disk_writes` count *logical* device transfers (buffer misses / dirty
/// evictions + flushes), `fetches`/`hits` describe cache behaviour.
///
/// Batched I/O (prefetch read-ahead, elevator write-back) is accounted so
/// that the logical counters are unchanged by batching: a prefetched page is
/// charged to `disk_reads` the first time a caller actually fetches it, and
/// a prefetched page that is never fetched is never charged. The physical
/// side of batching is visible separately through `batched_reads`,
/// `coalesced_writes`, the byte counters, and the per-operation timers.
struct IoStats {
#define FIELDREP_IO_DECL(name) uint64_t name = 0;
  FIELDREP_IO_STATS_FIELDS(FIELDREP_IO_DECL)
#undef FIELDREP_IO_DECL

  /// Total logical device transfers — the paper's cost unit. Defined purely
  /// as disk_reads + disk_writes; unchanged by batching or read-ahead.
  uint64_t TotalIo() const { return disk_reads + disk_writes; }

  void Reset() { *this = IoStats(); }

  IoStats operator-(const IoStats& rhs) const;
  IoStats& operator+=(const IoStats& rhs);
  bool operator==(const IoStats& rhs) const;
  std::string ToString() const;
};

/// \brief Lock-free counterpart of IoStats, used internally by the (now
/// concurrent) buffer pool. Counters are relaxed atomics: each increment
/// is an independent event count, never a synchronization point, so
/// snapshots are exact whenever the pool is quiesced (how every
/// measurement path uses them) and merely monotone mid-flight.
struct AtomicIoStats {
#define FIELDREP_IO_DECL(name) std::atomic<uint64_t> name{0};
  FIELDREP_IO_STATS_FIELDS(FIELDREP_IO_DECL)
#undef FIELDREP_IO_DECL

  IoStats Snapshot() const {
    IoStats out;
#define FIELDREP_IO_LOAD(name) \
  out.name = name.load(std::memory_order_relaxed);
    FIELDREP_IO_STATS_FIELDS(FIELDREP_IO_LOAD)
#undef FIELDREP_IO_LOAD
    return out;
  }

  void Reset() {
#define FIELDREP_IO_ZERO(name) name.store(0, std::memory_order_relaxed);
    FIELDREP_IO_STATS_FIELDS(FIELDREP_IO_ZERO)
#undef FIELDREP_IO_ZERO
  }
};

}  // namespace fieldrep

#endif  // FIELDREP_STORAGE_IO_STATS_H_
