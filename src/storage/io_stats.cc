#include "storage/io_stats.h"

#include "common/strings.h"

namespace fieldrep {

IoStats IoStats::operator-(const IoStats& rhs) const {
  IoStats out;
  out.fetches = fetches - rhs.fetches;
  out.hits = hits - rhs.hits;
  out.disk_reads = disk_reads - rhs.disk_reads;
  out.disk_writes = disk_writes - rhs.disk_writes;
  out.disk_syncs = disk_syncs - rhs.disk_syncs;
  out.batched_reads = batched_reads - rhs.batched_reads;
  out.coalesced_writes = coalesced_writes - rhs.coalesced_writes;
  out.bytes_read = bytes_read - rhs.bytes_read;
  out.bytes_written = bytes_written - rhs.bytes_written;
  out.read_ns = read_ns - rhs.read_ns;
  out.write_ns = write_ns - rhs.write_ns;
  out.sync_ns = sync_ns - rhs.sync_ns;
  return out;
}

std::string IoStats::ToString() const {
  return StringPrintf(
      "IoStats{fetches=%llu hits=%llu reads=%llu writes=%llu syncs=%llu "
      "batched_reads=%llu coalesced_writes=%llu bytes_read=%llu "
      "bytes_written=%llu read_ns=%llu write_ns=%llu sync_ns=%llu}",
      static_cast<unsigned long long>(fetches),
      static_cast<unsigned long long>(hits),
      static_cast<unsigned long long>(disk_reads),
      static_cast<unsigned long long>(disk_writes),
      static_cast<unsigned long long>(disk_syncs),
      static_cast<unsigned long long>(batched_reads),
      static_cast<unsigned long long>(coalesced_writes),
      static_cast<unsigned long long>(bytes_read),
      static_cast<unsigned long long>(bytes_written),
      static_cast<unsigned long long>(read_ns),
      static_cast<unsigned long long>(write_ns),
      static_cast<unsigned long long>(sync_ns));
}

}  // namespace fieldrep
