#include "storage/io_stats.h"

#include "common/strings.h"

namespace fieldrep {

IoStats IoStats::operator-(const IoStats& rhs) const {
  IoStats out;
  out.fetches = fetches - rhs.fetches;
  out.hits = hits - rhs.hits;
  out.disk_reads = disk_reads - rhs.disk_reads;
  out.disk_writes = disk_writes - rhs.disk_writes;
  out.disk_syncs = disk_syncs - rhs.disk_syncs;
  return out;
}

std::string IoStats::ToString() const {
  return StringPrintf(
      "IoStats{fetches=%llu hits=%llu reads=%llu writes=%llu syncs=%llu}",
      static_cast<unsigned long long>(fetches),
      static_cast<unsigned long long>(hits),
      static_cast<unsigned long long>(disk_reads),
      static_cast<unsigned long long>(disk_writes),
      static_cast<unsigned long long>(disk_syncs));
}

}  // namespace fieldrep
