#include "storage/io_stats.h"

#include "common/strings.h"

namespace fieldrep {

IoStats IoStats::operator-(const IoStats& rhs) const {
  IoStats out;
#define FIELDREP_IO_SUB(field) out.field = field - rhs.field;
  FIELDREP_IO_STATS_FIELDS(FIELDREP_IO_SUB)
#undef FIELDREP_IO_SUB
  return out;
}

IoStats& IoStats::operator+=(const IoStats& rhs) {
#define FIELDREP_IO_ADD(field) field += rhs.field;
  FIELDREP_IO_STATS_FIELDS(FIELDREP_IO_ADD)
#undef FIELDREP_IO_ADD
  return *this;
}

bool IoStats::operator==(const IoStats& rhs) const {
#define FIELDREP_IO_EQ(field) \
  if (field != rhs.field) return false;
  FIELDREP_IO_STATS_FIELDS(FIELDREP_IO_EQ)
#undef FIELDREP_IO_EQ
  return true;
}

std::string IoStats::ToString() const {
  std::string out = "IoStats{";
  bool first = true;
#define FIELDREP_IO_PRINT(field)                                          \
  if (!first) out += ' ';                                                 \
  first = false;                                                          \
  out += StringPrintf(#field "=%llu",                                     \
                      static_cast<unsigned long long>(field));
  FIELDREP_IO_STATS_FIELDS(FIELDREP_IO_PRINT)
#undef FIELDREP_IO_PRINT
  out += '}';
  return out;
}

}  // namespace fieldrep
