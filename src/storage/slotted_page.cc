#include "storage/slotted_page.h"

#include <cassert>
#include <cstring>
#include <vector>

#include "check/invariant.h"
#include "common/bytes.h"

namespace fieldrep {

void SlottedPage::Init(uint8_t* data, PageType type) {
  std::memset(data, 0, kPageSize);
  EncodeU16(data + kTypeOffset, static_cast<uint16_t>(type));
  EncodeU16(data + kSlotCountOffset, 0);
  EncodeU16(data + kCellStartOffset, static_cast<uint16_t>(kPageSize));
  EncodeU16(data + kLiveCountOffset, 0);
  EncodeU32(data + kNextPageOffset, kInvalidPageId);
  EncodeU32(data + kPrevPageOffset, kInvalidPageId);
  EncodeU16(data + kFragBytesOffset, 0);
}

PageType SlottedPage::page_type() const {
  return static_cast<PageType>(DecodeU16(data_ + kTypeOffset));
}

uint16_t SlottedPage::slot_count() const {
  return DecodeU16(data_ + kSlotCountOffset);
}

uint16_t SlottedPage::live_count() const {
  return DecodeU16(data_ + kLiveCountOffset);
}

PageId SlottedPage::next_page() const {
  return DecodeU32(data_ + kNextPageOffset);
}

void SlottedPage::set_next_page(PageId id) {
  EncodeU32(data_ + kNextPageOffset, id);
}

PageId SlottedPage::prev_page() const {
  return DecodeU32(data_ + kPrevPageOffset);
}

void SlottedPage::set_prev_page(PageId id) {
  EncodeU32(data_ + kPrevPageOffset, id);
}

uint16_t SlottedPage::cell_start() const {
  return DecodeU16(data_ + kCellStartOffset);
}

void SlottedPage::set_cell_start(uint16_t v) {
  EncodeU16(data_ + kCellStartOffset, v);
}

uint16_t SlottedPage::frag_bytes() const {
  return DecodeU16(data_ + kFragBytesOffset);
}

void SlottedPage::set_frag_bytes(uint16_t v) {
  EncodeU16(data_ + kFragBytesOffset, v);
}

void SlottedPage::set_slot_count(uint16_t v) {
  EncodeU16(data_ + kSlotCountOffset, v);
}

void SlottedPage::set_live_count(uint16_t v) {
  EncodeU16(data_ + kLiveCountOffset, v);
}

uint16_t SlottedPage::SlotOffset(uint16_t slot) const {
  return DecodeU16(data_ + kPageHeaderBytes + slot * kSlotBytes);
}

uint16_t SlottedPage::SlotLength(uint16_t slot) const {
  return DecodeU16(data_ + kPageHeaderBytes + slot * kSlotBytes + 2);
}

void SlottedPage::SetSlot(uint16_t slot, uint16_t offset, uint16_t length) {
  EncodeU16(data_ + kPageHeaderBytes + slot * kSlotBytes, offset);
  EncodeU16(data_ + kPageHeaderBytes + slot * kSlotBytes + 2, length);
}

uint16_t SlottedPage::FindFreeSlot() const {
  uint16_t n = slot_count();
  for (uint16_t i = 0; i < n; ++i) {
    if (SlotOffset(i) == 0) return i;
  }
  return n;
}

uint32_t SlottedPage::FreeSpace() const {
  int64_t directory_end =
      kPageHeaderBytes + static_cast<int64_t>(slot_count()) * kSlotBytes;
  int64_t contiguous = static_cast<int64_t>(cell_start()) - directory_end;
  if (contiguous < 0) contiguous = 0;
  return static_cast<uint32_t>(contiguous + frag_bytes());
}

bool SlottedPage::HasRoomFor(uint32_t size) const {
  // Conservatively assume a new slot entry is needed.
  uint32_t need = size + kSlotBytes;
  return FreeSpace() >= need;
}

int SlottedPage::Insert(const uint8_t* payload, uint32_t size) {
  if (size > kPageSize) return -1;
  uint16_t slot = FindFreeSlot();
  bool new_slot = (slot == slot_count());
  // Signed arithmetic: the prospective directory can extend past
  // cell_start when the page is full.
  int64_t directory_end =
      kPageHeaderBytes +
      (static_cast<int64_t>(slot_count()) + (new_slot ? 1 : 0)) * kSlotBytes;
  int64_t contiguous = static_cast<int64_t>(cell_start()) - directory_end;
  if (contiguous < size) {
    int64_t total_free = contiguous + frag_bytes();
    if (total_free < size) return -1;
    Compact();
    directory_end = kPageHeaderBytes +
                    (static_cast<int64_t>(slot_count()) + (new_slot ? 1 : 0)) *
                        kSlotBytes;
    contiguous = static_cast<int64_t>(cell_start()) - directory_end;
    if (contiguous < size) return -1;
  }
  uint16_t offset = static_cast<uint16_t>(cell_start() - size);
  std::memcpy(data_ + offset, payload, size);
  set_cell_start(offset);
  if (new_slot) set_slot_count(slot_count() + 1);
  SetSlot(slot, offset, static_cast<uint16_t>(size));
  set_live_count(live_count() + 1);
  FIELDREP_INVARIANT(
      kPageHeaderBytes + slot_count() * kSlotBytes <= cell_start(),
      "slot directory ran into the cell area");
  return slot;
}

bool SlottedPage::IsLive(uint16_t slot) const {
  return slot < slot_count() && SlotOffset(slot) != 0;
}

const uint8_t* SlottedPage::Read(uint16_t slot, uint32_t* size) const {
  if (!IsLive(slot)) return nullptr;
  *size = SlotLength(slot);
  return data_ + SlotOffset(slot);
}

bool SlottedPage::ReadString(uint16_t slot, std::string* out) const {
  uint32_t size;
  const uint8_t* p = Read(slot, &size);
  if (p == nullptr) return false;
  out->assign(reinterpret_cast<const char*>(p), size);
  return true;
}

bool SlottedPage::Update(uint16_t slot, const uint8_t* payload,
                         uint32_t size) {
  if (!IsLive(slot)) return false;
  uint16_t old_len = SlotLength(slot);
  if (size <= old_len) {
    // Shrink / same size in place; the tail of the old cell becomes
    // fragmentation.
    std::memcpy(data_ + SlotOffset(slot), payload, size);
    SetSlot(slot, SlotOffset(slot), static_cast<uint16_t>(size));
    set_frag_bytes(static_cast<uint16_t>(frag_bytes() + (old_len - size)));
    return true;
  }
  // Growth: free the old cell, then insert the new payload. Keep the slot
  // index stable.
  uint32_t directory_end =
      kPageHeaderBytes + static_cast<uint32_t>(slot_count()) * kSlotBytes;
  uint32_t contiguous = cell_start() - directory_end;
  uint32_t total_free = contiguous + frag_bytes() + old_len;
  if (total_free < size) return false;
  set_frag_bytes(static_cast<uint16_t>(frag_bytes() + old_len));
  SetSlot(slot, 0, 0);  // temporarily dead so Compact skips it
  if (cell_start() - directory_end < size) {
    Compact();
    directory_end =
        kPageHeaderBytes + static_cast<uint32_t>(slot_count()) * kSlotBytes;
  }
  assert(cell_start() - directory_end >= size);
  uint16_t offset = static_cast<uint16_t>(cell_start() - size);
  std::memcpy(data_ + offset, payload, size);
  set_cell_start(offset);
  SetSlot(slot, offset, static_cast<uint16_t>(size));
  return true;
}

bool SlottedPage::Delete(uint16_t slot) {
  if (!IsLive(slot)) return false;
  set_frag_bytes(static_cast<uint16_t>(frag_bytes() + SlotLength(slot)));
  SetSlot(slot, 0, 0);
  set_live_count(live_count() - 1);
  // Trailing tombstoned slots can be returned to the directory.
  uint16_t n = slot_count();
  while (n > 0 && SlotOffset(n - 1) == 0) --n;
  set_slot_count(n);
  FIELDREP_INVARIANT(live_count() <= slot_count(),
                     "more live records than directory slots");
  return true;
}

void SlottedPage::Compact() {
  struct LiveCell {
    uint16_t slot;
    uint16_t offset;
    uint16_t length;
  };
  std::vector<LiveCell> cells;
  uint16_t n = slot_count();
  cells.reserve(n);
  for (uint16_t i = 0; i < n; ++i) {
    if (SlotOffset(i) != 0) cells.push_back({i, SlotOffset(i), SlotLength(i)});
  }
  // Copy live payloads out, then re-pack them against the end of the page.
  std::vector<uint8_t> scratch(kPageSize);
  uint32_t pos = kPageSize;
  for (const LiveCell& cell : cells) {
    pos -= cell.length;
    std::memcpy(scratch.data() + pos, data_ + cell.offset, cell.length);
  }
  std::memcpy(data_ + pos, scratch.data() + pos, kPageSize - pos);
  uint32_t cursor = kPageSize;
  for (const LiveCell& cell : cells) {
    cursor -= cell.length;
    SetSlot(cell.slot, static_cast<uint16_t>(cursor), cell.length);
  }
  set_cell_start(static_cast<uint16_t>(pos));
  set_frag_bytes(0);
  FIELDREP_INVARIANT(
      kPageHeaderBytes + slot_count() * kSlotBytes <= cell_start(),
      "compaction produced an overlapping layout");
}

}  // namespace fieldrep
