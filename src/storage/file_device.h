#ifndef FIELDREP_STORAGE_FILE_DEVICE_H_
#define FIELDREP_STORAGE_FILE_DEVICE_H_

#include <atomic>
#include <string>

#include "storage/storage_device.h"

namespace fieldrep {

/// \brief Storage device backed by a single operating-system file.
///
/// Page `i` lives at byte offset `i * kPageSize`. The device performs no
/// caching of its own — all caching (and all I/O accounting) happens in the
/// BufferPool above it.
class FileDevice : public StorageDevice {
 public:
  /// Creates a closed device; call Open() before use.
  FileDevice() = default;
  ~FileDevice() override;

  FileDevice(const FileDevice&) = delete;
  FileDevice& operator=(const FileDevice&) = delete;

  /// Opens (creating if necessary) the backing file. If the file already
  /// exists its page count is recovered from its size.
  Status Open(const std::string& path);

  /// Flushes and closes the backing file. Safe to call twice.
  Status Close();

  bool is_open() const { return fd_ >= 0; }

  Status ReadPage(PageId page_id, void* buf) override;
  Status WritePage(PageId page_id, const void* buf) override;
  /// Coalesces contiguous page-id runs into preadv calls.
  Status ReadPages(std::span<const PageId> page_ids,
                   std::span<uint8_t* const> bufs) override;
  /// Coalesces contiguous page-id runs into pwritev calls.
  Status WritePages(std::span<const PageId> page_ids,
                    std::span<const uint8_t* const> bufs) override;
  Status AllocatePage(PageId* page_id) override;
  /// fdatasync on the backing file.
  Status Sync() override;
  uint32_t page_count() const override {
    return page_count_.load(std::memory_order_relaxed);
  }

 private:
  int fd_ = -1;
  /// Atomic: reader threads bounds-check against it (pread/pwrite are
  /// themselves thread-safe) while the writer thread extends the file.
  std::atomic<uint32_t> page_count_{0};
  std::string path_;
};

}  // namespace fieldrep

#endif  // FIELDREP_STORAGE_FILE_DEVICE_H_
