#ifndef FIELDREP_STORAGE_FAULT_INJECTING_DEVICE_H_
#define FIELDREP_STORAGE_FAULT_INJECTING_DEVICE_H_

#include <cstdint>

#include "storage/storage_device.h"

namespace fieldrep {

/// \brief Shared crash schedule for one or more FaultInjectingDevices.
///
/// Crash-recovery tests wrap both the database device and the log device
/// around one plan, so "crash after the k-th durable operation" counts
/// operations across the two devices in the order the engine issues them
/// — exactly the boundaries at which a real machine could lose power.
struct FaultPlan {
  /// Durable operations (WritePage / AllocatePage / Sync) to allow before
  /// the crash. 0 means no crash is scheduled.
  uint64_t writes_until_crash = 0;
  /// When true, the operation that trips the crash is a WritePage whose
  /// first half reaches the device and second half does not (a torn
  /// page), instead of failing cleanly.
  bool torn_final_write = false;

  /// True once the crash has tripped; every later operation fails.
  bool crashed = false;
  /// Durable operations observed so far.
  uint64_t ops_seen = 0;

  /// Arms a crash after `n` more durable operations.
  void Arm(uint64_t n, bool torn = false) {
    writes_until_crash = n;
    torn_final_write = torn;
    crashed = false;
    ops_seen = 0;
  }

  /// "Reboots the machine": clears the crashed state (the underlying
  /// devices keep whatever data survived) and disarms the schedule.
  void Reset() {
    writes_until_crash = 0;
    torn_final_write = false;
    crashed = false;
    ops_seen = 0;
  }
};

/// \brief StorageDevice decorator that simulates a power failure.
///
/// Reads pass through until the crash trips (after it, the "machine" is
/// down and everything fails). Durable operations count against the
/// shared FaultPlan; the one that exhausts the budget either fails
/// cleanly or — for torn-write schedules — persists only the first half
/// of the page before failing, modelling a sector-aligned torn write.
class FaultInjectingDevice : public StorageDevice {
 public:
  /// Neither pointer is owned. Several devices may share one `plan`.
  FaultInjectingDevice(StorageDevice* base, FaultPlan* plan)
      : base_(base), plan_(plan) {}

  Status ReadPage(PageId page_id, void* buf) override;
  Status WritePage(PageId page_id, const void* buf) override;
  Status AllocatePage(PageId* page_id) override;
  Status Sync() override;
  uint32_t page_count() const override { return base_->page_count(); }

 private:
  /// Charges one durable operation. Returns false if the machine is (or
  /// has just gone) down; `*torn` is set when the caller should perform
  /// a half write before failing.
  bool ChargeOp(bool* torn);

  StorageDevice* base_;
  FaultPlan* plan_;
};

}  // namespace fieldrep

#endif  // FIELDREP_STORAGE_FAULT_INJECTING_DEVICE_H_
