#ifndef FIELDREP_STORAGE_SLOTTED_PAGE_H_
#define FIELDREP_STORAGE_SLOTTED_PAGE_H_

#include <cstdint>
#include <string>

#include "storage/page.h"

namespace fieldrep {

/// Page types stored in the page header so that a raw page can be
/// interpreted safely.
enum class PageType : uint16_t {
  kFree = 0,
  kHeap = 1,
  kBTreeLeaf = 2,
  kBTreeInternal = 3,
  /// Database checkpoint-blob page (see Database::WriteStateToMetaPages):
  /// a 40-byte header followed by one raw chunk of the catalog/state blob.
  kMeta = 4,
};

/// \brief Non-owning view over one 4 KiB page laid out as a slotted page.
///
/// Layout:
///   [0, kPageHeaderBytes)            page header (type, slot count, links)
///   [kPageHeaderBytes, ...)          slot directory, 4 bytes per slot
///   [cell_start, kPageSize)          record payloads, growing downward
///
/// Slot indices are stable for the lifetime of a record (OIDs embed them);
/// deleted slots are tombstoned and reused by later inserts. Records may
/// shrink in place; growth triggers in-page compaction when the total free
/// space suffices, and otherwise fails so the caller can relocate.
class SlottedPage {
 public:
  /// Wraps existing page memory. The caller keeps `data` alive and, when
  /// mutating, marks the buffer-pool frame dirty.
  explicit SlottedPage(uint8_t* data) : data_(data) {}

  /// Formats `data` as an empty slotted page of the given type.
  static void Init(uint8_t* data, PageType type);

  PageType page_type() const;
  uint16_t slot_count() const;
  /// Number of live (non-tombstoned) records.
  uint16_t live_count() const;
  PageId next_page() const;
  void set_next_page(PageId id);
  PageId prev_page() const;
  void set_prev_page(PageId id);

  /// Bytes available for a new record, assuming it may need a new slot
  /// directory entry and counting reclaimable fragmentation.
  uint32_t FreeSpace() const;

  /// True if a record of `size` bytes can be inserted.
  bool HasRoomFor(uint32_t size) const;

  /// Inserts a record; returns the slot index or -1 if there is no room.
  int Insert(const uint8_t* payload, uint32_t size);
  int Insert(const std::string& payload) {
    return Insert(reinterpret_cast<const uint8_t*>(payload.data()),
                  static_cast<uint32_t>(payload.size()));
  }

  /// True if `slot` holds a live record.
  bool IsLive(uint16_t slot) const;

  /// Returns a pointer to the record payload and its size, or nullptr if
  /// the slot is out of range or tombstoned.
  const uint8_t* Read(uint16_t slot, uint32_t* size) const;

  /// Copies the record payload into `out`; false on a dead slot.
  bool ReadString(uint16_t slot, std::string* out) const;

  /// Replaces the record in `slot`. Returns false when the page cannot hold
  /// the new size even after compaction (caller must relocate the record).
  bool Update(uint16_t slot, const uint8_t* payload, uint32_t size);
  bool Update(uint16_t slot, const std::string& payload) {
    return Update(slot, reinterpret_cast<const uint8_t*>(payload.data()),
                  static_cast<uint32_t>(payload.size()));
  }

  /// Tombstones the record in `slot`. Returns false on a dead slot.
  bool Delete(uint16_t slot);

  /// Rewrites the cell area to squeeze out fragmentation.
  void Compact();

  // Read-only structural accessors used by the integrity checker
  // (src/check) to validate the slot directory and free-space accounting
  // without going through the record API.
  uint16_t cell_start() const;
  uint16_t frag_bytes() const;
  /// Raw slot-directory entry; offset 0 marks a tombstoned slot. The caller
  /// must keep `slot < slot_count()`.
  uint16_t SlotOffset(uint16_t slot) const;
  uint16_t SlotLength(uint16_t slot) const;

 private:
  // Header field offsets (see layout comment above).
  static constexpr uint32_t kTypeOffset = 0;       // u16
  static constexpr uint32_t kSlotCountOffset = 2;  // u16
  static constexpr uint32_t kCellStartOffset = 4;  // u16
  static constexpr uint32_t kLiveCountOffset = 6;  // u16
  static constexpr uint32_t kNextPageOffset = 8;   // u32
  static constexpr uint32_t kPrevPageOffset = 12;  // u32
  static constexpr uint32_t kFragBytesOffset = 16; // u16

  static constexpr uint32_t kSlotBytes = 4;  // u16 offset + u16 length

  void set_cell_start(uint16_t v);
  void set_frag_bytes(uint16_t v);
  void set_slot_count(uint16_t v);
  void set_live_count(uint16_t v);

  void SetSlot(uint16_t slot, uint16_t offset, uint16_t length);

  /// First tombstoned slot index, or slot_count() if none.
  uint16_t FindFreeSlot() const;

  uint8_t* data_;
};

}  // namespace fieldrep

#endif  // FIELDREP_STORAGE_SLOTTED_PAGE_H_
