#include "storage/fault_injecting_device.h"

#include <cstring>

namespace fieldrep {

namespace {
Status CrashedStatus() {
  return Status::IOError("simulated power failure");
}
}  // namespace

bool FaultInjectingDevice::ChargeOp(bool* torn) {
  *torn = false;
  if (plan_->crashed) return false;
  ++plan_->ops_seen;
  if (plan_->writes_until_crash != 0 &&
      plan_->ops_seen >= plan_->writes_until_crash) {
    plan_->crashed = true;
    *torn = plan_->torn_final_write;
    return false;
  }
  return true;
}

Status FaultInjectingDevice::ReadPage(PageId page_id, void* buf) {
  if (plan_->crashed) return CrashedStatus();
  return base_->ReadPage(page_id, buf);
}

Status FaultInjectingDevice::WritePage(PageId page_id, const void* buf) {
  bool torn = false;
  if (!ChargeOp(&torn)) {
    if (torn && page_id < base_->page_count()) {
      // Persist the first half of the new page over the old content —
      // the classic torn write a power cut can leave behind.
      uint8_t mixed[kPageSize];
      if (base_->ReadPage(page_id, mixed).ok()) {
        std::memcpy(mixed, buf, kPageSize / 2);
        base_->WritePage(page_id, mixed).ok();
      }
    }
    return CrashedStatus();
  }
  return base_->WritePage(page_id, buf);
}

Status FaultInjectingDevice::AllocatePage(PageId* page_id) {
  bool torn = false;
  if (!ChargeOp(&torn)) return CrashedStatus();
  return base_->AllocatePage(page_id);
}

Status FaultInjectingDevice::Sync() {
  bool torn = false;
  if (!ChargeOp(&torn)) return CrashedStatus();
  return base_->Sync();
}

}  // namespace fieldrep
