#ifndef FIELDREP_STORAGE_PAGE_H_
#define FIELDREP_STORAGE_PAGE_H_

#include <cstdint>
#include <cstring>
#include <memory>
#include <new>

namespace fieldrep {

/// \file
/// Page-level constants. The sizes follow the paper's Figure 10, which took
/// them from the EXODUS storage manager: 4 KiB pages with B = 4056 bytes
/// available for user data and h = 20 bytes of per-object storage overhead.

/// Physical page size of every storage device.
inline constexpr uint32_t kPageSize = 4096;

/// Bytes reserved at the front of each page for the page header
/// (see SlottedPage). kPageSize - kPageHeaderBytes == 4056 == the paper's B.
inline constexpr uint32_t kPageHeaderBytes = 40;

/// Offset of the per-page CRC-32 checksum inside the page header. The field
/// is shared by every headered page type (heap, B+ tree, meta): the 40-byte
/// header budget reserves bytes [36, 40) for it. A stored value of zero
/// means "not yet stamped" (pages are checksummed when written back to the
/// device, so a freshly formatted in-memory page carries no checksum).
inline constexpr uint32_t kPageChecksumOffset = 36;

/// The paper's B: bytes per page available for user data (slots + records).
inline constexpr uint32_t kUserBytesPerPage = kPageSize - kPageHeaderBytes;

/// The paper's h: storage overhead per object. In this engine it is the
/// 4-byte slot-directory entry plus the 16-byte serialized object header.
inline constexpr uint32_t kObjectOverheadBytes = 20;

/// Identifies a page on a storage device. Page ids are device-global;
/// files are linked lists of pages.
using PageId = uint32_t;

inline constexpr PageId kInvalidPageId = 0xFFFFFFFFu;

/// Identifies a file (an object set, link set, replica set, index, or
/// output file) within a database.
using FileId = uint16_t;

inline constexpr FileId kInvalidFileId = 0xFFFFu;

/// Deleter matching AllocatePageBuffer's aligned operator new[].
struct PageBufferDeleter {
  void operator()(uint8_t* p) const {
    ::operator delete[](p, std::align_val_t{kPageSize});
  }
};

/// A page-sized, page-aligned I/O buffer. Every buffer that a storage
/// device may transfer directly (buffer-pool frames, elevator staging
/// areas, device bounce buffers) uses this allocation so the O_DIRECT
/// backend's alignment requirement (buffer, offset, and length all
/// block-aligned; kPageSize alignment satisfies any block size) holds
/// engine-wide without per-call-site checks.
using PageBuffer = std::unique_ptr<uint8_t[], PageBufferDeleter>;

/// Allocates `pages` pages of kPageSize-aligned, zero-initialized memory.
/// Zeroing matches the value-initialization the pool's frames had before
/// they were aligned: a logically-empty page region must read as zeros
/// (slot directories treat 0 as "no entry"), and frames are recycled into
/// that role without an intervening device read.
inline PageBuffer AllocatePageBuffer(size_t pages = 1) {
  auto* p = static_cast<uint8_t*>(
      ::operator new[](pages * kPageSize, std::align_val_t{kPageSize}));
  std::memset(p, 0, pages * kPageSize);
  return PageBuffer(p);
}

}  // namespace fieldrep

#endif  // FIELDREP_STORAGE_PAGE_H_
