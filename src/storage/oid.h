#ifndef FIELDREP_STORAGE_OID_H_
#define FIELDREP_STORAGE_OID_H_

#include <cstdint>
#include <functional>
#include <string>

#include "common/strings.h"
#include "storage/page.h"

namespace fieldrep {

/// \brief Physically-based object identifier: (file, page, slot).
///
/// OIDs implement reference attributes (Section 2.2 of the paper) and are
/// 8 bytes, matching sizeof(OID) in the cost model's Figure 10. Because they
/// are physically based, sorting OIDs yields clustered (physical) access
/// order — the property Section 4.1 exploits by keeping the OID arrays
/// inside link objects sorted.
struct Oid {
  FileId file_id = kInvalidFileId;
  PageId page_id = kInvalidPageId;
  uint16_t slot = 0;

  constexpr Oid() = default;
  constexpr Oid(FileId f, PageId p, uint16_t s)
      : file_id(f), page_id(p), slot(s) {}

  /// The null reference.
  static constexpr Oid Invalid() { return Oid(); }

  bool valid() const {
    return file_id != kInvalidFileId && page_id != kInvalidPageId;
  }

  /// Packs to a totally-ordered u64: (file, page, slot) lexicographically,
  /// i.e. physical order within a file.
  uint64_t Packed() const {
    return (static_cast<uint64_t>(file_id) << 48) |
           (static_cast<uint64_t>(page_id) << 16) |
           static_cast<uint64_t>(slot);
  }

  static Oid FromPacked(uint64_t v) {
    return Oid(static_cast<FileId>(v >> 48),
               static_cast<PageId>((v >> 16) & 0xFFFFFFFFu),
               static_cast<uint16_t>(v & 0xFFFFu));
  }

  std::string ToString() const {
    if (!valid()) return "oid(null)";
    return StringPrintf("oid(%u:%u:%u)", file_id, page_id, slot);
  }

  friend bool operator==(const Oid& a, const Oid& b) {
    return a.file_id == b.file_id && a.page_id == b.page_id &&
           a.slot == b.slot;
  }
  friend bool operator!=(const Oid& a, const Oid& b) { return !(a == b); }
  friend bool operator<(const Oid& a, const Oid& b) {
    return a.Packed() < b.Packed();
  }
};

struct OidHash {
  size_t operator()(const Oid& o) const {
    return std::hash<uint64_t>()(o.Packed());
  }
};

}  // namespace fieldrep

#endif  // FIELDREP_STORAGE_OID_H_
