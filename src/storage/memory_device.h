#ifndef FIELDREP_STORAGE_MEMORY_DEVICE_H_
#define FIELDREP_STORAGE_MEMORY_DEVICE_H_

#include <memory>
#include <vector>

#include "common/annotated_mutex.h"
#include "storage/storage_device.h"

namespace fieldrep {

/// \brief RAM-backed storage device.
///
/// Pages are stored in individually allocated 4 KiB blocks so that page
/// addresses stay stable as the device grows. A mutex guards the page
/// vector itself (it reallocates on growth); concurrent reads of distinct
/// pages copy from the stable blocks, and the buffer pool never issues
/// two concurrent transfers of the same page (single-flight installs,
/// in-flight markers during writeback), so per-page serialization is the
/// pool's job, not the device's.
class MemoryDevice : public StorageDevice {
 public:
  MemoryDevice() = default;

  MemoryDevice(const MemoryDevice&) = delete;
  MemoryDevice& operator=(const MemoryDevice&) = delete;

  Status ReadPage(PageId page_id, void* buf) override;
  Status WritePage(PageId page_id, const void* buf) override;
  Status AllocatePage(PageId* page_id) override;
  uint32_t page_count() const override {
    MutexLock lock(mu_);
    return static_cast<uint32_t>(pages_.size());
  }

 private:
  /// Returns the block for `page_id`, or nullptr if unallocated.
  uint8_t* PageBlock(PageId page_id) const;

  /// kDevice is a leaf rank: pool write-back and WAL log writes reach the
  /// device with victim/log locks held, and the device calls nothing back.
  mutable Mutex mu_{LockRank::kDevice, "memory_device.mu"};
  std::vector<std::unique_ptr<uint8_t[]>> pages_ GUARDED_BY(mu_);
};

}  // namespace fieldrep

#endif  // FIELDREP_STORAGE_MEMORY_DEVICE_H_
