#ifndef FIELDREP_STORAGE_MEMORY_DEVICE_H_
#define FIELDREP_STORAGE_MEMORY_DEVICE_H_

#include <memory>
#include <vector>

#include "storage/storage_device.h"

namespace fieldrep {

/// \brief RAM-backed storage device.
///
/// Pages are stored in individually allocated 4 KiB blocks so that page
/// addresses stay stable as the device grows.
class MemoryDevice : public StorageDevice {
 public:
  MemoryDevice() = default;

  MemoryDevice(const MemoryDevice&) = delete;
  MemoryDevice& operator=(const MemoryDevice&) = delete;

  Status ReadPage(PageId page_id, void* buf) override;
  Status WritePage(PageId page_id, const void* buf) override;
  Status AllocatePage(PageId* page_id) override;
  uint32_t page_count() const override {
    return static_cast<uint32_t>(pages_.size());
  }

 private:
  std::vector<std::unique_ptr<uint8_t[]>> pages_;
};

}  // namespace fieldrep

#endif  // FIELDREP_STORAGE_MEMORY_DEVICE_H_
